// Census methodology comparison: what would an Internet census conclude
// from (a) active ICMP scanning alone, (b) passive CDN observation alone,
// and (c) capture-recapture estimation over partial passive snapshots —
// versus the simulator's ground truth? This operationalizes the paper's §3
// and §8 measurement-practice findings.
//
// Build & run:  ./build/examples/census_compare
#include <iostream>

#include "cdn/observatory.h"
#include "geo/country.h"
#include "report/table.h"
#include "scan/icmp.h"
#include "sim/world.h"
#include "stats/capture_recapture.h"

int main() {
  using namespace ipscope;

  sim::WorldConfig config;
  config.seed = 314159;
  config.target_client_blocks = 1500;
  sim::World world{config};
  std::cout << "census of a simulated Internet ("
            << world.blocks().size() << " /24 blocks)\n\n";

  // Ground truth for October: every address with any successful WWW
  // activity (client truth) — what a perfect census would count.
  auto daily = cdn::Observatory::Daily(world).BuildStore();
  net::Ipv4Set cdn_october = daily.ActiveSet(45, 76);

  // Method (a): 8 ICMP scans across October.
  net::Ipv4Set icmp = scan::IcmpScanner{world}.ScanMonth(273, 31, 8);

  // Method (c): capture-recapture across two week-long passive snapshots.
  net::Ipv4Set week1 = daily.ActiveSet(45, 52);
  net::Ipv4Set week4 = daily.ActiveSet(66, 73);
  auto chapman =
      stats::Chapman(week1.Count(), week4.Count(),
                     week1.CountIntersect(week4));

  report::Table t({"method", "counted/estimated", "vs CDN month"});
  auto pct = [&](double v) {
    return report::FormatPercent(v / static_cast<double>(cdn_october.Count()));
  };
  t.AddRow({"passive CDN month (reference)",
            report::FormatCount(cdn_october.Count()), "100.0%"});
  t.AddRow({"active ICMP (8 scans)", report::FormatCount(icmp.Count()),
            pct(static_cast<double>(icmp.Count()))});
  t.AddRow({"ICMP & CDN overlap",
            report::FormatCount(cdn_october.CountIntersect(icmp)),
            pct(static_cast<double>(cdn_october.CountIntersect(icmp)))});
  t.AddRow({"Chapman (2 weekly snapshots)",
            report::FormatSi(chapman.population),
            pct(chapman.population)});
  t.Print(std::cout);

  std::cout << "\nper-country ICMP census bias (measured response rate "
               "among CDN-active addresses):\n";
  report::Table ct({"country", "CDN-active", "also in ICMP", "rate"});
  const geo::Registry& registry = world.registry();
  auto countries = geo::Countries();
  for (const char* code : {"CN", "JP", "US", "DE", "BR"}) {
    int ci = geo::CountryIndex(code);
    auto region = registry.CountryRegion(ci);
    net::Ipv4Set country_set;
    country_set.AddRange(region.first_block << 8,
                         (region.last_block << 8) | 0xFF);
    std::uint64_t active = cdn_october.CountIntersect(country_set);
    std::uint64_t responding =
        cdn_october.Intersect(icmp).CountIntersect(country_set);
    ct.AddRow({code, report::FormatCount(active),
               report::FormatCount(responding),
               report::FormatPercent(active ? static_cast<double>(responding) /
                                                  static_cast<double>(active)
                                            : 0.0)});
  }
  ct.Print(std::cout);
  std::cout << "\n[paper: ICMP misses >40% of active client addresses, "
               "with response rates ~80% in CN but ~25% in JP — an active "
               "census alone badly skews regional conclusions]\n";
  (void)countries;
  return 0;
}
