// Outage monitoring with adaptive probing: a Trinocular-style belief
// monitor (paper ref [29]) watches every responsive /24, spending a
// fraction of a percent of a brute-force scanner's probes, and reports
// block outages as they happen — here checked against the simulator's
// ground-truth deactivations.
//
// Build & run:  ./build/examples/outage_monitor
#include <iostream>
#include <unordered_map>

#include "report/table.h"
#include "scan/trinocular.h"
#include "sim/world.h"

int main() {
  using namespace ipscope;

  sim::WorldConfig config;
  config.seed = 1213;
  config.target_client_blocks = 800;
  config.deactivate_rate_per_year = 0.15;
  sim::World world{config};

  scan::TrinocularMonitor monitor{world};
  std::cout << "monitoring " << monitor.covered_blocks()
            << " responsive /24 blocks, days 230-320...\n\n";
  auto result = monitor.Monitor(230, 320);

  std::unordered_map<net::BlockKey, const sim::BlockPlan*> plans;
  for (const sim::BlockPlan& plan : world.blocks()) {
    plans[net::BlockKeyOf(plan.block)] = &plan;
  }

  report::Table t({"block", "down detected (day)", "true event (day)",
                   "lag", "verdict"});
  int reports = 0, real_outages = 0, repurposed = 0, false_alarms = 0;
  for (const scan::BlockTimeline& timeline : result.timelines) {
    // First *sustained* down report: 5 consecutive down days, so weekend
    // dormancy of business blocks does not fire the alarm.
    int detected_day = -1;
    int run = 0;
    for (std::size_t d = 0; d < timeline.state.size(); ++d) {
      run = timeline.state[d] == scan::BlockState::kDown ? run + 1 : 0;
      if (run >= 5) {
        detected_day = static_cast<int>(d) - 4 + result.first_day;
        break;
      }
    }
    if (detected_day < 0) continue;
    ++reports;
    const sim::BlockPlan* plan = plans.at(timeline.key);
    std::int32_t true_day = plan->active_until;
    const char* verdict;
    std::string event = "(none)";
    std::string lag = "-";
    if (true_day <= detected_day) {
      // The block truly stopped being used on/before the detection day.
      verdict = "real outage";
      ++real_outages;
      event = std::to_string(true_day);
      lag = std::to_string(detected_day -
                           std::max(true_day, result.first_day)) + "d";
    } else if (plan->HasReconfiguration() &&
               plan->events[0].day <= detected_day) {
      // Repurposed: the old addresses legitimately went dark (paper §5.2).
      verdict = "repurposed";
      ++repurposed;
      event = std::to_string(plan->events[0].day);
    } else {
      verdict = "false alarm";
      ++false_alarms;
    }
    if (reports <= 12) {
      t.AddRow({net::BlockFromKey(timeline.key).ToString(),
                std::to_string(detected_day), event, lag, verdict});
    }
  }
  t.Print(std::cout);
  std::cout << "\n" << reports << " sustained down reports: " << real_outages
            << " real outages, " << repurposed
            << " repurposed blocks (reduced/relocated activity), "
            << false_alarms << " false alarms\n";
  std::cout << "probing cost "
            << report::FormatDouble(result.MeanProbesPerBlockDay())
            << " probes/block/day (vs 256 for full scans)\n";
  std::cout << "[paper ref 29: adaptive Bayesian probing tracks /24 "
               "availability at ~1% of census probe volume]\n";
  return 0;
}
