// Quickstart: a guided tour of the ipscope public API.
//
//  1. Build a deterministic simulated Internet (the data substrate).
//  2. Open the CDN observatory and materialize the daily activity dataset.
//  3. Compute the paper's block metrics (filling degree, spatio-temporal
//     utilization) and render one block's activity pattern.
//  4. Measure address churn across aggregation windows.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "activity/churn.h"
#include "activity/metrics.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "report/textplot.h"
#include "sim/world.h"

int main() {
  using namespace ipscope;

  // 1. The world: everything derives from one seed. Same seed, same world.
  sim::WorldConfig config;
  config.seed = 7;
  config.target_client_blocks = 800;  // small, quickstart-sized Internet
  sim::World world{config};
  std::cout << "world: " << world.blocks().size() << " /24 blocks across "
            << world.ases().size() << " ASes\n";

  // 2. The observatory: 112 daily snapshots (Aug 17 - Dec 6, 2015).
  cdn::Observatory daily = cdn::Observatory::Daily(world);
  activity::ActivityStore store = daily.BuildStore();
  std::cout << "observed " << store.BlockCount()
            << " active /24 blocks over " << store.days() << " days\n";

  // 3. Block metrics: FD and STU, the paper's two block-level measures.
  auto metrics = activity::ComputeBlockMetrics(store);
  const activity::BlockMetrics* densest = &metrics.front();
  for (const auto& m : metrics) {
    if (m.stu > densest->stu) densest = &m;
  }
  std::cout << "\nmost utilized block: " << net::BlockFromKey(densest->key)
            << " FD=" << densest->filling_degree
            << " STU=" << densest->stu << "\n";

  // Render a moderately-filled block's spatio-temporal pattern (a la Fig 6):
  // those show the most interesting assignment structure.
  const activity::BlockMetrics* pick = &metrics.front();
  for (const auto& m : metrics) {
    if (m.filling_degree > 100 && m.filling_degree < 250) {
      pick = &m;
      break;
    }
  }
  const activity::BlockMetrics& sample = *pick;
  const activity::ActivityMatrix* matrix = store.Find(sample.key);
  std::cout << "\nactivity pattern of " << net::BlockFromKey(sample.key)
            << " (FD=" << sample.filling_degree << ", STU=" << sample.stu
            << ", classified "
            << activity::PatternName(activity::ClassifyPattern(*matrix))
            << "):\n";
  for (const auto& line : report::RenderActivityMatrix(*matrix, 8)) {
    std::cout << "  " << line << "\n";
  }

  // 4. Churn: up/down events across aggregation windows.
  activity::ChurnAnalyzer churn{store};
  std::cout << "\nchurn by window size (median up% / down%):\n";
  for (int w : {1, 7, 28}) {
    auto series = churn.Churn(w);
    std::cout << "  " << w << "d: " << series.up.median << "% / "
              << series.down.median << "%\n";
  }
  std::cout << "\nNext: run the bench/ binaries to regenerate every paper "
               "table and figure.\n";
  return 0;
}
