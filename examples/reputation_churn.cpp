// Reputation TTLs from address churn: the paper's "implications to network
// security" (§8). A host's IP-based reputation should expire before the
// address is likely to have changed hands. This example derives a
// per-block reputation time-to-live from observed activity dynamics:
//   * fully-utilized gateway blocks aggregate thousands of users -> IP
//     reputation is nearly meaningless (TTL ~ hours),
//   * high-turnover dynamic pools -> TTL of a day,
//   * long-lease pools -> TTL of a week or two,
//   * stable static blocks -> TTL of a month or more,
// and flags blocks whose assignment practice *changed* mid-period (the
// paper's §5.2 change detector) for immediate reputation reset.
//
// Build & run:  ./build/examples/reputation_churn
#include <iostream>
#include <map>
#include <string>

#include "activity/change.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "report/table.h"
#include "sim/world.h"

namespace {

// Recommended reputation TTL in days for a block's activity pattern.
double RecommendedTtlDays(ipscope::activity::BlockPattern pattern,
                          const ipscope::activity::PatternFeatures& f) {
  using ipscope::activity::BlockPattern;
  switch (pattern) {
    case BlockPattern::kFullyUtilized:
      return 0.1;  // gateway: reputation shared by thousands of users
    case BlockPattern::kDynamicShortLease:
      return 1.0;  // 24h-style reassignment
    case BlockPattern::kDynamicLongLease:
      return 14.0;
    case BlockPattern::kStaticSparse:
      // Stable set; expire on the observed customer-turnover timescale.
      return f.turnover < 0.2 ? 60.0 : 30.0;
    default:
      return 7.0;
  }
}

}  // namespace

int main() {
  using namespace ipscope;

  sim::WorldConfig config;
  config.seed = 99;
  config.target_client_blocks = 1500;
  sim::World world{config};
  activity::ActivityStore store =
      cdn::Observatory::Daily(world).BuildStore();

  std::map<std::string, int> ttl_histogram;
  std::uint64_t blocks = 0;

  store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    auto features = activity::ComputeFeatures(m);
    if (features.filling_degree == 0) return;
    auto pattern = activity::ClassifyPattern(features);
    double ttl = RecommendedTtlDays(pattern, features);
    ++blocks;
    if (ttl < 1.0) {
      ++ttl_histogram["<1 day (shared gateways)"];
    } else if (ttl <= 1.0) {
      ++ttl_histogram["1 day (short leases)"];
    } else if (ttl <= 14.0) {
      ++ttl_histogram["<=14 days (long leases / mixed)"];
    } else {
      ++ttl_histogram[">=30 days (static)"];
    }
  });

  std::cout << "recommended reputation TTLs across " << blocks
            << " active /24 blocks:\n";
  report::Table t({"TTL class", "blocks", "share"});
  for (const auto& [label, count] : ttl_histogram) {
    t.AddRow({label, std::to_string(count),
              report::FormatPercent(static_cast<double>(count) /
                                    static_cast<double>(blocks))});
  }
  t.Print(std::cout);

  // Blocks whose assignment practice changed: reset reputations now.
  auto changes = activity::MaxMonthlyStuChange(store);
  std::uint64_t resets = 0;
  for (const auto& c : changes) {
    if (c.IsMajor()) ++resets;
  }
  std::cout << "\nblocks with a major assignment change (immediate "
               "reputation reset): "
            << resets << " ("
            << report::FormatPercent(static_cast<double>(resets) /
                                     static_cast<double>(changes.size()))
            << ")\n";
  std::cout << "[paper §8: 'our change detection method could be used to "
               "trigger expiration of host reputation, avoiding security "
               "vulnerabilities when networks are renumbered or "
               "repurposed']\n";
  return 0;
}
