// Operator audit: the paper's "implications to network management" (§8)
// turned into a tool. An ISP points ipscope at its own address space (here:
// the largest simulated AS) and gets a utilization audit:
//   * statically-assigned blocks with low filling degree (candidates for
//     switching to dynamic assignment),
//   * dynamic pools with low spatio-temporal utilization (candidates for
//     pool downsizing),
//   * an estimate of reclaimable /24-equivalents (§5.4).
//
// Build & run:  ./build/examples/operator_audit
#include <algorithm>
#include <iostream>
#include <vector>

#include "activity/metrics.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "report/table.h"
#include "sim/world.h"

int main() {
  using namespace ipscope;

  sim::WorldConfig config;
  config.seed = 20160360;
  config.target_client_blocks = 1500;
  sim::World world{config};

  // Pick the AS with the most blocks — "our" network.
  const sim::AsPlan* my_as = &world.ases()[0];
  for (const auto& as : world.ases()) {
    if (as.block_indices.size() > my_as->block_indices.size()) my_as = &as;
  }
  std::cout << "auditing AS" << my_as->asn << " ("
            << sim::AsTypeName(my_as->type) << ", "
            << my_as->block_indices.size() << " /24 blocks)\n\n";

  activity::ActivityStore store =
      cdn::Observatory::Daily(world).BuildStore();

  struct Finding {
    net::Prefix block;
    int fd;
    double stu;
    const char* advice;
  };
  std::vector<Finding> findings;
  int active_blocks = 0;
  double reclaimable_24ths = 0.0;

  for (std::uint32_t bi : my_as->block_indices) {
    const sim::BlockPlan& plan = world.blocks()[bi];
    const activity::ActivityMatrix* m =
        store.Find(net::BlockKeyOf(plan.block));
    if (m == nullptr) continue;  // never active: not ours to audit here
    ++active_blocks;
    int fd = m->FillingDegree();
    double stu = m->Stu();
    activity::BlockPattern pattern = activity::ClassifyPattern(*m);

    if (pattern == activity::BlockPattern::kStaticSparse && fd < 64) {
      findings.push_back({plan.block, fd, stu,
                          "static, sparse: switch to dynamic pool"});
      reclaimable_24ths += (256.0 - fd) / 256.0;
    } else if (fd > 250 && stu < 0.6) {
      findings.push_back({plan.block, fd, stu,
                          "dynamic pool underutilized: shrink pool"});
      reclaimable_24ths += 0.6 - stu;  // conservative: unused time-share
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.stu < b.stu; });

  // Show the worst offenders of each category.
  report::Table t({"block", "FD", "STU", "recommendation"});
  int shown_static = 0, shown_dynamic = 0;
  for (const Finding& f : findings) {
    bool is_static = f.fd < 64;
    int& shown = is_static ? shown_static : shown_dynamic;
    if (shown >= 8) continue;
    ++shown;
    t.AddRow({f.block.ToString(), std::to_string(f.fd),
              report::FormatDouble(f.stu), f.advice});
  }
  t.Print(std::cout);

  std::cout << "\n" << findings.size() << " of " << active_blocks
            << " active blocks flagged; estimated reclaimable space ~ "
            << report::FormatDouble(reclaimable_24ths, 1)
            << " /24-equivalents ("
            << report::FormatCount(static_cast<std::uint64_t>(
                   reclaimable_24ths * 256))
            << " addresses)\n";
  std::cout << "[paper §5.4: >30% of active blocks have FD<64; one third of "
               "dynamic pools show low STU — 'reducing their pool sizes "
               "could instantly free significant portions of address "
               "space']\n";
  return 0;
}
