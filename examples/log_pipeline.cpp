// The raw log pipeline, end to end (paper §3.2's collection framework at
// simulation scale):
//
//   edge servers emit request records  ->  log lines  ->  parsed back  ->
//   aggregated into per-IP hit counts  ->  the observatory's dataset
//
// This example streams one day of raw records for a handful of blocks,
// prints a few formatted log lines, shows the diurnal request histogram,
// and verifies the aggregation matches the activity kernel exactly.
//
// Build & run:  ./build/examples/log_pipeline
#include <iostream>
#include <vector>

#include "cdn/observatory.h"
#include "cdn/rawlog.h"
#include "report/textplot.h"
#include "sim/world.h"

int main() {
  using namespace ipscope;

  sim::WorldConfig config;
  config.seed = 8;
  config.target_client_blocks = 300;
  sim::World world{config};

  cdn::Observatory daily = cdn::Observatory::Daily(world);
  cdn::RawLogGenerator raw{world, daily.spec()};

  // Pick a few client blocks of different kinds.
  std::vector<const sim::BlockPlan*> picks;
  bool have_dense = false, have_static = false, have_bot = false;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (!have_dense && plan.base.kind == sim::PolicyKind::kDynamicShort) {
      picks.push_back(&plan);
      have_dense = true;
    } else if (!have_static && plan.base.kind == sim::PolicyKind::kStatic) {
      picks.push_back(&plan);
      have_static = true;
    } else if (!have_bot &&
               plan.base.kind == sim::PolicyKind::kCrawlerBots) {
      picks.push_back(&plan);
      have_bot = true;
    }
  }

  std::cout << "=== sample log lines (day 0) ===\n";
  int shown = 0;
  raw.ForBlockStep(*picks.front(), 0, [&](const cdn::LogRecord& r) {
    if (shown++ < 5) {
      std::cout << "  " << cdn::FormatLogLine(r) << "\n";
      std::cout << "    UA: " << cdn::UaString(r.ua_id) << "\n";
    }
  }, /*per_address_cap=*/2);

  std::cout << "\n=== round trip: format -> parse ===\n";
  cdn::LogRecord sample;
  raw.ForBlockStep(*picks.front(), 0,
                   [&](const cdn::LogRecord& r) { sample = r; },
                   /*per_address_cap=*/1);
  std::string line = cdn::FormatLogLine(sample);
  cdn::LogRecord parsed;
  bool ok = cdn::ParseLogLine(line, parsed);
  std::cout << "  " << line << "\n  parse ok: " << std::boolalpha << ok
            << ", client matches: " << (parsed.client == sample.client)
            << "\n";

  std::cout << "\n=== diurnal request histogram (one block, one week) ===\n";
  std::vector<double> per_hour(24, 0.0);
  for (int step = 0; step < 7; ++step) {
    raw.ForBlockStep(*picks.front(), step, [&](const cdn::LogRecord& r) {
      per_hour[(r.unix_time / 3600) % 24] += 1.0;
    });
  }
  std::vector<std::string> labels;
  for (int h = 0; h < 24; ++h) {
    labels.push_back((h < 10 ? "0" : "") + std::to_string(h) + ":00");
  }
  for (const auto& bar : report::RenderBars(labels, per_hour, 40)) {
    std::cout << "  " << bar << "\n";
  }

  std::cout << "\n=== aggregation check: records -> per-IP counts ===\n";
  for (const sim::BlockPlan* plan : picks) {
    cdn::LogAggregator aggregator;
    raw.ForBlockStep(*plan, 10, [&](const cdn::LogRecord& r) {
      aggregator.Consume(r);
    });
    activity::DayBits bits;
    std::uint32_t hits[256];
    sim::GenerateStep(*plan, daily.spec(), 10, bits, hits);
    std::uint64_t kernel_total = 0;
    for (std::uint32_t h : hits) kernel_total += h;
    std::cout << "  " << plan->block << " ("
              << sim::PolicyKindName(plan->base.kind)
              << "): " << aggregator.total_records() << " records, kernel "
              << kernel_total << " hits -> "
              << (aggregator.total_records() == kernel_total ? "MATCH"
                                                             : "MISMATCH")
              << "\n";
  }
  return 0;
}
