#include <gtest/gtest.h>

#include "timeutil/date.h"
#include "timeutil/window.h"

namespace ipscope::timeutil {
namespace {

TEST(Date, EpochIsJan1970) {
  Day epoch{0};
  CivilDate c = epoch.ToCivil();
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(Day::FromCivil({1970, 1, 1}).value(), 0);
}

TEST(Date, KnownDates) {
  EXPECT_EQ(Day::FromCivil({2015, 1, 1}).value(), 16436);
  EXPECT_EQ(Day::FromCivil({2015, 8, 17}) - Day::FromCivil({2015, 1, 1}),
            228);
  EXPECT_EQ(Day::FromCivil({2015, 12, 6}) - Day::FromCivil({2015, 8, 17}),
            111);  // 112-day inclusive period
}

TEST(Date, RoundTripProperty) {
  for (std::int32_t d = -400000; d <= 400000; d += 37) {
    Day day{d};
    EXPECT_EQ(Day::FromCivil(day.ToCivil()).value(), d);
  }
}

TEST(Date, LeapYearHandling) {
  EXPECT_EQ(Day::FromCivil({2016, 2, 29}) - Day::FromCivil({2016, 2, 28}), 1);
  EXPECT_EQ(Day::FromCivil({2016, 3, 1}) - Day::FromCivil({2016, 2, 29}), 1);
  // 2015 is not a leap year: Feb 28 -> Mar 1.
  EXPECT_EQ(Day::FromCivil({2015, 3, 1}) - Day::FromCivil({2015, 2, 28}), 1);
  // Century rule: 2000 was a leap year.
  EXPECT_EQ(Day::FromCivil({2000, 3, 1}) - Day::FromCivil({2000, 2, 28}), 2);
}

TEST(Date, Weekday) {
  // 1970-01-01 was a Thursday.
  EXPECT_EQ(Day::FromCivil({1970, 1, 1}).Weekday(), 3);
  // 2015-08-17 was a Monday.
  EXPECT_EQ(Day::FromCivil({2015, 8, 17}).Weekday(), 0);
  // 2015-08-22 was a Saturday.
  EXPECT_TRUE(Day::FromCivil({2015, 8, 22}).IsWeekend());
  EXPECT_TRUE(Day::FromCivil({2015, 8, 23}).IsWeekend());
  EXPECT_FALSE(Day::FromCivil({2015, 8, 24}).IsWeekend());
  // Negative day values (pre-1970) must not produce negative weekdays.
  EXPECT_GE(Day{-1}.Weekday(), 0);
  EXPECT_EQ(Day{-1}.Weekday(), 2);  // 1969-12-31 was a Wednesday
}

TEST(Date, ToStringFormat) {
  EXPECT_EQ(Day::FromCivil({2015, 8, 17}).ToString(), "2015-08-17");
  EXPECT_EQ(Day::FromCivil({2015, 12, 6}).ToString(), "2015-12-06");
}

TEST(Window, PartitionExact) {
  DayRange period{Day{100}, 28};
  auto windows = PartitionWindows(period, 7);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].start.value(), 100);
  EXPECT_EQ(windows[3].start.value(), 121);
  EXPECT_EQ(windows[3].end().value(), 128);
}

TEST(Window, PartitionDiscardsPartialTail) {
  DayRange period{Day{0}, 30};
  auto windows = PartitionWindows(period, 7);
  EXPECT_EQ(windows.size(), 4u);  // 28 days used, 2 discarded
}

TEST(Window, PartitionDegenerateCases) {
  EXPECT_TRUE(PartitionWindows(DayRange{Day{0}, 5}, 7).empty());
  EXPECT_TRUE(PartitionWindows(DayRange{Day{0}, 10}, 0).empty());
  EXPECT_TRUE(PartitionWindows(DayRange{Day{0}, 10}, -1).empty());
}

TEST(Window, PaperPeriods) {
  DayRange daily = DailyPeriod2015();
  EXPECT_EQ(daily.start, Day::FromCivil({2015, 8, 17}));
  EXPECT_EQ(daily.length, 112);
  EXPECT_EQ((daily.end() - 1), Day::FromCivil({2015, 12, 6}));

  DayRange weekly = WeeklyPeriod2015();
  EXPECT_EQ(weekly.start, Day::FromCivil({2015, 1, 1}));
  EXPECT_EQ(weekly.length, 364);

  EXPECT_EQ(WeekOfYear2015(0).start, weekly.start);
  EXPECT_EQ(WeekOfYear2015(51).end(), weekly.end());
}

TEST(Window, ContainsBoundaries) {
  DayRange r{Day{10}, 5};
  EXPECT_TRUE(r.Contains(Day{10}));
  EXPECT_TRUE(r.Contains(Day{14}));
  EXPECT_FALSE(r.Contains(Day{15}));
  EXPECT_FALSE(r.Contains(Day{9}));
}

}  // namespace
}  // namespace ipscope::timeutil
