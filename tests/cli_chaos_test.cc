// End-to-end tests of `ipscope_cli chaos` — the pipeline run under an
// injected fault schedule — and of the CLI's degraded-data reporting.
#include "cli/commands.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cdn/observatory.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "io/store_io.h"
#include "sim/world.h"

namespace ipscope::cli {
namespace {

// Small worlds keep each chaos run to a fraction of a second.
constexpr const char* kBlocks = "120";

TEST(CliChaos, DefaultScheduleScorecardPasses) {
  std::ostringstream out, err;
  int rc = Main({"chaos", "--blocks", kBlocks, "--seed", "7"}, out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("store salvage"), std::string::npos);
  EXPECT_NE(text.find("churn matches clean data"), std::string::npos);
  EXPECT_NE(text.find("change detection matches"), std::string::npos);
  EXPECT_NE(text.find("fault.injected_total"), std::string::npos);
  EXPECT_NE(text.find("activity.days_missing"), std::string::npos);
  EXPECT_NE(text.find("chaos: PASS"), std::string::npos);
  EXPECT_EQ(text.find("FAIL"), std::string::npos);
}

TEST(CliChaos, NoFaultScheduleIsCleanRun) {
  std::ostringstream out, err;
  int rc = Main({"chaos", "--blocks", kBlocks, "--seed", "7", "--schedule",
                 ""},
                out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  EXPECT_NE(out.str().find("(complete)"), std::string::npos);
  EXPECT_NE(out.str().find("chaos: PASS (0 faults injected)"),
            std::string::npos);
}

TEST(CliChaos, EveryFaultKindAtOncePasses) {
  std::ostringstream out, err;
  int rc = Main({"chaos", "--blocks", kBlocks, "--seed", "3", "--schedule",
                 "drop-days=2,drop-day=5,drop-snapshots=2,truncate-store=0.7,"
                 "flip-bytes=2,dup-rows=0.2"},
                out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  EXPECT_NE(out.str().find("log aggregation idempotent"), std::string::npos);
  EXPECT_NE(out.str().find("chaos: PASS"), std::string::npos);
}

TEST(CliChaos, BadScheduleIsUsageError) {
  std::ostringstream out, err;
  int rc = Main({"chaos", "--blocks", kBlocks, "--schedule", "explode=1"},
                out, err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.str().find("unknown fault"), std::string::npos);
}

TEST(CliChaos, ScorecardIsDeterministicPerSeed) {
  auto scorecard = [](const char* seed) {
    std::ostringstream out, err;
    int rc = Main({"chaos", "--blocks", kBlocks, "--seed", seed}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    // Compare only the scorecard: the data-quality metrics table reads
    // process-global counters that accumulate across runs in one process.
    std::string text = out.str();
    return text.substr(0, text.find("data-quality"));
  };
  EXPECT_EQ(scorecard("11"), scorecard("11"));
  EXPECT_NE(scorecard("11"), scorecard("12"));
}

TEST(CliChaos, SummaryReportsCoverageGapsOfSalvagedDataset) {
  // Build a dataset, drop days via the injector, save it (IPSCOPE2 carries
  // the coverage mask), and check `summary` surfaces the gap instead of
  // presenting missing days as mass deactivation.
  sim::WorldConfig config;
  config.target_client_blocks = 80;
  config.seed = 13;
  sim::World world{config};
  auto store = cdn::Observatory::Daily(world).BuildStore();

  fault::Schedule schedule;
  schedule.seed = 13;
  std::string parse_error;
  ASSERT_TRUE(fault::ParseSchedule("drop-days=3", &schedule, &parse_error));
  fault::Injector injector{schedule};
  auto dropped = injector.ApplyToStore(store);
  ASSERT_EQ(dropped.size(), 3u);

  std::string path = ::testing::TempDir() + "/ipscope_chaos_summary." +
                     std::to_string(getpid()) + ".bin";
  io::SaveStoreFile(store, path);

  std::ostringstream out, err;
  EXPECT_EQ(Main({"summary", path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("coverage:"), std::string::npos);
  EXPECT_NE(out.str().find("3 missing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliChaos, UsageMentionsChaos) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("chaos"), std::string::npos);
  EXPECT_NE(out.str().find("chaos-crash"), std::string::npos);
}

TEST(CliChaosCrash, EveryPointRecoversBitExactAtSmallScale) {
  std::string dir = ::testing::TempDir() + "ipscope_cli_chaos_crash_" +
                    std::to_string(getpid());
  std::ostringstream out, err;
  int rc = Main({"chaos-crash", "--blocks", "40", "--seeds", "1", "--dir",
                 dir},
                out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("pre-temp-write"), std::string::npos);
  EXPECT_NE(text.find("post-commit"), std::string::npos);
  EXPECT_NE(text.find("ingest.quarantined_files"), std::string::npos);
  EXPECT_NE(text.find("chaos-crash: PASS"), std::string::npos);
  EXPECT_EQ(text.find("FAIL"), std::string::npos) << text;
  std::filesystem::remove_all(dir);
}

TEST(CliChaosCrash, SeededRecoveryBugIsCaught) {
  // The run_all.sh teeth self-test in miniature: with the deliberate
  // skip-rollback bug enabled, recovery adopts uncommitted shards and the
  // gate must fail (pre-commit crash points diverge from the prefix).
  std::string dir = ::testing::TempDir() + "ipscope_cli_chaos_teeth_" +
                    std::to_string(getpid());
  ::setenv("IPSCOPE_INGEST_SKIP_ROLLBACK", "1", 1);
  std::ostringstream out, err;
  int rc = Main({"chaos-crash", "--blocks", "40", "--seeds", "1", "--dir",
                 dir},
                out, err);
  ::unsetenv("IPSCOPE_INGEST_SKIP_ROLLBACK");
  EXPECT_EQ(rc, 1) << out.str() << err.str();
  EXPECT_NE(out.str().find("chaos-crash: FAIL"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ipscope::cli
