#include "io/store_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <sstream>

#include "cdn/observatory.h"
#include "rng/rng.h"
#include "sim/world.h"

namespace ipscope::io {
namespace {

activity::ActivityStore RandomStore(std::uint64_t seed, int days,
                                    int blocks) {
  activity::ActivityStore store{days};
  rng::Xoshiro256 g{seed};
  for (int b = 0; b < blocks; ++b) {
    net::BlockKey key = g.NextBounded(1u << 24);
    activity::ActivityMatrix& m = store.GetOrCreate(key);
    for (int d = 0; d < days; ++d) {
      if (g.NextBool(0.5)) continue;  // leave many empty days
      for (int h = 0; h < 256; h += 1 + static_cast<int>(g.NextBounded(16))) {
        m.Set(d, h);
      }
    }
  }
  return store;
}

bool StoresEqual(const activity::ActivityStore& a,
                 const activity::ActivityStore& b) {
  if (a.days() != b.days() || a.BlockCount() != b.BlockCount()) return false;
  bool equal = true;
  a.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    const activity::ActivityMatrix* other = b.Find(key);
    if (other == nullptr) {
      equal = false;
      return;
    }
    for (int d = 0; d < a.days(); ++d) {
      if (m.Row(d) != other->Row(d)) equal = false;
    }
  });
  return equal;
}

TEST(StoreIo, RoundTripRandomStore) {
  auto store = RandomStore(42, 30, 50);
  std::stringstream buffer;
  SaveStore(store, buffer);
  auto loaded = LoadStore(buffer);
  EXPECT_TRUE(StoresEqual(store, loaded));
}

TEST(StoreIo, RoundTripEmptyStore) {
  activity::ActivityStore store{7};
  std::stringstream buffer;
  SaveStore(store, buffer);
  auto loaded = LoadStore(buffer);
  EXPECT_EQ(loaded.days(), 7);
  EXPECT_EQ(loaded.BlockCount(), 0u);
}

TEST(StoreIo, RoundTripObservatoryDataset) {
  sim::WorldConfig config;
  config.target_client_blocks = 200;
  sim::World world{config};
  auto store = cdn::Observatory::Daily(world).BuildStore();
  std::stringstream buffer;
  SaveStore(store, buffer);
  auto loaded = LoadStore(buffer);
  EXPECT_TRUE(StoresEqual(store, loaded));
  EXPECT_EQ(store.CountActive(0, store.days()),
            loaded.CountActive(0, loaded.days()));
}

TEST(StoreIo, RejectsBadMagic) {
  std::stringstream buffer{"NOTASTORExxxxxxxxxxxxxxxx"};
  EXPECT_THROW(LoadStore(buffer), std::runtime_error);
}

TEST(StoreIo, RejectsTruncation) {
  auto store = RandomStore(7, 20, 10);
  std::stringstream buffer;
  SaveStore(store, buffer);
  std::string bytes = buffer.str();
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{9}}) {
    std::stringstream truncated{bytes.substr(0, cut)};
    EXPECT_THROW(LoadStore(truncated), std::runtime_error) << cut;
  }
}

TEST(StoreIo, RejectsCorruptedDayIndex) {
  activity::ActivityStore store{5};
  store.GetOrCreate(100).Set(2, 7);
  std::stringstream buffer;
  SaveStore(store, buffer, StoreFormat::kV1);
  std::string bytes = buffer.str();
  // In the v1 format the day index u16 sits right after magic(8) +
  // days(4) + count(8) + key(4) + nonzero(4) = offset 28. Corrupt it
  // beyond the day range; v1 has no checksum, so only the semantic
  // validation can catch this.
  bytes[28] = 99;
  std::stringstream corrupted{bytes};
  EXPECT_THROW(LoadStore(corrupted), std::runtime_error);
}

TEST(StoreIo, FileRoundTrip) {
  auto store = RandomStore(11, 14, 20);
  std::string path = ::testing::TempDir() + "/ipscope_store_test." +
                     std::to_string(getpid()) + ".bin";
  SaveStoreFile(store, path);
  auto loaded = LoadStoreFile(path);
  EXPECT_TRUE(StoresEqual(store, loaded));
}

TEST(StoreIo, MissingFileThrows) {
  EXPECT_THROW(LoadStoreFile("/nonexistent/path/store.bin"),
               std::runtime_error);
}

TEST(StoreIo, CompressionSkipsEmptyDays) {
  // A store with one active day out of 1000 must serialize far smaller
  // than the dense equivalent (~32KB). The v2 format adds a coverage
  // bitmap (one bit per day), per-block checksums, and a footer, so its
  // fixed overhead is larger than v1's but still tiny vs dense.
  activity::ActivityStore store{1000};
  store.GetOrCreate(5).Set(500, 1);
  std::stringstream v1, v2;
  SaveStore(store, v1, StoreFormat::kV1);
  SaveStore(store, v2, StoreFormat::kV2);
  EXPECT_LT(v1.str().size(), 100u);
  EXPECT_LT(v2.str().size(), 250u);
}

}  // namespace
}  // namespace ipscope::io
