#include "activity/store.h"

#include <gtest/gtest.h>

#include <vector>

namespace ipscope::activity {
namespace {

TEST(ActivityStore, GetOrCreateKeepsSortedOrder) {
  ActivityStore store{5};
  store.GetOrCreate(300);
  store.GetOrCreate(100);
  store.GetOrCreate(200);
  store.GetOrCreate(100);  // existing
  EXPECT_EQ(store.BlockCount(), 3u);
  std::vector<net::BlockKey> keys;
  store.ForEach([&](net::BlockKey k, const ActivityMatrix&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<net::BlockKey>{100, 200, 300}));
}

TEST(ActivityStore, FindMissingReturnsNull) {
  ActivityStore store{5};
  store.GetOrCreate(100);
  EXPECT_NE(store.Find(100), nullptr);
  EXPECT_EQ(store.Find(101), nullptr);
}

TEST(ActivityStore, DailyActiveCounts) {
  ActivityStore store{3};
  ActivityMatrix& a = store.GetOrCreate(1);
  a.Set(0, 0);
  a.Set(0, 1);
  a.Set(2, 0);
  ActivityMatrix& b = store.GetOrCreate(2);
  b.Set(0, 5);
  auto counts = store.DailyActiveCounts();
  EXPECT_EQ(counts, (std::vector<std::int64_t>{3, 0, 1}));
}

TEST(ActivityStore, ActiveSetAndCounts) {
  ActivityStore store{2};
  ActivityMatrix& a = store.GetOrCreate(0x0A0000);  // 10.0.0.0/24
  a.Set(0, 1);
  a.Set(1, 7);
  ActivityMatrix& b = store.GetOrCreate(0x0A0001);
  b.Set(1, 255);

  net::Ipv4Set set = store.ActiveSet(0, 2);
  EXPECT_EQ(set.Count(), 3u);
  EXPECT_TRUE(set.Contains(net::IPv4Addr{10, 0, 0, 1}));
  EXPECT_TRUE(set.Contains(net::IPv4Addr{10, 0, 0, 7}));
  EXPECT_TRUE(set.Contains(net::IPv4Addr{10, 0, 1, 255}));

  EXPECT_EQ(store.CountActive(0, 2), 3u);
  EXPECT_EQ(store.CountActive(0, 1), 1u);
  EXPECT_EQ(store.CountActiveBlocks(0, 2), 2u);
  EXPECT_EQ(store.CountActiveBlocks(0, 1), 1u);
}

TEST(ActivityStore, ActiveSetWindowRestriction) {
  ActivityStore store{4};
  ActivityMatrix& m = store.GetOrCreate(5);
  m.Set(0, 10);
  m.Set(3, 20);
  EXPECT_EQ(store.ActiveSet(1, 3).Count(), 0u);
  EXPECT_EQ(store.ActiveSet(0, 4).Count(), 2u);
}

TEST(ActivityStore, CountMatchesSetCount) {
  // CountActive must agree with ActiveSet().Count() by construction.
  ActivityStore store{3};
  for (net::BlockKey k : {7u, 9u, 1000u}) {
    ActivityMatrix& m = store.GetOrCreate(k);
    for (int d = 0; d < 3; ++d) {
      for (int h = 0; h < 256; h += 3) m.Set(d, (h + static_cast<int>(k)) % 256);
    }
  }
  EXPECT_EQ(store.CountActive(0, 3), store.ActiveSet(0, 3).Count());
}

}  // namespace
}  // namespace ipscope::activity
