// lint-corpus-as: src/io/corpus.cc
// Clean twin: every close/flush result is consumed — branched on,
// returned, or assigned — and the one genuinely-discardable case (an
// error path already being unwound) carries a justified suppression.
#include <cstdio>
#include <unistd.h>

namespace corpus {

bool WriteChecked(std::FILE* f, int fd) {
  if (std::fflush(f) != 0) return false;
  int rc = std::fclose(f);
  if (rc != 0) return false;
  return ::close(fd) == 0;
}

void DiscardOnErrorPath(int fd) {
  // lint: close(the write already failed and the temp file is unlinked; a
  // close error here cannot lose committed data)
  ::close(fd);
}

}  // namespace corpus
