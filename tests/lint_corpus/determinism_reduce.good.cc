// lint-corpus-as: src/check/corpus.cc
// Clean twin: std::accumulate folds left-to-right, deterministically.
#include <numeric>
#include <vector>

namespace corpus {

double Total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace corpus
