// lint-corpus-as: src/serve/lint_guard_good.cc
// Clean twin: every touch of the annotated field happens under a RAII
// lock on the named mutex.
#include <mutex>

namespace corpus {

class SafeCounter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock{mu_};
    safe_total_ += 1;
  }

 private:
  std::mutex mu_;
  int safe_total_ = 0;  // guards: mu_
};

}  // namespace corpus
