// lint-corpus-as: src/scan/lint_cycle.h
// Clean half of the cycle pair: scan -> geo alone is a legal same-layer
// edge; the cycle is reported once, anchored in the .bad twin.
#pragma once

#include "geo/lint_cycle_helpers.h"

namespace corpus {
int ScanUsesGeo();
}  // namespace corpus
