// lint-corpus-as: src/io/lint_result.cc
// Violation: a statement-position call to a Result-returning function
// drops the error alternative on the floor.
#include "io/result.h"

namespace corpus {

ipscope::Result<int, char> ParseCorpusRecord(int raw);

void IngestRecord(int raw) {
  ParseCorpusRecord(raw);
}

}  // namespace corpus
