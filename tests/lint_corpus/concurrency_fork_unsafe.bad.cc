// lint-corpus-as: src/ingest/lint_fork.cc
// Violation: ingest pulls in the thread-pool module. chaos-crash forks
// ingest processes mid-write, and pool worker threads (like any lock or
// thread) do not survive fork().
#include "par/lint_fork_pool.h"

namespace corpus {
void IngestShard() {}
}  // namespace corpus
