// lint-corpus-as: src/io/corpus.cc
// Clean twin: catch-alls that rethrow, capture for rethrow, or report.
#include <exception>
#include <string>

namespace corpus {

bool Save(const std::string& path);

bool SaveOrRethrow(const std::string& path) {
  try {
    return Save(path);
  } catch (...) {
    throw;  // rethrown: the caller sees the failure
  }
}

std::exception_ptr SaveCapturing(const std::string& path) {
  try {
    Save(path);
  } catch (...) {
    return std::current_exception();  // captured for a later rethrow
  }
  return nullptr;
}

}  // namespace corpus
