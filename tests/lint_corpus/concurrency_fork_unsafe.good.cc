// lint-corpus-as: src/ingest/lint_fork_good.cc
// Clean twin: ingest stays single-threaded and single-process; fork()
// in the chaos-crash gate then has no locks or threads to corrupt.
#include <cstdint>

namespace corpus {
std::uint64_t IngestChecksum(std::uint64_t a, std::uint64_t b) {
  return a * 31 + b;
}
}  // namespace corpus
