// lint-corpus-as: src/stats/corpus.h
// Clean twin: qualified names; narrow using-declarations are fine.
#pragma once

#include <string>

namespace corpus {
using std::string;  // a using-declaration, not a using-directive
inline string Name() { return "corpus"; }
}  // namespace corpus
