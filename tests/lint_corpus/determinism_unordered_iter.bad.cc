// lint-corpus-as: src/analysis/corpus.cc
// Violation corpus: iterating unordered containers in a result layer.
#include <unordered_map>
#include <unordered_set>

namespace corpus {

int SumValues(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {  // finding: range-for
    total += key * value;
  }
  return total;
}

int FirstElement(std::unordered_set<int>& seen) {
  return *seen.begin();  // finding: explicit iterator walk
}

using AliasMap = std::unordered_map<int, double>;

double SumAlias(AliasMap& m) {
  double total = 0;
  for (const auto& [key, value] : m) {  // finding: via alias
    total += value;
  }
  return total;
}

}  // namespace corpus
