// lint-corpus-as: src/sim/lint_layering.cc
// Violation: sim (data layer) includes a serve (services layer) header;
// dependencies must point at same-or-lower layers.
#include "serve/lint_layering.h"

namespace corpus {
int SimulateWithServerConfig() { return 1; }
}  // namespace corpus
