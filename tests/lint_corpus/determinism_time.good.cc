// lint-corpus-as: src/sim/corpus.cc
// Clean twin: deterministic seeded PRNG, timestamps threaded through
// configuration instead of read from the wall clock.
#include <cstdint>

namespace corpus {

struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

int Roll(Rng& rng) { return static_cast<int>(rng.Next() % 6); }

long Stamp(long configured_unix_time) { return configured_unix_time; }

}  // namespace corpus
