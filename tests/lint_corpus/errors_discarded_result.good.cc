// lint-corpus-as: src/io/lint_result_good.cc
// Clean twin: the Result is bound and both alternatives are handled.
#include "io/result.h"

namespace corpus {

ipscope::Result<int, char> ParseCorpusRecordChecked(int raw);

int IngestRecord(int raw) {
  auto parsed = ParseCorpusRecordChecked(raw);
  if (!parsed.ok()) return -1;
  return parsed.value();
}

}  // namespace corpus
