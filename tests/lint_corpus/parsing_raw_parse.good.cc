// lint-corpus-as: src/cli/corpus.cc
// Clean twin: whole-string checked parse via std::from_chars, mirroring
// the blessed wrappers (cli parsers, par::ParseThreadsEnv).
#include <charconv>
#include <optional>
#include <string>

namespace corpus {

std::optional<int> BlocksFromArg(const std::string& arg) {
  int value = 0;
  const char* first = arg.data();
  const char* last = first + arg.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

}  // namespace corpus
