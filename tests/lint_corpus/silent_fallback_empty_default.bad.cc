// lint-corpus-as: src/scan/corpus.cc
// Violation corpus: `default: return <value>;` in an enum switch — a
// future enum member silently inherits the fallback instead of tripping
// -Wswitch.
namespace corpus {

enum class Kind { kAlpha, kBeta, kGamma };

int Weight(Kind kind) {
  switch (kind) {
    case Kind::kAlpha:
      return 3;
    case Kind::kBeta:
      return 5;
    default:
      return 0;  // finding: silent fallback value
  }
}

}  // namespace corpus
