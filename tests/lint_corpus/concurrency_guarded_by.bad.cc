// lint-corpus-as: src/serve/lint_guard.cc
// Violation: `pending_q_` is annotated as guarded by mu_, but Bump()
// touches it with no lock held.
#include <mutex>

namespace corpus {

class UnsafeCounter {
 public:
  void Bump() { pending_q_ += 1; }

 private:
  std::mutex mu_;
  int pending_q_ = 0;  // guards: mu_
};

}  // namespace corpus
