// lint-corpus-as: src/serve/lint_layering.cc
// Clean twin: serve (services) depending on stats (foundation) points
// down the layering, which is always legal.
#include "stats/lint_layering.h"

namespace corpus {
int ServeWithStats() { return 1; }
}  // namespace corpus
