// lint-corpus-as: src/sim/corpus.cc
// Violation corpus: wall-clock and entropy sources outside src/obs and
// bench/ make runs unreproducible.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace corpus {

int Roll() {
  return std::rand() % 6;  // finding: std::rand
}

unsigned Seed() {
  std::random_device rd;  // finding: random_device
  return rd();
}

long Stamp() {
  return time(nullptr);  // finding: wall clock
}

double Elapsed() {
  auto t0 = std::chrono::steady_clock::now();  // finding: argless now()
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace corpus
