// lint-corpus-as: src/io/corpus.cc
// Violation corpus: raw environment reads scattered through the code.
#include <cstdlib>
#include <string>

namespace corpus {

std::string OutputDir() {
  const char* dir = std::getenv("IPSCOPE_OUT_DIR");  // finding: getenv
  return dir ? dir : ".";
}

}  // namespace corpus
