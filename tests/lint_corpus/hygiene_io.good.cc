// lint-corpus-as: src/stats/corpus.cc
// Clean twin: library code takes an ostream& from the caller; snprintf
// into a buffer is formatting, not stream I/O.
#include <cstdio>
#include <ostream>
#include <string>

namespace corpus {

void Report(double value, std::ostream& os) { os << "value=" << value; }

std::string Format(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace corpus
