// lint-corpus-as: src/io/corpus.cc
// Violation corpus: close/flush results thrown away. Each discarded call
// is the last place an ENOSPC or quota error surfaces — ignoring it turns
// a lost write into a silent success.
#include <cstdio>
#include <unistd.h>

namespace corpus {

void WriteAndForget(std::FILE* f, int fd) {
  fflush(f);    // finding: flush result discarded
  fclose(f);    // finding: stdio close discarded
  ::close(fd);  // finding: POSIX close discarded (global-qualified)
}

}  // namespace corpus
