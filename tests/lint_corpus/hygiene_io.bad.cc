// lint-corpus-as: src/stats/corpus.cc
// Violation corpus: stdio writes from library code.
#include <cstdio>
#include <iostream>

namespace corpus {

void Report(double value) {
  printf("value=%f\n", value);  // finding: printf
}

void Warn(const char* what) {
  std::cerr << "warning: " << what << "\n";  // finding: std::cerr
}

}  // namespace corpus
