// lint-corpus-as: src/analysis/corpus.cc
// Clean twin: lookups into unordered containers are fine, iteration over
// ordered containers is fine, and a justified suppression silences a
// commutative accumulation.
#include <map>
#include <unordered_map>
#include <vector>

namespace corpus {

int Lookup(const std::unordered_map<int, int>& counts, int key) {
  auto it = counts.find(key);  // lookup, not iteration
  return it == counts.end() ? 0 : it->second;
}

int SumOrdered(const std::map<int, int>& sorted_counts) {
  int total = 0;
  for (const auto& [key, value] : sorted_counts) {  // std::map: ordered
    total += key * value;
  }
  return total;
}

int SumSuppressed(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // lint: ordered(integer addition is commutative, the total is identical
  // for any visit order)
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

}  // namespace corpus
