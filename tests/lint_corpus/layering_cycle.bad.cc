// lint-corpus-as: src/geo/lint_cycle.cc
// Violation half of a module cycle: geo includes scan while the clean
// twin (a scan header) includes geo. Each same-layer edge is legal on
// its own; together they close geo -> scan -> geo. The finding anchors
// here because geo is the smallest module name in the component.
#include "scan/lint_cycle.h"

namespace corpus {
int GeoUsesScan() { return 2; }
}  // namespace corpus
