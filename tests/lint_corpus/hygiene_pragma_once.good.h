// lint-corpus-as: src/netbase/corpus.h
// Clean twin: comments may precede the guard; code may not.
#pragma once

#include <cstdint>

namespace corpus {
using BlockKey = std::uint32_t;
}  // namespace corpus
