// lint-corpus-as: src/check/corpus.cc
// Violation corpus: std::reduce reassociates floating-point sums.
#include <numeric>
#include <vector>

namespace corpus {

double Total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);  // finding
}

}  // namespace corpus
