// lint-corpus-as: src/activity/corpus.cc
// Violation corpus: per-host bit probing inside loops in the activity hot
// paths. Each Get touches one bit; the Row(day) word kernels touch 64
// hosts per memory access.

namespace corpus {

struct Matrix {
  bool Get(int day, int host) const;
};

int CountActive(const Matrix& m, int days) {
  int total = 0;
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 256; ++h) {
      if (m.Get(d, h)) ++total;  // finding: bit probe in a loop
    }
  }
  return total;
}

int FirstActiveDay(const Matrix* m, int host, int days) {
  for (int d = 0; d < days; ++d)
    if (m->Get(d, host)) return d;  // finding: single-statement body
  return -1;
}

}  // namespace corpus
