// lint-corpus-as: src/analysis/corpus.cc
// Clean twin: the justification says why the contract holds.
#include <unordered_map>

namespace corpus {

int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // lint: ordered(integer addition is commutative, so the total is the
  // same for any visit order)
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

}  // namespace corpus
