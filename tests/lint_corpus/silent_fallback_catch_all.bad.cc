// lint-corpus-as: src/io/corpus.cc
// Violation corpus: a catch-all that swallows the exception entirely —
// the caller can no longer distinguish success from failure.
#include <string>

namespace corpus {

bool Save(const std::string& path);

bool TrySave(const std::string& path) {
  try {
    return Save(path);
  } catch (...) {  // finding: swallows without rethrow or report
    return false;
  }
}

}  // namespace corpus
