// lint-corpus-as: src/cli/corpus.cc
// Violation corpus: unchecked parses silently turn garbage into 0 (atoi)
// or abort the process (stoull on junk).
#include <cstdlib>
#include <string>

namespace corpus {

int BlocksFromArg(const char* arg) {
  return atoi(arg);  // finding: atoi
}

unsigned long long SeedFromFlag(const std::string& flag) {
  return std::stoull(flag);  // finding: stoull
}

long PortFrom(const char* text) {
  char* end = nullptr;
  return strtol(text, &end, 10);  // finding: strtol
}

}  // namespace corpus
