// lint-corpus-as: src/analysis/corpus.cc
// Violation corpus: a suppression with an empty justification suppresses
// nothing and is itself a finding — the why is mandatory.
#include <unordered_map>

namespace corpus {

int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // lint: ordered()
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

}  // namespace corpus
