// lint-corpus-as: src/scan/corpus.cc
// Clean twin: every enum member enumerated (so -Wswitch flags additions);
// a default that does work, or a bare `return;`, is not a silent value.
namespace corpus {

enum class Kind { kAlpha, kBeta, kGamma };

int Weight(Kind kind) {
  switch (kind) {
    case Kind::kAlpha:
      return 3;
    case Kind::kBeta:
      return 5;
    case Kind::kGamma:
      return 0;
  }
  return 0;
}

void Log(int code);

int WeightLogged(Kind kind) {
  switch (kind) {
    case Kind::kAlpha:
      return 3;
    default: {
      Log(static_cast<int>(kind));  // default with a body is deliberate
      return 0;
    }
  }
}

}  // namespace corpus
