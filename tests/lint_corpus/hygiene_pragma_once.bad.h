// lint-corpus-as: src/netbase/corpus.h
// Violation corpus: a header that opens with code instead of #pragma once.
#include <cstdint>

namespace corpus {
using BlockKey = std::uint32_t;
}  // namespace corpus
