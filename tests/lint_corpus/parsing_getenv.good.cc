// lint-corpus-as: src/io/corpus.cc
// Clean twin: environment reads go through the blessed wrapper.
#include <optional>
#include <string>

namespace corpus {

std::optional<std::string> EnvString(const char* name);  // obs::EnvString

std::string OutputDir() {
  return EnvString("IPSCOPE_OUT_DIR").value_or(".");
}

}  // namespace corpus
