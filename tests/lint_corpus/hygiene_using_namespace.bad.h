// lint-corpus-as: src/stats/corpus.h
// Violation corpus: `using namespace` in a header leaks into includers.
#pragma once

#include <string>

using namespace std;  // finding

namespace corpus {
inline string Name() { return "corpus"; }
}  // namespace corpus
