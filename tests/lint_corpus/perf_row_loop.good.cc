// lint-corpus-as: src/activity/corpus.cc
// Clean twin: whole-row word kernels instead of per-host bit probes, and
// a straight-line Get (fine — the rule only flags loops).
#include <bit>
#include <cstdint>

namespace corpus {

struct Matrix {
  bool Get(int day, int host) const;
  const std::uint64_t* Row(int day) const;
};

int CountActive(const Matrix& m, int days) {
  int total = 0;
  for (int d = 0; d < days; ++d) {
    const std::uint64_t* row = m.Row(d);
    for (int w = 0; w < 4; ++w) total += std::popcount(row[w]);
  }
  return total;
}

bool ProbeOnce(const Matrix& m) { return m.Get(0, 0); }

}  // namespace corpus
