// Query-daemon tests: frame decoding, the DirectAnswer oracle, cache
// byte-identity, snapshot isolation under concurrent reload, and a
// multi-threaded hammer that diffs every served response against direct
// ActivityStore/analysis calls on the same snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "activity/churn.h"
#include "activity/store.h"
#include "geo/country.h"
#include "netbase/prefix.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "serve/server.h"

namespace ipscope::serve {
namespace {

// A small deterministic store: three /24 blocks under 10.0.0.0/16 plus one
// far-away block, 14 days, distinct per-block activity shapes. `variant`
// perturbs day coverage so two stores built from it answer differently.
activity::ActivityStore MakeStore(int variant = 0) {
  activity::ActivityStore store{14};
  // Insertion keeps blocks sorted, so grab each matrix only after all four
  // keys exist (GetOrCreate may move earlier matrices).
  for (net::BlockKey key : {0x0A0000, 0x0A0001, 0x0A0002, 0xC0A800}) {
    store.GetOrCreate(key);
  }
  activity::ActivityMatrix& a = store.GetOrCreate(0x0A0000);  // 10.0.0.0/24
  activity::ActivityMatrix& b = store.GetOrCreate(0x0A0001);  // 10.0.1.0/24
  activity::ActivityMatrix& c = store.GetOrCreate(0x0A0002);  // 10.0.2.0/24
  activity::ActivityMatrix& d = store.GetOrCreate(0xC0A800);  // 192.168.0.0/24
  for (int day = 0; day < 14; ++day) {
    for (int host = 0; host < 40; ++host) a.Set(day, host);  // constant
    if (day % 2 == 0) b.Set(day, 7);                         // periodic
    c.Set(day, day * 3);                                     // wandering
    if (day < 7) d.Set(day, 1);                              // disappears
  }
  if (variant != 0) store.SetDayCovered(0, false);
  return store;
}

std::vector<BlockAttribution> MakeAttribution() {
  std::int16_t country_a = 0;
  std::int16_t country_b = 1;
  return {
      {0x0A0000, 65001, country_a},
      {0x0A0001, 65001, country_b},
      {0x0A0002, 65002, country_a},
      {0xC0A800, 65002, country_b},
  };
}

std::uint64_t ParseSnapshotId(const std::string& response) {
  auto doc = obs::json::Parse(response);
  const obs::json::Value* id = doc.Find("snapshot");
  return id ? static_cast<std::uint64_t>(id->AsNumber()) : 0;
}

// --- framing ---------------------------------------------------------------

TEST(ServeFrame, EncodeDecodeRoundTrip) {
  std::string frame = EncodeFrame(R"({"endpoint": "summary"})");
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().body, R"({"endpoint": "summary"})");
  EXPECT_EQ(decoded.value().consumed, frame.size());
}

TEST(ServeFrame, EmptyBodyRoundTrips) {
  std::string frame = EncodeFrame("");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(ServeFrame, TruncatedHeaderIsTyped) {
  auto decoded = DecodeFrame("IPS");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, FrameError::Kind::kTruncated);
  EXPECT_NE(decoded.error().ToString().find("truncated"), std::string::npos);
}

TEST(ServeFrame, BadMagicIsTypedWithOffset) {
  std::string frame = EncodeFrame("{}");
  frame[0] = 'X';
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, FrameError::Kind::kBadMagic);
  EXPECT_EQ(decoded.error().offset, 0u);
}

TEST(ServeFrame, StoreFileMagicIsRejected) {
  // A v2 store file piped at the daemon must fail as bad magic, not hang.
  auto decoded = DecodeFrame("IPSCOPE2........");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, FrameError::Kind::kBadMagic);
}

TEST(ServeFrame, OversizedBodyIsRejectedBeforeAllocation) {
  std::string frame = EncodeFrame("x");
  // Patch the length field to 2 MiB against a 1 MiB ceiling.
  std::uint32_t huge = 2u << 20;
  for (int i = 0; i < 4; ++i) {
    frame[4 + static_cast<std::size_t>(i)] =
        static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  auto decoded = DecodeFrame(frame, kDefaultMaxBodyBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, FrameError::Kind::kOversized);
  EXPECT_EQ(decoded.error().offset, 4u);
}

TEST(ServeFrame, TruncatedBodyIsTyped) {
  std::string frame = EncodeFrame("hello world");
  frame.resize(frame.size() - 4);
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, FrameError::Kind::kTruncated);
}

TEST(ServeFrame, KindNamesAreStable) {
  EXPECT_STREQ(FrameErrorKindName(FrameError::Kind::kTruncated), "truncated");
  EXPECT_STREQ(FrameErrorKindName(FrameError::Kind::kBadMagic), "bad-magic");
  EXPECT_STREQ(FrameErrorKindName(FrameError::Kind::kOversized), "oversized");
}

// --- DirectAnswer oracle anchors -------------------------------------------
//
// DirectAnswer is the oracle every other test diffs against, so it is
// itself anchored here against direct store/analysis calls.

TEST(ServeDirect, SummaryMatchesStoreCounts) {
  auto store = MakeStore();
  std::string response =
      Server::DirectAnswer(store, 1, {}, R"({"endpoint": "summary"})");
  auto doc = obs::json::Parse(response);
  EXPECT_TRUE(doc.Find("ok")->AsBool());
  EXPECT_EQ(doc.Find("endpoint")->AsString(), "summary");
  EXPECT_EQ(ParseSnapshotId(response), 1u);
  const obs::json::Value* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("days")->AsNumber(), store.days());
  EXPECT_EQ(result->Find("blocks")->AsNumber(),
            static_cast<double>(store.keys().size()));
  EXPECT_EQ(result->Find("unique_addresses")->AsNumber(),
            static_cast<double>(store.CountActive(0, store.days())));
  const auto& daily = result->Find("active_per_day")->AsArray();
  auto want = store.DailyActiveCounts();
  ASSERT_EQ(daily.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(daily[i].AsNumber(), static_cast<double>(want[i]));
  }
}

TEST(ServeDirect, ChurnRendersAnalyzerResultsExactly) {
  auto store = MakeStore();
  activity::ChurnAnalyzer analyzer{store};
  auto series = analyzer.Churn(7);
  std::string response = Server::DirectAnswer(
      store, 1, {}, R"({"endpoint": "churn", "window": 7})");
  // Bit-identity contract: the response must contain each percentage
  // rendered with serve::JsonNumber (%.17g), not a re-rounded variant.
  for (double v : series.up_pct) {
    EXPECT_NE(response.find(JsonNumber(v)), std::string::npos)
        << "up_pct " << v << " missing from " << response;
  }
  for (double v : series.down_pct) {
    EXPECT_NE(response.find(JsonNumber(v)), std::string::npos);
  }
  EXPECT_NE(response.find(JsonNumber(series.up.median)), std::string::npos);
  EXPECT_NE(response.find(JsonNumber(series.down.median)), std::string::npos);
  auto doc = obs::json::Parse(response);
  const auto& pairs = doc.Find("result")->Find("pairs")->AsArray();
  ASSERT_EQ(pairs.size(), series.pairs.size());
}

TEST(ServeDirect, PointReportsAbsentBlock) {
  auto store = MakeStore();
  std::string response = Server::DirectAnswer(
      store, 1, {}, R"({"endpoint": "point", "block": "10.9.9.0/24"})");
  auto doc = obs::json::Parse(response);
  EXPECT_TRUE(doc.Find("ok")->AsBool());
  EXPECT_FALSE(doc.Find("result")->Find("present")->AsBool());
}

TEST(ServeDirect, PointHostListsActiveDays) {
  auto store = MakeStore();
  std::string response = Server::DirectAnswer(
      store, 1, {},
      R"({"endpoint": "point", "block": "10.0.1.0/24", "host": 7})");
  auto doc = obs::json::Parse(response);
  const obs::json::Value* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("active_days")->AsNumber(), 7.0);  // days 0,2,..,12
  const auto& days = result->Find("days")->AsArray();
  ASSERT_EQ(days.size(), 7u);
  for (std::size_t i = 0; i < days.size(); ++i) {
    EXPECT_EQ(days[i].AsNumber(), static_cast<double>(2 * i));
  }
}

TEST(ServeDirect, PrefixCountsOnlyContainedBlocks) {
  auto store = MakeStore();
  std::string response = Server::DirectAnswer(
      store, 1, {}, R"({"endpoint": "prefix", "prefix": "10.0.0.0/16"})");
  auto doc = obs::json::Parse(response);
  const obs::json::Value* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  // 192.168.0.0/24 must be excluded: 3 of the 4 blocks are under 10.0/16.
  EXPECT_EQ(result->Find("active_blocks")->AsNumber(), 3.0);
  EXPECT_EQ(result->Find("active_addresses")->AsNumber(),
            40.0 + 1.0 + 14.0);  // constant + periodic + wandering
}

TEST(ServeDirect, AttributionEndpointsNeedTheTable) {
  auto store = MakeStore();
  std::string response = Server::DirectAnswer(
      store, 1, {}, R"({"endpoint": "as", "asn": 65001})");
  auto doc = obs::json::Parse(response);
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  EXPECT_EQ(doc.Find("error")->Find("kind")->AsString(),
            "attribution-unavailable");
}

TEST(ServeDirect, AsEndpointAggregatesAttributedBlocks) {
  auto store = MakeStore();
  auto attribution = MakeAttribution();
  std::string response = Server::DirectAnswer(
      store, 1, attribution, R"({"endpoint": "as", "asn": 65001})");
  auto doc = obs::json::Parse(response);
  ASSERT_TRUE(doc.Find("ok")->AsBool());
  const obs::json::Value* result = doc.Find("result");
  EXPECT_EQ(result->Find("attributed_blocks")->AsNumber(), 2.0);
  EXPECT_EQ(result->Find("active_addresses")->AsNumber(), 40.0 + 1.0);
}

TEST(ServeDirect, CountryEndpointUsesGeoIndex) {
  auto store = MakeStore();
  auto attribution = MakeAttribution();
  std::string code{geo::Countries()[0].code};
  std::string response = Server::DirectAnswer(
      store, 1, attribution,
      R"({"endpoint": "country", "code": ")" + code + "\"}");
  auto doc = obs::json::Parse(response);
  ASSERT_TRUE(doc.Find("ok")->AsBool());
  // Country index 0 owns 10.0.0.0/24 (constant) and 10.0.2.0/24 (wandering).
  EXPECT_EQ(doc.Find("result")->Find("attributed_blocks")->AsNumber(), 2.0);
  EXPECT_EQ(doc.Find("result")->Find("active_addresses")->AsNumber(),
            40.0 + 14.0);
}

TEST(ServeDirect, TypedErrorsForBadInput) {
  auto store = MakeStore();
  auto kind_of = [&](std::string_view body) {
    auto doc = obs::json::Parse(Server::DirectAnswer(store, 1, {}, body));
    EXPECT_FALSE(doc.Find("ok")->AsBool());
    return doc.Find("error")->Find("kind")->AsString();
  };
  EXPECT_EQ(kind_of("{not json"), "bad-json");
  EXPECT_EQ(kind_of(R"({"endpoint": "no-such"})"), "unknown-endpoint");
  EXPECT_EQ(kind_of(R"({"endpoint": "point"})"), "bad-request");
  EXPECT_EQ(kind_of(R"({"endpoint": "prefix", "prefix": "10.0.0.0/28"})"),
            "bad-request");  // length > 24
  EXPECT_EQ(kind_of(R"({"endpoint": "country", "code": "zz"})"),
            "bad-request");
  EXPECT_EQ(kind_of(R"({"endpoint": "churn", "window": 0})"), "bad-request");
}

// --- Server: cache, frames, batch ------------------------------------------

TEST(ServeServer, CacheHitIsByteIdenticalToMiss) {
  Server server{MakeStore()};
  auto& hits = obs::GlobalRegistry().GetCounter("serve.cache.hits");
  std::string body = R"({"endpoint": "summary"})";
  std::string miss = server.HandleRequest(body);
  std::uint64_t before = hits.value();
  std::string hit = server.HandleRequest(body);
  EXPECT_EQ(miss, hit);
  EXPECT_GT(hits.value(), before);
  EXPECT_EQ(miss, Server::DirectAnswer(MakeStore(), 1, {}, body));
}

TEST(ServeServer, DisabledCacheStillMatchesOracle) {
  ServerOptions options;
  options.cache_capacity = 0;
  Server server{MakeStore(), options};
  std::string body = R"({"endpoint": "churn", "window": 7})";
  EXPECT_EQ(server.HandleRequest(body), server.HandleRequest(body));
  EXPECT_EQ(server.HandleRequest(body),
            Server::DirectAnswer(MakeStore(), 1, {}, body));
}

TEST(ServeServer, HandleFrameWrapsBadFramesAsTypedErrors) {
  Server server{MakeStore()};
  std::string response_frame = server.HandleFrame("garbage-not-a-frame");
  auto decoded = DecodeFrame(response_frame);
  ASSERT_TRUE(decoded.ok());
  auto doc = obs::json::Parse(decoded.value().body);
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  EXPECT_EQ(doc.Find("error")->Find("kind")->AsString(), "bad-frame");
}

TEST(ServeServer, HandleFrameRoundTripsGoodRequests) {
  Server server{MakeStore()};
  std::string body = R"({"endpoint": "summary"})";
  std::string response_frame = server.HandleFrame(EncodeFrame(body));
  auto decoded = DecodeFrame(response_frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().body, server.HandleRequest(body));
}

TEST(ServeServer, BatchIsPositionallyAlignedWithIndividualAnswers) {
  Server server{MakeStore()};
  std::vector<std::string> bodies = {
      R"({"endpoint": "summary"})",
      R"({"endpoint": "patterns"})",
      R"({"endpoint": "point", "block": "10.0.0.0/24"})",
      "{bad json",
  };
  auto batch = server.HandleBatch(bodies);
  ASSERT_EQ(batch.size(), bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(batch[i], server.HandleRequest(bodies[i])) << "index " << i;
  }
}

TEST(ServeCache, FingerprintSeparatesSnapshots) {
  EXPECT_NE(FingerprintQuery("q", 1), FingerprintQuery("q", 2));
  EXPECT_NE(FingerprintQuery("a", 1), FingerprintQuery("b", 1));
  EXPECT_EQ(FingerprintQuery("a", 7), FingerprintQuery("a", 7));
}

// --- snapshot isolation -----------------------------------------------------

TEST(ServeSnapshot, ReloadGivesNewIdAndNewAnswers) {
  Server server{MakeStore(0)};
  std::string body = R"({"endpoint": "summary"})";
  std::string before = server.HandleRequest(body);
  EXPECT_EQ(ParseSnapshotId(before), 1u);
  EXPECT_EQ(before, Server::DirectAnswer(MakeStore(0), 1, {}, body));

  std::uint64_t new_id = server.Reload(MakeStore(1));
  EXPECT_EQ(new_id, 2u);
  EXPECT_EQ(server.snapshot_id(), 2u);
  std::string after = server.HandleRequest(body);
  EXPECT_EQ(ParseSnapshotId(after), 2u);
  EXPECT_EQ(after, Server::DirectAnswer(MakeStore(1), 2, {}, body));
  EXPECT_NE(before, after);  // day-0 coverage shift must be visible
}

TEST(ServeSnapshot, ConcurrentReloadNeverMixesSnapshots) {
  Server server{MakeStore(0)};
  auto oracle_even = MakeStore(1);  // installed at even ids (2, 4, ...)
  auto oracle_odd = MakeStore(0);   // id 1 and odd reinstalls (3, 5, ...)
  const std::vector<std::string> bodies = {
      R"({"endpoint": "summary"})",
      R"({"endpoint": "churn", "window": 7})",
      R"({"endpoint": "point", "block": "192.168.0.0/24"})",
  };
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& body = bodies[static_cast<std::size_t>(i++) %
                                         bodies.size()];
        std::string got = server.HandleRequest(body);
        std::uint64_t id = ParseSnapshotId(got);
        const auto& oracle = (id % 2 == 0) ? oracle_even : oracle_odd;
        if (got != Server::DirectAnswer(oracle, id, {}, body)) ++mismatches;
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    std::uint64_t id = server.Reload(MakeStore(round % 2 == 1 ? 0 : 1));
    EXPECT_EQ(id, static_cast<std::uint64_t>(round + 2));
    std::this_thread::yield();
  }
  // A request started strictly after the last Reload must see its id.
  std::uint64_t final_id = server.snapshot_id();
  EXPECT_EQ(ParseSnapshotId(server.HandleRequest(bodies[0])), final_id);
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- the hammer -------------------------------------------------------------

TEST(ServeHammer, EightThreadsStayBitIdenticalToOracle) {
  Server server{MakeStore()};
  server.SetAttribution(MakeAttribution());
  auto oracle = MakeStore();
  auto attribution = MakeAttribution();
  const std::vector<std::string> bodies = {
      R"({"endpoint": "summary"})",
      R"({"endpoint": "churn", "window": 7})",
      R"({"endpoint": "churn", "window": 3})",
      R"({"endpoint": "patterns"})",
      R"({"endpoint": "patterns", "prefix": "10.0.0.0/16"})",
      R"({"endpoint": "point", "block": "10.0.0.0/24"})",
      R"({"endpoint": "point", "block": "10.0.1.0/24", "host": 7})",
      R"({"endpoint": "prefix", "prefix": "10.0.0.0/16"})",
      R"({"endpoint": "as", "asn": 65002})",
      R"({"endpoint": "no-such"})",
  };
  std::vector<std::string> expected;
  for (const std::string& body : bodies) {
    expected.push_back(
        EncodeFrame(Server::DirectAnswer(oracle, 1, attribution, body)));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < 40; ++r) {
        std::size_t i = static_cast<std::size_t>(t + r) % bodies.size();
        if (server.HandleFrame(EncodeFrame(bodies[i])) != expected[i]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ipscope::serve
