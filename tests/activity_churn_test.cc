#include "activity/churn.h"

#include <gtest/gtest.h>

namespace ipscope::activity {
namespace {

TEST(Churn, SummarizeMinMedianMax) {
  auto s = Summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  auto empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
}

TEST(Churn, NoChurnWhenStable) {
  ActivityStore store{6};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int d = 0; d < 6; ++d) {
    m.Set(d, 10);
    m.Set(d, 20);
  }
  ChurnAnalyzer churn{store};
  auto series = churn.Churn(1);
  ASSERT_EQ(series.up_pct.size(), 5u);
  for (double v : series.up_pct) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : series.down_pct) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Churn, FullTurnoverIs100Percent) {
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(1);
  m.Set(0, 1);
  m.Set(1, 2);  // completely different address
  ChurnAnalyzer churn{store};
  auto series = churn.Churn(1);
  ASSERT_EQ(series.up_pct.size(), 1u);
  EXPECT_DOUBLE_EQ(series.up_pct[0], 100.0);
  EXPECT_DOUBLE_EQ(series.down_pct[0], 100.0);
}

TEST(Churn, PaperPercentageDefinition) {
  // W0 = {1,2,3,4}, W1 = {3,4,5}: up = |{5}|/|W1| = 33.3%,
  // down = |{1,2}|/|W0| = 50%.
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int h : {1, 2, 3, 4}) m.Set(0, h);
  for (int h : {3, 4, 5}) m.Set(1, h);
  ChurnAnalyzer churn{store};
  auto series = churn.Churn(1);
  EXPECT_NEAR(series.up_pct[0], 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(series.down_pct[0], 50.0, 1e-9);
}

TEST(Churn, WindowUnionAbsorbsIntraWindowChurn) {
  // Alternating daily activity looks stable at 2-day windows.
  ActivityStore store{4};
  ActivityMatrix& m = store.GetOrCreate(1);
  m.Set(0, 1);
  m.Set(1, 2);
  m.Set(2, 1);
  m.Set(3, 2);
  ChurnAnalyzer churn{store};
  auto daily = churn.Churn(1);
  EXPECT_GT(daily.up.median, 99.0);
  auto two_day = churn.Churn(2);
  ASSERT_EQ(two_day.up_pct.size(), 1u);
  EXPECT_DOUBLE_EQ(two_day.up_pct[0], 0.0);
}

TEST(Churn, DailyEventsCounts) {
  ActivityStore store{3};
  ActivityMatrix& m = store.GetOrCreate(1);
  m.Set(0, 1);
  m.Set(1, 1);
  m.Set(1, 2);  // up on day pair (0,1)
  m.Set(2, 2);  // host 1 goes down on pair (1,2)
  ChurnAnalyzer churn{store};
  auto events = churn.DailyEvents();
  EXPECT_EQ(events.active, (std::vector<std::int64_t>{1, 2, 1}));
  EXPECT_EQ(events.up, (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(events.down, (std::vector<std::int64_t>{0, 1}));
}

TEST(Churn, VersusFirstTracksCumulativeDivergence) {
  ActivityStore store{3};
  ActivityMatrix& m = store.GetOrCreate(1);
  m.Set(0, 1);
  m.Set(0, 2);
  m.Set(1, 2);
  m.Set(1, 3);
  m.Set(2, 4);
  ChurnAnalyzer churn{store};
  auto vf = churn.VersusFirst(1);
  EXPECT_EQ(vf.appear, (std::vector<std::uint64_t>{0, 1, 1}));
  EXPECT_EQ(vf.disappear, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(vf.active, (std::vector<std::uint64_t>{2, 2, 1}));
}

TEST(Churn, PerGroupChurnFiltersSmallGroups) {
  ActivityStore store{4};
  // Group A: two blocks, 256 addresses each, stable -> qualifies at 512.
  for (net::BlockKey key : {1u, 2u}) {
    ActivityMatrix& m = store.GetOrCreate(key);
    for (int d = 0; d < 4; ++d) {
      for (int h = 0; h < 256; ++h) m.Set(d, h);
    }
  }
  // Group B: one address only -> filtered out at min_active_ips=100.
  store.GetOrCreate(50).Set(0, 1);

  ChurnAnalyzer churn{store};
  auto groups = churn.PerGroupChurn(
      1, [](net::BlockKey key) { return key < 10 ? 100u : 200u; },
      /*min_active_ips=*/100);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].group, 100u);
  EXPECT_EQ(groups[0].total_active_ips, 512u);
  EXPECT_DOUBLE_EQ(groups[0].median_up_pct, 0.0);
}

TEST(Churn, PerGroupChurnMedians) {
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(1);
  // 4 addresses in W0, 4 in W1, 2 overlap: up% = 50, down% = 50.
  for (int h : {1, 2, 3, 4}) m.Set(0, h);
  for (int h : {3, 4, 5, 6}) m.Set(1, h);
  ChurnAnalyzer churn{store};
  auto groups = churn.PerGroupChurn(
      1, [](net::BlockKey) { return 9u; }, /*min_active_ips=*/1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].median_up_pct, 50.0);
  EXPECT_DOUBLE_EQ(groups[0].median_down_pct, 50.0);
}

}  // namespace
}  // namespace ipscope::activity
