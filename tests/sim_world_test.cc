#include "sim/world.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace ipscope::sim {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.target_client_blocks = 400;
  return config;
}

TEST(World, DeterministicInSeed) {
  World a{SmallConfig()};
  World b{SmallConfig()};
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].block, b.blocks()[i].block);
    EXPECT_EQ(a.blocks()[i].asn, b.blocks()[i].asn);
    EXPECT_EQ(a.blocks()[i].base.kind, b.blocks()[i].base.kind);
    EXPECT_EQ(a.blocks()[i].block_seed, b.blocks()[i].block_seed);
  }
  ASSERT_EQ(a.bgp_events().size(), b.bgp_events().size());
}

TEST(World, DifferentSeedsDiffer) {
  WorldConfig c1 = SmallConfig();
  WorldConfig c2 = SmallConfig();
  c2.seed = c1.seed + 1;
  World a{c1}, b{c2};
  // At minimum, the block plans should not be identical.
  bool any_diff = a.blocks().size() != b.blocks().size();
  for (std::size_t i = 0; !any_diff && i < a.blocks().size(); ++i) {
    any_diff = a.blocks()[i].block != b.blocks()[i].block ||
               a.blocks()[i].base.kind != b.blocks()[i].base.kind;
  }
  EXPECT_TRUE(any_diff);
}

TEST(World, ReachesClientTarget) {
  World world{SmallConfig()};
  EXPECT_GE(world.client_block_count(), 400u);
  EXPECT_LT(world.client_block_count(), 600u);  // not wildly overshooting
}

TEST(World, BlocksAreUniqueAndOwned) {
  World world{SmallConfig()};
  std::set<net::BlockKey> keys;
  for (const BlockPlan& plan : world.blocks()) {
    EXPECT_TRUE(keys.insert(net::BlockKeyOf(plan.block)).second)
        << "duplicate block " << plan.block;
    EXPECT_GE(plan.asn, 1000u);
    EXPECT_GE(plan.country, 0);
    EXPECT_EQ(plan.block.length(), 24);
  }
  // Every block is referenced by exactly one AS.
  std::size_t referenced = 0;
  std::unordered_set<std::uint32_t> seen;
  for (const AsPlan& as : world.ases()) {
    for (std::uint32_t bi : as.block_indices) {
      EXPECT_TRUE(seen.insert(bi).second);
      EXPECT_EQ(world.blocks()[bi].asn, as.asn);
      ++referenced;
    }
  }
  EXPECT_EQ(referenced, world.blocks().size());
}

TEST(World, HostPermIsPermutation) {
  World world{SmallConfig()};
  for (const BlockPlan& plan : world.blocks()) {
    std::array<bool, 256> seen{};
    for (std::uint8_t v : plan.host_perm) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(World, PolicyParamsWithinBounds) {
  World world{SmallConfig()};
  for (const BlockPlan& plan : world.blocks()) {
    const PolicyParams& p = plan.base;
    EXPECT_LE(p.pool_size, 256);
    if (p.kind != PolicyKind::kUnused) {
      EXPECT_GE(p.pool_size, 1);
    }
    EXPECT_GE(p.occupancy, 0.0f);
    EXPECT_LE(p.occupancy, 1.0f);
    EXPECT_GE(p.daily_p, 0.0f);
    EXPECT_LE(p.daily_p, 1.0f);
    if (p.kind == PolicyKind::kDynamicLong) {
      EXPECT_GE(p.lease_days, 1);
    }
  }
}

TEST(World, ReconfigurationFractionRoughlyHonored) {
  WorldConfig config = SmallConfig();
  config.target_client_blocks = 1000;
  config.reconfig_fraction = 0.10;
  World world{config};
  std::size_t reconfigured = 0, clients = 0;
  for (const BlockPlan& plan : world.blocks()) {
    if (IsClientPolicy(plan.base.kind)) {
      ++clients;
      if (plan.HasReconfiguration()) ++reconfigured;
    }
  }
  double frac = static_cast<double>(reconfigured) /
                static_cast<double>(clients);
  EXPECT_NEAR(frac, 0.10, 0.03);
  // Reconfigurations land inside the daily observation window.
  for (const BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration()) {
      EXPECT_GE(plan.events[0].day, 228);
      EXPECT_LT(plan.events[0].day, 340);
    }
  }
}

TEST(World, YearEventsAreScheduled) {
  WorldConfig config = SmallConfig();
  config.target_client_blocks = 1000;
  World world{config};
  std::size_t activations = 0, deactivations = 0;
  for (const BlockPlan& plan : world.blocks()) {
    if (plan.active_from > 0) ++activations;
    if (plan.active_until < std::numeric_limits<std::int32_t>::max()) {
      ++deactivations;
    }
  }
  EXPECT_GT(activations, 30u);
  EXPECT_GT(deactivations, 30u);
  EXPECT_FALSE(world.bgp_events().empty());
  // Events are sorted by (key, day).
  for (std::size_t i = 1; i < world.bgp_events().size(); ++i) {
    EXPECT_FALSE(world.bgp_events()[i] < world.bgp_events()[i - 1]);
  }
}

TEST(World, PlannedAsnLookup) {
  World world{SmallConfig()};
  const BlockPlan& plan = world.blocks()[0];
  auto asn = world.PlannedAsnOf(net::BlockKeyOf(plan.block));
  ASSERT_TRUE(asn.has_value());
  EXPECT_EQ(*asn, plan.asn);
  EXPECT_FALSE(world.PlannedAsnOf(0xFFFFFF).has_value());
}

TEST(World, PolicyMixIsDiverse) {
  WorldConfig config = SmallConfig();
  config.target_client_blocks = 1500;
  World world{config};
  std::array<int, 9> kind_counts{};
  for (const BlockPlan& plan : world.blocks()) {
    ++kind_counts[static_cast<std::size_t>(plan.base.kind)];
  }
  // All the main policy kinds must be represented at this scale.
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kStatic)], 50);
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kDynamicShort)],
            50);
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kDynamicLong)],
            20);
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kCgnGateway)],
            20);
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kServerFarm)], 5);
  EXPECT_GT(kind_counts[static_cast<std::size_t>(PolicyKind::kRouterInfra)],
            5);
}

}  // namespace
}  // namespace ipscope::sim
