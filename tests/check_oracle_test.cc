// Tests for check::reference (the naive oracles), check::Diff, and the
// differential sweep itself.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "activity/store.h"
#include "check/diff.h"
#include "check/reference.h"
#include "check/sweep.h"
#include "obs/registry.h"
#include "stats/capture_recapture.h"

namespace ipscope {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Diff, RecordsFullCoordinatesOnMismatch) {
  check::Diff diff{"case-x"};
  diff.ExpectEq("series-a", "day=3", std::int64_t{5}, std::int64_t{5});
  EXPECT_TRUE(diff.ok());
  diff.ExpectEq("series-a", "day=4", std::int64_t{5}, std::int64_t{6});
  ASSERT_EQ(diff.mismatches(), 1u);
  ASSERT_EQ(diff.divergences().size(), 1u);
  const check::Divergence& d = diff.divergences()[0];
  EXPECT_EQ(d.case_name, "case-x");
  EXPECT_EQ(d.series, "series-a");
  EXPECT_EQ(d.coordinate, "day=4");
  EXPECT_EQ(d.expected, "5");
  EXPECT_EQ(d.actual, "6");
}

TEST(Diff, NanEqualsNan) {
  check::Diff diff{"nan"};
  diff.ExpectEq("s", "c", kNaN, kNaN);
  EXPECT_TRUE(diff.ok());
  diff.ExpectEq("s", "c", kNaN, 0.0);
  EXPECT_EQ(diff.mismatches(), 1u);
  diff.ExpectEq("s", "c", 0.0, kNaN);
  EXPECT_EQ(diff.mismatches(), 2u);
}

TEST(Diff, StoredDivergencesAreCappedButAllCounted) {
  check::Diff diff{"cap"};
  for (std::uint64_t i = 0; i < check::Diff::kMaxStored + 10; ++i) {
    diff.ExpectEq("s", "i=" + std::to_string(i), i, i + 1);
  }
  EXPECT_EQ(diff.mismatches(), check::Diff::kMaxStored + 10);
  EXPECT_EQ(diff.divergences().size(), check::Diff::kMaxStored);
}

TEST(Diff, ExpectNearTolerance) {
  check::Diff diff{"near"};
  diff.ExpectNear("s", "c", 100.0, 104.9, 5.0);
  EXPECT_TRUE(diff.ok());
  diff.ExpectNear("s", "c", 100.0, 106.0, 5.0);
  EXPECT_EQ(diff.mismatches(), 1u);
  diff.ExpectNear("s", "c", 100.0, kNaN, 5.0);  // NaN always diverges here
  EXPECT_EQ(diff.mismatches(), 2u);
}

TEST(Diff, MismatchIncrementsGlobalCounter) {
  auto& counter = obs::GlobalRegistry().GetCounter("check.diffs_total");
  std::uint64_t before = counter.value();
  check::Diff diff{"ctr"};
  diff.ExpectEq("s", "c", std::uint64_t{1}, std::uint64_t{2});
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(RefChapman, MatchesClosedFormAndOptimized) {
  EXPECT_DOUBLE_EQ(check::RefChapman(0, 0, 0), 0.0);
  // (10+1)(8+1)/(4+1) - 1 = 99/5 - 1 = 18.8
  EXPECT_DOUBLE_EQ(check::RefChapman(10, 8, 4), 18.8);
  EXPECT_DOUBLE_EQ(check::RefChapman(10, 8, 4),
                   stats::Chapman(10, 8, 4).population);
}

// A tiny hand-checkable store: 1 block, 4 days.
//   day 0: hosts {1, 2}
//   day 1: hosts {2, 3}
//   day 2: hosts {}
//   day 3: hosts {3}
activity::ActivityStore TinyStore() {
  activity::ActivityStore store{4};
  activity::ActivityMatrix& m = store.GetOrCreate(0x0A0A0A);
  m.Set(0, 1);
  m.Set(0, 2);
  m.Set(1, 2);
  m.Set(1, 3);
  m.Set(3, 3);
  return store;
}

TEST(Reference, DailyActiveCountsByHand) {
  auto counts = check::RefDailyActiveCounts(TinyStore());
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2, 2, 0, 1}));
}

TEST(Reference, DailyEventsByHandWithGap) {
  activity::ActivityStore store = TinyStore();
  check::RefDailyEvents events = check::RefDailyEventSeries(store);
  // ups: d0->d1 host 3 appears; d1->d2 none; d2->d3 host 3 appears.
  EXPECT_EQ(events.up, (std::vector<std::int64_t>{1, 0, 1}));
  // downs: d0->d1 host 1; d1->d2 hosts 2,3; d2->d3 none.
  EXPECT_EQ(events.down, (std::vector<std::int64_t>{1, 2, 0}));

  store.SetDayCovered(2, false);
  events = check::RefDailyEventSeries(store);
  EXPECT_EQ(events.active, (std::vector<std::int64_t>{2, 2, -1, 1}));
  EXPECT_EQ(events.up, (std::vector<std::int64_t>{1, -1, -1}));
  EXPECT_EQ(events.down, (std::vector<std::int64_t>{1, -1, -1}));
}

TEST(Reference, WindowChurnByHand) {
  // windows of 2 days: W0 = {1,2,3}, W1 = {3}.
  check::RefChurn churn = check::RefWindowChurn(TinyStore(), 2);
  ASSERT_EQ(churn.pairs, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(churn.up_pct[0], 0.0);             // W1 \ W0 = {}
  EXPECT_DOUBLE_EQ(churn.down_pct[0], 200.0 / 3.0);   // {1,2} of 3
}

TEST(Reference, EventSizeMasksByHand) {
  // Up events between 2-day windows: none. Down events: hosts 1, 2 with
  // reference W1 = {3}. Host 2 (addr ...0102 vs ref ...0103) first isolates
  // at /32; host 1 (...0101) differs from 3 in bit 1 -> /31.
  check::RefEventSizeHistogram down =
      check::RefEventSizes(TinyStore(), 0, 2, 2, 4, /*up=*/false);
  EXPECT_EQ(down.total, 2u);
  EXPECT_EQ(down.by_mask[31], 1u);
  EXPECT_EQ(down.by_mask[32], 1u);
  check::RefEventSizeHistogram up =
      check::RefEventSizes(TinyStore(), 0, 2, 2, 4, /*up=*/true);
  EXPECT_EQ(up.total, 0u);
}

TEST(Reference, ActiveAddressesSortedAndComplete) {
  auto addrs = check::RefActiveAddresses(TinyStore(), 0, 4);
  std::uint32_t base = 0x0A0A0Au << 8;
  EXPECT_EQ(addrs,
            (std::vector<std::uint32_t>{base | 1, base | 2, base | 3}));
}

TEST(Sweep, CleanCaseHasNoDivergence) {
  check::CaseSpec spec;
  spec.seed = 5;
  spec.blocks = 60;
  spec.threads = 2;
  check::Diff diff = check::RunCase(spec);
  std::string first = diff.divergences().empty()
                          ? std::string()
                          : diff.divergences()[0].series + " " +
                                diff.divergences()[0].coordinate;
  EXPECT_TRUE(diff.ok()) << first;
}

TEST(Sweep, GappedCaseHasNoDivergence) {
  check::CaseSpec spec;
  spec.seed = 7;
  spec.blocks = 60;
  spec.threads = 3;
  spec.fault = "drop-days=2";
  check::Diff diff = check::RunCase(spec);
  EXPECT_TRUE(diff.ok());
}

TEST(Sweep, PerturbedCaseDiverges) {
  check::CaseSpec spec;
  spec.seed = 5;
  spec.blocks = 60;
  spec.threads = 1;
  spec.perturb = true;
  check::Diff diff = check::RunCase(spec);
  EXPECT_FALSE(diff.ok());
  // The flipped bit must surface with usable coordinates.
  ASSERT_FALSE(diff.divergences().empty());
  EXPECT_FALSE(diff.divergences()[0].series.empty());
  EXPECT_FALSE(diff.divergences()[0].coordinate.empty());
  EXPECT_NE(diff.divergences()[0].expected, diff.divergences()[0].actual);
}

TEST(Sweep, CasesRunCounterAdvances) {
  auto& counter = obs::GlobalRegistry().GetCounter("check.cases_run");
  std::uint64_t before = counter.value();
  check::CaseSpec spec;
  spec.seed = 3;
  spec.blocks = 40;
  check::RunCase(spec);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(Sweep, DefaultSweepShape) {
  const std::uint64_t seeds[] = {11, 23};
  auto specs = check::DefaultSweep(seeds, 100, 4);
  EXPECT_EQ(specs.size(), 8u);  // 2 seeds x 2 faults x 2 thread counts
  auto serial = check::DefaultSweep(seeds, 100, 1);
  EXPECT_EQ(serial.size(), 4u);  // threads axis collapses to {1}
  for (const check::CaseSpec& s : serial) EXPECT_EQ(s.threads, 1);
}

}  // namespace
}  // namespace ipscope
