#include <gtest/gtest.h>

#include "rdns/ptr.h"
#include "rdns/tagger.h"
#include "sim/world.h"

namespace ipscope::rdns {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 800;
    return config;
  }()};
  return world;
}

TEST(Ptr, Deterministic) {
  PtrGenerator gen{TestWorld()};
  net::IPv4Addr addr = TestWorld().blocks()[0].block.network();
  EXPECT_EQ(gen.PtrName(addr), gen.PtrName(addr));
}

TEST(Ptr, UnallocatedSpaceHasNoRecords) {
  PtrGenerator gen{TestWorld()};
  EXPECT_EQ(gen.PtrName(net::IPv4Addr{255, 255, 255, 255}), "");
}

TEST(Ptr, NamesEmbedTheAddress) {
  PtrGenerator gen{TestWorld()};
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    auto names = gen.BlockNames(net::BlockKeyOf(plan.block));
    if (names.empty()) continue;
    // Dashed-quad of the network address appears in the first host's name.
    std::string quad = plan.block.network().ToString();
    std::replace(quad.begin(), quad.end(), '.', '-');
    bool found = false;
    for (const auto& name : names) {
      if (name.find('-') != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);
    return;
  }
}

TEST(Tagger, ClassifyName) {
  EXPECT_EQ(Tagger::ClassifyName("host-1-2-3-4.static.as1.example.net"),
            RdnsTag::kStatic);
  EXPECT_EQ(Tagger::ClassifyName("pool-1-2-3-4.dynamic.as1.example.net"),
            RdnsTag::kDynamic);
  EXPECT_EQ(Tagger::ClassifyName("dsl-1-2-3-4.dyn.as1.example.net"),
            RdnsTag::kDynamic);
  EXPECT_EQ(Tagger::ClassifyName("ppp-1-2-3-4.dialup.as1.example.net"),
            RdnsTag::kDynamic);
  EXPECT_EQ(Tagger::ClassifyName("srv-1-2-3-4.dc.as1.example.net"),
            RdnsTag::kUntagged);
  EXPECT_EQ(Tagger::ClassifyName(""), RdnsTag::kUntagged);
}

TEST(Tagger, RequiresMinimumNames) {
  Tagger tagger{8, 0.6};
  std::vector<std::string> few{"a.static.x", "b.static.x"};
  EXPECT_EQ(tagger.TagBlock(few), RdnsTag::kUntagged);
}

TEST(Tagger, RequiresConsistency) {
  Tagger tagger{4, 0.6};
  std::vector<std::string> mixed{"a.static.x", "b.dynamic.x", "c.static.x",
                                 "d.dynamic.x"};
  EXPECT_EQ(tagger.TagBlock(mixed), RdnsTag::kUntagged);
  std::vector<std::string> consistent{"a.static.x", "b.static.x",
                                      "c.static.x", "d.generic.x"};
  EXPECT_EQ(tagger.TagBlock(consistent), RdnsTag::kStatic);
}

TEST(Tagger, GroundTruthPrecision) {
  // The paper's methodology, validated: blocks tagged static/dynamic must
  // overwhelmingly have the matching true policy.
  const sim::World& world = TestWorld();
  PtrGenerator gen{world};
  Tagger tagger;

  std::uint64_t static_right = 0, static_wrong = 0;
  std::uint64_t dynamic_right = 0, dynamic_wrong = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    auto names = gen.BlockNames(net::BlockKeyOf(plan.block));
    RdnsTag tag = tagger.TagBlock(names);
    bool truly_static = plan.base.kind == sim::PolicyKind::kStatic;
    bool truly_dynamic = plan.base.kind == sim::PolicyKind::kDynamicShort ||
                         plan.base.kind == sim::PolicyKind::kDynamicLong;
    if (tag == RdnsTag::kStatic) {
      (truly_static ? static_right : static_wrong) += 1;
    } else if (tag == RdnsTag::kDynamic) {
      (truly_dynamic ? dynamic_right : dynamic_wrong) += 1;
    }
  }
  ASSERT_GT(static_right + static_wrong, 20u);
  ASSERT_GT(dynamic_right + dynamic_wrong, 20u);
  EXPECT_GT(static_right, 30 * static_wrong);
  EXPECT_GT(dynamic_right, 30 * dynamic_wrong);
}

TEST(Tagger, CoverageIsRealisticallyIncomplete) {
  // Some blocks have no PTR zone or generic names -> untagged.
  const sim::World& world = TestWorld();
  PtrGenerator gen{world};
  Tagger tagger;
  std::uint64_t client = 0, tagged = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (!sim::IsClientPolicy(plan.base.kind)) continue;
    ++client;
    auto names = gen.BlockNames(net::BlockKeyOf(plan.block));
    if (tagger.TagBlock(names) != RdnsTag::kUntagged) ++tagged;
  }
  EXPECT_GT(tagged, client / 3);
  EXPECT_LT(tagged, client);  // CGN blocks and noisy zones stay untagged
}

TEST(Tagger, TagBlocksHelper) {
  const sim::World& world = TestWorld();
  PtrGenerator gen{world};
  std::vector<net::BlockKey> keys;
  for (const sim::BlockPlan& plan : world.blocks()) {
    keys.push_back(net::BlockKeyOf(plan.block));
  }
  TaggedBlocks tagged = TagBlocks(gen, keys);
  EXPECT_FALSE(tagged.static_blocks.empty());
  EXPECT_FALSE(tagged.dynamic_blocks.empty());
  EXPECT_LT(tagged.static_blocks.size() + tagged.dynamic_blocks.size(),
            keys.size());
}

}  // namespace
}  // namespace ipscope::rdns
