// Focused unit tests of analysis-layer building blocks (the integration
// suite covers the full experiments; these pin down the arithmetic).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/fig1_growth.h"
#include "analysis/visibility.h"

namespace ipscope::analysis {
namespace {

TEST(VisibilitySplit, Fractions) {
  VisibilitySplit split;
  split.cdn_only = 40;
  split.both = 50;
  split.icmp_only = 10;
  EXPECT_EQ(split.total(), 100u);
  EXPECT_DOUBLE_EQ(split.CdnOnlyFraction(), 0.40);
  EXPECT_DOUBLE_EQ(split.IcmpOnlyFraction(), 0.10);
}

TEST(VisibilitySplit, EmptyIsZero) {
  VisibilitySplit split;
  EXPECT_EQ(split.total(), 0u);
  EXPECT_DOUBLE_EQ(split.CdnOnlyFraction(), 0.0);
  EXPECT_DOUBLE_EQ(split.IcmpOnlyFraction(), 0.0);
}

TEST(Fig1, DeterministicInSeed) {
  auto a = RunFig1(123);
  auto b = RunFig1(123);
  EXPECT_DOUBLE_EQ(a.stagnation_gap, b.stagnation_gap);
  EXPECT_DOUBLE_EQ(a.pre2014_mean_residual, b.pre2014_mean_residual);
}

TEST(Fig1, StagnationGapPositiveAndResidualSmall) {
  auto result = RunFig1(20160360);
  // The post-2014 series must fall well below the pre-2014 trend...
  EXPECT_GT(result.stagnation_gap, 0.08);
  EXPECT_LT(result.stagnation_gap, 0.40);
  // ...while the pre-2014 fit is tight (the "perfectly linear" era).
  EXPECT_LT(result.pre2014_mean_residual, 0.03);
}

TEST(Fig1, ScaleDoesNotChangeShape) {
  auto full = RunFig1(5, 1.0);
  auto small = RunFig1(5, 0.001);
  EXPECT_NEAR(full.stagnation_gap, small.stagnation_gap, 1e-9);
  EXPECT_NEAR(full.pre2014_mean_residual, small.pre2014_mean_residual, 1e-9);
}

TEST(Fig1, PrintMentionsKeyElements) {
  auto result = RunFig1(7);
  std::ostringstream os;
  PrintFig1(result, os);
  std::string text = os.str();
  EXPECT_NE(text.find("pre-2014 fit"), std::string::npos);
  EXPECT_NE(text.find("ARIN"), std::string::npos);   // exhaustion dates
  EXPECT_NE(text.find("2014"), std::string::npos);
  EXPECT_NE(text.find("stagnation"), std::string::npos);
}

}  // namespace
}  // namespace ipscope::analysis
