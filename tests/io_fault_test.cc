// Corruption property sweeps for the IPSCOPE2 store format.
//
// The acceptance bar for the checksummed format: a round-tripped store,
// re-loaded after *any* single-byte corruption or *any* truncation, must
// yield a typed StoreError (strict mode) or an intact salvaged prefix
// (salvage mode) — never a crash, never silently wrong data.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/store_io.h"
#include "rng/rng.h"

namespace ipscope::io {
namespace {

// Small but structurally complete store: several blocks, mixed empty and
// non-empty days, so every format region (header, multiple block records,
// footer) is present while full byte sweeps stay cheap.
activity::ActivityStore SweepStore() {
  activity::ActivityStore store{10};
  rng::Xoshiro256 g{2024};
  for (std::uint32_t key : {7u, 300u, 5000u, 70000u, 900000u, 16000000u}) {
    activity::ActivityMatrix& m = store.GetOrCreate(key);
    for (int d = 0; d < 10; ++d) {
      if (g.NextBool(0.4)) continue;
      for (int h = 0; h < 256; h += 1 + static_cast<int>(g.NextBounded(24))) {
        m.Set(d, h);
      }
    }
  }
  return store;
}

std::string SerializeV2(const activity::ActivityStore& store) {
  std::stringstream buffer;
  SaveStore(store, buffer, StoreFormat::kV2);
  return buffer.str();
}

bool RowsEqual(const activity::ActivityMatrix& a,
               const activity::ActivityMatrix& b, int days) {
  for (int d = 0; d < days; ++d) {
    if (a.Row(d) != b.Row(d)) return false;
  }
  return true;
}

// Byte layout of the serialized store, mirroring the format spec in
// io/store_io.h — re-derived here so the loader is checked against an
// independent computation, not against itself.
struct Layout {
  std::uint64_t header_end = 0;
  std::vector<std::uint64_t> block_ends;  // absolute end offset per block
};

Layout LayoutOf(const activity::ActivityStore& store) {
  Layout layout;
  layout.header_end =
      8 + 4 + 8 + (static_cast<std::uint64_t>(store.days()) + 7) / 8 + 4;
  std::uint64_t pos = layout.header_end;
  store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    std::uint64_t nonzero = 0;
    for (int d = 0; d < m.days(); ++d) {
      const activity::DayBits& row = m.Row(d);
      if ((row[0] | row[1] | row[2] | row[3]) != 0) ++nonzero;
    }
    pos += 4 + 4 + nonzero * 34 + 4;
    layout.block_ends.push_back(pos);
  });
  return layout;
}

// How many leading blocks survive when every byte at offset >= `damage`
// is untrustworthy (salvage stops at the first damaged record).
std::uint64_t IntactPrefixBlocks(const Layout& layout, std::uint64_t damage) {
  std::uint64_t n = 0;
  for (std::uint64_t end : layout.block_ends) {
    if (end > damage) break;
    ++n;
  }
  return n;
}

// The salvaged store must be a bit-identical prefix of the original.
void ExpectIntactPrefix(const activity::ActivityStore& original,
                        const activity::ActivityStore& salvaged,
                        std::uint64_t expected_blocks) {
  ASSERT_EQ(salvaged.BlockCount(), expected_blocks);
  for (std::size_t i = 0; i < salvaged.BlockCount(); ++i) {
    net::BlockKey key = salvaged.keys()[i];
    ASSERT_EQ(key, original.keys()[i]);
    EXPECT_TRUE(RowsEqual(*salvaged.Find(key), *original.Find(key),
                          original.days()))
        << "block " << key << " not bit-identical";
  }
}

TEST(IoFault, RoundTripV2PreservesCoverage) {
  auto store = SweepStore();
  store.SetDayCovered(2, false);
  store.SetDayCovered(7, false);
  std::stringstream buffer{SerializeV2(store)};
  auto result = TryLoadStore(buffer);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& loaded = result.value();
  EXPECT_EQ(loaded.stats.format_version, 2);
  EXPECT_TRUE(loaded.stats.complete);
  EXPECT_EQ(loaded.stats.blocks_loaded, store.BlockCount());
  EXPECT_FALSE(loaded.store.DayCovered(2));
  EXPECT_FALSE(loaded.store.DayCovered(7));
  EXPECT_EQ(loaded.store.MissingDays(), 2);
  ExpectIntactPrefix(store, loaded.store, store.BlockCount());
}

TEST(IoFault, TruncationSweepStrictAlwaysTypedError) {
  auto store = SweepStore();
  const std::string bytes = SerializeV2(store);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated{bytes.substr(0, cut)};
    auto result = TryLoadStore(truncated);
    ASSERT_FALSE(result.ok()) << "cut at " << cut << " loaded cleanly";
    EXPECT_LE(result.error().offset, cut) << "cut at " << cut;
  }
}

TEST(IoFault, TruncationSweepSalvageRecoversIntactPrefix) {
  auto store = SweepStore();
  const std::string bytes = SerializeV2(store);
  const Layout layout = LayoutOf(store);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated{bytes.substr(0, cut)};
    auto result = TryLoadStore(truncated, LoadOptions{.salvage = true});
    if (cut < layout.header_end) {
      // Without a verified header nothing can be decoded — salvage must
      // refuse rather than fabricate a store from unvalidated dimensions.
      EXPECT_FALSE(result.ok()) << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(result.ok())
        << "cut at " << cut << ": " << result.error().ToString();
    const auto& loaded = result.value();
    EXPECT_FALSE(loaded.stats.complete) << "cut at " << cut;
    ASSERT_TRUE(loaded.stats.error.has_value()) << "cut at " << cut;
    ExpectIntactPrefix(store, loaded.store,
                       IntactPrefixBlocks(layout, cut));
  }
}

TEST(IoFault, FlipSweepDetectsEverySingleByteCorruption) {
  auto store = SweepStore();
  const std::string bytes = SerializeV2(store);
  // 0xFF inverts the whole byte; 0x01/0x80 are the lowest- and highest-bit
  // single-bit flips. (None of these can turn the 'IPSCOPE2' magic into
  // 'IPSCOPE1', which differs in bit pattern 0x03 — a flipped magic is an
  // unknown format, not a silent downgrade.)
  for (char mask : {'\x01', '\x80', '\xFF'}) {
    for (std::size_t off = 0; off < bytes.size(); ++off) {
      std::string flipped = bytes;
      flipped[off] ^= mask;
      std::stringstream is{flipped};
      auto result = TryLoadStore(is);
      EXPECT_FALSE(result.ok())
          << "flip mask " << static_cast<int>(mask) << " at byte " << off
          << " went undetected";
    }
  }
}

TEST(IoFault, FlipSweepSalvageNeverCrashesAndKeepsIntactBlocksOnly) {
  auto store = SweepStore();
  const std::string bytes = SerializeV2(store);
  const Layout layout = LayoutOf(store);
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::string flipped = bytes;
    flipped[off] ^= '\xFF';
    std::stringstream is{flipped};
    auto result = TryLoadStore(is, LoadOptions{.salvage = true});
    if (off < layout.header_end) {
      EXPECT_FALSE(result.ok()) << "header flip at " << off;
      continue;
    }
    ASSERT_TRUE(result.ok())
        << "flip at " << off << ": " << result.error().ToString();
    const auto& loaded = result.value();
    EXPECT_FALSE(loaded.stats.complete) << "flip at " << off;
    ExpectIntactPrefix(store, loaded.store, IntactPrefixBlocks(layout, off));
  }
}

TEST(IoFault, V1RoundTripStillWorks) {
  auto store = SweepStore();
  std::stringstream buffer;
  SaveStore(store, buffer, StoreFormat::kV1);
  auto result = TryLoadStore(buffer);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& loaded = result.value();
  EXPECT_EQ(loaded.stats.format_version, 1);
  EXPECT_TRUE(loaded.stats.complete);
  // v1 cannot carry a coverage mask; a loaded v1 store is fully covered.
  EXPECT_TRUE(loaded.store.FullyCovered());
  ExpectIntactPrefix(store, loaded.store, store.BlockCount());
}

TEST(IoFault, V1ByteLayoutIsFrozen) {
  // Byte-exact pin of the legacy format so old stores stay loadable
  // forever: one block (key 100), day 2, host 7.
  activity::ActivityStore store{5};
  store.GetOrCreate(100).Set(2, 7);
  std::stringstream buffer;
  SaveStore(store, buffer, StoreFormat::kV1);

  std::string expected = "IPSCOPE1";
  auto put = [&](std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      expected.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put(5, 4);        // days
  put(1, 8);        // block count
  put(100, 4);      // key
  put(1, 4);        // non-empty days
  put(2, 2);        // day index
  put(1u << 7, 8);  // bitmap word 0: host 7
  put(0, 8);
  put(0, 8);
  put(0, 8);
  EXPECT_EQ(buffer.str(), expected);
}

TEST(IoFault, TypedErrorKindsAndOffsets) {
  std::stringstream bad_magic{"NOTASTORExxxxxxxxxxxxxxxxxxxxxxx"};
  auto r1 = TryLoadStore(bad_magic);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().kind, StoreErrorKind::kBadMagic);
  EXPECT_EQ(r1.error().offset, 0u);

  auto store = SweepStore();
  const std::string bytes = SerializeV2(store);
  const Layout layout = LayoutOf(store);
  // Cut inside the second block: the error position must sit past the
  // first block's record, i.e. the offset pinpoints where data ran out.
  std::size_t cut = static_cast<std::size_t>(layout.block_ends[0]) + 5;
  std::stringstream truncated{bytes.substr(0, cut)};
  auto r2 = TryLoadStore(truncated);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().kind, StoreErrorKind::kTruncated);
  EXPECT_GE(r2.error().offset, layout.block_ends[0]);
  EXPECT_LE(r2.error().offset, cut);
  // The rendered message carries both kind and offset for operators.
  EXPECT_NE(r2.error().ToString().find("truncated"), std::string::npos);
  EXPECT_NE(r2.error().ToString().find("byte"), std::string::npos);
}

TEST(IoFault, OpenFailureCarriesErrnoDetail) {
  auto result = TryLoadStoreFile("/nonexistent/dir/store.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, StoreErrorKind::kOpenFailed);
  EXPECT_NE(result.error().message.find("No such file"), std::string::npos)
      << result.error().message;
}

}  // namespace
}  // namespace ipscope::io
