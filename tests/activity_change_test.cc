#include "activity/change.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "cdn/observatory.h"
#include "sim/world.h"

namespace ipscope::activity {
namespace {

TEST(Change, StableBlockHasZeroDelta) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int d = 0; d < 112; ++d) {
    for (int h = 0; h < 128; ++h) m.Set(d, h);
  }
  auto changes = MaxMonthlyStuChange(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_DOUBLE_EQ(changes[0].max_delta, 0.0);
  EXPECT_FALSE(changes[0].IsMajor());
  EXPECT_DOUBLE_EQ(MajorChangeFraction(changes), 0.0);
}

TEST(Change, StepUpIsDetectedWithSign) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  // Months 0-1: 32 addresses; months 2-3: 224 addresses.
  for (int d = 0; d < 112; ++d) {
    int n = d < 56 ? 32 : 224;
    for (int h = 0; h < n; ++h) m.Set(d, h);
  }
  auto changes = MaxMonthlyStuChange(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_NEAR(changes[0].max_delta, (224.0 - 32.0) / 256.0, 1e-9);
  EXPECT_TRUE(changes[0].IsMajor());
}

TEST(Change, StepDownIsNegative) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int d = 0; d < 112; ++d) {
    int n = d < 56 ? 200 : 20;
    for (int h = 0; h < n; ++h) m.Set(d, h);
  }
  auto changes = MaxMonthlyStuChange(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_LT(changes[0].max_delta, -0.25);
  EXPECT_TRUE(changes[0].IsMajor());
}

TEST(Change, SubThresholdVariationIsMinor) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int d = 0; d < 112; ++d) {
    int n = 100 + (d / 28) * 10;  // drifts 100 -> 130 across months
    for (int h = 0; h < n; ++h) m.Set(d, h);
  }
  auto changes = MaxMonthlyStuChange(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].IsMajor());
  EXPECT_NEAR(changes[0].max_delta, 10.0 / 256.0, 1e-9);
}

TEST(Change, InactiveBlocksExcluded) {
  ActivityStore store{112};
  store.GetOrCreate(1);  // never set
  ActivityMatrix& m = store.GetOrCreate(2);
  m.Set(0, 0);
  auto changes = MaxMonthlyStuChange(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].key, 2u);
}

TEST(Change, TooShortPeriodYieldsNothing) {
  ActivityStore store{20};
  store.GetOrCreate(1).Set(0, 0);
  EXPECT_TRUE(MaxMonthlyStuChange(store, 28).empty());
}

TEST(Change, MajorFractionCountsBothTails) {
  std::vector<BlockStuChange> changes{
      {1, 0.5}, {2, -0.5}, {3, 0.1}, {4, -0.1}};
  EXPECT_DOUBLE_EQ(MajorChangeFraction(changes), 0.5);
  EXPECT_DOUBLE_EQ(MajorChangeFraction(changes, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(MajorChangeFraction({}), 0.0);
}

TEST(Change, CustomMonthLength) {
  ActivityStore store{20};
  ActivityMatrix& m = store.GetOrCreate(1);
  for (int d = 10; d < 20; ++d) {
    for (int h = 0; h < 256; ++h) m.Set(d, h);
  }
  auto changes = MaxMonthlyStuChange(store, 10);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_DOUBLE_EQ(changes[0].max_delta, 1.0);
}


TEST(SpatialChange, SymmetricChangeHasLowAsymmetry) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  // Whole block steps up after day 56, both halves alike.
  for (int d = 0; d < 112; ++d) {
    int n = d < 56 ? 60 : 220;
    for (int h = 0; h < n; ++h) m.Set(d, h % 256);
  }
  auto changes = SpatialStuChanges(store);
  ASSERT_EQ(changes.size(), 1u);
  // Not perfectly zero (the fill isn't exactly even), but small.
  EXPECT_LT(changes[0].Asymmetry(), 0.35);
  EXPECT_GT(changes[0].lower_delta, 0.2);
}

TEST(SpatialChange, SplitReconfigurationHasHighAsymmetry) {
  ActivityStore store{112};
  ActivityMatrix& m = store.GetOrCreate(1);
  // Lower half: stable sparse throughout. Upper half: dark, then dense.
  for (int d = 0; d < 112; ++d) {
    for (int h = 0; h < 30; ++h) m.Set(d, h);
    if (d >= 56) {
      for (int h = 128; h < 256; ++h) m.Set(d, h);
    }
  }
  auto changes = SpatialStuChanges(store);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_GT(changes[0].Asymmetry(), 0.7);
  EXPECT_GT(changes[0].upper_delta, 0.7);
  EXPECT_NEAR(changes[0].lower_delta, 0.0, 0.05);
}

TEST(SpatialChange, DetectsWorldSplitEvents) {
  // Ground-truth validation over a simulated world: blocks with partial
  // reconfigurations must rank far higher in asymmetry than stable blocks.
  sim::WorldConfig config;
  config.target_client_blocks = 800;
  sim::World world{config};
  auto store = cdn::Observatory::Daily(world).BuildStore();
  auto changes = SpatialStuChanges(store);
  std::unordered_map<net::BlockKey, bool> is_split;
  for (const sim::BlockPlan& plan : world.blocks()) {
    is_split[net::BlockKeyOf(plan.block)] =
        plan.HasReconfiguration() && plan.events[0].host_first > 0;
  }
  double split_sum = 0, stable_sum = 0;
  int splits = 0, stables = 0;
  for (const auto& c : changes) {
    if (is_split[c.key]) {
      split_sum += c.Asymmetry();
      ++splits;
    } else {
      stable_sum += c.Asymmetry();
      ++stables;
    }
  }
  ASSERT_GT(splits, 3);
  ASSERT_GT(stables, 100);
  EXPECT_GT(split_sum / splits, 4.0 * (stable_sum / stables));
}

}  // namespace
}  // namespace ipscope::activity
