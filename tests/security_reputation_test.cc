#include "security/reputation.h"

#include <gtest/gtest.h>

namespace ipscope::security {
namespace {

TEST(ReputationStore, MarkAndExpire) {
  ReputationStore store;
  net::IPv4Addr addr{10, 0, 0, 1};
  EXPECT_FALSE(store.IsBad(addr, 100, 30));
  store.MarkBad(addr, 100);
  EXPECT_TRUE(store.IsBad(addr, 100, 30));
  EXPECT_TRUE(store.IsBad(addr, 130, 30));
  EXPECT_FALSE(store.IsBad(addr, 131, 30));
  // Re-marking refreshes the clock.
  store.MarkBad(addr, 140);
  EXPECT_TRUE(store.IsBad(addr, 160, 30));
}

TEST(ReputationStore, MarkBadKeepsLatestDay) {
  ReputationStore store;
  net::IPv4Addr addr{10, 0, 0, 2};
  store.MarkBad(addr, 100);
  store.MarkBad(addr, 50);  // older evidence must not rewind expiry
  EXPECT_TRUE(store.IsBad(addr, 120, 30));
}

TEST(ReputationStore, ResetBlockDropsOnlyThatBlock) {
  ReputationStore store;
  store.MarkBad(net::IPv4Addr{10, 0, 0, 1}, 10);
  store.MarkBad(net::IPv4Addr{10, 0, 0, 2}, 10);
  store.MarkBad(net::IPv4Addr{10, 0, 1, 1}, 10);
  EXPECT_EQ(store.size(), 3u);
  store.ResetBlock(net::BlockKeyOf(net::IPv4Addr{10, 0, 0, 0}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.IsBad(net::IPv4Addr{10, 0, 0, 1}, 11, 1e9));
  EXPECT_TRUE(store.IsBad(net::IPv4Addr{10, 0, 1, 1}, 11, 1e9));
}

TEST(Reputation, PatternTtlOrdering) {
  using activity::BlockPattern;
  EXPECT_LT(PatternTtlDays(BlockPattern::kFullyUtilized),
            PatternTtlDays(BlockPattern::kDynamicShortLease));
  EXPECT_LT(PatternTtlDays(BlockPattern::kDynamicShortLease),
            PatternTtlDays(BlockPattern::kDynamicLongLease));
  EXPECT_LT(PatternTtlDays(BlockPattern::kDynamicLongLease),
            PatternTtlDays(BlockPattern::kStaticSparse));
}

class ReputationSim : public ::testing::Test {
 protected:
  static const cdn::Observatory& Daily() {
    static sim::WorldConfig config = [] {
      sim::WorldConfig c;
      c.target_client_blocks = 400;
      return c;
    }();
    static sim::World world{config};
    static cdn::Observatory daily = cdn::Observatory::Daily(world);
    return daily;
  }
};

TEST_F(ReputationSim, NeverExpireMaximizesCollateralDamage) {
  auto never = EvaluateReputationPolicy(Daily(), TtlPolicy::kNever);
  auto one_day = EvaluateReputationPolicy(Daily(), TtlPolicy::kFixed, 1.0);
  ASSERT_GT(never.abuse_events, 100u);
  // Same abuse stream in both runs (determinism across policies).
  EXPECT_EQ(never.abuse_events, one_day.abuse_events);
  // Never-expiring reputations punish far more innocent interactions...
  EXPECT_GT(never.FalsePositiveRate(), one_day.FalsePositiveRate() * 3);
  // ...while catching at least as many abusers.
  EXPECT_GE(never.blocked_abuser, one_day.blocked_abuser);
}

TEST_F(ReputationSim, PatternTtlBeatsFixedTradeoff) {
  auto fixed30 = EvaluateReputationPolicy(Daily(), TtlPolicy::kFixed, 30.0);
  auto pattern = EvaluateReputationPolicy(Daily(), TtlPolicy::kPattern);
  // Pattern-aware TTLs cut collateral damage dramatically vs a 30-day TTL.
  EXPECT_LT(pattern.FalsePositiveRate(), fixed30.FalsePositiveRate() * 0.6);
  // Abuser coverage cannot collapse: the miss-rate penalty stays bounded.
  EXPECT_LT(pattern.MissRate(), fixed30.MissRate() + 0.35);
}

TEST_F(ReputationSim, ChangeTriggeredResetsReduceFalsePositives) {
  auto pattern = EvaluateReputationPolicy(Daily(), TtlPolicy::kPattern);
  auto with_reset =
      EvaluateReputationPolicy(Daily(), TtlPolicy::kPatternReset);
  EXPECT_LE(with_reset.blocked_innocent, pattern.blocked_innocent);
}

TEST_F(ReputationSim, RatesAreRates) {
  auto eval = EvaluateReputationPolicy(Daily(), TtlPolicy::kFixed, 7.0);
  EXPECT_GE(eval.FalsePositiveRate(), 0.0);
  EXPECT_LE(eval.FalsePositiveRate(), 1.0);
  EXPECT_GE(eval.MissRate(), 0.0);
  EXPECT_LE(eval.MissRate(), 1.0);
  EXPECT_GT(eval.innocent_queries, 1000u);
}

}  // namespace
}  // namespace ipscope::security
