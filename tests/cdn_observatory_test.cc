#include "cdn/observatory.h"

#include <gtest/gtest.h>

#include "cdn/dataset.h"

namespace ipscope::cdn {
namespace {

sim::World& SmallWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 300;
    return config;
  }()};
  return world;
}

TEST(Observatory, DailySpec) {
  Observatory daily = Observatory::Daily(SmallWorld());
  EXPECT_EQ(daily.spec().step_days, 1);
  EXPECT_EQ(daily.steps(), 112);
  EXPECT_EQ(daily.spec().start_day, 228);
}

TEST(Observatory, WeeklySpec) {
  Observatory weekly = Observatory::Weekly(SmallWorld());
  EXPECT_EQ(weekly.spec().step_days, 7);
  EXPECT_EQ(weekly.steps(), 52);
  EXPECT_EQ(weekly.spec().start_day, 0);
}

TEST(Observatory, StoreIsDeterministic) {
  auto s1 = Observatory::Daily(SmallWorld()).BuildStore();
  auto s2 = Observatory::Daily(SmallWorld()).BuildStore();
  ASSERT_EQ(s1.BlockCount(), s2.BlockCount());
  EXPECT_EQ(s1.CountActive(0, 112), s2.CountActive(0, 112));
  EXPECT_EQ(s1.ActiveSet(0, 112), s2.ActiveSet(0, 112));
}

TEST(Observatory, StoreMatchesVisitorBits) {
  // BuildStore and ForEachBlockHits must expose identical activity.
  Observatory daily = Observatory::Daily(SmallWorld());
  auto store = daily.BuildStore();
  std::size_t visited = 0;
  daily.ForEachBlockHits([&](const sim::BlockPlan& plan,
                             const activity::ActivityMatrix& m,
                             std::span<const std::uint32_t> hits) {
    ++visited;
    const activity::ActivityMatrix* stored =
        store.Find(net::BlockKeyOf(plan.block));
    ASSERT_NE(stored, nullptr) << plan.block;
    for (int d = 0; d < daily.steps(); ++d) {
      ASSERT_EQ(stored->Row(d), m.Row(d)) << plan.block << " day " << d;
      for (int h = 0; h < 256; ++h) {
        bool active = m.Get(d, h);
        std::uint32_t v = hits[static_cast<std::size_t>(d) * 256 +
                               static_cast<std::size_t>(h)];
        ASSERT_EQ(active, v > 0);
      }
    }
  });
  EXPECT_EQ(visited, store.BlockCount());
}

TEST(Observatory, OnlyCdnVisiblePoliciesAppear) {
  auto store = Observatory::Daily(SmallWorld()).BuildStore();
  for (const sim::BlockPlan& plan : SmallWorld().blocks()) {
    if (plan.base.kind == sim::PolicyKind::kRouterInfra ||
        plan.base.kind == sim::PolicyKind::kMiddlebox ||
        plan.base.kind == sim::PolicyKind::kUnused) {
      // Unless a reconfiguration changed the policy, these never appear.
      if (!plan.HasReconfiguration()) {
        EXPECT_EQ(store.Find(net::BlockKeyOf(plan.block)), nullptr)
            << plan.block;
      }
    }
  }
}

TEST(Observatory, TotalHitsPerStepPositiveAndWeekdayShaped) {
  Observatory daily = Observatory::Daily(SmallWorld());
  auto totals = daily.TotalHitsPerStep();
  ASSERT_EQ(totals.size(), 112u);
  for (auto v : totals) EXPECT_GT(v, 0u);
}

TEST(Observatory, WeeklyActiveExceedsDailyAverage) {
  // Union over a week is at least any single day's count.
  auto weekly = Observatory::Weekly(SmallWorld()).BuildStore();
  auto daily = Observatory::Daily(SmallWorld()).BuildStore();
  // Week 33 (days 231..238) overlaps the daily period start.
  std::uint64_t week_count = weekly.CountActive(33, 34);
  std::uint64_t day_count = daily.CountActive(5, 6);
  EXPECT_GT(week_count, day_count);
}


TEST(Observatory, ParallelBuildMatchesSerial) {
  Observatory daily = Observatory::Daily(SmallWorld());
  auto serial = daily.BuildStore(1);
  auto parallel = daily.BuildStore(4);
  ASSERT_EQ(serial.BlockCount(), parallel.BlockCount());
  ASSERT_EQ(serial.days(), parallel.days());
  serial.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    const activity::ActivityMatrix* other = parallel.Find(key);
    ASSERT_NE(other, nullptr);
    for (int d = 0; d < serial.days(); ++d) {
      ASSERT_EQ(m.Row(d), other->Row(d)) << key << " day " << d;
    }
  });
}

TEST(Dataset, SummarizeTotalsConsistent) {
  auto store = Observatory::Daily(SmallWorld()).BuildStore();
  auto totals = SummarizeDataset(store, [](net::BlockKey) { return 1u; });
  EXPECT_EQ(totals.total_blocks, store.BlockCount());
  EXPECT_EQ(totals.total_ips, store.CountActive(0, 112));
  EXPECT_GE(static_cast<double>(totals.total_ips), totals.avg_ips);
  EXPECT_EQ(totals.total_ases, 1u);
  EXPECT_NEAR(totals.avg_ases, 1.0, 1e-9);
  // Churn: the total must exceed the per-snapshot average meaningfully.
  EXPECT_GT(static_cast<double>(totals.total_ips), totals.avg_ips * 1.1);
}

TEST(Dataset, ZeroAsnMeansUnrouted) {
  auto store = Observatory::Daily(SmallWorld()).BuildStore();
  auto totals = SummarizeDataset(store, [](net::BlockKey) { return 0u; });
  EXPECT_EQ(totals.total_ases, 0u);
}

}  // namespace
}  // namespace ipscope::cdn
