#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "report/csv.h"
#include "report/table.h"
#include "report/textplot.h"

namespace ipscope::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.AddRow({"xxxxx", "1"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| a     | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxx | 1           |"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(Format, Count) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567890), "1,234,567,890");
}

TEST(Format, Si) {
  EXPECT_EQ(FormatSi(950), "950.0");
  EXPECT_EQ(FormatSi(1500), "1.5K");
  EXPECT_EQ(FormatSi(2500000), "2.5M");
  EXPECT_EQ(FormatSi(1.2e9), "1.2B");
}

TEST(Format, Percent) {
  EXPECT_EQ(FormatPercent(0.421), "42.1%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "x"});
  std::string out = os.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\",x\n"), std::string::npos);
}

TEST(Csv, QuotesCarriageReturn) {
  // A bare \r in a cell corrupts the row structure for strict RFC 4180
  // readers unless quoted, same as \n.
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.AddRow({"line\rbreak", "line\nbreak"});
  std::string out = os.str();
  EXPECT_NE(out.find("\"line\rbreak\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, OverWideRowThrowsInsteadOfDroppingCells) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.AddRow({"1", "2", "3"}), std::invalid_argument);
  // The header must not have been followed by a truncated data row.
  EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Csv, NarrowRowIsPadded) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b", "c"});
  csv.AddRow({"1"});
  EXPECT_NE(os.str().find("1,,\n"), std::string::npos);
}

TEST(TextPlot, ActivityMatrixRendering) {
  activity::ActivityMatrix m{10};
  for (int d = 0; d < 10; ++d) m.Set(d, 0);
  auto lines = RenderActivityMatrix(m, 4);
  ASSERT_EQ(lines.size(), 64u);  // 256 / 4 rows
  EXPECT_EQ(lines[0], "##########");
  EXPECT_EQ(lines[1], "..........");
}

TEST(TextPlot, CdfRendering) {
  std::vector<stats::CdfPoint> cdf{{0.0, 0.1}, {0.5, 0.5}, {1.0, 1.0}};
  auto grid = RenderCdf(cdf, 10, 5);
  ASSERT_EQ(grid.size(), 5u);
  // Highest CDF point lands in the top row, rightmost column.
  EXPECT_EQ(grid[0][9], '*');
  // Lowest point (f = 0.1) maps to row floor((1 - 0.1) * 4) = 3, column 0.
  EXPECT_EQ(grid[3][0], '*');
}

TEST(TextPlot, BarsScaleToMax) {
  std::vector<std::string> labels{"a", "bb"};
  std::vector<double> values{1.0, 2.0};
  auto bars = RenderBars(labels, values, 10);
  ASSERT_EQ(bars.size(), 2u);
  // The max value fills the full width; the half value, half of it.
  EXPECT_NE(bars[1].find("##########"), std::string::npos);
  EXPECT_NE(bars[0].find("#####"), std::string::npos);
  EXPECT_EQ(bars[0].find("######"), std::string::npos);
}

TEST(TextPlot, Sparkline) {
  std::vector<double> flat{1, 1, 1};
  std::string s = RenderSparkline(flat);
  EXPECT_EQ(s.size(), 3u);
  std::vector<double> ramp{0, 1, 2, 3};
  std::string r = RenderSparkline(ramp);
  EXPECT_EQ(r.front(), ' ');
  EXPECT_EQ(r.back(), '#');
  EXPECT_EQ(RenderSparkline({}), "");
}

}  // namespace
}  // namespace ipscope::report
