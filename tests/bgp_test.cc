#include <gtest/gtest.h>

#include "bgp/correlate.h"
#include "bgp/feed.h"
#include "bgp/table.h"
#include "cdn/observatory.h"
#include "sim/world.h"

namespace ipscope::bgp {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 600;
    return config;
  }()};
  return world;
}

TEST(RoutingFeed, BlocksRoutedToPlannedAsnAtYearStart) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  int checked = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    net::BlockKey key = net::BlockKeyOf(plan.block);
    bool has_announce_event = false;
    for (const auto& ev : world.bgp_events()) {
      if (ev.key == key && ev.type == sim::BgpEventType::kAnnounce) {
        has_announce_event = true;
      }
    }
    if (!has_announce_event) {
      EXPECT_EQ(feed.OriginOf(key, 0), plan.asn) << plan.block;
      if (++checked > 50) break;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(RoutingFeed, UnknownBlockIsUnrouted) {
  RoutingFeed feed{TestWorld()};
  EXPECT_EQ(feed.OriginOf(0xFFFFFF, 100), 0u);
  EXPECT_EQ(feed.MajorityOrigin(0xFFFFFF, 0, 100), 0u);
  EXPECT_FALSE(feed.HasEventIn(0xFFFFFF, 0, 364));
}

TEST(RoutingFeed, OriginChangeEventApplies) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  for (const auto& ev : world.bgp_events()) {
    if (ev.type == sim::BgpEventType::kOriginChange) {
      std::uint32_t before = feed.OriginOf(ev.key, ev.day - 1);
      std::uint32_t after = feed.OriginOf(ev.key, ev.day);
      EXPECT_EQ(after, ev.asn);
      // HasEventIn sees it.
      EXPECT_TRUE(feed.HasEventIn(ev.key, ev.day, ev.day + 1));
      EXPECT_TRUE(feed.ChangedBetween(ev.key, ev.day - 30, ev.day,
                                      ev.day, ev.day + 30));
      (void)before;
      return;
    }
  }
  GTEST_SKIP() << "no origin-change event scheduled";
}

TEST(RoutingFeed, WithdrawUnroutes) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  for (const auto& ev : world.bgp_events()) {
    if (ev.type == sim::BgpEventType::kWithdraw) {
      EXPECT_NE(feed.OriginOf(ev.key, ev.day - 1), 0u);
      EXPECT_EQ(feed.OriginOf(ev.key, ev.day), 0u);
      return;
    }
  }
  GTEST_SKIP() << "no withdraw event scheduled";
}

TEST(RoutingFeed, AnnounceEventActivatesRoute) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  for (const auto& ev : world.bgp_events()) {
    if (ev.type == sim::BgpEventType::kAnnounce) {
      EXPECT_EQ(feed.OriginOf(ev.key, ev.day - 1), 0u);
      EXPECT_NE(feed.OriginOf(ev.key, ev.day), 0u);
      return;
    }
  }
  GTEST_SKIP() << "no announce event scheduled";
}

TEST(RoutingFeed, MajorityOriginStableWithoutEvents) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  for (const sim::BlockPlan& plan : world.blocks()) {
    net::BlockKey key = net::BlockKeyOf(plan.block);
    if (!feed.HasEventIn(key, 0, 364)) {
      EXPECT_EQ(feed.MajorityOrigin(key, 0, 60), feed.OriginOf(key, 0));
      EXPECT_EQ(feed.MajorityOrigin(key, 300, 364), feed.OriginOf(key, 0));
      return;
    }
  }
  FAIL() << "every block has events?";
}

TEST(RoutingFeed, AggregatedAnnouncementsCoverRoutedBlocks) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  auto announcements = feed.AggregatedAnnouncements(180);
  EXPECT_FALSE(announcements.empty());
  // Aggregation must produce fewer prefixes than /24 blocks, all <= /24.
  EXPECT_LT(announcements.size(), world.blocks().size());
  for (const auto& [prefix, asn] : announcements) {
    EXPECT_LE(prefix.length(), 24);
    EXPECT_NE(asn, 0u);
  }
  // Every aggregated prefix's blocks route to its ASN on that day.
  int verified = 0;
  for (const auto& [prefix, asn] : announcements) {
    net::BlockKey first = net::BlockKeyOf(prefix.first());
    net::BlockKey last = net::BlockKeyOf(prefix.last());
    for (net::BlockKey key = first; key <= last; ++key) {
      std::uint32_t origin = feed.OriginOf(key, 180);
      if (origin != 0) {
        EXPECT_EQ(origin, asn) << prefix;
        ++verified;
      }
    }
    if (verified > 200) break;
  }
  EXPECT_GT(verified, 0);
}

TEST(RoutingFeed, TableLpmAgreesWithOriginOf) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  auto table = feed.TableAt(180);
  int checked = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    net::IPv4Addr addr{plan.block.network().value() + 7};
    std::uint32_t origin = feed.OriginOf(net::BlockKeyOf(addr), 180);
    auto match = table.LongestMatch(addr);
    if (origin == 0) {
      EXPECT_FALSE(match.has_value()) << plan.block;
    } else {
      ASSERT_TRUE(match.has_value()) << plan.block;
      EXPECT_EQ(*match->second, origin) << plan.block;
    }
    if (++checked > 300) break;
  }
}

TEST(RoutingFeed, RoutedAsCountMatchesWorldScale) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  std::size_t count = feed.RoutedAsCount(180);
  EXPECT_GT(count, world.ases().size() / 2);
  EXPECT_LE(count, world.ases().size() + 5);
}

TEST(Correlate, ChurnMostlyInvisibleInBgp) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  auto observatory = cdn::Observatory::Daily(world);
  auto store = observatory.BuildStore();
  auto corr = CorrelateChurnWithBgp(store, feed, observatory.spec(), 28);
  EXPECT_GT(corr.up_events, 0u);
  EXPECT_GT(corr.steady, 0u);
  // The paper's key finding: even monthly, the overwhelming majority of
  // churn has no BGP counterpart.
  EXPECT_LT(corr.UpPct(), 10.0);
  EXPECT_LT(corr.SteadyPct(), corr.UpPct() + 5.0);
}

TEST(Correlate, OriginLookupHelper) {
  const sim::World& world = TestWorld();
  RoutingFeed feed{world};
  auto lookup = OriginLookupAt(feed, 100);
  net::BlockKey key = net::BlockKeyOf(world.blocks()[0].block);
  EXPECT_EQ(lookup(key), feed.OriginOf(key, 100));
}

}  // namespace
}  // namespace ipscope::bgp
