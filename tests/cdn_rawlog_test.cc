#include "cdn/rawlog.h"

#include <gtest/gtest.h>

#include <map>

#include "cdn/observatory.h"

namespace ipscope::cdn {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 150;
    return config;
  }()};
  return world;
}

const sim::BlockPlan* FindClientBlock(sim::PolicyKind kind) {
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    if (plan.base.kind == kind && !plan.HasReconfiguration()) return &plan;
  }
  return nullptr;
}

TEST(RawLog, RecordCountsMatchKernelHits) {
  Observatory daily = Observatory::Daily(TestWorld());
  RawLogGenerator raw{TestWorld(), daily.spec()};
  const sim::BlockPlan* plan =
      FindClientBlock(sim::PolicyKind::kDynamicShort);
  ASSERT_NE(plan, nullptr);

  activity::DayBits bits;
  std::uint32_t hits[256];
  sim::GenerateStep(*plan, daily.spec(), 10, bits, hits);

  std::map<std::uint32_t, std::uint32_t> per_ip;
  raw.ForBlockStep(*plan, 10, [&](const LogRecord& r) {
    ++per_ip[r.client.value()];
  });
  for (int h = 0; h < 256; ++h) {
    std::uint32_t addr = plan->block.network().value() +
                         static_cast<std::uint32_t>(h);
    auto it = per_ip.find(addr);
    std::uint32_t emitted = it == per_ip.end() ? 0 : it->second;
    EXPECT_EQ(emitted, hits[h]) << "host " << h;
  }
}

TEST(RawLog, PerAddressCapHonored) {
  Observatory daily = Observatory::Daily(TestWorld());
  RawLogGenerator raw{TestWorld(), daily.spec()};
  const sim::BlockPlan* plan = FindClientBlock(sim::PolicyKind::kCgnGateway);
  if (plan == nullptr) GTEST_SKIP() << "no gateway block";
  std::map<std::uint32_t, std::uint32_t> per_ip;
  raw.ForBlockStep(*plan, 3, [&](const LogRecord& r) {
    ++per_ip[r.client.value()];
  }, /*per_address_cap=*/5);
  ASSERT_FALSE(per_ip.empty());
  for (const auto& [addr, n] : per_ip) EXPECT_LE(n, 5u);
}

TEST(RawLog, TimestampsWithinDayAndDiurnal) {
  Observatory daily = Observatory::Daily(TestWorld());
  RawLogGenerator raw{TestWorld(), daily.spec()};
  const sim::BlockPlan* plan =
      FindClientBlock(sim::PolicyKind::kDynamicShort);
  ASSERT_NE(plan, nullptr);

  // Day 0 of the daily period is 2015-08-17.
  std::uint32_t day_start = static_cast<std::uint32_t>(
      timeutil::Day::FromCivil({2015, 8, 17}).value()) * 86400u;
  std::uint64_t total = 0, evening = 0, night = 0;
  const int offset = CountryUtcOffset(*plan);
  for (int step = 0; step < 5; ++step) {
    raw.ForBlockStep(*plan, step, [&](const LogRecord& r) {
      std::uint32_t step_start = day_start + 86400u * static_cast<std::uint32_t>(step);
      ASSERT_GE(r.unix_time, step_start);
      ASSERT_LT(r.unix_time, step_start + 86400u);
      int utc_hour = static_cast<int>((r.unix_time - step_start) / 3600);
      int local_hour = ((utc_hour + offset) % 24 + 24) % 24;
      ++total;
      if (local_hour >= 18 && local_hour < 23) ++evening;
      if (local_hour >= 1 && local_hour < 6) ++night;
    });
  }
  ASSERT_GT(total, 100u);
  // Evening traffic dominates the small hours (diurnal curve).
  EXPECT_GT(evening, night * 3);
}

TEST(RawLog, BotsUseOneUaString) {
  Observatory daily = Observatory::Daily(TestWorld());
  RawLogGenerator raw{TestWorld(), daily.spec()};
  const sim::BlockPlan* plan = FindClientBlock(sim::PolicyKind::kCrawlerBots);
  if (plan == nullptr) GTEST_SKIP() << "no crawler block";
  std::set<std::uint64_t> uas;
  raw.ForBlockStep(*plan, 0, [&](const LogRecord& r) { uas.insert(r.ua_id); },
                   /*per_address_cap=*/50);
  EXPECT_EQ(uas.size(), 1u);
}

TEST(RawLog, LogLineRoundTrip) {
  LogRecord r;
  r.unix_time = 1439800000;
  r.client = net::IPv4Addr{72, 14, 3, 200};
  r.edge_server = 177;
  r.bytes = 48213;
  r.status = 404;
  r.ua_id = 0xDEADBEEFCAFEull;
  std::string line = FormatLogLine(r);
  LogRecord parsed;
  ASSERT_TRUE(ParseLogLine(line, parsed)) << line;
  EXPECT_EQ(parsed.unix_time, r.unix_time);
  EXPECT_EQ(parsed.client, r.client);
  EXPECT_EQ(parsed.edge_server, r.edge_server);
  EXPECT_EQ(parsed.bytes, r.bytes);
  EXPECT_EQ(parsed.status, r.status);
  EXPECT_EQ(parsed.ua_id, r.ua_id);
}

TEST(RawLog, ParseRejectsMalformedLines) {
  LogRecord r;
  EXPECT_FALSE(ParseLogLine("", r));
  EXPECT_FALSE(ParseLogLine("not a log line", r));
  EXPECT_FALSE(ParseLogLine("123 1.2.3.4 srv1 200 100", r));  // missing ua
  EXPECT_FALSE(ParseLogLine("123 1.2.3.999 srv1 200 100 ua5", r));
  EXPECT_FALSE(ParseLogLine("123 1.2.3.4 srv1 200 100 ua5 extra", r));
}

TEST(RawLog, UaStringsAreDeterministicAndDistinct) {
  EXPECT_EQ(UaString(42), UaString(42));
  EXPECT_NE(UaString(1), UaString(2));
  EXPECT_FALSE(UaString(123456).empty());
}

TEST(RawLog, DiurnalCurveNormalized) {
  const auto& curve = DiurnalCurve();
  double total = 0;
  for (double w : curve) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Peak in the evening, trough at night.
  EXPECT_GT(curve[20], curve[4] * 5);
}

TEST(LogAggregator, ReconstructsAggregates) {
  Observatory daily = Observatory::Daily(TestWorld());
  RawLogGenerator raw{TestWorld(), daily.spec()};
  const sim::BlockPlan* plan =
      FindClientBlock(sim::PolicyKind::kDynamicShort);
  ASSERT_NE(plan, nullptr);

  LogAggregator aggregator{/*ua_sample_interval=*/64};
  std::uint64_t emitted = 0;
  raw.ForBlockStep(*plan, 7, [&](const LogRecord& r) {
    aggregator.Consume(r);
    ++emitted;
  });
  EXPECT_EQ(aggregator.total_records(), emitted);
  // Per-IP aggregation matches the kernel hits.
  activity::DayBits bits;
  std::uint32_t hits[256];
  sim::GenerateStep(*plan, daily.spec(), 7, bits, hits);
  for (const auto& [addr, count] : aggregator.hits_per_ip()) {
    int host = static_cast<int>(addr & 0xFF);
    EXPECT_EQ(count, hits[host]);
  }
  // Sampling rate ~ 1/64.
  EXPECT_NEAR(static_cast<double>(aggregator.sampled_uas().size()),
              static_cast<double>(emitted) / 64.0, 3.0);
  EXPECT_LE(aggregator.unique_sampled_uas(),
            aggregator.sampled_uas().size());
}

}  // namespace
}  // namespace ipscope::cdn
