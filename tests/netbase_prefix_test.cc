#include "netbase/prefix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ipscope::net {
namespace {

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p{IPv4Addr{192, 0, 2, 77}, 24};
  EXPECT_EQ(p.network(), (IPv4Addr{192, 0, 2, 0}));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p, (Prefix{IPv4Addr{192, 0, 2, 0}, 24}));
}

TEST(Prefix, FirstLastSize) {
  Prefix p{IPv4Addr{10, 0, 0, 0}, 8};
  EXPECT_EQ(p.first(), (IPv4Addr{10, 0, 0, 0}));
  EXPECT_EQ(p.last(), (IPv4Addr{10, 255, 255, 255}));
  EXPECT_EQ(p.size(), 1u << 24);

  Prefix host{IPv4Addr{1, 2, 3, 4}, 32};
  EXPECT_EQ(host.first(), host.last());
  EXPECT_EQ(host.size(), 1u);

  Prefix all{IPv4Addr{0u}, 0};
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ContainsAddress) {
  Prefix p{IPv4Addr{198, 51, 100, 0}, 24};
  EXPECT_TRUE(p.Contains(IPv4Addr{198, 51, 100, 0}));
  EXPECT_TRUE(p.Contains(IPv4Addr{198, 51, 100, 255}));
  EXPECT_FALSE(p.Contains(IPv4Addr{198, 51, 101, 0}));
  EXPECT_FALSE(p.Contains(IPv4Addr{198, 51, 99, 255}));
}

TEST(Prefix, ContainsPrefix) {
  Prefix p16{IPv4Addr{10, 1, 0, 0}, 16};
  Prefix p24{IPv4Addr{10, 1, 2, 0}, 24};
  EXPECT_TRUE(p16.Contains(p24));
  EXPECT_FALSE(p24.Contains(p16));
  EXPECT_TRUE(p16.Contains(p16));
  EXPECT_FALSE(p16.Contains(Prefix{IPv4Addr{10, 2, 0, 0}, 24}));
}

TEST(Prefix, Parent) {
  Prefix p{IPv4Addr{192, 0, 3, 0}, 24};
  EXPECT_EQ(p.Parent(), (Prefix{IPv4Addr{192, 0, 2, 0}, 23}));
  Prefix root{IPv4Addr{0u}, 0};
  EXPECT_EQ(root.Parent(), root);
}

TEST(Prefix, ParseValid) {
  auto p = Prefix::Parse("203.0.113.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Prefix{IPv4Addr{203, 0, 113, 0}, 24}));
  EXPECT_TRUE(Prefix::Parse("0.0.0.0/0").has_value());
  EXPECT_TRUE(Prefix::Parse("1.2.3.4/32").has_value());
}

TEST(Prefix, ParseRejectsNonCanonical) {
  EXPECT_FALSE(Prefix::Parse("203.0.113.1/24").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/-1").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0").has_value());
  EXPECT_FALSE(Prefix::Parse("/24").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/24x").has_value());
}

TEST(Prefix, ToStringRoundTrip) {
  for (int len : {0, 1, 8, 15, 24, 31, 32}) {
    Prefix p{IPv4Addr{172, 16, 254, 0}, len};
    auto parsed = Prefix::Parse(p.ToString());
    ASSERT_TRUE(parsed.has_value()) << p.ToString();
    EXPECT_EQ(*parsed, p);
  }
}

TEST(Prefix, NetMaskValues) {
  EXPECT_EQ(NetMask(0), 0u);
  EXPECT_EQ(NetMask(8), 0xFF000000u);
  EXPECT_EQ(NetMask(24), 0xFFFFFF00u);
  EXPECT_EQ(NetMask(32), 0xFFFFFFFFu);
}

TEST(Prefix, CoverRangeSinglePrefix) {
  auto cover = CoverRange(IPv4Addr{10, 0, 0, 0}, IPv4Addr{10, 0, 0, 255});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (Prefix{IPv4Addr{10, 0, 0, 0}, 24}));
}

TEST(Prefix, CoverRangeSingleAddress) {
  auto cover = CoverRange(IPv4Addr{1, 2, 3, 4}, IPv4Addr{1, 2, 3, 4});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 32);
}

TEST(Prefix, CoverRangeUnalignedSplits) {
  // [10.0.0.1, 10.0.0.6] = .1/32 .2/31 .4/31 .6/32
  auto cover = CoverRange(IPv4Addr{10, 0, 0, 1}, IPv4Addr{10, 0, 0, 6});
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover[0], (Prefix{IPv4Addr{10, 0, 0, 1}, 32}));
  EXPECT_EQ(cover[1], (Prefix{IPv4Addr{10, 0, 0, 2}, 31}));
  EXPECT_EQ(cover[2], (Prefix{IPv4Addr{10, 0, 0, 4}, 31}));
  EXPECT_EQ(cover[3], (Prefix{IPv4Addr{10, 0, 0, 6}, 32}));
}

TEST(Prefix, CoverRangeWholeSpace) {
  auto cover = CoverRange(IPv4Addr{0u}, IPv4Addr{0xFFFFFFFFu});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0);
}

TEST(Prefix, CoverRangePropertyExactDisjointCover) {
  // Random ranges: prefixes must tile the range exactly, in order.
  std::uint64_t state = 99;
  for (int round = 0; round < 200; ++round) {
    auto r1 = static_cast<std::uint32_t>(state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    auto r2 = static_cast<std::uint32_t>(state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    std::uint32_t lo = std::min(r1, r2);
    std::uint32_t hi = std::max(r1, r2);
    auto cover = CoverRange(IPv4Addr{lo}, IPv4Addr{hi});
    std::uint64_t cursor = lo;
    std::uint64_t total = 0;
    for (const Prefix& p : cover) {
      ASSERT_EQ(p.first().value(), cursor);
      cursor = static_cast<std::uint64_t>(p.last().value()) + 1;
      total += p.size();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(hi) - lo + 1);
    EXPECT_EQ(cursor, static_cast<std::uint64_t>(hi) + 1);
    // Minimality bound: a range never needs more than 62 prefixes.
    EXPECT_LE(cover.size(), 62u);
  }
}

// Independent minimal aligned cover of [lo, hi], by recursive binary-trie
// descent: emit a node iff it lies entirely inside the range, otherwise
// split. The result is the unique minimal disjoint cover by aligned
// prefixes, computed with none of CoverRange's bit tricks — the oracle the
// property test below compares against.
void MinimalCoverRec(std::uint64_t node_first, std::uint64_t node_last,
                     std::uint64_t lo, std::uint64_t hi, int len,
                     std::vector<std::pair<std::uint64_t, int>>* out) {
  if (node_last < lo || node_first > hi) return;
  if (node_first >= lo && node_last <= hi) {
    out->emplace_back(node_first, len);
    return;
  }
  std::uint64_t mid = node_first + (node_last - node_first) / 2;
  MinimalCoverRec(node_first, mid, lo, hi, len + 1, out);
  MinimalCoverRec(mid + 1, node_last, lo, hi, len + 1, out);
}

std::vector<std::pair<std::uint64_t, int>> MinimalCover(std::uint32_t lo,
                                                        std::uint32_t hi) {
  std::vector<std::pair<std::uint64_t, int>> out;
  MinimalCoverRec(0, 0xFFFFFFFFull, lo, hi, 0, &out);
  return out;
}

TEST(Prefix, CoverRangePropertyAlignedAndCountMinimal) {
  // CoverRange must return exactly the unique minimal cover (same prefixes,
  // same ascending order), every prefix aligned to its own size. Includes
  // the 0.0.0.0 edge, the 255.255.255.255 edge, and the full range.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {
      {0u, 0u},
      {0u, 1u},
      {0u, 0xFFFFFFFFu},
      {0u, 0x00FFFFFFu},
      {1u, 0xFFFFFFFFu},
      {0xFFFFFFFFu, 0xFFFFFFFFu},
      {0xFFFFFF00u, 0xFFFFFFFFu},
      {0x0A000001u, 0x0A000006u},
  };
  std::uint64_t state = 2016;
  for (int round = 0; round < 300; ++round) {
    auto r1 = static_cast<std::uint32_t>(
        state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    auto r2 = static_cast<std::uint32_t>(
        state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    ranges.emplace_back(std::min(r1, r2), std::max(r1, r2));
  }
  for (auto [lo, hi] : ranges) {
    auto cover = CoverRange(IPv4Addr{lo}, IPv4Addr{hi});
    auto minimal = MinimalCover(lo, hi);
    ASSERT_EQ(cover.size(), minimal.size()) << lo << "-" << hi;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      EXPECT_EQ(cover[i].first().value(), minimal[i].first);
      EXPECT_EQ(cover[i].length(), minimal[i].second);
      // Alignment: the network address is a multiple of the prefix size.
      if (cover[i].length() < 32) {
        EXPECT_EQ(cover[i].first().value() % cover[i].size(), 0u);
      }
    }
  }
}

TEST(Prefix, ParseRejectionCorpus) {
  // Malformed inputs that a permissive parser (atoi-style) would wave
  // through; Parse must reject every one.
  const char* corpus[] = {
      "",
      " ",
      "1.2.3.4",
      "1.2.3/24",
      "1.2.3.4.5/8",
      "256.0.0.0/8",
      "300.0.0.0/8",
      "-1.2.3.4/8",
      "+1.2.3.4/8",
      "1.2.3.4/",
      "1.2.3.4//8",
      "1.2.3.4/+8",
      "1.2.3.4/-0",
      "1.2.3.4/33",
      "1.2.3.4/999",
      "1.2.3.4/0x8",
      "1.2.3.4/ 8",
      " 1.2.3.0/24",
      "1.2.3.0/24 ",
      "1.2.3.0/24\n",
      "a.b.c.d/8",
      "1..2.3/8",
      "banana",
  };
  for (const char* text : corpus) {
    EXPECT_FALSE(Prefix::Parse(text).has_value()) << "'" << text << "'";
  }
}

TEST(Prefix, BlockKeyRoundTrip) {
  IPv4Addr addr{100, 64, 7, 200};
  BlockKey key = BlockKeyOf(addr);
  Prefix block = BlockFromKey(key);
  EXPECT_EQ(block, BlockOf(addr));
  EXPECT_TRUE(block.Contains(addr));
  EXPECT_EQ(block.length(), 24);
  EXPECT_EQ(BlockKeyOf(block), key);
}

}  // namespace
}  // namespace ipscope::net
