#include "netbase/prefix.h"

#include <gtest/gtest.h>

namespace ipscope::net {
namespace {

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p{IPv4Addr{192, 0, 2, 77}, 24};
  EXPECT_EQ(p.network(), (IPv4Addr{192, 0, 2, 0}));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p, (Prefix{IPv4Addr{192, 0, 2, 0}, 24}));
}

TEST(Prefix, FirstLastSize) {
  Prefix p{IPv4Addr{10, 0, 0, 0}, 8};
  EXPECT_EQ(p.first(), (IPv4Addr{10, 0, 0, 0}));
  EXPECT_EQ(p.last(), (IPv4Addr{10, 255, 255, 255}));
  EXPECT_EQ(p.size(), 1u << 24);

  Prefix host{IPv4Addr{1, 2, 3, 4}, 32};
  EXPECT_EQ(host.first(), host.last());
  EXPECT_EQ(host.size(), 1u);

  Prefix all{IPv4Addr{0u}, 0};
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ContainsAddress) {
  Prefix p{IPv4Addr{198, 51, 100, 0}, 24};
  EXPECT_TRUE(p.Contains(IPv4Addr{198, 51, 100, 0}));
  EXPECT_TRUE(p.Contains(IPv4Addr{198, 51, 100, 255}));
  EXPECT_FALSE(p.Contains(IPv4Addr{198, 51, 101, 0}));
  EXPECT_FALSE(p.Contains(IPv4Addr{198, 51, 99, 255}));
}

TEST(Prefix, ContainsPrefix) {
  Prefix p16{IPv4Addr{10, 1, 0, 0}, 16};
  Prefix p24{IPv4Addr{10, 1, 2, 0}, 24};
  EXPECT_TRUE(p16.Contains(p24));
  EXPECT_FALSE(p24.Contains(p16));
  EXPECT_TRUE(p16.Contains(p16));
  EXPECT_FALSE(p16.Contains(Prefix{IPv4Addr{10, 2, 0, 0}, 24}));
}

TEST(Prefix, Parent) {
  Prefix p{IPv4Addr{192, 0, 3, 0}, 24};
  EXPECT_EQ(p.Parent(), (Prefix{IPv4Addr{192, 0, 2, 0}, 23}));
  Prefix root{IPv4Addr{0u}, 0};
  EXPECT_EQ(root.Parent(), root);
}

TEST(Prefix, ParseValid) {
  auto p = Prefix::Parse("203.0.113.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Prefix{IPv4Addr{203, 0, 113, 0}, 24}));
  EXPECT_TRUE(Prefix::Parse("0.0.0.0/0").has_value());
  EXPECT_TRUE(Prefix::Parse("1.2.3.4/32").has_value());
}

TEST(Prefix, ParseRejectsNonCanonical) {
  EXPECT_FALSE(Prefix::Parse("203.0.113.1/24").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/-1").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0").has_value());
  EXPECT_FALSE(Prefix::Parse("/24").has_value());
  EXPECT_FALSE(Prefix::Parse("203.0.113.0/24x").has_value());
}

TEST(Prefix, ToStringRoundTrip) {
  for (int len : {0, 1, 8, 15, 24, 31, 32}) {
    Prefix p{IPv4Addr{172, 16, 254, 0}, len};
    auto parsed = Prefix::Parse(p.ToString());
    ASSERT_TRUE(parsed.has_value()) << p.ToString();
    EXPECT_EQ(*parsed, p);
  }
}

TEST(Prefix, NetMaskValues) {
  EXPECT_EQ(NetMask(0), 0u);
  EXPECT_EQ(NetMask(8), 0xFF000000u);
  EXPECT_EQ(NetMask(24), 0xFFFFFF00u);
  EXPECT_EQ(NetMask(32), 0xFFFFFFFFu);
}

TEST(Prefix, CoverRangeSinglePrefix) {
  auto cover = CoverRange(IPv4Addr{10, 0, 0, 0}, IPv4Addr{10, 0, 0, 255});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (Prefix{IPv4Addr{10, 0, 0, 0}, 24}));
}

TEST(Prefix, CoverRangeSingleAddress) {
  auto cover = CoverRange(IPv4Addr{1, 2, 3, 4}, IPv4Addr{1, 2, 3, 4});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 32);
}

TEST(Prefix, CoverRangeUnalignedSplits) {
  // [10.0.0.1, 10.0.0.6] = .1/32 .2/31 .4/31 .6/32
  auto cover = CoverRange(IPv4Addr{10, 0, 0, 1}, IPv4Addr{10, 0, 0, 6});
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover[0], (Prefix{IPv4Addr{10, 0, 0, 1}, 32}));
  EXPECT_EQ(cover[1], (Prefix{IPv4Addr{10, 0, 0, 2}, 31}));
  EXPECT_EQ(cover[2], (Prefix{IPv4Addr{10, 0, 0, 4}, 31}));
  EXPECT_EQ(cover[3], (Prefix{IPv4Addr{10, 0, 0, 6}, 32}));
}

TEST(Prefix, CoverRangeWholeSpace) {
  auto cover = CoverRange(IPv4Addr{0u}, IPv4Addr{0xFFFFFFFFu});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0);
}

TEST(Prefix, CoverRangePropertyExactDisjointCover) {
  // Random ranges: prefixes must tile the range exactly, in order.
  std::uint64_t state = 99;
  for (int round = 0; round < 200; ++round) {
    auto r1 = static_cast<std::uint32_t>(state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    auto r2 = static_cast<std::uint32_t>(state = state * 6364136223846793005ULL + 1442695040888963407ULL);
    std::uint32_t lo = std::min(r1, r2);
    std::uint32_t hi = std::max(r1, r2);
    auto cover = CoverRange(IPv4Addr{lo}, IPv4Addr{hi});
    std::uint64_t cursor = lo;
    std::uint64_t total = 0;
    for (const Prefix& p : cover) {
      ASSERT_EQ(p.first().value(), cursor);
      cursor = static_cast<std::uint64_t>(p.last().value()) + 1;
      total += p.size();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(hi) - lo + 1);
    EXPECT_EQ(cursor, static_cast<std::uint64_t>(hi) + 1);
    // Minimality bound: a range never needs more than 62 prefixes.
    EXPECT_LE(cover.size(), 62u);
  }
}

TEST(Prefix, BlockKeyRoundTrip) {
  IPv4Addr addr{100, 64, 7, 200};
  BlockKey key = BlockKeyOf(addr);
  Prefix block = BlockFromKey(key);
  EXPECT_EQ(block, BlockOf(addr));
  EXPECT_TRUE(block.Contains(addr));
  EXPECT_EQ(block.length(), 24);
  EXPECT_EQ(BlockKeyOf(block), key);
}

}  // namespace
}  // namespace ipscope::net
