// Golden-snapshot store tests: write/verify round trip, and the three
// failure modes (missing, stale/corrupt, code regression).
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "check/golden.h"

namespace ipscope {
namespace {

namespace fs = std::filesystem;

// Small canonical world so each render stays fast.
check::GoldenConfig TestConfig() {
  check::GoldenConfig config;
  config.seed = 9;
  config.blocks = 80;
  return config;
}

class GoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ipscope_golden_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ReadFile(const std::string& name) {
    std::ifstream is{dir_ / name, std::ios::binary};
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream os{dir_ / name, std::ios::binary};
    os << contents;
  }

  fs::path dir_;
};

TEST_F(GoldenTest, RenderIsDeterministic) {
  auto a = check::RenderGoldens(TestConfig());
  auto b = check::RenderGoldens(TestConfig());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].contents, b[i].contents) << a[i].name;
  }
  EXPECT_EQ(check::RenderManifest(a), check::RenderManifest(b));
}

TEST_F(GoldenTest, WriteThenVerifyIsClean) {
  check::WriteGoldens(dir_.string(), TestConfig());
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "churn.csv"));
  auto issues = check::VerifyGoldens(dir_.string(), TestConfig());
  EXPECT_TRUE(issues.empty());
}

TEST_F(GoldenTest, CorruptSnapshotReportsStale) {
  check::WriteGoldens(dir_.string(), TestConfig());
  std::string churn = ReadFile("churn.csv");
  churn[churn.size() / 2] ^= 1;  // one flipped bit in the committed file
  WriteFile("churn.csv", churn);
  auto issues = check::VerifyGoldens(dir_.string(), TestConfig());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, check::GoldenIssue::Kind::kStale);
  EXPECT_EQ(issues[0].file, "churn.csv");
}

TEST_F(GoldenTest, MissingSnapshotReported) {
  check::WriteGoldens(dir_.string(), TestConfig());
  fs::remove(dir_ / "summary.csv");
  auto issues = check::VerifyGoldens(dir_.string(), TestConfig());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, check::GoldenIssue::Kind::kMissing);
  EXPECT_EQ(issues[0].file, "summary.csv");
}

TEST_F(GoldenTest, MissingManifestReported) {
  check::WriteGoldens(dir_.string(), TestConfig());
  fs::remove(dir_ / "MANIFEST.csv");
  auto issues = check::VerifyGoldens(dir_.string(), TestConfig());
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].kind, check::GoldenIssue::Kind::kMissing);
  EXPECT_EQ(issues[0].file, "MANIFEST.csv");
}

TEST_F(GoldenTest, BehaviorChangeReportsRegressionNotStale) {
  // Goldens committed from one world; the code now renders another
  // (simulated by verifying with a different seed). The disk still matches
  // its manifest, so this must classify as a code regression with a line
  // coordinate, not as a stale checkout.
  check::WriteGoldens(dir_.string(), TestConfig());
  check::GoldenConfig changed = TestConfig();
  changed.seed = 10;
  auto issues = check::VerifyGoldens(dir_.string(), changed);
  ASSERT_FALSE(issues.empty());
  for (const auto& issue : issues) {
    EXPECT_EQ(issue.kind, check::GoldenIssue::Kind::kRegression) << issue.file;
    EXPECT_NE(issue.detail.find("line "), std::string::npos) << issue.detail;
  }
}

TEST_F(GoldenTest, ManifestOrphanReported) {
  check::WriteGoldens(dir_.string(), TestConfig());
  std::string manifest = ReadFile("MANIFEST.csv");
  manifest += "retired_series.csv,00000000\n";
  WriteFile("MANIFEST.csv", manifest);
  auto issues = check::VerifyGoldens(dir_.string(), TestConfig());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, check::GoldenIssue::Kind::kUnexpected);
  EXPECT_EQ(issues[0].file, "retired_series.csv");
}

}  // namespace
}  // namespace ipscope
