#include "netbase/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rng/rng.h"

namespace ipscope::net {
namespace {

TEST(PrefixTrie, EmptyTrie) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.Find(Prefix{IPv4Addr{10, 0, 0, 0}, 8}), nullptr);
  EXPECT_FALSE(trie.LongestMatch(IPv4Addr{10, 0, 0, 1}).has_value());
}

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  Prefix p{IPv4Addr{10, 0, 0, 0}, 8};
  EXPECT_TRUE(trie.Insert(p, 42));
  ASSERT_NE(trie.Find(p), nullptr);
  EXPECT_EQ(*trie.Find(p), 42);
  EXPECT_EQ(trie.size(), 1u);

  EXPECT_FALSE(trie.Insert(p, 43));  // overwrite, not new
  EXPECT_EQ(*trie.Find(p), 43);
  EXPECT_EQ(trie.size(), 1u);

  EXPECT_TRUE(trie.Erase(p));
  EXPECT_EQ(trie.Find(p), nullptr);
  EXPECT_FALSE(trie.Erase(p));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix{IPv4Addr{10, 0, 0, 0}, 8}, 1);
  trie.Insert(Prefix{IPv4Addr{10, 1, 0, 0}, 16}, 2);
  trie.Insert(Prefix{IPv4Addr{10, 1, 2, 0}, 24}, 3);

  auto m = trie.LongestMatch(IPv4Addr{10, 1, 2, 3});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 3);
  EXPECT_EQ(m->first.length(), 24);

  m = trie.LongestMatch(IPv4Addr{10, 1, 3, 4});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 2);

  m = trie.LongestMatch(IPv4Addr{10, 200, 0, 1});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 1);

  EXPECT_FALSE(trie.LongestMatch(IPv4Addr{11, 0, 0, 0}).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix{IPv4Addr{0u}, 0}, 7);
  auto m = trie.LongestMatch(IPv4Addr{255, 255, 255, 255});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 7);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix{IPv4Addr{1, 2, 3, 4}, 32}, 9);
  EXPECT_TRUE(trie.LongestMatch(IPv4Addr{1, 2, 3, 4}).has_value());
  EXPECT_FALSE(trie.LongestMatch(IPv4Addr{1, 2, 3, 5}).has_value());
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  std::vector<Prefix> inserted = {
      Prefix{IPv4Addr{10, 0, 0, 0}, 8},
      Prefix{IPv4Addr{10, 1, 0, 0}, 16},
      Prefix{IPv4Addr{192, 168, 0, 0}, 16},
      Prefix{IPv4Addr{0u}, 0},
  };
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    trie.Insert(inserted[i], static_cast<int>(i));
  }
  std::vector<Prefix> visited;
  trie.ForEach([&](Prefix p, int) { visited.push_back(p); });
  EXPECT_EQ(visited.size(), inserted.size());
  for (const Prefix& p : inserted) {
    EXPECT_NE(std::find(visited.begin(), visited.end(), p), visited.end());
  }
}

// Property test: LongestMatch agrees with a brute-force linear scan over a
// random route table.
TEST(PrefixTrie, LongestMatchAgreesWithLinearOracle) {
  rng::Xoshiro256 g{12345};
  PrefixTrie<std::uint32_t> trie;
  std::vector<std::pair<Prefix, std::uint32_t>> routes;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    Prefix p{IPv4Addr{static_cast<std::uint32_t>(g())},
             static_cast<int>(g.NextBounded(25)) + 8};
    if (trie.Insert(p, i)) {
      routes.emplace_back(p, i);
    } else {
      // Overwrite: update the oracle too.
      for (auto& [rp, rv] : routes) {
        if (rp == p) rv = i;
      }
    }
  }
  for (int probe = 0; probe < 5000; ++probe) {
    IPv4Addr addr{static_cast<std::uint32_t>(g())};
    const std::uint32_t* best = nullptr;
    int best_len = -1;
    for (const auto& [p, v] : routes) {
      if (p.Contains(addr) && p.length() > best_len) {
        best = &v;
        best_len = p.length();
      }
    }
    auto m = trie.LongestMatch(addr);
    if (best == nullptr) {
      EXPECT_FALSE(m.has_value());
    } else {
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(*m->second, *best);
      EXPECT_EQ(m->first.length(), best_len);
    }
  }
}

}  // namespace
}  // namespace ipscope::net
