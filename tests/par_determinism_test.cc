// Whole-pipeline determinism under parallel execution: every analysis must
// produce bit-identical output for any thread count, including on stores
// with coverage gaps (the PR-3 fault-injection semantics).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "activity/change.h"
#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/metrics.h"
#include "analysis/fig6_patterns.h"
#include "cdn/observatory.h"
#include "io/store_io.h"
#include "par/pool.h"
#include "sim/world.h"

namespace ipscope {
namespace {

const std::vector<int>& ThreadSweep() {
  static std::vector<int> sweep = [] {
    std::vector<int> s{1, 2};
    int hw = par::HardwareThreads();
    if (hw > 2) s.push_back(hw);
    s.push_back(8);  // oversubscribed: forces real interleavings on any host
    return s;
  }();
  return sweep;
}

sim::World& SmallWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 300;
    return config;
  }()};
  return world;
}

activity::ActivityStore& DailyStore() {
  static activity::ActivityStore store =
      cdn::Observatory::Daily(SmallWorld()).BuildStore();
  return store;
}

// A store with coverage gaps: analyses must keep their -1 sentinels and
// covered-day denominators intact on every parallel path.
activity::ActivityStore& GappedStore() {
  static activity::ActivityStore store = [] {
    activity::ActivityStore s =
        cdn::Observatory::Daily(SmallWorld()).BuildStore();
    // Day 0, all of week 1 (days 7..13 — a whole churn window), and one
    // isolated mid-period day.
    for (int day : {0, 7, 8, 9, 10, 11, 12, 13, 60}) {
      s.SetDayCovered(day, false);
    }
    return s;
  }();
  return store;
}

std::string Serialized(const activity::ActivityStore& store) {
  std::ostringstream os;
  io::SaveStore(store, os);
  return std::move(os).str();
}

// Runs `fn` once per sweep entry with the global pool resized, asserting
// every result equals the serial one via `eq`.
template <typename Fn>
void ExpectInvariantAcrossThreads(const Fn& fn) {
  par::GlobalPool().Resize(1);
  auto reference = fn();
  for (int threads : ThreadSweep()) {
    par::GlobalPool().Resize(threads);
    auto got = fn();
    EXPECT_TRUE(got == reference) << "diverged at threads=" << threads;
  }
  par::GlobalPool().Resize(0);
}

TEST(ParDeterminism, BuildStoreBitIdenticalAcrossThreadCounts) {
  cdn::Observatory daily = cdn::Observatory::Daily(SmallWorld());
  std::string reference = Serialized(daily.BuildStore(1));
  for (int threads : ThreadSweep()) {
    EXPECT_EQ(Serialized(daily.BuildStore(threads)), reference)
        << "threads=" << threads;
  }
  // Via the global pool (threads = 0 delegates to its current size).
  par::GlobalPool().Resize(4);
  EXPECT_EQ(Serialized(daily.BuildStore()), reference);
  par::GlobalPool().Resize(0);
}

TEST(ParDeterminism, StoreReductionsMatchSerial) {
  const activity::ActivityStore& store = DailyStore();
  ExpectInvariantAcrossThreads([&] {
    return std::tuple{store.DailyActiveCounts(), store.CountActive(0, 112),
                      store.CountActiveBlocks(0, 112),
                      store.ActiveSet(0, 112)};
  });
}

TEST(ParDeterminism, ChurnFamilyMatchesSerial) {
  activity::ChurnAnalyzer analyzer{DailyStore()};
  ExpectInvariantAcrossThreads([&] {
    auto churn = analyzer.Churn(7);
    auto daily = analyzer.DailyEvents();
    auto versus = analyzer.VersusFirst(7);
    return std::tuple{churn.pairs,   churn.up_pct,  churn.down_pct,
                      daily.active,  daily.up,      daily.down,
                      versus.appear, versus.disappear, versus.active};
  });
}

TEST(ParDeterminism, PerGroupChurnMatchesSerial) {
  const sim::World& world = SmallWorld();
  activity::ChurnAnalyzer analyzer{DailyStore()};
  auto group_of = [&](net::BlockKey key) {
    return world.PlannedAsnOf(key).value_or(0);
  };
  ExpectInvariantAcrossThreads([&] {
    auto groups = analyzer.PerGroupChurn(7, group_of, /*min_active_ips=*/1);
    std::vector<std::tuple<std::uint32_t, std::uint64_t, double, double>> out;
    for (const auto& g : groups) {
      out.emplace_back(g.group, g.total_active_ips, g.median_up_pct,
                       g.median_down_pct);
    }
    return out;
  });
}

TEST(ParDeterminism, EventSizesMatchSerial) {
  const activity::ActivityStore& store = DailyStore();
  ExpectInvariantAcrossThreads([&] {
    auto up = activity::EventSizes(store, 0, 7, 7, 14, /*up=*/true);
    auto down = activity::EventSizes(store, 0, 7, 7, 14, /*up=*/false);
    auto strict = activity::EventSizesStrict(store, 0, 7, 7, 14, true);
    return std::tuple{up.by_mask, up.total, down.by_mask, down.total,
                      strict.by_mask, strict.total};
  });
}

TEST(ParDeterminism, BlockMetricsAndChangesMatchSerial) {
  const activity::ActivityStore& store = DailyStore();
  ExpectInvariantAcrossThreads([&] {
    auto metrics = activity::ComputeBlockMetrics(store);
    auto stu = activity::MaxMonthlyStuChange(store, 28);
    auto spatial = activity::SpatialStuChanges(store, 28);
    std::vector<std::tuple<net::BlockKey, int, double>> m;
    for (const auto& bm : metrics) {
      m.emplace_back(bm.key, bm.filling_degree, bm.stu);
    }
    std::vector<std::pair<net::BlockKey, double>> c;
    for (const auto& bc : stu) c.emplace_back(bc.key, bc.max_delta);
    std::vector<std::tuple<net::BlockKey, double, double>> s;
    for (const auto& bc : spatial) {
      s.emplace_back(bc.key, bc.lower_delta, bc.upper_delta);
    }
    return std::tuple{m, c, s};
  });
}

TEST(ParDeterminism, PatternClassificationMatchesSerial) {
  ExpectInvariantAcrossThreads([&] {
    auto fig6 = analysis::RunFig6(SmallWorld(), DailyStore());
    std::vector<std::tuple<net::BlockKey, std::string, int>> exemplars;
    for (const auto& ex : fig6.exemplars) {
      exemplars.emplace_back(ex.key, ex.truth,
                             static_cast<int>(ex.classified));
    }
    return std::tuple{fig6.confusion, fig6.overall_agreement, exemplars};
  });
}

TEST(ParDeterminism, GappedStoreKeepsCoverageSemantics) {
  const activity::ActivityStore& store = GappedStore();
  activity::ChurnAnalyzer analyzer{store};

  // Coverage contract spot-checks, independent of thread count.
  par::GlobalPool().Resize(8);
  auto daily = analyzer.DailyEvents();
  EXPECT_EQ(daily.active[0], -1);
  EXPECT_EQ(daily.active[7], -1);
  EXPECT_EQ(daily.up[6], -1);    // pair (6,7) touches uncovered day 7
  EXPECT_EQ(daily.up[13], -1);   // pair (13,14) touches uncovered day 13
  EXPECT_NE(daily.active[30], -1);
  auto churn = analyzer.Churn(7);
  for (int p : churn.pairs) {
    EXPECT_NE(p, 0) << "pairs touching the uncovered week 1 must drop";
    EXPECT_NE(p, 1) << "pairs touching the uncovered week 1 must drop";
  }
  par::GlobalPool().Resize(0);

  // And the whole family is still thread-count invariant on gapped data.
  ExpectInvariantAcrossThreads([&] {
    auto events = analyzer.DailyEvents();
    auto weekly = analyzer.Churn(7);
    auto versus = analyzer.VersusFirst(7);
    auto metrics = activity::ComputeBlockMetrics(store);
    auto stu = activity::MaxMonthlyStuChange(store, 28);
    std::vector<double> stus;
    for (const auto& bm : metrics) stus.push_back(bm.stu);
    std::vector<double> deltas;
    for (const auto& bc : stu) deltas.push_back(bc.max_delta);
    return std::tuple{events.active, events.up,     events.down,
                      weekly.pairs,  weekly.up_pct, weekly.down_pct,
                      versus.appear, stus,          deltas};
  });
}

}  // namespace
}  // namespace ipscope
