// End-to-end tests of `ipscope_cli check` — the differential oracle sweep
// plus golden-snapshot verification.
#include "cli/commands.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ipscope::cli {
namespace {

namespace fs = std::filesystem;

// Small worlds keep the sweep to a couple of seconds across all cases.
constexpr const char* kBlocks = "60";

class CliCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ipscope_cli_check_" + std::string(::testing::UnitTest::
                                                   GetInstance()
                                                       ->current_test_info()
                                                       ->name()));
    fs::remove_all(dir_);
    std::ostringstream out, err;
    ASSERT_EQ(Main({"check", "--update-goldens", "--goldens", dir_.string()},
                   out, err),
              0)
        << err.str();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CliCheck, CleanTreePassesSweepAndGoldens) {
  std::ostringstream out, err;
  int rc = Main({"check", "--blocks", kBlocks, "--threads-max", "2",
                 "--goldens", dir_.string()},
                out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("fault=none"), std::string::npos);
  EXPECT_NE(text.find("fault=drop-days=2"), std::string::npos);
  EXPECT_NE(text.find("threads=1"), std::string::npos);
  EXPECT_NE(text.find("threads=2"), std::string::npos);
  EXPECT_NE(text.find("golden snapshots"), std::string::npos);
  EXPECT_NE(text.find("check: PASS"), std::string::npos);
  EXPECT_EQ(text.find("FAIL"), std::string::npos);
}

TEST_F(CliCheck, SeededMutationExitsNonZeroWithCoordinates) {
  std::ostringstream out, err;
  int rc = Main({"check", "--blocks", kBlocks, "--threads-max", "1",
                 "--goldens", dir_.string(), "--perturb", "flip-bit"},
                out, err);
  EXPECT_EQ(rc, 1) << out.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("perturb=flip-bit"), std::string::npos);
  EXPECT_NE(text.find("reference="), std::string::npos);
  EXPECT_NE(text.find("optimized="), std::string::npos);
  EXPECT_NE(text.find("check: FAIL"), std::string::npos);
}

TEST_F(CliCheck, CorruptedGoldenExitsNonZero) {
  // Perturb one digit of a committed churn value; the CRC manifest must
  // flag the file as stale and the command must fail.
  fs::path churn = dir_ / "churn.csv";
  std::string contents;
  {
    std::ifstream is{churn, std::ios::binary};
    std::ostringstream buf;
    buf << is.rdbuf();
    contents = buf.str();
  }
  auto digit = contents.find_first_of("0123456789", contents.find('\n'));
  ASSERT_NE(digit, std::string::npos);
  contents[digit] = contents[digit] == '9' ? '8' : contents[digit] + 1;
  {
    std::ofstream os{churn, std::ios::binary};
    os << contents;
  }
  std::ostringstream out, err;
  int rc = Main({"check", "--blocks", kBlocks, "--threads-max", "1",
                 "--goldens", dir_.string()},
                out, err);
  EXPECT_EQ(rc, 1) << out.str();
  EXPECT_NE(out.str().find("stale-golden"), std::string::npos);
  EXPECT_NE(out.str().find("churn.csv"), std::string::npos);
}

TEST_F(CliCheck, UnknownPerturbModeIsFlagError) {
  std::ostringstream out, err;
  int rc = Main({"check", "--perturb", "banana"}, out, err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.str().find("unknown --perturb"), std::string::npos);
}

TEST_F(CliCheck, UsageMentionsCheck) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("check ["), std::string::npos);
}

}  // namespace
}  // namespace ipscope::cli
