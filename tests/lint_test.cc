// Tests for the ipscope_lint lexer and rule engine (tools/lint/).
//
// The lexer tests pin the C++ lexical edge cases a token-level analyzer
// must not trip over (raw strings, multi-line comments, digit separators);
// the rule tests drive AnalyzeFile directly over inline snippets, so the
// committed corpus (tests/lint_corpus/, exercised by the LintSelfTest
// ctest entry) stays the end-to-end check while these stay fast and
// pinpointed.
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache.h"
#include "graph.h"
#include "gtest/gtest.h"
#include "lexer.h"
#include "rules.h"
#include "sarif.h"

namespace lint = ipscope::lint;

namespace {

std::vector<std::string> CodeTexts(const std::string& src) {
  std::vector<std::string> out;
  for (const lint::Token& t : lint::Lex(src).code) out.push_back(t.text);
  return out;
}

// --- Lexer -----------------------------------------------------------------

TEST(LintLexer, SplitsIdentifiersNumbersPunct) {
  auto toks = CodeTexts("int x = a1+2;");
  EXPECT_EQ(toks,
            (std::vector<std::string>{"int", "x", "=", "a1", "+", "2", ";"}));
}

TEST(LintLexer, BannedNameInsideStringIsNotAnIdentifier) {
  lint::LexResult r = lint::Lex("f(\"atoi(getenv)\");");
  for (const lint::Token& t : r.code) {
    EXPECT_NE(t.kind == lint::TokKind::kIdent ? t.text : "", "atoi");
    EXPECT_NE(t.kind == lint::TokKind::kIdent ? t.text : "", "getenv");
  }
}

TEST(LintLexer, RawStringSwallowsEverythingToDelimiter) {
  // The ")" inside the raw string must not close anything, and the banned
  // identifier inside must not leak into the code stream.
  std::string src = "auto s = R\"(atoi(\"7\") // not a comment)\"; g();";
  lint::LexResult r = lint::Lex(src);
  ASSERT_TRUE(r.comments.empty());
  bool saw_g = false;
  for (const lint::Token& t : r.code) {
    if (t.kind == lint::TokKind::kIdent) {
      EXPECT_NE(t.text, "atoi");
      if (t.text == "g") saw_g = true;
    }
  }
  EXPECT_TRUE(saw_g);
}

TEST(LintLexer, RawStringCustomDelimiter) {
  std::string src = "auto s = R\"ab()\" trap )ab\"; h();";
  lint::LexResult r = lint::Lex(src);
  bool saw_h = false, saw_trap = false;
  for (const lint::Token& t : r.code) {
    if (t.text == "h") saw_h = true;
    if (t.text == "trap") saw_trap = true;
  }
  EXPECT_TRUE(saw_h);
  EXPECT_FALSE(saw_trap);
}

TEST(LintLexer, MultiLineCommentTracksLines) {
  std::string src = "a;\n/* one\ntwo\nthree */ b;\n";
  lint::LexResult r = lint::Lex(src);
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].line, 2);
  EXPECT_EQ(r.comments[0].end_line, 4);
  ASSERT_EQ(r.code.size(), 4u);  // a ; b ;
  EXPECT_EQ(r.code[2].text, "b");
  EXPECT_EQ(r.code[2].line, 4);
}

TEST(LintLexer, DigitSeparatorsStayOneNumber) {
  auto toks = CodeTexts("x = 1'000'000 + 0x1p-3 + 1.5e+10;");
  EXPECT_EQ(toks[2], "1'000'000");
  EXPECT_EQ(toks[4], "0x1p-3");
  EXPECT_EQ(toks[6], "1.5e+10");
}

TEST(LintLexer, CharLiteralIsNotADigitSeparator) {
  auto toks = CodeTexts("c = ':'; d = 'x';");
  EXPECT_EQ(toks[2], "':'");
  EXPECT_EQ(toks[6], "'x'");
}

TEST(LintLexer, LineCommentDoesNotEatNewline) {
  lint::LexResult r = lint::Lex("a; // trailing note\nb;");
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].line, 1);
  EXPECT_EQ(r.code[2].text, "b");
  EXPECT_EQ(r.code[2].line, 2);
}

TEST(LintLexer, EllipsisIsOneToken) {
  auto toks = CodeTexts("catch (...) {}");
  EXPECT_EQ(toks, (std::vector<std::string>{"catch", "(", "...", ")", "{",
                                            "}"}));
}

// --- Rule engine -----------------------------------------------------------

lint::FileAnalysis Analyze(const std::string& pseudo_path,
                           const std::string& src) {
  return lint::AnalyzeFile(lint::ClassifyPath(pseudo_path), src);
}

bool HasRule(const lint::FileAnalysis& fa, const std::string& rule) {
  for (const lint::Finding& f : fa.findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

TEST(LintRules, UnorderedIterFiresOnlyInResultLayers) {
  std::string src =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int,int>& m) {\n"
      "  int t = 0;\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(Analyze("src/analysis/x.cc", src), "determinism.unordered-iter"));
  // Non-result layers may iterate (the sim layer feeds the store builder,
  // which canonicalizes ordering).
  EXPECT_FALSE(
      HasRule(Analyze("src/sim/x.cc", src), "determinism.unordered-iter"));
}

TEST(LintRules, UnorderedIterSeesThroughAliases) {
  std::string src =
      "using M = std::unordered_map<int,int>;\n"
      "int f(M& m) {\n"
      "  int t = 0;\n"
      "  for (auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  lint::FileAnalysis fa = Analyze("src/check/x.cc", src);
  ASSERT_TRUE(HasRule(fa, "determinism.unordered-iter"));
  EXPECT_EQ(fa.findings[0].line, 4);
}

TEST(LintRules, SuppressionOnSameLineSilencesAndCounts) {
  std::string src =
      "int f(std::unordered_map<int,int>& m) {\n"
      "  int t = 0;\n"
      "  for (auto& [k, v] : m) t += v;  // lint: ordered(commutative sum)\n"
      "  return t;\n"
      "}\n";
  lint::FileAnalysis fa = Analyze("src/report/x.cc", src);
  EXPECT_TRUE(fa.findings.empty());
  EXPECT_EQ(fa.suppressions_used, 1);
}

TEST(LintRules, StandaloneSuppressionAppliesToNextCodeLine) {
  std::string src =
      "int f(std::unordered_map<int,int>& m) {\n"
      "  int t = 0;\n"
      "  // lint: ordered(commutative sum over independent buckets,\n"
      "  // continued across two comment lines)\n"
      "  for (auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  lint::FileAnalysis fa = Analyze("src/report/x.cc", src);
  EXPECT_TRUE(fa.findings.empty());
  EXPECT_EQ(fa.suppressions_used, 1);
}

TEST(LintRules, EmptyJustificationIsItselfAFinding) {
  std::string src =
      "int f(std::unordered_map<int,int>& m) {\n"
      "  int t = 0;\n"
      "  for (auto& [k, v] : m) t += v;  // lint: ordered( )\n"
      "  return t;\n"
      "}\n";
  lint::FileAnalysis fa = Analyze("src/report/x.cc", src);
  EXPECT_TRUE(HasRule(fa, "lint.suppression"));
  EXPECT_TRUE(HasRule(fa, "determinism.unordered-iter"));  // not silenced
  EXPECT_EQ(fa.suppressions_used, 0);
}

TEST(LintRules, WrongTagDoesNotSuppress) {
  std::string src =
      "int f(std::unordered_map<int,int>& m) {\n"
      "  for (auto& [k, v] : m) {}  // lint: io(wrong tag for this rule)\n"
      "  return 0;\n"
      "}\n";
  lint::FileAnalysis fa = Analyze("src/report/x.cc", src);
  EXPECT_TRUE(HasRule(fa, "determinism.unordered-iter"));
}

TEST(LintRules, TimeRuleExemptsObsAndBench) {
  std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(HasRule(Analyze("src/scan/x.cc", src), "determinism.time"));
  EXPECT_FALSE(HasRule(Analyze("src/obs/x.cc", src), "determinism.time"));
  EXPECT_FALSE(HasRule(Analyze("bench/x.cc", src), "determinism.time"));
}

TEST(LintRules, TimeRuleStillCoversInstrumentedHotPaths) {
  // The scheduler, observatory, and store IO carry telemetry now, but they
  // are NOT time-exempt: their instrumentation must route through the
  // obs::Stopwatch/Span wrappers, never read clocks directly.
  std::string src = "auto t = std::chrono::steady_clock::now();\n";
  for (const char* path : {"src/par/pool.cc", "src/cdn/observatory.cc",
                           "src/io/store_io.cc"}) {
    EXPECT_TRUE(HasRule(Analyze(path, src), "determinism.time")) << path;
  }
  // The prefix match is anchored: a path merely containing "obs" or "bench"
  // is not exempt.
  EXPECT_TRUE(
      HasRule(Analyze("src/analysis/obs_helper.cc", src), "determinism.time"));
  EXPECT_TRUE(HasRule(Analyze("src/benchlike/x.cc", src), "determinism.time"));
}

TEST(LintRules, RawParseAndGetenvFireEverywhere) {
  std::string src =
      "#include <cstdlib>\n"
      "int n = atoi(std::getenv(\"X\"));\n";
  lint::FileAnalysis fa = Analyze("tests/x.cc", src);
  EXPECT_TRUE(HasRule(fa, "parsing.raw-parse"));
  EXPECT_TRUE(HasRule(fa, "parsing.getenv"));
}

TEST(LintRules, CatchAllNeedsRethrowOrReport) {
  std::string silent =
      "void f() { try { g(); } catch (...) { x = 0; } }\n";
  std::string rethrow =
      "void f() { try { g(); } catch (...) { throw; } }\n";
  std::string report =
      "void f() { try { g(); } catch (...) { obs::Count(); } }\n";
  EXPECT_TRUE(
      HasRule(Analyze("src/io/x.cc", silent), "silent-fallback.catch-all"));
  EXPECT_FALSE(
      HasRule(Analyze("src/io/x.cc", rethrow), "silent-fallback.catch-all"));
  EXPECT_FALSE(
      HasRule(Analyze("src/io/x.cc", report), "silent-fallback.catch-all"));
}

TEST(LintRules, EmptyDefaultReturnOnlyInLibraryAndTools) {
  std::string src =
      "int f(K k) { switch (k) { case K::kA: return 1; default: return 0; } }\n";
  EXPECT_TRUE(
      HasRule(Analyze("src/geo/x.cc", src), "silent-fallback.empty-default"));
  EXPECT_FALSE(
      HasRule(Analyze("tests/x.cc", src), "silent-fallback.empty-default"));
}

TEST(LintRules, PragmaOnceAllowsLeadingComments) {
  std::string good = "// banner\n/* doc */\n#pragma once\nint x;\n";
  std::string bad = "// banner\nint x;\n#pragma once\n";
  EXPECT_FALSE(HasRule(Analyze("src/io/x.h", good), "hygiene.pragma-once"));
  EXPECT_TRUE(HasRule(Analyze("src/io/x.h", bad), "hygiene.pragma-once"));
  // Source files have no pragma requirement.
  EXPECT_FALSE(HasRule(Analyze("src/io/x.cc", bad), "hygiene.pragma-once"));
}

TEST(LintRules, IoRuleExemptsCliToolsAndSnprintf) {
  std::string src = "void f() { printf(\"x\"); }\n";
  EXPECT_TRUE(HasRule(Analyze("src/stats/x.cc", src), "hygiene.io"));
  EXPECT_FALSE(HasRule(Analyze("src/cli/x.cc", src), "hygiene.io"));
  EXPECT_FALSE(HasRule(Analyze("tools/x.cc", src), "hygiene.io"));
  std::string fmt = "void f() { char b[8]; std::snprintf(b, 8, \"x\"); }\n";
  EXPECT_FALSE(HasRule(Analyze("src/stats/x.cc", fmt), "hygiene.io"));
}

TEST(LintRules, FindingsSortedByLine) {
  std::string src =
      "#include <cstdlib>\n"
      "int a = atoi(\"1\");\n"
      "int b = atoi(\"2\");\n";
  lint::FileAnalysis fa = Analyze("src/io/x.cc", src);
  ASSERT_EQ(fa.findings.size(), 2u);
  EXPECT_LT(fa.findings[0].line, fa.findings[1].line);
}

// --- Graph passes (phase 2) ------------------------------------------------

lint::ProjectFile MakeProjectFile(const std::string& pseudo,
                                  const std::string& src) {
  lint::FileAnalysis fa = Analyze(pseudo, src);
  return lint::ProjectFile{pseudo, pseudo, std::move(fa.facts),
                           std::move(fa.suppressions)};
}

const lint::Finding* FindProjectRule(const lint::ProjectAnalysis& pa,
                                     const std::string& rule) {
  for (const lint::Finding& f : pa.findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

TEST(LintGraph, ModuleOfPathSplitsIoBase) {
  EXPECT_EQ(lint::ModuleOfPath("src/geo/db.cc"), "geo");
  EXPECT_EQ(lint::ModuleOfPath("src/serve/server.h"), "serve");
  // The io.base leaves sit below obs; the rest of src/io is the data layer.
  EXPECT_EQ(lint::ModuleOfPath("src/io/result.h"), "io.base");
  EXPECT_EQ(lint::ModuleOfPath("src/io/crc32c.cc"), "io.base");
  EXPECT_EQ(lint::ModuleOfPath("src/io/store_io.cc"), "io");
  // Outside src/ there is no module (tools are unlayered).
  EXPECT_EQ(lint::ModuleOfPath("tools/lint/graph.cc"), "");
  EXPECT_EQ(lint::LayerOfModule("netbase"), 0);
  EXPECT_EQ(lint::LayerOfModule("serve"), 4);
  EXPECT_EQ(lint::LayerOfModule("no-such-module"), -1);
}

TEST(LintGraph, IllegalDepFiresOnlyUpward) {
  std::vector<lint::ProjectFile> up;
  up.push_back(MakeProjectFile("src/sim/world.cc",
                               "#include \"serve/server.h\"\nint x;\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(up);
  const lint::Finding* f = FindProjectRule(pa, "layering.illegal-dep");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/sim/world.cc");
  EXPECT_EQ(f->line, 1);
  ASSERT_FALSE(f->related.empty());

  // The reverse direction (services -> data) is legal.
  std::vector<lint::ProjectFile> down;
  down.push_back(MakeProjectFile("src/serve/server.cc",
                                 "#include \"sim/world.h\"\nint x;\n"));
  pa = lint::AnalyzeProject(down);
  EXPECT_EQ(FindProjectRule(pa, "layering.illegal-dep"), nullptr);
}

TEST(LintGraph, CycleReportedOnceWithFullChain) {
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile("src/geo/a.cc",
                                  "#include \"scan/b.h\"\nint a;\n"));
  files.push_back(MakeProjectFile("src/scan/b.h",
                                  "#pragma once\n#include \"geo/c.h\"\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  const lint::Finding* f = FindProjectRule(pa, "layering.cycle");
  ASSERT_NE(f, nullptr);
  // Anchored at the representative edge out of the smallest module (geo),
  // with one related location per cycle edge.
  EXPECT_EQ(f->path, "src/geo/a.cc");
  EXPECT_EQ(f->line, 1);
  EXPECT_NE(f->message.find("geo -> scan -> geo"), std::string::npos);
  ASSERT_EQ(f->related.size(), 2u);
  EXPECT_EQ(f->related[0].path, "src/geo/a.cc");
  EXPECT_EQ(f->related[1].path, "src/scan/b.h");
  // Exactly one finding per cycle, not one per participating edge.
  int cycle_findings = 0;
  for (const lint::Finding& g : pa.findings) {
    if (g.rule == "layering.cycle") ++cycle_findings;
  }
  EXPECT_EQ(cycle_findings, 1);
}

TEST(LintGraph, ForkUnsafeTransitiveReachability) {
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile(
      "src/ingest/session.cc",
      "#include \"measurement/helper.h\"\nvoid Ingest() {}\n"));
  files.push_back(MakeProjectFile(
      "src/measurement/helper.h",
      "#pragma once\n#include <mutex>\nstruct H { std::mutex mu; };\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  const lint::Finding* f = FindProjectRule(pa, "concurrency.fork-unsafe");
  ASSERT_NE(f, nullptr);
  // Anchored at the root's include line, where the dependency is chosen.
  EXPECT_EQ(f->path, "src/ingest/session.cc");
  EXPECT_EQ(f->line, 1);
  ASSERT_GE(f->related.size(), 2u);
  EXPECT_EQ(f->related.back().path, "src/measurement/helper.h");
  EXPECT_EQ(f->related.back().line, 3);

  // The same hazard outside ingest's include closure is fine.
  std::vector<lint::ProjectFile> apart;
  apart.push_back(
      MakeProjectFile("src/ingest/session.cc", "void Ingest() {}\n"));
  apart.push_back(MakeProjectFile(
      "src/serve/server.cc",
      "#include <mutex>\nstruct S { std::mutex mu; };\n"));
  pa = lint::AnalyzeProject(apart);
  EXPECT_EQ(FindProjectRule(pa, "concurrency.fork-unsafe"), nullptr);
}

TEST(LintGraph, ForkUnsafeDirectPrimitiveAndSuppression) {
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile(
      "src/ingest/shard.cc",
      "#include <thread>\nvoid F() { std::thread t; }\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  const lint::Finding* f = FindProjectRule(pa, "concurrency.fork-unsafe");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 2);  // anchored at the use, not the include

  // A justified fork-tag suppression on the anchor line silences it.
  std::vector<lint::ProjectFile> suppressed;
  suppressed.push_back(MakeProjectFile(
      "src/ingest/shard.cc",
      "#include <thread>\n"
      "// lint: fork(joined before the chaos gate ever forks)\n"
      "void F() { std::thread t; }\n"));
  pa = lint::AnalyzeProject(suppressed);
  EXPECT_EQ(FindProjectRule(pa, "concurrency.fork-unsafe"), nullptr);
  EXPECT_EQ(pa.suppressions_used, 1);
}

TEST(LintGraph, DiscardedResultHeaderDeclIsProjectWide) {
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile(
      "src/io/api.h",
      "#pragma once\nipscope::Result<int, int> FrobStore();\n"));
  files.push_back(MakeProjectFile("src/cli/use.cc",
                                  "void G() {\n  FrobStore();\n}\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  const lint::Finding* f = FindProjectRule(pa, "errors.discarded-result");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/cli/use.cc");
  EXPECT_EQ(f->line, 2);
  ASSERT_FALSE(f->related.empty());
  EXPECT_EQ(f->related[0].path, "src/io/api.h");

  // Binding the value is not a discard.
  std::vector<lint::ProjectFile> bound;
  bound.push_back(files[0]);
  bound.push_back(MakeProjectFile(
      "src/cli/use.cc", "void G() {\n  auto r = FrobStore();\n  (void)r;\n}\n"));
  pa = lint::AnalyzeProject(bound);
  EXPECT_EQ(FindProjectRule(pa, "errors.discarded-result"), nullptr);
}

TEST(LintGraph, DiscardedResultCcDeclIsTuLocal) {
  // A Result-returning helper declared in a .cc shadows only its own TU:
  // an unrelated same-named call in another file is not flagged ...
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile(
      "src/io/impl.cc", "ipscope::Result<int, int> LocalFrob();\n"));
  files.push_back(MakeProjectFile("src/cli/other.cc",
                                  "void G() {\n  LocalFrob();\n}\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  EXPECT_EQ(FindProjectRule(pa, "errors.discarded-result"), nullptr);

  // ... while a discard in the declaring file itself still is.
  std::vector<lint::ProjectFile> same;
  same.push_back(MakeProjectFile(
      "src/io/impl.cc",
      "ipscope::Result<int, int> LocalFrob();\n"
      "void G() {\n  LocalFrob();\n}\n"));
  pa = lint::AnalyzeProject(same);
  const lint::Finding* f = FindProjectRule(pa, "errors.discarded-result");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 3);
}

TEST(LintGraph, GuardedByHeaderAnnotationCoversCc) {
  std::string header =
      "#pragma once\n"
      "#include <mutex>\n"
      "class W {\n"
      " public:\n"
      "  void Bump();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int q_ = 0;  // guards: mu_\n"
      "};\n";
  std::vector<lint::ProjectFile> files;
  files.push_back(MakeProjectFile("src/serve/widget.h", header));
  files.push_back(MakeProjectFile("src/serve/widget.cc",
                                  "#include \"serve/widget.h\"\n"
                                  "void W::Bump() { q_ += 1; }\n"));
  lint::ProjectAnalysis pa = lint::AnalyzeProject(files);
  const lint::Finding* f = FindProjectRule(pa, "concurrency.guarded-by");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/serve/widget.cc");
  EXPECT_EQ(f->line, 2);
  ASSERT_FALSE(f->related.empty());
  EXPECT_EQ(f->related[0].path, "src/serve/widget.h");
  EXPECT_EQ(f->related[0].line, 8);

  // The same touch under a RAII lock on the named mutex is clean.
  std::vector<lint::ProjectFile> locked;
  locked.push_back(MakeProjectFile("src/serve/widget.h", header));
  locked.push_back(MakeProjectFile(
      "src/serve/widget.cc",
      "#include \"serve/widget.h\"\n"
      "void W::Bump() {\n"
      "  std::lock_guard<std::mutex> lock{mu_};\n"
      "  q_ += 1;\n"
      "}\n"));
  pa = lint::AnalyzeProject(locked);
  EXPECT_EQ(FindProjectRule(pa, "concurrency.guarded-by"), nullptr);
}

// --- Facts cache -----------------------------------------------------------

TEST(LintCache, RoundTripHitAndInvalidation) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "ipscope_lint_cache_test")
                        .string();
  std::filesystem::remove_all(dir);
  lint::FactsCache cache(dir);
  ASSERT_TRUE(cache.enabled());

  std::string src =
      "#include \"obs/registry.h\"\n"
      "ipscope::Result<int, int> Thing();\n"
      "int x;\n";
  lint::FileAnalysis fa = Analyze("src/geo/a.cc", src);
  std::uint32_t crc = lint::ContentCrc(src);

  lint::FileAnalysis out;
  EXPECT_FALSE(cache.Load("src/geo/a.cc", crc, out));  // cold cache
  cache.Store("src/geo/a.cc", crc, fa);
  ASSERT_TRUE(cache.Load("src/geo/a.cc", crc, out));
  // The cached facts are byte-identical to a fresh extraction, so the
  // phase-2 passes see the same project either way.
  EXPECT_TRUE(out.facts == fa.facts);
  EXPECT_EQ(out.findings.size(), fa.findings.size());
  EXPECT_EQ(out.suppressions.size(), fa.suppressions.size());

  // An edit (different content CRC) and a rename (different path) miss.
  lint::FileAnalysis miss;
  EXPECT_FALSE(cache.Load("src/geo/a.cc", crc ^ 1u, miss));
  EXPECT_FALSE(cache.Load("src/geo/renamed.cc", crc, miss));

  std::filesystem::remove_all(dir);
}

TEST(LintCache, EmptyDirDisablesCache) {
  lint::FactsCache cache("");
  EXPECT_FALSE(cache.enabled());
  lint::FileAnalysis fa = Analyze("src/geo/a.cc", "int x;\n");
  cache.Store("src/geo/a.cc", 7, fa);  // no-op
  lint::FileAnalysis out;
  EXPECT_FALSE(cache.Load("src/geo/a.cc", 7, out));
}

// --- SARIF -----------------------------------------------------------------

TEST(LintSarif, EmitsValidStructureWithEscaping) {
  std::vector<lint::Finding> findings;
  findings.push_back(lint::Finding{"parsing.raw-parse", "src/a \"b\".cc", 3, 7,
                                   "message with \"quotes\"\nand newline",
                                   {}});
  std::ostringstream os;
  lint::WriteSarif(findings, os);
  std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"parsing.raw-parse\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\\\"quotes\\\"\\nand newline"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  // Every catalogue rule is declared in the driver metadata.
  for (const lint::RuleMeta& r : lint::RuleCatalogue()) {
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + r.id + "\""),
              std::string::npos)
        << r.id;
  }
}

}  // namespace
