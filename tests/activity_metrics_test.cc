#include "activity/metrics.h"

#include <gtest/gtest.h>

namespace ipscope::activity {
namespace {

ActivityStore MakeStore() {
  ActivityStore store{4};
  // Block 1: 2 addresses, one active all days, one active 1 day.
  ActivityMatrix& a = store.GetOrCreate(1);
  for (int d = 0; d < 4; ++d) a.Set(d, 0);
  a.Set(2, 9);
  // Block 2: fully utilized.
  ActivityMatrix& b = store.GetOrCreate(2);
  for (int d = 0; d < 4; ++d) {
    for (int h = 0; h < 256; ++h) b.Set(d, h);
  }
  // Block 3: created but never set (inactive).
  store.GetOrCreate(3);
  return store;
}

TEST(Metrics, ComputeBlockMetricsSkipsInactive) {
  ActivityStore store = MakeStore();
  auto metrics = ComputeBlockMetrics(store);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].key, 1u);
  EXPECT_EQ(metrics[0].filling_degree, 2);
  EXPECT_DOUBLE_EQ(metrics[0].stu, 5.0 / (256.0 * 4.0));
  EXPECT_EQ(metrics[1].key, 2u);
  EXPECT_EQ(metrics[1].filling_degree, 256);
  EXPECT_DOUBLE_EQ(metrics[1].stu, 1.0);
}

TEST(Metrics, WindowedMetrics) {
  ActivityStore store = MakeStore();
  auto metrics = ComputeBlockMetrics(store, 0, 1);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].filling_degree, 1);  // host 9 not active on day 0
}

TEST(Metrics, FillingDegreesExtraction) {
  ActivityStore store = MakeStore();
  auto metrics = ComputeBlockMetrics(store);
  auto fds = FillingDegrees(metrics);
  EXPECT_EQ(fds, (std::vector<double>{2, 256}));
}

TEST(Metrics, StuValuesWithFdFilter) {
  ActivityStore store = MakeStore();
  auto metrics = ComputeBlockMetrics(store);
  EXPECT_EQ(StuValues(metrics).size(), 2u);
  auto high = StuValues(metrics, 251);
  ASSERT_EQ(high.size(), 1u);
  EXPECT_DOUBLE_EQ(high[0], 1.0);
}

}  // namespace
}  // namespace ipscope::activity
