// Property tests for the slot-major generation kernels and the arena-backed
// store. GenerateBlock is an aggressive loop transposition of GenerateStep
// (epoch caching, hoisted owner tables, branchless word building), so its
// contract is exact bit-identity — every test here compares whole matrices
// against the naive per-step reference, never statistics.
#include "sim/policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "activity/matrix.h"
#include "activity/store.h"
#include "cdn/observatory.h"
#include "rng/rng.h"
#include "sim/world.h"

namespace ipscope::sim {
namespace {

BlockPlan MakePlan(PolicyKind kind) {
  BlockPlan plan;
  plan.block = net::Prefix{net::IPv4Addr{10, 1, 2, 0}, 24};
  plan.asn = 1234;
  plan.country = 0;
  plan.block_seed = 0xDEADBEEF;
  for (std::size_t i = 0; i < plan.host_perm.size(); ++i) {
    plan.host_perm[i] = static_cast<std::uint8_t>(i);
  }
  PolicyParams& p = plan.base;
  p.kind = kind;
  p.pool_size = 256;
  p.subscribers = 256;
  p.daily_p = 0.5f;
  p.weekend_factor = 1.0f;
  p.lease_days = 30;
  p.occupancy = 0.9f;
  p.hits_mu = 3.0f;
  p.hits_sigma = 1.0f;
  return plan;
}

StepSpec DailySpec() {
  StepSpec spec;
  spec.start_day = 228;
  spec.step_days = 1;
  spec.steps = 112;
  spec.world_seed = 42;
  spec.gateway_growth = 0.15;
  return spec;
}

StepSpec WeeklySpec() {
  StepSpec spec = DailySpec();
  spec.start_day = 0;
  spec.step_days = 7;
  spec.steps = 52;
  return spec;
}

// The contract under test: GenerateBlock(plan, spec, rows) must equal the
// per-step reference row for row.
void ExpectBlockMatchesSteps(const BlockPlan& plan, const StepSpec& spec,
                             const std::string& label) {
  std::vector<activity::DayBits> rows(
      static_cast<std::size_t>(spec.steps));
  GenerateBlock(plan, spec, rows.data());
  activity::DayBits ref;
  for (int s = 0; s < spec.steps; ++s) {
    GenerateStep(plan, spec, s, ref, nullptr);
    ASSERT_EQ(rows[static_cast<std::size_t>(s)], ref)
        << label << " step " << s;
  }
}

TEST(SubstreamTail, MatchesSubstreamForEveryLastTag) {
  // The algebraic identity the slot-major kernels lean on: hoisting the
  // tag-prefix mix out of the inner loop must not change a single draw.
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{42},
                             std::uint64_t{0xDEADBEEFCAFEBABEULL}}) {
    for (std::uint64_t tag : {std::uint64_t{0x7e01}, std::uint64_t{0x7e0b},
                              std::uint64_t{1}}) {
      rng::SubstreamTail one{seed, tag};
      rng::SubstreamTail two{seed, tag, std::uint64_t{17}};
      for (std::uint64_t i = 0; i < 300; ++i) {
        ASSERT_EQ(one.At(i), rng::Substream(seed, tag, i));
        ASSERT_EQ(two.At(i), rng::Substream(seed, tag, std::uint64_t{17}, i));
      }
    }
  }
}

TEST(DayBits, SetBitRangeMatchesPerBitLoop) {
  for (int lo : {0, 1, 31, 32, 63, 64, 100, 255, 256}) {
    for (int hi : {0, 1, 32, 64, 65, 127, 128, 200, 256}) {
      activity::DayBits fast{};
      activity::SetBitRange(fast, lo, hi);
      activity::DayBits slow{};
      for (int h = lo; h < hi; ++h) activity::SetBit(slow, h);
      ASSERT_EQ(fast, slow) << "[" << lo << ", " << hi << ")";
    }
  }
}

TEST(GenerateBlock, MatchesPerStepAcrossKindsGranularitiesAndSeeds) {
  for (PolicyKind kind :
       {PolicyKind::kUnused, PolicyKind::kStatic, PolicyKind::kDynamicShort,
        PolicyKind::kDynamicLong, PolicyKind::kCgnGateway,
        PolicyKind::kCrawlerBots, PolicyKind::kServerFarm,
        PolicyKind::kRouterInfra, PolicyKind::kMiddlebox}) {
    for (const StepSpec& spec : {DailySpec(), WeeklySpec()}) {
      for (std::uint64_t seed :
           {std::uint64_t{0xDEADBEEF}, std::uint64_t{1},
            std::uint64_t{0x9e3779b97f4a7c15ULL}}) {
        BlockPlan plan = MakePlan(kind);
        plan.block_seed = seed;
        std::string label = std::string{PolicyKindName(kind)} + "/step" +
                            std::to_string(spec.step_days) + "/seed" +
                            std::to_string(seed);
        ExpectBlockMatchesSteps(plan, spec, label);
      }
    }
  }
}

TEST(GenerateBlock, MatchesPerStepForWeekendAndPoolVariants) {
  // Weekend gating only applies at daily granularity and only when the
  // factor is < 1; sweep both sides of that gate, plus partial pools and
  // both kDynamicShort flavors (rotating band vs dense fill).
  for (float weekend : {1.0f, 0.5f, 0.2f}) {
    for (PolicyKind kind : {PolicyKind::kStatic, PolicyKind::kDynamicShort,
                            PolicyKind::kDynamicLong}) {
      for (bool rotating : {false, true}) {
        if (rotating && kind != PolicyKind::kDynamicShort) continue;
        BlockPlan plan = MakePlan(kind);
        plan.base.weekend_factor = weekend;
        plan.base.rotating = rotating;
        plan.base.pool_size = 100;
        plan.base.subscribers = 60;
        std::string label = std::string{PolicyKindName(kind)} + "/wf" +
                            std::to_string(weekend) +
                            (rotating ? "/rotating" : "");
        ExpectBlockMatchesSteps(plan, DailySpec(), label);
        ExpectBlockMatchesSteps(plan, WeeklySpec(), label + "/weekly");
      }
    }
  }
}

TEST(GenerateBlock, MatchesPerStepAcrossEventShapes) {
  PolicyParams dense;
  dense.kind = PolicyKind::kDynamicShort;
  dense.pool_size = 256;
  dense.subscribers = 300;
  dense.daily_p = 0.8f;
  dense.weekend_factor = 0.6f;
  dense.hits_mu = 3.0f;
  dense.hits_sigma = 1.0f;
  PolicyParams off;
  off.kind = PolicyKind::kUnused;

  struct Case {
    const char* name;
    BlockPlan plan;
  };
  std::vector<Case> cases;
  {
    BlockPlan p = MakePlan(PolicyKind::kStatic);
    p.events[0] = BlockEvent{280, dense};
    cases.push_back({"full_reconfig", p});
  }
  {
    BlockPlan p = MakePlan(PolicyKind::kStatic);
    p.events[0] = BlockEvent{280, dense, /*host_first=*/128,
                             /*host_last=*/255};
    cases.push_back({"partial_reconfig", p});
  }
  {
    BlockPlan p = MakePlan(PolicyKind::kDynamicLong);
    p.events[0] = BlockEvent{250, dense, 0, 63};
    p.events[1] = BlockEvent{300, off};
    cases.push_back({"two_events", p});
  }
  {
    // Event boundaries that do not align with step midpoints (weekly steps
    // quantize mid-days to step*7+3) exercise the interval scan.
    BlockPlan p = MakePlan(PolicyKind::kStatic);
    p.events[0] = BlockEvent{33, dense};
    p.events[1] = BlockEvent{34, off, 0, 127};
    cases.push_back({"adjacent_days", p});
  }
  {
    BlockPlan p = MakePlan(PolicyKind::kDynamicShort);
    p.active_from = 280;
    p.active_until = 300;
    cases.push_back({"activation_window", p});
  }
  {
    BlockPlan p = MakePlan(PolicyKind::kCgnGateway);
    p.active_from = 10;  // before the daily window: fully active
    p.events[0] = BlockEvent{330, off};
    cases.push_back({"pre_window_activation", p});
  }
  for (const Case& c : cases) {
    ExpectBlockMatchesSteps(c.plan, DailySpec(), std::string{c.name});
    ExpectBlockMatchesSteps(c.plan, WeeklySpec(),
                            std::string{c.name} + "/weekly");
  }
}

TEST(ArenaStore, BuildStoreMatchesNaivePerStepConstruction) {
  // The arena handoff (observatory BuildStore -> ActivityStore::AdoptArena)
  // must produce exactly the store the naive one-matrix-per-block
  // construction yields: same keys in the same order, same rows byte for
  // byte — and the matrices must survive a store move (the arena vector's
  // heap buffer is stable, view rows keep pointing into it).
  sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 200;
    return config;
  }()};
  cdn::Observatory daily = cdn::Observatory::Daily(world);
  activity::ActivityStore built = daily.BuildStore();

  activity::ActivityStore naive{daily.steps()};
  for (const BlockPlan& plan : world.blocks()) {
    activity::ActivityMatrix m{daily.steps()};
    bool any = false;
    for (int s = 0; s < daily.steps(); ++s) {
      activity::DayBits bits;
      GenerateStep(plan, daily.spec(), s, bits, nullptr);
      m.Row(s) = bits;
      any = any || (bits[0] | bits[1] | bits[2] | bits[3]) != 0;
    }
    if (any) naive.GetOrCreate(net::BlockKeyOf(plan.block)) = std::move(m);
  }

  activity::ActivityStore moved = std::move(built);
  ASSERT_EQ(moved.BlockCount(), naive.BlockCount());
  for (std::size_t i = 0; i < moved.BlockCount(); ++i) {
    ASSERT_EQ(moved.KeyAt(i), naive.KeyAt(i)) << "block " << i;
  }
  moved.ForEachShard(
      0, moved.BlockCount(),
      [&](net::BlockKey key, const activity::ActivityMatrix& m) {
        const activity::ActivityMatrix* ref = naive.Find(key);
        ASSERT_NE(ref, nullptr);
        for (int d = 0; d < moved.days(); ++d) {
          ASSERT_EQ(m.Row(d), ref->Row(d)) << "day " << d;
        }
      });
}

TEST(ArenaStore, CopiedViewMatrixOwnsItsRows) {
  // Copying a view matrix out of an arena store must deep-copy: the copy
  // stays valid after the store (and its arena) dies.
  sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 50;
    return config;
  }()};
  cdn::Observatory daily = cdn::Observatory::Daily(world);
  activity::ActivityMatrix copy{1};
  activity::DayBits first_row{};
  {
    activity::ActivityStore store = daily.BuildStore();
    ASSERT_GT(store.BlockCount(), 0u);
    const activity::ActivityMatrix* m = store.Find(store.KeyAt(0));
    ASSERT_NE(m, nullptr);
    copy = *m;
    first_row = m->Row(0);
  }
  ASSERT_EQ(copy.Row(0), first_row);
}

}  // namespace
}  // namespace ipscope::sim
