// Corpus tests for the benchmark-regression gate: bench-JSON v2 parsing,
// the comparability rules (hardware/toolchain mismatches advise instead of
// gate), and the regression verdicts benchdiff exits on.
#include "obs/benchdiff.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cli/commands.h"

namespace ipscope::obs::benchdiff {
namespace {

// A minimal v2 report: one 4-thread run with two stages. `mutate` hooks let
// each test vary one dimension without repeating the whole document.
struct ReportSpec {
  double store_build = 2.0;
  double churn = 0.5;
  bool include_churn = true;
  std::string cpu_model = "TestCPU 9000";
  int hardware_threads = 4;
  std::string compiler = "gcc 12.2.0";
  std::string flags = "-O2";
  int schema_version = 2;
  int threads = 4;
  long client_blocks = 4000;  // 0 omits the field (pre-v2 reports)
  bool speedup = false;        // emit a "speedup" block
  bool baseline_only = false;  // emit "baseline_only": true
};

std::string MakeReport(const ReportSpec& spec) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << spec.schema_version << ",\n"
     << "  \"bench\": \"pipeline\",\n";
  if (spec.client_blocks != 0) {
    os << "  \"client_blocks\": " << spec.client_blocks << ",\n";
  }
  os << ""
     << "  \"hardware\": {\n"
     << "    \"cpu_model\": \"" << spec.cpu_model << "\",\n"
     << "    \"hardware_threads\": " << spec.hardware_threads << ",\n"
     << "    \"compiler\": \"" << spec.compiler << "\",\n"
     << "    \"flags\": \"" << spec.flags << "\",\n"
     << "    \"git_sha\": \"abc123\"\n"
     << "  },\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"threads\": " << spec.threads << ",\n"
     << "      \"total_seconds\": " << spec.store_build + spec.churn << ",\n"
     << "      \"stages\": {\n"
     << "        \"store_build\": {\"seconds\": " << spec.store_build
     << ", \"mb\": 14.4}";
  if (spec.include_churn) {
    os << ",\n        \"churn\": " << spec.churn;
  }
  os << "\n      }\n"
     << "    }\n"
     << "  ]";
  if (spec.speedup) {
    os << ",\n  \"speedup\": {\"store_build\": 1.5, \"total\": 1.4}";
  }
  if (spec.baseline_only) {
    os << ",\n  \"baseline_only\": true";
  }
  os << "\n}\n";
  return os.str();
}

TEST(BenchdiffParse, ReadsV2ReportWithObjectAndBareNumberStages) {
  Report r = ParseReport(MakeReport(ReportSpec{}));
  EXPECT_EQ(r.schema_version, 2);
  EXPECT_EQ(r.bench_name, "pipeline");
  EXPECT_EQ(r.hardware.cpu_model, "TestCPU 9000");
  EXPECT_EQ(r.hardware.hardware_threads, 4);
  EXPECT_EQ(r.hardware.compiler, "gcc 12.2.0");
  EXPECT_EQ(r.hardware.git_sha, "abc123");
  ASSERT_EQ(r.runs.size(), 1u);
  ASSERT_EQ(r.runs[0].stages.size(), 2u);
  // Stage values parse both as {"seconds": X, ...} and as a bare number.
  EXPECT_EQ(r.runs[0].stages[0].name, "store_build");
  EXPECT_DOUBLE_EQ(r.runs[0].stages[0].seconds, 2.0);
  EXPECT_EQ(r.runs[0].stages[1].name, "churn");
  EXPECT_DOUBLE_EQ(r.runs[0].stages[1].seconds, 0.5);
}

TEST(BenchdiffParse, RejectsWrongSchemaVersion) {
  ReportSpec spec;
  spec.schema_version = 1;
  try {
    ParseReport(MakeReport(spec));
    FAIL() << "expected schema error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema_version"), std::string::npos)
        << e.what();
  }
}

TEST(BenchdiffParse, EmptyRunsArrayIsAClearSchemaError) {
  // Regression guard: an empty "runs" array must fail loudly with a
  // message naming the field (and exit 2 at the CLI, covered below) —
  // never be treated as a comparable zero-stage report.
  try {
    ParseReport(R"({"schema_version": 2,
                    "hardware": {"cpu_model": "x", "hardware_threads": 1,
                                 "compiler": "g", "flags": "-O2",
                                 "git_sha": "s"},
                    "runs": []})");
    FAIL() << "expected a schema error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("\"runs\" is empty"),
              std::string::npos)
        << e.what();
  }
}

TEST(BenchdiffParse, RejectsMissingRequiredFields) {
  EXPECT_THROW(ParseReport("{\"schema_version\": 2}"), std::runtime_error);
  EXPECT_THROW(
      ParseReport(R"({"schema_version": 2,
                      "hardware": {"cpu_model": "x", "hardware_threads": 1},
                      "runs": []})"),
      std::runtime_error);  // empty runs
  EXPECT_THROW(
      ParseReport(R"({"schema_version": 2,
                      "hardware": {"hardware_threads": 1},
                      "runs": [{"threads": 1, "total_seconds": 1,
                                "stages": {}}]})"),
      std::runtime_error);  // hardware.cpu_model missing
  EXPECT_THROW(ParseReport("not json at all"), std::runtime_error);
}

TEST(BenchdiffParse, MissingFileFailsLoudly) {
  EXPECT_THROW(LoadReportFile("/nonexistent/ipscope-bench.json"),
               std::runtime_error);
}

TEST(BenchdiffParse, SpeedupAndBaselineOnlyMarkersParse) {
  ReportSpec with_speedup;
  with_speedup.speedup = true;
  Report a = ParseReport(MakeReport(with_speedup));
  EXPECT_TRUE(a.has_speedup);
  EXPECT_FALSE(a.baseline_only);

  ReportSpec only;
  only.baseline_only = true;
  Report b = ParseReport(MakeReport(only));
  EXPECT_FALSE(b.has_speedup);
  EXPECT_TRUE(b.baseline_only);
}

TEST(BenchdiffDiff, MissingSpeedupBlockIsAdvisoryNotAGate) {
  // Baseline measured a real thread sweep; current ran on a 1-hardware-
  // thread host and could not (baseline_only). Scaling was not measured —
  // that must not read as a regression.
  ReportSpec base;
  base.speedup = true;
  ReportSpec cur;
  cur.baseline_only = true;
  DiffResult d = Diff(ParseReport(MakeReport(base)),
                      ParseReport(MakeReport(cur)));
  EXPECT_FALSE(d.regressed);
  EXPECT_TRUE(d.comparable);
  bool noted = false;
  for (const auto& note : d.notes) {
    if (note.find("baseline_only") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "expected an advisory note about the missing "
                        "speedup block";
}

TEST(BenchdiffDiff, UnchangedWithinToleranceIsClean) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 2.05;  // +2.5%, under the 10% default tolerance
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_FALSE(result.regressed);
  EXPECT_TRUE(result.comparable);
  for (const StageDiff& d : result.stages) {
    EXPECT_EQ(d.status, StageStatus::kUnchanged) << d.stage;
  }
}

TEST(BenchdiffDiff, ImprovedStageIsReportedNotGated) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 1.0;  // -50%
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_FALSE(result.regressed);
  ASSERT_GE(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].stage, "store_build");
  EXPECT_EQ(result.stages[0].status, StageStatus::kImproved);
}

TEST(BenchdiffDiff, RegressionBeyondToleranceGates) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 2.5;  // +25%
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_TRUE(result.regressed);
  EXPECT_EQ(result.stages[0].status, StageStatus::kRegressed);
  EXPECT_NEAR(result.stages[0].delta_pct, 25.0, 1e-9);

  // A looser tolerance accepts the same delta.
  DiffOptions loose;
  loose.tolerance_pct = 30.0;
  EXPECT_FALSE(Diff(base, ParseReport(MakeReport(cur)), loose).regressed);
}

TEST(BenchdiffDiff, TinyAbsoluteDeltasNeverGate) {
  // +100% on a microsecond-scale stage is measurement noise, not a
  // regression: the absolute floor (min_delta_seconds) must absorb it.
  ReportSpec base_spec;
  base_spec.churn = 0.0001;
  ReportSpec cur_spec;
  cur_spec.churn = 0.0002;
  DiffResult result = Diff(ParseReport(MakeReport(base_spec)),
                           ParseReport(MakeReport(cur_spec)), DiffOptions{});
  EXPECT_FALSE(result.regressed);
}

TEST(BenchdiffDiff, MissingStageGatesEvenAcrossHardware) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.include_churn = false;
  cur.cpu_model = "OtherCPU";  // not comparable — but shape changes still gate
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_TRUE(result.regressed);
  EXPECT_FALSE(result.comparable);
  bool saw_missing = false;
  for (const StageDiff& d : result.stages) {
    if (d.stage == "churn") {
      EXPECT_EQ(d.status, StageStatus::kMissing);
      saw_missing = true;
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST(BenchdiffDiff, MissingRunGates) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.threads = 8;  // baseline's threads=4 run has no counterpart
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_TRUE(result.regressed);
  ASSERT_FALSE(result.notes.empty());
}

TEST(BenchdiffDiff, HardwareMismatchIsAdvisoryOnly) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 9.0;  // a huge "regression" — on different hardware
  cur.cpu_model = "OtherCPU 100";
  cur.hardware_threads = 16;
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_FALSE(result.comparable);
  EXPECT_FALSE(result.regressed) << "cross-hardware timing must not gate";
  EXPECT_EQ(result.stages[0].status, StageStatus::kRegressed)
      << "the delta itself is still reported";
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes[0].find("advisory"), std::string::npos);
}

TEST(BenchdiffDiff, CompilerOrFlagsMismatchIsAdvisoryOnly) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 9.0;
  cur.flags = "-O0 -g";
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_FALSE(result.comparable);
  EXPECT_FALSE(result.regressed);
}

TEST(BenchdiffDiff, WorldScaleMismatchIsAdvisoryOnly) {
  // Timings scale with the input: a 600-block run against a 4000-block
  // baseline must not gate (nor silently "improve").
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 0.4;  // "faster" only because the world is smaller
  cur.client_blocks = 600;
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_FALSE(result.comparable);
  EXPECT_FALSE(result.regressed);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes[0].find("client_blocks"), std::string::npos)
      << result.notes[0];
}

TEST(BenchdiffDiff, MissingScaleFieldStaysComparable) {
  // Reports that predate the client_blocks field (or omit it) keep gating
  // rather than turning every diff advisory.
  ReportSpec no_scale;
  no_scale.client_blocks = 0;
  Report base = ParseReport(MakeReport(no_scale));
  EXPECT_EQ(base.client_blocks, 0);
  ReportSpec cur;
  cur.store_build = 2.5;  // +25%
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  EXPECT_TRUE(result.comparable);
  EXPECT_TRUE(result.regressed);
}

TEST(BenchdiffDiff, NewStageIsInformational) {
  ReportSpec base_spec;
  base_spec.include_churn = false;
  Report base = ParseReport(MakeReport(base_spec));
  DiffResult result =
      Diff(base, ParseReport(MakeReport(ReportSpec{})), DiffOptions{});
  EXPECT_FALSE(result.regressed);
  bool saw_new = false;
  for (const StageDiff& d : result.stages) {
    if (d.stage == "churn") {
      EXPECT_EQ(d.status, StageStatus::kNew);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_new);
}

TEST(BenchdiffWrite, RendersVerdictAndTable) {
  Report base = ParseReport(MakeReport(ReportSpec{}));
  ReportSpec cur;
  cur.store_build = 2.5;
  DiffResult result = Diff(base, ParseReport(MakeReport(cur)), DiffOptions{});
  std::ostringstream os;
  WriteDiff(os, result, DiffOptions{});
  std::string text = os.str();
  EXPECT_NE(text.find("store_build"), std::string::npos) << text;
  EXPECT_NE(text.find("REGRESSED"), std::string::npos) << text;
  EXPECT_NE(text.find("REGRESSION detected"), std::string::npos) << text;

  std::ostringstream clean_os;
  WriteDiff(clean_os, Diff(base, base, DiffOptions{}), DiffOptions{});
  EXPECT_NE(clean_os.str().find("no regression beyond tolerance"),
            std::string::npos)
      << clean_os.str();
}

TEST(BenchdiffCli, EmptyRunsArrayExitsTwoWithClearMessage) {
  // End-to-end regression guard for `ipscope_cli benchdiff` fed a report
  // whose "runs" array is empty (a crashed bench run used to be able to
  // produce one before the writers went atomic): exit code 2, message
  // naming the offending field and file.
  std::string good_path = ::testing::TempDir() + "benchdiff_good_" +
                          std::to_string(::getpid()) + ".json";
  std::string empty_path = ::testing::TempDir() + "benchdiff_empty_" +
                           std::to_string(::getpid()) + ".json";
  {
    std::ofstream good{good_path};
    good << MakeReport(ReportSpec{});
    std::ofstream empty{empty_path};
    empty << R"({"schema_version": 2,
                 "hardware": {"cpu_model": "x", "hardware_threads": 1,
                              "compiler": "g", "flags": "-O2",
                              "git_sha": "s"},
                 "runs": []})";
  }
  std::ostringstream out, err;
  int rc = cli::Main({"benchdiff", good_path, empty_path}, out, err);
  EXPECT_EQ(rc, 2) << out.str() << err.str();
  EXPECT_NE(err.str().find("\"runs\" is empty"), std::string::npos)
      << err.str();
  EXPECT_NE(err.str().find(empty_path), std::string::npos) << err.str();
  std::remove(good_path.c_str());
  std::remove(empty_path.c_str());
}

}  // namespace
}  // namespace ipscope::obs::benchdiff
