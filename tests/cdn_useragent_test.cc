#include "cdn/useragent.h"

#include <gtest/gtest.h>

namespace ipscope::cdn {
namespace {

sim::BlockPlan MakePlan(sim::PolicyKind kind, std::uint16_t pool,
                        std::uint16_t subscribers) {
  sim::BlockPlan plan;
  plan.block = net::Prefix{net::IPv4Addr{10, 0, 0, 0}, 24};
  plan.block_seed = 0xABCD;
  plan.base.kind = kind;
  plan.base.pool_size = pool;
  plan.base.subscribers = subscribers;
  plan.base.occupancy = 1.0f;
  return plan;
}

TEST(UserAgent, PoolSizeByPolicy) {
  auto residential = MakePlan(sim::PolicyKind::kDynamicShort, 256, 256);
  auto gateway = MakePlan(sim::PolicyKind::kCgnGateway, 256, 0xFFFF);
  auto bots = MakePlan(sim::PolicyKind::kCrawlerBots, 8, 0);
  auto router = MakePlan(sim::PolicyKind::kRouterInfra, 64, 0);

  std::uint64_t res_pool = UserAgentSampler::UaPoolSize(residential);
  std::uint64_t gw_pool = UserAgentSampler::UaPoolSize(gateway);
  std::uint64_t bot_pool = UserAgentSampler::UaPoolSize(bots);

  EXPECT_NEAR(static_cast<double>(res_pool), 256 * 3.5, 1.0);
  EXPECT_GT(gw_pool, res_pool * 100);  // gateways aggregate thousands
  EXPECT_LE(bot_pool, 3u);
  EXPECT_GE(bot_pool, 1u);
  EXPECT_EQ(UserAgentSampler::UaPoolSize(router), 0u);
}

TEST(UserAgent, NoHitsNoSamples) {
  UserAgentSampler sampler;
  auto plan = MakePlan(sim::PolicyKind::kDynamicShort, 256, 256);
  auto s = sampler.Sample(plan, 0);
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.unique_uas, 0u);
}

TEST(UserAgent, SamplingRateRoughlyHonored) {
  UserAgentSampler sampler{1.0 / 4096.0};
  auto plan = MakePlan(sim::PolicyKind::kDynamicShort, 256, 256);
  auto s = sampler.Sample(plan, 4096 * 1000);
  EXPECT_NEAR(static_cast<double>(s.samples), 1000.0, 150.0);
}

TEST(UserAgent, Deterministic) {
  UserAgentSampler sampler;
  auto plan = MakePlan(sim::PolicyKind::kCgnGateway, 256, 0xFFFF);
  auto a = sampler.Sample(plan, 1000000);
  auto b = sampler.Sample(plan, 1000000);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.unique_uas, b.unique_uas);
}

TEST(UserAgent, BotsShowLowDiversity) {
  UserAgentSampler sampler;
  auto bots = MakePlan(sim::PolicyKind::kCrawlerBots, 8, 0);
  auto s = sampler.Sample(bots, 50'000'000);
  EXPECT_GT(s.samples, 1000u);
  EXPECT_LE(s.unique_uas, 3u);  // many samples, almost one string
}

TEST(UserAgent, GatewaysShowHighDiversity) {
  UserAgentSampler sampler;
  auto gw = MakePlan(sim::PolicyKind::kCgnGateway, 256, 0xFFFF);
  auto s = sampler.Sample(gw, 50'000'000);
  EXPECT_GT(s.samples, 1000u);
  // With a huge UA pool, nearly every sample is a distinct string.
  EXPECT_GT(static_cast<double>(s.unique_uas),
            0.5 * static_cast<double>(s.samples));
}

TEST(UserAgent, UniqueNeverExceedsSamplesOrPool) {
  UserAgentSampler sampler;
  for (std::uint64_t hits : {10000ull, 1000000ull, 100000000ull}) {
    auto bots = MakePlan(sim::PolicyKind::kCrawlerBots, 8, 0);
    auto s = sampler.Sample(bots, hits);
    EXPECT_LE(s.unique_uas, s.samples);
    EXPECT_LE(s.unique_uas, UserAgentSampler::UaPoolSize(bots));
  }
}

TEST(UserAgent, DiversitySaturatesWithPool) {
  // More samples from a small static population saturate at the pool size.
  UserAgentSampler sampler{1.0};  // sample every request
  auto plan = MakePlan(sim::PolicyKind::kStatic, 16, 16);
  auto s = sampler.Sample(plan, 100000);
  EXPECT_EQ(s.samples, 100000u);
  EXPECT_NEAR(static_cast<double>(s.unique_uas), 16 * 3.5, 8.0);
}

}  // namespace
}  // namespace ipscope::cdn
