// End-to-end integration tests: run every paper experiment on one shared
// medium-sized world and assert the *shape* invariants the paper reports.
// These are the same checks a reader would perform against the bench
// harness output.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/demographics.h"
#include "analysis/fig1_growth.h"
#include "analysis/fig10_useragents.h"
#include "analysis/fig3_geography.h"
#include "analysis/fig4_churn.h"
#include "analysis/fig5_dissect.h"
#include "analysis/fig6_patterns.h"
#include "analysis/fig8_blocks.h"
#include "analysis/fig9_traffic.h"
#include "analysis/table1_datasets.h"
#include "analysis/table2_longterm.h"
#include "analysis/visibility.h"
#include "bgp/table.h"
#include "cdn/observatory.h"
#include "sim/world.h"

namespace ipscope::analysis {
namespace {

class AnalysisIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.target_client_blocks = 1500;
    world_ = new sim::World{config};
    feed_ = new bgp::RoutingFeed{*world_};
    daily_obs_ = new cdn::Observatory{cdn::Observatory::Daily(*world_)};
    daily_ = new activity::ActivityStore{daily_obs_->BuildStore()};
    weekly_ = new activity::ActivityStore{
        cdn::Observatory::Weekly(*world_).BuildStore()};
  }
  static void TearDownTestSuite() {
    delete weekly_;
    delete daily_;
    delete daily_obs_;
    delete feed_;
    delete world_;
  }

  static sim::World* world_;
  static bgp::RoutingFeed* feed_;
  static cdn::Observatory* daily_obs_;
  static activity::ActivityStore* daily_;
  static activity::ActivityStore* weekly_;
};

sim::World* AnalysisIntegration::world_ = nullptr;
bgp::RoutingFeed* AnalysisIntegration::feed_ = nullptr;
cdn::Observatory* AnalysisIntegration::daily_obs_ = nullptr;
activity::ActivityStore* AnalysisIntegration::daily_ = nullptr;
activity::ActivityStore* AnalysisIntegration::weekly_ = nullptr;

TEST_F(AnalysisIntegration, Fig1GrowthStagnates) {
  auto result = RunFig1(world_->config().seed);
  EXPECT_GT(result.growth.pre2014_fit.r_squared, 0.98);
  EXPECT_GT(result.stagnation_gap, 0.05);
  std::ostringstream os;
  PrintFig1(result, os);
  EXPECT_NE(os.str().find("Fig 1"), std::string::npos);
}

TEST_F(AnalysisIntegration, Table1ChurnRatios) {
  auto result = RunTable1(*world_, *feed_);
  // Totals exceed averages (churn), ratio in the paper's ballpark (~1.5).
  double daily_ratio =
      static_cast<double>(result.daily.total_ips) / result.daily.avg_ips;
  double weekly_ratio =
      static_cast<double>(result.weekly.total_ips) / result.weekly.avg_ips;
  EXPECT_GT(daily_ratio, 1.15);
  EXPECT_LT(daily_ratio, 2.2);
  EXPECT_GT(weekly_ratio, 1.15);
  EXPECT_LT(weekly_ratio, 2.2);
  // More ASes/blocks in total than per snapshot.
  EXPECT_GE(static_cast<double>(result.daily.total_blocks),
            result.daily.avg_blocks);
  EXPECT_GT(result.weekly.total_ases, 0u);
}

TEST_F(AnalysisIntegration, Fig2VisibilityShape) {
  auto result = RunVisibility(*world_, *daily_, *feed_);
  // Paper: >40% of CDN-active addresses invisible to ICMP. Allow slack.
  EXPECT_GT(result.cdn_missed_by_icmp, 0.30);
  EXPECT_LT(result.cdn_missed_by_icmp, 0.70);
  // ICMP-only is a small minority at IP level (paper ~8%).
  EXPECT_LT(result.ips.IcmpOnlyFraction(), 0.25);
  // The gap narrows at coarser granularities.
  EXPECT_LT(result.blocks.CdnOnlyFraction(), result.ips.CdnOnlyFraction());
  EXPECT_LT(result.ases.CdnOnlyFraction(), result.blocks.CdnOnlyFraction());
  // A good chunk of ICMP-only addresses classify as infra (paper ~half).
  const auto& c = result.icmp_only_class;
  std::uint64_t total = c.server + c.server_router + c.router + c.unknown;
  ASSERT_GT(total, 0u);
  double infra_frac =
      static_cast<double>(c.server + c.server_router + c.router) /
      static_cast<double>(total);
  EXPECT_GT(infra_frac, 0.3);
  EXPECT_LT(infra_frac, 0.95);  // some "unknown" must remain
}

TEST_F(AnalysisIntegration, Fig3GeographyShape) {
  auto result = RunFig3(*world_, *daily_);
  // Every RIR gains visibility from the CDN.
  for (const auto& split : result.per_rir) {
    EXPECT_GT(split.cdn_only, 0u);
  }
  // Countries sorted by total visible; US or CN must lead.
  ASSERT_GE(result.countries.size(), 5u);
  EXPECT_TRUE(result.countries[0].code == "US" ||
              result.countries[0].code == "CN");
  // ICMP response rate ordering: CN clearly above JP (paper: 80% vs 25%).
  double cn = -1, jp = -1;
  for (const auto& cv : result.countries) {
    if (cv.code == "CN") cn = cv.icmp_response_rate;
    if (cv.code == "JP") jp = cv.icmp_response_rate;
  }
  ASSERT_GE(cn, 0);
  ASSERT_GE(jp, 0);
  EXPECT_GT(cn, jp + 0.2);
}

TEST_F(AnalysisIntegration, Fig4ChurnShape) {
  auto result = RunFig4(*daily_, *weekly_);
  // Daily churn well above the long-window plateau; plateau nonzero.
  const auto& daily = result.windows[0];
  const auto& weekly7 = result.windows[3];   // 7d
  const auto& monthly = result.windows[5];   // 28d
  EXPECT_GT(daily.up.median, weekly7.up.median);
  EXPECT_GT(weekly7.up.median, 2.0);   // churn does not vanish
  EXPECT_GT(monthly.up.median, 2.0);
  EXPECT_LT(monthly.up.median, daily.up.median);
  // Weekend effect: max daily churn clearly above median.
  EXPECT_GT(daily.up.max, daily.up.median * 1.15);
  // Year-long divergence vs first week in the paper's 15-40% band.
  std::size_t last = result.yearly.appear.size() - 1;
  double appear_frac = static_cast<double>(result.yearly.appear[last]) /
                       static_cast<double>(result.yearly.active[last]);
  EXPECT_GT(appear_frac, 0.15);
  EXPECT_LT(appear_frac, 0.40);
}

TEST_F(AnalysisIntegration, Fig5DissectShape) {
  auto result = RunFig5(*daily_, *feed_, daily_obs_->spec());
  // 5a: churn is widespread; a meaningful share of ASes above 10%.
  const auto& pa7 = result.per_as[1];
  ASSERT_GT(pa7.median_up_pcts.size(), 20u);
  EXPECT_GT(pa7.frac_below_5pct, 0.15);
  EXPECT_GT(pa7.frac_above_10pct, 0.02);
  // 5b: daily events are dominated by individual addresses...
  const auto& daily_bins = result.event_sizes[0];
  EXPECT_GT(daily_bins.ge29, 0.5);
  // ...while monthly events are bulkier but still heavily individual.
  const auto& monthly_bins = result.event_sizes[2];
  EXPECT_GT(monthly_bins.le16 + monthly_bins.m17_20 + monthly_bins.m21_24,
            daily_bins.le16 + daily_bins.m17_20 + daily_bins.m21_24);
  // 5c: BGP sees almost none of it; monthly > daily correlation.
  EXPECT_LT(result.bgp[2].UpPct(), 10.0);
  EXPECT_GE(result.bgp[2].UpPct(), result.bgp[0].UpPct());
  EXPECT_LT(result.bgp[2].SteadyPct(), result.bgp[2].UpPct() + 1.0);
}

TEST_F(AnalysisIntegration, Table2LongTermShape) {
  auto result = RunTable2(*weekly_, *feed_);
  EXPECT_GT(result.appear_total, 0u);
  EXPECT_GT(result.disappear_total, 0u);
  // Whole-block events carry a large share of year-scale churn (65%/54%).
  EXPECT_GT(result.appear_whole_block_frac, 0.25);
  EXPECT_GT(result.disappear_whole_block_frac, 0.20);
  // BGP: the vast majority of appear/disappear has no routing change.
  EXPECT_GT(result.appear_bgp.no_change, 0.75);
  EXPECT_GT(result.disappear_bgp.no_change, 0.75);
  // Top-10 concentration exists and the two top-10 lists overlap.
  EXPECT_GT(result.top10_appear_share, 0.10);
  EXPECT_GE(result.top10_overlap, 3);
}

TEST_F(AnalysisIntegration, Fig6PatternClassifierAgreesWithTruth) {
  auto result = RunFig6(*world_, *daily_);
  EXPECT_GE(result.exemplars.size(), 4u);
  EXPECT_GT(result.overall_agreement, 0.75);
  std::ostringstream os;
  PrintFig6(result, os, /*render_exemplars=*/false);
  EXPECT_NE(os.str().find("agreement"), std::string::npos);
}

TEST_F(AnalysisIntegration, Fig8BlocksShape) {
  auto result = RunFig8(*world_, *daily_);
  // 8a: ~10% major change (config sets 10% reconfiguration).
  EXPECT_GT(result.major_fraction, 0.04);
  EXPECT_LT(result.major_fraction, 0.20);
  EXPECT_GT(result.detector_recall, 0.5);
  EXPECT_GT(result.detector_precision, 0.5);
  // 8b: the paper's separation.
  EXPECT_GT(result.static_fd_below_64, 0.55);
  EXPECT_GT(result.dynamic_fd_above_250, 0.6);
  EXPECT_GT(result.all_fd_above_250, 0.35);
  EXPECT_GT(result.all_fd_below_64, 0.15);
  // 8c: dense blocks are mostly highly utilized, with a reclaimable tail.
  EXPECT_GT(result.high_fd_blocks, 100u);
  EXPECT_GT(result.high_fd_stu_above_80, 0.35);
  EXPECT_GT(result.high_fd_stu_below_60, 0.05);
  EXPECT_GT(result.high_fd_stu_100, 0.005);
}

TEST_F(AnalysisIntegration, Fig9TrafficShape) {
  auto weekly_obs = cdn::Observatory::Weekly(*world_);
  auto result = RunFig9(*daily_obs_, weekly_obs);
  // 9a: monotone-ish correlation: all-days median >> few-days median.
  double low = result.bins[0].median;
  double high = result.bins.back().median;
  ASSERT_GT(result.bins.back().ips, 0u);
  EXPECT_GT(high, low * 5);
  // 9b: always-on minority carries an outsized traffic share.
  EXPECT_LT(result.all_days_ip_frac, 0.20);
  EXPECT_GT(result.all_days_traffic_frac, result.all_days_ip_frac * 2.5);
  // Traffic concentration summary: strongly skewed but not degenerate.
  EXPECT_GT(result.traffic_gini, 0.5);
  EXPECT_LT(result.traffic_gini, 0.99);
  // 9c: consolidation trend across the year.
  EXPECT_GT(result.weekly_top10_share.front(), 20.0);
  EXPECT_GT(result.last_month_share, result.first_month_share + 0.5);
  EXPECT_LT(result.last_month_share, result.first_month_share + 15.0);
}

TEST_F(AnalysisIntegration, Fig10UserAgentRegions) {
  auto result = RunFig10(*world_, *daily_obs_);
  EXPECT_GT(result.samples.size(), 200u);
  // All three regions populated; residential dominates.
  EXPECT_GT(result.region_residential, result.region_gateways);
  EXPECT_GT(result.region_gateways, 0u);
  EXPECT_GT(result.region_bots, 0u);
  // Gateway region is mostly true CGN and skews to APNIC (paper: Asia).
  EXPECT_GT(result.gateway_cgn_precision, 0.6);
  EXPECT_GT(result.gateway_apnic_fraction, 0.3);
  EXPECT_GT(result.bots_crawler_precision, 0.6);
}

TEST_F(AnalysisIntegration, Fig11Fig12DemographicsShape) {
  auto result = RunDemographics(*world_, *daily_obs_);
  EXPECT_GT(result.blocks, 500u);
  // Bimodal STU split (paper observation (i)).
  EXPECT_GT(result.low_stu_cluster + result.high_stu_cluster, 0.45);
  EXPECT_GT(result.low_stu_cluster, 0.08);
  EXPECT_GT(result.high_stu_cluster, 0.15);
  // APNIC gateway corner exceeds ARIN's (paper Fig 12 discussion).
  double apnic =
      result.gateway_corner[static_cast<int>(geo::Rir::kApnic)];
  double arin = result.gateway_corner[static_cast<int>(geo::Rir::kArin)];
  EXPECT_GT(apnic, arin);
}

}  // namespace
}  // namespace ipscope::analysis
