#include "scan/trinocular.h"

#include <gtest/gtest.h>

namespace ipscope::scan {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 400;
    // Plenty of deactivations to detect.
    config.deactivate_rate_per_year = 0.15;
    return config;
  }()};
  return world;
}

TEST(IcmpProbe, ConsistentWithFullScan) {
  IcmpScanner scanner{TestWorld()};
  net::Ipv4Set scan = scanner.Scan(280);
  // Every sampled member responds to a targeted probe, and vice versa.
  int checked = 0;
  scan.ForEach([&](net::IPv4Addr addr) {
    if (checked < 200) {
      EXPECT_TRUE(scanner.Probe(addr, 280)) << addr;
      ++checked;
    }
  });
  EXPECT_GT(checked, 50);
  // Spot-check non-responders.
  int negatives = 0;
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    net::IPv4Addr addr{plan.block.network().value() + 200};
    if (!scan.Contains(addr)) {
      EXPECT_FALSE(scanner.Probe(addr, 280)) << addr;
      if (++negatives > 50) break;
    }
  }
  EXPECT_GT(negatives, 10);
}

TEST(IcmpProbe, UnallocatedAddressNeverResponds) {
  IcmpScanner scanner{TestWorld()};
  EXPECT_FALSE(scanner.Probe(net::IPv4Addr{203, 0, 113, 1}, 280));
}

TEST(Trinocular, CoversRespondingBlocks) {
  TrinocularMonitor monitor{TestWorld()};
  EXPECT_GT(monitor.covered_blocks(), 100u);
}

TEST(Trinocular, StableBlocksReportedUpCheaply) {
  TrinocularConfig config;
  TrinocularMonitor monitor{TestWorld(), config};
  auto result = monitor.Monitor(230, 260);
  ASSERT_FALSE(result.timelines.empty());
  EXPECT_EQ(result.days, 30);

  // Collect ground-truth "up for the whole window" blocks.
  std::uint64_t up_days = 0, total_days = 0, down_days = 0;
  for (const BlockTimeline& timeline : result.timelines) {
    const sim::BlockPlan* plan = nullptr;
    for (const sim::BlockPlan& p : TestWorld().blocks()) {
      if (net::BlockKeyOf(p.block) == timeline.key) {
        plan = &p;
        break;
      }
    }
    ASSERT_NE(plan, nullptr);
    bool truly_up_throughout =
        plan->active_from <= 230 && plan->active_until >= 260;
    if (!truly_up_throughout) continue;
    for (BlockState s : timeline.state) {
      ++total_days;
      if (s == BlockState::kUp) ++up_days;
      if (s == BlockState::kDown) ++down_days;
    }
  }
  ASSERT_GT(total_days, 500u);
  // False-outage rate must be small. It is not zero: the survey-learned
  // tracked set E(b) itself churns (customer turnover), so some up blocks
  // stop answering on their tracked addresses — the real system's
  // motivation for periodically re-learning E(b).
  EXPECT_LT(static_cast<double>(down_days) / total_days, 0.05);
  EXPECT_GT(static_cast<double>(up_days) / total_days, 0.90);
  // Adaptive probing: far below the 256 probes of a full block scan, and
  // even well below the 15-probe budget on average.
  EXPECT_LT(result.MeanProbesPerBlockDay(), 8.0);
}

TEST(Trinocular, DetectsDeactivation) {
  TrinocularMonitor monitor{TestWorld()};
  // Find client blocks deactivating inside the monitoring window.
  int found = 0, detected = 0;
  auto result = monitor.Monitor(230, 330);
  for (const BlockTimeline& timeline : result.timelines) {
    const sim::BlockPlan* plan = nullptr;
    for (const sim::BlockPlan& p : TestWorld().blocks()) {
      if (net::BlockKeyOf(p.block) == timeline.key) {
        plan = &p;
        break;
      }
    }
    ASSERT_NE(plan, nullptr);
    if (!sim::IsClientPolicy(plan->base.kind)) continue;
    std::int32_t down_day = plan->active_until;
    if (down_day < 240 || down_day > 320) continue;
    ++found;
    // Inferred down at some point after the true event (within 10 days).
    bool saw_down = false;
    for (int d = static_cast<int>(down_day) - 230;
         d < std::min(result.days, static_cast<int>(down_day) - 230 + 10);
         ++d) {
      if (timeline.state[static_cast<std::size_t>(d)] == BlockState::kDown) {
        saw_down = true;
      }
    }
    detected += saw_down;
  }
  ASSERT_GT(found, 3);
  EXPECT_GE(detected * 10, found * 7);  // >= 70% detected within 10 days
}

TEST(Trinocular, Deterministic) {
  TrinocularMonitor a{TestWorld()};
  TrinocularMonitor b{TestWorld()};
  auto ra = a.Monitor(240, 250);
  auto rb = b.Monitor(240, 250);
  ASSERT_EQ(ra.timelines.size(), rb.timelines.size());
  EXPECT_EQ(ra.total_probes, rb.total_probes);
  for (std::size_t i = 0; i < ra.timelines.size(); ++i) {
    EXPECT_EQ(ra.timelines[i].state, rb.timelines[i].state);
  }
}

}  // namespace
}  // namespace ipscope::scan
