// Conformance tests for obs::Registry's Prometheus text exposition
// (format 0.0.4) and the obs::json escape/parse helpers backing it.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"

namespace ipscope::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

TEST(PrometheusName, SanitizesInvalidCharacters) {
  EXPECT_EQ(PrometheusName("par.pool.chunk_seconds"),
            "par_pool_chunk_seconds");
  EXPECT_EQ(PrometheusName("io.store.save_mb_per_s"),
            "io_store_save_mb_per_s");
  EXPECT_EQ(PrometheusName("weird metric-name!"), "weird_metric_name_");
  EXPECT_EQ(PrometheusName("already_valid:name"), "already_valid:name");
}

TEST(PrometheusName, LeadingDigitGetsUnderscorePrefix) {
  EXPECT_EQ(PrometheusName("24_blocks"), "_24_blocks");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PrometheusExposition, CountersGaugesAndSummaries) {
  Registry r;
  r.GetCounter("par.pool.tasks_executed").Add(42);
  r.GetGauge("par.pool.imbalance_ratio").Set(1.25);
  auto& h = r.GetHistogram("par.pool.chunk_seconds");
  h.Record(0.5);
  h.Record(1.5);

  std::string text = r.ToPrometheus();
  for (const char* needle : {
           "# TYPE par_pool_tasks_executed counter",
           "par_pool_tasks_executed 42",
           "# TYPE par_pool_imbalance_ratio gauge",
           "par_pool_imbalance_ratio 1.25",
           "# TYPE par_pool_chunk_seconds summary",
           "par_pool_chunk_seconds{quantile=\"0.5\"} ",
           "par_pool_chunk_seconds{quantile=\"0.9\"} ",
           "par_pool_chunk_seconds{quantile=\"0.99\"} ",
           "par_pool_chunk_seconds_sum 2",
           "par_pool_chunk_seconds_count 2",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

TEST(PrometheusExposition, EveryLineIsCommentOrSample) {
  Registry r;
  r.GetCounter("cdn.observatory.rows_emitted").Add(7);
  r.GetGauge("io.store.save_mb_per_s").Set(87.5);
  r.GetHistogram("io.store.save_seconds").Record(0.01);

  for (const std::string& line : Lines(r.ToPrometheus())) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    // Sample line: name[{labels}] SP value — and the name obeys the
    // Prometheus charset.
    auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    auto brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    EXPECT_TRUE(ValidMetricName(name)) << line;
    EXPECT_EQ(line.find(' ', space + 1), std::string::npos) << line;
  }
}

TEST(PrometheusExposition, NonFiniteGaugesUseSpecLiterals) {
  Registry r;
  r.GetGauge("g.nan").Set(std::nan(""));
  r.GetGauge("g.pos").Set(HUGE_VAL);
  r.GetGauge("g.neg").Set(-HUGE_VAL);
  std::string text = r.ToPrometheus();
  EXPECT_NE(text.find("g_nan NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pos +Inf"), std::string::npos) << text;
  EXPECT_NE(text.find("g_neg -Inf"), std::string::npos) << text;
}

TEST(PrometheusExposition, EmptyRegistryIsEmptyDocument) {
  Registry r;
  EXPECT_EQ(r.ToPrometheus(), "");
}

TEST(PrometheusExposition, HelpTextEscapesOriginalName) {
  Registry r;
  r.GetCounter("odd\\name\nwith.newline").Add(1);
  std::string text = r.ToPrometheus();
  // The HELP line carries the original (pre-sanitization) name with
  // backslash and newline escaped per the text-format spec.
  EXPECT_NE(text.find("odd\\\\name\\nwith.newline"), std::string::npos)
      << text;
  for (const std::string& line : Lines(text)) {
    EXPECT_EQ(line.find('\r'), std::string::npos);
  }
}

// --- obs::json, the parser the benchdiff gate trusts ----------------------

TEST(ObsJson, EscapeHandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json::Escape("plain"), "plain");
  EXPECT_EQ(json::Escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::Escape("tab\there"), "tab\\there");
  EXPECT_EQ(json::Escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json::Escape("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(json::Escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 untouched
}

TEST(ObsJson, ParseRoundTripsEscapedStrings) {
  for (const std::string& original :
       {std::string("say \"hi\""), std::string("a\\b\tc\nd"),
        std::string("nul\0byte", 8), std::string("caf\xc3\xa9")}) {
    std::string doc = "\"" + json::Escape(original) + "\"";
    json::Value v = json::Parse(doc);
    EXPECT_EQ(v.AsString(), original) << doc;
  }
}

TEST(ObsJson, ParseAcceptsFullDocuments) {
  json::Value v = json::Parse(
      R"({"schema_version": 2, "ok": true, "xs": [1, 2.5, -3e2], "nested": {"s": "x"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("schema_version")->AsNumber(), 2);
  EXPECT_TRUE(v.Find("ok")->AsBool());
  ASSERT_EQ(v.Find("xs")->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("xs")->AsArray()[2].AsNumber(), -300.0);
  EXPECT_EQ(v.Find("nested")->Find("s")->AsString(), "x");
  EXPECT_EQ(v.Find("absent"), nullptr);
}

TEST(ObsJson, ParseRejectsMalformedInputLoudly) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "tru", "1 2",
                          "\"unterminated", "\"bad \\x escape\"", "nan"}) {
    EXPECT_THROW(json::Parse(bad), std::runtime_error) << bad;
  }
}

TEST(ObsJson, ParseErrorsCarryByteOffsets) {
  try {
    json::Parse("{\"a\": }");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

TEST(ObsJson, TypedAccessorsThrowOnKindMismatch) {
  json::Value v = json::Parse("[1]");
  EXPECT_THROW(v.AsObject(), std::runtime_error);
  EXPECT_THROW(v.AsString(), std::runtime_error);
  EXPECT_THROW(v.AsArray()[0].AsBool(), std::runtime_error);
}

}  // namespace
}  // namespace ipscope::obs
