// Crash-safety tests for the sharded ingest store (src/ingest): the
// commit protocol's crash-point sweep (fork a child, kill it at an armed
// syscall boundary, prove recovery lands on the committed prefix),
// idempotent replay, manifest tamper detection, and quarantine of torn
// or orphaned files. Lives in the `chaos` ctest label with the other
// corruption-recovery suites.
#include "ingest/session.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/crash.h"
#include "fault/schedule.h"
#include "ingest/manifest.h"
#include "io/atomic_file.h"
#include "io/store_io.h"
#include "par/pool.h"

namespace ipscope::ingest {
namespace {

namespace fs = std::filesystem;

constexpr int kDays = 12;

// A small deterministic store built by hand — no pool, no simulator — so
// the fork-based tests never race a worker thread.
activity::ActivityStore BuildStore(int days, std::uint64_t salt) {
  activity::ActivityStore store{days};
  for (std::uint32_t b = 0; b < 4; ++b) {
    auto& m = store.GetOrCreate(net::BlockKey{0x0A0000u + b * 7});
    for (int d = 0; d < days; ++d) {
      m.Row(d)[b % 4] = (salt + 1) * 0x9E3779B97F4A7C15ULL ^
                        (static_cast<std::uint64_t>(d) << b);
    }
  }
  return store;
}

activity::ActivityStore SliceDays(const activity::ActivityStore& full,
                                  int first, int last) {
  activity::ActivityStore delta{full.days()};
  for (int d = 0; d < full.days(); ++d) {
    if (d < first || d > last) delta.SetDayCovered(d, false);
  }
  full.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    activity::ActivityMatrix& dst = delta.GetOrCreate(key);
    for (int d = first; d <= last; ++d) dst.Row(d) = m.Row(d);
  });
  return delta;
}

std::string StoreBytes(const activity::ActivityStore& store) {
  std::ostringstream os{std::ios::binary};
  io::SaveStore(store, os);
  return std::move(os).str();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "ipscope_ingest_" + tag + "_" +
                    std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

TEST(IngestCrash, SweepEveryPointRecoversCommittedPrefix) {
  auto full = BuildStore(kDays, 1);
  auto delta0 = SliceDays(full, 0, kDays / 2 - 1);
  auto delta1 = SliceDays(full, kDays / 2, kDays - 1);
  const std::string full_bytes = StoreBytes(full);
  const std::string prefix_bytes = StoreBytes(delta0);

  int pool_threads = par::GlobalPool().threads();
  par::GlobalPool().Resize(1);  // fork safety: no worker threads alive
  for (const std::string& point : fault::CrashPoints()) {
    for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
      SCOPED_TRACE(point + " seed " + std::to_string(seed));
      std::string dir = FreshDir(point + "_" + std::to_string(seed));

      auto opened = Session::Open(dir, kDays);
      ASSERT_TRUE(opened.ok()) << opened.error().ToString();
      Session session = std::move(opened).value();
      auto first = session.Append(delta0, "delta0");
      ASSERT_TRUE(first.ok() && first.value().applied);

      pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        fault::ArmCrash(point, seed);
        auto child = Session::Open(dir, kDays);
        if (!child.ok()) ::_exit(91);
        auto append = child.value().Append(delta1, "delta1");
        ::_exit(append.ok() ? 0 : 92);  // 0 = armed point never fired
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status));
      ASSERT_EQ(WEXITSTATUS(status), fault::kCrashExitCode)
          << "child did not die at the armed point";

      // Recovery must land on exactly the prefix the parent knows was
      // committed: only post-commit crashes after the manifest rename.
      const bool expect_delta1 = point == "post-commit";
      auto recovered = Session::Open(dir, kDays);
      ASSERT_TRUE(recovered.ok()) << recovered.error().ToString();
      Session after = std::move(recovered).value();
      EXPECT_EQ(after.manifest().HasDelta("delta1"), expect_delta1);
      auto loaded = after.Load();
      ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
      EXPECT_EQ(StoreBytes(loaded.value()),
                expect_delta1 ? full_bytes : prefix_bytes);

      // Crash-and-retry: replaying both deltas converges on the full
      // dataset, with committed ones as no-ops.
      auto r0 = after.Append(delta0, "delta0");
      ASSERT_TRUE(r0.ok());
      EXPECT_FALSE(r0.value().applied);
      auto r1 = after.Append(delta1, "delta1");
      ASSERT_TRUE(r1.ok());
      EXPECT_EQ(r1.value().applied, !expect_delta1);
      auto final_load = after.Load();
      ASSERT_TRUE(final_load.ok());
      EXPECT_EQ(StoreBytes(final_load.value()), full_bytes);
      fs::remove_all(dir);
    }
  }
  par::GlobalPool().Resize(pool_threads);
}

TEST(IngestCrash, ReplayingTheSameDeltaChangesNothing) {
  auto full = BuildStore(kDays, 2);
  auto delta = SliceDays(full, 0, 3);
  std::string dir = FreshDir("replay");

  auto opened = Session::Open(dir, kDays);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  auto first = session.Append(delta, "day-0-3");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().applied);
  const std::string after_first = StoreBytes(session.Load().value());
  const auto manifest_after_first = session.manifest().Serialize();

  auto second = session.Append(delta, "day-0-3");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().applied);
  EXPECT_EQ(second.value().shard_file, first.value().shard_file);
  EXPECT_EQ(session.manifest().Serialize(), manifest_after_first);
  EXPECT_EQ(StoreBytes(session.Load().value()), after_first);

  // The on-disk manifest is unchanged too, not just the in-memory copy.
  auto reopened = Session::Open(dir, kDays);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().manifest().Serialize(), manifest_after_first);
  fs::remove_all(dir);
}

TEST(IngestCrash, DeltaIngestMatchesBatchBuildBitExactly) {
  auto full = BuildStore(kDays, 3);
  std::string dir = FreshDir("compose");

  auto opened = Session::Open(dir, kDays);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();
  ASSERT_TRUE(session.Append(SliceDays(full, 0, 4), "a").ok());
  ASSERT_TRUE(session.Append(SliceDays(full, 5, 8), "b").ok());
  ASSERT_TRUE(session.Append(SliceDays(full, 9, kDays - 1), "c").ok());

  auto loaded = session.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(StoreBytes(loaded.value()), StoreBytes(full));
  fs::remove_all(dir);
}

TEST(IngestCrash, TamperedManifestIsAChecksumError) {
  std::string dir = FreshDir("tamper");
  {
    auto opened = Session::Open(dir, kDays);
    ASSERT_TRUE(opened.ok());
    auto delta = SliceDays(BuildStore(kDays, 4), 0, 5);
    ASSERT_TRUE(opened.value().Append(delta, "d").ok());
  }
  // Flip one byte that keeps the line grammatical — the delta id 'd'
  // becomes 'e' — so only the commit CRC can catch the tamper.
  fs::path manifest_path = fs::path(dir) / "MANIFEST";
  std::string text;
  {
    std::ifstream is{manifest_path, std::ios::binary};
    std::ostringstream buf;
    buf << is.rdbuf();
    text = std::move(buf).str();
  }
  std::size_t at = text.find(" d ");
  ASSERT_NE(at, std::string::npos);
  text[at + 1] = 'e';
  {
    std::ofstream os{manifest_path, std::ios::binary | std::ios::trunc};
    os << text;
  }
  auto reopened = Session::Open(dir, kDays);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.error().kind, io::StoreErrorKind::kChecksumMismatch)
      << reopened.error().ToString();
  fs::remove_all(dir);
}

TEST(IngestCrash, TamperedShardIsAChecksumError) {
  std::string dir = FreshDir("shard_tamper");
  std::string shard_file;
  {
    auto opened = Session::Open(dir, kDays);
    ASSERT_TRUE(opened.ok());
    auto delta = SliceDays(BuildStore(kDays, 5), 0, 5);
    auto r = opened.value().Append(delta, "d");
    ASSERT_TRUE(r.ok());
    shard_file = r.value().shard_file;
  }
  fs::path shard_path = fs::path(dir) / shard_file;
  std::fstream f{shard_path, std::ios::in | std::ios::out | std::ios::binary};
  f.seekp(40);
  f.put('\x5a');
  f.close();
  auto reopened = Session::Open(dir, kDays);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.error().kind, io::StoreErrorKind::kChecksumMismatch);
  fs::remove_all(dir);
}

TEST(IngestCrash, TornTempAndOrphanShardAreQuarantined) {
  std::string dir = FreshDir("quarantine");
  auto delta = SliceDays(BuildStore(kDays, 6), 0, 5);
  {
    auto opened = Session::Open(dir, kDays);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value().Append(delta, "committed").ok());
  }
  // A torn temp write and an orphan shard the manifest does not name.
  std::ofstream{fs::path(dir) / "shard-junk.ips2.tmp"} << "torn";
  std::ofstream{fs::path(dir) / "shard-006-009-orphan.ips2"} << "not committed";

  auto reopened = Session::Open(dir, kDays);
  ASSERT_TRUE(reopened.ok()) << reopened.error().ToString();
  const auto& quarantined = reopened.value().recovery().quarantined;
  ASSERT_EQ(quarantined.size(), 2u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-junk.ips2.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-006-009-orphan.ips2"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine"));
  // The committed shard still loads; the junk never reaches the store.
  auto loaded = reopened.value().Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(StoreBytes(loaded.value()), StoreBytes(delta));
  fs::remove_all(dir);
}

TEST(IngestCrash, SkipRollbackEnvFlagAdoptsOrphans) {
  // The deliberately seeded recovery bug behind the run_all.sh teeth
  // test: with the flag set, an orphaned shard is adopted as committed,
  // which the chaos-crash gate must flag as divergence.
  std::string dir = FreshDir("teeth");
  auto full = BuildStore(kDays, 7);
  auto delta0 = SliceDays(full, 0, 5);
  auto delta1 = SliceDays(full, 6, kDays - 1);
  {
    auto opened = Session::Open(dir, kDays);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value().Append(delta0, "delta0").ok());
  }
  // Plant delta1 as an orphan: a valid shard file the manifest omits.
  std::ostringstream os{std::ios::binary};
  io::SaveStore(delta1, os);
  ASSERT_EQ(io::WriteFileAtomic(
                (fs::path(dir) / "shard-006-011-orphan.ips2").string(),
                os.view()),
            std::nullopt);

  ::setenv("IPSCOPE_INGEST_SKIP_ROLLBACK", "1", 1);
  auto buggy = Session::Open(dir, kDays);
  ::unsetenv("IPSCOPE_INGEST_SKIP_ROLLBACK");
  ASSERT_TRUE(buggy.ok()) << buggy.error().ToString();
  EXPECT_TRUE(buggy.value().recovery().quarantined.empty());
  EXPECT_EQ(buggy.value().manifest().shards.size(), 2u);
  // The adopted orphan makes the load diverge from the committed prefix.
  auto loaded = buggy.value().Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_NE(StoreBytes(loaded.value()), StoreBytes(delta0));
  fs::remove_all(dir);
}

TEST(IngestCrash, OpenErrorsAreTyped) {
  // No manifest and no day count: nothing to create a store from.
  std::string dir = FreshDir("typed");
  auto no_days = Session::Open(dir, 0);
  ASSERT_FALSE(no_days.ok());
  EXPECT_EQ(no_days.error().kind, io::StoreErrorKind::kOpenFailed);

  // Day-count mismatch against an existing manifest.
  {
    auto opened = Session::Open(dir, kDays);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()
                    .Append(SliceDays(BuildStore(kDays, 8), 0, 2), "d")
                    .ok());
  }
  auto mismatch = Session::Open(dir, kDays + 5);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().kind, io::StoreErrorKind::kMalformed);

  // Adopting the manifest's day count with days <= 0 works.
  auto adopted = Session::Open(dir, 0);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value().days(), kDays);
  fs::remove_all(dir);
}

TEST(IngestCrash, AppendValidatesItsInputs) {
  std::string dir = FreshDir("validate");
  auto opened = Session::Open(dir, kDays);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened).value();

  auto bad_id = session.Append(SliceDays(BuildStore(kDays, 9), 0, 2),
                               "has spaces");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.error().kind, io::StoreErrorKind::kMalformed);

  activity::ActivityStore wrong_days{kDays + 1};
  auto mismatch = session.Append(wrong_days, "d");
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().kind, io::StoreErrorKind::kMalformed);

  activity::ActivityStore empty{kDays};
  for (int d = 0; d < kDays; ++d) empty.SetDayCovered(d, false);
  auto no_days = session.Append(empty, "d");
  ASSERT_FALSE(no_days.ok());
  EXPECT_EQ(no_days.error().kind, io::StoreErrorKind::kMalformed);
  fs::remove_all(dir);
}

// --- manifest grammar ------------------------------------------------------

TEST(IngestManifest, RoundTripsThroughSerializeAndParse) {
  Manifest m;
  m.days = 42;
  m.shards.push_back(ShardEntry{"shard-000-006-a.ips2", 0, 6, "a", 123,
                                0xDEADBEEF});
  m.shards.push_back(ShardEntry{"shard-007-041-b.ips2", 7, 41, "b", 456,
                                0x12345678});
  auto parsed = ParseManifest(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value().Serialize(), m.Serialize());
  EXPECT_TRUE(parsed.value().HasDelta("a"));
  EXPECT_TRUE(parsed.value().HasShardFile("shard-007-041-b.ips2"));
}

TEST(IngestManifest, RejectsMalformedInputsWithTypedErrors) {
  using Kind = io::StoreErrorKind;
  EXPECT_EQ(ParseManifest("").error().kind, Kind::kTruncated);
  EXPECT_EQ(ParseManifest("not a manifest\n").error().kind, Kind::kBadMagic);

  Manifest m;
  m.days = 10;
  m.shards.push_back(ShardEntry{"s.ips2", 0, 5, "a", 9, 0x1});
  std::string good = m.Serialize();

  // Truncation: chop the commit line off.
  std::string no_commit = good.substr(0, good.find("commit"));
  EXPECT_EQ(ParseManifest(no_commit).error().kind, Kind::kTruncated);
  // Any flipped payload byte breaks the commit CRC.
  std::string flipped = good;
  flipped[good.find("s.ips2")] = 'z';
  EXPECT_EQ(ParseManifest(flipped).error().kind, Kind::kChecksumMismatch);
  // Content after the commit line is never legal.
  EXPECT_EQ(ParseManifest(good + "trailing\n").error().kind,
            Kind::kMalformed);
  // Duplicate delta ids cannot round-trip.
  Manifest dup = m;
  dup.shards.push_back(ShardEntry{"t.ips2", 6, 8, "a", 9, 0x2});
  EXPECT_EQ(ParseManifest(dup.Serialize()).error().kind, Kind::kMalformed);
  // Day range outside the store's period.
  Manifest range = m;
  range.shards[0].day_last = 10;
  EXPECT_EQ(ParseManifest(range.Serialize()).error().kind, Kind::kMalformed);
}

}  // namespace
}  // namespace ipscope::ingest
