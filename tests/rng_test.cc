#include "rng/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ipscope::rng {
namespace {

TEST(Rng, SplitMixDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, SubstreamIsDeterministicAndTagSensitive) {
  EXPECT_EQ(Substream(1, 2, 3), Substream(1, 2, 3));
  EXPECT_NE(Substream(1, 2, 3), Substream(1, 3, 2));
  EXPECT_NE(Substream(1, 2, 3), Substream(2, 2, 3));
  EXPECT_NE(Substream(1, 2), Substream(1, 2, 0));
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a{7}, b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, XoshiroDifferentSeedsDiverge) {
  Xoshiro256 a{7}, b{8};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 g{1};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = g.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoundedInRange) {
  Xoshiro256 g{2};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    std::uint32_t v = g.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, NormalMoments) {
  Xoshiro256 g{3};
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = NextNormal(g);
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BinomialMeanSmallAndLarge) {
  Xoshiro256 g{4};
  // Small n: exact per-trial path.
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    sum += static_cast<double>(NextBinomial(g, 20, 0.3));
  }
  EXPECT_NEAR(sum / 5000, 6.0, 0.15);
  // Large n, small p: inversion path.
  sum = 0;
  for (int i = 0; i < 5000; ++i) {
    sum += static_cast<double>(NextBinomial(g, 10000, 0.001));
  }
  EXPECT_NEAR(sum / 5000, 10.0, 0.4);
  // Large n, large np: normal approximation path.
  sum = 0;
  for (int i = 0; i < 5000; ++i) {
    auto v = NextBinomial(g, 1000, 0.5);
    ASSERT_LE(v, 1000u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 5000, 500.0, 3.0);
}

TEST(Rng, BinomialEdgeCases) {
  Xoshiro256 g{5};
  EXPECT_EQ(NextBinomial(g, 0, 0.5), 0u);
  EXPECT_EQ(NextBinomial(g, 100, 0.0), 0u);
  EXPECT_EQ(NextBinomial(g, 100, 1.0), 100u);
  EXPECT_EQ(NextBinomial(g, 100, -0.1), 0u);
}

TEST(Rng, PoissonMean) {
  Xoshiro256 g{6};
  for (double lambda : {0.5, 5.0, 100.0}) {
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
      sum += static_cast<double>(NextPoisson(g, lambda));
    }
    EXPECT_NEAR(sum / 5000, lambda, std::max(0.1, lambda * 0.05)) << lambda;
  }
  EXPECT_EQ(NextPoisson(g, 0.0), 0u);
}

TEST(Rng, LogNormalMedian) {
  Xoshiro256 g{7};
  std::vector<double> values;
  for (int i = 0; i < 10001; ++i) values.push_back(NextLogNormal(g, 3.0, 1.0));
  std::nth_element(values.begin(), values.begin() + 5000, values.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(values[5000], std::exp(3.0), std::exp(3.0) * 0.1);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Xoshiro256 g{8};
  ZipfSampler zipf{1000, 1.0};
  std::uint64_t low = 0, total = 5000;
  for (std::uint64_t i = 0; i < total; ++i) {
    std::uint32_t k = zipf(g);
    ASSERT_LT(k, 1000u);
    low += k < 10;
  }
  // Under Zipf(s=1) the top-10 ranks carry far more than 1% of the mass.
  EXPECT_GT(low, total / 10);
}

}  // namespace
}  // namespace ipscope::rng
