#include "activity/matrix.h"

#include <gtest/gtest.h>

namespace ipscope::activity {
namespace {

TEST(DayBits, SetTestPopCount) {
  DayBits bits{};
  EXPECT_EQ(PopCount(bits), 0);
  SetBit(bits, 0);
  SetBit(bits, 63);
  SetBit(bits, 64);
  SetBit(bits, 255);
  EXPECT_TRUE(TestBit(bits, 0));
  EXPECT_TRUE(TestBit(bits, 63));
  EXPECT_TRUE(TestBit(bits, 64));
  EXPECT_TRUE(TestBit(bits, 255));
  EXPECT_FALSE(TestBit(bits, 1));
  EXPECT_FALSE(TestBit(bits, 128));
  EXPECT_EQ(PopCount(bits), 4);
}

TEST(DayBits, OrAndNot) {
  DayBits a{}, b{};
  SetBit(a, 3);
  SetBit(a, 200);
  SetBit(b, 200);
  SetBit(b, 100);
  DayBits o = OrBits(a, b);
  EXPECT_EQ(PopCount(o), 3);
  DayBits d = AndNotBits(a, b);
  EXPECT_EQ(PopCount(d), 1);
  EXPECT_TRUE(TestBit(d, 3));
  EXPECT_FALSE(TestBit(d, 200));
}

TEST(ActivityMatrix, EmptyMatrix) {
  ActivityMatrix m{10};
  EXPECT_EQ(m.days(), 10);
  EXPECT_TRUE(m.Empty());
  EXPECT_EQ(m.FillingDegree(), 0);
  EXPECT_EQ(m.Stu(), 0.0);
  EXPECT_EQ(m.ActiveOnDay(5), 0);
}

TEST(ActivityMatrix, SetGet) {
  ActivityMatrix m{7};
  m.Set(3, 200);
  EXPECT_TRUE(m.Get(3, 200));
  EXPECT_FALSE(m.Get(2, 200));
  EXPECT_FALSE(m.Get(3, 201));
  EXPECT_FALSE(m.Empty());
}

TEST(ActivityMatrix, FillingDegreeCountsDistinctAddresses) {
  ActivityMatrix m{5};
  // Same host active on many days counts once.
  for (int d = 0; d < 5; ++d) m.Set(d, 42);
  EXPECT_EQ(m.FillingDegree(), 1);
  m.Set(0, 7);
  EXPECT_EQ(m.FillingDegree(), 2);
  // Window restriction.
  EXPECT_EQ(m.FillingDegree(1, 5), 1);
}

TEST(ActivityMatrix, StuBounds) {
  ActivityMatrix m{4};
  // One address one day out of 256*4 slots.
  m.Set(0, 0);
  EXPECT_DOUBLE_EQ(m.Stu(), 1.0 / (256.0 * 4.0));
  // Full utilization.
  ActivityMatrix full{2};
  for (int d = 0; d < 2; ++d) {
    for (int h = 0; h < 256; ++h) full.Set(d, h);
  }
  EXPECT_DOUBLE_EQ(full.Stu(), 1.0);
  EXPECT_EQ(full.SpatioTemporalActivity(0, 2), 512);
}

TEST(ActivityMatrix, StuWindowed) {
  ActivityMatrix m{4};
  for (int h = 0; h < 256; ++h) m.Set(0, h);
  EXPECT_DOUBLE_EQ(m.Stu(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.Stu(1, 4), 0.0);
  EXPECT_DOUBLE_EQ(m.Stu(0, 4), 0.25);
  EXPECT_EQ(m.Stu(2, 2), 0.0);  // empty window
}

TEST(ActivityMatrix, HostActiveDays) {
  ActivityMatrix m{10};
  m.Set(1, 5);
  m.Set(3, 5);
  m.Set(9, 5);
  EXPECT_EQ(m.HostActiveDays(5), 3);
  EXPECT_EQ(m.HostActiveDays(6), 0);
}

TEST(ActivityMatrix, UnionOver) {
  ActivityMatrix m{3};
  m.Set(0, 1);
  m.Set(1, 2);
  m.Set(2, 3);
  DayBits u = m.UnionOver(0, 2);
  EXPECT_EQ(PopCount(u), 2);
  EXPECT_TRUE(TestBit(u, 1));
  EXPECT_TRUE(TestBit(u, 2));
  EXPECT_FALSE(TestBit(u, 3));
}

TEST(ActivityMatrix, PaperMaximumActivity) {
  // The paper: 112 x 256 = 28672 is the max spatio-temporal activity.
  ActivityMatrix m{112};
  for (int d = 0; d < 112; ++d) {
    for (int h = 0; h < 256; ++h) m.Set(d, h);
  }
  EXPECT_EQ(m.SpatioTemporalActivity(0, 112), 28672);
  EXPECT_DOUBLE_EQ(m.Stu(), 1.0);
}

}  // namespace
}  // namespace ipscope::activity
