#include "whois/whois.h"

#include <gtest/gtest.h>

namespace ipscope::whois {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 300;
    return config;
  }()};
  return world;
}

TEST(Whois, EveryAllocatedBlockHasARecord) {
  WhoisDirectory directory{TestWorld()};
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    auto record = directory.Lookup(net::BlockKeyOf(plan.block));
    ASSERT_TRUE(record.has_value()) << plan.block;
    EXPECT_EQ(record->asn, plan.asn);
    EXPECT_FALSE(record->org_name.empty());
    EXPECT_FALSE(record->org_type.empty());
    EXPECT_EQ(record->country.size(), 2u);
  }
}

TEST(Whois, UnallocatedSpaceHasNoRecord) {
  WhoisDirectory directory{TestWorld()};
  EXPECT_FALSE(directory.Lookup(0xFFFFFF).has_value());
}

TEST(Whois, OrgTypeMatchesAsType) {
  WhoisDirectory directory{TestWorld()};
  for (const sim::AsPlan& as : TestWorld().ases()) {
    if (as.block_indices.empty()) continue;
    auto record = directory.Lookup(net::BlockKeyOf(
        TestWorld().blocks()[as.block_indices[0]].block));
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->org_type, OrgTypeName(as.type));
  }
}

TEST(Whois, CountryMatchesRegistryDelegation) {
  // WHOIS country must agree with the address-range delegation.
  WhoisDirectory directory{TestWorld()};
  const geo::Registry& registry = TestWorld().registry();
  int checked = 0;
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    auto record = directory.Lookup(net::BlockKeyOf(plan.block));
    ASSERT_TRUE(record.has_value());
    auto country = registry.CountryOf(plan.block.network());
    ASSERT_TRUE(country.has_value());
    EXPECT_EQ(record->country,
              geo::Countries()[static_cast<std::size_t>(*country)].code);
    if (++checked > 100) break;
  }
}

TEST(Whois, OrgTypeNames) {
  EXPECT_EQ(OrgTypeName(sim::AsType::kCellular), "cellular-operator");
  EXPECT_EQ(OrgTypeName(sim::AsType::kResidentialIsp), "residential-isp");
  EXPECT_EQ(OrgTypeName(sim::AsType::kTransit), "transit-carrier");
}

}  // namespace
}  // namespace ipscope::whois
