#include "baseline/udmap.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "cdn/observatory.h"

namespace ipscope::baseline {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 500;
    return config;
  }()};
  return world;
}

TEST(Logins, TraceIsDeterministicAndSane) {
  cdn::LoginTraceGenerator gen{
      TestWorld(), cdn::Observatory::Daily(TestWorld()).spec()};
  const sim::BlockPlan* client = nullptr;
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    // A static block that is active throughout the daily period.
    if (plan.base.kind == sim::PolicyKind::kStatic &&
        plan.active_from == 0 && plan.active_until > 364) {
      client = &plan;
      break;
    }
  }
  ASSERT_NE(client, nullptr);
  auto a = gen.BlockTrace(*client);
  auto b = gen.BlockTrace(*client);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (const cdn::LoginEvent& ev : a) {
    EXPECT_TRUE(client->block.Contains(ev.ip));
    EXPECT_NE(ev.user, 0u);
    EXPECT_GE(ev.step, 0);
    EXPECT_LT(ev.step, 112);
  }
}

TEST(Logins, GatewaysProduceNoEvents) {
  cdn::LoginTraceGenerator gen{
      TestWorld(), cdn::Observatory::Daily(TestWorld()).spec()};
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    if (plan.base.kind == sim::PolicyKind::kCgnGateway &&
        !plan.HasReconfiguration()) {
      EXPECT_TRUE(gen.BlockTrace(plan).empty());
      return;
    }
  }
  GTEST_SKIP() << "no gateway block";
}

TEST(Logins, LoginRateScalesVolume) {
  auto spec = cdn::Observatory::Daily(TestWorld()).spec();
  cdn::LoginTraceGenerator low{TestWorld(), spec, 0.1};
  cdn::LoginTraceGenerator high{TestWorld(), spec, 0.9};
  const sim::BlockPlan* client = nullptr;
  for (const sim::BlockPlan& plan : TestWorld().blocks()) {
    if (plan.base.kind == sim::PolicyKind::kDynamicShort) {
      client = &plan;
      break;
    }
  }
  ASSERT_NE(client, nullptr);
  auto few = low.BlockTrace(*client);
  auto many = high.BlockTrace(*client);
  EXPECT_GT(many.size(), few.size() * 4);
}

TEST(Udmap, SyntheticStaticVsDynamic) {
  std::vector<cdn::LoginEvent> events;
  // Static block 10.0.0.0/24: users 1..50 each pinned to one address.
  for (int day = 0; day < 50; ++day) {
    for (std::uint64_t user = 1; user <= 50; ++user) {
      events.push_back({user, net::IPv4Addr{0x0A000000u +
                                            static_cast<std::uint32_t>(user)},
                        day});
    }
  }
  // Dynamic block 10.0.1.0/24: a new user on each address every day.
  for (int day = 0; day < 50; ++day) {
    for (std::uint32_t host = 0; host < 50; ++host) {
      std::uint64_t user = 1000 + static_cast<std::uint64_t>(day) * 100 + host;
      events.push_back({user, net::IPv4Addr{0x0A000100u + host}, day});
    }
  }
  auto result = AnalyzeLogins(events);
  ASSERT_EQ(result.blocks.size(), 2u);
  EXPECT_EQ(result.static_blocks,
            std::vector<net::BlockKey>{0x0A0000u});
  EXPECT_EQ(result.dynamic_blocks,
            std::vector<net::BlockKey>{0x0A0001u});
  // Holding durations: static pairings span the full window, dynamic one day.
  EXPECT_GT(result.blocks[0].median_holding_steps, 40.0);
  EXPECT_LT(result.blocks[1].median_holding_steps, 2.0);
}

TEST(Udmap, MinEventsLeavesQuietBlocksUnclassified) {
  std::vector<cdn::LoginEvent> events;
  for (int day = 0; day < 3; ++day) {
    events.push_back({1, net::IPv4Addr{0x0A000001u}, day});
  }
  UdmapOptions options;
  options.min_events = 50;
  auto result = AnalyzeLogins(events, options);
  EXPECT_TRUE(result.static_blocks.empty());
  EXPECT_TRUE(result.dynamic_blocks.empty());
  ASSERT_EQ(result.blocks.size(), 1u);  // stats still reported
}

TEST(Udmap, RecoversGroundTruthPolicies) {
  // The headline validation: UDmap-style inference on simulated login
  // traces recovers the true assignment regime.
  const sim::World& world = TestWorld();
  cdn::LoginTraceGenerator gen{world,
                               cdn::Observatory::Daily(world).spec()};
  auto events = gen.Trace();
  ASSERT_GT(events.size(), 10000u);
  auto result = AnalyzeLogins(events);

  std::unordered_map<net::BlockKey, sim::PolicyKind> truth;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (!plan.HasReconfiguration()) {
      truth[net::BlockKeyOf(plan.block)] = plan.base.kind;
    }
  }
  auto score = [&](const std::vector<net::BlockKey>& keys,
                   auto is_correct) {
    std::uint64_t right = 0, total = 0;
    for (net::BlockKey key : keys) {
      auto it = truth.find(key);
      if (it == truth.end()) continue;  // reconfigured: skip
      ++total;
      if (is_correct(it->second)) ++right;
    }
    return total ? static_cast<double>(right) / static_cast<double>(total)
                 : 0.0;
  };
  double dynamic_precision =
      score(result.dynamic_blocks, [](sim::PolicyKind k) {
        return k == sim::PolicyKind::kDynamicShort ||
               k == sim::PolicyKind::kDynamicLong;
      });
  double static_precision = score(result.static_blocks, [](sim::PolicyKind k) {
    return k == sim::PolicyKind::kStatic ||
           k == sim::PolicyKind::kCrawlerBots ||
           k == sim::PolicyKind::kServerFarm;
  });
  EXPECT_GT(dynamic_precision, 0.9);
  EXPECT_GT(static_precision, 0.9);
  EXPECT_GT(result.dynamic_blocks.size(), 50u);
  EXPECT_GT(result.static_blocks.size(), 30u);
}

TEST(Udmap, HoldingTimesTrackLeaseRegimes) {
  const sim::World& world = TestWorld();
  cdn::LoginTraceGenerator gen{world,
                               cdn::Observatory::Daily(world).spec()};
  // Median (user, ip) holding time: ~1 step for 24h pools, much longer for
  // static assignment.
  double static_holding = -1, short_holding = -1;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration()) continue;
    if (static_holding < 0 && plan.base.kind == sim::PolicyKind::kStatic &&
        plan.base.pool_size > 30) {
      auto result = AnalyzeLogins(gen.BlockTrace(plan));
      if (!result.blocks.empty() && result.blocks[0].events > 100) {
        static_holding = result.blocks[0].median_holding_steps;
      }
    }
    if (short_holding < 0 &&
        plan.base.kind == sim::PolicyKind::kDynamicShort &&
        !plan.base.rotating) {
      auto result = AnalyzeLogins(gen.BlockTrace(plan));
      if (!result.blocks.empty()) {
        short_holding = result.blocks[0].median_holding_steps;
      }
    }
    if (static_holding >= 0 && short_holding >= 0) break;
  }
  ASSERT_GE(static_holding, 0);
  ASSERT_GE(short_holding, 0);
  EXPECT_LT(short_holding, 2.0);       // ~24h leases
  EXPECT_GT(static_holding, 20.0);     // pinned for months
}

}  // namespace
}  // namespace ipscope::baseline
