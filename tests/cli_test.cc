#include "cli/commands.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <iterator>
#include <sstream>

#include "netbase/ipv4.h"

namespace ipscope::cli {
namespace {

std::string DatasetPath() {
  // Generate a small shared dataset once per process. ctest runs each test
  // in its own (possibly concurrent) process, so the path must be unique
  // per pid to avoid read/write races on the file.
  static const std::string path = [] {
    std::string p = ::testing::TempDir() + "/ipscope_cli_test." +
                    std::to_string(getpid()) + ".bin";
    std::ostringstream out, err;
    int rc = Main({"generate", "--blocks", "200", "--seed", "5", "--out", p},
                  out, err);
    EXPECT_EQ(rc, 0) << err.str();
    return p;
  }();
  return path;
}

TEST(CliParse, FlagsAndPositional) {
  std::ostringstream err;
  auto cmd = Parse({"blocks", "data.bin", "--top", "5", "--sort=fd",
                    "--verbose"},
                   err);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->command, "blocks");
  ASSERT_EQ(cmd->positional.size(), 1u);
  EXPECT_EQ(cmd->positional[0], "data.bin");
  EXPECT_EQ(cmd->Flag("top"), "5");
  EXPECT_EQ(cmd->Flag("sort"), "fd");
  EXPECT_EQ(cmd->Flag("verbose"), "");
  EXPECT_EQ(cmd->Flag("missing"), std::nullopt);
  EXPECT_EQ(cmd->IntFlag("top", 0), 5);
  EXPECT_EQ(cmd->IntFlag("missing", 7), 7);
}

TEST(CliParse, EmptyArgsShowUsage) {
  std::ostringstream err;
  EXPECT_FALSE(Parse({}, err).has_value());
  EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Cli, HelpCommand) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("generate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateRequiresOut) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"generate", "--blocks", "10"}, out, err), 2);
  EXPECT_NE(err.str().find("--out"), std::string::npos);
}

TEST(Cli, SummaryPrintsDatasetStats) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"summary", DatasetPath()}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("112 snapshots"), std::string::npos);
  EXPECT_NE(out.str().find("unique addresses"), std::string::npos);
}

TEST(Cli, SummaryMissingFileFails) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"summary", "/no/such/file"}, out, err), 1);
  EXPECT_NE(err.str().find("error"), std::string::npos);
}

TEST(Cli, ChurnTable) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"churn", DatasetPath(), "--window", "28"}, out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("up %"), std::string::npos);
  EXPECT_NE(out.str().find("median"), std::string::npos);
}

TEST(Cli, ChurnWindowTooLarge) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"churn", DatasetPath(), "--window", "100"}, out, err), 2);
}

TEST(Cli, BlocksTopList) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"blocks", DatasetPath(), "--top", "3", "--sort", "fd"},
                 out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("/24"), std::string::npos);
  EXPECT_NE(out.str().find("STU"), std::string::npos);
}

TEST(Cli, BlocksRejectsBadSortKey) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"blocks", DatasetPath(), "--sort", "alphabetical"}, out,
                 err),
            2);
}

TEST(Cli, RenderValidatesPrefix) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"render", DatasetPath(), "--block", "1.2.3.4"}, out, err),
            2);
  EXPECT_EQ(Main({"render", DatasetPath(), "--block", "10.0.0.0/16"}, out,
                 err),
            2);
}

TEST(Cli, RenderUnknownBlockFails) {
  std::ostringstream out, err;
  EXPECT_EQ(
      Main({"render", DatasetPath(), "--block", "203.0.113.0/24"}, out, err),
      1);
  EXPECT_NE(err.str().find("no activity"), std::string::npos);
}

TEST(Cli, RenderKnownBlock) {
  // Find a block via the blocks listing, then render it.
  std::ostringstream listing, err;
  ASSERT_EQ(Main({"blocks", DatasetPath(), "--top", "1"}, listing, err), 0);
  std::string text = listing.str();
  auto pos = text.find("| ", text.find("pattern")) ;
  pos = text.find("\n| ", text.find("---"));
  ASSERT_NE(pos, std::string::npos);
  auto end = text.find(' ', pos + 3);
  std::string block = text.substr(pos + 3, end - pos - 3);

  std::ostringstream out;
  EXPECT_EQ(Main({"render", DatasetPath(), "--block", block}, out, err), 0)
      << "block=" << block << " err=" << err.str();
  EXPECT_NE(out.str().find("FD="), std::string::npos);
}

TEST(Cli, EventsHistogram) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"events", DatasetPath(), "--window", "28"}, out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("/29-/32"), std::string::npos);
  EXPECT_NE(out.str().find("total up events"), std::string::npos);
}

TEST(Cli, HitlistEmitsOneAddressPerBlock) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"hitlist", DatasetPath()}, out, err), 0) << err.str();
  // Every output line parses as an IPv4 address.
  std::istringstream lines{out.str()};
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(ipscope::net::IPv4Addr::Parse(line).has_value()) << line;
    ++count;
  }
  EXPECT_GT(count, 50);
  EXPECT_NE(err.str().find("most-active"), std::string::npos);
}

TEST(Cli, HitlistRejectsUnknownStrategy) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"hitlist", DatasetPath(), "--strategy", "psychic"}, out,
                 err),
            2);
}

TEST(Cli, ExportWritesCsvFiles) {
  std::string dir = ::testing::TempDir();
  std::ostringstream out, err;
  EXPECT_EQ(Main({"export", DatasetPath(), "--outdir", dir}, out, err), 0)
      << err.str();
  for (const char* name :
       {"daily_counts.csv", "block_metrics.csv", "churn.csv"}) {
    std::ifstream is{dir + "/" + name};
    EXPECT_TRUE(is.good()) << name;
    std::string header;
    std::getline(is, header);
    EXPECT_FALSE(header.empty()) << name;
    EXPECT_NE(header.find(','), std::string::npos) << name;
  }
}

TEST(Cli, ExportRequiresOutdir) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"export", DatasetPath()}, out, err), 2);
}

TEST(Cli, DescribePrintsWorldInventory) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"describe", "--blocks", "200", "--seed", "3"}, out, err),
            0)
      << err.str();
  std::string text = out.str();
  EXPECT_NE(text.find("seed 3"), std::string::npos);
  EXPECT_NE(text.find("residential-isp"), std::string::npos);
  EXPECT_NE(text.find("assignment policy"), std::string::npos);
  EXPECT_NE(text.find("reconfigurations"), std::string::npos);
}

TEST(Cli, GenerateRejectsNonNumericSeed) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"generate", "--blocks", "10", "--seed", "banana", "--out",
                  "/tmp/never_written.bin"},
                 out, err),
            2);
  EXPECT_NE(err.str().find("--seed"), std::string::npos);
}

TEST(Cli, MalformedIntFlagFails) {
  std::ostringstream out, err;
  EXPECT_EQ(Main({"churn", DatasetPath(), "--window", "soon"}, out, err), 2);
  EXPECT_NE(err.str().find("--window"), std::string::npos);
  std::ostringstream out2, err2;
  EXPECT_EQ(Main({"describe", "--blocks", "12x"}, out2, err2), 2);
  EXPECT_NE(err2.str().find("--blocks"), std::string::npos);
}

TEST(Cli, ProfileRunsPipelineAndWritesMetrics) {
  std::string metrics = ::testing::TempDir() + "/ipscope_cli_metrics." +
                        std::to_string(getpid()) + ".json";
  std::string trace = ::testing::TempDir() + "/ipscope_cli_trace." +
                      std::to_string(getpid()) + ".json";
  std::ostringstream out, err;
  ASSERT_EQ(Main({"profile", "--blocks", "150", "--metrics-out", metrics,
                  "--trace-out", trace},
                 out, err),
            0)
      << err.str();
  // The stage table names the canonical histograms.
  for (const char* stage :
       {"sim.world.build_seconds", "cdn.observatory.build_seconds",
        "io.store.save_seconds", "io.store.load_seconds",
        "activity.churn.compute_seconds", "p50", "p99"}) {
    EXPECT_NE(out.str().find(stage), std::string::npos) << stage;
  }
  std::ifstream mis{metrics};
  ASSERT_TRUE(mis.good());
  std::string mjson{std::istreambuf_iterator<char>(mis),
                    std::istreambuf_iterator<char>()};
  EXPECT_NE(mjson.find("\"histograms\""), std::string::npos);
  EXPECT_NE(mjson.find("\"p99\""), std::string::npos);
  std::ifstream tis{trace};
  ASSERT_TRUE(tis.good());
  std::string tjson{std::istreambuf_iterator<char>(tis),
                    std::istreambuf_iterator<char>()};
  EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tjson.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Cli, WeeklyGeneration) {
  std::string path = ::testing::TempDir() + "/ipscope_cli_weekly." +
                     std::to_string(getpid()) + ".bin";
  std::ostringstream out, err;
  ASSERT_EQ(Main({"generate", "--blocks", "100", "--weekly", "--out", path},
                 out, err),
            0)
      << err.str();
  std::ostringstream summary;
  ASSERT_EQ(Main({"summary", path}, summary, err), 0);
  EXPECT_NE(summary.str().find("52 snapshots"), std::string::npos);
}

}  // namespace
}  // namespace ipscope::cli
