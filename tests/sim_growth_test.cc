#include "sim/growth.h"

#include <gtest/gtest.h>

#include "sim/ipv6note.h"

namespace ipscope::sim {
namespace {

TEST(Growth, SeriesSpans2008To2016) {
  auto growth = GenerateGrowthHistory(1);
  ASSERT_FALSE(growth.series.empty());
  EXPECT_EQ(growth.series.front().year, 2008);
  EXPECT_EQ(growth.series.front().month, 1);
  EXPECT_EQ(growth.series.back().year, 2016);
  EXPECT_EQ(growth.series.back().month, 6);
  EXPECT_EQ(growth.series.size(), 102u);
}

TEST(Growth, Deterministic) {
  auto a = GenerateGrowthHistory(7);
  auto b = GenerateGrowthHistory(7);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].active_ips, b.series[i].active_ips);
  }
}

TEST(Growth, LinearGrowthThenStagnation) {
  auto growth = GenerateGrowthHistory(42);
  // The pre-2014 fit should be strongly linear with positive slope.
  EXPECT_GT(growth.pre2014_fit.slope, 5e6);
  EXPECT_GT(growth.pre2014_fit.r_squared, 0.98);

  // Post-2014 observed values fall increasingly below the extrapolation.
  double last_predicted =
      growth.pre2014_fit.At(static_cast<double>(growth.series.size() - 1));
  double last_observed = growth.series.back().active_ips;
  EXPECT_LT(last_observed, last_predicted * 0.92);

  // But 2013 values track the fit closely.
  for (std::size_t m = 60; m < 72; ++m) {
    double predicted = growth.pre2014_fit.At(static_cast<double>(m));
    EXPECT_NEAR(growth.series[m].active_ips, predicted, predicted * 0.06);
  }
}

TEST(Growth, ScaleMultiplies) {
  auto full = GenerateGrowthHistory(9, 1.0);
  auto small = GenerateGrowthHistory(9, 0.01);
  for (std::size_t i = 0; i < full.series.size(); ++i) {
    EXPECT_NEAR(small.series[i].active_ips,
                full.series[i].active_ips * 0.01,
                full.series[i].active_ips * 0.01 * 1e-9);
  }
}

TEST(Growth, PeakNearPaperScale) {
  auto growth = GenerateGrowthHistory(3);
  // Monthly actives peak near ~800M at paper scale.
  double max_v = 0;
  for (const auto& mc : growth.series) max_v = std::max(max_v, mc.active_ips);
  EXPECT_GT(max_v, 7e8);
  EXPECT_LT(max_v, 9.5e8);
}

TEST(Ipv6Note, DoublesAcrossTheYear) {
  auto v6 = GenerateIpv6Growth(42);
  ASSERT_EQ(v6.series.size(), 53u);
  EXPECT_NEAR(v6.series.front().active_slash64s, 200e6, 20e6);
  EXPECT_NEAR(v6.yearly_growth_factor, 2.0, 0.25);
  // Monotone-ish growth: end far above start, no collapse in between.
  for (const auto& wc : v6.series) {
    EXPECT_GT(wc.active_slash64s, 150e6);
    EXPECT_LT(wc.active_slash64s, 500e6);
  }
}

TEST(Ipv6Note, DeterministicAndScalable) {
  auto a = GenerateIpv6Growth(7);
  auto b = GenerateIpv6Growth(7);
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].active_slash64s,
                     b.series[i].active_slash64s);
  }
  auto small = GenerateIpv6Growth(7, 0.001);
  EXPECT_NEAR(small.series[0].active_slash64s,
              a.series[0].active_slash64s * 0.001, 1.0);
}

TEST(Growth, ExhaustionDatesAnnotated) {
  auto dates = RirExhaustionDates();
  ASSERT_EQ(dates.size(), 5u);
  EXPECT_STREQ(dates[0].rir, "IANA");
  EXPECT_EQ(dates[0].year, 2011);
  EXPECT_STREQ(dates[4].rir, "ARIN");
  EXPECT_EQ(dates[4].year, 2015);
}

}  // namespace
}  // namespace ipscope::sim
