// End-to-end checks for per-chunk trace attribution: every chunk of a
// parallel region lands as a "par.chunk" complete event on its
// participant's own Perfetto track (track id = slot + 1), events on one
// track never overlap, and the pipeline hot path (Observatory::BuildStore)
// emits its phase sub-spans alongside the chunks.
//
// These tests mutate the process-global trace recorder; gtest_discover_tests
// runs each TEST in its own ctest process, and each test still clears and
// disables the recorder around its body so ordering never matters.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cdn/observatory.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "sim/world.h"

namespace ipscope::obs {
namespace {

class ScopedTrace {
 public:
  ScopedTrace() {
    GlobalTrace().Clear();
    GlobalTrace().Enable();
  }
  ~ScopedTrace() {
    GlobalTrace().Disable();
    GlobalTrace().Clear();
  }
};

std::vector<TraceEvent> ChunkEvents() {
  std::vector<TraceEvent> chunks;
  for (const TraceEvent& e : GlobalTrace().Events()) {
    if (e.name == "par.chunk") chunks.push_back(e);
  }
  return chunks;
}

TEST(PoolTrace, EveryChunkOnItsParticipantsTrack) {
  ScopedTrace trace;
  par::Pool pool{8};

  // On a loaded single-core host the submitter could drain every chunk
  // before a worker thread is ever scheduled, which would make the
  // multi-track assertion below flaky. Rendezvous instead: early chunks
  // wait (bounded) until a second OS thread has executed a chunk, so at
  // least two participant slots demonstrably ran work.
  std::mutex mu;
  std::set<std::thread::id> executors;
  const std::int64_t deadline_us =
      GlobalTrace().NowMicros() + 10'000'000;  // 10s
  constexpr std::size_t kChunks = 64;
  pool.RunChunks(kChunks, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      executors.insert(std::this_thread::get_id());
    }
    while (GlobalTrace().NowMicros() < deadline_us) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (executors.size() >= 2) break;
      }
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  ASSERT_GE(executors.size(), 2u) << "no second worker ran within 10s";

  std::vector<TraceEvent> chunks = ChunkEvents();
  ASSERT_EQ(chunks.size(), kChunks);

  std::set<std::uint32_t> tracks;
  for (const TraceEvent& e : chunks) {
    EXPECT_EQ(e.category, "par");
    // Participant slots are 0..7, published on tracks 1..8.
    EXPECT_GE(e.tid, 1u);
    EXPECT_LE(e.tid, 8u);
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
    tracks.insert(e.tid);
  }
  // Two distinct OS threads executed chunks, so two distinct participant
  // slots must show up as distinct Perfetto tracks.
  EXPECT_GE(tracks.size(), 2u) << "all chunks landed on one track";
}

TEST(PoolTrace, TracksNeverOverlapAndOrderIsConsistent) {
  ScopedTrace trace;
  par::Pool pool{4};

  pool.RunChunks(32, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  std::map<std::uint32_t, std::vector<TraceEvent>> by_track;
  for (const TraceEvent& e : ChunkEvents()) by_track[e.tid].push_back(e);
  ASSERT_FALSE(by_track.empty());

  std::int64_t now = GlobalTrace().NowMicros();
  for (auto& [tid, events] : by_track) {
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.ts_us < b.ts_us;
              });
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_LE(events[i].ts_us + events[i].dur_us, now);
      if (i == 0) continue;
      // A participant executes its chunks strictly one after another; allow
      // a little slack for the separate clock reads bracketing each chunk.
      constexpr std::int64_t kSlackUs = 200;
      EXPECT_LE(events[i - 1].ts_us + events[i - 1].dur_us,
                events[i].ts_us + kSlackUs)
          << "track " << tid << " events overlap";
    }
  }
}

TEST(PoolTrace, InlinePathUsesTrackOne) {
  ScopedTrace trace;
  par::Pool pool{1};

  pool.RunChunks(6, [](std::size_t) {});

  std::vector<TraceEvent> chunks = ChunkEvents();
  ASSERT_EQ(chunks.size(), 6u);
  for (const TraceEvent& e : chunks) {
    EXPECT_EQ(e.tid, 1u) << "inline chunks belong to the submitter's track";
  }
}

TEST(PoolTrace, DisabledRecorderStaysEmpty) {
  GlobalTrace().Clear();
  GlobalTrace().Disable();
  par::Pool pool{4};
  pool.RunChunks(16, [](std::size_t) {});
  EXPECT_EQ(GlobalTrace().size(), 0u);
}

TEST(PoolTelemetry, RegionPublishesWorkerAccounting) {
  par::Pool pool{4};
  auto& registry = GlobalRegistry();
  std::uint64_t tasks0 =
      registry.GetCounter("par.pool.tasks_executed").value();
  std::uint64_t chunk_count0 =
      registry.GetHistogram("par.pool.chunk_seconds").count();
  std::uint64_t wait_count0 =
      registry.GetHistogram("par.pool.queue_wait_seconds").count();

  constexpr std::size_t kChunks = 24;
  pool.RunChunks(kChunks, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  EXPECT_EQ(registry.GetCounter("par.pool.tasks_executed").value() - tasks0,
            kChunks);
  EXPECT_EQ(registry.GetHistogram("par.pool.chunk_seconds").count() -
                chunk_count0,
            kChunks);
  EXPECT_EQ(registry.GetHistogram("par.pool.queue_wait_seconds").count() -
                wait_count0,
            kChunks);

  // The region ran ~24ms of sleeps over 4 participants: busy time must have
  // been attributed to at least the submitter's slot, and the imbalance
  // ratio is a sane max/mean (>= 1).
  double busy_total = 0;
  for (int slot = 0; slot < 4; ++slot) {
    busy_total += registry
                      .GetGauge("par.pool.worker." + std::to_string(slot) +
                                ".busy_seconds")
                      .value();
  }
  EXPECT_GT(busy_total, 0.0);
  EXPECT_GE(registry.GetGauge("par.pool.imbalance_ratio").value(), 1.0);
}

TEST(PipelineTrace, BuildStoreEmitsPhaseSpansAndChunks) {
  sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 300;
    return config;
  }()};

  ScopedTrace trace;
  auto store = cdn::Observatory::Daily(world).BuildStore(4);
  ASSERT_GT(store.BlockCount(), 0u);

  std::set<std::string> names;
  for (const TraceEvent& e : GlobalTrace().Events()) names.insert(e.name);
  EXPECT_TRUE(names.count("cdn.observatory.build.generate_seconds")) << "got "
      << names.size() << " distinct event names";
  EXPECT_TRUE(names.count("cdn.observatory.build.insert_seconds"));
  EXPECT_TRUE(names.count("cdn.observatory.build_seconds"));

  for (const TraceEvent& e : ChunkEvents()) {
    EXPECT_GE(e.tid, 1u);
    EXPECT_LE(e.tid, 4u) << "BuildStore(4) must cap participant tracks at 4";
  }

  // The build also publishes throughput gauges next to the spans.
  EXPECT_GT(GlobalRegistry()
                .GetGauge("cdn.observatory.build.rows_per_s")
                .value(),
            0.0);
  EXPECT_GT(GlobalRegistry()
                .GetGauge("cdn.observatory.build.bytes_per_s")
                .value(),
            0.0);
}

}  // namespace
}  // namespace ipscope::obs
