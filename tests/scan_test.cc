#include <gtest/gtest.h>

#include "cdn/observatory.h"
#include "geo/country.h"
#include "scan/icmp.h"
#include "scan/portscan.h"
#include "scan/traceroute.h"
#include "sim/world.h"

namespace ipscope::scan {
namespace {

sim::World& TestWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    // Large enough that per-country response-rate estimates stabilize.
    config.target_client_blocks = 1200;
    return config;
  }()};
  return world;
}

TEST(IcmpScan, Deterministic) {
  IcmpScanner scanner{TestWorld()};
  EXPECT_EQ(scanner.Scan(280), scanner.Scan(280));
}

TEST(IcmpScan, MonthUnionSupersetOfSingleScan) {
  IcmpScanner scanner{TestWorld()};
  net::Ipv4Set single = scanner.Scan(273);
  net::Ipv4Set month = scanner.ScanMonth(273, 31, 8);
  EXPECT_GE(month.Count(), single.Count());
  // Every address in the first snapshot appears in the union.
  EXPECT_EQ(single.CountIntersect(month), single.Count());
}

TEST(IcmpScan, InfrastructureRespondsWithoutCdnActivity) {
  const sim::World& world = TestWorld();
  IcmpScanner scanner{world};
  net::Ipv4Set scan = scanner.Scan(280);
  // Find a middlebox block: nearly the whole /24 must respond.
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.base.kind == sim::PolicyKind::kMiddlebox) {
      std::uint64_t responders = 0;
      for (int h = 0; h < 256; ++h) {
        responders += scan.Contains(net::IPv4Addr{
            plan.block.network().value() + static_cast<std::uint32_t>(h)});
      }
      EXPECT_GT(responders, 200u) << plan.block;
      return;
    }
  }
  GTEST_SKIP() << "no middlebox block in this world";
}

TEST(IcmpScan, UnusedSpaceIsSilent) {
  const sim::World& world = TestWorld();
  IcmpScanner scanner{world};
  net::Ipv4Set scan = scanner.Scan(280);
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.base.kind == sim::PolicyKind::kUnused &&
        !plan.HasReconfiguration()) {
      EXPECT_FALSE(scan.Intersects(plan.block)) << plan.block;
    }
  }
}

TEST(IcmpScan, CountryResponseRatesOrdered) {
  // CN-like (0.8) client blocks must respond far more than JP-like (0.25).
  const sim::World& world = TestWorld();
  IcmpScanner scanner{world};
  net::Ipv4Set month = scanner.ScanMonth(273, 31, 8);
  auto store = cdn::Observatory::Daily(world).BuildStore();
  net::Ipv4Set cdn = store.ActiveSet(45, 76);

  auto rate_for = [&](const char* code) {
    int ci = geo::CountryIndex(code);
    auto region = world.registry().CountryRegion(ci);
    net::Ipv4Set country;
    country.AddRange(region.first_block << 8,
                     (region.last_block << 8) | 0xFFu);
    net::Ipv4Set active = cdn.Intersect(country);
    if (active.Count() < 2000) return -1.0;  // not enough signal
    return static_cast<double>(active.CountIntersect(month)) /
           static_cast<double>(active.Count());
  };
  double cn = rate_for("CN");
  double jp = rate_for("JP");
  if (cn < 0 || jp < 0) GTEST_SKIP() << "world too small for country rates";
  EXPECT_GT(cn, jp + 0.2);
  EXPECT_GT(cn, 0.5);
  EXPECT_LT(jp, 0.45);
}

TEST(PortScan, OnlyServersRespond) {
  const sim::World& world = TestWorld();
  PortScanner scanner{world};
  net::Ipv4Set services = scanner.ScanServices(280);
  EXPECT_FALSE(services.Empty());
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.base.kind == sim::PolicyKind::kDynamicShort ||
        plan.base.kind == sim::PolicyKind::kCgnGateway) {
      EXPECT_FALSE(services.Intersects(plan.block)) << plan.block;
    }
    if (plan.base.kind == sim::PolicyKind::kServerFarm) {
      EXPECT_TRUE(services.Intersects(plan.block)) << plan.block;
    }
  }
}

TEST(Traceroute, RouterBlocksDominate) {
  const sim::World& world = TestWorld();
  TracerouteCampaign campaign{world};
  net::Ipv4Set routers = campaign.RouterAddresses(273);
  EXPECT_FALSE(routers.Empty());
  std::uint64_t in_router_blocks = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.base.kind == sim::PolicyKind::kRouterInfra) {
      net::Ipv4Set block;
      block.Add(plan.block);
      in_router_blocks += routers.CountIntersect(block);
    }
    if (plan.base.kind == sim::PolicyKind::kMiddlebox) {
      EXPECT_FALSE(routers.Intersects(plan.block));
    }
  }
  EXPECT_GT(in_router_blocks, routers.Count() / 2);
}

TEST(IcmpScan, ClientVisibilityRequiresRecentActivity) {
  // The census claim: a large share of CDN-active clients do NOT respond
  // (NAT/firewalls), and infra-only responders exist.
  const sim::World& world = TestWorld();
  IcmpScanner scanner{world};
  auto store = cdn::Observatory::Daily(world).BuildStore();
  net::Ipv4Set cdn = store.ActiveSet(45, 76);
  net::Ipv4Set icmp = scanner.ScanMonth(273, 31, 8);
  std::uint64_t both = cdn.CountIntersect(icmp);
  std::uint64_t cdn_only = cdn.Count() - both;
  std::uint64_t icmp_only = icmp.Count() - both;
  EXPECT_GT(cdn_only, cdn.Count() / 4);  // paper: >40% — we require >25%
  EXPECT_GT(icmp_only, 0u);
  EXPECT_GT(both, 0u);
}

}  // namespace
}  // namespace ipscope::scan
