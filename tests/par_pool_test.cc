#include "par/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace ipscope::par {
namespace {

TEST(ParChunkLayout, EmptyRangeHasNoChunks) {
  ChunkLayout layout = ChunkLayout::Of(5, 5, 1);
  EXPECT_EQ(layout.chunks, 0u);
}

TEST(ParChunkLayout, ChunksCoverRangeExactlyOnce) {
  for (std::size_t n : {1u, 2u, 7u, 100u, 1000u}) {
    for (std::size_t grain : {1u, 4u, 16u}) {
      ChunkLayout layout = ChunkLayout::Of(10, 10 + n, grain);
      ASSERT_GT(layout.chunks, 0u);
      EXPECT_EQ(layout.ChunkFirst(0), 10u);
      EXPECT_EQ(layout.ChunkLast(layout.chunks - 1), 10 + n);
      for (std::size_t c = 0; c + 1 < layout.chunks; ++c) {
        EXPECT_EQ(layout.ChunkLast(c), layout.ChunkFirst(c + 1));
        EXPECT_LT(layout.ChunkFirst(c), layout.ChunkLast(c));
      }
    }
  }
}

TEST(ParChunkLayout, RespectsGrainAndCap) {
  // grain floors the per-chunk size.
  ChunkLayout small = ChunkLayout::Of(0, 64, 16);
  EXPECT_LE(small.chunks, 4u);
  // The cap bounds scheduling overhead for huge ranges.
  ChunkLayout big = ChunkLayout::Of(0, 10'000'000, 1);
  EXPECT_LE(big.chunks, ChunkLayout::kMaxChunks);
}

TEST(ParChunkLayout, BalancedWithinOneElement) {
  ChunkLayout layout = ChunkLayout::Of(0, 103, 1);
  std::size_t min_size = 103, max_size = 0;
  for (std::size_t c = 0; c < layout.chunks; ++c) {
    std::size_t size = layout.ChunkLast(c) - layout.ChunkFirst(c);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ParPool, ParallelForVisitsEveryIndexOnce) {
  Pool pool{4};
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(pool, 0, visits.size(), [&](std::size_t first,
                                          std::size_t last) {
    for (std::size_t i = first; i < last; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParPool, EmptyRangeRunsNothing) {
  Pool pool{4};
  std::atomic<int> calls{0};
  ParallelFor(pool, 7, 7, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParPool, SizeOneRunsInline) {
  Pool pool{1};
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(pool, 0, 100, [&](std::size_t first, std::size_t last) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    (void)first;
    (void)last;
  });
}

TEST(ParPool, NestedSubmissionRunsInlineWithoutDeadlock) {
  Pool pool{4};
  std::atomic<std::uint64_t> total{0};
  ParallelFor(pool, 0, 8, [&](std::size_t first, std::size_t last) {
    for (std::size_t i = first; i < last; ++i) {
      // A nested region from inside a chunk body must not deadlock on the
      // single-region pool; it runs inline on this thread.
      ParallelFor(pool, 0, 10, [&](std::size_t nf, std::size_t nl) {
        total.fetch_add(nl - nf, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * 10u);
}

TEST(ParPool, ExceptionPropagatesAndPoolSurvives) {
  Pool pool{4};
  auto boom = [&] {
    ParallelFor(pool, 0, 100, [&](std::size_t first, std::size_t) {
      if (first >= 40) throw std::runtime_error("chunk failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<int> ok{0};
  ParallelFor(pool, 0, 50, [&](std::size_t first, std::size_t last) {
    ok.fetch_add(static_cast<int>(last - first));
  });
  EXPECT_EQ(ok.load(), 50);
}

TEST(ParPool, ResizeChangesThreadCount) {
  Pool pool{2};
  EXPECT_EQ(pool.threads(), 2);
  pool.Resize(5);
  EXPECT_EQ(pool.threads(), 5);
  std::atomic<int> sum{0};
  ParallelFor(pool, 0, 64, [&](std::size_t first, std::size_t last) {
    sum.fetch_add(static_cast<int>(last - first));
  });
  EXPECT_EQ(sum.load(), 64);
  pool.Resize(1);
  EXPECT_EQ(pool.threads(), 1);
}

TEST(ParPool, MaxThreadsCapsButNeverRaises) {
  Pool pool{4};
  std::atomic<int> sum{0};
  ParallelFor(
      pool, 0, 64,
      [&](std::size_t first, std::size_t last) {
        sum.fetch_add(static_cast<int>(last - first));
      },
      /*grain=*/1, /*max_threads=*/2);
  EXPECT_EQ(sum.load(), 64);
}

TEST(ParPool, RegionMetricsAdvance)
{
  auto& registry = obs::GlobalRegistry();
  std::uint64_t regions_before =
      registry.GetCounter("par.pool.regions").value();
  std::uint64_t tasks_before =
      registry.GetCounter("par.pool.tasks_executed").value();
  Pool pool{4};
  ParallelFor(pool, 0, 256, [](std::size_t, std::size_t) {});
  EXPECT_GT(registry.GetCounter("par.pool.regions").value(), regions_before);
  EXPECT_GT(registry.GetCounter("par.pool.tasks_executed").value(),
            tasks_before);
}

TEST(ParReduce, SumMatchesSerialForAnyPoolSize) {
  std::vector<std::uint64_t> data(10'000);
  std::iota(data.begin(), data.end(), 1);
  std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  for (int threads : {1, 2, 3, 8}) {
    Pool pool{threads};
    std::uint64_t got = ParallelReduce(
        pool, std::size_t{0}, data.size(), std::uint64_t{0},
        [&](std::uint64_t& acc, std::size_t first, std::size_t last) {
          for (std::size_t i = first; i < last; ++i) acc += data[i];
        },
        [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParReduce, OrderedMergePreservesSequence) {
  // Concatenation is non-commutative: only an in-order merge reproduces
  // the serial result. This is the determinism contract in miniature.
  for (int threads : {1, 2, 8}) {
    Pool pool{threads};
    std::vector<std::size_t> order = ParallelReduce(
        pool, std::size_t{0}, std::size_t{500}, std::vector<std::size_t>{},
        [](std::vector<std::size_t>& acc, std::size_t first,
           std::size_t last) {
          for (std::size_t i = first; i < last; ++i) acc.push_back(i);
        },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    ASSERT_EQ(order.size(), 500u) << "threads=" << threads;
    for (std::size_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(order[i], i) << "threads=" << threads;
    }
  }
}

TEST(ParReduce, EmptyRangeReturnsInit) {
  Pool pool{4};
  int result = ParallelReduce(
      pool, std::size_t{3}, std::size_t{3}, 42,
      [](int&, std::size_t, std::size_t) { FAIL() << "must not run"; },
      [](int&, int) { FAIL() << "must not merge"; });
  EXPECT_EQ(result, 42);
}

TEST(ParReduce, FloatingPointBitIdenticalAcrossThreadCounts) {
  // An FP sum whose value depends on association order: identical chunking
  // + ordered merge must give the same bits for every pool size.
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto run = [&](Pool& pool) {
    return ParallelReduce(
        pool, std::size_t{0}, data.size(), 0.0,
        [&](double& acc, std::size_t first, std::size_t last) {
          for (std::size_t i = first; i < last; ++i) acc += data[i];
        },
        [](double& acc, double part) { acc += part; });
  };
  Pool serial{1};
  double reference = run(serial);
  for (int threads : {2, 3, 8}) {
    Pool pool{threads};
    for (int repeat = 0; repeat < 3; ++repeat) {
      double got = run(pool);
      EXPECT_EQ(got, reference) << "threads=" << threads;
    }
  }
}

TEST(ParseThreadsEnv, AcceptsWholeNumbersInRange) {
  std::string error;
  EXPECT_EQ(ParseThreadsEnv("1", &error), 1);
  EXPECT_EQ(ParseThreadsEnv("8", &error), 8);
  EXPECT_EQ(ParseThreadsEnv("4096", &error), kMaxThreadsEnv);
}

TEST(ParseThreadsEnv, RejectsNonNumbers) {
  for (const char* text :
       {"", "banana", "3x", "x3", " 3", "3 ", "1.5", "0x4", "++2"}) {
    std::string error;
    EXPECT_FALSE(ParseThreadsEnv(text, &error).has_value()) << text;
    EXPECT_NE(error.find("not a number"), std::string::npos) << text;
  }
}

TEST(ParseThreadsEnv, RejectsOutOfRange) {
  for (const char* text :
       {"0", "-3", "4097", "99999999999999999999999999"}) {
    std::string error;
    EXPECT_FALSE(ParseThreadsEnv(text, &error).has_value()) << text;
    EXPECT_NE(error.find("out of range"), std::string::npos) << text;
  }
}

TEST(ParseThreadsEnv, ErrorPointerIsOptional) {
  EXPECT_FALSE(ParseThreadsEnv("banana").has_value());
  EXPECT_EQ(ParseThreadsEnv("2"), 2);
}

}  // namespace
}  // namespace ipscope::par
