#include <gtest/gtest.h>

#include <set>

#include "geo/country.h"
#include "geo/registry.h"

namespace ipscope::geo {
namespace {

TEST(Country, TableSanity) {
  auto countries = Countries();
  EXPECT_GT(countries.size(), 25u);
  std::set<std::string_view> codes;
  bool rir_present[kRirCount] = {};
  for (const CountryInfo& c : countries) {
    EXPECT_TRUE(codes.insert(c.code).second) << c.code;
    EXPECT_EQ(c.code.size(), 2u);
    EXPECT_GT(c.address_share, 0.0);
    EXPECT_GT(c.icmp_response_rate, 0.0);
    EXPECT_LE(c.icmp_response_rate, 1.0);
    EXPECT_GE(c.cgn_share, 0.0);
    EXPECT_LE(c.cgn_share, 1.0);
    rir_present[static_cast<int>(c.rir)] = true;
  }
  for (int r = 0; r < kRirCount; ++r) EXPECT_TRUE(rir_present[r]) << r;
}

TEST(Country, PaperShapedFacts) {
  auto countries = Countries();
  auto get = [&](const char* code) -> const CountryInfo& {
    return countries[static_cast<std::size_t>(CountryIndex(code))];
  };
  // ICMP responsiveness: CN ~0.8 vs JP ~0.25 (paper Fig 3b discussion).
  EXPECT_NEAR(get("CN").icmp_response_rate, 0.8, 0.05);
  EXPECT_NEAR(get("JP").icmp_response_rate, 0.25, 0.05);
  // Broadband ordering: CN > US > JP > DE (ITU ranks 1,2,3,4).
  EXPECT_GT(get("CN").broadband_subs_m, get("US").broadband_subs_m);
  EXPECT_GT(get("US").broadband_subs_m, get("JP").broadband_subs_m);
  EXPECT_GT(get("JP").broadband_subs_m, get("DE").broadband_subs_m);
  // Cellular diverges: IN ranks 2nd in cellular, 10th in broadband.
  EXPECT_GT(get("IN").cellular_subs_m, get("US").cellular_subs_m);
  EXPECT_LT(get("IN").broadband_subs_m, get("KR").broadband_subs_m * 1.2);
}

TEST(Country, IndexLookup) {
  EXPECT_GE(CountryIndex("US"), 0);
  EXPECT_EQ(CountryIndex("XX"), -1);
}

TEST(Country, RirNames) {
  EXPECT_EQ(RirName(Rir::kArin), "ARIN");
  EXPECT_EQ(RirName(Rir::kAfrinic), "AFRINIC");
}

TEST(Registry, AllocationsLandInCountryRegion) {
  Registry registry{42};
  int us = CountryIndex("US");
  auto block = registry.AllocateBlock(us);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(registry.CountryOf(block->network()), us);
  EXPECT_EQ(registry.RirOf(block->network()), Rir::kArin);
}

TEST(Registry, ContiguousAllocation) {
  Registry registry{42};
  int de = CountryIndex("DE");
  auto blocks = registry.AllocateContiguous(de, 8);
  ASSERT_EQ(blocks.size(), 8u);
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(net::BlockKeyOf(blocks[i]), net::BlockKeyOf(blocks[i - 1]) + 1);
  }
  for (const net::Prefix& block : blocks) {
    EXPECT_EQ(registry.CountryOf(block.network()), de);
  }
}

TEST(Registry, AllocationsDoNotOverlap) {
  Registry registry{42};
  int cn = CountryIndex("CN");
  std::set<net::BlockKey> keys;
  for (int i = 0; i < 100; ++i) {
    auto block = registry.AllocateBlock(cn);
    ASSERT_TRUE(block.has_value());
    EXPECT_TRUE(keys.insert(net::BlockKeyOf(*block)).second);
  }
}

TEST(Registry, AllocationsLeaveHoles) {
  Registry registry{42};
  int cn = CountryIndex("CN");
  auto first = registry.AllocateBlock(cn);
  net::BlockKey prev = net::BlockKeyOf(*first);
  bool any_gap = false;
  for (int i = 0; i < 50; ++i) {
    auto block = registry.AllocateBlock(cn);
    net::BlockKey key = net::BlockKeyOf(*block);
    if (key > prev + 1) any_gap = true;
    prev = key;
  }
  EXPECT_TRUE(any_gap);
}

TEST(Registry, UnallocatedLookupsAreEmpty) {
  Registry registry{42};
  // 192.0.0.0 is beyond the 5 RIR /3 regions (which end at 160.0.0.0).
  EXPECT_FALSE(registry.CountryOf(net::IPv4Addr{192, 0, 2, 1}).has_value());
  EXPECT_FALSE(registry.RirOf(net::IPv4Addr{192, 0, 2, 1}).has_value());
}

TEST(Registry, DeterministicLayout) {
  Registry a{7}, b{7};
  int br = CountryIndex("BR");
  EXPECT_EQ(a.AllocateBlock(br), b.AllocateBlock(br));
  EXPECT_EQ(a.CountryRegion(br).first_block, b.CountryRegion(br).first_block);
}

TEST(Registry, RegionsDisjointAcrossCountries) {
  Registry registry{42};
  auto countries = Countries();
  for (std::size_t i = 0; i < countries.size(); ++i) {
    for (std::size_t j = i + 1; j < countries.size(); ++j) {
      auto a = registry.CountryRegion(static_cast<int>(i));
      auto b = registry.CountryRegion(static_cast<int>(j));
      bool disjoint = a.last_block < b.first_block ||
                      b.last_block < a.first_block;
      EXPECT_TRUE(disjoint) << countries[i].code << " vs "
                            << countries[j].code;
    }
  }
}

}  // namespace
}  // namespace ipscope::geo
