#include "sim/policy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "rng/rng.h"
#include "timeutil/date.h"

namespace ipscope::sim {
namespace {

BlockPlan MakePlan(PolicyKind kind) {
  BlockPlan plan;
  plan.block = net::Prefix{net::IPv4Addr{10, 1, 2, 0}, 24};
  plan.asn = 1234;
  plan.country = 0;
  plan.block_seed = 0xDEADBEEF;
  for (std::size_t i = 0; i < plan.host_perm.size(); ++i) {
    plan.host_perm[i] = static_cast<std::uint8_t>(i);
  }
  PolicyParams& p = plan.base;
  p.kind = kind;
  p.pool_size = 256;
  p.subscribers = 256;
  p.daily_p = 0.5f;
  p.weekend_factor = 1.0f;
  p.lease_days = 30;
  p.occupancy = 0.9f;
  p.hits_mu = 3.0f;
  p.hits_sigma = 1.0f;
  return plan;
}

StepSpec DailySpec() {
  StepSpec spec;
  spec.start_day = 228;
  spec.step_days = 1;
  spec.steps = 112;
  spec.world_seed = 42;
  spec.gateway_growth = 0.15;
  return spec;
}

TEST(Policy, BitsAreDeterministic) {
  BlockPlan plan = MakePlan(PolicyKind::kDynamicShort);
  StepSpec spec = DailySpec();
  activity::DayBits a, b;
  GenerateStep(plan, spec, 17, a, nullptr);
  GenerateStep(plan, spec, 17, b, nullptr);
  EXPECT_EQ(a, b);
}

TEST(Policy, BitsIndependentOfHitsRequest) {
  // The invariant that lets the observatory regenerate hits on demand.
  for (PolicyKind kind :
       {PolicyKind::kStatic, PolicyKind::kDynamicShort,
        PolicyKind::kDynamicLong, PolicyKind::kCgnGateway,
        PolicyKind::kCrawlerBots, PolicyKind::kServerFarm}) {
    BlockPlan plan = MakePlan(kind);
    StepSpec spec = DailySpec();
    std::uint32_t hits[256];
    for (int step : {0, 5, 60, 111}) {
      activity::DayBits without, with;
      GenerateStep(plan, spec, step, without, nullptr);
      GenerateStep(plan, spec, step, with, hits);
      EXPECT_EQ(without, with) << PolicyKindName(kind) << " step " << step;
    }
  }
}

TEST(Policy, HitsOnlyOnActiveAddresses) {
  BlockPlan plan = MakePlan(PolicyKind::kDynamicShort);
  StepSpec spec = DailySpec();
  std::uint32_t hits[256];
  activity::DayBits bits;
  GenerateStep(plan, spec, 3, bits, hits);
  for (int h = 0; h < 256; ++h) {
    if (activity::TestBit(bits, h)) {
      EXPECT_GE(hits[h], 1u) << h;
    } else {
      EXPECT_EQ(hits[h], 0u) << h;
    }
  }
}

TEST(Policy, InfraPoliciesGenerateNoCdnActivity) {
  for (PolicyKind kind : {PolicyKind::kUnused, PolicyKind::kRouterInfra,
                          PolicyKind::kMiddlebox}) {
    BlockPlan plan = MakePlan(kind);
    StepSpec spec = DailySpec();
    activity::DayBits bits;
    for (int step = 0; step < 112; ++step) {
      GenerateStep(plan, spec, step, bits, nullptr);
      EXPECT_EQ(activity::PopCount(bits), 0) << PolicyKindName(kind);
    }
  }
}

TEST(Policy, StaticUsesOnlyPoolSlotsViaPermutation) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.pool_size = 10;
  // Reverse permutation: slots 0..9 map to hosts 255..246.
  for (std::size_t i = 0; i < 256; ++i) {
    plan.host_perm[i] = static_cast<std::uint8_t>(255 - i);
  }
  StepSpec spec = DailySpec();
  activity::DayBits acc{};
  for (int step = 0; step < 112; ++step) {
    activity::DayBits bits;
    GenerateStep(plan, spec, step, bits, nullptr);
    acc = activity::OrBits(acc, bits);
  }
  for (int h = 0; h < 246; ++h) EXPECT_FALSE(activity::TestBit(acc, h));
  EXPECT_GT(activity::PopCount(acc), 0);
}

TEST(Policy, CgnGatewayIsNearlyAlwaysFullyActive) {
  BlockPlan plan = MakePlan(PolicyKind::kCgnGateway);
  StepSpec spec = DailySpec();
  std::int64_t total = 0;
  for (int step = 0; step < 112; ++step) {
    activity::DayBits bits;
    GenerateStep(plan, spec, step, bits, nullptr);
    total += activity::PopCount(bits);
  }
  EXPECT_GT(total, 112 * 256 * 0.99);
}

TEST(Policy, GatewayTrafficGrowsAcrossYear) {
  BlockPlan plan = MakePlan(PolicyKind::kCgnGateway);
  StepSpec spec = DailySpec();
  spec.start_day = 0;
  spec.steps = 364;
  spec.gateway_growth = 0.5;
  std::uint32_t hits[256];
  activity::DayBits bits;
  auto total_at = [&](int step) {
    GenerateStep(plan, spec, step, bits, hits);
    return std::accumulate(hits, hits + 256, std::uint64_t{0});
  };
  // Average a few steps at the start and end of the year.
  std::uint64_t early = 0, late = 0;
  for (int s = 0; s < 10; ++s) early += total_at(s);
  for (int s = 350; s < 360; ++s) late += total_at(s);
  EXPECT_GT(static_cast<double>(late),
            1.2 * static_cast<double>(early));  // e^0.5 ~ 1.65 expected
}

TEST(Policy, DynamicShortCyclesEntirePool) {
  BlockPlan plan = MakePlan(PolicyKind::kDynamicShort);
  plan.base.rotating = false;
  plan.base.daily_p = 0.8f;
  StepSpec spec = DailySpec();
  activity::DayBits acc{};
  for (int step = 0; step < 112; ++step) {
    activity::DayBits bits;
    GenerateStep(plan, spec, step, bits, nullptr);
    acc = activity::OrBits(acc, bits);
  }
  EXPECT_EQ(activity::PopCount(acc), 256);  // filling degree reaches the whole pool
}

TEST(Policy, RotatingPoolBandIsContiguous) {
  BlockPlan plan = MakePlan(PolicyKind::kDynamicShort);
  plan.base.rotating = true;
  plan.base.subscribers = 60;
  plan.base.daily_p = 0.5f;
  StepSpec spec = DailySpec();
  activity::DayBits bits;
  GenerateStep(plan, spec, 10, bits, nullptr);
  int n = activity::PopCount(bits);
  ASSERT_GT(n, 0);
  ASSERT_LT(n, 256);
  // A contiguous band modulo 256 has exactly one 0->1 transition.
  int transitions = 0;
  for (int h = 0; h < 256; ++h) {
    bool cur = activity::TestBit(bits, h);
    bool prev = activity::TestBit(bits, (h + 255) % 256);
    if (cur && !prev) ++transitions;
  }
  EXPECT_EQ(transitions, 1);
}

TEST(Policy, ActiveWindowRespected) {
  BlockPlan plan = MakePlan(PolicyKind::kDynamicShort);
  plan.active_from = 280;
  plan.active_until = 300;
  StepSpec spec = DailySpec();  // starts day 228
  activity::DayBits bits;
  GenerateStep(plan, spec, 0, bits, nullptr);  // day 228 < 280
  EXPECT_EQ(activity::PopCount(bits), 0);
  GenerateStep(plan, spec, 60, bits, nullptr);  // day 288: active
  EXPECT_GT(activity::PopCount(bits), 0);
  GenerateStep(plan, spec, 80, bits, nullptr);  // day 308 >= 300
  EXPECT_EQ(activity::PopCount(bits), 0);
}

TEST(Policy, ReconfigurationSwitchesParams) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.pool_size = 16;
  PolicyParams dense;
  dense.kind = PolicyKind::kDynamicShort;
  dense.pool_size = 256;
  dense.subscribers = 300;
  dense.daily_p = 0.8f;
  dense.weekend_factor = 1.0f;
  dense.hits_mu = 3.0f;
  dense.hits_sigma = 1.0f;
  plan.events[0] = BlockEvent{280, dense};

  EXPECT_EQ(plan.ParamsOn(279).kind, PolicyKind::kStatic);
  EXPECT_EQ(plan.ParamsOn(280).kind, PolicyKind::kDynamicShort);

  StepSpec spec = DailySpec();
  activity::DayBits bits;
  GenerateStep(plan, spec, 100, bits, nullptr);  // day 328: dense regime
  EXPECT_GT(activity::PopCount(bits), 100);
}

TEST(Policy, WeeklyGranularityRaisesActivationProbability) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.occupancy = 1.0f;
  StepSpec daily = DailySpec();
  StepSpec weekly = DailySpec();
  weekly.start_day = 0;
  weekly.step_days = 7;
  weekly.steps = 52;
  auto active_fraction = [&](const StepSpec& spec) {
    std::int64_t total = 0;
    activity::DayBits bits;
    for (int s = 0; s < spec.steps; ++s) {
      GenerateStep(plan, spec, s, bits, nullptr);
      total += activity::PopCount(bits);
    }
    return static_cast<double>(total) / (256.0 * spec.steps);
  };
  // Probability of >=1 active day in a week exceeds a single day's.
  EXPECT_GT(active_fraction(weekly), active_fraction(daily) * 1.3);
}

TEST(Policy, WeekendFactorReducesBusinessActivity) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.weekend_factor = 0.2f;
  plan.base.occupancy = 1.0f;
  StepSpec spec = DailySpec();  // day 228 = Monday 2015-08-17
  activity::DayBits bits;
  std::int64_t weekday_total = 0, weekend_total = 0;
  int weekdays = 0, weekends = 0;
  for (int s = 0; s < 112; ++s) {
    GenerateStep(plan, spec, s, bits, nullptr);
    int dow = (s + 0) % 7;  // day 228 is a Monday
    if (dow >= 5) {
      weekend_total += activity::PopCount(bits);
      ++weekends;
    } else {
      weekday_total += activity::PopCount(bits);
      ++weekdays;
    }
  }
  double weekday_avg = static_cast<double>(weekday_total) / weekdays;
  double weekend_avg = static_cast<double>(weekend_total) / weekends;
  EXPECT_LT(weekend_avg, weekday_avg * 0.6);
}

TEST(Policy, StaticMarginalActivityMatchesPropensityMixture) {
  // The run-persistence mechanism must preserve per-day marginals: mean
  // daily activity across a fully-occupied static block equals the mean of
  // the subscriber propensity mixture (~0.43: 20% heavy 0.75-0.95, 50%
  // medium 0.30-0.60, 30% light 0.03-0.20).
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.occupancy = 1.0f;
  plan.base.weekend_factor = 1.0f;
  StepSpec spec = DailySpec();
  spec.start_day = 0;
  spec.steps = 364;
  std::int64_t active = 0;
  activity::DayBits bits;
  for (int step = 0; step < spec.steps; ++step) {
    GenerateStep(plan, spec, step, bits, nullptr);
    active += activity::PopCount(bits);
  }
  double mean = static_cast<double>(active) / (256.0 * spec.steps);
  EXPECT_GT(mean, 0.38);
  EXPECT_LT(mean, 0.48);
}

TEST(Policy, WeekendFactorScalesWeekendMarginal) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.occupancy = 1.0f;
  plan.base.weekend_factor = 0.5f;
  StepSpec spec = DailySpec();
  spec.start_day = 0;  // Jan 1 2015, a Thursday
  spec.steps = 364;
  std::int64_t weekday = 0, weekend = 0;
  int weekdays = 0, weekends = 0;
  activity::DayBits bits;
  for (int step = 0; step < spec.steps; ++step) {
    GenerateStep(plan, spec, step, bits, nullptr);
    bool is_weekend = (timeutil::kWeeklyPeriodStart + step).IsWeekend();
    (is_weekend ? weekend : weekday) += activity::PopCount(bits);
    (is_weekend ? weekends : weekdays) += 1;
  }
  double weekday_mean = static_cast<double>(weekday) / weekdays;
  double weekend_mean = static_cast<double>(weekend) / weekends;
  EXPECT_NEAR(weekend_mean / weekday_mean, 0.5, 0.08);
}

TEST(Policy, WeeklyMarginalMatchesClosedForm) {
  // At 7-day steps, P(active in step) = 1 - (1-p)^7; its mixture mean is
  // ~0.86 for the standard propensity mixture.
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.occupancy = 1.0f;
  plan.base.weekend_factor = 1.0f;
  StepSpec spec = DailySpec();
  spec.start_day = 0;
  spec.step_days = 7;
  spec.steps = 52;
  std::int64_t active = 0;
  activity::DayBits bits;
  for (int step = 0; step < spec.steps; ++step) {
    GenerateStep(plan, spec, step, bits, nullptr);
    active += activity::PopCount(bits);
  }
  double mean = static_cast<double>(active) / (256.0 * spec.steps);
  EXPECT_GT(mean, 0.80);
  EXPECT_LT(mean, 0.92);
}

TEST(Policy, PartialEventSplitsTheBlock) {
  // Lower half keeps a sparse static policy; from day 280 the upper half
  // becomes a dense pool (the paper's Fig 7b spatial inconsistency).
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  plan.base.pool_size = 40;
  plan.base.occupancy = 1.0f;
  PolicyParams dense;
  dense.kind = PolicyKind::kDynamicShort;
  dense.pool_size = 256;
  dense.subscribers = 300;
  dense.daily_p = 0.9f;
  dense.weekend_factor = 1.0f;
  dense.hits_mu = 3.0f;
  dense.hits_sigma = 1.0f;
  plan.events[0] = BlockEvent{280, dense, /*host_first=*/128,
                              /*host_last=*/255};

  StepSpec spec = DailySpec();
  activity::DayBits bits;

  // Before the event: static activity only in the low 40 hosts.
  GenerateStep(plan, spec, 10, bits, nullptr);  // day 238
  for (int h = 128; h < 256; ++h) EXPECT_FALSE(activity::TestBit(bits, h));

  // After the event: dense fill in the upper half, static continues below.
  int upper = 0, lower_static = 0;
  for (int step = 60; step < 80; ++step) {  // days 288..307
    GenerateStep(plan, spec, step, bits, nullptr);
    for (int h = 128; h < 256; ++h) upper += activity::TestBit(bits, h);
    for (int h = 0; h < 40; ++h) lower_static += activity::TestBit(bits, h);
  }
  EXPECT_GT(upper, 20 * 128 / 2);  // dense upper half
  EXPECT_GT(lower_static, 20);     // the old practice survives below
}

TEST(Policy, PartialEventMatchesFullEventOutsideItsRange) {
  // Hosts below the split must behave exactly as if no event existed.
  BlockPlan with_split = MakePlan(PolicyKind::kStatic);
  with_split.base.pool_size = 256;
  PolicyParams dense = with_split.base;
  dense.kind = PolicyKind::kDynamicShort;
  with_split.events[0] = BlockEvent{250, dense, 128, 255};
  BlockPlan without = MakePlan(PolicyKind::kStatic);
  without.base.pool_size = 256;

  StepSpec spec = DailySpec();
  activity::DayBits a, b;
  for (int step : {40, 70, 100}) {
    GenerateStep(with_split, spec, step, a, nullptr);
    GenerateStep(without, spec, step, b, nullptr);
    for (int h = 0; h < 128; ++h) {
      // Identity permutation: static slot h maps to host h.
      EXPECT_EQ(activity::TestBit(a, h), activity::TestBit(b, h))
          << "step " << step << " host " << h;
    }
  }
}

TEST(Policy, ParamsOnHonorsMultipleEvents) {
  BlockPlan plan = MakePlan(PolicyKind::kStatic);
  PolicyParams p1 = plan.base;
  p1.kind = PolicyKind::kDynamicShort;
  PolicyParams p2 = plan.base;
  p2.kind = PolicyKind::kUnused;
  plan.events[0] = BlockEvent{100, p1};
  plan.events[1] = BlockEvent{200, p2};
  EXPECT_EQ(plan.ParamsOn(50).kind, PolicyKind::kStatic);
  EXPECT_EQ(plan.ParamsOn(150).kind, PolicyKind::kDynamicShort);
  EXPECT_EQ(plan.ParamsOn(250).kind, PolicyKind::kUnused);
}

}  // namespace
}  // namespace ipscope::sim
