// fault::Schedule grammar and fault::Injector determinism tests.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/schedule.h"
#include "io/store_io.h"
#include "obs/registry.h"

namespace ipscope::fault {
namespace {

Schedule MustParse(const std::string& text, std::uint64_t seed = 1) {
  Schedule schedule;
  schedule.seed = seed;
  std::string error;
  EXPECT_TRUE(ParseSchedule(text, &schedule, &error)) << error;
  return schedule;
}

TEST(FaultSchedule, ParsesTheDocumentedGrammar) {
  auto s = MustParse("drop-days=2, truncate-store=0.6; drop-snapshots=1", 99);
  ASSERT_EQ(s.faults.size(), 3u);
  EXPECT_EQ(s.seed, 99u);  // parsing preserves the caller's seed
  EXPECT_EQ(s.faults[0].kind, FaultKind::kDropDays);
  EXPECT_DOUBLE_EQ(s.faults[0].value, 2.0);
  EXPECT_EQ(s.faults[1].kind, FaultKind::kTruncateStore);
  EXPECT_DOUBLE_EQ(s.faults[1].value, 0.6);
  EXPECT_EQ(s.faults[2].kind, FaultKind::kDropSnapshots);
  EXPECT_DOUBLE_EQ(s.faults[2].value, 1.0);
  // Canonical rendering round-trips.
  auto again = MustParse(s.ToString());
  ASSERT_EQ(again.faults.size(), s.faults.size());
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    EXPECT_EQ(again.faults[i].kind, s.faults[i].kind);
    EXPECT_DOUBLE_EQ(again.faults[i].value, s.faults[i].value);
  }
}

TEST(FaultSchedule, ValuelessEntriesUseDefaults) {
  auto s = MustParse("flip-bytes,dup-rows");
  ASSERT_EQ(s.faults.size(), 2u);
  EXPECT_DOUBLE_EQ(s.faults[0].value, 1.0);
  EXPECT_DOUBLE_EQ(s.faults[1].value, 0.1);
}

TEST(FaultSchedule, EmptyStringIsNoFaults) {
  auto s = MustParse("");
  EXPECT_TRUE(s.faults.empty());
  EXPECT_FALSE(s.Has(FaultKind::kDropDays));
  EXPECT_DOUBLE_EQ(s.TotalValue(FaultKind::kDropDays), 0.0);
}

TEST(FaultSchedule, RepeatedEntriesAccumulate) {
  auto s = MustParse("drop-days=1,drop-days=2");
  EXPECT_DOUBLE_EQ(s.TotalValue(FaultKind::kDropDays), 3.0);
}

TEST(FaultSchedule, RejectsMalformedInput) {
  Schedule s;
  std::string error;
  EXPECT_FALSE(ParseSchedule("explode-disk=1", &s, &error));
  EXPECT_NE(error.find("unknown fault"), std::string::npos);
  EXPECT_FALSE(ParseSchedule("drop-days=-1", &s, &error));
  EXPECT_FALSE(ParseSchedule("drop-days=1.5", &s, &error));
  EXPECT_FALSE(ParseSchedule("drop-days=abc", &s, &error));
  EXPECT_FALSE(ParseSchedule("truncate-store=0", &s, &error));
  EXPECT_FALSE(ParseSchedule("truncate-store=1.5", &s, &error));
  EXPECT_FALSE(ParseSchedule("dup-rows=2", &s, &error));
}

TEST(FaultSchedule, CrashAtTakesARegisteredPointName) {
  // Both separators are legal; ToString canonicalizes on '='.
  auto s = MustParse("crash-at:pre-manifest-rename,drop-days=1");
  ASSERT_EQ(s.faults.size(), 2u);
  EXPECT_EQ(s.faults[0].kind, FaultKind::kCrashAt);
  EXPECT_EQ(s.faults[0].text, "pre-manifest-rename");
  EXPECT_EQ(s.ToString(), "crash-at=pre-manifest-rename,drop-days=1");
  auto again = MustParse(s.ToString());
  EXPECT_EQ(again.faults[0].text, "pre-manifest-rename");

  Schedule bad;
  std::string error;
  EXPECT_FALSE(ParseSchedule("crash-at:not-a-point", &bad, &error));
  // The error enumerates the registered points so typos are self-serve.
  EXPECT_NE(error.find("unknown crash point"), std::string::npos) << error;
  EXPECT_NE(error.find("post-commit"), std::string::npos) << error;
  EXPECT_FALSE(ParseSchedule("crash-at", &bad, &error));
  EXPECT_FALSE(ParseSchedule("crash-at=", &bad, &error));
}

activity::ActivityStore DenseStore(int days, int blocks) {
  activity::ActivityStore store{days};
  for (int b = 0; b < blocks; ++b) {
    activity::ActivityMatrix& m =
        store.GetOrCreate(static_cast<net::BlockKey>(b * 17 + 3));
    for (int d = 0; d < days; ++d) m.Set(d, (b + d) % 256);
  }
  return store;
}

TEST(FaultInjector, DropDaysClearsCoverageAndRows) {
  auto store = DenseStore(30, 5);
  Injector injector{MustParse("drop-days=3,drop-day=7,drop-day=7", 42)};
  Injector::Report report;
  auto dropped = injector.ApplyToStore(store, &report);
  // 3 random days plus the explicit day 7 (deduplicated) — day 7 may also
  // be one of the random picks, so 3 or 4 distinct days.
  EXPECT_GE(dropped.size(), 3u);
  EXPECT_LE(dropped.size(), 4u);
  EXPECT_TRUE(std::is_sorted(dropped.begin(), dropped.end()));
  EXPECT_TRUE(std::binary_search(dropped.begin(), dropped.end(), 7));
  EXPECT_EQ(store.MissingDays(), static_cast<int>(dropped.size()));
  EXPECT_EQ(report.dropped_days, dropped);
  for (int d : dropped) {
    EXPECT_FALSE(store.DayCovered(d));
    store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
      EXPECT_EQ(m.ActiveOnDay(d), 0);
    });
  }
  // The data-quality gauge tracks the store state.
  EXPECT_EQ(obs::GlobalRegistry().GetGauge("activity.days_missing").value(),
            static_cast<double>(dropped.size()));
}

TEST(FaultInjector, SameSeedSamePerturbation) {
  auto schedule = MustParse("drop-days=4,flip-bytes=6,truncate-store=0.7", 7);
  auto store_a = DenseStore(40, 8);
  auto store_b = DenseStore(40, 8);
  Injector a{schedule}, b{schedule};
  EXPECT_EQ(a.ApplyToStore(store_a), b.ApplyToStore(store_b));

  std::stringstream buf;
  io::SaveStore(store_a, buf);
  std::string bytes_a = buf.str();
  std::string bytes_b = bytes_a;
  a.ApplyToBytes(bytes_a);
  b.ApplyToBytes(bytes_b);
  EXPECT_EQ(bytes_a, bytes_b);

  EXPECT_EQ(a.PickDistinct(100, 10, 0x1234), b.PickDistinct(100, 10, 0x1234));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  auto s1 = MustParse("drop-days=5", 1);
  auto s2 = MustParse("drop-days=5", 2);
  EXPECT_NE(Injector{s1}.PickDistinct(365, 5, 0xDA75),
            Injector{s2}.PickDistinct(365, 5, 0xDA75));
}

TEST(FaultInjector, PickDistinctIsDistinctSortedInRange) {
  Injector injector{MustParse("", 9)};
  auto picked = injector.PickDistinct(50, 20, 0xAB);
  ASSERT_EQ(picked.size(), 20u);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  EXPECT_EQ(std::adjacent_find(picked.begin(), picked.end()), picked.end());
  EXPECT_GE(picked.front(), 0);
  EXPECT_LT(picked.back(), 50);
  // Asking for more than exist yields everything.
  EXPECT_EQ(injector.PickDistinct(5, 99, 0xAB).size(), 5u);
}

TEST(FaultInjector, TruncateAndFlipRespectFormatBoundaries) {
  Injector injector{MustParse("truncate-store=0.5,flip-bytes=8", 21)};
  std::string bytes(200, '\x5A');
  std::string original = bytes;
  Injector::Report report;
  injector.ApplyToBytes(bytes, &report);
  EXPECT_EQ(bytes.size(), 100u);
  EXPECT_EQ(report.truncated_to_bytes, 100u);
  ASSERT_EQ(report.flipped_offsets.size(), 8u);
  for (std::uint64_t off : report.flipped_offsets) {
    EXPECT_GE(off, 8u);  // the magic is never flipped
    EXPECT_LT(off, 100u);
  }
  EXPECT_NE(bytes, original.substr(0, 100));
}

TEST(FaultInjector, SnapshotDropsAreCappedBelowCampaignSize) {
  Injector injector{MustParse("drop-snapshots=50", 3)};
  Injector::Report report;
  auto killed = injector.PickSnapshotsToDrop(8, &report);
  EXPECT_EQ(killed.size(), 7u);  // never kills the whole campaign
  EXPECT_TRUE(std::is_sorted(killed.begin(), killed.end()));
  EXPECT_LT(killed.back(), 8);
}

TEST(FaultInjector, DuplicateRowsAppendsCopiesDeterministically) {
  std::vector<int> rows(1000);
  for (int i = 0; i < 1000; ++i) rows[i] = i;
  Injector injector{MustParse("dup-rows=0.25", 5)};
  Injector::Report report;
  std::uint64_t n = injector.DuplicateRows(rows, &report);
  EXPECT_EQ(rows.size(), 1000 + n);
  EXPECT_EQ(report.duplicated_rows, n);
  // ~250 expected; generous determinism-friendly bounds.
  EXPECT_GT(n, 150u);
  EXPECT_LT(n, 350u);
  // Every appended row is a copy of an original.
  for (std::size_t i = 1000; i < rows.size(); ++i) {
    EXPECT_GE(rows[i], 0);
    EXPECT_LT(rows[i], 1000);
  }
  // Same schedule, fresh injector: identical duplication.
  std::vector<int> rows2(1000);
  for (int i = 0; i < 1000; ++i) rows2[i] = i;
  Injector{MustParse("dup-rows=0.25", 5)}.DuplicateRows(rows2);
  EXPECT_EQ(rows, rows2);
}

TEST(FaultInjector, CountsEveryInjectedFault) {
  auto& counter =
      obs::GlobalRegistry().GetCounter("fault.injected_total");
  std::uint64_t before = counter.value();
  auto store = DenseStore(20, 3);
  Injector injector{MustParse("drop-days=2,truncate-store=0.5,flip-bytes=3", 8)};
  Injector::Report report;
  injector.ApplyToStore(store, &report);
  std::string bytes(100, 'x');
  injector.ApplyToBytes(bytes, &report);
  EXPECT_EQ(report.faults_injected, 2u + 1u + 3u);
  EXPECT_EQ(counter.value() - before, report.faults_injected);
}

}  // namespace
}  // namespace ipscope::fault
