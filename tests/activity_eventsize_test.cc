#include "activity/eventsize.h"

#include <gtest/gtest.h>

#include <vector>

#include "rng/rng.h"

namespace ipscope::activity {
namespace {

TEST(EventSize, EmptyReferenceGivesMaskZero) {
  net::Ipv4Set empty;
  EXPECT_EQ(SmallestIsolatingMask(empty, net::IPv4Addr{12345u}), 0);
}

TEST(EventSize, SingleNeighborConstrains) {
  // Reference member at 0b...0100; event at 0b...0101 shares 31 leading
  // bits, so the isolating mask must be /32.
  net::Ipv4Set ref = net::Ipv4Set::FromValues({4});
  EXPECT_EQ(SmallestIsolatingMask(ref, net::IPv4Addr{5u}), 32);
  // Event at 6 = 0b110 vs member 4 = 0b100: common prefix 30 bits -> /31.
  EXPECT_EQ(SmallestIsolatingMask(ref, net::IPv4Addr{6u}), 31);
  // Event far away: 0x80000000 differs in the first bit -> /1.
  EXPECT_EQ(SmallestIsolatingMask(ref, net::IPv4Addr{0x80000000u}), 1);
}

TEST(EventSize, BothNeighborsConstrain) {
  net::Ipv4Set ref = net::Ipv4Set::FromValues({0x0A000000u, 0x0A000100u});
  // Event inside 10.0.0.0/24 next to both: floor is 10.0.0.0 (cpl 24+)
  // and ceiling 10.0.1.0.
  int mask = SmallestIsolatingMask(ref, net::IPv4Addr{0x0A000080u});
  // 0x0A000080 ^ 0x0A000000 = 0x80 -> cpl = 24, so mask >= 25;
  // 0x0A000080 ^ 0x0A000100 = 0x180 -> cpl = 23 -> mask >= 24.
  EXPECT_EQ(mask, 25);
}

// Brute-force oracle: smallest mask m such that the aligned prefix of
// length m containing addr has no member of ref.
int OracleMask(const net::Ipv4Set& ref, net::IPv4Addr addr) {
  for (int m = 0; m <= 32; ++m) {
    net::Prefix p{addr, m};
    if (!ref.IntersectsRange(p.first().value(), p.last().value())) return m;
  }
  return 33;  // impossible if addr not in ref
}

TEST(EventSize, AgreesWithBruteForceOracle) {
  rng::Xoshiro256 g{2024};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint32_t> members;
    for (int i = 0; i < 500; ++i) {
      // Clustered members to exercise nearby-neighbour cases.
      members.push_back(0x0A000000u + g.NextBounded(4096));
    }
    net::Ipv4Set ref = net::Ipv4Set::FromValues(members);
    for (int probe = 0; probe < 500; ++probe) {
      net::IPv4Addr addr{0x0A000000u + g.NextBounded(8192)};
      if (ref.Contains(addr)) continue;
      EXPECT_EQ(SmallestIsolatingMask(ref, addr), OracleMask(ref, addr))
          << addr.ToString();
    }
  }
}

TEST(EventSize, WholeBlockUpEventTagsLargeMask) {
  // Window 0: nothing active anywhere. Window 1: whole /24 appears.
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(0x0A0000);
  for (int h = 0; h < 256; ++h) m.Set(1, h);
  auto hist = EventSizes(store, 0, 1, 1, 2, /*up=*/true);
  EXPECT_EQ(hist.total, 256u);
  // No window-0 activity at all: every event is isolated by /0.
  EXPECT_EQ(hist.by_mask[0], 256u);
  EXPECT_DOUBLE_EQ(hist.FractionInMaskRange(0, 16), 1.0);
}

TEST(EventSize, IndividualChurnTagsSlash32) {
  // A dense stable block where exactly one address flips up.
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(0x0A0000);
  for (int h = 0; h < 256; ++h) {
    if (h != 128) m.Set(0, h);
    m.Set(1, h);
  }
  auto hist = EventSizes(store, 0, 1, 1, 2, /*up=*/true);
  EXPECT_EQ(hist.total, 1u);
  EXPECT_EQ(hist.by_mask[32], 1u);
  EXPECT_DOUBLE_EQ(hist.FractionInMaskRange(29, 32), 1.0);
}

TEST(EventSize, DownEventsSymmetric) {
  // Whole block disappears: down events isolated by window-1 emptiness.
  ActivityStore store{2};
  ActivityMatrix& m = store.GetOrCreate(0x0A0000);
  for (int h = 0; h < 256; ++h) m.Set(0, h);
  auto hist = EventSizes(store, 0, 1, 1, 2, /*up=*/false);
  EXPECT_EQ(hist.total, 256u);
  EXPECT_EQ(hist.by_mask[0], 256u);
}

TEST(EventSize, FractionInMaskRangeEmptyHistogram) {
  EventSizeHistogram hist;
  EXPECT_DOUBLE_EQ(hist.FractionInMaskRange(0, 32), 0.0);
}

}  // namespace
}  // namespace ipscope::activity
