#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/binning.h"
#include "stats/capture_recapture.h"
#include "stats/histogram.h"
#include "stats/linreg.h"
#include "stats/quantile.h"
#include "stats/summary.h"

namespace ipscope::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MovingAverage) {
  std::vector<double> series{1, 2, 3, 4, 5};
  auto ma = MovingAverage(series, 3);
  ASSERT_EQ(ma.size(), 3u);
  EXPECT_DOUBLE_EQ(ma[0], 2.0);
  EXPECT_DOUBLE_EQ(ma[2], 4.0);
  EXPECT_TRUE(MovingAverage(series, 6).empty());
  EXPECT_TRUE(MovingAverage(series, 0).empty());
}

TEST(Summary, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> yneg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, yneg), -1.0, 1e-12);
  std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(x, flat), 0.0);
}

TEST(Summary, GiniKnownValues) {
  // Perfect equality.
  EXPECT_NEAR(Gini({5, 5, 5, 5}), 0.0, 1e-12);
  // Total concentration in one of n elements: (n-1)/n.
  EXPECT_NEAR(Gini({0, 0, 0, 10}), 0.75, 1e-12);
  // Classic two-element split 1:3 -> Gini 0.25.
  EXPECT_NEAR(Gini({1, 3}), 0.25, 1e-12);
  // Degenerate inputs.
  EXPECT_EQ(Gini({}), 0.0);
  EXPECT_EQ(Gini({7}), 0.0);
  EXPECT_EQ(Gini({0, 0, 0}), 0.0);
}

TEST(Summary, GiniScaleInvariant) {
  std::vector<double> base{1, 2, 3, 10, 20};
  std::vector<double> scaled{100, 200, 300, 1000, 2000};
  EXPECT_NEAR(Gini(base), Gini(scaled), 1e-12);
  EXPECT_GT(Gini(base), 0.0);
  EXPECT_LT(Gini(base), 1.0);
}

TEST(Quantile, LinearInterpolation) {
  std::vector<double> sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 10);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 40);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 25);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0 / 3.0), 20);
}

TEST(Quantile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

// Regression: an empty sample used to report 0.0, indistinguishable from a
// genuine zero quantile (e.g. a 0% churn median). The contract is now NaN.
TEST(Quantile, EmptyInputIsNaN) {
  EXPECT_TRUE(std::isnan(Median({})));
  EXPECT_TRUE(std::isnan(QuantileSorted(std::vector<double>{}, 0.5)));
  EXPECT_TRUE(std::isnan(QuantileSorted(std::vector<double>{}, 0.0)));
  EXPECT_TRUE(std::isnan(QuantileSorted(std::vector<double>{}, 1.0)));
  auto qs = Quantiles({}, std::vector<double>{0.25, 0.75});
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_TRUE(std::isnan(qs[0]));
  EXPECT_TRUE(std::isnan(qs[1]));
}

TEST(Quantile, EmpiricalCdf) {
  auto cdf = EmpiricalCdf({1, 1, 2, 3});
  ASSERT_EQ(cdf.size(), 3u);  // duplicates collapsed
  EXPECT_DOUBLE_EQ(cdf[0].x, 1);
  EXPECT_DOUBLE_EQ(cdf[0].f, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].x, 3);
  EXPECT_DOUBLE_EQ(cdf[2].f, 1.0);
}

TEST(Quantile, CdfAt) {
  std::vector<double> sorted{1, 2, 2, 5};
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 2), 0.75);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 10), 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 1.0, 10};
  h.Add(0.05);
  h.Add(0.95);
  h.Add(1.5);   // clamps into last bin
  h.Add(-0.5);  // clamps into first bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinLow(5), 0.5);
  EXPECT_DOUBLE_EQ(h.BinHigh(5), 0.6);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 10.0, 5};
  h.Add(1.0, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, LogBin) {
  EXPECT_EQ(LogBin(0.5, 10.0), -1);
  EXPECT_EQ(LogBin(1.0, 10.0), 0);
  EXPECT_EQ(LogBin(9.9, 10.0), 0);
  EXPECT_EQ(LogBin(10.0, 10.0), 1);
  EXPECT_EQ(LogBin(12345.0, 10.0), 4);
}

TEST(Histogram, LogLogGrid) {
  LogLogGrid grid{10.0, 4, 3};
  grid.Add(5, 2);       // cell (0, 0)
  grid.Add(500, 50);    // cell (2, 1)
  grid.Add(1e9, 1e9);   // clamped to (3, 2)
  EXPECT_EQ(grid.count(0, 0), 1u);
  EXPECT_EQ(grid.count(2, 1), 1u);
  EXPECT_EQ(grid.count(3, 2), 1u);
  EXPECT_EQ(grid.total(), 3u);
  EXPECT_DOUBLE_EQ(grid.CellLowX(2), 100.0);
}

TEST(LinReg, PerfectLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.At(10), 21.0, 1e-12);
}

TEST(LinReg, DegenerateInputs) {
  EXPECT_EQ(FitLinear({}, {}).slope, 0.0);
  std::vector<double> x{1};
  std::vector<double> y{2};
  EXPECT_EQ(FitLinear(x, y).slope, 0.0);
  std::vector<double> xc{2, 2, 2};
  std::vector<double> yc{1, 2, 3};
  EXPECT_EQ(FitLinear(xc, yc).slope, 0.0);  // constant x
}

TEST(CaptureRecapture, ChapmanKnownValue) {
  // n1=100 marked, n2=100 caught, 25 recaptured:
  // N* = 101*101/26 - 1 = 391.3
  auto est = Chapman(100, 100, 25);
  EXPECT_NEAR(est.population, 101.0 * 101.0 / 26.0 - 1.0, 1e-9);
  EXPECT_GT(est.std_error, 0.0);
}

TEST(CaptureRecapture, ChapmanPerfectOverlap) {
  // Full recapture: estimate equals the common population size.
  auto est = Chapman(500, 500, 500);
  EXPECT_NEAR(est.population, 500.0, 1.0);
}

TEST(CaptureRecapture, ChapmanRecoverySimulation) {
  // Draw two independent samples of a 10000-strong population and check
  // the estimate lands near the truth.
  const std::uint64_t population = 10000;
  const double p1 = 0.2, p2 = 0.3;
  auto n1 = static_cast<std::uint64_t>(population * p1);
  auto n2 = static_cast<std::uint64_t>(population * p2);
  auto m = static_cast<std::uint64_t>(population * p1 * p2);
  auto est = Chapman(n1, n2, m);
  EXPECT_NEAR(est.population, static_cast<double>(population),
              static_cast<double>(population) * 0.02);
}

TEST(CaptureRecapture, SchnabelMatchesChapmanOnTwoOccasions) {
  std::vector<std::uint64_t> catches{2000, 3000};
  std::vector<std::uint64_t> recaptures{0, 600};
  std::vector<std::uint64_t> marked{0, 2000};
  auto est = Schnabel(catches, recaptures, marked);
  // Schnabel: 3000*2000 / (600+1) ~ 9983 for a 10000 population.
  EXPECT_NEAR(est.population, 10000.0, 200.0);
}

TEST(CaptureRecapture, SchnabelRejectsMismatchedSpans) {
  std::vector<std::uint64_t> a{1, 2};
  std::vector<std::uint64_t> b{1};
  EXPECT_EQ(Schnabel(a, b, a).population, 0.0);
}

TEST(Binning, LogNormalize) {
  EXPECT_DOUBLE_EQ(LogNormalize(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(LogNormalize(100, 100), 1.0);
  double mid = LogNormalize(10, 100);
  EXPECT_GT(mid, 0.4);  // log compression pulls small values up
  EXPECT_LT(mid, 0.7);
  EXPECT_DOUBLE_EQ(LogNormalize(5, 0), 0.0);
}

TEST(Binning, BinOfBoundaries) {
  EXPECT_EQ(BinOf(0.0, 10), 0);
  EXPECT_EQ(BinOf(0.09, 10), 0);
  EXPECT_EQ(BinOf(0.1, 10), 1);
  EXPECT_EQ(BinOf(1.0, 10), 9);  // 1.0 in last bin
}

TEST(Binning, FeatureCube) {
  FeatureCube cube{10};
  cube.Add(0.05, 0.05, 0.05);
  cube.Add(0.95, 0.95, 0.95, 3);
  EXPECT_EQ(cube.count(0, 0, 0), 1u);
  EXPECT_EQ(cube.count(9, 9, 9), 3u);
  EXPECT_EQ(cube.total(), 4u);

  auto marginal = cube.Marginal01();
  EXPECT_EQ(marginal[0], 1u);
  EXPECT_EQ(marginal[9 * 10 + 9], 3u);

  auto means = cube.MeanFeature2Per01();
  EXPECT_NEAR(means[0], 0.05, 1e-9);
  EXPECT_NEAR(means[9 * 10 + 9], 0.95, 1e-9);
  EXPECT_EQ(means[5 * 10 + 5], -1.0);  // empty cell
}

}  // namespace
}  // namespace ipscope::stats
