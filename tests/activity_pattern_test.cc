#include "activity/pattern.h"

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace ipscope::activity {
namespace {

constexpr int kDays = 112;

// Synthetic matrices mimicking the paper's Fig 6 patterns.

ActivityMatrix StaticSparse() {
  ActivityMatrix m{kDays};
  rng::Xoshiro256 g{1};
  // 30 scattered addresses, each active ~40% of days.
  for (int i = 0; i < 30; ++i) {
    int host = static_cast<int>(g.NextBounded(256));
    for (int d = 0; d < kDays; ++d) {
      if (g.NextBool(0.4)) m.Set(d, host);
    }
  }
  return m;
}

ActivityMatrix DenseShortLease() {
  ActivityMatrix m{kDays};
  rng::Xoshiro256 g{2};
  // Every day an independent ~60% of the pool is active.
  for (int d = 0; d < kDays; ++d) {
    for (int h = 0; h < 256; ++h) {
      if (g.NextBool(0.6)) m.Set(d, h);
    }
  }
  return m;
}

ActivityMatrix LongLease() {
  ActivityMatrix m{kDays};
  rng::Xoshiro256 g{3};
  // Each address held by one subscriber for ~56 days; persistent activity
  // levels per occupant.
  for (int h = 0; h < 256; ++h) {
    for (int epoch = 0; epoch < 2; ++epoch) {
      double p = g.NextDouble() < 0.3 ? 0.9 : 0.25;
      for (int d = epoch * 56; d < (epoch + 1) * 56; ++d) {
        if (g.NextBool(p)) m.Set(d, h);
      }
    }
  }
  return m;
}

ActivityMatrix Gateway() {
  ActivityMatrix m{kDays};
  for (int d = 0; d < kDays; ++d) {
    for (int h = 0; h < 256; ++h) m.Set(d, h);
  }
  return m;
}

TEST(Pattern, FeaturesOfEmptyMatrix) {
  ActivityMatrix m{kDays};
  auto f = ComputeFeatures(m);
  EXPECT_EQ(f.filling_degree, 0);
  EXPECT_EQ(ClassifyPattern(f), BlockPattern::kInactive);
}

TEST(Pattern, GatewayFeatures) {
  auto f = ComputeFeatures(Gateway());
  EXPECT_EQ(f.filling_degree, 256);
  EXPECT_DOUBLE_EQ(f.stu, 1.0);
  EXPECT_DOUBLE_EQ(f.daily_fill, 1.0);
  EXPECT_DOUBLE_EQ(f.turnover, 0.0);
  EXPECT_EQ(ClassifyPattern(f), BlockPattern::kFullyUtilized);
}

TEST(Pattern, StaticSparseClassification) {
  auto f = ComputeFeatures(StaticSparse());
  EXPECT_LT(f.filling_degree, 64);
  EXPECT_EQ(ClassifyPattern(f), BlockPattern::kStaticSparse);
}

TEST(Pattern, DenseShortLeaseClassification) {
  auto f = ComputeFeatures(DenseShortLease());
  EXPECT_GT(f.filling_degree, 250);
  // Re-dealt pool: every address gets a near-identical activity share.
  EXPECT_LT(f.host_days_cv, 0.25);
  EXPECT_EQ(ClassifyPattern(f), BlockPattern::kDynamicShortLease);
}

TEST(Pattern, LongLeaseClassification) {
  auto f = ComputeFeatures(LongLease());
  EXPECT_GT(f.filling_degree, 100);
  // Heterogeneous occupants spread per-address activity widely.
  EXPECT_GT(f.host_days_cv, 0.25);
  EXPECT_EQ(ClassifyPattern(f), BlockPattern::kDynamicLongLease);
}

TEST(Pattern, FeatureRanges) {
  for (const ActivityMatrix& m :
       {StaticSparse(), DenseShortLease(), LongLease(), Gateway()}) {
    auto f = ComputeFeatures(m);
    EXPECT_GE(f.stu, 0.0);
    EXPECT_LE(f.stu, 1.0);
    EXPECT_GE(f.daily_fill, 0.0);
    EXPECT_LE(f.daily_fill, 1.0 + 1e-9);
    EXPECT_GE(f.turnover, 0.0);
    EXPECT_LE(f.turnover, 1.0);
    EXPECT_GE(f.mean_host_days, 0.0);
    EXPECT_LE(f.mean_host_days, kDays);
    EXPECT_GE(f.host_days_cv, 0.0);
  }
}

TEST(Pattern, NamesAreStable) {
  EXPECT_STREQ(PatternName(BlockPattern::kInactive), "inactive");
  EXPECT_STREQ(PatternName(BlockPattern::kStaticSparse), "static-sparse");
  EXPECT_STREQ(PatternName(BlockPattern::kFullyUtilized), "fully-utilized");
}

}  // namespace
}  // namespace ipscope::activity
