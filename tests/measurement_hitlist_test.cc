#include "measurement/hitlist.h"

#include <gtest/gtest.h>

#include "cdn/observatory.h"
#include "sim/world.h"

namespace ipscope::measurement {
namespace {

const activity::ActivityStore& TestStore() {
  static const activity::ActivityStore store = [] {
    sim::WorldConfig config;
    config.target_client_blocks = 400;
    static sim::World world{config};
    return cdn::Observatory::Daily(world).BuildStore();
  }();
  return store;
}

TEST(Hitlist, OneEntryPerActiveBlock) {
  auto hitlist =
      BuildHitlist(TestStore(), 0, 56, HitlistStrategy::kMostActive);
  EXPECT_EQ(hitlist.size(), TestStore().CountActiveBlocks(0, 56));
  for (const HitlistEntry& entry : hitlist) {
    EXPECT_EQ(net::BlockKeyOf(entry.address), entry.key);
  }
}

TEST(Hitlist, MostActivePicksTheBusiestAddress) {
  activity::ActivityStore store{10};
  activity::ActivityMatrix& m = store.GetOrCreate(7);
  for (int d = 0; d < 10; ++d) m.Set(d, 42);  // every day
  m.Set(0, 99);                               // once
  auto hitlist = BuildHitlist(store, 0, 10, HitlistStrategy::kMostActive);
  ASSERT_EQ(hitlist.size(), 1u);
  EXPECT_EQ(hitlist[0].address.value() & 0xFF, 42u);
}

TEST(Hitlist, MostRecentPicksLastActiveDay) {
  activity::ActivityStore store{10};
  activity::ActivityMatrix& m = store.GetOrCreate(7);
  m.Set(2, 5);
  m.Set(9, 200);
  auto hitlist = BuildHitlist(store, 0, 10, HitlistStrategy::kMostRecent);
  ASSERT_EQ(hitlist.size(), 1u);
  EXPECT_EQ(hitlist[0].address.value() & 0xFF, 200u);
}

TEST(Hitlist, LowestActiveAndFixedOffset) {
  activity::ActivityStore store{4};
  activity::ActivityMatrix& m = store.GetOrCreate(7);
  m.Set(0, 30);
  m.Set(1, 20);
  auto lowest = BuildHitlist(store, 0, 4, HitlistStrategy::kLowestActive);
  ASSERT_EQ(lowest.size(), 1u);
  EXPECT_EQ(lowest[0].address.value() & 0xFF, 20u);
  auto fixed = BuildHitlist(store, 0, 4, HitlistStrategy::kFixedOffset);
  ASSERT_EQ(fixed.size(), 1u);
  EXPECT_EQ(fixed[0].address.value() & 0xFF, 1u);
}

TEST(Hitlist, EvaluateCountsFutureResponsiveness) {
  activity::ActivityStore store{10};
  activity::ActivityMatrix& m = store.GetOrCreate(7);
  m.Set(0, 9);   // active early...
  m.Set(8, 9);   // ...and again later
  activity::ActivityMatrix& m2 = store.GetOrCreate(8);
  m2.Set(0, 4);  // active early only
  auto hitlist = BuildHitlist(store, 0, 5, HitlistStrategy::kMostActive);
  ASSERT_EQ(hitlist.size(), 2u);
  auto score = EvaluateHitlist(store, hitlist, 5, 10);
  EXPECT_EQ(score.entries, 2u);
  EXPECT_EQ(score.responsive, 1u);
  EXPECT_DOUBLE_EQ(score.HitRate(), 0.5);
}

TEST(Hitlist, ActivityInformedBeatsNaiveOnRealWorld) {
  const auto& store = TestStore();
  // Train on the first 8 weeks, evaluate on the last 4.
  auto most_active =
      BuildHitlist(store, 0, 56, HitlistStrategy::kMostActive);
  auto fixed = BuildHitlist(store, 0, 56, HitlistStrategy::kFixedOffset);
  auto ma_score = EvaluateHitlist(store, most_active, 84, 112);
  auto fx_score = EvaluateHitlist(store, fixed, 84, 112);
  EXPECT_GT(ma_score.HitRate(), 0.6);
  EXPECT_GT(ma_score.HitRate(), fx_score.HitRate() + 0.1);
}

TEST(Hitlist, StrategyNames) {
  EXPECT_STREQ(HitlistStrategyName(HitlistStrategy::kMostActive),
               "most-active");
  EXPECT_STREQ(HitlistStrategyName(HitlistStrategy::kFixedOffset),
               "fixed-.1");
}

}  // namespace
}  // namespace ipscope::measurement
