#include "netbase/ip_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/rng.h"

namespace ipscope::net {
namespace {

TEST(Ipv4Set, EmptySet) {
  Ipv4Set set;
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Count(), 0u);
  EXPECT_EQ(set.CountBlocks(), 0u);
  EXPECT_FALSE(set.Contains(IPv4Addr{1, 2, 3, 4}));
  EXPECT_FALSE(set.Floor(IPv4Addr{1, 2, 3, 4}).has_value());
  EXPECT_FALSE(set.Ceiling(IPv4Addr{1, 2, 3, 4}).has_value());
}

TEST(Ipv4Set, SingleAddress) {
  Ipv4Set set;
  set.Add(IPv4Addr{10, 0, 0, 5});
  EXPECT_EQ(set.Count(), 1u);
  EXPECT_TRUE(set.Contains(IPv4Addr{10, 0, 0, 5}));
  EXPECT_FALSE(set.Contains(IPv4Addr{10, 0, 0, 4}));
  EXPECT_EQ(set.CountBlocks(), 1u);
}

TEST(Ipv4Set, AdjacentAddressesCoalesce) {
  Ipv4Set set;
  set.Add(IPv4Addr{10u});
  set.Add(IPv4Addr{12u});
  set.Add(IPv4Addr{11u});
  EXPECT_EQ(set.IntervalCount(), 1u);
  EXPECT_EQ(set.Count(), 3u);
}

TEST(Ipv4Set, AddPrefix) {
  Ipv4Set set;
  set.Add(Prefix{IPv4Addr{192, 0, 2, 0}, 24});
  EXPECT_EQ(set.Count(), 256u);
  EXPECT_EQ(set.CountBlocks(), 1u);
  EXPECT_TRUE(set.Contains(IPv4Addr{192, 0, 2, 128}));
}

TEST(Ipv4Set, OverlappingRangesMerge) {
  Ipv4Set set;
  set.AddRange(100, 200);
  set.AddRange(150, 250);
  set.AddRange(251, 300);  // adjacent
  EXPECT_EQ(set.IntervalCount(), 1u);
  EXPECT_EQ(set.Count(), 201u);
}

TEST(Ipv4Set, AddRangeAtAddressSpaceEnd) {
  Ipv4Set set;
  set.AddRange(0xFFFFFFF0u, 0xFFFFFFFFu);
  set.Add(IPv4Addr{0xFFFFFFEFu});
  EXPECT_EQ(set.Count(), 17u);
  EXPECT_TRUE(set.Contains(IPv4Addr{0xFFFFFFFFu}));
}

TEST(Ipv4Set, FromValuesDeduplicates) {
  Ipv4Set set = Ipv4Set::FromValues({5, 3, 5, 4, 100});
  EXPECT_EQ(set.Count(), 4u);
  EXPECT_EQ(set.IntervalCount(), 2u);
}

TEST(Ipv4Set, UnionIntersectSubtract) {
  Ipv4Set a = Ipv4Set::FromValues({1, 2, 3, 10, 11, 20});
  Ipv4Set b = Ipv4Set::FromValues({3, 4, 11, 12, 30});

  Ipv4Set u = a.Union(b);
  EXPECT_EQ(u.Count(), 9u);  // {1,2,3,4,10,11,12,20,30}

  Ipv4Set i = a.Intersect(b);
  EXPECT_EQ(i.Count(), 2u);  // {3, 11}
  EXPECT_EQ(a.CountIntersect(b), 2u);

  Ipv4Set d = a.Subtract(b);
  EXPECT_EQ(d.Count(), 4u);  // {1,2,10,20}
  EXPECT_TRUE(d.Contains(IPv4Addr{1u}));
  EXPECT_FALSE(d.Contains(IPv4Addr{3u}));
}

TEST(Ipv4Set, FloorCeiling) {
  Ipv4Set set = Ipv4Set::FromValues({10, 11, 12, 100});
  EXPECT_EQ(set.Floor(IPv4Addr{11u})->value(), 11u);
  EXPECT_EQ(set.Floor(IPv4Addr{50u})->value(), 12u);
  EXPECT_EQ(set.Floor(IPv4Addr{9u}), std::nullopt);
  EXPECT_EQ(set.Ceiling(IPv4Addr{11u})->value(), 11u);
  EXPECT_EQ(set.Ceiling(IPv4Addr{50u})->value(), 100u);
  EXPECT_EQ(set.Ceiling(IPv4Addr{101u}), std::nullopt);
}

TEST(Ipv4Set, IntersectsRange) {
  Ipv4Set set = Ipv4Set::FromValues({100, 200});
  EXPECT_TRUE(set.IntersectsRange(50, 100));
  EXPECT_TRUE(set.IntersectsRange(150, 250));
  EXPECT_FALSE(set.IntersectsRange(101, 199));
  EXPECT_FALSE(set.IntersectsRange(0, 99));
  EXPECT_FALSE(set.IntersectsRange(201, 0xFFFFFFFFu));
}

TEST(Ipv4Set, CountBlocksAcrossBoundaries) {
  Ipv4Set set;
  set.AddRange(0x0A0000FEu, 0x0A000101u);  // spans two /24s
  EXPECT_EQ(set.CountBlocks(), 2u);
  set.Add(IPv4Addr{0x0A000180u});  // same second block
  EXPECT_EQ(set.CountBlocks(), 2u);
  set.Add(IPv4Addr{0x0A000200u});
  EXPECT_EQ(set.CountBlocks(), 3u);
}

TEST(Ipv4Set, ForEachBlockVisitsEachOnce) {
  Ipv4Set set;
  set.AddRange(0x0A0000FEu, 0x0A000101u);
  std::vector<BlockKey> keys;
  set.ForEachBlock([&](BlockKey key) { keys.push_back(key); });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 0x0A0000u);
  EXPECT_EQ(keys[1], 0x0A0001u);
}

// Property test: set algebra agrees with std::set on random inputs.
TEST(Ipv4Set, AlgebraAgreesWithStdSetOracle) {
  rng::Xoshiro256 g{777};
  for (int round = 0; round < 20; ++round) {
    std::set<std::uint32_t> oa, ob;
    std::vector<std::uint32_t> va, vb;
    for (int i = 0; i < 300; ++i) {
      // Narrow value range to force overlaps and adjacency.
      std::uint32_t x = g.NextBounded(1000);
      std::uint32_t y = g.NextBounded(1000);
      oa.insert(x);
      ob.insert(y);
      va.push_back(x);
      vb.push_back(y);
    }
    Ipv4Set a = Ipv4Set::FromValues(va);
    Ipv4Set b = Ipv4Set::FromValues(vb);
    EXPECT_EQ(a.Count(), oa.size());
    EXPECT_EQ(b.Count(), ob.size());

    std::set<std::uint32_t> ou = oa;
    ou.insert(ob.begin(), ob.end());
    EXPECT_EQ(a.Union(b).Count(), ou.size());

    std::uint64_t inter = 0;
    for (std::uint32_t x : oa) inter += ob.count(x);
    EXPECT_EQ(a.CountIntersect(b), inter);
    EXPECT_EQ(a.Intersect(b).Count(), inter);
    EXPECT_EQ(a.Subtract(b).Count(), oa.size() - inter);

    // Membership spot checks.
    for (int probe = 0; probe < 100; ++probe) {
      std::uint32_t x = g.NextBounded(1000);
      EXPECT_EQ(a.Contains(IPv4Addr{x}), oa.count(x) > 0);
    }
  }
}

// Property test: Floor/Ceiling agree with std::set bounds.
TEST(Ipv4Set, FloorCeilingAgreeWithOracle) {
  rng::Xoshiro256 g{31337};
  std::set<std::uint32_t> oracle;
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 500; ++i) {
    std::uint32_t x = g.NextBounded(100000);
    oracle.insert(x);
    values.push_back(x);
  }
  Ipv4Set set = Ipv4Set::FromValues(values);
  for (int probe = 0; probe < 2000; ++probe) {
    std::uint32_t x = g.NextBounded(100000);
    auto ceil_it = oracle.lower_bound(x);
    auto ceiling = set.Ceiling(IPv4Addr{x});
    if (ceil_it == oracle.end()) {
      EXPECT_FALSE(ceiling.has_value());
    } else {
      ASSERT_TRUE(ceiling.has_value());
      EXPECT_EQ(ceiling->value(), *ceil_it);
    }
    auto floor = set.Floor(IPv4Addr{x});
    auto floor_it = oracle.upper_bound(x);
    if (floor_it == oracle.begin()) {
      EXPECT_FALSE(floor.has_value());
    } else {
      ASSERT_TRUE(floor.has_value());
      EXPECT_EQ(floor->value(), *std::prev(floor_it));
    }
  }
}

}  // namespace
}  // namespace ipscope::net
