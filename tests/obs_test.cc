#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ipscope::obs {
namespace {

// Minimal JSON syntax checker (objects, arrays, strings, numbers,
// true/false/null) — enough to assert that serialized output is valid JSON
// without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Eof() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (!Eof() && Peek() != '"') {
      if (Peek() == '\\') {
        ++pos_;
        if (Eof()) return false;
      }
      ++pos_;
    }
    return Consume('"');
  }

  bool Number() {
    std::size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                      Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value() {
    SkipWs();
    if (Eof()) return false;
    char c = Peek();
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(ObsCounter, AddAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(ObsHistogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  for (double v : {4.0, 1.0, 9.0}) h.Record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  auto s = h.Snap();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(ObsHistogram, QuantilesOnUniformDistribution) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));
  auto s = h.Snap();
  // Linear interpolation inside geometric buckets keeps quantiles of a
  // uniform distribution within a few percent.
  EXPECT_NEAR(s.p50, 5000.0, 0.03 * 5000.0);
  EXPECT_NEAR(s.p90, 9000.0, 0.03 * 9000.0);
  EXPECT_NEAR(s.p99, 9900.0, 0.03 * 9900.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10000.0);
}

TEST(ObsHistogram, SingleValueDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(0.25);
  // Clamping to [min, max] makes a point-mass distribution read back
  // exactly at every quantile.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.25);
}

TEST(ObsHistogram, TinyAndZeroValues) {
  Histogram h;
  h.Record(0.0);
  h.Record(1e-12);  // below the first bucket bound
  auto s = h.Snap();
  EXPECT_EQ(s.count, 2u);
  EXPECT_GE(s.p50, 0.0);
  EXPECT_LE(s.p99, 1e-12);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  Registry r;
  Counter& a = r.GetCounter("x.count");
  Counter& b = r.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(static_cast<void*>(&r.GetHistogram("x.count")),
            static_cast<void*>(&a));  // separate namespaces per kind
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  Registry r;
  Counter& counter = r.GetCounter("mt.count");
  Histogram& hist = r.GetHistogram("mt.seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, &counter, &hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        hist.Record(1e-3 * (t + 1));
        // Lookups race with updates from other threads too.
        r.GetGauge("mt.gauge").Set(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, JsonIsValidAndComplete) {
  Registry r;
  r.GetCounter("io.store.save_bytes").Add(12345);
  r.GetGauge("io.store.save_mb_per_s").Set(87.5);
  auto& h = r.GetHistogram("sim.world.build_seconds");
  h.Record(0.5);
  h.Record(1.5);
  std::string json = r.ToJson();
  EXPECT_TRUE(JsonChecker{json}.Valid()) << json;
  for (const char* needle :
       {"\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"io.store.save_bytes\": 12345", "\"sim.world.build_seconds\"",
        "\"p50\"", "\"p90\"", "\"p99\"", "\"count\": 2"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

TEST(ObsRegistry, EmptyRegistryJsonIsValid) {
  Registry r;
  EXPECT_TRUE(JsonChecker{r.ToJson()}.Valid()) << r.ToJson();
}

TEST(ObsTimer, ScopedTimerRecordsSeconds) {
  Registry r;
  {
    ScopedTimer timer{r, "stage.seconds"};
  }
  auto& h = r.GetHistogram("stage.seconds");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 60.0);  // sanity: a no-op scope is not a minute long
}

TEST(ObsTimer, StopIsIdempotent) {
  Registry r;
  ScopedTimer timer{r, "stop.seconds"};
  double first = timer.Stop();
  EXPECT_DOUBLE_EQ(timer.Stop(), first);
  EXPECT_EQ(r.GetHistogram("stop.seconds").count(), 1u);
}

TEST(ObsTrace, DisabledRecorderDropsEvents) {
  TraceRecorder rec;
  rec.AddComplete("x", "cat", 0, 10);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(ObsTrace, EventsAreMonotonicallyConsistent) {
  TraceRecorder rec;
  rec.Enable();
  for (int i = 0; i < 5; ++i) {
    std::int64_t start = rec.NowMicros();
    volatile double sink = 0;
    for (int j = 0; j < 1000; ++j) sink += j;
    rec.AddComplete("stage." + std::to_string(i), "test", start,
                    rec.NowMicros() - start);
  }
  auto events = rec.Events();
  ASSERT_EQ(events.size(), 5u);
  std::int64_t now = rec.NowMicros();
  for (const auto& e : events) {
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
    EXPECT_LE(e.ts_us + e.dur_us, now);
  }
}

TEST(ObsTrace, WriteProducesValidSortedChromeTraceJson) {
  TraceRecorder rec;
  rec.Enable();
  // Insert out of order; Write must sort by start timestamp.
  rec.AddComplete("late", "test", 500, 10);
  rec.AddComplete("early \"quoted\\name\"", "test", 100, 50);
  std::ostringstream os;
  rec.Write(os);
  std::string json = os.str();
  EXPECT_TRUE(JsonChecker{json}.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_LT(json.find("early"), json.find("late"));
}

TEST(ObsSpan, RecordsHistogramAndTraceEvent) {
  TraceRecorder& trace = GlobalTrace();
  bool was_enabled = trace.enabled();
  trace.Enable();
  std::size_t before = trace.size();
  auto& hist = GlobalRegistry().GetHistogram("obs_test.span_seconds");
  std::uint64_t count_before = hist.count();
  {
    Span span{"obs_test.span_seconds"};
  }
  EXPECT_EQ(hist.count(), count_before + 1);
  EXPECT_GT(trace.size(), before);
  if (!was_enabled) trace.Disable();
}

// Regression: the trace serializer used to flatten control characters to
// spaces (silent corruption); it now shares obs::json::Escape with the
// registry, so a hostile name must come out \u-escaped and the document
// must stay parseable.
TEST(ObsTrace, ControlCharactersInNamesAreEscapedNotFlattened) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddComplete(std::string("bad\x01name\tand\nnewline"), "cat\x02", 0, 10);
  std::ostringstream os;
  rec.Write(os);
  std::string json = os.str();
  EXPECT_TRUE(JsonChecker{json}.Valid()) << json;
  EXPECT_NE(json.find("bad\\u0001name\\tand\\nnewline"), std::string::npos)
      << json;
  EXPECT_NE(json.find("cat\\u0002"), std::string::npos) << json;
  // The original bug: control bytes replaced with ' ', losing the name.
  EXPECT_EQ(json.find("bad name"), std::string::npos) << json;
}

TEST(ObsRegistry, ControlCharactersInMetricNamesStayValidJson) {
  Registry r;
  r.GetCounter(std::string("weird\x1fname\nwith \"quotes\"")).Add(1);
  r.GetGauge("tab\tgauge").Set(1.0);
  std::string json = r.ToJson();
  EXPECT_TRUE(JsonChecker{json}.Valid()) << json;
  EXPECT_NE(json.find("weird\\u001fname\\nwith \\\"quotes\\\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("tab\\tgauge"), std::string::npos) << json;
}

// obs::EnvString is the blessed read point for string-valued environment
// variables (the [parsing] lint contract routes bench/common.h and any
// future path-style env read through it).
TEST(ObsEnvString, UnsetReturnsNullopt) {
  unsetenv("IPSCOPE_OBS_TEST_ENV");
  EXPECT_FALSE(EnvString("IPSCOPE_OBS_TEST_ENV").has_value());
}

TEST(ObsEnvString, SetReturnsValue) {
  setenv("IPSCOPE_OBS_TEST_ENV", "/tmp/metrics.json", 1);
  auto v = EnvString("IPSCOPE_OBS_TEST_ENV");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "/tmp/metrics.json");
  unsetenv("IPSCOPE_OBS_TEST_ENV");
}

TEST(ObsJsonUnicode, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 (😀) spelled as a UTF-16 surrogate pair. External clients
  // (serve requests) are allowed to send arbitrary JSON-escaped text.
  auto v = json::Parse(R"("\uD83D\uDE00")");
  EXPECT_EQ(v.AsString(), "\xF0\x9F\x98\x80");
}

TEST(ObsJsonUnicode, SurrogatePairRoundTripsThroughEscape) {
  // Escape passes UTF-8 bytes >= 0x20 through untouched, so a decoded
  // pair embedded back into a document parses to the same bytes.
  auto decoded = json::Parse(R"("\uD800\uDC00")").AsString();  // U+10000
  EXPECT_EQ(decoded, "\xF0\x90\x80\x80");
  auto reparsed = json::Parse("\"" + json::Escape(decoded) + "\"");
  EXPECT_EQ(reparsed.AsString(), decoded);
}

TEST(ObsJsonUnicode, BasicPlaneEscapesStillDecode) {
  EXPECT_EQ(json::Parse(R"("\u0041")").AsString(), "A");
  EXPECT_EQ(json::Parse(R"("\u00E9")").AsString(), "\xC3\xA9");    // é
  EXPECT_EQ(json::Parse(R"("\u20AC")").AsString(), "\xE2\x82\xAC");  // €
}

TEST(ObsJsonUnicode, LoneHighSurrogateIsRejectedWithOffset) {
  try {
    json::Parse(R"("\uD800")");
    FAIL() << "lone high surrogate must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string_view{e.what()}.find("surrogate"),
              std::string_view::npos)
        << e.what();
    EXPECT_NE(std::string_view{e.what()}.find("offset"),
              std::string_view::npos)
        << e.what();
  }
}

TEST(ObsJsonUnicode, LoneLowSurrogateIsRejected) {
  EXPECT_THROW(json::Parse(R"("\uDC00")"), std::runtime_error);
}

TEST(ObsJsonUnicode, ReversedSurrogatePairIsRejected) {
  EXPECT_THROW(json::Parse(R"("\uDE00\uD83D")"), std::runtime_error);
}

TEST(ObsJsonUnicode, HighSurrogateBeforeNonEscapeIsRejected) {
  EXPECT_THROW(json::Parse(R"("\uD83Dxx")"), std::runtime_error);
  EXPECT_THROW(json::Parse(R"("\uD83D\n")"), std::runtime_error);
  EXPECT_THROW(json::Parse(R"("\uD83DA")"), std::runtime_error);
}

TEST(ObsEnvString, EmptyIsNormalizedToNullopt) {
  // An empty value must read as "not configured" — callers treat the
  // result as a path and an empty path would silently write nowhere.
  setenv("IPSCOPE_OBS_TEST_ENV", "", 1);
  EXPECT_FALSE(EnvString("IPSCOPE_OBS_TEST_ENV").has_value());
  unsetenv("IPSCOPE_OBS_TEST_ENV");
}

}  // namespace
}  // namespace ipscope::obs
