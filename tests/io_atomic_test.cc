// Tests for io::WriteFileAtomic, the temp+fsync+rename primitive under
// every durable output path (store saves, metrics/trace dumps, bench
// reports, ingest shards and manifests).
#include "io/atomic_file.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/store_io.h"
#include "obs/registry.h"

namespace ipscope::io {
namespace {

namespace fs = std::filesystem;

std::string ReadAll(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "ipscope_atomic_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(AtomicFile, WritesContentAndLeavesNoTemp) {
  std::string path = TempPath("basic");
  EXPECT_EQ(WriteFileAtomic(path, "hello durable world"), std::nullopt);
  EXPECT_EQ(ReadAll(path), "hello durable world");
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
  fs::remove(path);
}

TEST(AtomicFile, ReplacesExistingFileAtomically) {
  std::string path = TempPath("replace");
  ASSERT_EQ(WriteFileAtomic(path, "old"), std::nullopt);
  EXPECT_EQ(WriteFileAtomic(path, "new content"), std::nullopt);
  EXPECT_EQ(ReadAll(path), "new content");
  fs::remove(path);
}

TEST(AtomicFile, HooksFireInProtocolOrderAndSplitTheWrite) {
  std::string path = TempPath("hooks");
  std::vector<std::string> stages;
  AtomicWriteHooks hooks;
  hooks.split_at = 5;
  hooks.at = [&](std::string_view stage) { stages.emplace_back(stage); };
  ASSERT_EQ(WriteFileAtomic(path, "0123456789", &hooks), std::nullopt);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0], "pre-temp-write");
  EXPECT_EQ(stages[1], "mid-write");
  EXPECT_EQ(stages[2], "pre-fsync");
  EXPECT_EQ(stages[3], "pre-rename");
  EXPECT_EQ(ReadAll(path), "0123456789");
  fs::remove(path);
}

TEST(AtomicFile, FailureReportsPathAndErrnoDetailAndLeavesNoDebris) {
  std::string path = "/nonexistent-dir-ipscope/out.bin";
  auto error = WriteFileAtomic(path, "x");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find(path), std::string::npos) << *error;
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
}

TEST(AtomicFile, SaveStoreFileGoesThroughTheAtomicPath) {
  // A crashed saver must never leave a torn dataset under the final name:
  // SaveStoreFile writes through WriteFileAtomic, so the only on-disk
  // states are "old store" and "new store", never a prefix.
  activity::ActivityStore store{4};
  store.GetOrCreate(net::BlockKey{42}).Row(0)[0] = 0xFFULL;
  std::string path = TempPath("store") + ".ips2";
  SaveStoreFile(store, path);
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
  auto loaded = TryLoadStoreFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().store.BlockCount(), 1u);
  fs::remove(path);

  // Failure is surfaced as a typed StoreError message, counted in obs.
  auto before =
      obs::GlobalRegistry().GetCounter("io.store.save_errors").value();
  EXPECT_THROW(SaveStoreFile(store, "/nonexistent-dir-ipscope/s.ips2"),
               std::runtime_error);
  EXPECT_EQ(
      obs::GlobalRegistry().GetCounter("io.store.save_errors").value(),
      before + 1);
}

TEST(AtomicFile, MetricsAndTraceDumpsAreAtomic) {
  std::string path = TempPath("metrics") + ".json";
  obs::GlobalRegistry().GetCounter("test.atomic_dump").Add(1);
  obs::GlobalRegistry().WriteJsonFile(path);
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
  EXPECT_NE(ReadAll(path).find("test.atomic_dump"), std::string::npos);
  fs::remove(path);
  EXPECT_THROW(
      obs::GlobalRegistry().WriteJsonFile("/nonexistent-dir-ipscope/m.json"),
      std::runtime_error);
}

}  // namespace
}  // namespace ipscope::io
