// Parameterized property sweeps across the library's core invariants.
#include <gtest/gtest.h>

#include <set>

#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/metrics.h"
#include "cdn/observatory.h"
#include "netbase/ip_set.h"
#include "rng/rng.h"
#include "sim/world.h"
#include "stats/quantile.h"

namespace ipscope {
namespace {

// ---------------------------------------------------------------------
// Ipv4Set algebra laws across densities.
// ---------------------------------------------------------------------

class IpSetDensity : public ::testing::TestWithParam<int> {};

net::Ipv4Set RandomSet(rng::Xoshiro256& g, int values, std::uint32_t range) {
  std::vector<std::uint32_t> v;
  v.reserve(static_cast<std::size_t>(values));
  for (int i = 0; i < values; ++i) v.push_back(g.NextBounded(range));
  return net::Ipv4Set::FromValues(std::move(v));
}

TEST_P(IpSetDensity, AlgebraLaws) {
  // range is chosen so density sweeps from very sparse to heavily coalesced.
  std::uint32_t range = static_cast<std::uint32_t>(GetParam());
  rng::Xoshiro256 g{static_cast<std::uint64_t>(range) * 31 + 7};
  net::Ipv4Set a = RandomSet(g, 400, range);
  net::Ipv4Set b = RandomSet(g, 400, range);

  // |A| + |B| = |A u B| + |A n B|.
  EXPECT_EQ(a.Count() + b.Count(),
            a.Union(b).Count() + a.Intersect(b).Count());
  // A \ B = A n (A \ B); (A \ B) n B = {}.
  EXPECT_EQ(a.Subtract(b).CountIntersect(b), 0u);
  // (A \ B) u (A n B) = A.
  EXPECT_EQ(a.Subtract(b).Union(a.Intersect(b)), a);
  // Union is commutative, intersection consistent with CountIntersect.
  EXPECT_EQ(a.Union(b), b.Union(a));
  EXPECT_EQ(a.Intersect(b).Count(), a.CountIntersect(b));
  // Self-laws.
  EXPECT_EQ(a.Union(a), a);
  EXPECT_EQ(a.Intersect(a), a);
  EXPECT_TRUE(a.Subtract(a).Empty());
}

INSTANTIATE_TEST_SUITE_P(Densities, IpSetDensity,
                         ::testing::Values(500, 2000, 20000, 1000000,
                                           0x7FFFFFFF));

// ---------------------------------------------------------------------
// Churn invariants across window sizes.
// ---------------------------------------------------------------------

class ChurnWindow : public ::testing::TestWithParam<int> {
 protected:
  static const activity::ActivityStore& Store() {
    static const activity::ActivityStore store = [] {
      sim::WorldConfig config;
      config.target_client_blocks = 300;
      static sim::World world{config};
      return cdn::Observatory::Daily(world).BuildStore();
    }();
    return store;
  }
};

TEST_P(ChurnWindow, PercentagesBoundedAndConsistent) {
  int w = GetParam();
  activity::ChurnAnalyzer churn{Store()};
  auto series = churn.Churn(w);
  int expected_pairs = Store().days() / w - 1;
  ASSERT_EQ(static_cast<int>(series.up_pct.size()), expected_pairs);
  for (double v : series.up_pct) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
  for (double v : series.down_pct) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
  EXPECT_LE(series.up.min, series.up.median);
  EXPECT_LE(series.up.median, series.up.max);
}

TEST_P(ChurnWindow, WindowUnionsNeverShrinkActivePool) {
  // The union over a window is at least as large as any contained day.
  int w = GetParam();
  const auto& store = Store();
  int num_windows = store.days() / w;
  auto daily = store.DailyActiveCounts();
  for (int win = 0; win < num_windows; ++win) {
    std::uint64_t window_count = store.CountActive(win * w, (win + 1) * w);
    for (int d = win * w; d < (win + 1) * w; ++d) {
      EXPECT_GE(window_count,
                static_cast<std::uint64_t>(daily[static_cast<std::size_t>(d)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, ChurnWindow,
                         ::testing::Values(1, 2, 4, 7, 14, 28, 56));

// ---------------------------------------------------------------------
// Activity-kernel invariants across every policy kind.
// ---------------------------------------------------------------------

class PolicyKindSweep
    : public ::testing::TestWithParam<sim::PolicyKind> {};

TEST_P(PolicyKindSweep, KernelInvariants) {
  sim::BlockPlan plan;
  plan.block = net::Prefix{net::IPv4Addr{10, 9, 8, 0}, 24};
  plan.block_seed = 0xFEED;
  for (std::size_t i = 0; i < 256; ++i) {
    plan.host_perm[i] = static_cast<std::uint8_t>(i);
  }
  plan.base.kind = GetParam();
  plan.base.pool_size = 200;
  plan.base.subscribers = 220;
  plan.base.daily_p = 0.6f;
  plan.base.lease_days = 20;
  plan.base.occupancy = 0.8f;
  plan.base.hits_mu = 3.0f;
  plan.base.hits_sigma = 1.0f;

  sim::StepSpec spec;
  spec.start_day = 228;
  spec.step_days = 1;
  spec.steps = 30;

  std::uint32_t hits[256];
  std::uint64_t occupants[256];
  for (int step = 0; step < 30; ++step) {
    activity::DayBits bits;
    sim::GenerateStep(plan, spec, step, bits, hits, occupants);
    for (int h = 0; h < 256; ++h) {
      bool active = activity::TestBit(bits, h);
      // Hits iff active.
      EXPECT_EQ(active, hits[h] > 0) << h;
      // Activity confined to the managed pool (identity permutation).
      if (h >= 200) EXPECT_FALSE(active) << h;
      // Occupants only on active client addresses; never for gateways.
      if (occupants[h] != 0) {
        EXPECT_TRUE(active);
        EXPECT_NE(plan.base.kind, sim::PolicyKind::kCgnGateway);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PolicyKindSweep,
    ::testing::Values(sim::PolicyKind::kUnused, sim::PolicyKind::kStatic,
                      sim::PolicyKind::kDynamicShort,
                      sim::PolicyKind::kDynamicLong,
                      sim::PolicyKind::kCgnGateway,
                      sim::PolicyKind::kCrawlerBots,
                      sim::PolicyKind::kServerFarm,
                      sim::PolicyKind::kRouterInfra,
                      sim::PolicyKind::kMiddlebox));

// ---------------------------------------------------------------------
// Event-size invariants across window sizes.
// ---------------------------------------------------------------------

class EventSizeWindow : public ::testing::TestWithParam<int> {};

TEST_P(EventSizeWindow, HistogramAccountsForEveryEvent) {
  sim::WorldConfig config;
  config.target_client_blocks = 200;
  static sim::World world{config};
  static auto store = cdn::Observatory::Daily(world).BuildStore();

  int w = GetParam();
  auto hist = activity::EventSizes(store, 0, w, w, 2 * w, true);
  net::Ipv4Set w0 = store.ActiveSet(0, w);
  net::Ipv4Set w1 = store.ActiveSet(w, 2 * w);
  EXPECT_EQ(hist.total, w1.Subtract(w0).Count());
  std::uint64_t sum = 0;
  for (auto n : hist.by_mask) sum += n;
  EXPECT_EQ(sum, hist.total);
  // Strict-rule masks are never smaller (coarser) than paper-rule masks in
  // aggregate: the strict rule can only shrink prefixes.
  auto strict = activity::EventSizesStrict(store, 0, w, w, 2 * w, true);
  EXPECT_EQ(strict.total, hist.total);
  EXPECT_LE(hist.FractionInMaskRange(29, 32),
            strict.FractionInMaskRange(29, 32) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Windows, EventSizeWindow,
                         ::testing::Values(1, 7, 28, 56));

// ---------------------------------------------------------------------
// Quantile function properties across distributions.
// ---------------------------------------------------------------------

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneAndWithinRange) {
  double q = GetParam();
  rng::Xoshiro256 g{99};
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng::NextNormal(g));
  std::sort(values.begin(), values.end());
  double v = stats::QuantileSorted(values, q);
  EXPECT_GE(v, values.front());
  EXPECT_LE(v, values.back());
  if (q > 0.1) {
    EXPECT_GE(v, stats::QuantileSorted(values, q - 0.1));
  }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 0.75, 0.95,
                                           1.0));

}  // namespace
}  // namespace ipscope
