#include "netbase/ipv4.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace ipscope::net {
namespace {

TEST(IPv4Addr, DefaultIsZero) {
  EXPECT_EQ(IPv4Addr{}.value(), 0u);
  EXPECT_EQ(IPv4Addr{}.ToString(), "0.0.0.0");
}

TEST(IPv4Addr, OctetConstruction) {
  IPv4Addr addr{192, 0, 2, 1};
  EXPECT_EQ(addr.value(), 0xC0000201u);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 0);
  EXPECT_EQ(addr.octet(2), 2);
  EXPECT_EQ(addr.octet(3), 1);
}

TEST(IPv4Addr, ParseValid) {
  auto addr = IPv4Addr::Parse("10.20.30.40");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, (IPv4Addr{10, 20, 30, 40}));
  EXPECT_EQ(IPv4Addr::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Addr::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4Addr::Parse("").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(IPv4Addr::Parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("1..2.3").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("-1.2.3.4").has_value());
}

TEST(IPv4Addr, ParseRejectsLeadingZeros) {
  EXPECT_FALSE(IPv4Addr::Parse("01.2.3.4").has_value());
  EXPECT_FALSE(IPv4Addr::Parse("1.2.3.04").has_value());
  // A single zero octet is fine.
  EXPECT_TRUE(IPv4Addr::Parse("1.0.3.4").has_value());
}

TEST(IPv4Addr, RoundTripPropertyOverSamples) {
  // Parse(ToString(x)) == x for a spread of values.
  for (std::uint64_t v = 0; v <= 0xFFFFFFFFull; v += 0x01010173ull) {
    IPv4Addr addr{static_cast<std::uint32_t>(v)};
    auto parsed = IPv4Addr::Parse(addr.ToString());
    ASSERT_TRUE(parsed.has_value()) << addr.ToString();
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(IPv4Addr, Ordering) {
  EXPECT_LT((IPv4Addr{1, 2, 3, 4}), (IPv4Addr{1, 2, 3, 5}));
  EXPECT_LT((IPv4Addr{1, 2, 3, 4}), (IPv4Addr{2, 0, 0, 0}));
  EXPECT_EQ((IPv4Addr{1, 2, 3, 4}), (IPv4Addr{1, 2, 3, 4}));
}

TEST(IPv4Addr, SaturatingArithmetic) {
  EXPECT_EQ(SaturatingAdd(IPv4Addr{0xFFFFFFFFu}, 1).value(), 0xFFFFFFFFu);
  EXPECT_EQ(SaturatingAdd(IPv4Addr{10u}, 5).value(), 15u);
  EXPECT_EQ(SaturatingSub(IPv4Addr{0u}, 1).value(), 0u);
  EXPECT_EQ(SaturatingSub(IPv4Addr{10u}, 5).value(), 5u);
}

TEST(IPv4Addr, StreamOutput) {
  std::ostringstream os;
  os << IPv4Addr{203, 0, 113, 9};
  EXPECT_EQ(os.str(), "203.0.113.9");
}

TEST(IPv4Addr, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<IPv4Addr>{}(IPv4Addr{i}));
  }
  // Sequential inputs must not collide for a well-mixed hash.
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace ipscope::net
