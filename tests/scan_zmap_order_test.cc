#include "scan/zmap_order.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ipscope::scan {
namespace {

TEST(ZmapOrder, InverseRoundTrip) {
  AddressPermutation perm{42};
  for (std::uint64_t i = 0; i < 0x100000000ull; i += 0x01234567ull) {
    auto index = static_cast<std::uint32_t>(i);
    net::IPv4Addr addr = perm.AddressAt(index);
    EXPECT_EQ(perm.IndexOf(addr), index);
  }
}

TEST(ZmapOrder, NoDuplicatesInWindow) {
  AddressPermutation perm{7};
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(perm.AddressAt(i).value()).second) << i;
  }
}

TEST(ZmapOrder, SeedsProduceDifferentOrders) {
  AddressPermutation a{1}, b{2};
  int same = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    same += a.AddressAt(i) == b.AddressAt(i);
  }
  EXPECT_LT(same, 3);
}

TEST(ZmapOrder, ConsecutiveIndicesScatterAcrossSpace) {
  // The scanner property: neighbouring scan positions must not probe
  // neighbouring networks. Check that consecutive outputs land in many
  // distinct /8s.
  AddressPermutation perm{99};
  std::set<int> first_octets;
  for (std::uint32_t i = 0; i < 256; ++i) {
    first_octets.insert(perm.AddressAt(i).octet(0));
  }
  EXPECT_GT(first_octets.size(), 150u);
}

TEST(ZmapOrder, CoverageOfSmallPrefixIsProportional) {
  // Scanning ~1/256 of the index space should hit ~1/256 of any /8.
  AddressPermutation perm{1234};
  std::uint32_t budget = 1u << 24;  // 1/256 of the space
  std::uint64_t in_ten_slash8 = 0;
  // Sample every 64th index to keep the test fast (2^18 probes).
  for (std::uint32_t i = 0; i < budget; i += 64) {
    if (perm.AddressAt(i).octet(0) == 10) ++in_ten_slash8;
  }
  double expected = (budget / 64.0) / 256.0;
  EXPECT_NEAR(static_cast<double>(in_ten_slash8), expected, expected * 0.15);
}

TEST(ZmapOrder, ForScanChunkVisitsInOrder) {
  AddressPermutation perm{5};
  std::vector<net::IPv4Addr> chunk;
  ForScanChunk(perm, 1000, 16,
               [&](net::IPv4Addr addr) { chunk.push_back(addr); });
  ASSERT_EQ(chunk.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(chunk[i], perm.AddressAt(1000 + i));
  }
}

}  // namespace
}  // namespace ipscope::scan
