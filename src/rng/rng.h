// Deterministic random-number substrate.
//
// Everything in the simulated world derives from a single 64-bit seed via
// hierarchical sub-stream derivation: Substream(seed, tag, tag, ...) mixes
// the tags through SplitMix64 so that, e.g., the stream for (block, day) is
// independent of every other (block, day) stream, yet fully reproducible.
// This is what lets the CDN observatory *regenerate* per-IP hit counts on
// demand instead of materializing them (see DESIGN.md §4.3).
//
// Xoshiro256++ is the workhorse generator (fast, 256-bit state, passes
// BigCrush); SplitMix64 seeds it and serves as the mixing function.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace ipscope::rng {

// One SplitMix64 step: advances *state and returns the next output.
constexpr std::uint64_t SplitMix64Next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Mixes an arbitrary list of 64-bit tags into a derived seed.
template <typename... Tags>
constexpr std::uint64_t Substream(std::uint64_t seed, Tags... tags) {
  std::uint64_t state = seed;
  ((state = SplitMix64Next(state) ^ (static_cast<std::uint64_t>(tags) *
                                     0x9e3779b97f4a7c15ULL)),
   ...);
  return SplitMix64Next(state);
}

// The precomputed prefix of one Substream family: SubstreamTail(seed,
// tags...) folds in everything that does not depend on the final tag, so
// that SubstreamTail(seed, tags...).At(i) == Substream(seed, tags..., i)
// with a single SplitMix64 round per call instead of one per tag. This is
// what makes slot-major generation kernels cheap: hashing a whole step
// sweep for one slot costs O(tags) setup once, then O(1) mixing per step.
class SubstreamTail {
 public:
  template <typename... Tags>
  constexpr explicit SubstreamTail(std::uint64_t seed, Tags... tags) {
    std::uint64_t state = seed;
    ((state = SplitMix64Next(state) ^ (static_cast<std::uint64_t>(tags) *
                                       0x9e3779b97f4a7c15ULL)),
     ...);
    z_ = SplitMix64Next(state);
  }

  constexpr std::uint64_t At(std::uint64_t last) const {
    std::uint64_t state = z_ ^ (last * 0x9e3779b97f4a7c15ULL);
    return SplitMix64Next(state);
  }

 private:
  std::uint64_t z_ = 0;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64Next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift without the
  // rejection step — bias is < 2^-32 for the bounds used here.
  std::uint32_t NextBounded(std::uint32_t bound) {
    std::uint64_t x = (*this)() >> 32;
    return static_cast<std::uint32_t>((x * bound) >> 32);
  }

  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

// --- Distributions -------------------------------------------------------
// Free functions over Xoshiro256, kept deliberately small: each experiment
// documents which distribution shapes it depends on.

// Standard normal via Box–Muller (one value per call; simple > fast here).
inline double NextNormal(Xoshiro256& g) {
  double u1 = g.NextDouble();
  double u2 = g.NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

inline double NextLogNormal(Xoshiro256& g, double mu, double sigma) {
  return std::exp(mu + sigma * NextNormal(g));
}

// Binomial(n, p). Exact inversion for small n·p, normal approximation with
// continuity correction for large n — good enough for simulation counts and
// orders of magnitude faster than exact sampling at CDN scale.
inline std::uint64_t NextBinomial(Xoshiro256& g, std::uint64_t n, double p) {
  if (n == 0 || p <= 0) return 0;
  if (p >= 1) return n;
  double np = static_cast<double>(n) * p;
  if (n <= 64) {
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < n; ++i) k += g.NextBool(p) ? 1u : 0u;
    return k;
  }
  if (np < 32.0) {
    // Inversion by sequential search on the CDF.
    double q = std::pow(1.0 - p, static_cast<double>(n));
    double u = g.NextDouble();
    double cdf = q;
    std::uint64_t k = 0;
    while (u > cdf && k < n) {
      ++k;
      q *= (static_cast<double>(n - k + 1) / static_cast<double>(k)) *
           (p / (1.0 - p));
      cdf += q;
    }
    return k;
  }
  double mean = np;
  double stddev = std::sqrt(np * (1.0 - p));
  double x = std::round(mean + stddev * NextNormal(g));
  if (x < 0) x = 0;
  if (x > static_cast<double>(n)) x = static_cast<double>(n);
  return static_cast<std::uint64_t>(x);
}

// Poisson(lambda): Knuth for small lambda, normal approximation for large.
inline std::uint64_t NextPoisson(Xoshiro256& g, double lambda) {
  if (lambda <= 0) return 0;
  if (lambda < 30.0) {
    double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double prod = g.NextDouble();
    while (prod > l) {
      ++k;
      prod *= g.NextDouble();
    }
    return k;
  }
  double x = std::round(lambda + std::sqrt(lambda) * NextNormal(g));
  return x < 0 ? 0 : static_cast<std::uint64_t>(x);
}

// Zipf-like rank sampler over [0, n): P(k) ∝ 1 / (k + 1)^s, via inverse
// transform on the (approximated) generalized harmonic CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s) : n_(n), s_(s) {
    // Integral approximation of the normalizing constant.
    h_n_ = GeneralizedHarmonic(n_);
  }

  std::uint32_t operator()(Xoshiro256& g) const {
    double u = g.NextDouble() * h_n_;
    // Invert the integral approximation, then clamp.
    double k;
    if (s_ == 1.0) {
      k = std::exp(u) - 1.0;
    } else {
      double base = 1.0 + u * (1.0 - s_);
      if (base < 0) base = 0;
      k = std::pow(base, 1.0 / (1.0 - s_)) - 1.0;
    }
    if (k < 0) k = 0;
    if (k >= static_cast<double>(n_)) k = static_cast<double>(n_ - 1);
    return static_cast<std::uint32_t>(k);
  }

 private:
  double GeneralizedHarmonic(std::uint32_t n) const {
    // ∫_1^{n+1} x^-s dx — smooth approximation, exact enough for sampling.
    if (s_ == 1.0) return std::log(static_cast<double>(n) + 1.0);
    return (std::pow(static_cast<double>(n) + 1.0, 1.0 - s_) - 1.0) /
           (1.0 - s_);
  }

  std::uint32_t n_;
  double s_;
  double h_n_;
};

}  // namespace ipscope::rng
