// Crash-point fault injection for the durable commit protocol.
//
// The drop/truncate/flip faults in fault::Injector model damaged *data*;
// this header models a damaged *process*: a kill landing at an arbitrary
// syscall boundary of the ingest commit path (ingest/session.h). Every
// such boundary is enumerated here by name, in commit order, and the
// chaos-crash gate (ipscope_cli chaos-crash, tests/ingest_crash_test.cc)
// sweeps all of them × seeds: arm a point in a forked child, let the child
// run one Append, verify the child died at the point, then prove recovery
// reproduces exactly the committed prefix.
//
// Arming is process-global (the child process arms once, then dies at the
// point), and the grammar hooks into fault::Schedule as
// `crash-at=<point>` / `crash-at:<point>` so a chaos run names its kill
// site the same way it names its data damage. Determinism: the armed seed
// drives the mid-write split offset through rng::Substream, so the same
// (point, seed) pair always kills at the same byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/schedule.h"

namespace ipscope::fault {

// The process exits with this code when an armed crash point fires —
// distinguishable from both success and ordinary error exits, so a crash
// harness can tell "died at the point" from "died of something else".
inline constexpr int kCrashExitCode = 113;

// Every registered syscall-boundary crash point of the ingest commit
// path, in the order Append reaches them:
//   pre-temp-write       before the shard temp file is created
//   mid-shard-write      between the two halves of the shard byte write
//   pre-fsync            after the shard bytes, before fsync(shard.tmp)
//   pre-rename           before rename(shard.tmp -> shard)
//   pre-manifest-append  shard durable; before the new MANIFEST temp write
//   pre-manifest-fsync   before fsync(MANIFEST.tmp)
//   pre-manifest-rename  before rename(MANIFEST.tmp -> MANIFEST)
//   post-commit          after the commit is fully durable
const std::vector<std::string>& CrashPoints();
bool IsCrashPoint(std::string_view name);

// Arms `point` for this process: the next MaybeCrash(point) terminates
// with _exit(kCrashExitCode) — no destructors, no stream flushes, exactly
// the crash model a kill -9 presents. `seed` drives CrashSplitOffset.
void ArmCrash(std::string_view point, std::uint64_t seed);
void DisarmCrash();
bool CrashArmed();

// Called by the commit path at each boundary; terminates iff armed for
// exactly this point.
void MaybeCrash(std::string_view point);

// Deterministic split offset in [1, size) for the mid-write point,
// derived from the armed seed; 0 (no split) when nothing is armed or the
// content is too small to split.
std::uint64_t CrashSplitOffset(std::uint64_t size);

// Arms the crash point named by the schedule's crash-at entry, if any
// (the last one wins); no-op for schedules without one. The schedule
// parser has already validated the point name.
void ArmFromSchedule(const Schedule& schedule);

}  // namespace ipscope::fault
