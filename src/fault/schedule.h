// Declarative fault schedules for deterministic chaos runs.
//
// The measurement substrates the paper builds on were inherently lossy:
// CDN log collection lost whole days to collector outages, ZMap campaigns
// lost snapshots to failed or partial scans, and nothing guarantees a
// serialized dataset survives storage intact. A fault::Schedule describes
// such damage declaratively so that every chaos run is reproducible from
// a single seed — same schedule + same seed = byte-identical perturbation
// (see fault/injector.h for the application side).
//
// Grammar: a comma- or semicolon-separated list of `name=value` entries
// (value optional where a default exists):
//
//   drop-days=N        drop N whole days of log coverage (collector outage)
//   drop-day=D         drop the specific day index D
//   drop-snapshots=K   kill K scan snapshots of a campaign
//   truncate-store=F   truncate the serialized store to fraction F (0,1)
//                      of its bytes — lands mid-block by construction
//   flip-bytes=N       N single-byte bit flips at seeded offsets
//   dup-rows=F         duplicate each raw log row with probability F
//   crash-at=POINT     kill the process (_exit) at the named syscall
//                      boundary of the ingest commit path; POINT must be a
//                      registered crash point (fault/crash.h enumerates
//                      them). `crash-at:POINT` is accepted as well.
//
// Example: "drop-days=2,truncate-store=0.6,drop-snapshots=1"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ipscope::fault {

enum class FaultKind {
  kDropDays,       // value = count of days
  kDropDay,        // value = explicit day index
  kDropSnapshots,  // value = count of snapshots
  kTruncateStore,  // value = byte fraction kept, in (0, 1)
  kFlipBytes,      // value = count of single-byte flips
  kDupRows,        // value = duplication probability, in (0, 1]
  kCrashAt,        // text = registered crash-point name (fault/crash.h)
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kDropDays;
  double value = 0.0;
  // String-valued faults (crash-at) carry their operand here; empty for
  // the numeric kinds.
  std::string text;
};

struct Schedule {
  // Seed of every random choice the injector makes for this schedule
  // (which days, which offsets, which rows).
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  bool Has(FaultKind kind) const;
  // Sum of values across entries of `kind` (0 when absent) — lets a
  // schedule say drop-days=1 twice and mean two outages.
  double TotalValue(FaultKind kind) const;

  // Canonical round-trippable rendering of the grammar above.
  std::string ToString() const;
};

// Parses the grammar; on failure returns false and describes the problem
// in *error. An empty string parses to an empty (no-fault) schedule.
bool ParseSchedule(const std::string& text, Schedule* schedule,
                   std::string* error);

}  // namespace ipscope::fault
