#include "fault/injector.h"

#include <algorithm>

#include "obs/registry.h"

namespace ipscope::fault {

void Injector::CountInjected(std::uint64_t n, Report* report) {
  if (n == 0) return;
  obs::GlobalRegistry().GetCounter("fault.injected_total").Add(n);
  if (report != nullptr) report->faults_injected += n;
}

std::vector<int> Injector::PickDistinct(int n, int count,
                                        std::uint64_t tag) const {
  std::vector<int> picked;
  if (n <= 0 || count <= 0) return picked;
  if (count > n) count = n;
  rng::Xoshiro256 g{rng::Substream(schedule_.seed, tag)};
  // Floyd's algorithm: exactly `count` draws, no shuffling of [0, n).
  for (int j = n - count; j < n; ++j) {
    int v = static_cast<int>(g.NextBounded(static_cast<std::uint32_t>(j + 1)));
    if (std::find(picked.begin(), picked.end(), v) != picked.end()) v = j;
    picked.push_back(v);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<int> Injector::ApplyToStore(activity::ActivityStore& store,
                                        Report* report) {
  std::vector<int> days;
  int random_count =
      static_cast<int>(schedule_.TotalValue(FaultKind::kDropDays));
  for (int d : PickDistinct(store.days(), random_count, kTagDropDays)) {
    days.push_back(d);
  }
  for (const FaultSpec& f : schedule_.faults) {
    if (f.kind == FaultKind::kDropDay) {
      int d = static_cast<int>(f.value);
      if (d >= 0 && d < store.days()) days.push_back(d);
    }
  }
  std::sort(days.begin(), days.end());
  days.erase(std::unique(days.begin(), days.end()), days.end());
  for (int d : days) store.SetDayCovered(d, false);
  // The gauge reflects the store's current state (load-time gaps included),
  // not just this injector's drops.
  obs::GlobalRegistry()
      .GetGauge("activity.days_missing")
      .Set(static_cast<double>(store.MissingDays()));
  CountInjected(days.size(), report);
  if (report != nullptr) {
    report->dropped_days.insert(report->dropped_days.end(), days.begin(),
                                days.end());
  }
  return days;
}

void Injector::ApplyToBytes(std::string& bytes, Report* report) {
  double keep_fraction = schedule_.TotalValue(FaultKind::kTruncateStore);
  if (schedule_.Has(FaultKind::kTruncateStore) && keep_fraction < 1.0 &&
      !bytes.empty()) {
    auto keep = static_cast<std::size_t>(
        keep_fraction * static_cast<double>(bytes.size()));
    bytes.resize(keep);
    CountInjected(1, report);
    if (report != nullptr) report->truncated_to_bytes = keep;
  }

  int flips = static_cast<int>(schedule_.TotalValue(FaultKind::kFlipBytes));
  // Leave the 8-byte magic alone: flipping it exercises format detection,
  // not checksum coverage, and a magic byte is not "data corruption" in
  // any interesting sense.
  constexpr std::size_t kFirstFlippable = 8;
  if (flips > 0 && bytes.size() > kFirstFlippable) {
    rng::Xoshiro256 g{rng::Substream(schedule_.seed, kTagFlips)};
    for (int i = 0; i < flips; ++i) {
      auto offset = kFirstFlippable +
                    g.NextBounded(static_cast<std::uint32_t>(
                        bytes.size() - kFirstFlippable));
      // A non-zero mask guarantees the byte actually changes.
      auto mask = static_cast<char>(1u << g.NextBounded(8));
      bytes[offset] ^= mask;
      CountInjected(1, report);
      if (report != nullptr) report->flipped_offsets.push_back(offset);
    }
  }
}

std::vector<int> Injector::PickSnapshotsToDrop(int num_snapshots,
                                               Report* report) {
  int count =
      static_cast<int>(schedule_.TotalValue(FaultKind::kDropSnapshots));
  if (count >= num_snapshots) count = num_snapshots - 1;
  std::vector<int> picked = PickDistinct(num_snapshots, count, kTagSnapshots);
  CountInjected(picked.size(), report);
  if (report != nullptr) {
    report->dropped_snapshots.insert(report->dropped_snapshots.end(),
                                     picked.begin(), picked.end());
  }
  return picked;
}

}  // namespace ipscope::fault
