#include "fault/crash.h"

#include <unistd.h>

#include "rng/rng.h"

namespace ipscope::fault {

namespace {

// Substream tag for the mid-write split offset (see injector.cc for the
// sibling data-damage tags).
constexpr std::uint64_t kTagCrashSplit = 0xC4A5;

struct ArmedCrash {
  bool armed = false;
  std::string point;
  std::uint64_t seed = 0;
};

ArmedCrash& Armed() {
  static ArmedCrash* armed = new ArmedCrash;  // never destroyed
  return *armed;
}

}  // namespace

const std::vector<std::string>& CrashPoints() {
  static const std::vector<std::string> kPoints = {
      "pre-temp-write",      "mid-shard-write",  "pre-fsync",
      "pre-rename",          "pre-manifest-append",
      "pre-manifest-fsync",  "pre-manifest-rename",
      "post-commit",
  };
  return kPoints;
}

bool IsCrashPoint(std::string_view name) {
  for (const std::string& p : CrashPoints()) {
    if (name == p) return true;
  }
  return false;
}

void ArmCrash(std::string_view point, std::uint64_t seed) {
  ArmedCrash& armed = Armed();
  armed.armed = true;
  armed.point.assign(point);
  armed.seed = seed;
}

void DisarmCrash() { Armed().armed = false; }

bool CrashArmed() { return Armed().armed; }

void MaybeCrash(std::string_view point) {
  const ArmedCrash& armed = Armed();
  if (armed.armed && armed.point == point) {
    // The crash model is a kill at a syscall boundary: no destructors, no
    // stream flushes, no atexit hooks — _exit, not exit.
    //
    // Relation to the CLI drain flag (src/cli/signals.h): SIGINT/SIGTERM
    // set a cooperative flag that loops poll *between* atomic-write
    // sequences, so a user interrupt can no longer land inside one of the
    // write-path points below (pre-temp-write .. post-commit) and litter
    // .tmp files. Crash points stay the uncooperative counterpart: they
    // fire exactly at those boundaries, on purpose, and a drain request
    // never masks an armed crash point — the chaos-crash sweep keeps
    // exercising torn state even while it honors ^C between cells.
    ::_exit(kCrashExitCode);
  }
}

std::uint64_t CrashSplitOffset(std::uint64_t size) {
  const ArmedCrash& armed = Armed();
  if (!armed.armed || size < 2) return 0;
  return 1 + rng::Substream(armed.seed, kTagCrashSplit) % (size - 1);
}

void ArmFromSchedule(const Schedule& schedule) {
  for (const FaultSpec& f : schedule.faults) {
    if (f.kind == FaultKind::kCrashAt) ArmCrash(f.text, schedule.seed);
  }
}

}  // namespace ipscope::fault
