// Deterministic fault injection over observed datasets.
//
// The Injector applies a fault::Schedule to the artifacts of a pipeline
// run *before* analysis: it drops whole days of CDN log coverage
// (collector outage), kills scan snapshots, truncates or bit-flips
// serialized store bytes, and duplicates raw log rows. Every choice
// derives from rng::Substream(schedule.seed, fault-tag, ...), so a chaos
// run is reproducible from its seed alone and two injectors built from
// the same schedule perturb identically.
//
// Each applied fault increments the `fault.injected_total` counter in the
// global obs registry; the Report returned by the batch entry points
// records exactly what was done so a scorecard can assert against it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activity/store.h"
#include "fault/schedule.h"
#include "rng/rng.h"

namespace ipscope::fault {

class Injector {
 public:
  explicit Injector(const Schedule& schedule) : schedule_(schedule) {}

  const Schedule& schedule() const { return schedule_; }

  struct Report {
    std::vector<int> dropped_days;          // ascending
    std::vector<int> dropped_snapshots;     // ascending indices
    std::uint64_t truncated_to_bytes = 0;   // 0 = store not truncated
    std::vector<std::uint64_t> flipped_offsets;
    std::uint64_t duplicated_rows = 0;
    std::uint64_t faults_injected = 0;      // total individual fault events
  };

  // Applies the kDropDays/kDropDay entries: clears the chosen days in
  // every block and marks them uncovered in the store's coverage mask.
  // Returns the dropped day indices (ascending, deduplicated).
  std::vector<int> ApplyToStore(activity::ActivityStore& store,
                                Report* report = nullptr);

  // Applies kTruncateStore then kFlipBytes to a serialized store image.
  // Truncation keeps floor(fraction * size) bytes; flips XOR a seeded
  // non-zero mask into seeded offsets past the 8-byte magic (flipping the
  // magic would test format detection, not corruption detection).
  void ApplyToBytes(std::string& bytes, Report* report = nullptr);

  // Picks the snapshot indices the kDropSnapshots entries kill from a
  // campaign of `num_snapshots` (ascending, deduplicated; at most
  // num_snapshots - 1 so a campaign never silently vanishes entirely).
  std::vector<int> PickSnapshotsToDrop(int num_snapshots,
                                       Report* report = nullptr);

  // Applies kDupRows to a row vector (any element type): each row is
  // re-appended with the configured probability, modelling the at-least-
  // once delivery of a distributed log collector. Returns the number of
  // duplicates appended. Aggregation must be idempotent under this.
  template <typename T>
  std::uint64_t DuplicateRows(std::vector<T>& rows, Report* report = nullptr) {
    double p = schedule_.TotalValue(FaultKind::kDupRows);
    if (p <= 0.0 || rows.empty()) return 0;
    rng::Xoshiro256 g{rng::Substream(schedule_.seed, kTagDupRows)};
    std::size_t original = rows.size();
    std::uint64_t duplicated = 0;
    for (std::size_t i = 0; i < original; ++i) {
      if (g.NextBool(p)) {
        rows.push_back(rows[i]);
        ++duplicated;
      }
    }
    CountInjected(duplicated, report);
    if (report != nullptr) report->duplicated_rows += duplicated;
    return duplicated;
  }

  // Deterministic choice of `count` distinct values in [0, n); `tag`
  // separates the substreams of independent decisions. Exposed for tests
  // and for callers composing faults the batch entry points don't cover.
  std::vector<int> PickDistinct(int n, int count, std::uint64_t tag) const;

 private:
  static constexpr std::uint64_t kTagDropDays = 0xDA75;
  static constexpr std::uint64_t kTagSnapshots = 0x5CA9;
  static constexpr std::uint64_t kTagFlips = 0xF11B;
  static constexpr std::uint64_t kTagDupRows = 0xD0B5;

  void CountInjected(std::uint64_t n, Report* report);

  Schedule schedule_;
};

}  // namespace ipscope::fault
