#include "fault/schedule.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "fault/crash.h"

namespace ipscope::fault {

namespace {

struct KindInfo {
  FaultKind kind;
  const char* name;
  bool integral;     // value must be a non-negative integer
  bool fractional;   // value must lie in (0, 1]
  bool stringy;      // value is a string operand (FaultSpec::text)
  double fallback;   // value when "name" appears without "=value"
};

constexpr KindInfo kKinds[] = {
    {FaultKind::kDropDays, "drop-days", true, false, false, 1},
    {FaultKind::kDropDay, "drop-day", true, false, false, 0},
    {FaultKind::kDropSnapshots, "drop-snapshots", true, false, false, 1},
    {FaultKind::kTruncateStore, "truncate-store", false, true, false, 0.5},
    {FaultKind::kFlipBytes, "flip-bytes", true, false, false, 1},
    {FaultKind::kDupRows, "dup-rows", false, true, false, 0.1},
    {FaultKind::kCrashAt, "crash-at", false, false, true, 0},
};

const KindInfo* FindKind(const std::string& name) {
  for (const KindInfo& info : kKinds) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const KindInfo& InfoOf(FaultKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) return info;
  }
  return kKinds[0];  // unreachable: every kind is in the table
}

}  // namespace

const char* FaultKindName(FaultKind kind) { return InfoOf(kind).name; }

bool Schedule::Has(FaultKind kind) const {
  for (const FaultSpec& f : faults) {
    if (f.kind == kind) return true;
  }
  return false;
}

double Schedule::TotalValue(FaultKind kind) const {
  double total = 0.0;
  for (const FaultSpec& f : faults) {
    if (f.kind == kind) total += f.value;
  }
  return total;
}

std::string Schedule::ToString() const {
  std::string out;
  for (const FaultSpec& f : faults) {
    if (!out.empty()) out += ",";
    out += FaultKindName(f.kind);
    out += "=";
    const KindInfo& info = InfoOf(f.kind);
    if (info.stringy) {
      out += f.text;
    } else if (info.integral) {
      out += std::to_string(static_cast<long long>(f.value));
    } else {
      // Shortest fixed rendering that round-trips the grammar values used
      // in practice (two decimals is the CLI's own precision).
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", f.value);
      out += buf;
    }
  }
  return out;
}

bool ParseSchedule(const std::string& text, Schedule* schedule,
                   std::string* error) {
  Schedule out;
  out.seed = schedule->seed;  // the seed is the caller's to set
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find_first_of(",;", pos);
    if (end == std::string::npos) end = text.size();
    std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding spaces.
    while (!entry.empty() && entry.front() == ' ') entry.erase(0, 1);
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty()) continue;

    // crash-at takes a string operand and also accepts ':' as its
    // separator (the chaos grammar's crash-at:<point> form); the numeric
    // kinds never contain ':' so find_first_of changes nothing for them.
    std::size_t eq = entry.find_first_of("=:");
    std::string name = entry.substr(0, eq);
    const KindInfo* info = FindKind(name);
    if (info == nullptr) {
      *error = "unknown fault '" + name + "' (see fault/schedule.h grammar)";
      return false;
    }
    if (info->stringy) {
      if (eq == std::string::npos || eq + 1 >= entry.size()) {
        *error = name + ": expected a crash-point name (see fault/crash.h)";
        return false;
      }
      std::string point = entry.substr(eq + 1);
      if (!IsCrashPoint(point)) {
        std::string known;
        for (const std::string& p : CrashPoints()) {
          if (!known.empty()) known += ", ";
          known += p;
        }
        *error = name + ": unknown crash point '" + point +
                 "' (registered: " + known + ")";
        return false;
      }
      out.faults.push_back(FaultSpec{info->kind, 0.0, std::move(point)});
      continue;
    }
    double value = info->fallback;
    if (eq != std::string::npos) {
      std::string text_value = entry.substr(eq + 1);
      const char* last = text_value.data() + text_value.size();
      auto [ptr, ec] = std::from_chars(text_value.data(), last, value);
      if (ec != std::errc{} || ptr != last || text_value.empty()) {
        *error = name + ": expected a number, got '" + text_value + "'";
        return false;
      }
    }
    if (info->integral &&
        (value < 0 || value != std::floor(value) || value > 1e9)) {
      *error = name + ": expected a non-negative integer, got '" +
               std::to_string(value) + "'";
      return false;
    }
    if (info->fractional && (value <= 0.0 || value > 1.0)) {
      *error = name + ": expected a fraction in (0, 1], got '" +
               std::to_string(value) + "'";
      return false;
    }
    out.faults.push_back(FaultSpec{info->kind, value});
  }
  *schedule = std::move(out);
  return true;
}

}  // namespace ipscope::fault
