#include "serve/snapshot.h"

namespace ipscope::serve {

// Member-initializer list, not assignment: no other thread can hold a
// reference yet, but initializing the guarded fields before the object is
// visible keeps every post-construction touch of current_/next_id_ behind
// mu_ (and keeps concurrency.guarded-by vacuously satisfiable).
SnapshotManager::SnapshotManager(activity::ActivityStore store)
    : current_(std::make_shared<const Snapshot>(1, std::move(store))),
      next_id_(2) {
  obs::GlobalRegistry().GetGauge("serve.snapshot.id").Set(1.0);
}

std::shared_ptr<const Snapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock{mu_};
  return current_;
}

std::uint64_t SnapshotManager::Install(activity::ActivityStore store) {
  std::shared_ptr<const Snapshot> next;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock{mu_};
    id = next_id_++;
    next = std::make_shared<const Snapshot>(id, std::move(store));
    // The swap is the whole "reload": readers that pinned the old pointer
    // keep it alive; the shared_ptr control block frees the old store when
    // the last pin drops.
    current_.swap(next);
  }
  auto& reg = obs::GlobalRegistry();
  reg.GetGauge("serve.snapshot.id").Set(static_cast<double>(id));
  reg.GetCounter("serve.snapshot.reloads").Add();
  return id;
}

std::uint64_t SnapshotManager::current_id() const {
  std::lock_guard<std::mutex> lock{mu_};
  return current_->id;
}

}  // namespace ipscope::serve
