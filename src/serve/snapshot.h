// Refcounted store snapshots: the serve daemon's isolation primitive.
//
// A Snapshot is one immutable ActivityStore plus a monotonically increasing
// id. SnapshotManager hands out shared_ptr pins: a reader calls Current()
// once per request and computes everything against that pin, so a reload —
// which just swaps the manager's pointer — never invalidates an in-flight
// query. The last reader to drop its pin frees the old store. This is the
// snapshot-isolation contract of DESIGN.md §4.14: answers are always
// internally consistent with exactly one snapshot, and a query that
// *starts* after a reload completes sees the new snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "activity/store.h"
#include "obs/registry.h"

namespace ipscope::serve {

struct Snapshot {
  std::uint64_t id = 0;
  activity::ActivityStore store;

  Snapshot(std::uint64_t id_, activity::ActivityStore store_)
      : id(id_), store(std::move(store_)) {}
};

class SnapshotManager {
 public:
  // Installs `store` as snapshot 1.
  explicit SnapshotManager(activity::ActivityStore store);

  // Pins the current snapshot. The returned pointer stays valid (and the
  // underlying store immutable) for as long as the caller holds it,
  // regardless of concurrent Install calls.
  std::shared_ptr<const Snapshot> Current() const;

  // Atomically replaces the current snapshot; returns the new id. Readers
  // pinned to the old snapshot are unaffected; its storage is freed when
  // the last pin drops.
  std::uint64_t Install(activity::ActivityStore store);

  std::uint64_t current_id() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;  // guards: mu_
  std::uint64_t next_id_ = 1;                // guards: mu_
};

}  // namespace ipscope::serve
