#include "serve/server.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "activity/churn.h"
#include "activity/pattern.h"
#include "geo/country.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "par/pool.h"
#include "serve/frame.h"
#include "sim/world.h"

namespace ipscope::serve {

namespace {

namespace json = obs::json;

// A routing failure with a wire-visible kind. Thrown internally by the
// endpoint handlers and rendered as {"ok": false, "error": {...}}; it
// never escapes DirectAnswer.
struct RequestError {
  std::string kind;
  std::string message;
};

[[noreturn]] void FailRequest(std::string kind, std::string message) {
  throw RequestError{std::move(kind), std::move(message)};
}

void AppendInt(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

std::string ErrorResponse(const std::string& kind, const std::string& message) {
  std::string out = R"({"ok": false, "error": {"kind": ")";
  out += json::Escape(kind);
  out += R"(", "message": ")";
  out += json::Escape(message);
  out += "\"}}";
  return out;
}

// --- request field accessors ---------------------------------------------

const json::Value* Find(const json::Value& req, const std::string& key) {
  return req.Find(key);
}

// Integer field with bounds; `fallback` when absent.
std::int64_t IntField(const json::Value& req, const std::string& key,
                      std::int64_t fallback, std::int64_t lo,
                      std::int64_t hi) {
  const json::Value* v = Find(req, key);
  if (v == nullptr) {
    if (fallback < lo || fallback > hi) {
      FailRequest("bad-request", "required field \"" + key + "\" is missing");
    }
    return fallback;
  }
  if (!v->is_number()) {
    FailRequest("bad-request", "field \"" + key + "\" must be a number");
  }
  double d = v->AsNumber();
  auto n = static_cast<std::int64_t>(d);
  if (static_cast<double>(n) != d || n < lo || n > hi) {
    FailRequest("bad-request", "field \"" + key + "\" out of range [" +
                                   std::to_string(lo) + ", " +
                                   std::to_string(hi) + "]");
  }
  return n;
}

std::string StringField(const json::Value& req, const std::string& key) {
  const json::Value* v = Find(req, key);
  if (v == nullptr || !v->is_string()) {
    FailRequest("bad-request",
                "required string field \"" + key + "\" is missing");
  }
  return v->AsString();
}

net::Prefix PrefixField(const json::Value& req, const std::string& key,
                        int max_length) {
  std::string text = StringField(req, key);
  auto prefix = net::Prefix::Parse(text);
  if (!prefix || prefix->length() > max_length) {
    FailRequest("bad-request", "field \"" + key + "\" ('" + text +
                                   "') is not a prefix of length <= " +
                                   std::to_string(max_length));
  }
  return *prefix;
}

// [day_first, day_last) window, defaulting to the full period.
std::pair<int, int> WindowFields(const json::Value& req, int days) {
  int first = static_cast<int>(IntField(req, "day_first", 0, 0, days));
  int last = static_cast<int>(IntField(req, "day_last", days, 0, days));
  if (first > last) {
    FailRequest("bad-request", "day_first must be <= day_last");
  }
  return {first, last};
}

// --- per-endpoint handlers -----------------------------------------------
// All of them render into `out` against one immutable store; determinism
// is inherited from the store reductions (ParallelReduce merges in chunk
// order, so thread count never changes a byte).

void AnswerSummary(std::string& out, const activity::ActivityStore& store) {
  out += R"("result": {"days": )";
  AppendInt(out, store.days());
  out += R"(, "blocks": )";
  AppendInt(out, static_cast<std::int64_t>(store.BlockCount()));
  out += R"(, "covered_days": )";
  AppendInt(out, store.CoveredDaysIn(0, store.days()));
  out += R"(, "unique_addresses": )";
  AppendInt(out, static_cast<std::int64_t>(store.CountActive(0, store.days())));
  out += R"(, "active_per_day": [)";
  auto daily = store.DailyActiveCounts();
  for (std::size_t i = 0; i < daily.size(); ++i) {
    if (i) out += ", ";
    AppendInt(out, daily[i]);
  }
  out += "]}";
}

void AnswerPoint(std::string& out, const activity::ActivityStore& store,
                 const json::Value& req) {
  net::Prefix block = PrefixField(req, "block", 24);
  if (block.length() != 24) {
    FailRequest("bad-request", "field \"block\" must be a /24 prefix");
  }
  const activity::ActivityMatrix* matrix = store.Find(net::BlockKeyOf(block));
  if (matrix == nullptr) {
    out += R"("result": {"present": false})";
    return;
  }
  const json::Value* host_field = Find(req, "host");
  if (host_field != nullptr) {
    int host = static_cast<int>(IntField(req, "host", -1, 0, 255));
    out += R"("result": {"present": true, "host": )";
    AppendInt(out, host);
    out += R"(, "active_days": )";
    AppendInt(out, matrix->HostActiveDays(host));
    out += R"(, "days": [)";
    bool first = true;
    for (int d = 0; d < matrix->days(); ++d) {
      if (!matrix->Get(d, host)) continue;
      if (!first) out += ", ";
      first = false;
      AppendInt(out, d);
    }
    out += "]}";
    return;
  }
  auto features = activity::ComputeFeatures(*matrix);
  out += R"("result": {"present": true, "fd": )";
  AppendInt(out, features.filling_degree);
  out += R"(, "stu": )";
  out += JsonNumber(features.stu);
  out += R"(, "pattern": ")";
  out += activity::PatternName(activity::ClassifyPattern(features));
  out += R"(", "active_per_day": [)";
  for (int d = 0; d < matrix->days(); ++d) {
    if (d) out += ", ";
    AppendInt(out, matrix->ActiveOnDay(d));
  }
  out += "]}";
}

// Index range [lo, hi) of store blocks under `prefix` (length <= 24).
std::pair<std::size_t, std::size_t> BlockRange(
    const activity::ActivityStore& store, net::Prefix prefix) {
  auto keys = store.keys();
  net::BlockKey first_key = net::BlockKeyOf(prefix);
  std::uint64_t span = std::uint64_t{1} << (24 - prefix.length());
  auto lo = std::lower_bound(keys.begin(), keys.end(), first_key);
  auto hi = std::lower_bound(
      keys.begin(), keys.end(),
      static_cast<net::BlockKey>(
          std::min<std::uint64_t>(first_key + span, 0x1000000)));
  return {static_cast<std::size_t>(lo - keys.begin()),
          static_cast<std::size_t>(hi - keys.begin())};
}

void AnswerPrefix(std::string& out, const activity::ActivityStore& store,
                  const json::Value& req) {
  net::Prefix prefix = PrefixField(req, "prefix", 24);
  auto [day_first, day_last] = WindowFields(req, store.days());
  auto [lo, hi] = BlockRange(store, prefix);
  struct Acc {
    std::int64_t addresses = 0;
    std::int64_t blocks = 0;
  };
  Acc total = par::ParallelReduce(
      lo, hi, Acc{},
      [&store, day_first = day_first, day_last = day_last](
          Acc& acc, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          int active = activity::PopCount(
              store.MatrixAt(i).UnionOver(day_first, day_last));
          acc.addresses += active;
          acc.blocks += active > 0 ? 1 : 0;
        }
      },
      [](Acc& into, Acc&& from) {
        into.addresses += from.addresses;
        into.blocks += from.blocks;
      },
      /*grain=*/256);
  out += R"("result": {"prefix": ")";
  out += prefix.ToString();
  out += R"(", "day_first": )";
  AppendInt(out, day_first);
  out += R"(, "day_last": )";
  AppendInt(out, day_last);
  out += R"(, "active_addresses": )";
  AppendInt(out, total.addresses);
  out += R"(, "active_blocks": )";
  AppendInt(out, total.blocks);
  out += "}";
}

// Shared body of the as/country endpoints: sum activity over the
// attributed block set selected by `match`.
template <typename MatchFn>
void AnswerAttributed(std::string& out, const activity::ActivityStore& store,
                      std::span<const BlockAttribution> attribution,
                      const json::Value& req, MatchFn&& match) {
  if (attribution.empty()) {
    FailRequest("attribution-unavailable",
                "this daemon was started without a world attribution table "
                "(--world-blocks); as/country endpoints need one");
  }
  auto [day_first, day_last] = WindowFields(req, store.days());
  std::int64_t addresses = 0;
  std::int64_t active_blocks = 0;
  std::int64_t attributed_blocks = 0;
  for (const BlockAttribution& entry : attribution) {
    if (!match(entry)) continue;
    ++attributed_blocks;
    const activity::ActivityMatrix* matrix = store.Find(entry.key);
    if (matrix == nullptr) continue;
    int active =
        activity::PopCount(matrix->UnionOver(day_first, day_last));
    addresses += active;
    active_blocks += active > 0 ? 1 : 0;
  }
  out += R"(, "day_first": )";
  AppendInt(out, day_first);
  out += R"(, "day_last": )";
  AppendInt(out, day_last);
  out += R"(, "attributed_blocks": )";
  AppendInt(out, attributed_blocks);
  out += R"(, "active_blocks": )";
  AppendInt(out, active_blocks);
  out += R"(, "active_addresses": )";
  AppendInt(out, addresses);
  out += "}";
}

void AnswerAs(std::string& out, const activity::ActivityStore& store,
              std::span<const BlockAttribution> attribution,
              const json::Value& req) {
  auto asn = static_cast<std::uint32_t>(
      IntField(req, "asn", -1, 0, std::numeric_limits<std::uint32_t>::max()));
  out += R"("result": {"asn": )";
  AppendInt(out, asn);
  AnswerAttributed(out, store, attribution, req,
                   [asn](const BlockAttribution& e) { return e.asn == asn; });
}

void AnswerCountry(std::string& out, const activity::ActivityStore& store,
                   std::span<const BlockAttribution> attribution,
                   const json::Value& req) {
  std::string code = StringField(req, "code");
  int index = geo::CountryIndex(code);
  if (index < 0) {
    FailRequest("bad-request", "unknown country code '" + code + "'");
  }
  out += R"("result": {"code": ")";
  out += json::Escape(code);
  out += "\"";
  auto want = static_cast<std::int16_t>(index);
  AnswerAttributed(
      out, store, attribution, req,
      [want](const BlockAttribution& e) { return e.country == want; });
}

void AnswerChurn(std::string& out, const activity::ActivityStore& store,
                 const json::Value& req) {
  int window = static_cast<int>(
      IntField(req, "window", 7, 1, std::max(1, store.days())));
  auto series = activity::ChurnAnalyzer{store}.Churn(window);
  auto append_doubles = [&out](const std::vector<double>& values) {
    out += "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += JsonNumber(values[i]);
    }
    out += "]";
  };
  out += R"("result": {"window": )";
  AppendInt(out, series.window_days);
  out += R"(, "pairs": [)";
  for (std::size_t i = 0; i < series.pairs.size(); ++i) {
    if (i) out += ", ";
    AppendInt(out, series.pairs[i]);
  }
  out += R"(], "up_pct": )";
  append_doubles(series.up_pct);
  out += R"(, "down_pct": )";
  append_doubles(series.down_pct);
  out += R"(, "up": {"min": )";
  out += JsonNumber(series.up.min);
  out += R"(, "median": )";
  out += JsonNumber(series.up.median);
  out += R"(, "max": )";
  out += JsonNumber(series.up.max);
  out += R"(}, "down": {"min": )";
  out += JsonNumber(series.down.min);
  out += R"(, "median": )";
  out += JsonNumber(series.down.median);
  out += R"(, "max": )";
  out += JsonNumber(series.down.max);
  out += "}}";
}

void AnswerPatterns(std::string& out, const activity::ActivityStore& store,
                    const json::Value& req) {
  std::size_t lo = 0;
  std::size_t hi = store.BlockCount();
  if (Find(req, "prefix") != nullptr) {
    std::tie(lo, hi) = BlockRange(store, PrefixField(req, "prefix", 24));
  }
  constexpr int kPatterns = 6;  // BlockPattern enumerators
  using Counts = std::array<std::int64_t, kPatterns>;
  Counts counts = par::ParallelReduce(
      lo, hi, Counts{},
      [&store](Counts& acc, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          auto p = activity::ClassifyPattern(store.MatrixAt(i));
          ++acc[static_cast<std::size_t>(p)];
        }
      },
      [](Counts& into, Counts&& from) {
        for (int p = 0; p < kPatterns; ++p) into[static_cast<std::size_t>(p)] += from[static_cast<std::size_t>(p)];
      },
      /*grain=*/64);
  out += R"("result": {"blocks": )";
  AppendInt(out, static_cast<std::int64_t>(hi - lo));
  out += R"(, "counts": {)";
  for (int p = 0; p < kPatterns; ++p) {
    if (p) out += ", ";
    out += "\"";
    out += activity::PatternName(static_cast<activity::BlockPattern>(p));
    out += "\": ";
    AppendInt(out, counts[static_cast<std::size_t>(p)]);
  }
  out += "}}";
}

}  // namespace

std::string JsonNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Server::Server(activity::ActivityStore store, ServerOptions options)
    : options_(options),
      snapshots_(std::move(store)),
      cache_(options.cache_capacity, options.cache_shards) {
  // Seeded stale-snapshot bug for the run_all.sh teeth check: with the
  // flag set, the cache key ignores the snapshot id, so responses cached
  // before a reload keep being served afterwards. The client-swarm smoke
  // must catch the stale snapshot id in post-reload responses.
  skip_pin_ = obs::EnvString("IPSCOPE_SERVE_SKIP_PIN").has_value();
}

void Server::SetAttribution(std::vector<BlockAttribution> attribution) {
  std::sort(attribution.begin(), attribution.end(),
            [](const BlockAttribution& a, const BlockAttribution& b) {
              return a.key < b.key;
            });
  attribution_ = std::move(attribution);
}

std::vector<BlockAttribution> Server::AttributionFromWorld(
    const sim::World& world) {
  std::vector<BlockAttribution> out;
  out.reserve(world.blocks().size());
  for (const sim::BlockPlan& plan : world.blocks()) {
    out.push_back(BlockAttribution{net::BlockKeyOf(plan.block), plan.asn,
                                   plan.country});
  }
  return out;
}

std::uint64_t Server::Reload(activity::ActivityStore store) {
  return snapshots_.Install(std::move(store));
}

std::string Server::HandleFrame(std::string_view frame_bytes) {
  auto decoded = DecodeFrame(frame_bytes, options_.max_frame_bytes);
  if (!decoded.ok()) {
    obs::GlobalRegistry().GetCounter("serve.frames.bad").Add();
    return EncodeFrame(
        ErrorResponse("bad-frame", decoded.error().ToString()));
  }
  return EncodeFrame(HandleRequest(decoded.value().body));
}

std::string Server::HandleRequest(std::string_view body) {
  auto& reg = obs::GlobalRegistry();
  reg.GetCounter("serve.requests").Add();
  std::uint64_t n = requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  double elapsed = uptime_.Seconds();
  if (elapsed > 0) {
    reg.GetGauge("serve.qps").Set(static_cast<double>(n) / elapsed);
  }

  // Pin exactly one snapshot for the whole request.
  std::shared_ptr<const Snapshot> pin = snapshots_.Current();
  std::uint64_t key =
      FingerprintQuery(body, skip_pin_ ? 0 : pin->id);  // see ctor comment
  if (auto hit = cache_.Get(key)) return std::move(*hit);

  std::string response =
      DirectAnswer(pin->store, pin->id, attribution_, body);
  cache_.Put(key, response);
  return response;
}

std::vector<std::string> Server::HandleBatch(
    const std::vector<std::string>& bodies) {
  std::vector<std::string> responses(bodies.size());
  par::ParallelFor(
      par::GlobalPool(), 0, bodies.size(),
      [this, &bodies, &responses](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          responses[i] = HandleRequest(bodies[i]);
        }
      });
  return responses;
}

std::string Server::DirectAnswer(
    const activity::ActivityStore& store, std::uint64_t snapshot_id,
    std::span<const BlockAttribution> attribution, std::string_view body) {
  auto& reg = obs::GlobalRegistry();
  json::Value req = json::Value::Null();
  try {
    req = json::Parse(body);
  } catch (const std::runtime_error& e) {
    reg.GetCounter("serve.errors").Add();
    return ErrorResponse("bad-json", e.what());
  }
  std::string endpoint;
  try {
    if (!req.is_object()) {
      FailRequest("bad-request", "request body must be a JSON object");
    }
    endpoint = StringField(req, "endpoint");
    obs::ScopedTimer timer{reg,
                           "serve.endpoint." + endpoint + ".seconds"};
    std::string out = R"({"ok": true, "endpoint": ")";
    out += json::Escape(endpoint);
    out += R"(", "snapshot": )";
    AppendInt(out, static_cast<std::int64_t>(snapshot_id));
    out += ", ";
    if (endpoint == "summary") {
      AnswerSummary(out, store);
    } else if (endpoint == "point") {
      AnswerPoint(out, store, req);
    } else if (endpoint == "prefix") {
      AnswerPrefix(out, store, req);
    } else if (endpoint == "as") {
      AnswerAs(out, store, attribution, req);
    } else if (endpoint == "country") {
      AnswerCountry(out, store, attribution, req);
    } else if (endpoint == "churn") {
      AnswerChurn(out, store, req);
    } else if (endpoint == "patterns") {
      AnswerPatterns(out, store, req);
    } else {
      FailRequest("unknown-endpoint",
                  "unknown endpoint '" + endpoint + "'");
    }
    out += "}";
    return out;
  } catch (const RequestError& e) {
    reg.GetCounter("serve.errors").Add();
    return ErrorResponse(e.kind, e.message);
  } catch (const std::runtime_error& e) {
    // A schema error from the json accessors (wrong kinds, etc).
    reg.GetCounter("serve.errors").Add();
    return ErrorResponse("bad-request", e.what());
  }
}

}  // namespace ipscope::serve
