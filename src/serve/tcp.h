// Minimal TCP transport for the serve daemon.
//
// One listener thread-loop (RunTcpServer blocks the calling thread) polls
// the listening socket with a short timeout so the drain predicate is
// observed promptly, accepts connections, and hands each one to a
// connection thread. A connection reads length-prefixed frames
// (serve/frame.h), answers through Server::HandleFrame, and writes the
// response frame back; it exits on EOF, on any socket error, or at the
// next frame boundary once draining starts — in-flight requests always
// finish (the drain contract of src/cli/signals.h).
//
// This is deliberately not an async i/o engine: the query engine below it
// is CPU-bound and already parallel (par::Pool), so a thread per
// connection with a bounded accept backlog is enough for the client
// swarms the bench drives.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "io/result.h"
#include "serve/server.h"

namespace ipscope::serve {

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the chosen port is reported via on_listen
  int max_connections = 64;
  // Poll granularity for the accept loop and idle connections; bounds how
  // long a drain request can go unnoticed.
  int poll_millis = 100;
};

struct TcpError {
  std::string message;
};

// Serves until `should_stop` returns true. `on_listen` (optional) is
// invoked once with the bound port before the first accept. Returns an
// error only for setup failures (bind/listen); per-connection errors are
// counted in the metrics registry and close that connection.
Result<std::uint64_t, TcpError> RunTcpServer(
    Server& server, const TcpOptions& options,
    const std::function<bool()>& should_stop,
    const std::function<void(int port)>& on_listen = nullptr);

}  // namespace ipscope::serve
