// Sharded LRU cache for rendered responses.
//
// The key is a 64-bit fingerprint of (canonical request body × snapshot
// id); the value is the exact response string the router rendered. Caching
// whole rendered responses is what makes the bit-identity contract trivial
// to keep: a cache hit returns the very bytes a miss produced, so hits and
// misses are byte-identical by construction, and the snapshot id in the
// key guarantees a reload can never serve a stale answer to a new query
// (the teeth test for exactly this bug is the IPSCOPE_SERVE_SKIP_PIN gate
// in scripts/run_all.sh).
//
// Sharding: the key's low bits pick a shard, each shard has its own mutex
// and LRU list, so an 8-thread hammer contends on 1/shards of the locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ipscope::serve {

class ResultCache {
 public:
  // `capacity` is the total entry budget, split evenly across `shards`
  // (each shard holds at least one entry). capacity == 0 disables the
  // cache entirely: Get always misses, Put is a no-op.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns a copy of the cached response and promotes the entry to
  // most-recently-used.
  std::optional<std::string> Get(std::uint64_t key);

  // Inserts (or refreshes) an entry, evicting the shard's LRU tail beyond
  // capacity.
  void Put(std::uint64_t key, std::string value);

  std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // guards: mu — front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index;  // guards: mu
  };

  Shard& ShardFor(std::uint64_t key) {
    return shards_[static_cast<std::size_t>(key) & (shards_.size() - 1)];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

// FNV-1a over `text`, folded with `snapshot_id` — the cache-key scheme
// `query-fingerprint × snapshot-id` (DESIGN.md §4.14).
std::uint64_t FingerprintQuery(std::string_view text,
                               std::uint64_t snapshot_id);

}  // namespace ipscope::serve
