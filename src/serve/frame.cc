#include "serve/frame.h"

namespace ipscope::serve {

const char* FrameErrorKindName(FrameError::Kind kind) {
  switch (kind) {
    case FrameError::Kind::kTruncated: return "truncated";
    case FrameError::Kind::kBadMagic: return "bad-magic";
    case FrameError::Kind::kOversized: return "oversized";
  }
  return "?";
}

std::string FrameError::ToString() const {
  return std::string("frame ") + FrameErrorKindName(kind) + " at offset " +
         std::to_string(offset) + ": " + message;
}

std::string EncodeFrame(std::string_view body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.append(body);
  return out;
}

Result<DecodedFrame, FrameError> DecodeFrame(std::string_view bytes,
                                             std::size_t max_body_bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return FrameError{FrameError::Kind::kTruncated, bytes.size(),
                      "need " + std::to_string(kFrameHeaderBytes) +
                          " header bytes, have " +
                          std::to_string(bytes.size())};
  }
  for (std::size_t i = 0; i < sizeof(kFrameMagic); ++i) {
    if (bytes[i] != kFrameMagic[i]) {
      return FrameError{FrameError::Kind::kBadMagic, i,
                        "expected magic \"IPSQ\""};
    }
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[4 + static_cast<size_t>(i)]))
           << (8 * i);
  }
  if (len > max_body_bytes) {
    return FrameError{FrameError::Kind::kOversized, 4,
                      "declared body of " + std::to_string(len) +
                          " bytes exceeds the " +
                          std::to_string(max_body_bytes) + "-byte ceiling"};
  }
  if (bytes.size() < kFrameHeaderBytes + len) {
    return FrameError{FrameError::Kind::kTruncated, bytes.size(),
                      "declared body of " + std::to_string(len) +
                          " bytes, only " +
                          std::to_string(bytes.size() - kFrameHeaderBytes) +
                          " present"};
  }
  return DecodedFrame{bytes.substr(kFrameHeaderBytes, len),
                      kFrameHeaderBytes + len};
}

}  // namespace ipscope::serve
