// The serve request router: JSON request in, JSON response out.
//
// A Server owns a SnapshotManager (reloadable store), an optional
// block→(AS, country) attribution table, and a sharded ResultCache. The
// transport (serve/tcp.h, tests, bench_serve) hands it one frame or one
// JSON body at a time; everything here is thread-safe and deterministic:
// the same request against the same snapshot renders byte-identical
// output, which is what the oracle tests diff against direct
// ActivityStore/analysis calls.
//
// Endpoints (request: {"endpoint": "<name>", ...}):
//   summary   — whole-store totals and the daily active series
//   point     — one /24 block: FD/STU/pattern, or one host's active days
//   prefix    — active addresses/blocks under a prefix (length <= 24)
//   as        — activity attributed to one origin AS
//   country   — activity attributed to one ISO country code
//   churn     — windowed up/down churn series (paper Fig 4b)
//   patterns  — Fig-6 pattern-class histogram, optional prefix restriction
//
// Every response carries "snapshot": the id it was computed against. The
// snapshot-isolation contract (DESIGN.md §4.14): a request pins exactly
// one snapshot for its whole lifetime, and a request that starts after
// Reload() returns sees the new snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/prefix.h"
#include "obs/timer.h"
#include "serve/cache.h"
#include "serve/snapshot.h"

namespace ipscope::sim {
class World;
}  // namespace ipscope::sim

namespace ipscope::serve {

// Maps one /24 block to its origin AS and country (index into
// geo::Countries()). The table is fixed at server setup: attribution is a
// property of the simulated world, not of a particular store snapshot.
struct BlockAttribution {
  net::BlockKey key = 0;
  std::uint32_t asn = 0;
  std::int16_t country = -1;
};

struct ServerOptions {
  std::size_t max_frame_bytes = 1 << 20;
  std::size_t cache_capacity = 4096;  // rendered responses, all shards
  std::size_t cache_shards = 8;
};

class Server {
 public:
  explicit Server(activity::ActivityStore store, ServerOptions options = {});

  // Installs the block attribution table (sorted internally). Must be
  // called before serving starts; the table is immutable afterwards.
  void SetAttribution(std::vector<BlockAttribution> attribution);

  // Extracts attribution from a simulated world's block plans.
  static std::vector<BlockAttribution> AttributionFromWorld(
      const sim::World& world);

  // Swaps in a new snapshot; in-flight requests keep answering from the
  // snapshot they pinned. Returns the new snapshot id.
  std::uint64_t Reload(activity::ActivityStore store);

  std::uint64_t snapshot_id() const { return snapshots_.current_id(); }
  std::size_t max_frame_bytes() const { return options_.max_frame_bytes; }

  // Full wire round trip: decode one request frame, answer, encode the
  // response frame. Malformed frames produce an error-response frame,
  // never a throw.
  std::string HandleFrame(std::string_view frame_bytes);

  // One JSON request body -> one JSON response body (cache + metrics).
  std::string HandleRequest(std::string_view body);

  // Answers a batch on the shared par::Pool: the daemon's worker loop.
  // Results are positionally aligned with `bodies`.
  std::vector<std::string> HandleBatch(const std::vector<std::string>& bodies);

  // The oracle path: parse + route + render against an explicit store, no
  // cache, no snapshot pinning, no metrics. HandleRequest is exactly
  // "DirectAnswer against the pinned snapshot, memoized" — tests and
  // bench_serve diff the two byte-for-byte.
  static std::string DirectAnswer(const activity::ActivityStore& store,
                                  std::uint64_t snapshot_id,
                                  std::span<const BlockAttribution> attribution,
                                  std::string_view body);

 private:
  ServerOptions options_;
  SnapshotManager snapshots_;
  ResultCache cache_;
  std::vector<BlockAttribution> attribution_;
  bool skip_pin_ = false;  // IPSCOPE_SERVE_SKIP_PIN seeded bug (run_all teeth)
  obs::Stopwatch uptime_;
  std::atomic<std::uint64_t> requests_{0};
};

// Renders a double exactly as the serve responses do (%.17g — enough
// digits to round-trip). Exposed so oracle tests can construct expected
// response text from direct analysis results.
std::string JsonNumber(double value);

}  // namespace ipscope::serve
