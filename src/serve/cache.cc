#include "serve/cache.h"

#include <bit>

#include "obs/registry.h"

namespace ipscope::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) {
    per_shard_capacity_ = 0;
    shards_ = std::vector<Shard>(1);
    return;
  }
  // Power-of-two shard count so ShardFor is a mask, not a division.
  std::size_t n = std::bit_ceil(shards == 0 ? std::size_t{1} : shards);
  if (n > capacity) n = std::bit_floor(capacity);
  if (n == 0) n = 1;
  per_shard_capacity_ = (capacity + n - 1) / n;
  shards_ = std::vector<Shard>(n);
}

std::optional<std::string> ResultCache::Get(std::uint64_t key) {
  auto& reg = obs::GlobalRegistry();
  if (per_shard_capacity_ == 0) {
    reg.GetCounter("serve.cache.misses").Add();
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock{shard.mu};
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    reg.GetCounter("serve.cache.misses").Add();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  reg.GetCounter("serve.cache.hits").Add();
  return it->second->value;
}

void ResultCache::Put(std::uint64_t key, std::string value) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock{shard.mu};
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    obs::GlobalRegistry().GetCounter("serve.cache.evictions").Add();
  }
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock{shard.mu};
    total += shard.lru.size();
  }
  return total;
}

std::uint64_t FingerprintQuery(std::string_view text,
                               std::uint64_t snapshot_id) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;  // FNV prime
  };
  for (char c : text) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<unsigned char>((snapshot_id >> (8 * i)) & 0xFF));
  }
  return h;
}

}  // namespace ipscope::serve
