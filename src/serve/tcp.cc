#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/registry.h"
#include "serve/frame.h"

namespace ipscope::serve {

namespace {

void CloseFd(int fd) {
  if (::close(fd) != 0) {
    obs::GlobalRegistry().GetCounter("serve.tcp.close_errors").Add();
  }
}

// Reads exactly `want` bytes into `buf`. While no byte of the current
// frame has arrived yet (`frame_started` false), a drain request ends the
// connection cleanly; once a frame is underway it is always completed.
// Returns false on EOF, error, or drain-before-frame.
bool ReadExactly(int fd, char* buf, std::size_t want, bool frame_started,
                 const std::function<bool()>& should_stop, int poll_millis) {
  std::size_t got = 0;
  while (got < want) {
    if (!frame_started && should_stop()) return false;
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, poll_millis);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal; loop re-checks should_stop
      return false;
    }
    if (ready == 0) continue;  // timeout; re-check drain
    ssize_t n = ::read(fd, buf + got, want - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or hard error
    }
    got += static_cast<std::size_t>(n);
    frame_started = true;
  }
  return true;
}

bool WriteAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void ServeConnection(Server& server, int fd, std::size_t max_body,
                     const std::function<bool()>& should_stop,
                     int poll_millis) {
  auto& reg = obs::GlobalRegistry();
  std::string frame;
  while (!should_stop()) {
    frame.resize(kFrameHeaderBytes);
    if (!ReadExactly(fd, frame.data(), kFrameHeaderBytes,
                     /*frame_started=*/false, should_stop, poll_millis)) {
      break;
    }
    // Decode just the header to learn the body length. Header-level
    // errors (bad magic, oversized) get an error response, then the
    // connection closes: a stream that lost framing cannot be resynced.
    auto header = DecodeFrame(frame, max_body);
    bool header_bad = !header.ok() &&
                      header.error().kind != FrameError::Kind::kTruncated;
    if (header_bad) {
      reg.GetCounter("serve.frames.bad").Add();
      WriteAll(fd, EncodeFrame(
                       R"({"ok": false, "error": {"kind": "bad-frame", )"
                       R"("message": ")" +
                       obs::json::Escape(header.error().ToString()) +
                       "\"}}"));
      break;
    }
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                      frame[4 + static_cast<std::size_t>(i)]))
                  << (8 * i);
    }
    frame.resize(kFrameHeaderBytes + body_len);
    if (body_len > 0 &&
        !ReadExactly(fd, frame.data() + kFrameHeaderBytes, body_len,
                     /*frame_started=*/true, should_stop, poll_millis)) {
      break;  // peer died mid-frame
    }
    if (!WriteAll(fd, server.HandleFrame(frame))) break;
  }
  CloseFd(fd);
}

}  // namespace

Result<std::uint64_t, TcpError> RunTcpServer(
    Server& server, const TcpOptions& options,
    const std::function<bool()>& should_stop,
    const std::function<void(int port)>& on_listen) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return TcpError{std::string("socket: ") + std::strerror(errno)};
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd);
    return TcpError{"bad bind address: " + options.bind_address};
  }
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    TcpError err{std::string("bind: ") + std::strerror(errno)};
    CloseFd(listen_fd);
    return err;
  }
  if (::listen(listen_fd, options.max_connections) != 0) {
    TcpError err{std::string("listen: ") + std::strerror(errno)};
    CloseFd(listen_fd);
    return err;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0 &&
      on_listen) {
    on_listen(static_cast<int>(ntohs(addr.sin_port)));
  }

  auto& reg = obs::GlobalRegistry();
  std::uint64_t accepted = 0;
  std::atomic<int> active{0};
  std::vector<std::thread> workers;
  std::mutex workers_mu;

  while (!should_stop()) {
    struct pollfd pfd = {};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, options.poll_millis);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal; loop re-checks should_stop
      break;
    }
    if (ready == 0) continue;
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      continue;  // transient accept failure; keep serving
    }
    if (active.load(std::memory_order_relaxed) >= options.max_connections) {
      reg.GetCounter("serve.tcp.rejected").Add();
      CloseFd(conn);
      continue;
    }
    ++accepted;
    reg.GetCounter("serve.tcp.connections").Add();
    active.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock{workers_mu};
    workers.emplace_back([&server, conn, &options, &should_stop, &active] {
      ServeConnection(server, conn, server.max_frame_bytes(), should_stop,
                      options.poll_millis);
      active.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  CloseFd(listen_fd);
  // Drain: every connection thread exits at its next frame boundary (or
  // poll tick); in-flight requests complete first.
  for (std::thread& t : workers) t.join();
  return accepted;
}

}  // namespace ipscope::serve
