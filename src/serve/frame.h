// Length-prefixed framing for the serve wire protocol.
//
// One frame is:
//   4 bytes  magic "IPSQ"
//   u32 LE   body length in bytes
//   bytes    body (a JSON document, parsed with obs::json::Parse)
//
// Requests and responses use the same frame; the protocol is strictly
// request/response per frame, no pipelining semantics beyond TCP ordering.
// Decoding never throws: malformed input (wrong magic, oversized length,
// truncated body) comes back as a typed FrameError with the byte offset of
// the problem, so a garbage client can never crash the daemon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "io/result.h"

namespace ipscope::serve {

// "IPSQ" — IPscope Query. Distinct from the store magics (IPSCOPE1/2) so a
// store file piped at the daemon fails loudly as kBadMagic.
inline constexpr char kFrameMagic[4] = {'I', 'P', 'S', 'Q'};
inline constexpr std::size_t kFrameHeaderBytes = 8;

// Default ceiling on a frame body. Queries are small JSON documents; a
// length field beyond this is a corrupt or hostile frame, not a real
// request, and is rejected before any allocation.
inline constexpr std::size_t kDefaultMaxBodyBytes = 1 << 20;

struct FrameError {
  enum class Kind {
    kTruncated,  // fewer bytes than the header or declared body length
    kBadMagic,   // first four bytes are not "IPSQ"
    kOversized,  // declared body length exceeds the configured ceiling
  };
  Kind kind = Kind::kTruncated;
  std::uint64_t offset = 0;  // byte offset of the problem within the input
  std::string message;

  std::string ToString() const;
};

const char* FrameErrorKindName(FrameError::Kind kind);

struct DecodedFrame {
  std::string_view body;   // view into the input buffer
  std::size_t consumed = 0;  // header + body bytes eaten from the input
};

// Encodes one frame around `body`.
std::string EncodeFrame(std::string_view body);

// Decodes one frame from the front of `bytes`. The returned body is a view
// into `bytes`; the caller owns the buffer.
Result<DecodedFrame, FrameError> DecodeFrame(
    std::string_view bytes, std::size_t max_body_bytes = kDefaultMaxBodyBytes);

}  // namespace ipscope::serve
