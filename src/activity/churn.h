// Address churn: up/down events across aggregation windows (Section 4).
//
// Definitions from the paper:
//  * The observation period is partitioned into non-overlapping windows of a
//    given size; each window's active set is the union of its days.
//  * An address has an "up" event between windows i and i+1 if it is absent
//    from window i and present in window i+1; a "down" event if present in
//    i and absent from i+1.
//  * Up-event percentage for the pair = 100 * |W_{i+1} \ W_i| / |W_{i+1}|;
//    down-event percentage = 100 * |W_i \ W_{i+1}| / |W_i|.
//
// Data gaps (ActivityStore coverage mask): a day the platform never
// observed carries no evidence of deactivation, so — mirroring the paper's
// exclusion of unreliable collection periods — windows without a single
// covered day are excluded from event computation entirely. A window pair
// is reported only when both windows contain at least one covered day;
// WindowChurnSeries::pairs records which pairs survived. On fully covered
// datasets the output is identical to the pre-coverage behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "activity/store.h"

namespace ipscope::activity {

struct MinMedianMax {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

// Churn between every consecutive pair of windows of one size (Fig 4b).
struct WindowChurnSeries {
  int window_days = 0;
  // pairs[i] is the window index w of the i-th reported pair (w -> w+1).
  // Equal to 0..n-2 on fully covered datasets; pairs touching a window
  // with no covered day are omitted.
  std::vector<int> pairs;
  std::vector<double> up_pct;    // one per reported pair
  std::vector<double> down_pct;  // one per reported pair
  MinMedianMax up;
  MinMedianMax down;
};

// Absolute daily event counts (Fig 4a): up[d] / down[d] are the number of
// addresses with an up/down event between day d and day d+1. Entries
// touching an uncovered day are -1 ("no data"), never 0.
struct DailyEventSeries {
  std::vector<std::int64_t> active;  // per day; -1 where the day is uncovered
  std::vector<std::int64_t> up;      // per day pair (size days-1); -1 where
                                     // either endpoint day is uncovered
  std::vector<std::int64_t> down;    // per day pair; -1 as above
};

// Long-term appear/disappear vs the first window (Fig 4c): appear[i] is the
// number of addresses active in window i but not in window 0; disappear[i]
// the number active in window 0 but not in window i.
struct VersusFirstSeries {
  int window_days = 0;
  std::vector<std::uint64_t> appear;
  std::vector<std::uint64_t> disappear;
  std::vector<std::uint64_t> active;  // |W_i|
  // False where the window has no covered day; such windows report
  // appear/disappear/active as 0 (meaning "no data", not "empty").
  std::vector<bool> window_covered;
};

// Per-group churn (Fig 5a; groups are ASes in the paper). Only groups with
// at least `min_active_ips` distinct active addresses over the whole period
// are reported, mirroring the paper's >1000-IP filter. On gapped stores a
// group whose every window pair was excluded is omitted entirely (no
// churn evidence at all); a group observable on only one side reports 0%
// for the other (its windows there were empty — zero observable events).
struct GroupChurn {
  std::uint32_t group = 0;
  std::uint64_t total_active_ips = 0;
  double median_up_pct = 0.0;
  double median_down_pct = 0.0;
};

class ChurnAnalyzer {
 public:
  explicit ChurnAnalyzer(const ActivityStore& store) : store_(store) {}

  WindowChurnSeries Churn(int window_days) const;
  DailyEventSeries DailyEvents() const;
  VersusFirstSeries VersusFirst(int window_days) const;

  // `group_of` maps a /24 block to a group id (e.g. its origin AS). Blocks
  // are the paper's assignment granularity proxy: every address in a /24
  // belongs to one AS in both the real and the simulated routing system.
  std::vector<GroupChurn> PerGroupChurn(
      int window_days,
      const std::function<std::uint32_t(net::BlockKey)>& group_of,
      std::uint64_t min_active_ips = 1000) const;

 private:
  const ActivityStore& store_;
};

MinMedianMax Summarize(std::vector<double> values);

}  // namespace ipscope::activity
