// Event-size aggregation (Fig 5b): how "bulky" are up/down events?
//
// For each per-address up event between windows i and i+1, the paper finds
// the smallest prefix mask m such that within that prefix *all* addresses
// either had an up event or showed no activity in both windows. An address
// qualifies iff it is not active in window i (it is then either "up" or
// "inactive in both"), so the tagged mask is the length of the largest
// aligned prefix around the event address containing no window-i-active
// address. Down events are symmetric with the roles of the windows swapped.
//
// The implementation answers each event with two ordered-set queries
// (Floor/Ceiling on the reference active set) and a common-prefix-length
// computation — O(log n) per event. tests/activity_eventsize_test.cc checks
// it against a brute-force oracle.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "activity/store.h"
#include "netbase/ip_set.h"

namespace ipscope::activity {

// Histogram of events by tagged mask length (index 0..32).
struct EventSizeHistogram {
  std::array<std::uint64_t, 33> by_mask{};
  std::uint64_t total = 0;

  // Fraction of events with mask length in [lo, hi].
  double FractionInMaskRange(int lo, int hi) const;
};

// Length of the smallest isolating mask for `addr` against `reference`:
// the mask of the largest aligned prefix containing addr and no member of
// `reference`. Requires addr not in reference. Returns 0 when the reference
// set is empty (the whole /0 qualifies).
int SmallestIsolatingMask(const net::Ipv4Set& reference, net::IPv4Addr addr);

// Tags every up event between window [w0_first, w0_last) and window
// [w1_first, w1_last) of `store`, returning the mask-length histogram.
// `up = true` tags up events (absent in w0, present in w1); `up = false`
// tags down events.
EventSizeHistogram EventSizes(const ActivityStore& store, int w0_first,
                              int w0_last, int w1_first, int w1_last,
                              bool up);

// Ablation variant (DESIGN.md §5): the *strict* rule requires every address
// in the tagged prefix to itself have an up event (no "inactive in both"
// qualification). The mask is then the largest aligned prefix fully inside
// the contiguous run of event addresses containing `addr`. Requires addr in
// `events`.
int SmallestStrictMask(const net::Ipv4Set& events, net::IPv4Addr addr);

// EventSizes with the strict rule, for side-by-side comparison.
EventSizeHistogram EventSizesStrict(const ActivityStore& store, int w0_first,
                                    int w0_last, int w1_first, int w1_last,
                                    bool up);

}  // namespace ipscope::activity
