// ActivityStore: activity matrices for every observed /24 block.
//
// The store is the materialized "log dataset": a sorted, dense-by-block
// collection of ActivityMatrix objects sharing one observation period.
// It supports the whole-dataset reductions the paper's analyses need:
// per-day totals, windowed active sets, and per-block iteration.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "activity/matrix.h"
#include "netbase/ip_set.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace ipscope::activity {

class ActivityStore {
 public:
  // `days` is the shared observation-period length of all matrices.
  explicit ActivityStore(int days) : days_(days) {}

  int days() const { return days_; }
  std::size_t BlockCount() const { return keys_.size(); }

  // Returns the matrix for `key`, creating an empty one if absent.
  // Insertions may arrive in any order; the store keeps blocks sorted.
  ActivityMatrix& GetOrCreate(net::BlockKey key);

  // Returns nullptr if the block was never observed.
  const ActivityMatrix* Find(net::BlockKey key) const;

  // Visits blocks in increasing BlockKey order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) fn(keys_[i], matrices_[i]);
  }

  std::span<const net::BlockKey> keys() const { return keys_; }

  // Total active addresses per day across all blocks (Fig 4a's red series).
  std::vector<std::int64_t> DailyActiveCounts() const;

  // The set of addresses active at least once in [day_first, day_last).
  net::Ipv4Set ActiveSet(int day_first, int day_last) const;

  // Number of distinct addresses active in the window (cheaper than
  // materializing the set).
  std::uint64_t CountActive(int day_first, int day_last) const;

  // Number of blocks with at least one active address in the window.
  std::uint64_t CountActiveBlocks(int day_first, int day_last) const;

 private:
  int days_;
  std::vector<net::BlockKey> keys_;       // ascending
  std::vector<ActivityMatrix> matrices_;  // parallel to keys_
};

}  // namespace ipscope::activity
