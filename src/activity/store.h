// ActivityStore: activity matrices for every observed /24 block.
//
// The store is the materialized "log dataset": a sorted, dense-by-block
// collection of ActivityMatrix objects sharing one observation period.
// It supports the whole-dataset reductions the paper's analyses need:
// per-day totals, windowed active sets, and per-block iteration.
//
// Coverage mask: real measurement substrates lose whole days (collector
// outages, failed snapshot transfers — paper §3.2), and "no data for day
// d" must not be conflated with "every address was down on day d". The
// store therefore carries a per-day coverage bit: uncovered days have
// all-zero rows by construction and the analyses (churn, change
// detection, STU metrics) exclude them from event computation and
// denominators instead of reading them as mass deactivation. Freshly
// built stores are fully covered; fault::Injector and IPSCOPE2 loading
// are what introduce gaps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "activity/matrix.h"
#include "netbase/ip_set.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace ipscope::activity {

class ActivityStore {
 public:
  // `days` is the shared observation-period length of all matrices.
  explicit ActivityStore(int days)
      : days_(days), covered_(static_cast<std::size_t>(days), true) {}

  int days() const { return days_; }
  std::size_t BlockCount() const { return keys_.size(); }

  // --- Per-day coverage --------------------------------------------------
  // A day is covered when the collection platform actually observed it.
  // Marking a day uncovered also clears its row in every matrix: an
  // unobserved day cannot carry activity, and keeping the invariant here
  // means union-based reductions need no special casing.
  bool DayCovered(int day) const {
    return covered_[static_cast<std::size_t>(day)];
  }
  void SetDayCovered(int day, bool covered);
  bool FullyCovered() const;
  // Covered days in [day_first, day_last).
  int CoveredDaysIn(int day_first, int day_last) const;
  int MissingDays() const { return days_ - CoveredDaysIn(0, days_); }
  std::vector<int> MissingDayList() const;

  // Returns the matrix for `key`, creating an empty one if absent.
  // Insertions may arrive in any order; the store keeps blocks sorted.
  ActivityMatrix& GetOrCreate(net::BlockKey key);

  // One-shot bulk adoption for builders that generate every block's rows
  // into a single contiguous arena (day-major per block): the store takes
  // ownership of `arena` and installs each keys[i] as a view over days()
  // rows starting at arena[offsets[i]] — O(blocks) pointer work, no row
  // copies. Requires an empty, fully covered store and strictly ascending
  // keys. Later GetOrCreate insertions still work; they simply own their
  // rows (mixed storage modes are fine, see DESIGN.md §4.13).
  void AdoptArena(std::vector<net::BlockKey> keys, std::vector<DayBits> arena,
                  const std::vector<std::size_t>& offsets);

  // Returns nullptr if the block was never observed.
  const ActivityMatrix* Find(net::BlockKey key) const;

  // Visits blocks in increasing BlockKey order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) fn(keys_[i], matrices_[i]);
  }

  // --- Sharded iteration -------------------------------------------------
  // Blocks are index-addressable in key order, so a whole-store scan
  // decomposes into disjoint [first, last) shards — the unit the parallel
  // analyses hand to par::ParallelReduce. ForEach is exactly
  // ForEachShard(0, BlockCount()).
  net::BlockKey KeyAt(std::size_t i) const { return keys_[i]; }
  const ActivityMatrix& MatrixAt(std::size_t i) const { return matrices_[i]; }

  // Visits blocks with indices in [first, last) in increasing key order.
  template <typename Fn>
  void ForEachShard(std::size_t first, std::size_t last, Fn&& fn) const {
    for (std::size_t i = first; i < last; ++i) fn(keys_[i], matrices_[i]);
  }

  std::span<const net::BlockKey> keys() const { return keys_; }

  // Total active addresses per day across all blocks (Fig 4a's red series).
  std::vector<std::int64_t> DailyActiveCounts() const;

  // The set of addresses active at least once in [day_first, day_last).
  net::Ipv4Set ActiveSet(int day_first, int day_last) const;

  // Number of distinct addresses active in the window (cheaper than
  // materializing the set).
  std::uint64_t CountActive(int day_first, int day_last) const;

  // Number of blocks with at least one active address in the window.
  std::uint64_t CountActiveBlocks(int day_first, int day_last) const;

 private:
  int days_;
  std::vector<bool> covered_;             // per day; see DayCovered
  std::vector<net::BlockKey> keys_;       // ascending
  std::vector<ActivityMatrix> matrices_;  // parallel to keys_
  // Backing rows for arena-adopted matrices (empty unless AdoptArena ran).
  // Must outlive matrices_ views; vector moves keep the buffer stable, so
  // the implicit move of the whole store is safe.
  std::vector<DayBits> arena_;
};

}  // namespace ipscope::activity
