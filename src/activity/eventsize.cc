#include "activity/eventsize.h"

#include <algorithm>
#include <bit>

#include "obs/timer.h"
#include "par/pool.h"

namespace ipscope::activity {

namespace {

// Event-set intervals per parallel shard. Interval sizes are heavily
// skewed (one CGN block can contribute a 256-address run, a static block a
// singleton), so shards stay small and the pool's stealing balances them.
constexpr std::size_t kIntervalGrain = 8;

// Per-address mask aggregation over the members of `events`, parallel over
// the set's intervals. `make_mask_of(iv)` is invoked once per interval and
// returns the per-address mask function for that run — the hook that lets
// callers hoist binary searches and neighbor lookups out of the per-address
// loop (interval-run discipline: every address of a run shares its
// surrounding structure). Masks must be pure functions of the address:
// per-chunk histograms are plain integer sums, so the elementwise merge is
// bit-identical for any thread count.
template <typename MakeMaskFn>
EventSizeHistogram AggregateMasks(const net::Ipv4Set& events,
                                  const MakeMaskFn& make_mask_of) {
  std::span<const net::Ipv4Set::Interval> intervals = events.Intervals();
  return par::ParallelReduce(
      std::size_t{0}, intervals.size(), EventSizeHistogram{},
      [&](EventSizeHistogram& hist, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          const net::Ipv4Set::Interval& iv = intervals[i];
          const auto mask_of = make_mask_of(iv);
          for (std::uint64_t v = iv.first; v <= iv.last; ++v) {
            net::IPv4Addr addr{static_cast<std::uint32_t>(v)};
            ++hist.by_mask[static_cast<std::size_t>(mask_of(addr))];
            ++hist.total;
          }
        }
      },
      [](EventSizeHistogram& acc, EventSizeHistogram&& part) {
        for (std::size_t m = 0; m < acc.by_mask.size(); ++m) {
          acc.by_mask[m] += part.by_mask[m];
        }
        acc.total += part.total;
      },
      kIntervalGrain);
}

}  // namespace

double EventSizeHistogram::FractionInMaskRange(int lo, int hi) const {
  if (total == 0) return 0.0;
  std::uint64_t n = 0;
  for (int m = lo; m <= hi; ++m) n += by_mask[static_cast<std::size_t>(m)];
  return static_cast<double>(n) / static_cast<double>(total);
}

int SmallestIsolatingMask(const net::Ipv4Set& reference, net::IPv4Addr addr) {
  // A prefix of length L contains both addr and neighbor n iff
  // L <= countl_zero(addr ^ n). To exclude the nearest reference members on
  // both sides (and with them, every member), L must exceed the larger of
  // the two common-prefix lengths.
  int mask = 0;
  if (auto floor = reference.Floor(addr)) {
    int cpl = std::countl_zero(addr.value() ^ floor->value());
    mask = std::max(mask, cpl + 1);
  }
  if (auto ceil = reference.Ceiling(addr)) {
    int cpl = std::countl_zero(addr.value() ^ ceil->value());
    mask = std::max(mask, cpl + 1);
  }
  return mask;
}

int SmallestStrictMask(const net::Ipv4Set& events, net::IPv4Addr addr) {
  // Locate the contiguous run of event addresses containing addr, then find
  // the largest aligned prefix around addr that fits inside it.
  auto intervals = events.Intervals();
  auto it = std::lower_bound(
      intervals.begin(), intervals.end(), addr.value(),
      [](const net::Ipv4Set::Interval& iv, std::uint32_t v) {
        return iv.last < v;
      });
  if (it == intervals.end() || it->first > addr.value()) return 33;  // misuse
  for (int mask = 0; mask <= 32; ++mask) {
    net::Prefix p{addr, mask};
    if (p.first().value() >= it->first && p.last().value() <= it->last) {
      return mask;
    }
  }
  return 32;
}

EventSizeHistogram EventSizesStrict(const ActivityStore& store, int w0_first,
                                    int w0_last, int w1_first, int w1_last,
                                    bool up) {
  net::Ipv4Set active0 = store.ActiveSet(w0_first, w0_last);
  net::Ipv4Set active1 = store.ActiveSet(w1_first, w1_last);
  net::Ipv4Set events =
      up ? active1.Subtract(active0) : active0.Subtract(active1);
  // The intervals being aggregated ARE the event runs, so the per-address
  // run lookup inside SmallestStrictMask is redundant here: the largest
  // aligned prefix around addr need only be tested against the run bounds.
  return AggregateMasks(events, [](const net::Ipv4Set::Interval& iv) {
    return [iv](net::IPv4Addr addr) {
      for (int mask = 0; mask <= 32; ++mask) {
        const std::uint32_t suffix =
            mask == 0 ? ~std::uint32_t{0}
                      : (std::uint32_t{1} << (32 - mask)) - 1;
        if ((addr.value() & ~suffix) >= iv.first &&
            (addr.value() | suffix) <= iv.last) {
          return mask;
        }
      }
      return 32;
    };
  });
}

EventSizeHistogram EventSizes(const ActivityStore& store, int w0_first,
                              int w0_last, int w1_first, int w1_last,
                              bool up) {
  obs::Span span{"activity.eventsize.compute_seconds"};
  // Reference = the window whose activity disqualifies a prefix: window 0
  // for up events, window 1 for down events.
  net::Ipv4Set active0 = store.ActiveSet(w0_first, w0_last);
  net::Ipv4Set active1 = store.ActiveSet(w1_first, w1_last);
  const net::Ipv4Set& reference = up ? active0 : active1;
  net::Ipv4Set events =
      up ? active1.Subtract(active0) : active0.Subtract(active1);

  // Event runs are disjoint from the reference set by construction
  // (events = one window's actives minus the other's, reference = the
  // subtracted window), so no reference member lies inside a run: every
  // address of the run shares the same floor (nearest member below the
  // run) and ceiling (nearest member above it). The two binary searches
  // are therefore hoisted to once per interval and the per-address work
  // collapses to two countl_zero comparisons — bit-identical to calling
  // SmallestIsolatingMask per address.
  EventSizeHistogram hist =
      AggregateMasks(events, [&](const net::Ipv4Set::Interval& iv) {
        const auto floor = reference.Floor(net::IPv4Addr{iv.first});
        const auto ceil = reference.Ceiling(net::IPv4Addr{iv.last});
        return [floor, ceil](net::IPv4Addr addr) {
          int mask = 0;
          if (floor) {
            int cpl = std::countl_zero(addr.value() ^ floor->value());
            mask = std::max(mask, cpl + 1);
          }
          if (ceil) {
            int cpl = std::countl_zero(addr.value() ^ ceil->value());
            mask = std::max(mask, cpl + 1);
          }
          return mask;
        };
      });
  obs::GlobalRegistry()
      .GetCounter("activity.eventsize.events_aggregated")
      .Add(hist.total);
  return hist;
}

}  // namespace ipscope::activity
