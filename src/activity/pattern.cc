#include "activity/pattern.h"

#include <cmath>

namespace ipscope::activity {

const char* PatternName(BlockPattern pattern) {
  switch (pattern) {
    case BlockPattern::kInactive:
      return "inactive";
    case BlockPattern::kStaticSparse:
      return "static-sparse";
    case BlockPattern::kDynamicShortLease:
      return "dynamic-short-lease";
    case BlockPattern::kDynamicLongLease:
      return "dynamic-long-lease";
    case BlockPattern::kFullyUtilized:
      return "fully-utilized";
    case BlockPattern::kMixed:
      return "mixed";
  }
  return "?";
}

PatternFeatures ComputeFeatures(const ActivityMatrix& m) {
  PatternFeatures f;
  f.filling_degree = m.FillingDegree(0, m.days());
  if (f.filling_degree == 0) return f;
  f.stu = m.Stu(0, m.days());

  std::int64_t total_active_days = 0;
  double jaccard_dist_sum = 0.0;
  int jaccard_pairs = 0;
  for (int d = 0; d < m.days(); ++d) {
    total_active_days += m.ActiveOnDay(d);
    if (d + 1 < m.days()) {
      const DayBits& a = m.Row(d);
      const DayBits& b = m.Row(d + 1);
      int inter = PopCount(DayBits{a[0] & b[0], a[1] & b[1], a[2] & b[2],
                                   a[3] & b[3]});
      int uni = PopCount(OrBits(a, b));
      if (uni > 0) {
        jaccard_dist_sum += 1.0 - static_cast<double>(inter) / uni;
        ++jaccard_pairs;
      }
    }
  }
  f.daily_fill = static_cast<double>(total_active_days) /
                 (static_cast<double>(m.days()) * f.filling_degree);
  f.turnover = jaccard_pairs > 0 ? jaccard_dist_sum / jaccard_pairs : 0.0;
  f.mean_host_days = static_cast<double>(total_active_days) /
                     static_cast<double>(f.filling_degree);

  // One word-level sweep over the matrix's set bits replaces 256 per-bit
  // column walks (per-host Get loops are a lint perf.row-loop finding).
  const std::array<std::uint16_t, 256> host_days = m.HostActiveDayCounts();
  double sq_sum = 0.0;
  for (int h = 0; h < 256; ++h) {
    int days = host_days[static_cast<std::size_t>(h)];
    if (days == 0) continue;
    double delta = static_cast<double>(days) - f.mean_host_days;
    sq_sum += delta * delta;
  }
  double variance = sq_sum / static_cast<double>(f.filling_degree);
  f.host_days_cv =
      f.mean_host_days > 0 ? std::sqrt(variance) / f.mean_host_days : 0.0;
  return f;
}

BlockPattern ClassifyPattern(const PatternFeatures& f) {
  if (f.filling_degree == 0) return BlockPattern::kInactive;
  // Near-complete utilization: every address active nearly every day —
  // the gateway/proxy signature (Section 6).
  if (f.stu > 0.97 && f.filling_degree > 250) {
    return BlockPattern::kFullyUtilized;
  }
  // The paper's Fig 8b: sparsely populated blocks are overwhelmingly
  // statically assigned.
  if (f.filling_degree < 100) {
    return BlockPattern::kStaticSparse;
  }
  // Re-dealt short-lease pools smear activity uniformly across the pool:
  // every address ends up with an almost identical number of active days.
  if (f.host_days_cv < 0.25 && f.filling_degree >= 200) {
    return BlockPattern::kDynamicShortLease;
  }
  // Long leases bind addresses to heterogeneous subscribers: per-address
  // activity levels diverge strongly.
  if (f.host_days_cv >= 0.25) {
    return BlockPattern::kDynamicLongLease;
  }
  return BlockPattern::kMixed;
}

}  // namespace ipscope::activity
