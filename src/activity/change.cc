#include "activity/change.h"

#include <bit>
#include <cmath>

namespace ipscope::activity {

std::vector<BlockStuChange> MaxMonthlyStuChange(const ActivityStore& store,
                                                int month_days) {
  std::vector<BlockStuChange> out;
  int months = store.days() / month_days;
  if (months < 2) return out;
  out.reserve(store.BlockCount());
  store.ForEach([&](net::BlockKey key, const ActivityMatrix& m) {
    if (m.FillingDegree(0, store.days()) == 0) return;
    double prev = m.Stu(0, month_days);
    double best = 0.0;
    for (int mo = 1; mo < months; ++mo) {
      double cur = m.Stu(mo * month_days, (mo + 1) * month_days);
      double delta = cur - prev;
      if (std::abs(delta) > std::abs(best)) best = delta;
      prev = cur;
    }
    out.push_back(BlockStuChange{key, best});
  });
  return out;
}

namespace {

// Max-magnitude signed month-to-month change of the mean activity of one
// host half (computed from 128-host day slices).
double HalfMaxDelta(const ActivityMatrix& m, int month_days, bool upper) {
  int months = m.days() / month_days;
  auto half_stu = [&](int first, int last) {
    std::int64_t active = 0;
    for (int d = first; d < last; ++d) {
      const DayBits& row = m.Row(d);
      active += upper ? std::popcount(row[2]) + std::popcount(row[3])
                      : std::popcount(row[0]) + std::popcount(row[1]);
    }
    return static_cast<double>(active) / (128.0 * (last - first));
  };
  double prev = half_stu(0, month_days);
  double best = 0.0;
  for (int mo = 1; mo < months; ++mo) {
    double cur = half_stu(mo * month_days, (mo + 1) * month_days);
    if (std::abs(cur - prev) > std::abs(best)) best = cur - prev;
    prev = cur;
  }
  return best;
}

}  // namespace

std::vector<BlockSpatialChange> SpatialStuChanges(const ActivityStore& store,
                                                  int month_days) {
  std::vector<BlockSpatialChange> out;
  if (store.days() / month_days < 2) return out;
  out.reserve(store.BlockCount());
  store.ForEach([&](net::BlockKey key, const ActivityMatrix& m) {
    if (m.FillingDegree(0, store.days()) == 0) return;
    out.push_back(BlockSpatialChange{key,
                                     HalfMaxDelta(m, month_days, false),
                                     HalfMaxDelta(m, month_days, true)});
  });
  return out;
}

double MajorChangeFraction(const std::vector<BlockStuChange>& changes,
                           double threshold) {
  if (changes.empty()) return 0.0;
  std::uint64_t major = 0;
  for (const BlockStuChange& c : changes) {
    if (c.IsMajor(threshold)) ++major;
  }
  return static_cast<double>(major) / static_cast<double>(changes.size());
}

}  // namespace ipscope::activity
