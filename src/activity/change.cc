#include "activity/change.h"

#include <bit>
#include <cmath>

#include "par/pool.h"

namespace ipscope::activity {

namespace {

// Blocks per parallel shard (see store.cc rationale). Per-block change
// detection is pure in the block's own matrix, and partial output vectors
// concatenate in shard order, so results are bit-identical to the serial
// scan for any thread count.
constexpr std::size_t kBlockGrain = 16;

// Covered-day STU of one month window: active (address, day) pairs over
// 256 x covered days. Uncovered days have all-zero rows, so the numerator
// needs no masking; only the denominator must shrink, otherwise a
// collector outage reads as an activity drop.
double MonthStu(const ActivityStore& store, const ActivityMatrix& m,
                int day_first, int day_last, double hosts) {
  int covered = store.CoveredDaysIn(day_first, day_last);
  if (covered == 0) return 0.0;
  return static_cast<double>(m.SpatioTemporalActivity(day_first, day_last)) /
         (hosts * covered);
}

}  // namespace

std::vector<BlockStuChange> MaxMonthlyStuChange(const ActivityStore& store,
                                                int month_days) {
  std::vector<BlockStuChange> out;
  int months = store.days() / month_days;
  if (months < 2) return out;
  // Months without a single covered day carry no signal: deltas are taken
  // between consecutive *observed* months, bridging the gap.
  std::vector<int> observed;
  for (int mo = 0; mo < months; ++mo) {
    if (store.CoveredDaysIn(mo * month_days, (mo + 1) * month_days) > 0) {
      observed.push_back(mo);
    }
  }
  if (observed.size() < 2) return out;
  return par::ParallelReduce(
      std::size_t{0}, store.BlockCount(), std::vector<BlockStuChange>{},
      [&](std::vector<BlockStuChange>& acc, std::size_t first,
          std::size_t last) {
        store.ForEachShard(
            first, last, [&](net::BlockKey key, const ActivityMatrix& m) {
              if (m.FillingDegree(0, store.days()) == 0) return;
              double prev = MonthStu(store, m, observed[0] * month_days,
                                     (observed[0] + 1) * month_days, 256.0);
              double best = 0.0;
              for (std::size_t i = 1; i < observed.size(); ++i) {
                double cur = MonthStu(store, m, observed[i] * month_days,
                                      (observed[i] + 1) * month_days, 256.0);
                double delta = cur - prev;
                if (std::abs(delta) > std::abs(best)) best = delta;
                prev = cur;
              }
              acc.push_back(BlockStuChange{key, best});
            });
      },
      [](std::vector<BlockStuChange>& acc, std::vector<BlockStuChange>&& p) {
        acc.insert(acc.end(), p.begin(), p.end());
      },
      kBlockGrain);
}

namespace {

// Max-magnitude signed month-to-month change of the mean activity of each
// host half (computed from 128-host day slices), both halves in one sweep
// over the month's rows. Follows the same covered-day denominator and
// observed-month bridging as MaxMonthlyStuChange.
struct HalfDeltas {
  double lower = 0.0;
  double upper = 0.0;
};

HalfDeltas HalfMaxDeltas(const ActivityStore& store, const ActivityMatrix& m,
                         const std::vector<int>& observed, int month_days) {
  auto half_stus = [&](int first, int last) {
    HalfDeltas stu;
    int covered = store.CoveredDaysIn(first, last);
    if (covered == 0) return stu;
    std::int64_t lower = 0;
    std::int64_t upper = 0;
    for (int d = first; d < last; ++d) {
      const DayBits& row = m.Row(d);
      lower += std::popcount(row[0]) + std::popcount(row[1]);
      upper += std::popcount(row[2]) + std::popcount(row[3]);
    }
    stu.lower = static_cast<double>(lower) / (128.0 * covered);
    stu.upper = static_cast<double>(upper) / (128.0 * covered);
    return stu;
  };
  HalfDeltas prev = half_stus(observed[0] * month_days,
                              (observed[0] + 1) * month_days);
  HalfDeltas best;
  for (std::size_t i = 1; i < observed.size(); ++i) {
    HalfDeltas cur = half_stus(observed[i] * month_days,
                               (observed[i] + 1) * month_days);
    if (std::abs(cur.lower - prev.lower) > std::abs(best.lower)) {
      best.lower = cur.lower - prev.lower;
    }
    if (std::abs(cur.upper - prev.upper) > std::abs(best.upper)) {
      best.upper = cur.upper - prev.upper;
    }
    prev = cur;
  }
  return best;
}

}  // namespace

std::vector<BlockSpatialChange> SpatialStuChanges(const ActivityStore& store,
                                                  int month_days) {
  std::vector<BlockSpatialChange> out;
  int months = store.days() / month_days;
  if (months < 2) return out;
  std::vector<int> observed;
  for (int mo = 0; mo < months; ++mo) {
    if (store.CoveredDaysIn(mo * month_days, (mo + 1) * month_days) > 0) {
      observed.push_back(mo);
    }
  }
  if (observed.size() < 2) return out;
  return par::ParallelReduce(
      std::size_t{0}, store.BlockCount(), std::vector<BlockSpatialChange>{},
      [&](std::vector<BlockSpatialChange>& acc, std::size_t first,
          std::size_t last) {
        store.ForEachShard(
            first, last, [&](net::BlockKey key, const ActivityMatrix& m) {
              if (m.FillingDegree(0, store.days()) == 0) return;
              HalfDeltas deltas = HalfMaxDeltas(store, m, observed, month_days);
              acc.push_back(
                  BlockSpatialChange{key, deltas.lower, deltas.upper});
            });
      },
      [](std::vector<BlockSpatialChange>& acc,
         std::vector<BlockSpatialChange>&& p) {
        acc.insert(acc.end(), p.begin(), p.end());
      },
      kBlockGrain);
}

double MajorChangeFraction(const std::vector<BlockStuChange>& changes,
                           double threshold) {
  if (changes.empty()) return 0.0;
  std::uint64_t major = 0;
  for (const BlockStuChange& c : changes) {
    if (c.IsMajor(threshold)) ++major;
  }
  return static_cast<double>(major) / static_cast<double>(changes.size());
}

}  // namespace ipscope::activity
