#include "activity/store.h"

#include <algorithm>

namespace ipscope::activity {

ActivityMatrix& ActivityStore::GetOrCreate(net::BlockKey key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  auto idx = static_cast<std::size_t>(it - keys_.begin());
  if (it != keys_.end() && *it == key) return matrices_[idx];
  keys_.insert(it, key);
  matrices_.insert(matrices_.begin() + static_cast<std::ptrdiff_t>(idx),
                   ActivityMatrix{days_});
  return matrices_[idx];
}

void ActivityStore::SetDayCovered(int day, bool covered) {
  covered_[static_cast<std::size_t>(day)] = covered;
  if (!covered) {
    for (ActivityMatrix& m : matrices_) m.Row(day) = DayBits{};
  }
}

bool ActivityStore::FullyCovered() const {
  for (bool c : covered_) {
    if (!c) return false;
  }
  return true;
}

int ActivityStore::CoveredDaysIn(int day_first, int day_last) const {
  int n = 0;
  for (int d = day_first; d < day_last; ++d) {
    if (covered_[static_cast<std::size_t>(d)]) ++n;
  }
  return n;
}

std::vector<int> ActivityStore::MissingDayList() const {
  std::vector<int> out;
  for (int d = 0; d < days_; ++d) {
    if (!covered_[static_cast<std::size_t>(d)]) out.push_back(d);
  }
  return out;
}

const ActivityMatrix* ActivityStore::Find(net::BlockKey key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &matrices_[static_cast<std::size_t>(it - keys_.begin())];
}

std::vector<std::int64_t> ActivityStore::DailyActiveCounts() const {
  std::vector<std::int64_t> totals(static_cast<std::size_t>(days_), 0);
  for (const ActivityMatrix& m : matrices_) {
    for (int d = 0; d < days_; ++d) {
      totals[static_cast<std::size_t>(d)] += m.ActiveOnDay(d);
    }
  }
  return totals;
}

net::Ipv4Set ActivityStore::ActiveSet(int day_first, int day_last) const {
  std::vector<std::uint32_t> values;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    DayBits u = matrices_[i].UnionOver(day_first, day_last);
    std::uint32_t base = keys_[i] << 8;
    for (int w = 0; w < 4; ++w) {
      std::uint64_t word = u[static_cast<std::size_t>(w)];
      while (word != 0) {
        int bit = std::countr_zero(word);
        values.push_back(base + static_cast<std::uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }
  // Values are produced in ascending order already, so the canonical
  // interval construction in FromValues does no extra sorting work.
  return net::Ipv4Set::FromValues(std::move(values));
}

std::uint64_t ActivityStore::CountActive(int day_first, int day_last) const {
  std::uint64_t n = 0;
  for (const ActivityMatrix& m : matrices_) {
    n += static_cast<std::uint64_t>(
        PopCount(m.UnionOver(day_first, day_last)));
  }
  return n;
}

std::uint64_t ActivityStore::CountActiveBlocks(int day_first,
                                               int day_last) const {
  std::uint64_t n = 0;
  for (const ActivityMatrix& m : matrices_) {
    DayBits u = m.UnionOver(day_first, day_last);
    if ((u[0] | u[1] | u[2] | u[3]) != 0) ++n;
  }
  return n;
}

}  // namespace ipscope::activity
