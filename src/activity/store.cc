#include "activity/store.h"

#include <algorithm>
#include <cassert>

#include "par/pool.h"

namespace ipscope::activity {

namespace {

// Blocks per parallel shard for whole-store reductions. Small enough for
// the pool's stealing to balance skewed blocks, big enough to amortize the
// per-chunk accumulator.
constexpr std::size_t kBlockGrain = 16;

}  // namespace

ActivityMatrix& ActivityStore::GetOrCreate(net::BlockKey key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  auto idx = static_cast<std::size_t>(it - keys_.begin());
  if (it != keys_.end() && *it == key) return matrices_[idx];
  keys_.insert(it, key);
  matrices_.insert(matrices_.begin() + static_cast<std::ptrdiff_t>(idx),
                   ActivityMatrix{days_});
  return matrices_[idx];
}

void ActivityStore::AdoptArena(std::vector<net::BlockKey> keys,
                               std::vector<DayBits> arena,
                               const std::vector<std::size_t>& offsets) {
  assert(keys_.empty() && matrices_.empty());
  assert(keys.size() == offsets.size());
  assert(std::is_sorted(keys.begin(), keys.end()));
  arena_ = std::move(arena);
  keys_ = std::move(keys);
  matrices_.reserve(keys_.size());
  for (std::size_t off : offsets) {
    assert(off + static_cast<std::size_t>(days_) <= arena_.size());
    matrices_.emplace_back(days_, arena_.data() + off);
  }
}

void ActivityStore::SetDayCovered(int day, bool covered) {
  covered_[static_cast<std::size_t>(day)] = covered;
  if (!covered) {
    for (ActivityMatrix& m : matrices_) m.Row(day) = DayBits{};
  }
}

bool ActivityStore::FullyCovered() const {
  for (bool c : covered_) {
    if (!c) return false;
  }
  return true;
}

int ActivityStore::CoveredDaysIn(int day_first, int day_last) const {
  int n = 0;
  for (int d = day_first; d < day_last; ++d) {
    if (covered_[static_cast<std::size_t>(d)]) ++n;
  }
  return n;
}

std::vector<int> ActivityStore::MissingDayList() const {
  std::vector<int> out;
  for (int d = 0; d < days_; ++d) {
    if (!covered_[static_cast<std::size_t>(d)]) out.push_back(d);
  }
  return out;
}

const ActivityMatrix* ActivityStore::Find(net::BlockKey key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &matrices_[static_cast<std::size_t>(it - keys_.begin())];
}

std::vector<std::int64_t> ActivityStore::DailyActiveCounts() const {
  return par::ParallelReduce(
      std::size_t{0}, matrices_.size(),
      std::vector<std::int64_t>(static_cast<std::size_t>(days_), 0),
      [&](std::vector<std::int64_t>& totals, std::size_t first,
          std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          for (int d = 0; d < days_; ++d) {
            totals[static_cast<std::size_t>(d)] +=
                matrices_[i].ActiveOnDay(d);
          }
        }
      },
      [](std::vector<std::int64_t>& acc, std::vector<std::int64_t>&& part) {
        for (std::size_t d = 0; d < acc.size(); ++d) acc[d] += part[d];
      },
      kBlockGrain);
}

net::Ipv4Set ActivityStore::ActiveSet(int day_first, int day_last) const {
  // Per-shard value vectors are each ascending (blocks are key-sorted and
  // hosts enumerate low-to-high), and shards cover ascending key ranges, so
  // ordered concatenation of the partials reproduces the serial output
  // exactly — FromValues still sees a sorted stream.
  std::vector<std::uint32_t> values = par::ParallelReduce(
      std::size_t{0}, keys_.size(), std::vector<std::uint32_t>{},
      [&](std::vector<std::uint32_t>& vals, std::size_t first,
          std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          DayBits u = matrices_[i].UnionOver(day_first, day_last);
          std::uint32_t base = keys_[i] << 8;
          for (int w = 0; w < 4; ++w) {
            std::uint64_t word = u[static_cast<std::size_t>(w)];
            while (word != 0) {
              int bit = std::countr_zero(word);
              vals.push_back(base + static_cast<std::uint32_t>(w * 64 + bit));
              word &= word - 1;
            }
          }
        }
      },
      [](std::vector<std::uint32_t>& acc, std::vector<std::uint32_t>&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      },
      kBlockGrain);
  return net::Ipv4Set::FromValues(std::move(values));
}

std::uint64_t ActivityStore::CountActive(int day_first, int day_last) const {
  return par::ParallelReduce(
      std::size_t{0}, matrices_.size(), std::uint64_t{0},
      [&](std::uint64_t& n, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          n += static_cast<std::uint64_t>(
              PopCount(matrices_[i].UnionOver(day_first, day_last)));
        }
      },
      [](std::uint64_t& acc, std::uint64_t part) { acc += part; },
      kBlockGrain);
}

std::uint64_t ActivityStore::CountActiveBlocks(int day_first,
                                               int day_last) const {
  return par::ParallelReduce(
      std::size_t{0}, matrices_.size(), std::uint64_t{0},
      [&](std::uint64_t& n, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          DayBits u = matrices_[i].UnionOver(day_first, day_last);
          if ((u[0] | u[1] | u[2] | u[3]) != 0) ++n;
        }
      },
      [](std::uint64_t& acc, std::uint64_t part) { acc += part; },
      kBlockGrain);
}

}  // namespace ipscope::activity
