#include "activity/matrix.h"

#include <cassert>

namespace ipscope::activity {

ActivityMatrix::ActivityMatrix(int days) : days_(days) {
  assert(days > 0);
  own_.assign(static_cast<std::size_t>(days), DayBits{});
  rows_ = own_.data();
}

ActivityMatrix::ActivityMatrix(int days, DayBits* rows)
    : days_(days), rows_(rows) {
  assert(days > 0);
  assert(rows != nullptr);
}

ActivityMatrix::ActivityMatrix(const ActivityMatrix& other)
    : days_(other.days_), own_(other.rows_, other.rows_ + other.days_) {
  rows_ = own_.data();
}

ActivityMatrix& ActivityMatrix::operator=(const ActivityMatrix& other) {
  if (this == &other) return *this;
  days_ = other.days_;
  own_.assign(other.rows_, other.rows_ + other.days_);
  rows_ = own_.data();
  return *this;
}

ActivityMatrix::ActivityMatrix(ActivityMatrix&& other) noexcept
    : days_(other.days_), own_(std::move(other.own_)) {
  rows_ = own_.empty() ? other.rows_ : own_.data();
  other.rows_ = nullptr;
}

ActivityMatrix& ActivityMatrix::operator=(ActivityMatrix&& other) noexcept {
  if (this == &other) return *this;
  days_ = other.days_;
  own_ = std::move(other.own_);
  rows_ = own_.empty() ? other.rows_ : own_.data();
  other.rows_ = nullptr;
  return *this;
}

DayBits ActivityMatrix::UnionOver(int day_first, int day_last) const {
  assert(day_first >= 0 && day_last <= days_);
  DayBits acc{};
  for (int d = day_first; d < day_last; ++d) acc = OrBits(acc, Row(d));
  return acc;
}

std::int64_t ActivityMatrix::SpatioTemporalActivity(int day_first,
                                                    int day_last) const {
  assert(day_first >= 0 && day_last <= days_);
  std::int64_t total = 0;
  for (int d = day_first; d < day_last; ++d) total += ActiveOnDay(d);
  return total;
}

double ActivityMatrix::Stu(int day_first, int day_last) const {
  int window = day_last - day_first;
  if (window <= 0) return 0.0;
  return static_cast<double>(SpatioTemporalActivity(day_first, day_last)) /
         (256.0 * window);
}

int ActivityMatrix::HostActiveDays(int host) const {
  const std::size_t w = static_cast<std::size_t>(host >> 6);
  const unsigned b = static_cast<unsigned>(host) & 63u;
  int count = 0;
  for (int d = 0; d < days_; ++d) {
    count += static_cast<int>((rows_[d][w] >> b) & 1u);
  }
  return count;
}

std::array<std::uint16_t, 256> ActivityMatrix::HostActiveDayCounts() const {
  std::array<std::uint16_t, 256> counts{};
  for (int d = 0; d < days_; ++d) {
    const DayBits& row = rows_[d];
    for (int w = 0; w < 4; ++w) {
      std::uint64_t word = row[static_cast<std::size_t>(w)];
      while (word != 0) {
        ++counts[static_cast<std::size_t>(w * 64 + std::countr_zero(word))];
        word &= word - 1;
      }
    }
  }
  return counts;
}

bool ActivityMatrix::Empty() const {
  for (int d = 0; d < days_; ++d) {
    const DayBits& row = rows_[d];
    if ((row[0] | row[1] | row[2] | row[3]) != 0) return false;
  }
  return true;
}

}  // namespace ipscope::activity
