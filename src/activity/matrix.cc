#include "activity/matrix.h"

#include <cassert>

namespace ipscope::activity {

ActivityMatrix::ActivityMatrix(int days) : days_(days) {
  assert(days > 0);
  rows_.assign(static_cast<std::size_t>(days), DayBits{});
}

DayBits ActivityMatrix::UnionOver(int day_first, int day_last) const {
  assert(day_first >= 0 && day_last <= days_);
  DayBits acc{};
  for (int d = day_first; d < day_last; ++d) acc = OrBits(acc, Row(d));
  return acc;
}

std::int64_t ActivityMatrix::SpatioTemporalActivity(int day_first,
                                                    int day_last) const {
  assert(day_first >= 0 && day_last <= days_);
  std::int64_t total = 0;
  for (int d = day_first; d < day_last; ++d) total += ActiveOnDay(d);
  return total;
}

double ActivityMatrix::Stu(int day_first, int day_last) const {
  int window = day_last - day_first;
  if (window <= 0) return 0.0;
  return static_cast<double>(SpatioTemporalActivity(day_first, day_last)) /
         (256.0 * window);
}

int ActivityMatrix::HostActiveDays(int host) const {
  int count = 0;
  for (int d = 0; d < days_; ++d) count += Get(d, host) ? 1 : 0;
  return count;
}

bool ActivityMatrix::Empty() const {
  for (const DayBits& row : rows_) {
    if ((row[0] | row[1] | row[2] | row[3]) != 0) return false;
  }
  return true;
}

}  // namespace ipscope::activity
