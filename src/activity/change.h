// Change detection (Section 5.2, Fig 8a): separating blocks whose address
// assignment practice changed during the observation period ("major change")
// from blocks with stable in-situ activity ("minor change").
//
// Per block: compute STU for each consecutive month (28-day window), take
// the month-to-month difference with the largest magnitude (keeping its
// sign), and threshold at |delta| > 0.25 — the paper's empirically chosen
// cut that retains heavy in-situ variation but catches reconfiguration.
//
// Data gaps: monthly STU uses covered-day denominators (see
// activity/metrics.h) and months without a single covered day are skipped,
// with deltas bridged between consecutive observed months — so an outage
// is never misread as a reconfiguration.
#pragma once

#include <cstdint>
#include <vector>

#include "activity/store.h"

namespace ipscope::activity {

inline constexpr double kMajorChangeThreshold = 0.25;

struct BlockStuChange {
  net::BlockKey key = 0;
  double max_delta = 0.0;  // signed; the consecutive diff of max magnitude

  bool IsMajor(double threshold = kMajorChangeThreshold) const {
    return max_delta > threshold || max_delta < -threshold;
  }
};

// One entry per block active in the period. `month_days` is the aggregation
// window (28 in the paper; the 112-day period yields 4 months / 3 diffs).
std::vector<BlockStuChange> MaxMonthlyStuChange(const ActivityStore& store,
                                                int month_days = 28);

// Fraction of blocks classified as major-change at `threshold`.
double MajorChangeFraction(const std::vector<BlockStuChange>& changes,
                           double threshold = kMajorChangeThreshold);

// Spatial change detection (Fig 7b): some reconfigurations affect only
// part of a /24. For each block we compute the max monthly STU change of
// the lower half (hosts 0..127) and the upper half (128..255) separately;
// the asymmetry |delta_upper - delta_lower| is near zero for whole-block
// changes and in-situ variation, and large when one half was repurposed
// while the other kept its practice.
struct BlockSpatialChange {
  net::BlockKey key = 0;
  double lower_delta = 0.0;  // signed max monthly STU change, hosts 0..127
  double upper_delta = 0.0;  // signed max monthly STU change, hosts 128..255
  double Asymmetry() const {
    return upper_delta > lower_delta ? upper_delta - lower_delta
                                     : lower_delta - upper_delta;
  }
};

std::vector<BlockSpatialChange> SpatialStuChanges(const ActivityStore& store,
                                                  int month_days = 28);

}  // namespace ipscope::activity
