// Per-block activity metrics (Section 5.1 of the paper).
//
// Filling degree (FD): number of distinct active addresses in a /24 within
// an observation window — range 1..256 for active blocks.
// Spatio-temporal utilization (STU): active (address, day) pairs divided by
// the maximum possible (256 x window days) — range (0, 1].
//
// When the store carries data gaps (ActivityStore coverage mask), the STU
// denominator counts only covered days, so a collector outage does not
// depress utilization; a window with zero covered days yields no metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "activity/store.h"
#include "netbase/prefix.h"

namespace ipscope::activity {

struct BlockMetrics {
  net::BlockKey key = 0;
  int filling_degree = 0;
  double stu = 0.0;
};

// Metrics for every block with at least one active address in the window.
std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store,
                                              int day_first, int day_last);
std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store);

// Filling degrees as doubles (for CDF plotting, Fig 8b).
std::vector<double> FillingDegrees(const std::vector<BlockMetrics>& metrics);

// STU values, optionally restricted to blocks with FD >= min_fd (Fig 8c uses
// min_fd = 251, "more than 250 active IP addresses").
std::vector<double> StuValues(const std::vector<BlockMetrics>& metrics,
                              int min_fd = 0);

}  // namespace ipscope::activity
