#include "activity/churn.h"

#include <algorithm>
#include <unordered_map>

#include "obs/timer.h"
#include "par/pool.h"
#include "stats/quantile.h"

namespace ipscope::activity {

namespace {

// Blocks per parallel shard (see store.cc rationale).
constexpr std::size_t kBlockGrain = 16;

// One window's union for a given window size; the trailing partial window
// is discarded (see timeutil::PartitionWindows rationale). Consumers
// stream consecutive windows through this instead of materializing a
// per-block union vector — the churn reductions only ever compare a window
// against its predecessor (or window 0), so no allocation is needed in the
// per-block hot loop.
DayBits WindowUnion(const ActivityMatrix& m, int window_days, int w) {
  return m.UnionOver(w * window_days, (w + 1) * window_days);
}

}  // namespace

MinMedianMax Summarize(std::vector<double> values) {
  MinMedianMax out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.median = stats::QuantileSorted(values, 0.5);
  return out;
}

namespace {

// Windows with at least one covered day; an uncovered window contributes
// no evidence and must not read as "everything deactivated".
std::vector<bool> CoveredWindows(const ActivityStore& store, int window_days,
                                 int num_windows) {
  std::vector<bool> covered(static_cast<std::size_t>(num_windows));
  for (int w = 0; w < num_windows; ++w) {
    covered[static_cast<std::size_t>(w)] =
        store.CoveredDaysIn(w * window_days, (w + 1) * window_days) > 0;
  }
  return covered;
}

// Per-shard accumulator for window-pair churn sums. All fields are integer
// event counts, merged elementwise in shard order — bit-identical for any
// thread count.
struct PairCountsAcc {
  std::vector<std::uint64_t> up, down, size_prev, size_next;
  std::uint64_t blocks = 0;

  explicit PairCountsAcc(std::size_t pairs = 0)
      : up(pairs, 0), down(pairs, 0), size_prev(pairs, 0),
        size_next(pairs, 0) {}

  void Merge(PairCountsAcc&& other) {
    for (std::size_t p = 0; p < up.size(); ++p) {
      up[p] += other.up[p];
      down[p] += other.down[p];
      size_prev[p] += other.size_prev[p];
      size_next[p] += other.size_next[p];
    }
    blocks += other.blocks;
  }

  void Consume(const ActivityMatrix& m, int window_days, int num_windows) {
    ++blocks;
    DayBits w0 = WindowUnion(m, window_days, 0);
    for (int w = 1; w < num_windows; ++w) {
      const DayBits w1 = WindowUnion(m, window_days, w);
      const auto p = static_cast<std::size_t>(w - 1);
      up[p] += static_cast<std::uint64_t>(PopCount(AndNotBits(w1, w0)));
      down[p] += static_cast<std::uint64_t>(PopCount(AndNotBits(w0, w1)));
      size_prev[p] += static_cast<std::uint64_t>(PopCount(w0));
      size_next[p] += static_cast<std::uint64_t>(PopCount(w1));
      w0 = w1;
    }
  }
};

}  // namespace

WindowChurnSeries ChurnAnalyzer::Churn(int window_days) const {
  obs::Span span{"activity.churn.compute_seconds"};
  WindowChurnSeries series;
  series.window_days = window_days;
  int num_windows = store_.days() / window_days;
  if (num_windows < 2) return series;
  int pairs = num_windows - 1;
  std::vector<bool> window_ok =
      CoveredWindows(store_, window_days, num_windows);

  PairCountsAcc sums = par::ParallelReduce(
      std::size_t{0}, store_.BlockCount(),
      PairCountsAcc{static_cast<std::size_t>(pairs)},
      [&](PairCountsAcc& acc, std::size_t first, std::size_t last) {
        store_.ForEachShard(first, last,
                            [&](net::BlockKey, const ActivityMatrix& m) {
                              acc.Consume(m, window_days, num_windows);
                            });
      },
      [](PairCountsAcc& acc, PairCountsAcc&& part) {
        acc.Merge(std::move(part));
      },
      kBlockGrain);

  series.pairs.reserve(static_cast<std::size_t>(pairs));
  series.up_pct.reserve(static_cast<std::size_t>(pairs));
  series.down_pct.reserve(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    auto pi = static_cast<std::size_t>(p);
    if (!window_ok[pi] || !window_ok[pi + 1]) continue;  // data gap
    series.pairs.push_back(p);
    series.up_pct.push_back(
        sums.size_next[pi] ? 100.0 * static_cast<double>(sums.up[pi]) /
                                 static_cast<double>(sums.size_next[pi])
                           : 0.0);
    series.down_pct.push_back(
        sums.size_prev[pi] ? 100.0 * static_cast<double>(sums.down[pi]) /
                                 static_cast<double>(sums.size_prev[pi])
                           : 0.0);
  }
  series.up = Summarize(series.up_pct);
  series.down = Summarize(series.down_pct);

  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("activity.churn.runs").Add(1);
  registry.GetCounter("activity.churn.windows_processed")
      .Add(static_cast<std::uint64_t>(num_windows));
  registry.GetCounter("activity.churn.blocks_processed").Add(sums.blocks);
  return series;
}

namespace {

// Per-shard accumulator for the daily event series (all integer sums).
struct DailyAcc {
  std::vector<std::int64_t> active, up, down;

  explicit DailyAcc(std::size_t days = 0)
      : active(days, 0), up(days > 0 ? days - 1 : 0, 0),
        down(days > 0 ? days - 1 : 0, 0) {}

  void Merge(DailyAcc&& other) {
    for (std::size_t d = 0; d < active.size(); ++d) active[d] += other.active[d];
    for (std::size_t d = 0; d < up.size(); ++d) {
      up[d] += other.up[d];
      down[d] += other.down[d];
    }
  }
};

}  // namespace

DailyEventSeries ChurnAnalyzer::DailyEvents() const {
  DailyEventSeries series;
  int days = store_.days();
  DailyAcc sums = par::ParallelReduce(
      std::size_t{0}, store_.BlockCount(),
      DailyAcc{static_cast<std::size_t>(days)},
      [&](DailyAcc& acc, std::size_t first, std::size_t last) {
        store_.ForEachShard(
            first, last, [&](net::BlockKey, const ActivityMatrix& m) {
              for (int d = 0; d < days; ++d) {
                acc.active[static_cast<std::size_t>(d)] += m.ActiveOnDay(d);
              }
              for (int d = 0; d + 1 < days; ++d) {
                const DayBits& a = m.Row(d);
                const DayBits& b = m.Row(d + 1);
                acc.up[static_cast<std::size_t>(d)] +=
                    PopCount(AndNotBits(b, a));
                acc.down[static_cast<std::size_t>(d)] +=
                    PopCount(AndNotBits(a, b));
              }
            });
      },
      [](DailyAcc& acc, DailyAcc&& part) { acc.Merge(std::move(part)); },
      kBlockGrain);
  series.active = std::move(sums.active);
  series.up = std::move(sums.up);
  series.down = std::move(sums.down);
  // Overwrite, rather than skip, so the block loop above stays branch-free:
  // gaps are rare, days are few. The -1 "no data" sentinel contract is
  // enforced here, after the merge, so it holds for any thread count.
  for (int d = 0; d < days; ++d) {
    if (!store_.DayCovered(d)) {
      series.active[static_cast<std::size_t>(d)] = -1;
      if (d > 0) series.up[static_cast<std::size_t>(d - 1)] = -1;
      if (d + 1 < days) series.up[static_cast<std::size_t>(d)] = -1;
      if (d > 0) series.down[static_cast<std::size_t>(d - 1)] = -1;
      if (d + 1 < days) series.down[static_cast<std::size_t>(d)] = -1;
    }
  }
  return series;
}

namespace {

// Per-shard accumulator for appear/disappear-vs-first sums.
struct VersusAcc {
  std::vector<std::uint64_t> appear, disappear, active;

  explicit VersusAcc(std::size_t windows = 0)
      : appear(windows, 0), disappear(windows, 0), active(windows, 0) {}

  void Merge(VersusAcc&& other) {
    for (std::size_t w = 0; w < appear.size(); ++w) {
      appear[w] += other.appear[w];
      disappear[w] += other.disappear[w];
      active[w] += other.active[w];
    }
  }
};

}  // namespace

VersusFirstSeries ChurnAnalyzer::VersusFirst(int window_days) const {
  VersusFirstSeries series;
  series.window_days = window_days;
  int num_windows = store_.days() / window_days;
  if (num_windows < 1) return series;
  series.window_covered = CoveredWindows(store_, window_days, num_windows);
  const std::vector<bool>& covered = series.window_covered;

  VersusAcc sums = par::ParallelReduce(
      std::size_t{0}, store_.BlockCount(),
      VersusAcc{static_cast<std::size_t>(num_windows)},
      [&](VersusAcc& acc, std::size_t first, std::size_t last) {
        store_.ForEachShard(
            first, last, [&](net::BlockKey, const ActivityMatrix& m) {
              const DayBits w0 = WindowUnion(m, window_days, 0);
              for (int w = 0; w < num_windows; ++w) {
                auto wiu = static_cast<std::size_t>(w);
                if (!covered[wiu]) continue;  // no data, not "empty"
                const DayBits wi = WindowUnion(m, window_days, w);
                acc.appear[wiu] +=
                    static_cast<std::uint64_t>(PopCount(AndNotBits(wi, w0)));
                acc.disappear[wiu] +=
                    static_cast<std::uint64_t>(PopCount(AndNotBits(w0, wi)));
                acc.active[wiu] +=
                    static_cast<std::uint64_t>(PopCount(wi));
              }
            });
      },
      [](VersusAcc& acc, VersusAcc&& part) { acc.Merge(std::move(part)); },
      kBlockGrain);
  series.appear = std::move(sums.appear);
  series.disappear = std::move(sums.disappear);
  series.active = std::move(sums.active);
  return series;
}

std::vector<GroupChurn> ChurnAnalyzer::PerGroupChurn(
    int window_days,
    const std::function<std::uint32_t(net::BlockKey)>& group_of,
    std::uint64_t min_active_ips) const {
  int num_windows = store_.days() / window_days;
  if (num_windows < 2) return {};
  int pairs = num_windows - 1;
  std::vector<bool> window_ok =
      CoveredWindows(store_, window_days, num_windows);

  struct Acc {
    std::vector<std::uint64_t> up, down, size_prev, size_next;
    std::uint64_t total_active = 0;
  };
  // Per-shard group maps merged in shard order. Merging is elementwise
  // integer addition, so the final map contents (and the key-sorted output
  // below) are independent of sharding and thread count.
  using GroupMap = std::unordered_map<std::uint32_t, Acc>;
  GroupMap groups = par::ParallelReduce(
      std::size_t{0}, store_.BlockCount(), GroupMap{},
      [&](GroupMap& local, std::size_t first, std::size_t last) {
        store_.ForEachShard(
            first, last, [&](net::BlockKey key, const ActivityMatrix& m) {
              Acc& acc = local[group_of(key)];
              if (acc.up.empty()) {
                acc.up.assign(static_cast<std::size_t>(pairs), 0);
                acc.down.assign(static_cast<std::size_t>(pairs), 0);
                acc.size_prev.assign(static_cast<std::size_t>(pairs), 0);
                acc.size_next.assign(static_cast<std::size_t>(pairs), 0);
              }
              acc.total_active += static_cast<std::uint64_t>(
                  PopCount(m.UnionOver(0, store_.days())));
              DayBits prev = WindowUnion(m, window_days, 0);
              for (int p = 0; p < pairs; ++p) {
                auto pi = static_cast<std::size_t>(p);
                const DayBits w0 = prev;
                const DayBits w1 = WindowUnion(m, window_days, p + 1);
                prev = w1;
                acc.up[pi] +=
                    static_cast<std::uint64_t>(PopCount(AndNotBits(w1, w0)));
                acc.down[pi] +=
                    static_cast<std::uint64_t>(PopCount(AndNotBits(w0, w1)));
                acc.size_prev[pi] +=
                    static_cast<std::uint64_t>(PopCount(w0));
                acc.size_next[pi] +=
                    static_cast<std::uint64_t>(PopCount(w1));
              }
            });
      },
      [](GroupMap& acc, GroupMap&& part) {
        // lint: ordered(merge is elementwise integer addition keyed by
        // group, so the final map contents are identical for any visit
        // order; only the key-sorted vector below is observable)
        for (auto& [group, src] : part) {
          auto [it, inserted] = acc.try_emplace(group, std::move(src));
          if (inserted) continue;
          // try_emplace left `src` untouched when the key already existed.
          Acc& dst = it->second;
          for (std::size_t p = 0; p < dst.up.size(); ++p) {
            dst.up[p] += src.up[p];
            dst.down[p] += src.down[p];
            dst.size_prev[p] += src.size_prev[p];
            dst.size_next[p] += src.size_next[p];
          }
          dst.total_active += src.total_active;
        }
      },
      kBlockGrain);

  std::vector<GroupChurn> out;
  // lint: ordered(each group row is computed independently and out is
  // sorted by group key before returning, so visit order cannot leak)
  for (auto& [group, acc] : groups) {
    if (acc.total_active < min_active_ips) continue;
    std::vector<double> up_pcts, down_pcts;
    for (int p = 0; p < pairs; ++p) {
      auto pi = static_cast<std::size_t>(p);
      if (!window_ok[pi] || !window_ok[pi + 1]) continue;  // data gap
      if (acc.size_next[pi] > 0) {
        up_pcts.push_back(100.0 * static_cast<double>(acc.up[pi]) /
                          static_cast<double>(acc.size_next[pi]));
      }
      if (acc.size_prev[pi] > 0) {
        down_pcts.push_back(100.0 * static_cast<double>(acc.down[pi]) /
                            static_cast<double>(acc.size_prev[pi]));
      }
    }
    // Coverage gaps can invalidate every window pair: such a group carries
    // no churn evidence at all and is omitted rather than reported with
    // made-up medians (stats::Median of an empty sample is NaN by
    // contract). A group with evidence on only one side had zero observable
    // events on the other — that side's window sets were empty, so 0% is
    // the factual value, chosen explicitly here rather than inherited from
    // a sentinel.
    if (up_pcts.empty() && down_pcts.empty()) continue;
    GroupChurn gc;
    gc.group = group;
    gc.total_active_ips = acc.total_active;
    gc.median_up_pct = up_pcts.empty() ? 0.0 : stats::Median(std::move(up_pcts));
    gc.median_down_pct =
        down_pcts.empty() ? 0.0 : stats::Median(std::move(down_pcts));
    out.push_back(gc);
  }
  std::sort(out.begin(), out.end(),
            [](const GroupChurn& a, const GroupChurn& b) {
              return a.group < b.group;
            });
  return out;
}

}  // namespace ipscope::activity
