#include "activity/churn.h"

#include <algorithm>
#include <unordered_map>

#include "obs/timer.h"
#include "stats/quantile.h"

namespace ipscope::activity {

namespace {

// Per-block window unions for a given window size; the trailing partial
// window is discarded (see timeutil::PartitionWindows rationale).
std::vector<DayBits> WindowUnions(const ActivityMatrix& m, int window_days,
                                  int num_windows) {
  std::vector<DayBits> unions(static_cast<std::size_t>(num_windows));
  for (int w = 0; w < num_windows; ++w) {
    unions[static_cast<std::size_t>(w)] =
        m.UnionOver(w * window_days, (w + 1) * window_days);
  }
  return unions;
}

}  // namespace

MinMedianMax Summarize(std::vector<double> values) {
  MinMedianMax out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.median = stats::QuantileSorted(values, 0.5);
  return out;
}

namespace {

// Windows with at least one covered day; an uncovered window contributes
// no evidence and must not read as "everything deactivated".
std::vector<bool> CoveredWindows(const ActivityStore& store, int window_days,
                                 int num_windows) {
  std::vector<bool> covered(static_cast<std::size_t>(num_windows));
  for (int w = 0; w < num_windows; ++w) {
    covered[static_cast<std::size_t>(w)] =
        store.CoveredDaysIn(w * window_days, (w + 1) * window_days) > 0;
  }
  return covered;
}

}  // namespace

WindowChurnSeries ChurnAnalyzer::Churn(int window_days) const {
  obs::Span span{"activity.churn.compute_seconds"};
  WindowChurnSeries series;
  series.window_days = window_days;
  int num_windows = store_.days() / window_days;
  if (num_windows < 2) return series;
  int pairs = num_windows - 1;
  std::vector<bool> window_ok =
      CoveredWindows(store_, window_days, num_windows);

  std::vector<std::uint64_t> up(static_cast<std::size_t>(pairs), 0);
  std::vector<std::uint64_t> down(static_cast<std::size_t>(pairs), 0);
  std::vector<std::uint64_t> size_prev(static_cast<std::size_t>(pairs), 0);
  std::vector<std::uint64_t> size_next(static_cast<std::size_t>(pairs), 0);

  std::uint64_t blocks_processed = 0;
  store_.ForEach([&](net::BlockKey, const ActivityMatrix& m) {
    ++blocks_processed;
    auto unions = WindowUnions(m, window_days, num_windows);
    for (int p = 0; p < pairs; ++p) {
      const DayBits& w0 = unions[static_cast<std::size_t>(p)];
      const DayBits& w1 = unions[static_cast<std::size_t>(p + 1)];
      auto pi = static_cast<std::size_t>(p);
      up[pi] += static_cast<std::uint64_t>(PopCount(AndNotBits(w1, w0)));
      down[pi] += static_cast<std::uint64_t>(PopCount(AndNotBits(w0, w1)));
      size_prev[pi] += static_cast<std::uint64_t>(PopCount(w0));
      size_next[pi] += static_cast<std::uint64_t>(PopCount(w1));
    }
  });

  series.pairs.reserve(static_cast<std::size_t>(pairs));
  series.up_pct.reserve(static_cast<std::size_t>(pairs));
  series.down_pct.reserve(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    auto pi = static_cast<std::size_t>(p);
    if (!window_ok[pi] || !window_ok[pi + 1]) continue;  // data gap
    series.pairs.push_back(p);
    series.up_pct.push_back(
        size_next[pi] ? 100.0 * static_cast<double>(up[pi]) /
                            static_cast<double>(size_next[pi])
                      : 0.0);
    series.down_pct.push_back(
        size_prev[pi] ? 100.0 * static_cast<double>(down[pi]) /
                            static_cast<double>(size_prev[pi])
                      : 0.0);
  }
  series.up = Summarize(series.up_pct);
  series.down = Summarize(series.down_pct);

  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("activity.churn.runs").Add(1);
  registry.GetCounter("activity.churn.windows_processed")
      .Add(static_cast<std::uint64_t>(num_windows));
  registry.GetCounter("activity.churn.blocks_processed").Add(blocks_processed);
  return series;
}

DailyEventSeries ChurnAnalyzer::DailyEvents() const {
  DailyEventSeries series;
  int days = store_.days();
  series.active.assign(static_cast<std::size_t>(days), 0);
  series.up.assign(static_cast<std::size_t>(days - 1), 0);
  series.down.assign(static_cast<std::size_t>(days - 1), 0);
  store_.ForEach([&](net::BlockKey, const ActivityMatrix& m) {
    for (int d = 0; d < days; ++d) {
      series.active[static_cast<std::size_t>(d)] += m.ActiveOnDay(d);
    }
    for (int d = 0; d + 1 < days; ++d) {
      const DayBits& a = m.Row(d);
      const DayBits& b = m.Row(d + 1);
      series.up[static_cast<std::size_t>(d)] += PopCount(AndNotBits(b, a));
      series.down[static_cast<std::size_t>(d)] += PopCount(AndNotBits(a, b));
    }
  });
  // Overwrite, rather than skip, so the block loop above stays branch-free:
  // gaps are rare, days are few.
  for (int d = 0; d < days; ++d) {
    if (!store_.DayCovered(d)) {
      series.active[static_cast<std::size_t>(d)] = -1;
      if (d > 0) series.up[static_cast<std::size_t>(d - 1)] = -1;
      if (d + 1 < days) series.up[static_cast<std::size_t>(d)] = -1;
      if (d > 0) series.down[static_cast<std::size_t>(d - 1)] = -1;
      if (d + 1 < days) series.down[static_cast<std::size_t>(d)] = -1;
    }
  }
  return series;
}

VersusFirstSeries ChurnAnalyzer::VersusFirst(int window_days) const {
  VersusFirstSeries series;
  series.window_days = window_days;
  int num_windows = store_.days() / window_days;
  if (num_windows < 1) return series;
  series.appear.assign(static_cast<std::size_t>(num_windows), 0);
  series.disappear.assign(static_cast<std::size_t>(num_windows), 0);
  series.active.assign(static_cast<std::size_t>(num_windows), 0);
  series.window_covered = CoveredWindows(store_, window_days, num_windows);
  store_.ForEach([&](net::BlockKey, const ActivityMatrix& m) {
    auto unions = WindowUnions(m, window_days, num_windows);
    const DayBits& w0 = unions[0];
    for (int w = 0; w < num_windows; ++w) {
      auto wiu = static_cast<std::size_t>(w);
      if (!series.window_covered[wiu]) continue;  // no data, not "empty"
      const DayBits& wi = unions[wiu];
      series.appear[wiu] +=
          static_cast<std::uint64_t>(PopCount(AndNotBits(wi, w0)));
      series.disappear[wiu] +=
          static_cast<std::uint64_t>(PopCount(AndNotBits(w0, wi)));
      series.active[wiu] += static_cast<std::uint64_t>(PopCount(wi));
    }
  });
  return series;
}

std::vector<GroupChurn> ChurnAnalyzer::PerGroupChurn(
    int window_days,
    const std::function<std::uint32_t(net::BlockKey)>& group_of,
    std::uint64_t min_active_ips) const {
  int num_windows = store_.days() / window_days;
  if (num_windows < 2) return {};
  int pairs = num_windows - 1;
  std::vector<bool> window_ok =
      CoveredWindows(store_, window_days, num_windows);

  struct Acc {
    std::vector<std::uint64_t> up, down, size_prev, size_next;
    std::uint64_t total_active = 0;
  };
  std::unordered_map<std::uint32_t, Acc> groups;

  store_.ForEach([&](net::BlockKey key, const ActivityMatrix& m) {
    Acc& acc = groups[group_of(key)];
    if (acc.up.empty()) {
      acc.up.assign(static_cast<std::size_t>(pairs), 0);
      acc.down.assign(static_cast<std::size_t>(pairs), 0);
      acc.size_prev.assign(static_cast<std::size_t>(pairs), 0);
      acc.size_next.assign(static_cast<std::size_t>(pairs), 0);
    }
    auto unions = WindowUnions(m, window_days, num_windows);
    acc.total_active += static_cast<std::uint64_t>(
        PopCount(m.UnionOver(0, store_.days())));
    for (int p = 0; p < pairs; ++p) {
      auto pi = static_cast<std::size_t>(p);
      const DayBits& w0 = unions[pi];
      const DayBits& w1 = unions[pi + 1];
      acc.up[pi] += static_cast<std::uint64_t>(PopCount(AndNotBits(w1, w0)));
      acc.down[pi] += static_cast<std::uint64_t>(PopCount(AndNotBits(w0, w1)));
      acc.size_prev[pi] += static_cast<std::uint64_t>(PopCount(w0));
      acc.size_next[pi] += static_cast<std::uint64_t>(PopCount(w1));
    }
  });

  std::vector<GroupChurn> out;
  for (auto& [group, acc] : groups) {
    if (acc.total_active < min_active_ips) continue;
    std::vector<double> up_pcts, down_pcts;
    for (int p = 0; p < pairs; ++p) {
      auto pi = static_cast<std::size_t>(p);
      if (!window_ok[pi] || !window_ok[pi + 1]) continue;  // data gap
      if (acc.size_next[pi] > 0) {
        up_pcts.push_back(100.0 * static_cast<double>(acc.up[pi]) /
                          static_cast<double>(acc.size_next[pi]));
      }
      if (acc.size_prev[pi] > 0) {
        down_pcts.push_back(100.0 * static_cast<double>(acc.down[pi]) /
                            static_cast<double>(acc.size_prev[pi]));
      }
    }
    GroupChurn gc;
    gc.group = group;
    gc.total_active_ips = acc.total_active;
    gc.median_up_pct = stats::Median(std::move(up_pcts));
    gc.median_down_pct = stats::Median(std::move(down_pcts));
    out.push_back(gc);
  }
  std::sort(out.begin(), out.end(),
            [](const GroupChurn& a, const GroupChurn& b) {
              return a.group < b.group;
            });
  return out;
}

}  // namespace ipscope::activity
