#include "activity/metrics.h"

#include "par/pool.h"

namespace ipscope::activity {

std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store,
                                              int day_first, int day_last) {
  // STU over the days actually observed: uncovered days contribute no
  // activity by construction, so only the denominator needs adjusting —
  // with a full coverage mask this is exactly m.Stu(day_first, day_last).
  const int covered = store.CoveredDaysIn(day_first, day_last);
  if (covered == 0) return {};  // the window holds no data at all
  // Each block's metrics depend only on its own matrix; shards cover
  // ascending key ranges and partials concatenate in shard order, so the
  // output order (and every double in it) matches the serial scan exactly.
  return par::ParallelReduce(
      std::size_t{0}, store.BlockCount(), std::vector<BlockMetrics>{},
      [&](std::vector<BlockMetrics>& out, std::size_t first,
          std::size_t last) {
        store.ForEachShard(
            first, last, [&](net::BlockKey key, const ActivityMatrix& m) {
              int fd = m.FillingDegree(day_first, day_last);
              if (fd == 0) return;
              double stu = static_cast<double>(
                               m.SpatioTemporalActivity(day_first, day_last)) /
                           (256.0 * covered);
              out.push_back(BlockMetrics{key, fd, stu});
            });
      },
      [](std::vector<BlockMetrics>& acc, std::vector<BlockMetrics>&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      },
      /*grain=*/16);
}

std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store) {
  return ComputeBlockMetrics(store, 0, store.days());
}

std::vector<double> FillingDegrees(const std::vector<BlockMetrics>& metrics) {
  std::vector<double> out;
  out.reserve(metrics.size());
  for (const BlockMetrics& m : metrics) {
    out.push_back(static_cast<double>(m.filling_degree));
  }
  return out;
}

std::vector<double> StuValues(const std::vector<BlockMetrics>& metrics,
                              int min_fd) {
  std::vector<double> out;
  for (const BlockMetrics& m : metrics) {
    if (m.filling_degree >= min_fd) out.push_back(m.stu);
  }
  return out;
}

}  // namespace ipscope::activity
