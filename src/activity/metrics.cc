#include "activity/metrics.h"

namespace ipscope::activity {

std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store,
                                              int day_first, int day_last) {
  std::vector<BlockMetrics> out;
  out.reserve(store.BlockCount());
  store.ForEach([&](net::BlockKey key, const ActivityMatrix& m) {
    int fd = m.FillingDegree(day_first, day_last);
    if (fd == 0) return;
    out.push_back(BlockMetrics{key, fd, m.Stu(day_first, day_last)});
  });
  return out;
}

std::vector<BlockMetrics> ComputeBlockMetrics(const ActivityStore& store) {
  return ComputeBlockMetrics(store, 0, store.days());
}

std::vector<double> FillingDegrees(const std::vector<BlockMetrics>& metrics) {
  std::vector<double> out;
  out.reserve(metrics.size());
  for (const BlockMetrics& m : metrics) {
    out.push_back(static_cast<double>(m.filling_degree));
  }
  return out;
}

std::vector<double> StuValues(const std::vector<BlockMetrics>& metrics,
                              int min_fd) {
  std::vector<double> out;
  for (const BlockMetrics& m : metrics) {
    if (m.filling_degree >= min_fd) out.push_back(m.stu);
  }
  return out;
}

}  // namespace ipscope::activity
