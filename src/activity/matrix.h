// ActivityMatrix: the per-/24 spatio-temporal activity bitmap.
//
// This is the paper's core data structure (Section 5): for one /24 block,
// a days x 256 bit matrix where bit (d, h) is set iff address .h was active
// (issued at least one successful request) on day d. Figures 6 and 7 are
// direct renderings of such matrices; the filling degree (FD) and
// spatio-temporal utilization (STU) metrics are reductions over them.
//
// Storage is 4 x 64-bit words per day, row-major by day, so day slices are
// contiguous and all reductions are popcount loops.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ipscope::activity {

// A 256-bit day slice: which of the 256 host offsets were active.
using DayBits = std::array<std::uint64_t, 4>;

constexpr int PopCount(const DayBits& bits) {
  return std::popcount(bits[0]) + std::popcount(bits[1]) +
         std::popcount(bits[2]) + std::popcount(bits[3]);
}

constexpr DayBits OrBits(const DayBits& a, const DayBits& b) {
  return {a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]};
}

constexpr DayBits AndNotBits(const DayBits& a, const DayBits& b) {
  return {a[0] & ~b[0], a[1] & ~b[1], a[2] & ~b[2], a[3] & ~b[3]};
}

constexpr DayBits AndBits(const DayBits& a, const DayBits& b) {
  return {a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]};
}

// Sets host bits [lo, hi) — word-at-a-time, no per-bit loop. No-op when
// hi <= lo. Bounds must lie in [0, 256].
constexpr void SetBitRange(DayBits& bits, int lo, int hi) {
  if (hi <= lo) return;
  for (int w = lo >> 6; w < ((hi + 63) >> 6); ++w) {
    int wlo = lo > w * 64 ? lo - w * 64 : 0;
    int whi = hi < (w + 1) * 64 ? hi - w * 64 : 64;
    std::uint64_t span = whi - wlo >= 64
                             ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << (whi - wlo)) - 1);
    bits[static_cast<std::size_t>(w)] |= span << wlo;
  }
}

constexpr bool TestBit(const DayBits& bits, int host) {
  return (bits[static_cast<std::size_t>(host >> 6)] >>
          (static_cast<unsigned>(host) & 63u)) &
         1u;
}

constexpr void SetBit(DayBits& bits, int host) {
  bits[static_cast<std::size_t>(host >> 6)] |=
      std::uint64_t{1} << (static_cast<unsigned>(host) & 63u);
}

class ActivityMatrix {
 public:
  // A matrix covering `days` consecutive days (day indices 0 .. days-1),
  // with its own row storage.
  explicit ActivityMatrix(int days);

  // A matrix viewing `days` rows of externally-owned storage (an
  // ActivityStore arena). The matrix does not own `rows`; the owner must
  // keep them alive and address-stable for the matrix's lifetime.
  ActivityMatrix(int days, DayBits* rows);

  // Copying always deep-copies into owned storage, so a copy of an
  // arena-backed view is an independent matrix, never an alias.
  ActivityMatrix(const ActivityMatrix& other);
  ActivityMatrix& operator=(const ActivityMatrix& other);
  // Moving preserves the storage mode: owned rows transfer (vector move
  // keeps the heap buffer stable), views keep pointing at the arena.
  ActivityMatrix(ActivityMatrix&& other) noexcept;
  ActivityMatrix& operator=(ActivityMatrix&& other) noexcept;

  int days() const { return days_; }

  void Set(int day, int host) { SetBit(Row(day), host); }
  bool Get(int day, int host) const { return TestBit(Row(day), host); }

  DayBits& Row(int day) { return rows_[day]; }
  const DayBits& Row(int day) const { return rows_[day]; }

  // Number of active addresses on one day.
  int ActiveOnDay(int day) const { return PopCount(Row(day)); }

  // Union of day slices over [day_first, day_last) — the set of addresses
  // active at least once in the window.
  DayBits UnionOver(int day_first, int day_last) const;

  // Filling degree over a window: |union| in [1, 256] (0 if nothing active).
  int FillingDegree(int day_first, int day_last) const {
    return PopCount(UnionOver(day_first, day_last));
  }
  int FillingDegree() const { return FillingDegree(0, days_); }

  // Spatio-temporal activity: total active (address, day) pairs in a window.
  // Max is 256 * window length.
  std::int64_t SpatioTemporalActivity(int day_first, int day_last) const;

  // Spatio-temporal utilization in [0, 1]: activity / (256 * window days).
  double Stu(int day_first, int day_last) const;
  double Stu() const { return Stu(0, days_); }

  // Number of days on which a given host offset was active.
  int HostActiveDays(int host) const;

  // Active-day counts for all 256 hosts in one sweep over the set bits —
  // O(days + total set bits) instead of 256 separate column walks. The
  // per-block input to the paper's host-days dispersion feature (Fig 8).
  std::array<std::uint16_t, 256> HostActiveDayCounts() const;

  // True iff no bit is set.
  bool Empty() const;

 private:
  int days_;
  DayBits* rows_ = nullptr;  // own_.data(), or an external arena
  std::vector<DayBits> own_;  // empty when viewing external storage
};

}  // namespace ipscope::activity
