// Block activity-pattern classification (Figs 6 & 7).
//
// The paper identifies characteristic /24 activity patterns caused by the
// interplay of address assignment practice and user behaviour:
//   * statically assigned, sparsely populated blocks (Fig 6a),
//   * dynamically assigned pools cycled round-robin (Fig 6b),
//   * dynamic pools with long leases — a few near-continuously-active
//     addresses plus intermittent ones (Fig 6c),
//   * dynamic pools with ~24h leases — dense, high-turnover fill (Fig 6d),
//   * fully utilized blocks (gateways/proxies, Section 5.3/6).
//
// ClassifyPattern is a heuristic over interpretable features; its agreement
// with simulator ground truth is measured in tests and in the fig6 bench.
#pragma once

#include "activity/matrix.h"

namespace ipscope::activity {

enum class BlockPattern {
  kInactive,          // no activity at all
  kStaticSparse,      // low FD, stable set of addresses
  kDynamicShortLease, // very high FD, high daily turnover
  kDynamicLongLease,  // high FD, low turnover, mixed host activity
  kFullyUtilized,     // near-complete spatio-temporal utilization
  kMixed,             // none of the clean shapes
};

const char* PatternName(BlockPattern pattern);

struct PatternFeatures {
  int filling_degree = 0;   // distinct active addresses
  double stu = 0.0;         // spatio-temporal utilization
  double daily_fill = 0.0;  // mean active-per-day / FD: temporal density of
                            // each address's own activity
  double turnover = 0.0;    // mean day-to-day Jaccard distance of active sets
  double mean_host_days = 0.0;  // mean active days per active address
  // Coefficient of variation of per-host active-day counts — the key
  // lease-regime discriminator: a re-dealt short-lease pool gives every
  // address a near-identical activity share (cv ~ 0), whereas long leases
  // tie addresses to heterogeneous subscribers (cv >> 0).
  double host_days_cv = 0.0;
};

PatternFeatures ComputeFeatures(const ActivityMatrix& matrix);

BlockPattern ClassifyPattern(const PatternFeatures& features);

inline BlockPattern ClassifyPattern(const ActivityMatrix& matrix) {
  return ClassifyPattern(ComputeFeatures(matrix));
}

}  // namespace ipscope::activity
