#include "measurement/hitlist.h"

namespace ipscope::measurement {

const char* HitlistStrategyName(HitlistStrategy strategy) {
  switch (strategy) {
    case HitlistStrategy::kMostActive:
      return "most-active";
    case HitlistStrategy::kMostRecent:
      return "most-recent";
    case HitlistStrategy::kLowestActive:
      return "lowest-active";
    case HitlistStrategy::kFixedOffset:
      return "fixed-.1";
  }
  return "?";
}

std::vector<HitlistEntry> BuildHitlist(const activity::ActivityStore& store,
                                       int day_first, int day_last,
                                       HitlistStrategy strategy) {
  std::vector<HitlistEntry> hitlist;
  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    activity::DayBits ever = m.UnionOver(day_first, day_last);
    if (activity::PopCount(ever) == 0) return;
    int pick = -1;
    switch (strategy) {
      case HitlistStrategy::kMostActive: {
        int best_days = -1;
        for (int h = 0; h < 256; ++h) {
          if (!activity::TestBit(ever, h)) continue;
          int days = 0;
          for (int d = day_first; d < day_last; ++d) days += m.Get(d, h);
          if (days > best_days) {
            best_days = days;
            pick = h;
          }
        }
        break;
      }
      case HitlistStrategy::kMostRecent: {
        for (int d = day_last - 1; d >= day_first && pick < 0; --d) {
          for (int h = 0; h < 256; ++h) {
            if (m.Get(d, h)) {
              pick = h;
              break;
            }
          }
        }
        break;
      }
      case HitlistStrategy::kLowestActive: {
        for (int h = 0; h < 256 && pick < 0; ++h) {
          if (activity::TestBit(ever, h)) pick = h;
        }
        break;
      }
      case HitlistStrategy::kFixedOffset:
        pick = 1;  // ".1", whether or not it was ever active
        break;
    }
    if (pick < 0) return;
    hitlist.push_back(HitlistEntry{
        key, net::IPv4Addr{(key << 8) | static_cast<std::uint32_t>(pick)}});
  });
  return hitlist;
}

HitlistScore EvaluateHitlist(const activity::ActivityStore& store,
                             std::span<const HitlistEntry> hitlist,
                             int eval_first, int eval_last) {
  HitlistScore score;
  score.entries = hitlist.size();
  for (const HitlistEntry& entry : hitlist) {
    const activity::ActivityMatrix* m = store.Find(entry.key);
    if (m == nullptr) continue;
    int host = static_cast<int>(entry.address.value() & 0xFF);
    for (int d = eval_first; d < eval_last; ++d) {
      if (m->Get(d, host)) {
        ++score.responsive;
        break;
      }
    }
  }
  return score;
}

}  // namespace ipscope::measurement
