// Representative-address selection ("hitlists"), after Fan & Heidemann
// (IMC 2010), the paper's ref [15].
//
// Measurement systems (geolocation, topology, reliability probing) need one
// address per /24 that is likely to respond *in the future*. The paper's §8
// argues that spatio-temporal activity data is the right substrate for such
// selection. BuildHitlist derives a hitlist from an observation window
// under several strategies, and EvaluateHitlist scores it against a later
// window — quantifying how much an activity-informed choice beats naive
// ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "activity/store.h"
#include "netbase/ipv4.h"

namespace ipscope::measurement {

enum class HitlistStrategy {
  kMostActive,   // address with the most active days in the window
  kMostRecent,   // most recently active address (ties: lowest)
  kLowestActive, // numerically lowest ever-active address
  kFixedOffset,  // .1 of every block, activity-blind (the naive baseline)
};

const char* HitlistStrategyName(HitlistStrategy strategy);

struct HitlistEntry {
  net::BlockKey key = 0;
  net::IPv4Addr address;
};

// One entry per block with any activity in [day_first, day_last).
std::vector<HitlistEntry> BuildHitlist(const activity::ActivityStore& store,
                                       int day_first, int day_last,
                                       HitlistStrategy strategy);

struct HitlistScore {
  std::size_t entries = 0;
  std::size_t responsive = 0;  // entries active in the evaluation window
  double HitRate() const {
    return entries ? static_cast<double>(responsive) / entries : 0.0;
  }
};

// Fraction of hitlist entries active at least once in [eval_first,
// eval_last) — the "will it answer later" criterion.
HitlistScore EvaluateHitlist(const activity::ActivityStore& store,
                             std::span<const HitlistEntry> hitlist,
                             int eval_first, int eval_last);

}  // namespace ipscope::measurement
