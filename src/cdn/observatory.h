// The CDN log observatory.
//
// Stands in for the paper's server-log collection platform (§3.2): it turns
// the world plan into the two observation datasets —
//   * Daily(world):  112 daily snapshots, 2015-08-17 .. 2015-12-06
//   * Weekly(world): 52 weekly snapshots covering 2015
// — exposing exactly what the real platform exposed: per-IP activity and
// per-IP request ("hit") counts per snapshot. Everything is regenerated
// deterministically from the world seed, so the full per-IP hit matrix
// never needs to be stored (DESIGN.md §4.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "activity/store.h"
#include "sim/policy.h"
#include "sim/world.h"
#include "timeutil/date.h"

namespace ipscope::cdn {

class Observatory {
 public:
  Observatory(const sim::World& world, sim::StepSpec spec);

  // The paper's daily dataset: steps of 1 day starting Aug 17 (day 228).
  static Observatory Daily(const sim::World& world);
  // The paper's weekly dataset: 52 steps of 7 days starting Jan 1.
  static Observatory Weekly(const sim::World& world);

  const sim::World& world() const { return world_; }
  const sim::StepSpec& spec() const { return spec_; }
  int steps() const { return spec_.steps; }

  // Materializes the activity bitmaps of every observed block. Blocks with
  // zero activity over the whole period are omitted (the CDN never saw
  // them, so the dataset cannot contain them). Generation runs on the
  // shared par::GlobalPool() (parallel by default); `threads` >= 1 caps
  // the worker count for this build (1 = serial). The result is
  // bit-identical regardless of thread count (blocks are independent by
  // construction and merged in key order).
  activity::ActivityStore BuildStore(int threads = 0) const;

  // Streams every CDN-visible block with its activity matrix and per-step
  // per-host hit counts (row-major: hits[step * 256 + host], zero where
  // inactive). Blocks with no activity are skipped.
  //
  //   fn(const sim::BlockPlan& plan, const activity::ActivityMatrix& m,
  //      std::span<const std::uint32_t> hits)
  template <typename Fn>
  void ForEachBlockHits(Fn&& fn) const {
    activity::ActivityMatrix matrix{spec_.steps};
    std::vector<std::uint32_t> hits(
        static_cast<std::size_t>(spec_.steps) * 256);
    for (std::uint32_t index : order_) {
      const sim::BlockPlan& plan = world_.blocks()[index];
      bool any = false;
      for (int s = 0; s < spec_.steps; ++s) {
        activity::DayBits bits;
        sim::GenerateStep(plan, spec_, s, bits,
                          hits.data() + static_cast<std::size_t>(s) * 256);
        matrix.Row(s) = bits;
        any = any || (bits[0] | bits[1] | bits[2] | bits[3]) != 0;
      }
      if (any) fn(plan, matrix, std::span<const std::uint32_t>{hits});
    }
  }

  // Total hits per step across all blocks (one streaming pass).
  std::vector<std::uint64_t> TotalHitsPerStep() const;

 private:
  const sim::World& world_;
  sim::StepSpec spec_;
  std::vector<std::uint32_t> order_;  // block indices sorted by BlockKey
};

}  // namespace ipscope::cdn
