// Application-level login traces.
//
// Xie et al.'s UDmap (SIGCOMM 2007, cited in paper §3.1) infers dynamic
// addresses from user-login traces: the same user identity appearing on
// many addresses (and many users on one address over time) marks dynamic
// assignment. A large web platform legitimately observes (user, IP, time)
// tuples; this generator produces them for the simulated world, consistent
// with the activity kernel's occupant identities. They feed the UDmap
// baseline (src/baseline/udmap.h), which we compare against the paper's
// rDNS tagging and our pattern classifier.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"
#include "sim/policy.h"
#include "sim/world.h"

namespace ipscope::cdn {

struct LoginEvent {
  std::uint64_t user = 0;   // stable subscriber identity
  net::IPv4Addr ip;
  std::int32_t step = 0;    // snapshot index within the observation period

  friend bool operator==(const LoginEvent&, const LoginEvent&) = default;
};

class LoginTraceGenerator {
 public:
  // `login_rate`: probability that an active subscriber logs into the
  // observed service on a given step. Gateways (no single subscriber
  // behind an address) produce no login events.
  LoginTraceGenerator(const sim::World& world, sim::StepSpec spec,
                      double login_rate = 0.5);

  // Login events of one block across the whole period, ordered by step.
  std::vector<LoginEvent> BlockTrace(const sim::BlockPlan& plan) const;

  // Events for all CDN-visible blocks (ascending block key, then step).
  std::vector<LoginEvent> Trace() const;

 private:
  const sim::World& world_;
  sim::StepSpec spec_;
  double login_rate_;
};

}  // namespace ipscope::cdn
