#include "cdn/dataset.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ipscope::cdn {

DatasetTotals SummarizeDataset(
    const activity::ActivityStore& store,
    const std::function<std::uint32_t(net::BlockKey)>& origin_of) {
  DatasetTotals out;
  const int steps = store.days();

  std::vector<std::uint64_t> ips_per_step(static_cast<std::size_t>(steps), 0);
  std::vector<std::uint64_t> blocks_per_step(static_cast<std::size_t>(steps),
                                             0);
  // Active ASes per step, via per-step sets (AS counts are small).
  std::vector<std::unordered_set<std::uint32_t>> ases_per_step(
      static_cast<std::size_t>(steps));
  std::unordered_set<std::uint32_t> total_ases;

  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    std::uint32_t asn = origin_of(key);
    bool any = false;
    for (int s = 0; s < steps; ++s) {
      int active = m.ActiveOnDay(s);
      if (active == 0) continue;
      any = true;
      auto si = static_cast<std::size_t>(s);
      ips_per_step[si] += static_cast<std::uint64_t>(active);
      blocks_per_step[si] += 1;
      if (asn != 0) ases_per_step[si].insert(asn);
    }
    if (any) {
      out.total_blocks += 1;
      out.total_ips +=
          static_cast<std::uint64_t>(
              activity::PopCount(m.UnionOver(0, steps)));
      if (asn != 0) total_ases.insert(asn);
    }
  });

  out.total_ases = total_ases.size();
  double ips = 0, blocks = 0, ases = 0;
  for (int s = 0; s < steps; ++s) {
    auto si = static_cast<std::size_t>(s);
    ips += static_cast<double>(ips_per_step[si]);
    blocks += static_cast<double>(blocks_per_step[si]);
    ases += static_cast<double>(ases_per_step[si].size());
  }
  out.avg_ips = ips / steps;
  out.avg_blocks = blocks / steps;
  out.avg_ases = ases / steps;
  return out;
}

}  // namespace ipscope::cdn
