#include "cdn/useragent.h"

#include <algorithm>
#include <cmath>

#include "rng/rng.h"

namespace ipscope::cdn {

namespace {
// Devices per subscriber x UA strings per device (browsers + apps).
constexpr double kUaPerSubscriber = 3.5;
}

std::uint64_t UserAgentSampler::UaPoolSize(const sim::BlockPlan& plan) {
  const sim::PolicyParams& p = plan.base;
  switch (p.kind) {
    case sim::PolicyKind::kStatic:
    case sim::PolicyKind::kDynamicShort:
    case sim::PolicyKind::kDynamicLong: {
      double subs = static_cast<double>(p.subscribers) * double{p.occupancy};
      return static_cast<std::uint64_t>(
          std::max(1.0, subs * kUaPerSubscriber));
    }
    case sim::PolicyKind::kCgnGateway: {
      // Each gateway address aggregates hundreds to thousands of users.
      std::uint64_t users_per_gw = 800 + ((plan.block_seed >> 7) % 2400);
      return static_cast<std::uint64_t>(
          static_cast<double>(p.pool_size) *
          static_cast<double>(users_per_gw) * kUaPerSubscriber);
    }
    case sim::PolicyKind::kCrawlerBots:
      return 1 + (plan.block_seed % 3);
    case sim::PolicyKind::kServerFarm:
      return p.pool_size;  // one client string per updating server
    case sim::PolicyKind::kUnused:
    case sim::PolicyKind::kRouterInfra:
    case sim::PolicyKind::kMiddlebox:
      return 0;  // no client devices behind these addresses
  }
  return 0;
}

BlockUaSample UserAgentSampler::Sample(const sim::BlockPlan& plan,
                                       std::uint64_t window_hits) const {
  BlockUaSample out;
  out.key = net::BlockKeyOf(plan.block);
  std::uint64_t pool = UaPoolSize(plan);
  if (pool == 0 || window_hits == 0) return out;

  rng::Xoshiro256 g{rng::Substream(plan.block_seed, 0x0a9e, window_hits)};
  out.samples = rng::NextBinomial(g, window_hits, sample_rate_);
  if (out.samples == 0) return out;

  double u = static_cast<double>(pool);
  double s = static_cast<double>(out.samples);
  // Expected distinct coupons among s draws from u equally likely strings.
  // For u >> s this approaches s; for s >> u it approaches u.
  double expected = u * (1.0 - std::exp(s * std::log1p(-1.0 / u)));
  double noisy = expected + std::sqrt(std::max(expected, 1.0)) * 0.3 *
                                rng::NextNormal(g);
  auto unique = static_cast<std::uint64_t>(std::lround(noisy));
  out.unique_uas =
      std::clamp<std::uint64_t>(unique, 1, std::min(out.samples, pool));
  return out;
}

}  // namespace ipscope::cdn
