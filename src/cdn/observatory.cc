#include "cdn/observatory.h"

#include <algorithm>

#include "obs/timer.h"
#include "par/pool.h"

namespace ipscope::cdn {

namespace {
constexpr std::int32_t kDailyStartDay = 228;  // Aug 17 within 2015
}

Observatory::Observatory(const sim::World& world, sim::StepSpec spec)
    : world_(world), spec_(spec) {
  spec_.world_seed = world.config().seed;
  spec_.gateway_growth = world.config().gateway_traffic_growth;
  order_.resize(world.blocks().size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return net::BlockKeyOf(world.blocks()[a].block) <
                     net::BlockKeyOf(world.blocks()[b].block);
            });
}

Observatory Observatory::Daily(const sim::World& world) {
  sim::StepSpec spec;
  spec.start_day = kDailyStartDay;
  spec.step_days = 1;
  spec.steps = timeutil::kDailyPeriodDays;
  return Observatory{world, spec};
}

Observatory Observatory::Weekly(const sim::World& world) {
  sim::StepSpec spec;
  spec.start_day = 0;
  spec.step_days = 7;
  spec.steps = timeutil::kWeeklyPeriodWeeks;
  return Observatory{world, spec};
}

activity::ActivityStore Observatory::BuildStore(int threads) const {
  obs::Span span{"cdn.observatory.build_seconds"};
  // Generate each block's matrix independently (concurrently on the shared
  // pool) straight into one contiguous day-major-per-block arena — a single
  // allocation for the whole build instead of one per block. Results are
  // bit-identical for any thread count: blocks never share generator state
  // and each writes only its own arena slice. Block cost varies wildly by
  // policy kind (a CGN block fills 256 hosts daily, a sparse static block a
  // few), so the pool's dynamic chunk stealing does the load balancing.
  const auto steps = static_cast<std::size_t>(spec_.steps);
  std::vector<activity::DayBits> arena(order_.size() * steps);
  std::vector<char> non_empty(order_.size(), 0);

  // Non-empty row counts fold through the reduce's per-chunk accumulators —
  // summed after the join, so the count is exact for any decomposition.
  obs::Span generate_span{"cdn.observatory.build.generate_seconds"};
  std::uint64_t rows_emitted = par::ParallelReduce(
      std::size_t{0}, order_.size(), std::uint64_t{0},
      [&](std::uint64_t& rows, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          const sim::BlockPlan& plan = world_.blocks()[order_[i]];
          activity::DayBits* block_rows = arena.data() + i * steps;
          sim::GenerateBlock(plan, spec_, block_rows);
          bool any = false;
          for (std::size_t s = 0; s < steps; ++s) {
            const activity::DayBits& bits = block_rows[s];
            if ((bits[0] | bits[1] | bits[2] | bits[3]) == 0) continue;
            any = true;
            ++rows;
          }
          non_empty[i] = any ? 1 : 0;
        }
      },
      [](std::uint64_t& acc, std::uint64_t part) { acc += part; },
      /*grain=*/4, /*max_threads=*/threads);
  generate_span.Stop();

  // Insert = arena handoff: collect the non-empty keys (already in
  // ascending order) with their arena offsets and adopt the buffer —
  // O(blocks) pointer work, no row copies. Empty blocks leave their slice
  // unreferenced; see DESIGN.md §4.13 for the memory accounting.
  obs::Span insert_span{"cdn.observatory.build.insert_seconds"};
  activity::ActivityStore store{spec_.steps};
  std::uint64_t blocks_emitted = 0;
  for (char flag : non_empty) blocks_emitted += flag != 0 ? 1u : 0u;
  std::vector<net::BlockKey> keys;
  std::vector<std::size_t> offsets;
  keys.reserve(blocks_emitted);
  offsets.reserve(blocks_emitted);
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (!non_empty[i]) continue;
    keys.push_back(net::BlockKeyOf(world_.blocks()[order_[i]].block));
    offsets.push_back(i * steps);
  }
  store.AdoptArena(std::move(keys), std::move(arena), offsets);
  insert_span.Stop();

  std::uint64_t bytes_emitted = rows_emitted * sizeof(activity::DayBits);
  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("cdn.observatory.builds").Add(1);
  registry.GetCounter("cdn.observatory.blocks_emitted").Add(blocks_emitted);
  registry.GetCounter("cdn.observatory.rows_emitted").Add(rows_emitted);
  registry.GetCounter("cdn.observatory.bytes_emitted").Add(bytes_emitted);
  // Throughput of this build (not cumulative): rows and payload bytes per
  // wall second, the number ROADMAP tracks for the store_build bottleneck.
  double elapsed = span.ElapsedSeconds();
  if (elapsed > 0) {
    registry.GetGauge("cdn.observatory.build.rows_per_s")
        .Set(static_cast<double>(rows_emitted) / elapsed);
    registry.GetGauge("cdn.observatory.build.bytes_per_s")
        .Set(static_cast<double>(bytes_emitted) / elapsed);
  }
  return store;
}

std::vector<std::uint64_t> Observatory::TotalHitsPerStep() const {
  std::vector<std::uint64_t> totals(static_cast<std::size_t>(spec_.steps), 0);
  ForEachBlockHits([&](const sim::BlockPlan&, const activity::ActivityMatrix&,
                       std::span<const std::uint32_t> hits) {
    for (int s = 0; s < spec_.steps; ++s) {
      std::uint64_t sum = 0;
      for (int h = 0; h < 256; ++h) {
        sum += hits[static_cast<std::size_t>(s) * 256 +
                    static_cast<std::size_t>(h)];
      }
      totals[static_cast<std::size_t>(s)] += sum;
    }
  });
  return totals;
}

}  // namespace ipscope::cdn
