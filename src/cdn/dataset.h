// Dataset summaries (Table 1 of the paper).
//
// Table 1 reports, for the daily and weekly datasets, the total number of
// unique IP addresses, /24 blocks, and ASes seen over the whole period, and
// the average per snapshot.
#pragma once

#include <cstdint>
#include <functional>

#include "activity/store.h"

namespace ipscope::cdn {

struct DatasetTotals {
  std::uint64_t total_ips = 0;
  double avg_ips = 0.0;
  std::uint64_t total_blocks = 0;
  double avg_blocks = 0.0;
  std::uint64_t total_ases = 0;
  double avg_ases = 0.0;
};

// `origin_of` maps a /24 block to its origin AS number (0 = unrouted/none).
// A prefix/AS counts as active in a snapshot if at least one of its
// addresses is active (paper §3.2 footnote 4).
DatasetTotals SummarizeDataset(
    const activity::ActivityStore& store,
    const std::function<std::uint32_t(net::BlockKey)>& origin_of);

}  // namespace ipscope::cdn
