// HTTP User-Agent sampling (paper §6.3): relative host counts per block.
//
// The paper samples 1 of every 4096 request headers and uses the number of
// *unique* User-Agent strings per /24 as a relative measure of the host
// population behind the block. We model each block's UA string pool from
// its subscriber population (devices per subscriber x UA strings per
// device; gateways multiply by the users aggregated behind each address;
// crawler bots have one or two strings in total), then compute the expected
// number of distinct strings among `s` samples drawn from a pool of size U
// with the coupon-collector expression U * (1 - (1 - 1/U)^s), plus sampling
// noise. This preserves exactly the mechanism that creates Fig 10's three
// regions.
#pragma once

#include <cstdint>

#include "netbase/prefix.h"
#include "sim/policy.h"

namespace ipscope::cdn {

struct BlockUaSample {
  net::BlockKey key = 0;
  std::uint64_t samples = 0;     // UA strings stored (~ hits / 4096)
  std::uint64_t unique_uas = 0;  // distinct strings among them
};

class UserAgentSampler {
 public:
  explicit UserAgentSampler(double sample_rate = 1.0 / 4096.0)
      : sample_rate_(sample_rate) {}

  // Size of the block's UA string pool (ground truth for validation).
  static std::uint64_t UaPoolSize(const sim::BlockPlan& plan);

  // Samples the UA stream of one block given its total hits in the
  // sampling window. Deterministic in (block seed, window_hits).
  BlockUaSample Sample(const sim::BlockPlan& plan,
                       std::uint64_t window_hits) const;

 private:
  double sample_rate_;
};

}  // namespace ipscope::cdn
