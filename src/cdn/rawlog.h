// Raw edge-server log records and the aggregation pipeline.
//
// The real platform (paper §3.2) creates a log entry for every Web object
// served (~3 trillion/day) and funnels them through a distributed collection
// framework into per-IP hit aggregates. This module provides that bottom
// layer at simulation scale: a deterministic stream of individual request
// records per (block, day) whose per-address counts match the observatory's
// aggregate hit counts *exactly*, plus the aggregator that turns a record
// stream back into the dataset — so the whole pipeline is testable
// end-to-end (records -> aggregates -> activity matrices).
//
// Request timestamps follow a diurnal curve (evening-peaked local time),
// giving the records realistic within-day structure.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/ipv4.h"
#include "rng/rng.h"
#include "sim/policy.h"
#include "sim/world.h"

namespace ipscope::cdn {

struct LogRecord {
  std::uint32_t unix_time = 0;   // seconds since epoch
  net::IPv4Addr client;
  std::uint16_t edge_server = 0; // serving edge node id
  std::uint32_t bytes = 0;       // response size
  std::uint16_t status = 200;    // HTTP status
  std::uint64_t ua_id = 0;       // User-Agent string id (see UaString)
};

// Renders a UA id as a synthetic-but-plausible User-Agent string.
std::string UaString(std::uint64_t ua_id);

// Serializes a record in a common log-ish line format; ParseLogLine is the
// exact inverse (round-trip tested).
std::string FormatLogLine(const LogRecord& record);
bool ParseLogLine(const std::string& line, LogRecord& record);

// Hour-of-day weights of the diurnal request curve in *local* time (sums
// to 1). Evening-peaked, matching the residential curves in the literature
// the paper cites ([7,30]). Raw-log timestamps are UTC: each block's curve
// is phase-shifted by its country's UTC offset.
const std::array<double, 24>& DiurnalCurve();

// UTC offset (hours) of the block's country; 0 when unknown.
int CountryUtcOffset(const sim::BlockPlan& plan);

// Deterministic raw-record generation for one (block, step) of an
// observatory's StepSpec. Record counts per address equal the kernel's hit
// counts for the same (block, step). Intended for block-scale use (one
// block-day can be tens of thousands of records at full hit counts), so a
// per-address record cap is available for demos; 0 means uncapped.
class RawLogGenerator {
 public:
  RawLogGenerator(const sim::World& world, sim::StepSpec spec);

  // Visits every record of (plan, step): fn(const LogRecord&).
  template <typename Fn>
  void ForBlockStep(const sim::BlockPlan& plan, int step, Fn&& fn,
                    std::uint32_t per_address_cap = 0) const {
    activity::DayBits bits;
    std::uint32_t hits[256];
    std::uint64_t occupants[256];
    sim::GenerateStep(plan, spec_, step, bits, hits, occupants);
    for (int host = 0; host < 256; ++host) {
      std::uint32_t n = hits[host];
      if (n == 0) continue;
      if (per_address_cap != 0 && n > per_address_cap) n = per_address_cap;
      EmitRecords(plan, step, host, n, occupants[host], fn);
    }
  }

  const sim::StepSpec& spec() const { return spec_; }

 private:
  template <typename Fn>
  void EmitRecords(const sim::BlockPlan& plan, int step, int host,
                   std::uint32_t count, std::uint64_t occupant,
                   Fn& fn) const;

  std::uint32_t DayStartUnixTime(int step) const;

  const sim::World& world_;
  sim::StepSpec spec_;
};

// Streaming aggregation: consumes records, produces per-address counts and
// 1-in-N User-Agent samples — the collection framework of paper §3.2.
class LogAggregator {
 public:
  explicit LogAggregator(std::uint32_t ua_sample_interval = 4096)
      : ua_sample_interval_(ua_sample_interval) {}

  void Consume(const LogRecord& record);

  std::uint64_t total_records() const { return total_records_; }
  const std::unordered_map<std::uint32_t, std::uint32_t>& hits_per_ip() const {
    return hits_per_ip_;
  }
  const std::vector<std::uint64_t>& sampled_uas() const {
    return sampled_uas_;
  }
  // Distinct UA ids among the samples.
  std::size_t unique_sampled_uas() const;

 private:
  std::uint32_t ua_sample_interval_;
  std::uint64_t total_records_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> hits_per_ip_;
  std::vector<std::uint64_t> sampled_uas_;
};

// --- implementation of the generator template ---------------------------

template <typename Fn>
void RawLogGenerator::EmitRecords(const sim::BlockPlan& plan, int step,
                                  int host, std::uint32_t count,
                                  std::uint64_t occupant, Fn& fn) const {
  rng::Xoshiro256 g{rng::Substream(plan.block_seed, 0x10609, step, host)};
  const auto& curve = DiurnalCurve();
  const int utc_offset = CountryUtcOffset(plan);
  std::uint32_t day_start = DayStartUnixTime(step);
  // Devices behind the address: gateways mix many UA ids; a single
  // subscriber cycles a handful; bots use one.
  const bool gateway = plan.base.kind == sim::PolicyKind::kCgnGateway;
  const bool bot = plan.base.kind == sim::PolicyKind::kCrawlerBots;
  for (std::uint32_t i = 0; i < count; ++i) {
    LogRecord record;
    // Local hour from the diurnal curve, converted to UTC by the block's
    // country offset, then uniform seconds within the hour.
    double u = g.NextDouble();
    int local_hour = 0;
    double acc = 0;
    for (int h = 0; h < 24; ++h) {
      acc += curve[static_cast<std::size_t>(h)];
      if (u < acc) {
        local_hour = h;
        break;
      }
    }
    int utc_hour = ((local_hour - utc_offset) % 24 + 24) % 24;
    record.unix_time = day_start +
                       static_cast<std::uint32_t>(utc_hour) * 3600 +
                       g.NextBounded(3600);
    record.client = net::IPv4Addr{plan.block.network().value() +
                                  static_cast<std::uint32_t>(host)};
    record.edge_server = static_cast<std::uint16_t>(g.NextBounded(200));
    record.bytes = 200 + g.NextBounded(1u << 16);
    record.status = g.NextBool(0.02) ? 404 : 200;
    if (bot) {
      record.ua_id = rng::Substream(plan.block_seed, 0xb07);
    } else if (gateway) {
      record.ua_id = rng::Substream(plan.block_seed, 0x6a7e, g());
    } else {
      // A subscriber's device pool: ~4 UA strings per occupant.
      record.ua_id = rng::Substream(occupant, 0xde7, g.NextBounded(4));
    }
    fn(static_cast<const LogRecord&>(record));
  }
}

}  // namespace ipscope::cdn
