#include "cdn/logins.h"

#include <algorithm>

#include "rng/rng.h"

namespace ipscope::cdn {

namespace {
constexpr std::uint64_t kTagLogin = 0x106e;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

LoginTraceGenerator::LoginTraceGenerator(const sim::World& world,
                                         sim::StepSpec spec,
                                         double login_rate)
    : world_(world), spec_(spec), login_rate_(login_rate) {
  spec_.world_seed = world.config().seed;
  spec_.gateway_growth = world.config().gateway_traffic_growth;
}

std::vector<LoginEvent> LoginTraceGenerator::BlockTrace(
    const sim::BlockPlan& plan) const {
  std::vector<LoginEvent> out;
  activity::DayBits bits;
  std::uint64_t occupants[256];
  for (int step = 0; step < spec_.steps; ++step) {
    sim::GenerateStep(plan, spec_, step, bits, nullptr, occupants);
    for (int host = 0; host < 256; ++host) {
      std::uint64_t occ = occupants[host];
      if (occ == 0) continue;  // inactive, or aggregated gateway traffic
      // Whether this subscriber logged in today is a property of the
      // (subscriber, step) pair, not of the address.
      if (HashUnit(rng::Substream(occ, kTagLogin, step)) >= login_rate_) {
        continue;
      }
      out.push_back(LoginEvent{
          occ,
          net::IPv4Addr{plan.block.network().value() +
                        static_cast<std::uint32_t>(host)},
          step});
    }
  }
  return out;
}

std::vector<LoginEvent> LoginTraceGenerator::Trace() const {
  std::vector<std::uint32_t> order(world_.blocks().size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return net::BlockKeyOf(world_.blocks()[a].block) <
           net::BlockKeyOf(world_.blocks()[b].block);
  });
  std::vector<LoginEvent> out;
  for (std::uint32_t index : order) {
    const sim::BlockPlan& plan = world_.blocks()[index];
    if (!sim::IsClientPolicy(plan.base.kind) &&
        plan.base.kind != sim::PolicyKind::kCrawlerBots) {
      continue;
    }
    auto block_events = BlockTrace(plan);
    out.insert(out.end(), block_events.begin(), block_events.end());
  }
  return out;
}

}  // namespace ipscope::cdn
