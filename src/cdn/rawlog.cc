#include "cdn/rawlog.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_set>

#include "geo/country.h"
#include "timeutil/date.h"

namespace ipscope::cdn {

namespace {

// Device/browser families used to render synthetic UA strings.
constexpr const char* kFamilies[] = {
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Gecko/%llu Firefox/%llu.0",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10) AppleWebKit/%llu "
    "Safari/%llu.36",
    "Mozilla/5.0 (Linux; Android 5.1; SM-G%llu) Chrome/%llu.0 Mobile",
    "Mozilla/5.0 (iPhone; CPU iPhone OS 9_%llu like Mac OS X) Version/%llu.0",
    "App-%llu/2.%llu (embedded; smart-device)",
    "UpdateAgent-%llu/1.%llu",
};

}  // namespace

std::string UaString(std::uint64_t ua_id) {
  const char* format =
      kFamilies[ua_id % (sizeof(kFamilies) / sizeof(kFamilies[0]))];
  unsigned long long a = (ua_id >> 8) % 90000 + 10000;
  unsigned long long b = (ua_id >> 24) % 60 + 20;
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

std::string FormatLogLine(const LogRecord& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%u %s srv%u %u %u ua%llu", r.unix_time,
                r.client.ToString().c_str(), r.edge_server, r.status,
                r.bytes, static_cast<unsigned long long>(r.ua_id));
  return buf;
}

bool ParseLogLine(const std::string& line, LogRecord& record) {
  // "<time> <ip> srv<N> <status> <bytes> ua<id>"
  const char* p = line.c_str();
  const char* end = p + line.size();
  auto parse_u64 = [&](std::uint64_t& out) {
    auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{}) return false;
    p = next;
    return true;
  };
  auto skip = [&](char c) {
    if (p == end || *p != c) return false;
    ++p;
    return true;
  };
  auto skip_lit = [&](const char* lit) {
    for (; *lit != '\0'; ++lit) {
      if (p == end || *p != *lit) return false;
      ++p;
    }
    return true;
  };

  std::uint64_t v = 0;
  if (!parse_u64(v) || v > 0xFFFFFFFFu || !skip(' ')) return false;
  record.unix_time = static_cast<std::uint32_t>(v);

  const char* ip_start = p;
  while (p != end && *p != ' ') ++p;
  auto addr = net::IPv4Addr::Parse(
      std::string_view{ip_start, static_cast<std::size_t>(p - ip_start)});
  if (!addr || !skip(' ')) return false;
  record.client = *addr;

  if (!skip_lit("srv") || !parse_u64(v) || v > 0xFFFF || !skip(' ')) {
    return false;
  }
  record.edge_server = static_cast<std::uint16_t>(v);
  if (!parse_u64(v) || v > 0xFFFF || !skip(' ')) return false;
  record.status = static_cast<std::uint16_t>(v);
  if (!parse_u64(v) || v > 0xFFFFFFFFu || !skip(' ')) return false;
  record.bytes = static_cast<std::uint32_t>(v);
  if (!skip_lit("ua") || !parse_u64(v) || p != end) return false;
  record.ua_id = v;
  return true;
}

const std::array<double, 24>& DiurnalCurve() {
  // Evening-peaked residential curve: trough ~04:00, peak ~20:00-21:00.
  static const std::array<double, 24> curve = [] {
    std::array<double, 24> weights = {
        1.2, 0.8, 0.6, 0.5, 0.5, 0.6, 1.0, 1.6, 2.4, 3.0, 3.4, 3.8,
        4.0, 4.0, 3.9, 4.0, 4.3, 4.8, 5.6, 6.6, 7.2, 7.0, 5.4, 2.8};
    double total = 0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;
    return weights;
  }();
  return curve;
}

int CountryUtcOffset(const sim::BlockPlan& plan) {
  if (plan.country < 0) return 0;
  return geo::Countries()[static_cast<std::size_t>(plan.country)]
      .utc_offset_hours;
}

RawLogGenerator::RawLogGenerator(const sim::World& world, sim::StepSpec spec)
    : world_(world), spec_(spec) {
  spec_.world_seed = world.config().seed;
  spec_.gateway_growth = world.config().gateway_traffic_growth;
}

std::uint32_t RawLogGenerator::DayStartUnixTime(int step) const {
  timeutil::Day day =
      timeutil::kWeeklyPeriodStart + spec_.start_day + step * spec_.step_days;
  return static_cast<std::uint32_t>(day.value()) * 86400u;
}

void LogAggregator::Consume(const LogRecord& record) {
  ++total_records_;
  ++hits_per_ip_[record.client.value()];
  if (total_records_ % ua_sample_interval_ == 0) {
    sampled_uas_.push_back(record.ua_id);
  }
}

std::size_t LogAggregator::unique_sampled_uas() const {
  std::unordered_set<std::uint64_t> unique(sampled_uas_.begin(),
                                           sampled_uas_.end());
  return unique.size();
}

}  // namespace ipscope::cdn
