// Routing-plane observation: daily routing tables derived from the world's
// scheduled BGP events (the RouteViews substitute, paper §4.2 footnote 6).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netbase/prefix.h"
#include "netbase/prefix_trie.h"
#include "sim/world.h"

namespace ipscope::bgp {

class RoutingFeed {
 public:
  explicit RoutingFeed(const sim::World& world);

  // Origin AS of a /24 block on an absolute day; 0 when unrouted.
  std::uint32_t OriginOf(net::BlockKey key, std::int32_t day) const;

  // Majority vote of the daily origins over [first, last) — the paper's
  // rule for mapping addresses to ASes at window granularity.
  std::uint32_t MajorityOrigin(net::BlockKey key, std::int32_t first,
                               std::int32_t last) const;

  // True if any BGP event (announce, withdraw, origin change, flap)
  // touched the block within [first, last).
  bool HasEventIn(net::BlockKey key, std::int32_t first,
                  std::int32_t last) const;

  // The paper's "BGP change" between two consecutive windows: the majority
  // origin differs, or any event fell inside either window.
  bool ChangedBetween(net::BlockKey key, std::int32_t w0_first,
                      std::int32_t w0_last, std::int32_t w1_first,
                      std::int32_t w1_last) const;

  // Full snapshot of the table on a day, as a longest-prefix-match trie of
  // aggregated announcements.
  net::PrefixTrie<std::uint32_t> TableAt(std::int32_t day) const;

  // Aggregated announcements on a day: maximal aligned prefixes covering
  // contiguous same-origin routed blocks (what "BGP prefixes" means in
  // Fig 2a).
  std::vector<std::pair<net::Prefix, std::uint32_t>> AggregatedAnnouncements(
      std::int32_t day) const;

  // Number of distinct origin ASes routed on a day.
  std::size_t RoutedAsCount(std::int32_t day) const;

 private:
  struct BlockRoute {
    net::BlockKey key;
    std::uint32_t initial_asn;       // origin before any event
    bool announced_initially;       // false if a kAnnounce event exists
    std::uint32_t first_event;      // index range into events_
    std::uint32_t event_count;
  };

  const BlockRoute* FindRoute(net::BlockKey key) const;

  std::vector<BlockRoute> routes_;               // sorted by key
  std::vector<sim::BgpScheduledEvent> events_;   // grouped by block
};

}  // namespace ipscope::bgp
