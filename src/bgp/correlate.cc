#include "bgp/correlate.h"

namespace ipscope::bgp {

ChurnBgpCorrelation CorrelateChurnWithBgp(const activity::ActivityStore& store,
                                          const RoutingFeed& feed,
                                          const sim::StepSpec& spec,
                                          int window_days) {
  ChurnBgpCorrelation out;
  out.window_days = window_days;
  const int window_steps = window_days / spec.step_days;
  if (window_steps <= 0) return out;
  const int num_windows = store.days() / window_steps;
  if (num_windows < 2) return out;

  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    for (int w = 0; w + 1 < num_windows; ++w) {
      activity::DayBits w0 =
          m.UnionOver(w * window_steps, (w + 1) * window_steps);
      activity::DayBits w1 =
          m.UnionOver((w + 1) * window_steps, (w + 2) * window_steps);
      int up = activity::PopCount(activity::AndNotBits(w1, w0));
      int down = activity::PopCount(activity::AndNotBits(w0, w1));
      int steady = activity::PopCount(
          activity::DayBits{w0[0] & w1[0], w0[1] & w1[1], w0[2] & w1[2],
                            w0[3] & w1[3]});
      if (up == 0 && down == 0 && steady == 0) continue;

      std::int32_t d0 = spec.start_day + w * window_steps * spec.step_days;
      std::int32_t d1 = d0 + window_days;
      std::int32_t d2 = d1 + window_days;
      bool changed = feed.ChangedBetween(key, d0, d1, d1, d2);

      out.up_events += static_cast<std::uint64_t>(up);
      out.down_events += static_cast<std::uint64_t>(down);
      out.steady += static_cast<std::uint64_t>(steady);
      if (changed) {
        out.up_with_change += static_cast<std::uint64_t>(up);
        out.down_with_change += static_cast<std::uint64_t>(down);
        out.steady_with_change += static_cast<std::uint64_t>(steady);
      }
    }
  });
  return out;
}

}  // namespace ipscope::bgp
