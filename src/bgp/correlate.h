// Correlating activity churn with routing-plane changes (Fig 5c, Table 2).
//
// For each aggregation window size, the paper asks: of the addresses with
// an up (down) event between consecutive windows, what fraction coincided
// with a BGP change of their covering prefix — versus the steadily-active
// addresses as a baseline. The answer ("under 2.5% even at monthly
// windows") is the paper's evidence that address churn is AS-internal.
#pragma once

#include <cstdint>

#include "activity/store.h"
#include "bgp/table.h"
#include "sim/policy.h"

namespace ipscope::bgp {

struct ChurnBgpCorrelation {
  int window_days = 0;
  std::uint64_t up_events = 0;
  std::uint64_t up_with_change = 0;
  std::uint64_t down_events = 0;
  std::uint64_t down_with_change = 0;
  std::uint64_t steady = 0;  // active in both windows
  std::uint64_t steady_with_change = 0;

  double UpPct() const {
    return up_events ? 100.0 * static_cast<double>(up_with_change) /
                           static_cast<double>(up_events)
                     : 0.0;
  }
  double DownPct() const {
    return down_events ? 100.0 * static_cast<double>(down_with_change) /
                             static_cast<double>(down_events)
                       : 0.0;
  }
  double SteadyPct() const {
    return steady ? 100.0 * static_cast<double>(steady_with_change) /
                        static_cast<double>(steady)
                  : 0.0;
  }
};

// `spec` supplies the mapping from store steps to absolute days.
// `window_days` must be a multiple of spec.step_days.
ChurnBgpCorrelation CorrelateChurnWithBgp(const activity::ActivityStore& store,
                                          const RoutingFeed& feed,
                                          const sim::StepSpec& spec,
                                          int window_days);

}  // namespace ipscope::bgp
