#include "bgp/feed.h"

namespace ipscope::bgp {

std::function<std::uint32_t(net::BlockKey)> OriginLookupAt(
    const RoutingFeed& feed, std::int32_t day) {
  return [&feed, day](net::BlockKey key) { return feed.OriginOf(key, day); };
}

}  // namespace ipscope::bgp
