#include "bgp/table.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ipscope::bgp {

RoutingFeed::RoutingFeed(const sim::World& world) {
  // World events are already sorted by (key, day); keep them and index by
  // block.
  events_.assign(world.bgp_events().begin(), world.bgp_events().end());

  std::unordered_map<net::BlockKey, std::pair<std::uint32_t, std::uint32_t>>
      spans;  // key -> [first, count]
  for (std::uint32_t i = 0; i < events_.size(); ++i) {
    auto [it, inserted] = spans.try_emplace(events_[i].key, i, 1u);
    if (!inserted) ++it->second.second;
  }

  routes_.reserve(world.blocks().size());
  for (const sim::BlockPlan& plan : world.blocks()) {
    BlockRoute route;
    route.key = net::BlockKeyOf(plan.block);
    route.initial_asn = plan.asn;
    route.announced_initially = true;
    route.first_event = 0;
    route.event_count = 0;
    if (auto it = spans.find(route.key); it != spans.end()) {
      route.first_event = it->second.first;
      route.event_count = it->second.second;
      for (std::uint32_t e = 0; e < route.event_count; ++e) {
        if (events_[route.first_event + e].type ==
            sim::BgpEventType::kAnnounce) {
          // The block only enters the table at its announce event.
          route.announced_initially = false;
        }
      }
    }
    routes_.push_back(route);
  }
  std::sort(routes_.begin(), routes_.end(),
            [](const BlockRoute& a, const BlockRoute& b) {
              return a.key < b.key;
            });
}

const RoutingFeed::BlockRoute* RoutingFeed::FindRoute(
    net::BlockKey key) const {
  auto it = std::lower_bound(routes_.begin(), routes_.end(), key,
                             [](const BlockRoute& r, net::BlockKey k) {
                               return r.key < k;
                             });
  if (it == routes_.end() || it->key != key) return nullptr;
  return &*it;
}

std::uint32_t RoutingFeed::OriginOf(net::BlockKey key,
                                    std::int32_t day) const {
  const BlockRoute* route = FindRoute(key);
  if (route == nullptr) return 0;
  std::uint32_t asn = route->announced_initially ? route->initial_asn : 0;
  for (std::uint32_t e = 0; e < route->event_count; ++e) {
    const sim::BgpScheduledEvent& ev = events_[route->first_event + e];
    if (ev.day > day) break;
    switch (ev.type) {
      case sim::BgpEventType::kAnnounce:
        asn = ev.asn != 0 ? ev.asn : route->initial_asn;
        break;
      case sim::BgpEventType::kWithdraw:
        asn = 0;
        break;
      case sim::BgpEventType::kOriginChange:
        asn = ev.asn;
        break;
      case sim::BgpEventType::kFlap:
        break;  // transient; same-day snapshots still see the route
    }
  }
  return asn;
}

std::uint32_t RoutingFeed::MajorityOrigin(net::BlockKey key,
                                          std::int32_t first,
                                          std::int32_t last) const {
  const BlockRoute* route = FindRoute(key);
  if (route == nullptr || first >= last) return 0;
  // Fast path: no event inside the range means the origin is constant.
  if (!HasEventIn(key, first, last)) return OriginOf(key, first);
  std::unordered_map<std::uint32_t, int> votes;
  for (std::int32_t d = first; d < last; ++d) ++votes[OriginOf(key, d)];
  std::uint32_t best = 0;
  int best_votes = -1;
  for (auto [asn, count] : votes) {
    if (count > best_votes) {
      best = asn;
      best_votes = count;
    }
  }
  return best;
}

bool RoutingFeed::HasEventIn(net::BlockKey key, std::int32_t first,
                             std::int32_t last) const {
  const BlockRoute* route = FindRoute(key);
  if (route == nullptr) return false;
  for (std::uint32_t e = 0; e < route->event_count; ++e) {
    std::int32_t day = events_[route->first_event + e].day;
    if (day >= first && day < last) return true;
  }
  return false;
}

bool RoutingFeed::ChangedBetween(net::BlockKey key, std::int32_t w0_first,
                                 std::int32_t w0_last, std::int32_t w1_first,
                                 std::int32_t w1_last) const {
  if (MajorityOrigin(key, w0_first, w0_last) !=
      MajorityOrigin(key, w1_first, w1_last)) {
    return true;
  }
  return HasEventIn(key, w0_first, w0_last) ||
         HasEventIn(key, w1_first, w1_last);
}

std::vector<std::pair<net::Prefix, std::uint32_t>>
RoutingFeed::AggregatedAnnouncements(std::int32_t day) const {
  // Collect routed blocks (sorted by key already), then greedily cover each
  // run of contiguous same-origin blocks with maximal aligned prefixes.
  std::vector<std::pair<net::Prefix, std::uint32_t>> out;
  std::size_t i = 0;
  while (i < routes_.size()) {
    std::uint32_t asn = OriginOf(routes_[i].key, day);
    if (asn == 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < routes_.size() &&
           routes_[j + 1].key == routes_[j].key + 1 &&
           OriginOf(routes_[j + 1].key, day) == asn) {
      ++j;
    }
    // Cover the run of /24 keys with maximal aligned prefixes.
    for (const net::Prefix& prefix :
         net::CoverRange(net::IPv4Addr{routes_[i].key << 8},
                         net::IPv4Addr{(routes_[j].key << 8) | 0xFFu})) {
      out.emplace_back(prefix, asn);
    }
    i = j + 1;
  }
  return out;
}

net::PrefixTrie<std::uint32_t> RoutingFeed::TableAt(std::int32_t day) const {
  net::PrefixTrie<std::uint32_t> trie;
  for (const auto& [prefix, asn] : AggregatedAnnouncements(day)) {
    trie.Insert(prefix, asn);
  }
  return trie;
}

std::size_t RoutingFeed::RoutedAsCount(std::int32_t day) const {
  std::unordered_set<std::uint32_t> ases;
  for (const BlockRoute& route : routes_) {
    std::uint32_t asn = OriginOf(route.key, day);
    if (asn != 0) ases.insert(asn);
  }
  return ases.size();
}

}  // namespace ipscope::bgp
