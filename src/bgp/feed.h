// Convenience queries over the routing feed used by the analysis layer.
#pragma once

#include <cstdint>
#include <functional>

#include "bgp/table.h"

namespace ipscope::bgp {

// A BlockKey -> origin-AS function bound to a fixed day, usable wherever
// the analyses need a stable AS mapping (Table 1, Fig 5a).
std::function<std::uint32_t(net::BlockKey)> OriginLookupAt(
    const RoutingFeed& feed, std::int32_t day);

}  // namespace ipscope::bgp
