#include "timeutil/window.h"

namespace ipscope::timeutil {

std::vector<DayRange> PartitionWindows(DayRange period, int window_days) {
  std::vector<DayRange> windows;
  if (window_days <= 0) return windows;
  int count = period.length / window_days;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    windows.push_back(DayRange{period.start + i * window_days, window_days});
  }
  return windows;
}

DayRange WeekOfYear2015(int week_index) {
  return DayRange{kWeeklyPeriodStart + 7 * week_index, 7};
}

DayRange DailyPeriod2015() {
  return DayRange{kDailyPeriodStart, kDailyPeriodDays};
}

DayRange WeeklyPeriod2015() {
  return DayRange{kWeeklyPeriodStart, 7 * kWeeklyPeriodWeeks};
}

}  // namespace ipscope::timeutil
