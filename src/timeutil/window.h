// Observation windows and window partitioning.
//
// The paper's churn analysis (Section 4) partitions an observation period
// into non-overlapping windows of a given size (1, 2, 4, 7, 14, 28 days),
// takes the union of active addresses within each window, and compares
// consecutive windows. DayRange and PartitionWindows encode that scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "timeutil/date.h"

namespace ipscope::timeutil {

// A half-open range of days [start, start + length).
struct DayRange {
  Day start;
  int length = 0;

  Day end() const { return start + length; }  // exclusive
  bool Contains(Day d) const { return d >= start && d < end(); }

  friend bool operator==(const DayRange&, const DayRange&) = default;
};

// Partitions [period.start, period.end()) into consecutive non-overlapping
// windows of `window_days` days. A trailing partial window is discarded, as
// comparing a short window against full ones would bias churn percentages.
std::vector<DayRange> PartitionWindows(DayRange period, int window_days);

// The i-th 7-day week of the paper's weekly dataset.
DayRange WeekOfYear2015(int week_index);

// The paper's daily observation period (112 days starting 2015-08-17).
DayRange DailyPeriod2015();

// The paper's weekly observation period (52 weeks starting 2015-01-01).
DayRange WeeklyPeriod2015();

}  // namespace ipscope::timeutil
