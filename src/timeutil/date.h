// Civil-date arithmetic on a compact day number.
//
// Day 0 is 1970-01-01 (the proleptic Gregorian calendar). The conversion
// routines are the classic branchless civil-from-days / days-from-civil
// algorithms (Howard Hinnant's date algorithms, reimplemented here).
//
// The paper's two observation periods are provided as named constants:
//   * the daily dataset: 2015-08-17 .. 2015-12-06 (112 days, 16 weeks)
//   * the weekly dataset: the 52 ISO-ish weeks of 2015 starting 2015-01-01
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ipscope::timeutil {

struct CivilDate {
  int year;
  int month;  // 1..12
  int day;    // 1..31
  friend constexpr auto operator<=>(const CivilDate&,
                                    const CivilDate&) = default;
};

class Day {
 public:
  constexpr Day() = default;
  constexpr explicit Day(std::int32_t days_since_epoch)
      : value_(days_since_epoch) {}

  static constexpr Day FromCivil(CivilDate d) {
    // days_from_civil (Hinnant). Valid far beyond the range we use.
    int y = d.year - (d.month <= 2 ? 1 : 0);
    int era = (y >= 0 ? y : y - 399) / 400;
    unsigned yoe = static_cast<unsigned>(y - era * 400);
    unsigned doy = static_cast<unsigned>(
        (153 * (d.month + (d.month > 2 ? -3 : 9)) + 2) / 5 + d.day - 1);
    unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return Day{era * 146097 + static_cast<int>(doe) - 719468};
  }

  constexpr CivilDate ToCivil() const {
    // civil_from_days (Hinnant).
    std::int32_t z = value_ + 719468;
    std::int32_t era = (z >= 0 ? z : z - 146096) / 146097;
    unsigned doe = static_cast<unsigned>(z - era * 146097);
    unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    std::int32_t y = static_cast<std::int32_t>(yoe) + era * 400;
    unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    unsigned mp = (5 * doy + 2) / 153;
    unsigned d = doy - (153 * mp + 2) / 5 + 1;
    unsigned m = mp + (mp < 10 ? 3 : -9);
    return CivilDate{y + (m <= 2 ? 1 : 0), static_cast<int>(m),
                     static_cast<int>(d)};
  }

  constexpr std::int32_t value() const { return value_; }

  // 0 = Monday .. 6 = Sunday. 1970-01-01 was a Thursday (3).
  constexpr int Weekday() const {
    std::int32_t v = value_ + 3;
    return static_cast<int>(v >= 0 ? v % 7 : (v % 7 + 7) % 7);
  }

  constexpr bool IsWeekend() const { return Weekday() >= 5; }

  constexpr Day operator+(std::int32_t days) const {
    return Day{value_ + days};
  }
  constexpr Day operator-(std::int32_t days) const {
    return Day{value_ - days};
  }
  constexpr std::int32_t operator-(Day other) const {
    return value_ - other.value_;
  }
  constexpr Day& operator++() {
    ++value_;
    return *this;
  }

  // "YYYY-MM-DD".
  std::string ToString() const;

  friend constexpr auto operator<=>(Day, Day) = default;

 private:
  std::int32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Day day);

// The paper's observation periods.
inline constexpr Day kDailyPeriodStart = Day::FromCivil({2015, 8, 17});
inline constexpr int kDailyPeriodDays = 112;  // 16 weeks, ends 2015-12-06
inline constexpr Day kWeeklyPeriodStart = Day::FromCivil({2015, 1, 1});
inline constexpr int kWeeklyPeriodWeeks = 52;

}  // namespace ipscope::timeutil
