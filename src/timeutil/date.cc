#include "timeutil/date.h"

#include <cstdio>
#include <ostream>

namespace ipscope::timeutil {

std::string Day::ToString() const {
  CivilDate c = ToCivil();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::ostream& operator<<(std::ostream& os, Day day) {
  return os << day.ToString();
}

}  // namespace ipscope::timeutil
