#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "io/atomic_file.h"
#include "obs/json.h"

namespace ipscope::obs {

namespace {

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t CurrentTid() {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7FFFFFFF);
}

// The shared obs::json escaper: control characters \u-escape instead of
// being flattened to spaces (the old behavior silently corrupted names).
std::string EscapeJson(const std::string& s) { return json::Escape(s); }

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(SteadyNowNanos()) {}

std::int64_t TraceRecorder::NowMicros() const {
  return (SteadyNowNanos() - epoch_ns_) / 1000;
}

void TraceRecorder::AddComplete(const std::string& name,
                                const std::string& category,
                                std::int64_t ts_us, std::int64_t dur_us) {
  AddCompleteOnTrack(name, category, ts_us, dur_us, CurrentTid());
}

void TraceRecorder::AddCompleteOnTrack(const std::string& name,
                                       const std::string& category,
                                       std::int64_t ts_us, std::int64_t dur_us,
                                       std::uint32_t track_id) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = std::max<std::int64_t>(ts_us, 0);
  event.dur_us = std::max<std::int64_t>(dur_us, 0);
  event.tid = track_id;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceRecorder::Write(std::ostream& os) const {
  std::vector<TraceEvent> events = Events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n") << "  {\"name\": \"" << EscapeJson(e.name)
       << "\", \"cat\": \"" << EscapeJson(e.category)
       << "\", \"ph\": \"X\", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid
       << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
}

void TraceRecorder::WriteFile(const std::string& path) const {
  std::ostringstream buffer;
  Write(buffer);
  // Atomic temp+rename: a killed process never leaves a truncated trace
  // that Perfetto/about://tracing rejects as malformed JSON.
  if (auto error = io::WriteFileAtomic(path, buffer.view())) {
    throw std::runtime_error("obs: trace write failed: " + *error);
  }
}

TraceRecorder& GlobalTrace() {
  static TraceRecorder* recorder = new TraceRecorder;  // atexit-safe
  return *recorder;
}

}  // namespace ipscope::obs
