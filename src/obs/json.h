// Minimal JSON support for the observability layer: the one string escaper
// every obs serializer shares, and a small checked parser for the bench-JSON
// documents `ipscope_cli benchdiff` consumes.
//
// The parser accepts full JSON (objects, arrays, strings with escapes,
// numbers, true/false/null) and fails loudly — std::runtime_error with the
// byte offset — on anything malformed: no silent truncation, no partial
// values. Object keys keep their document order so serializing a parsed
// value back is stable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipscope::obs::json {

// Escapes `s` for embedding inside a JSON string literal: quote, backslash,
// and every control character below 0x20 (\b \t \n \f \r get their short
// forms, the rest \u00XX). Bytes >= 0x20 pass through untouched, so UTF-8
// payloads round-trip.
std::string Escape(const std::string& s);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  // Typed accessors throw std::runtime_error on a kind mismatch (a schema
  // error in the document, not a programming error here).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<std::pair<std::string, Value>>& AsObject() const;

  // Object member lookup; nullptr when absent or when this is not an
  // object. First match wins (JSON duplicate keys are not rejected).
  const Value* Find(const std::string& key) const;

  static Value Null();
  static Value Bool(bool b);
  static Value Number(double n);
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Parses one complete JSON document (trailing garbage is an error). Throws
// std::runtime_error with a byte offset on malformed input, unsupported
// escapes, or nesting deeper than an internal sanity limit.
Value Parse(std::string_view text);

}  // namespace ipscope::obs::json
