// Chrome trace-event-format recording for the pipeline's stage spans.
//
// When enabled, obs::Span (see obs/timer.h) appends one complete ("ph":"X")
// event per scope. The serialized file loads directly in about://tracing or
// https://ui.perfetto.dev:
//
//   obs::GlobalTrace().Enable();
//   ... run pipeline ...
//   obs::GlobalTrace().WriteFile("trace.json");
//
// Timestamps are microseconds on the steady clock, relative to recorder
// construction, so `ts` is non-negative and `ts + dur` never exceeds the
// recorder's current NowMicros().
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace ipscope::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   // start, microseconds since recorder epoch
  std::int64_t dur_us = 0;  // duration, microseconds
  // Perfetto track: a hashed std::thread::id by default, or an explicit
  // small track id (e.g. a par::Pool participant slot) when the producer
  // wants events grouped by logical worker rather than OS thread.
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  TraceRecorder();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds elapsed since recorder construction (steady clock).
  std::int64_t NowMicros() const;

  // Records a complete event for the calling thread. No-op when disabled.
  void AddComplete(const std::string& name, const std::string& category,
                   std::int64_t ts_us, std::int64_t dur_us);

  // Same, but on an explicit track id instead of the hashed thread id —
  // used by the scheduler to put every chunk of a parallel region on its
  // participant's own Perfetto track.
  void AddCompleteOnTrack(const std::string& name, const std::string& category,
                          std::int64_t ts_us, std::int64_t dur_us,
                          std::uint32_t track_id);

  std::vector<TraceEvent> Events() const;
  std::size_t size() const;
  void Clear();

  // {"displayTimeUnit": "ms", "traceEvents": [...]} with events sorted by
  // start timestamp.
  void Write(std::ostream& os) const;
  void WriteFile(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;  // guards: mu_
};

// The process-global recorder obs::Span reports into; disabled by default.
TraceRecorder& GlobalTrace();

}  // namespace ipscope::obs
