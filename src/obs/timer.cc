#include "obs/timer.h"

#include <utility>

#include "obs/trace.h"

namespace ipscope::obs {

double ScopedTimer::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = watch_.Seconds();
  hist_->Record(elapsed_);
  return elapsed_;
}

Span::Span(std::string name, std::string category)
    : name_(std::move(name)),
      category_(std::move(category)),
      hist_(&GlobalRegistry().GetHistogram(name_)),
      start_us_(GlobalTrace().NowMicros()) {}

double Span::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = watch_.Seconds();
  hist_->Record(elapsed_);
  TraceRecorder& trace = GlobalTrace();
  if (trace.enabled()) {
    trace.AddComplete(name_, category_, start_us_,
                      static_cast<std::int64_t>(elapsed_ * 1e6));
  }
  return elapsed_;
}

}  // namespace ipscope::obs
