#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.h"
#include "obs/json.h"

namespace ipscope::obs {

namespace {

// JSON string escaping for metric names (quotes, backslash, control chars)
// — the shared obs::json escaper, so every obs serializer escapes
// identically.
std::string EscapeJson(const std::string& s) { return json::Escape(s); }

// Finite doubles only (the registry never produces NaN/inf, but a gauge is
// user-settable); JSON has no literal for non-finite values.
std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Prometheus sample values, unlike JSON, have literals for non-finite
// numbers.
std::string FormatPromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// # HELP text escaping per the text-format spec: backslash and newline.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void Gauge::Add(double delta) {
  double expected = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinBound)) return 0;
  int idx = static_cast<int>(std::log2(value / kMinBound) *
                             kBucketsPerOctave);
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::LowerBound(int bucket) {
  return kMinBound *
         std::exp2(static_cast<double>(bucket) / kBucketsPerOctave);
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(BucketIndex(value))];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    double n = static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
    if (n == 0) continue;
    if (cum + n >= target) {
      double frac = (target - cum) / n;
      double lo = LowerBound(b);
      double hi = LowerBound(b + 1);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cum += n;
  }
  return max_;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
  }
  // Quantile re-locks; fine because writers only ever append.
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  return s;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::HistogramSnapshots() const {
  std::vector<std::pair<std::string, Histogram*>> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      items.emplace_back(name, hist.get());
    }
  }
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(items.size());
  for (const auto& [name, hist] : items) {
    out.emplace_back(name, hist->Snap());
  }
  return out;
}

void Registry::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : CounterValues()) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : GaugeValues()) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
       << "\": " << FormatJsonDouble(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, s] : HistogramSnapshots()) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {"
       << "\"count\": " << s.count << ", \"sum\": " << FormatJsonDouble(s.sum)
       << ", \"min\": " << FormatJsonDouble(s.min)
       << ", \"max\": " << FormatJsonDouble(s.max)
       << ", \"p50\": " << FormatJsonDouble(s.p50)
       << ", \"p90\": " << FormatJsonDouble(s.p90)
       << ", \"p99\": " << FormatJsonDouble(s.p99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void Registry::WriteJsonFile(const std::string& path) const {
  // Atomic temp+rename: a killed process never leaves a truncated metrics
  // file that a later collector half-reads.
  if (auto error = io::WriteFileAtomic(path, ToJson())) {
    throw std::runtime_error("obs: metrics write failed: " + *error);
  }
}

void Registry::WritePrometheus(std::ostream& os) const {
  for (const auto& [name, value] : CounterValues()) {
    std::string prom = PrometheusName(name);
    os << "# HELP " << prom << " ipscope counter " << EscapeHelp(name)
       << "\n# TYPE " << prom << " counter\n"
       << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : GaugeValues()) {
    std::string prom = PrometheusName(name);
    os << "# HELP " << prom << " ipscope gauge " << EscapeHelp(name)
       << "\n# TYPE " << prom << " gauge\n"
       << prom << " " << FormatPromDouble(value) << "\n";
  }
  for (const auto& [name, s] : HistogramSnapshots()) {
    std::string prom = PrometheusName(name);
    os << "# HELP " << prom << " ipscope histogram " << EscapeHelp(name)
       << "\n# TYPE " << prom << " summary\n"
       << prom << "{quantile=\"0.5\"} " << FormatPromDouble(s.p50) << "\n"
       << prom << "{quantile=\"0.9\"} " << FormatPromDouble(s.p90) << "\n"
       << prom << "{quantile=\"0.99\"} " << FormatPromDouble(s.p99) << "\n"
       << prom << "_sum " << FormatPromDouble(s.sum) << "\n"
       << prom << "_count " << s.count << "\n";
  }
}

std::string Registry::ToPrometheus() const {
  std::ostringstream os;
  WritePrometheus(os);
  return os.str();
}

void Registry::WritePrometheusFile(const std::string& path) const {
  if (auto error = io::WriteFileAtomic(path, ToPrometheus())) {
    throw std::runtime_error("obs: metrics write failed: " + *error);
  }
}

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;  // never destroyed: atexit-safe
  return *registry;
}

std::optional<std::string> EnvString(const char* name) {
  // lint: getenv(blessed wrapper: EnvString is the single audited getenv
  // call site for string-valued variables; empty values are normalized to
  // nullopt so callers cannot mistake them for a configured path)
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

}  // namespace ipscope::obs
