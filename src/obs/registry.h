// Process-wide observability: named counters, gauges, and histograms.
//
// The registry is the measurement substrate every pipeline stage reports
// into. Instruments are created on first use and live for the life of the
// registry, so call sites can cache references:
//
//   auto& hist = obs::GlobalRegistry().GetHistogram("sim.world.build_seconds");
//   hist.Record(elapsed_seconds);
//
// Thread-safety: instrument lookup takes a registry mutex; updates on an
// instrument are lock-free (Counter, Gauge) or take a per-instrument mutex
// (Histogram). Canonical metric names are dot-separated, lowest-level unit
// last: `sim.world.build_seconds`, `io.store.save_bytes`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ipscope::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written point-in-time value (e.g. a throughput or a fleet size).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with geometric bucket bounds, designed for
// wall-time (seconds) and size (bytes) distributions spanning many orders
// of magnitude. Quantiles interpolate linearly inside the matched bucket
// and are clamped to the observed [min, max], so a single-valued
// distribution reads back exactly.
class Histogram {
 public:
  // Buckets cover [1e-9, 1e-9 * 2^80) at 4 buckets per octave (~19%
  // relative width); values outside the range land in the edge buckets but
  // min/max stay exact.
  static constexpr double kMinBound = 1e-9;
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 320;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };

  void Record(double value);

  std::uint64_t count() const;
  double sum() const;
  // Interpolated quantile for q in [0, 1]; 0 when the histogram is empty.
  double Quantile(double q) const;
  Snapshot Snap() const;

 private:
  static int BucketIndex(double value);
  static double LowerBound(int bucket);

  mutable std::mutex mu_;
  std::array<std::uint64_t, kNumBuckets> buckets_{};  // guards: mu_
  std::uint64_t count_ = 0;                           // guards: mu_
  double sum_ = 0;                                    // guards: mu_
  double min_ = 0;                                    // guards: mu_
  double max_ = 0;                                    // guards: mu_
};

// Named instrument registry. Returned references stay valid until the
// registry is destroyed; re-requesting a name returns the same instrument.
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Sorted (name, value) snapshots, for reports and tests.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshots()
      const;

  // Serializes every instrument as a single JSON object:
  //   {"counters": {...}, "gauges": {...},
  //    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  //                            "p50":..,"p90":..,"p99":..}, ...}}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
  void WriteJsonFile(const std::string& path) const;

  // Serializes every instrument in the Prometheus text exposition format
  // 0.0.4 — the groundwork a scraping daemon (ROADMAP item 3) consumes.
  // Dotted canonical names map to Prometheus names by replacing every
  // character outside [a-zA-Z0-9_:] with '_' (a leading digit gets a '_'
  // prefix); each family carries a # HELP line holding the original dotted
  // name. Counters emit as `counter`, gauges as `gauge`, histograms as
  // `summary` (quantile 0.5/0.9/0.99 series plus _sum and _count).
  void WritePrometheus(std::ostream& os) const;
  std::string ToPrometheus() const;
  void WritePrometheusFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;      // guards: mu_
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;          // guards: mu_
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;  // guards: mu_
};

// Maps a dotted canonical metric name onto the Prometheus data model
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every invalid character becomes '_', and a
// leading digit gets a '_' prefix. Exposed for tests and for callers that
// need to predict exposition names.
std::string PrometheusName(const std::string& name);

// The process-global registry every pipeline stage reports into.
Registry& GlobalRegistry();

// The blessed read point for string-valued (path-like) environment
// variables: returns the value when set and non-empty, nullopt otherwise.
// Centralizing the read keeps raw getenv out of harnesses and library
// code (the [parsing] lint contract); numeric variables instead go
// through their dedicated checked parsers (par::ParseThreadsEnv, the cli
// flag parsers).
std::optional<std::string> EnvString(const char* name);

}  // namespace ipscope::obs
