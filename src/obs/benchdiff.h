// Benchmark-regression gate: parse two bench-JSON v2 reports (the schema
// bench_pipeline emits), align their runs and stages, and classify every
// stage delta against a tolerance.
//
// Contract (DESIGN.md §4.11):
//  * schema_version must be 2 in both documents — anything else is a parse
//    error, never a guess.
//  * Runs are matched on their `threads` value, stages by name inside a
//    matched run.
//  * A stage regresses when it slowed by more than tolerance_pct AND by
//    more than min_delta_seconds in absolute terms (the floor keeps
//    microsecond-scale stages from gating on scheduler noise).
//  * A stage present in the baseline but absent from the current report is
//    a regression: the benchmark silently lost coverage.
//  * Reports from different hardware (cpu model, thread count, compiler,
//    or flags differ) or at a different world scale (client_blocks) are not
//    comparable: the diff is still produced, but it is advisory —
//    `regressed` stays false for timing deltas (missing stages still gate,
//    they are shape changes, not timings).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ipscope::obs::benchdiff {

// Host/toolchain fingerprint embedded in every bench-JSON v2 report.
struct Hardware {
  std::string cpu_model;
  int hardware_threads = 0;
  std::string compiler;
  std::string flags;
  std::string git_sha;  // informational: differs between compared reports
};

struct Stage {
  std::string name;
  double seconds = 0;
};

struct Run {
  int threads = 0;
  double total_seconds = 0;
  std::vector<Stage> stages;  // document order
};

struct Report {
  std::string bench_name;
  int schema_version = 0;
  // World scale the report was measured at (0 when the document omits it).
  // Reports at different scales are not comparable — timings move with the
  // input size, not the code.
  long client_blocks = 0;
  Hardware hardware;
  std::vector<Run> runs;
  // Whether the document carries a "speedup" block. Single-thread-count
  // sweeps (1-hardware-thread hosts) cannot measure scaling and emit
  // "baseline_only": true instead; a missing speedup block is advisory,
  // never a gate failure.
  bool has_speedup = false;
  bool baseline_only = false;
};

// Parses a bench-JSON v2 document. Throws std::runtime_error (with context)
// on malformed JSON, schema_version != 2, or missing required fields.
Report ParseReport(std::string_view text);

// Same, from a file; the path is included in error messages.
Report LoadReportFile(const std::string& path);

enum class StageStatus {
  kUnchanged,  // within tolerance (or below the absolute floor)
  kImproved,   // faster by more than tolerance + floor
  kRegressed,  // slower by more than tolerance + floor
  kMissing,    // in baseline, absent from current — lost coverage
  kNew,        // in current only — informational
};

struct StageDiff {
  int threads = 0;
  std::string stage;
  double baseline_seconds = 0;
  double current_seconds = 0;
  double delta_pct = 0;  // (current - baseline) / baseline * 100
  StageStatus status = StageStatus::kUnchanged;
};

struct DiffOptions {
  double tolerance_pct = 10.0;
  // Absolute slow-down floor: a delta smaller than this never regresses
  // (nor counts as improved), whatever its percentage.
  double min_delta_seconds = 5e-4;
};

struct DiffResult {
  std::vector<StageDiff> stages;
  // False when the two reports come from different hardware or toolchains;
  // timing deltas are then advisory and never set `regressed`.
  bool comparable = true;
  bool regressed = false;
  std::vector<std::string> notes;  // mismatches, unmatched runs
};

DiffResult Diff(const Report& baseline, const Report& current,
                const DiffOptions& options = {});

// Fixed-width human-readable rendering of a diff (table + notes + verdict).
void WriteDiff(std::ostream& os, const DiffResult& result,
               const DiffOptions& options = {});

}  // namespace ipscope::obs::benchdiff
