#include "obs/json.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace ipscope::obs::json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Value::AsBool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::AsNumber() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Value::AsString() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::AsObject() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::Null() { return Value{}; }

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

constexpr int kMaxDepth = 100;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value ParseDocument() {
    SkipWs();
    Value v = ParseValue(0);
    SkipWs();
    if (pos_ != s_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  bool Eof() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  void Expect(char c, const char* context) {
    if (Eof() || Peek() != c) {
      Fail(std::string("expected '") + c + "' in " + context);
    }
    ++pos_;
  }

  bool TryConsume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Value ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWs();
    if (Eof()) Fail("unexpected end of input");
    char c = Peek();
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return Value::String(ParseString());
    if (c == 't') return ParseLiteral("true", Value::Bool(true));
    if (c == 'f') return ParseLiteral("false", Value::Bool(false));
    if (c == 'n') return ParseLiteral("null", Value::Null());
    return ParseNumber();
  }

  Value ParseLiteral(std::string_view word, Value result) {
    if (s_.substr(pos_, word.size()) != word) Fail("invalid literal");
    pos_ += word.size();
    return result;
  }

  Value ParseNumber() {
    double number = 0;
    auto [ptr, ec] =
        std::from_chars(s_.data() + pos_, s_.data() + s_.size(), number);
    if (ec != std::errc{} || ptr == s_.data() + pos_) Fail("invalid number");
    pos_ = static_cast<std::size_t>(ptr - s_.data());
    return Value::Number(number);
  }

  std::string ParseString() {
    Expect('"', "string");
    std::string out;
    while (true) {
      if (Eof()) Fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (Eof()) Fail("unterminated escape");
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += ParseUnicodeEscape(); break;
        default: Fail("unsupported escape");
      }
    }
  }

  // Decodes one \uXXXX escape — or a UTF-16 surrogate pair spelled as two
  // consecutive escapes — to UTF-8. A high surrogate must be immediately
  // followed by `\u` + a low surrogate; lone halves and reversed pairs
  // fail with the byte offset, because accepting half a pair silently
  // would corrupt the string.
  std::string ParseUnicodeEscape() {
    unsigned code = ParseHex4();
    if (code >= 0xDC00 && code <= 0xDFFF) {
      Fail("lone low surrogate in \\u escape");
    }
    std::uint32_t cp = code;
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u') {
        Fail("high surrogate \\u escape not followed by a low surrogate");
      }
      pos_ += 2;
      unsigned low = ParseHex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        Fail("high surrogate \\u escape paired with a non-low surrogate");
      }
      cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  // Four hex digits of one \uXXXX escape (the `\u` itself already consumed).
  unsigned ParseHex4() {
    if (pos_ + 4 > s_.size()) Fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = s_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        Fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  Value ParseArray(int depth) {
    Expect('[', "array");
    std::vector<Value> items;
    SkipWs();
    if (TryConsume(']')) return Value::Array(std::move(items));
    while (true) {
      items.push_back(ParseValue(depth + 1));
      SkipWs();
      if (TryConsume(']')) return Value::Array(std::move(items));
      Expect(',', "array");
    }
  }

  Value ParseObject(int depth) {
    Expect('{', "object");
    std::vector<std::pair<std::string, Value>> members;
    SkipWs();
    if (TryConsume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':', "object");
      members.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWs();
      if (TryConsume('}')) return Value::Object(std::move(members));
      Expect(',', "object");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Parse(std::string_view text) { return Parser{text}.ParseDocument(); }

}  // namespace ipscope::obs::json
