#include "obs/benchdiff.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace ipscope::obs::benchdiff {

namespace {

[[noreturn]] void SchemaError(const std::string& what) {
  throw std::runtime_error("benchdiff: " + what);
}

const json::Value& Require(const json::Value& obj, const std::string& key,
                           const std::string& context) {
  const json::Value* found = obj.Find(key);
  if (found == nullptr) {
    SchemaError("missing required field \"" + key + "\" in " + context);
  }
  return *found;
}

std::string OptionalString(const json::Value& obj, const std::string& key) {
  const json::Value* found = obj.Find(key);
  return (found != nullptr && found->is_string()) ? found->AsString() : "";
}

Hardware ParseHardware(const json::Value& v) {
  Hardware hw;
  hw.cpu_model = Require(v, "cpu_model", "hardware").AsString();
  hw.hardware_threads = static_cast<int>(
      Require(v, "hardware_threads", "hardware").AsNumber());
  hw.compiler = OptionalString(v, "compiler");
  hw.flags = OptionalString(v, "flags");
  hw.git_sha = OptionalString(v, "git_sha");
  return hw;
}

Run ParseRun(const json::Value& v, std::size_t index) {
  std::string context = "runs[" + std::to_string(index) + "]";
  Run run;
  run.threads = static_cast<int>(Require(v, "threads", context).AsNumber());
  run.total_seconds = Require(v, "total_seconds", context).AsNumber();
  const json::Value& stages = Require(v, "stages", context);
  if (!stages.is_object()) SchemaError(context + ".stages is not an object");
  for (const auto& [name, value] : stages.AsObject()) {
    // A stage is either a bare number of seconds or an object with a
    // "seconds" member (bench_pipeline's form, which adds mb/mb_per_s).
    double seconds =
        value.is_number()
            ? value.AsNumber()
            : Require(value, "seconds", context + ".stages." + name)
                  .AsNumber();
    run.stages.push_back(Stage{name, seconds});
  }
  return run;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4f", s);
  return buf;
}

std::string FormatPct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+7.1f%%", pct);
  return buf;
}

const char* StatusWord(StageStatus status) {
  switch (status) {
    case StageStatus::kUnchanged:
      return "ok";
    case StageStatus::kImproved:
      return "improved";
    case StageStatus::kRegressed:
      return "REGRESSED";
    case StageStatus::kMissing:
      return "MISSING";
    case StageStatus::kNew:
      return "new";
  }
  return "?";
}

}  // namespace

Report ParseReport(std::string_view text) {
  json::Value doc = json::Parse(text);
  if (!doc.is_object()) SchemaError("document is not a JSON object");

  Report report;
  const json::Value& version = Require(doc, "schema_version", "document");
  report.schema_version = static_cast<int>(version.AsNumber());
  if (report.schema_version != 2) {
    SchemaError("unsupported schema_version " +
                std::to_string(report.schema_version) +
                " (this tool reads bench-JSON v2)");
  }
  report.bench_name = OptionalString(doc, "bench");
  if (const json::Value* blocks = doc.Find("client_blocks");
      blocks != nullptr && blocks->is_number()) {
    report.client_blocks = static_cast<long>(blocks->AsNumber());
  }
  report.hardware = ParseHardware(Require(doc, "hardware", "document"));
  const json::Value& runs = Require(doc, "runs", "document");
  if (!runs.is_array()) SchemaError("\"runs\" is not an array");
  for (std::size_t i = 0; i < runs.AsArray().size(); ++i) {
    report.runs.push_back(ParseRun(runs.AsArray()[i], i));
  }
  if (report.runs.empty()) SchemaError("\"runs\" is empty");
  report.has_speedup = doc.Find("speedup") != nullptr;
  if (const json::Value* only = doc.Find("baseline_only");
      only != nullptr && only->kind() == json::Value::Kind::kBool) {
    report.baseline_only = only->AsBool();
  }
  return report;
}

Report LoadReportFile(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    throw std::runtime_error("benchdiff: cannot open report: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is.good() && !is.eof()) {
    throw std::runtime_error("benchdiff: read failed: " + path);
  }
  try {
    return ParseReport(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " [" + path + "]");
  }
}

DiffResult Diff(const Report& baseline, const Report& current,
                const DiffOptions& options) {
  DiffResult result;

  // Comparability: timing deltas only gate when host + toolchain match.
  auto mismatch = [&](const std::string& what, const std::string& a,
                      const std::string& b) {
    result.comparable = false;
    result.notes.push_back(what + " differs (baseline \"" + a +
                           "\", current \"" + b + "\"): timing deltas are "
                           "advisory, not a gate");
  };
  if (baseline.hardware.cpu_model != current.hardware.cpu_model) {
    mismatch("cpu model", baseline.hardware.cpu_model,
             current.hardware.cpu_model);
  }
  if (baseline.hardware.hardware_threads != current.hardware.hardware_threads) {
    mismatch("hardware thread count",
             std::to_string(baseline.hardware.hardware_threads),
             std::to_string(current.hardware.hardware_threads));
  }
  if (baseline.hardware.compiler != current.hardware.compiler) {
    mismatch("compiler", baseline.hardware.compiler,
             current.hardware.compiler);
  }
  if (baseline.hardware.flags != current.hardware.flags) {
    mismatch("compile flags", baseline.hardware.flags,
             current.hardware.flags);
  }
  // Timings scale with the input, so two reports measured at different
  // world sizes are not comparable either (0 = scale not recorded; old
  // reports without the field stay comparable rather than always gating).
  if (baseline.client_blocks != 0 && current.client_blocks != 0 &&
      baseline.client_blocks != current.client_blocks) {
    mismatch("world scale (client_blocks)",
             std::to_string(baseline.client_blocks),
             std::to_string(current.client_blocks));
  }

  // A report without a speedup block (single-thread-count sweep on a
  // 1-hardware-thread host, marked baseline_only) did not lose coverage —
  // scaling simply was not measurable. Advisory note, never a gate.
  if (baseline.has_speedup && !current.has_speedup) {
    result.notes.push_back(
        current.baseline_only
            ? "current report is baseline_only (single-thread-count sweep): "
              "speedup not measured; advisory, not a gate"
            : "current report has no speedup block: scaling not measured; "
              "advisory, not a gate");
  }

  for (const Run& base_run : baseline.runs) {
    const Run* cur_run = nullptr;
    for (const Run& candidate : current.runs) {
      if (candidate.threads == base_run.threads) {
        cur_run = &candidate;
        break;
      }
    }
    if (cur_run == nullptr) {
      result.notes.push_back("baseline run with threads=" +
                             std::to_string(base_run.threads) +
                             " has no counterpart in the current report");
      result.regressed = true;  // lost coverage, same as a missing stage
      continue;
    }
    for (const Stage& base_stage : base_run.stages) {
      StageDiff diff;
      diff.threads = base_run.threads;
      diff.stage = base_stage.name;
      diff.baseline_seconds = base_stage.seconds;
      const Stage* cur_stage = nullptr;
      for (const Stage& candidate : cur_run->stages) {
        if (candidate.name == base_stage.name) {
          cur_stage = &candidate;
          break;
        }
      }
      if (cur_stage == nullptr) {
        diff.status = StageStatus::kMissing;
        // A vanished stage is a shape change, not a timing delta: it gates
        // even across hardware.
        result.regressed = true;
        result.stages.push_back(std::move(diff));
        continue;
      }
      diff.current_seconds = cur_stage->seconds;
      double delta = diff.current_seconds - diff.baseline_seconds;
      diff.delta_pct = diff.baseline_seconds > 0
                           ? delta / diff.baseline_seconds * 100.0
                           : (delta > 0 ? std::numeric_limits<double>::infinity()
                                        : 0.0);
      if (delta > options.min_delta_seconds &&
          diff.delta_pct > options.tolerance_pct) {
        diff.status = StageStatus::kRegressed;
        if (result.comparable) result.regressed = true;
      } else if (-delta > options.min_delta_seconds &&
                 -diff.delta_pct > options.tolerance_pct) {
        diff.status = StageStatus::kImproved;
      }
      result.stages.push_back(std::move(diff));
    }
    for (const Stage& cur_stage : cur_run->stages) {
      bool in_baseline = false;
      for (const Stage& candidate : base_run.stages) {
        if (candidate.name == cur_stage.name) {
          in_baseline = true;
          break;
        }
      }
      if (in_baseline) continue;
      StageDiff diff;
      diff.threads = base_run.threads;
      diff.stage = cur_stage.name;
      diff.current_seconds = cur_stage.seconds;
      diff.status = StageStatus::kNew;
      result.stages.push_back(std::move(diff));
    }
  }
  return result;
}

void WriteDiff(std::ostream& os, const DiffResult& result,
               const DiffOptions& options) {
  os << "benchdiff: tolerance " << options.tolerance_pct << "% (absolute floor "
     << options.min_delta_seconds << "s)\n";
  os << "  threads  stage                    baseline_s   current_s    delta"
        "  status\n";
  for (const StageDiff& d : result.stages) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %7d  %-24s %s  %s  %s  %s\n",
                  d.threads, d.stage.c_str(),
                  FormatSeconds(d.baseline_seconds).c_str(),
                  FormatSeconds(d.current_seconds).c_str(),
                  d.status == StageStatus::kMissing ||
                          d.status == StageStatus::kNew
                      ? "      --"
                      : FormatPct(d.delta_pct).c_str(),
                  StatusWord(d.status));
    os << line;
  }
  for (const std::string& note : result.notes) {
    os << "  note: " << note << "\n";
  }
  os << (result.regressed
             ? "benchdiff: REGRESSION detected\n"
         : result.comparable
             ? "benchdiff: no regression beyond tolerance\n"
             : "benchdiff: reports not comparable; diff is advisory only\n");
}

}  // namespace ipscope::obs::benchdiff
