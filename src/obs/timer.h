// Wall-time instrumentation built on obs::Registry and obs::TraceRecorder.
//
// Three layers of convenience, cheapest first:
//   Stopwatch    — raw steady-clock interval, for manual accumulation
//                  inside hot loops (no registry traffic per lap).
//   ScopedTimer  — records elapsed seconds into one Histogram at scope
//                  exit; the instrument is resolved once at construction.
//   Span         — ScopedTimer against the global registry that also emits
//                  a Chrome trace event (when GlobalTrace() is enabled);
//                  the span name doubles as the histogram name, e.g.
//                  `obs::Span span{"cdn.observatory.build_seconds"};`.
#pragma once

#include <chrono>
#include <string>

#include "obs/registry.h"

namespace ipscope::obs {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Records wall seconds into `hist` when the scope ends (or at Stop()).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  ScopedTimer(Registry& registry, const std::string& histogram_name)
      : hist_(&registry.GetHistogram(histogram_name)) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { Stop(); }

  double ElapsedSeconds() const { return watch_.Seconds(); }

  // Records now instead of at destruction; later calls (and the destructor)
  // are no-ops. Returns the recorded elapsed seconds.
  double Stop();

 private:
  Histogram* hist_;
  Stopwatch watch_;
  bool stopped_ = false;
  double elapsed_ = 0;
};

// A named pipeline stage: histogram record in GlobalRegistry() plus a trace
// event in GlobalTrace() when tracing is on.
class Span {
 public:
  explicit Span(std::string name, std::string category = "ipscope");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Stop(); }

  double ElapsedSeconds() const { return watch_.Seconds(); }
  double Stop();

 private:
  std::string name_;
  std::string category_;
  Histogram* hist_;
  Stopwatch watch_;
  std::int64_t start_us_ = 0;
  bool stopped_ = false;
  double elapsed_ = 0;
};

}  // namespace ipscope::obs
