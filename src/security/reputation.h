// IP-reputation maintenance under address churn (paper §8, "implications
// to network security").
//
// "A host's IP address is often associated with a reputation subsequently
// used for network abuse mitigation... addresses and network blocks become
// encumbered by their prior uses... when reputation information is stale."
//
// This module provides the reputation store plus an evaluation harness that
// quantifies the paper's claim: an abuser population misbehaves through
// churning addresses, a blocklist records bad IPs under a given expiry
// policy, and every later client interaction is scored — was a blocked
// address still held by the abuser (correct), or already reassigned to an
// innocent subscriber (collateral damage)? Expiry policies range from
// "never expire" through fixed TTLs to the paper's proposal: TTLs derived
// from the block's observed assignment pattern, plus resets triggered by
// the §5.2 change detector.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "netbase/ipv4.h"

namespace ipscope::security {

// The blocklist: bad addresses with the day they were (last) flagged.
class ReputationStore {
 public:
  void MarkBad(net::IPv4Addr addr, std::int32_t day) {
    auto [it, inserted] = bad_.try_emplace(addr.value(), day);
    if (!inserted && day > it->second) it->second = day;
  }

  // Is the address considered bad on `day` under a TTL (in days)?
  bool IsBad(net::IPv4Addr addr, std::int32_t day, double ttl_days) const {
    auto it = bad_.find(addr.value());
    if (it == bad_.end()) return false;
    return static_cast<double>(day - it->second) <= ttl_days;
  }

  // Change-triggered reset: drop every entry in a /24 (network renumbered
  // or repurposed — its reputation history is meaningless).
  void ResetBlock(net::BlockKey key);

  std::size_t size() const { return bad_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::int32_t> bad_;
};

enum class TtlPolicy {
  kNever,        // reputations never expire (the strawman)
  kFixed,        // one global TTL
  kPattern,      // per-block TTL from the activity-pattern classifier
  kPatternReset, // kPattern + change-detector-triggered block resets
};

const char* TtlPolicyName(TtlPolicy policy);

// TTL (days) recommended for a block pattern: gateways share reputations
// across thousands of users (hours), 24h pools need ~a day, long leases a
// couple of weeks, static assignments a month-plus.
double PatternTtlDays(activity::BlockPattern pattern);

struct ReputationEvaluation {
  TtlPolicy policy = TtlPolicy::kNever;
  double fixed_ttl_days = 0;          // for kFixed
  std::uint64_t abuse_events = 0;     // MarkBad calls
  std::uint64_t blocked_abuser = 0;   // queries blocked, holder is abuser
  std::uint64_t blocked_innocent = 0; // queries blocked, holder is innocent
  std::uint64_t missed_abuser = 0;    // abuser active but not blocked
  std::uint64_t innocent_queries = 0; // all innocent client interactions

  // Collateral damage: innocent interactions wrongly blocked.
  double FalsePositiveRate() const {
    return innocent_queries
               ? static_cast<double>(blocked_innocent) / innocent_queries
               : 0.0;
  }
  // Abuser interactions that slipped through.
  double MissRate() const {
    std::uint64_t abuser_total = blocked_abuser + missed_abuser;
    return abuser_total
               ? static_cast<double>(missed_abuser) / abuser_total
               : 0.0;
  }
};

struct AbuseSimConfig {
  double abuser_rate = 0.01;      // fraction of subscribers that abuse
  double abuse_probability = 0.5; // per active abuser-day
  // Training window (pattern classification / change detection) vs the
  // evaluation window, as step indices of the daily observatory.
  int train_first = 0;
  int train_last = 56;
  int eval_first = 56;
  int eval_last = 112;
};

// Runs the abuse simulation under one policy. Deterministic in the world
// seed; identical abuse/activity streams across policies, so results are
// directly comparable.
ReputationEvaluation EvaluateReputationPolicy(const cdn::Observatory& daily,
                                              TtlPolicy policy,
                                              double fixed_ttl_days = 30.0,
                                              AbuseSimConfig config = {});

}  // namespace ipscope::security
