#include "security/reputation.h"

#include <algorithm>

#include "activity/change.h"
#include "rng/rng.h"

namespace ipscope::security {

namespace {

constexpr std::uint64_t kTagAbuser = 0xAB05;
constexpr std::uint64_t kTagAbuseAct = 0xAC07;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Activity matrix restricted to a step range (for training-window feature
// computation).
activity::ActivityMatrix SubMatrix(const activity::ActivityMatrix& m,
                                   int first, int last) {
  activity::ActivityMatrix out{last - first};
  for (int d = first; d < last; ++d) out.Row(d - first) = m.Row(d);
  return out;
}

}  // namespace

void ReputationStore::ResetBlock(net::BlockKey key) {
  for (auto it = bad_.begin(); it != bad_.end();) {
    if (net::BlockKeyOf(net::IPv4Addr{it->first}) == key) {
      it = bad_.erase(it);
    } else {
      ++it;
    }
  }
}

const char* TtlPolicyName(TtlPolicy policy) {
  switch (policy) {
    case TtlPolicy::kNever:
      return "never-expire";
    case TtlPolicy::kFixed:
      return "fixed-ttl";
    case TtlPolicy::kPattern:
      return "pattern-ttl";
    case TtlPolicy::kPatternReset:
      return "pattern-ttl+reset";
  }
  return "?";
}

double PatternTtlDays(activity::BlockPattern pattern) {
  switch (pattern) {
    case activity::BlockPattern::kFullyUtilized:
      return 0.2;  // gateway: thousands share the address within hours
    case activity::BlockPattern::kDynamicShortLease:
      return 1.0;
    case activity::BlockPattern::kDynamicLongLease:
      return 14.0;
    case activity::BlockPattern::kStaticSparse:
      return 45.0;
    case activity::BlockPattern::kInactive:
    case activity::BlockPattern::kMixed:
      return 7.0;  // no lease evidence: a neutral one-week listing
  }
  return 7.0;
}

ReputationEvaluation EvaluateReputationPolicy(const cdn::Observatory& daily,
                                              TtlPolicy policy,
                                              double fixed_ttl_days,
                                              AbuseSimConfig config) {
  ReputationEvaluation eval;
  eval.policy = policy;
  eval.fixed_ttl_days = fixed_ttl_days;

  const sim::World& world = daily.world();
  const sim::StepSpec& spec = daily.spec();

  // Per-block TTLs and reset days are learned from the training window.
  const bool needs_training = policy == TtlPolicy::kPattern ||
                              policy == TtlPolicy::kPatternReset;
  activity::ActivityStore store{1};
  if (needs_training) store = daily.BuildStore();

  ReputationStore blocklist;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (!sim::IsClientPolicy(plan.base.kind) &&
        plan.base.kind != sim::PolicyKind::kCrawlerBots) {
      continue;
    }
    net::BlockKey key = net::BlockKeyOf(plan.block);

    double ttl = 1e9;  // kNever
    int reset_step = -1;
    if (policy == TtlPolicy::kFixed) {
      ttl = fixed_ttl_days;
    } else if (needs_training) {
      const activity::ActivityMatrix* m = store.Find(key);
      if (m != nullptr) {
        auto features = activity::ComputeFeatures(
            SubMatrix(*m, config.train_first, config.train_last));
        ttl = PatternTtlDays(activity::ClassifyPattern(features));
        if (policy == TtlPolicy::kPatternReset) {
          // Locate the month boundary with the largest STU swing; if it is
          // major, reset the block's reputations at that boundary.
          constexpr int kMonth = 28;
          int months = m->days() / kMonth;
          double best = 0.0;
          double prev = m->Stu(0, kMonth);
          for (int mo = 1; mo < months; ++mo) {
            double cur = m->Stu(mo * kMonth, (mo + 1) * kMonth);
            if (std::abs(cur - prev) > std::abs(best)) {
              best = cur - prev;
              reset_step = mo * kMonth;
            }
            prev = cur;
          }
          if (std::abs(best) <= activity::kMajorChangeThreshold) {
            reset_step = -1;
          }
        }
      }
    }

    // Replay the block's activity; abusers act throughout, queries are
    // scored in the evaluation window.
    activity::DayBits bits;
    std::uint64_t occupants[256];
    for (int step = 0; step < config.eval_last; ++step) {
      if (step == reset_step) blocklist.ResetBlock(key);
      sim::GenerateStep(plan, spec, step, bits, nullptr, occupants);
      for (int host = 0; host < 256; ++host) {
        if (!activity::TestBit(bits, host)) continue;
        net::IPv4Addr addr{plan.block.network().value() +
                           static_cast<std::uint32_t>(host)};
        std::uint64_t occ = occupants[host];
        bool abuser =
            occ != 0 && HashUnit(rng::Substream(occ, kTagAbuser)) <
                            config.abuser_rate;

        if (step >= config.eval_first) {
          bool blocked = blocklist.IsBad(addr, step, ttl);
          if (abuser) {
            if (blocked) {
              ++eval.blocked_abuser;
            } else {
              ++eval.missed_abuser;
            }
          } else {
            ++eval.innocent_queries;
            if (blocked) ++eval.blocked_innocent;
          }
        }
        if (abuser &&
            HashUnit(rng::Substream(occ, kTagAbuseAct, step)) <
                config.abuse_probability) {
          blocklist.MarkBad(addr, step);
          ++eval.abuse_events;
        }
      }
    }
  }
  return eval;
}

}  // namespace ipscope::security
