#include "cli/commands.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "activity/change.h"
#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/metrics.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "cdn/rawlog.h"
#include "check/golden.h"
#include "check/sweep.h"
#include "cli/signals.h"
#include "fault/crash.h"
#include "geo/country.h"
#include "obs/json.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "ingest/session.h"
#include "io/store_io.h"
#include "scan/icmp.h"
#include "measurement/hitlist.h"
#include "obs/benchdiff.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "report/csv.h"
#include "report/table.h"
#include "report/textplot.h"
#include "sim/world.h"

namespace ipscope::cli {

namespace {

constexpr const char* kUsage = R"(usage: ipscope_cli <command> [args]

commands:
  generate --blocks N [--seed S] [--weekly] --out PATH
      Build a simulated world and save its daily (default) or weekly
      activity dataset.
  summary PATH
      Dataset overview: days, blocks, address totals, daily series.
  churn PATH [--window DAYS]
      Up/down event percentages between consecutive windows.
  blocks PATH [--top N] [--sort fd|stu]
      Per-/24 filling degree and spatio-temporal utilization.
  render PATH --block A.B.C.0/24
      Fig 6-style text rendering of one block's activity matrix.
  events PATH [--window DAYS]
      Size distribution of up events (isolating prefix masks).
  export PATH --outdir DIR
      Write analysis series as CSV files (daily_counts.csv,
      block_metrics.csv, churn.csv) for external plotting.
  hitlist PATH [--strategy most-active|most-recent|lowest-active|fixed]
      One representative (likely-responsive) address per active /24.
  describe [--blocks N] [--seed S]
      Inventory of the simulated world that the given parameters produce:
      AS types, assignment-policy mix, scheduled events.
  profile [--blocks N] [--seed S] [--keep PATH]
      Run a standard generate -> save -> load -> analyze pipeline and print
      a per-stage wall-time table from the metrics registry, once serially
      and once on the shared thread pool (the threads column tells the rows
      apart), plus per-worker pool utilization, queue-wait, and IO
      throughput (MB/s) tables for the pooled run. --keep saves the
      intermediate dataset to PATH instead of a deleted temp file.
  benchdiff BASELINE.json CURRENT.json [--tolerance-pct N]
      Compare two bench-JSON v2 reports (as written by bench_pipeline)
      stage by stage. Exits 1 when any stage slowed beyond the tolerance
      (default 10%) on matching hardware, or lost coverage; reports from
      different hardware/toolchains are diffed advisory-only. Exits 2 on
      malformed or non-v2 input.
  chaos [--blocks N] [--seed S] [--fault-seed S] [--schedule SPEC]
        [--window DAYS]
      Run the generate -> save -> corrupt -> salvage -> analyze pipeline
      under a deterministic fault schedule (see src/fault/schedule.h for
      the grammar; default "drop-days=2,truncate-store=0.6,
      drop-snapshots=1") and print a robustness scorecard. Exits 0 iff
      every scorecard check passes.
  chaos-crash [--blocks N] [--seed S] [--seeds N] [--dir ROOT]
      Crash-recovery gate for the sharded ingest store (src/ingest): for
      every registered crash point (see src/fault/crash.h) x seeds
      (default 3), fork a child that appends a delta with the point armed
      (schedule grammar crash-at:<point>), verify the child died exactly
      there, then prove recovery yields a store bit-identical to a clean
      build of the committed prefix and that replaying the interrupted
      delta converges on the full dataset with no double-apply. Exits 0
      iff every point x seed cell passes.
  serve PATH | serve --session DIR [--days N]
        [--port N] [--bind ADDR] [--world-blocks N] [--world-seed S]
        [--cache N]
      Long-running query daemon: loads an IPSCOPE store (or an ingest
      session's shard set) and answers JSON queries over a length-prefixed
      binary protocol (frame: "IPSQ" + u32 LE body length + JSON body; see
      the README's "Serving" section for the endpoint list). --port 0
      (default) binds an ephemeral port, printed on startup. --world-blocks
      rebuilds the simulated world so the as/country endpoints can
      attribute blocks. SIGINT/SIGTERM drain: in-flight queries finish,
      --metrics-out is flushed, exit code 0.
  serve --smoke [--blocks N] [--seed S] [--clients N] [--requests N]
      Self-contained client-swarm gate over real TCP: builds a world,
      serves its daily store, hammers it from --clients connections,
      byte-compares every response against a direct store/analysis
      oracle, reloads a modified snapshot and re-verifies (new queries
      must see the new snapshot id), then drains via SIGINT. Exits 0 iff
      every response was bit-identical and the drain exited cleanly.
  check [--goldens DIR] [--update-goldens] [--blocks N] [--threads-max N]
        [--perturb flip-bit]
      Differential correctness sweep: re-derives every figure series with
      the naive check::reference oracles and compares the optimized
      pipeline against them exactly, across seeds x thread counts x fault
      schedules, then verifies the committed golden snapshots in DIR
      (default tests/golden). --update-goldens rewrites the snapshots and
      manifest instead. --perturb flip-bit flips one activity bit on the
      optimized side of the first case to prove the harness detects it
      (the run then exits non-zero by design). Exits 0 iff no divergence
      and no golden issue.
  help
      This message.

global flags (any command):
  --threads N          Size of the shared worker pool (default:
                       $IPSCOPE_THREADS, else hardware concurrency).
                       Results are bit-identical for any value.
  --metrics-out PATH   Dump the metrics registry on exit.
  --metrics-format F   Format for --metrics-out: json (default) or
                       prometheus (text exposition format 0.0.4).
  --trace-out PATH     Record pipeline stage spans as a Chrome
                       trace-event-format file (open in about://tracing
                       or https://ui.perfetto.dev).
)";

int CmdGenerate(const CommandLine& cmd, std::ostream& out,
                std::ostream& err) {
  auto out_path = cmd.Flag("out");
  if (!out_path) {
    err << "generate: --out PATH is required\n";
    return 2;
  }
  sim::WorldConfig config;
  config.target_client_blocks = cmd.IntFlag("blocks", 4000);
  config.seed = cmd.Uint64Flag("seed", config.seed);
  sim::World world{config};
  bool weekly = cmd.Flag("weekly").has_value();
  auto store = weekly ? cdn::Observatory::Weekly(world).BuildStore()
                      : cdn::Observatory::Daily(world).BuildStore();
  io::SaveStoreFile(store, *out_path);
  out << "wrote " << (weekly ? "weekly" : "daily") << " dataset: "
      << store.BlockCount() << " blocks x " << store.days()
      << " snapshots -> " << *out_path << "\n";
  return 0;
}

int CmdSummary(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "summary: dataset path required\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  auto daily = store.DailyActiveCounts();
  std::vector<double> series(daily.begin(), daily.end());
  out << "dataset: " << store.BlockCount() << " /24 blocks, " << store.days()
      << " snapshots\n";
  if (!store.FullyCovered()) {
    out << "coverage: " << store.CoveredDaysIn(0, store.days()) << "/"
        << store.days() << " snapshots observed (" << store.MissingDays()
        << " missing; zero rows on missing days mean \"no data\", not "
        << "\"all down\")\n";
  }
  out << "unique addresses over period: "
      << report::FormatCount(store.CountActive(0, store.days())) << "\n";
  double mean = 0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  out << "mean active per snapshot:     "
      << report::FormatCount(static_cast<std::uint64_t>(mean)) << "\n";
  out << "per-snapshot actives: " << report::RenderSparkline(series) << "\n";
  return 0;
}

int CmdChurn(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "churn: dataset path required\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  int window = cmd.IntFlag("window", 1);
  activity::ChurnAnalyzer churn{store};
  auto series = churn.Churn(window);
  if (series.up_pct.empty()) {
    err << "churn: window of " << window
        << " snapshots leaves fewer than two windows\n";
    return 2;
  }
  report::Table t({"pair", "up %", "down %"});
  for (std::size_t p = 0; p < series.up_pct.size(); ++p) {
    t.AddRow({std::to_string(p) + "->" + std::to_string(p + 1),
              report::FormatDouble(series.up_pct[p]),
              report::FormatDouble(series.down_pct[p])});
  }
  t.Print(out);
  out << "up   min/median/max: " << report::FormatDouble(series.up.min)
      << " / " << report::FormatDouble(series.up.median) << " / "
      << report::FormatDouble(series.up.max) << "\n";
  out << "down min/median/max: " << report::FormatDouble(series.down.min)
      << " / " << report::FormatDouble(series.down.median) << " / "
      << report::FormatDouble(series.down.max) << "\n";
  return 0;
}

int CmdBlocks(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "blocks: dataset path required\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  auto metrics = activity::ComputeBlockMetrics(store);
  std::string sort = cmd.Flag("sort").value_or("stu");
  if (sort == "fd") {
    std::sort(metrics.begin(), metrics.end(),
              [](const auto& a, const auto& b) {
                return a.filling_degree > b.filling_degree;
              });
  } else if (sort == "stu") {
    std::sort(metrics.begin(), metrics.end(),
              [](const auto& a, const auto& b) { return a.stu > b.stu; });
  } else {
    err << "blocks: unknown sort key '" << sort << "' (use fd|stu)\n";
    return 2;
  }
  int top = cmd.IntFlag("top", 20);
  report::Table t({"block", "FD", "STU", "pattern"});
  for (int i = 0; i < top && i < static_cast<int>(metrics.size()); ++i) {
    const auto& m = metrics[static_cast<std::size_t>(i)];
    const activity::ActivityMatrix* matrix = store.Find(m.key);
    t.AddRow({net::BlockFromKey(m.key).ToString(),
              std::to_string(m.filling_degree), report::FormatDouble(m.stu),
              activity::PatternName(activity::ClassifyPattern(*matrix))});
  }
  t.Print(out);
  return 0;
}

int CmdRender(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "render: dataset path required\n";
    return 2;
  }
  auto flag = cmd.Flag("block");
  if (!flag) {
    err << "render: --block A.B.C.0/24 is required\n";
    return 2;
  }
  auto prefix = net::Prefix::Parse(*flag);
  if (!prefix || prefix->length() != 24) {
    err << "render: '" << *flag << "' is not a /24 prefix\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  const activity::ActivityMatrix* matrix =
      store.Find(net::BlockKeyOf(*prefix));
  if (matrix == nullptr) {
    err << "render: " << *flag << " has no activity in this dataset\n";
    return 1;
  }
  auto features = activity::ComputeFeatures(*matrix);
  out << *prefix << ": FD=" << features.filling_degree
      << " STU=" << report::FormatDouble(features.stu) << " pattern="
      << activity::PatternName(activity::ClassifyPattern(features)) << "\n";
  for (const auto& line : report::RenderActivityMatrix(*matrix)) {
    out << line << "\n";
  }
  return 0;
}

int CmdEvents(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "events: dataset path required\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  int window = cmd.IntFlag("window", 7);
  int num_windows = store.days() / window;
  if (num_windows < 2) {
    err << "events: window too large for this dataset\n";
    return 2;
  }
  activity::EventSizeHistogram hist;
  for (int p = 0; p + 1 < num_windows; ++p) {
    auto h = activity::EventSizes(store, p * window, (p + 1) * window,
                                  (p + 1) * window, (p + 2) * window, true);
    for (std::size_t m = 0; m < h.by_mask.size(); ++m) {
      hist.by_mask[m] += h.by_mask[m];
    }
    hist.total += h.total;
  }
  report::Table t({"mask range", "events", "fraction"});
  auto row = [&](const char* label, int lo, int hi) {
    std::uint64_t n = 0;
    for (int m = lo; m <= hi; ++m) n += hist.by_mask[static_cast<std::size_t>(m)];
    t.AddRow({label, report::FormatCount(n),
              report::FormatPercent(hist.FractionInMaskRange(lo, hi))});
  };
  row("<=/16", 0, 16);
  row("/17-/20", 17, 20);
  row("/21-/24", 21, 24);
  row("/25-/28", 25, 28);
  row("/29-/32", 29, 32);
  t.Print(out);
  out << "total up events: " << report::FormatCount(hist.total) << "\n";
  return 0;
}

int CmdExport(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "export: dataset path required\n";
    return 2;
  }
  auto outdir = cmd.Flag("outdir");
  if (!outdir) {
    err << "export: --outdir DIR is required\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);

  {
    std::ofstream os{*outdir + "/daily_counts.csv"};
    if (!os) {
      err << "export: cannot write to " << *outdir << "\n";
      return 1;
    }
    report::CsvWriter csv(os, {"snapshot", "active_addresses"});
    auto counts = store.DailyActiveCounts();
    for (std::size_t d = 0; d < counts.size(); ++d) {
      csv.AddRow({std::to_string(d), std::to_string(counts[d])});
    }
  }
  {
    std::ofstream os{*outdir + "/block_metrics.csv"};
    report::CsvWriter csv(os, {"block", "filling_degree", "stu", "pattern"});
    for (const auto& m : activity::ComputeBlockMetrics(store)) {
      const activity::ActivityMatrix* matrix = store.Find(m.key);
      csv.AddRow({net::BlockFromKey(m.key).ToString(),
                  std::to_string(m.filling_degree),
                  report::FormatDouble(m.stu, 4),
                  activity::PatternName(activity::ClassifyPattern(*matrix))});
    }
  }
  {
    std::ofstream os{*outdir + "/churn.csv"};
    report::CsvWriter csv(os, {"window", "pair", "up_pct", "down_pct"});
    activity::ChurnAnalyzer churn{store};
    for (int w : {1, 2, 4, 7, 14, 28}) {
      if (store.days() / w < 2) continue;
      auto series = churn.Churn(w);
      for (std::size_t p = 0; p < series.up_pct.size(); ++p) {
        csv.AddRow({std::to_string(w), std::to_string(p),
                    report::FormatDouble(series.up_pct[p], 3),
                    report::FormatDouble(series.down_pct[p], 3)});
      }
    }
  }
  out << "wrote daily_counts.csv, block_metrics.csv, churn.csv to "
      << *outdir << "\n";
  return 0;
}

int CmdHitlist(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional.empty()) {
    err << "hitlist: dataset path required\n";
    return 2;
  }
  std::string name = cmd.Flag("strategy").value_or("most-active");
  measurement::HitlistStrategy strategy;
  if (name == "most-active") {
    strategy = measurement::HitlistStrategy::kMostActive;
  } else if (name == "most-recent") {
    strategy = measurement::HitlistStrategy::kMostRecent;
  } else if (name == "lowest-active") {
    strategy = measurement::HitlistStrategy::kLowestActive;
  } else if (name == "fixed") {
    strategy = measurement::HitlistStrategy::kFixedOffset;
  } else {
    err << "hitlist: unknown strategy '" << name << "'\n";
    return 2;
  }
  auto store = io::LoadStoreFile(cmd.positional[0]);
  auto hitlist =
      measurement::BuildHitlist(store, 0, store.days(), strategy);
  for (const auto& entry : hitlist) {
    out << entry.address << "\n";
  }
  err << hitlist.size() << " representatives (" << name << ")\n";
  return 0;
}

int CmdDescribe(const CommandLine& cmd, std::ostream& out, std::ostream&) {
  sim::WorldConfig config;
  config.target_client_blocks = cmd.IntFlag("blocks", 4000);
  config.seed = cmd.Uint64Flag("seed", config.seed);
  sim::World world{config};

  out << "world: seed " << config.seed << ", " << world.blocks().size()
      << " /24 blocks (" << world.client_block_count() << " client), "
      << world.ases().size() << " ASes\n\n";

  std::map<std::string, int> as_types;
  for (const sim::AsPlan& as : world.ases()) {
    ++as_types[sim::AsTypeName(as.type)];
  }
  report::Table ast({"AS type", "count"});
  for (const auto& [name, count] : as_types) {
    ast.AddRow({name, std::to_string(count)});
  }
  ast.Print(out);

  std::map<std::string, int> kinds;
  int reconfigs = 0, splits = 0, activations = 0, deactivations = 0;
  for (const sim::BlockPlan& plan : world.blocks()) {
    ++kinds[sim::PolicyKindName(plan.base.kind)];
    if (plan.HasReconfiguration()) {
      ++reconfigs;
      if (plan.events[0].host_first > 0) ++splits;
    }
    if (plan.active_from > 0) ++activations;
    if (plan.active_until < 365) ++deactivations;
  }
  out << "\n";
  report::Table pt({"assignment policy", "blocks", "share"});
  for (const auto& [name, count] : kinds) {
    pt.AddRow({name, std::to_string(count),
               report::FormatPercent(static_cast<double>(count) /
                                     static_cast<double>(
                                         world.blocks().size()))});
  }
  pt.Print(out);

  out << "\nscheduled events: " << reconfigs << " reconfigurations ("
      << splits << " partial/Fig-7b), " << activations
      << " mid-year activations, " << deactivations
      << " deactivations, " << world.bgp_events().size()
      << " BGP events\n";
  return 0;
}

// Formats a seconds value for the stage table (ms below 1s).
std::string FormatStageTime(double seconds) {
  if (seconds < 1.0) return report::FormatDouble(seconds * 1e3, 3) + " ms";
  return report::FormatDouble(seconds, 3) + " s";
}

int CmdProfile(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  sim::WorldConfig config;
  config.target_client_blocks = cmd.IntFlag("blocks", 2000);
  config.seed = cmd.Uint64Flag("seed", config.seed);

  auto keep = cmd.Flag("keep");
  std::string path =
      keep && !keep->empty()
          ? *keep
          : (std::filesystem::temp_directory_path() /
             ("ipscope_profile_" + std::to_string(::getpid()) + ".bin"))
                .string();

  auto run_pipeline = [&] {
    // Every stage below is instrumented at the library layer; this scope
    // only sequences the canonical pipeline.
    obs::Span pipeline{"cli.profile.pipeline_seconds"};
    sim::World world{config};
    auto store = cdn::Observatory::Daily(world).BuildStore();
    io::SaveStoreFile(store, path);
    auto loaded = io::LoadStoreFile(path);

    activity::ChurnAnalyzer churn{loaded};
    churn.Churn(7);
    int window = 28;
    int num_windows = loaded.days() / window;
    for (int p = 0; p + 1 < num_windows; ++p) {
      activity::EventSizes(loaded, p * window, (p + 1) * window,
                           (p + 1) * window, (p + 2) * window, true);
    }
    activity::ComputeBlockMetrics(loaded);
  };

  auto& registry = obs::GlobalRegistry();
  auto snapshot = [&] {
    std::map<std::string, obs::Histogram::Snapshot> snaps;
    for (const auto& [name, snap] : registry.HistogramSnapshots()) {
      snaps[name] = snap;
    }
    return snaps;
  };
  auto gauge_snapshot = [&] {
    std::map<std::string, double> values;
    for (const auto& [name, value] : registry.GaugeValues()) {
      values[name] = value;
    }
    return values;
  };

  // The pipeline runs twice: serially, then on the pool at its configured
  // size (--threads / $IPSCOPE_THREADS / hardware). The instruments are
  // cumulative, so the parallel rows are deltas between the two snapshots
  // (quantiles don't subtract; those cells stay blank).
  int pool_threads = par::GlobalPool().threads();
  par::GlobalPool().Resize(1);
  run_pipeline();
  auto serial_snaps = snapshot();
  auto serial_gauges = gauge_snapshot();
  if (pool_threads > 1) {
    par::GlobalPool().Resize(pool_threads);
    run_pipeline();
  }
  auto final_snaps = snapshot();
  auto final_gauges = gauge_snapshot();
  par::GlobalPool().Resize(pool_threads);
  if (!keep) std::remove(path.c_str());

  report::Table stages(
      {"stage", "threads", "runs", "total", "p50", "p90", "p99"});
  for (const auto& [name, snap] : serial_snaps) {
    if (snap.count == 0) continue;
    stages.AddRow({name, "1", std::to_string(snap.count),
                   FormatStageTime(snap.sum), FormatStageTime(snap.p50),
                   FormatStageTime(snap.p90), FormatStageTime(snap.p99)});
    if (pool_threads <= 1) continue;
    const obs::Histogram::Snapshot& after = final_snaps[name];
    if (after.count <= snap.count) continue;
    stages.AddRow({name, std::to_string(pool_threads),
                   std::to_string(after.count - snap.count),
                   FormatStageTime(after.sum - snap.sum), "-", "-", "-"});
  }
  out << "profile: " << config.target_client_blocks
      << " client blocks, seed " << config.seed << "\n\n";
  stages.Print(out);

  // Per-worker pool accounting for the pooled run. The worker gauges are
  // cumulative, so the serial/final delta isolates the second pipeline;
  // slots are participant slots (dealt per region), not OS threads.
  if (pool_threads > 1) {
    report::Table pool({"pool worker", "busy", "idle", "util %"});
    for (int slot = 0; slot < pool_threads; ++slot) {
      std::string base = "par.pool.worker." + std::to_string(slot);
      double busy = final_gauges[base + ".busy_seconds"] -
                    serial_gauges[base + ".busy_seconds"];
      double idle = final_gauges[base + ".idle_seconds"] -
                    serial_gauges[base + ".idle_seconds"];
      if (busy + idle <= 0) continue;
      pool.AddRow({std::to_string(slot), FormatStageTime(busy),
                   FormatStageTime(idle),
                   report::FormatPercent(busy / (busy + idle))});
    }
    if (pool.rows() > 0) {
      out << "\n";
      pool.Print(out);
    }
    const obs::Histogram::Snapshot& wait_before =
        serial_snaps["par.pool.queue_wait_seconds"];
    const obs::Histogram::Snapshot& wait_after =
        final_snaps["par.pool.queue_wait_seconds"];
    if (wait_after.count > wait_before.count) {
      double mean_wait = (wait_after.sum - wait_before.sum) /
                         static_cast<double>(wait_after.count -
                                             wait_before.count);
      out << "pool: queue wait mean " << FormatStageTime(mean_wait)
          << " over " << (wait_after.count - wait_before.count)
          << " chunks; last-region imbalance ratio "
          << report::FormatDouble(final_gauges["par.pool.imbalance_ratio"])
          << "\n";
    }
  }

  // IO and build throughput, from the most recent (pooled when available)
  // run's rate gauges.
  {
    report::Table rates({"io stage", "throughput"});
    auto rate = [&](const char* label, const char* gauge, const char* unit,
                    double scale) {
      auto it = final_gauges.find(gauge);
      if (it == final_gauges.end() || it->second <= 0) return;
      rates.AddRow({label,
                    report::FormatDouble(it->second * scale) + " " + unit});
    };
    rate("store save", "io.store.save_mb_per_s", "MB/s", 1.0);
    rate("store load", "io.store.load_mb_per_s", "MB/s", 1.0);
    rate("observatory build", "cdn.observatory.build.bytes_per_s", "MB/s",
         1e-6);
    if (rates.rows() > 0) {
      out << "\n";
      rates.Print(out);
    }
  }

  report::Table counters({"counter", "value"});
  for (const auto& [name, value] : registry.CounterValues()) {
    counters.AddRow({name, report::FormatCount(value)});
  }
  if (counters.rows() > 0) {
    out << "\n";
    counters.Print(out);
  }
  if (keep) {
    err << "profile: kept dataset at " << path << "\n";
  }
  return 0;
}

int CmdBenchdiff(const CommandLine& cmd, std::ostream& out,
                 std::ostream& err) {
  if (cmd.positional.size() != 2) {
    err << "benchdiff: usage: benchdiff BASELINE.json CURRENT.json "
           "[--tolerance-pct N]\n";
    return 2;
  }
  obs::benchdiff::DiffOptions options;
  options.tolerance_pct =
      cmd.DoubleFlag("tolerance-pct", options.tolerance_pct);
  if (options.tolerance_pct < 0) {
    throw FlagError("--tolerance-pct must be non-negative");
  }
  obs::benchdiff::Report baseline;
  obs::benchdiff::Report current;
  try {
    baseline = obs::benchdiff::LoadReportFile(cmd.positional[0]);
    current = obs::benchdiff::LoadReportFile(cmd.positional[1]);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
  obs::benchdiff::DiffResult result =
      obs::benchdiff::Diff(baseline, current, options);
  obs::benchdiff::WriteDiff(out, result, options);
  return result.regressed ? 1 : 0;
}

// What a salvage load of the damaged byte stream must recover, derived
// from the clean store and the injector's report. Salvage is sequential,
// so the expected outcome is the longest undamaged prefix of blocks; any
// damage in the header makes the stream unrecoverable.
struct SalvagePrediction {
  bool header_ok = true;
  std::uint64_t blocks = 0;
  bool complete = true;
};

SalvagePrediction PredictSalvage(const activity::ActivityStore& clean,
                                 std::uint64_t damaged_size,
                                 const std::vector<std::uint64_t>& flips,
                                 std::uint64_t original_size) {
  SalvagePrediction p;
  // IPSCOPE2 layout: magic(8) + days(4) + blocks(8) + coverage bitmap +
  // header CRC(4); per block key(4) + count(4) + 34 bytes/non-empty day +
  // block CRC(4); footer "END2"(4) + echo(8) + stream CRC(4).
  const std::uint64_t header =
      8 + 4 + 8 + (static_cast<std::uint64_t>(clean.days()) + 7) / 8 + 4;
  auto damaged_in = [&](std::uint64_t first, std::uint64_t last) {
    if (damaged_size < last) return true;  // truncation cut into [first,last)
    for (std::uint64_t f : flips) {
      if (f >= first && f < last) return true;
    }
    return false;
  };
  if (damaged_in(0, header)) {
    p.header_ok = false;
    p.complete = false;
    return p;
  }
  std::uint64_t pos = header;
  bool stopped = false;
  clean.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    if (stopped) return;
    std::uint64_t nonzero = 0;
    for (int d = 0; d < m.days(); ++d) {
      const activity::DayBits& row = m.Row(d);
      if ((row[0] | row[1] | row[2] | row[3]) != 0) ++nonzero;
    }
    const std::uint64_t size = 4 + 4 + nonzero * 34 + 4;
    if (damaged_in(pos, pos + size)) {
      stopped = true;
      p.complete = false;
      return;
    }
    ++p.blocks;
    pos += size;
  });
  if (!stopped && damaged_in(pos, original_size)) p.complete = false;
  return p;
}

int CmdChaos(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  sim::WorldConfig config;
  config.target_client_blocks = cmd.IntFlag("blocks", 800);
  config.seed = cmd.Uint64Flag("seed", config.seed);

  fault::Schedule schedule;
  schedule.seed = cmd.Uint64Flag("fault-seed", config.seed);
  std::string spec_text = cmd.Flag("schedule").value_or(
      "drop-days=2,truncate-store=0.6,drop-snapshots=1");
  std::string parse_error;
  if (!fault::ParseSchedule(spec_text, &schedule, &parse_error)) {
    err << "chaos: " << parse_error << "\n";
    return 2;
  }
  int window = cmd.IntFlag("window", 7);

  fault::Injector injector{schedule};
  fault::Injector::Report report;

  out << "chaos: " << config.target_client_blocks
      << " client blocks, seed " << config.seed << ", fault seed "
      << schedule.seed << "\nchaos: schedule " << schedule.ToString()
      << "\n\n";

  report::Table card({"check", "status", "detail"});
  bool all_ok = true;
  auto check = [&](const char* name, bool ok, const std::string& detail) {
    card.AddRow({name, ok ? "PASS" : "FAIL", detail});
    if (!ok) all_ok = false;
  };
  auto info = [&](const char* name, const char* status,
                  const std::string& detail) {
    card.AddRow({name, status, detail});
  };

  // Stage 1: the clean pipeline — the ground truth every faulted result
  // is compared against.
  sim::World world{config};
  auto clean = cdn::Observatory::Daily(world).BuildStore();

  // Stage 2: serialize, damage the bytes, salvage-load.
  std::stringstream buffer;
  io::SaveStore(clean, buffer);
  const std::string original = buffer.str();
  std::string bytes = original;
  injector.ApplyToBytes(bytes, &report);
  auto predicted = PredictSalvage(clean, bytes.size(), report.flipped_offsets,
                                  original.size());
  std::istringstream damaged{bytes};
  auto load = io::TryLoadStore(damaged, io::LoadOptions{.salvage = true});

  bool store_usable = load.ok();
  if (!store_usable) {
    // Damage reached the header: nothing is recoverable, but the failure
    // must be a typed error, not a crash — that is itself the contract.
    check("store salvage", !predicted.header_ok,
          "unrecoverable: " + load.error().ToString());
    info("salvaged blocks intact", "SKIP", "no store recovered");
    info("missing days accounted", "SKIP", "no store recovered");
    info("churn matches clean data", "SKIP", "no store recovered");
    info("change detection matches", "SKIP", "no store recovered");
    info("active-address drift", "SKIP", "no store recovered");
  }

  activity::ActivityStore faulted{clean.days()};
  std::vector<int> dropped;
  if (store_usable) {
    const io::LoadStats& stats = load.value().stats;
    faulted = std::move(load.value().store);

    {
      std::string detail =
          std::to_string(stats.blocks_loaded) + "/" +
          std::to_string(stats.blocks_expected) + " blocks" +
          (stats.complete ? " (complete)" : " (salvaged)");
      check("store salvage",
            stats.blocks_loaded == predicted.blocks &&
                stats.complete == predicted.complete,
            detail + ", expected " + std::to_string(predicted.blocks));
    }

    // Salvaged blocks must be bit-identical to the clean store's —
    // checked before day drops mutate the rows.
    bool intact = true;
    faulted.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
      const activity::ActivityMatrix* cm = clean.Find(key);
      if (cm == nullptr) {
        intact = false;
        return;
      }
      for (int d = 0; d < clean.days(); ++d) {
        if (m.Row(d) != cm->Row(d)) intact = false;
      }
    });
    check("salvaged blocks intact", intact,
          std::to_string(faulted.BlockCount()) + " blocks bit-compared");

    // Stage 3: collector outages — dropped days become coverage gaps.
    dropped = injector.ApplyToStore(faulted, &report);
    double gauge =
        obs::GlobalRegistry().GetGauge("activity.days_missing").value();
    check("missing days accounted",
          faulted.MissingDays() == static_cast<int>(dropped.size()) &&
              gauge == static_cast<double>(faulted.MissingDays()),
          std::to_string(faulted.MissingDays()) + " uncovered of " +
              std::to_string(faulted.days()) + " days");

    // Stage 4: analyses on the faulted store must match the clean data
    // restricted to the same blocks and coverage — exactly, not loosely.
    activity::ActivityStore reference{clean.days()};
    faulted.ForEach([&](net::BlockKey key, const activity::ActivityMatrix&) {
      const activity::ActivityMatrix* cm = clean.Find(key);
      activity::ActivityMatrix& dst = reference.GetOrCreate(key);
      for (int d = 0; d < clean.days(); ++d) dst.Row(d) = cm->Row(d);
    });
    for (int d : dropped) reference.SetDayCovered(d, false);

    if (faulted.BlockCount() == 0) {
      info("churn matches clean data", "SKIP", "no blocks salvaged");
      info("change detection matches", "SKIP", "no blocks salvaged");
    } else {
      auto fs = activity::ChurnAnalyzer{faulted}.Churn(window);
      auto rs = activity::ChurnAnalyzer{reference}.Churn(window);
      int num_windows = faulted.days() / window;
      check("churn matches clean data",
            fs.pairs == rs.pairs && fs.up_pct == rs.up_pct &&
                fs.down_pct == rs.down_pct,
            std::to_string(fs.pairs.size()) + "/" +
                std::to_string(num_windows > 1 ? num_windows - 1 : 0) +
                " window pairs valid, all exact");

      auto fc = activity::MaxMonthlyStuChange(faulted);
      auto rc = activity::MaxMonthlyStuChange(reference);
      bool change_ok = fc.size() == rc.size();
      if (change_ok) {
        for (std::size_t i = 0; i < fc.size(); ++i) {
          if (fc[i].key != rc[i].key || fc[i].max_delta != rc[i].max_delta) {
            change_ok = false;
          }
        }
      }
      check("change detection matches", change_ok,
            std::to_string(fc.size()) + " per-block STU deltas, all exact");
    }

    // Drift vs the truly clean run is bounded by what the faults removed:
    // the faulted totals must equal the reference totals exactly.
    std::uint64_t clean_total = clean.CountActive(0, clean.days());
    std::uint64_t faulted_total = faulted.CountActive(0, faulted.days());
    std::uint64_t reference_total = reference.CountActive(0, reference.days());
    double drift =
        clean_total == 0
            ? 0.0
            : 100.0 * (static_cast<double>(clean_total) -
                       static_cast<double>(faulted_total)) /
                  static_cast<double>(clean_total);
    check("active-address drift", faulted_total == reference_total,
          report::FormatDouble(drift) +
              "% below clean run, all attributable to injected faults");
  }

  // Stage 5: the scan campaign loses snapshots but the month union still
  // computes from the survivors.
  {
    constexpr int kNumScans = 8;
    constexpr std::int32_t kMonthStart = 273;  // October, like the paper
    constexpr int kMonthDays = 28;
    auto killed = injector.PickSnapshotsToDrop(kNumScans, &report);
    scan::IcmpScanner scanner{world};
    net::Ipv4Set month;
    int used = 0;
    for (int s = 0; s < kNumScans; ++s) {
      if (std::find(killed.begin(), killed.end(), s) != killed.end()) continue;
      month = month.Union(
          scanner.Scan(kMonthStart + s * kMonthDays / kNumScans));
      ++used;
    }
    check("scan campaign degraded",
          used == kNumScans - static_cast<int>(killed.size()) &&
              !month.Empty(),
          std::to_string(used) + "/" + std::to_string(kNumScans) +
              " snapshots, " + report::FormatCount(month.Count()) +
              " responsive addresses");
  }

  // Stage 6: duplicated raw log rows must not change the active set —
  // aggregation is idempotent w.r.t. activity (bitmaps OR, counts add).
  if (schedule.Has(fault::FaultKind::kDupRows)) {
    auto observatory = cdn::Observatory::Daily(world);
    const sim::BlockPlan* plan = nullptr;
    if (clean.BlockCount() > 0) {
      net::BlockKey first_key = clean.keys()[0];
      for (const sim::BlockPlan& p : world.blocks()) {
        if (net::BlockKeyOf(p.block) == first_key) {
          plan = &p;
          break;
        }
      }
    }
    if (plan == nullptr) {
      info("log aggregation idempotent", "SKIP", "no CDN-active block");
    } else {
      cdn::RawLogGenerator gen{world, observatory.spec()};
      std::vector<cdn::LogRecord> rows;
      gen.ForBlockStep(*plan, 0,
                       [&](const cdn::LogRecord& r) { rows.push_back(r); },
                       /*per_address_cap=*/4);
      cdn::LogAggregator base;
      for (const auto& r : rows) base.Consume(r);
      std::uint64_t duplicated = injector.DuplicateRows(rows, &report);
      cdn::LogAggregator dup;
      for (const auto& r : rows) dup.Consume(r);
      bool same_actives = base.hits_per_ip().size() == dup.hits_per_ip().size();
      if (same_actives) {
        for (const auto& [ip, hits] : base.hits_per_ip()) {
          if (dup.hits_per_ip().count(ip) == 0) same_actives = false;
        }
      }
      check("log aggregation idempotent", same_actives,
            std::to_string(duplicated) + " duplicate rows, active set " +
                (same_actives ? "unchanged" : "CHANGED"));
    }
  }

  card.Print(out);

  auto& registry = obs::GlobalRegistry();
  report::Table metrics({"data-quality metric", "value"});
  for (const char* name :
       {"fault.injected_total", "io.store.blocks_salvaged",
        "io.store.salvaged_loads", "io.store.load_errors"}) {
    metrics.AddRow({name,
                    report::FormatCount(registry.GetCounter(name).value())});
  }
  metrics.AddRow(
      {"activity.days_missing",
       report::FormatCount(static_cast<std::uint64_t>(
           registry.GetGauge("activity.days_missing").value()))});
  out << "\n";
  metrics.Print(out);

  out << "\nchaos: " << (all_ok ? "PASS" : "FAIL") << " ("
      << report.faults_injected << " faults injected)\n";
  return all_ok ? 0 : 1;
}

// The day-slice delta of `full` covering [first, last] (inclusive): every
// block of the full store is present — even ones with no activity in the
// range — so composing the resulting shards serializes byte-identically
// to the batch-built store, which is what the gate memcmp's against.
activity::ActivityStore SliceDays(const activity::ActivityStore& full,
                                  int first, int last) {
  activity::ActivityStore delta{full.days()};
  for (int d = 0; d < full.days(); ++d) {
    if (d < first || d > last || !full.DayCovered(d)) {
      delta.SetDayCovered(d, false);
    }
  }
  full.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    activity::ActivityMatrix& dst = delta.GetOrCreate(key);
    for (int d = first; d <= last; ++d) {
      if (delta.DayCovered(d)) dst.Row(d) = m.Row(d);
    }
  });
  return delta;
}

std::string StoreBytes(const activity::ActivityStore& store) {
  std::ostringstream os{std::ios::binary};
  io::SaveStore(store, os);
  return std::move(os).str();
}

int CmdChaosCrash(const CommandLine& cmd, std::ostream& out,
                  std::ostream& err) {
  int blocks = cmd.IntFlag("blocks", 120);
  std::uint64_t base_seed = cmd.Uint64Flag("seed", 11);
  int num_seeds = cmd.IntFlag("seeds", 3);
  if (num_seeds < 1) {
    err << "chaos-crash: --seeds must be >= 1\n";
    return 2;
  }
  std::filesystem::path root =
      cmd.Flag("dir").value_or((std::filesystem::temp_directory_path() /
                                ("ipscope_chaos_crash_" +
                                 std::to_string(::getpid())))
                                   .string());

  const std::vector<std::string>& points = fault::CrashPoints();
  out << "chaos-crash: " << points.size() << " crash points x " << num_seeds
      << " seeds, " << blocks << " client blocks, base seed " << base_seed
      << "\nchaos-crash: store root " << root.string() << "\n\n";

  // Build every world up front: the observatory uses the shared pool, and
  // forking a multithreaded process is only safe once the pool is down to
  // its inline (single-thread) strategy.
  struct SeedCase {
    std::uint64_t seed;
    activity::ActivityStore delta0{1};  // committed cleanly by the parent
    activity::ActivityStore delta1{1};  // appended by the crashing child
    std::string full_bytes;             // batch build of all days
    std::string prefix_bytes;           // batch build of delta0's days
    int days = 0;
  };
  std::vector<SeedCase> cases;
  for (int s = 0; s < num_seeds; ++s) {
    SeedCase c;
    c.seed = base_seed + 12 * static_cast<std::uint64_t>(s);
    sim::WorldConfig config;
    config.target_client_blocks = blocks;
    config.seed = c.seed;
    sim::World world{config};
    auto full = cdn::Observatory::Daily(world).BuildStore();
    c.days = full.days();
    int split = c.days / 2;
    c.delta0 = SliceDays(full, 0, split - 1);
    c.delta1 = SliceDays(full, split, c.days - 1);
    c.full_bytes = StoreBytes(full);
    c.prefix_bytes = StoreBytes(c.delta0);
    cases.push_back(std::move(c));
  }
  int pool_threads = par::GlobalPool().threads();
  par::GlobalPool().Resize(1);  // fork safety: no worker threads alive

  report::Table card({"crash point", "status", "detail"});
  bool all_ok = true;
  for (const std::string& point : points) {
    if (DrainRequested()) {
      out << "chaos-crash: drain requested, stopping before point " << point
          << "\n";
      break;
    }
    int passed = 0;
    std::string failure;
    for (const SeedCase& c : cases) {
      std::filesystem::path dir =
          root / (point + "-s" + std::to_string(c.seed));
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);

      auto fail = [&](const std::string& what) {
        if (failure.empty()) {
          failure = "seed " + std::to_string(c.seed) + ": " + what;
        }
      };

      // The parent commits delta0 cleanly: the committed prefix every
      // pre-commit crash must roll back to.
      auto opened = ingest::Session::Open(dir.string(), c.days);
      if (!opened.ok()) {
        fail("open: " + opened.error().ToString());
        continue;
      }
      ingest::Session session = std::move(opened).value();
      auto first = session.Append(c.delta0, "delta0");
      if (!first.ok() || !first.value().applied) {
        fail("delta0 commit failed");
        continue;
      }

      pid_t pid = ::fork();
      if (pid < 0) {
        fail("fork failed");
        continue;
      }
      if (pid == 0) {
        // Child: arm the point through the schedule grammar (so the gate
        // also exercises crash-at parsing), then run one Append. Reaching
        // _exit(0) means the armed point never fired — a gate failure the
        // parent detects via the exit code.
        fault::Schedule schedule;
        schedule.seed = c.seed;
        std::string parse_error;
        if (!fault::ParseSchedule("crash-at:" + point, &schedule,
                                  &parse_error)) {
          ::_exit(90);
        }
        fault::ArmFromSchedule(schedule);
        auto child_session = ingest::Session::Open(dir.string(), c.days);
        if (!child_session.ok()) ::_exit(91);
        auto append = child_session.value().Append(c.delta1, "delta1");
        ::_exit(append.ok() ? 0 : 92);
      }
      int status = 0;
      if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) {
        fail("child did not exit normally");
        continue;
      }
      if (WEXITSTATUS(status) != fault::kCrashExitCode) {
        fail("child exited " + std::to_string(WEXITSTATUS(status)) +
             ", expected crash code " +
             std::to_string(fault::kCrashExitCode));
        continue;
      }

      // Recovery must land on exactly the committed prefix — which the
      // parent knows a priori: only post-commit crashes after the
      // manifest rename, so only it may keep delta1.
      bool expect_delta1 = point == "post-commit";
      auto recovered = ingest::Session::Open(dir.string(), c.days);
      if (!recovered.ok()) {
        fail("recovery: " + recovered.error().ToString());
        continue;
      }
      ingest::Session after = std::move(recovered).value();
      if (after.manifest().HasDelta("delta1") != expect_delta1) {
        fail(std::string("recovered manifest ") +
             (expect_delta1 ? "lost the committed delta"
                            : "kept the uncommitted delta"));
        continue;
      }
      auto loaded = after.Load();
      if (!loaded.ok()) {
        fail("recovered load: " + loaded.error().ToString());
        continue;
      }
      if (StoreBytes(loaded.value()) !=
          (expect_delta1 ? c.full_bytes : c.prefix_bytes)) {
        fail("recovered store diverges from committed prefix");
        continue;
      }

      // Crash-and-retry convergence: replaying both deltas must be a
      // no-op for committed ones and converge on the batch dataset.
      auto replay0 = after.Append(c.delta0, "delta0");
      if (!replay0.ok() || replay0.value().applied) {
        fail("delta0 replay was not a no-op");
        continue;
      }
      auto replay1 = after.Append(c.delta1, "delta1");
      if (!replay1.ok() || replay1.value().applied == expect_delta1) {
        fail("delta1 replay applied=" +
             std::string(replay1.ok() && replay1.value().applied ? "true"
                                                                 : "false"));
        continue;
      }
      auto again = after.Append(c.delta1, "delta1");
      if (!again.ok() || again.value().applied) {
        fail("second delta1 replay was not a no-op");
        continue;
      }
      auto final_load = after.Load();
      if (!final_load.ok() ||
          StoreBytes(final_load.value()) != c.full_bytes) {
        fail("replayed store is not bit-identical to the batch build");
        continue;
      }
      ++passed;
    }
    bool ok = passed == static_cast<int>(cases.size());
    if (!ok) all_ok = false;
    card.AddRow({point, ok ? "PASS" : "FAIL",
                 std::to_string(passed) + "/" +
                     std::to_string(cases.size()) + " seeds recovered" +
                     (ok ? " bit-exact" : ": " + failure)});
  }
  par::GlobalPool().Resize(pool_threads);

  card.Print(out);
  auto& registry = obs::GlobalRegistry();
  report::Table metrics({"ingest metric", "value"});
  for (const char* name :
       {"ingest.recoveries", "ingest.quarantined_files", "ingest.appends",
        "ingest.append_duplicates", "io.manifest.commits",
        "io.manifest.errors"}) {
    metrics.AddRow({name,
                    report::FormatCount(registry.GetCounter(name).value())});
  }
  out << "\n";
  metrics.Print(out);

  if (all_ok && !cmd.Flag("dir")) {
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  } else if (!all_ok) {
    out << "\nchaos-crash: store directories kept for inspection under "
        << root.string() << "\n";
  }
  out << "\nchaos-crash: " << (all_ok ? "PASS" : "FAIL") << " ("
      << points.size() * cases.size() << " crash cells)\n";
  return all_ok ? 0 : 1;
}

int CmdCheck(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  std::string goldens_dir = cmd.Flag("goldens").value_or("tests/golden");
  check::GoldenConfig gconfig;

  if (cmd.Flag("update-goldens")) {
    check::WriteGoldens(goldens_dir, gconfig);
    out << "check: wrote golden snapshots (seed " << gconfig.seed << ", "
        << gconfig.blocks << " client blocks) to " << goldens_dir << "\n";
    return 0;
  }

  std::string perturb = cmd.Flag("perturb").value_or("");
  if (!perturb.empty() && perturb != "flip-bit") {
    err << "check: unknown --perturb mode '" << perturb
        << "' (supported: flip-bit)\n";
    return 2;
  }

  const std::uint64_t seeds[] = {11, 23, 47};
  std::vector<check::CaseSpec> specs = check::DefaultSweep(
      seeds, cmd.IntFlag("blocks", 300), cmd.IntFlag("threads-max", 4));
  if (perturb == "flip-bit") specs.front().perturb = true;

  report::Table card({"case", "status", "diffs"});
  std::uint64_t total_mismatches = 0;
  std::vector<check::Divergence> divergences;
  for (const check::CaseSpec& spec : specs) {
    check::Diff diff = check::RunCase(spec);
    total_mismatches += diff.mismatches();
    for (const check::Divergence& d : diff.divergences()) {
      divergences.push_back(d);
    }
    card.AddRow({spec.Name(), diff.ok() ? "PASS" : "FAIL",
                 std::to_string(diff.mismatches())});
  }
  card.Print(out);

  if (!divergences.empty()) {
    out << "\nfirst divergences (optimized vs reference):\n";
    for (const check::Divergence& d : divergences) {
      out << "  " << d.series << " [" << d.coordinate
          << "]: reference=" << d.expected << " optimized=" << d.actual
          << "  (" << d.case_name << ")\n";
    }
  }

  std::vector<check::GoldenIssue> issues =
      check::VerifyGoldens(goldens_dir, gconfig);
  out << "\ngolden snapshots (" << goldens_dir << "): "
      << (issues.empty() ? "clean" : "ISSUES") << "\n";
  for (const check::GoldenIssue& issue : issues) {
    out << "  " << check::GoldenIssueKindName(issue.kind) << ": "
        << issue.file << " — " << issue.detail << "\n";
  }

  auto& registry = obs::GlobalRegistry();
  out << "\ncheck: " << registry.GetCounter("check.cases_run").value()
      << " cases, " << registry.GetCounter("check.diffs_total").value()
      << " diffs, "
      << registry.GetCounter("check.golden_files_checked").value()
      << " golden files checked\n";

  bool ok = total_mismatches == 0 && issues.empty();
  out << "check: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

std::optional<std::string> CommandLine::Flag(const std::string& name) const {
  auto it = flags.find(name);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

namespace {

// Whole-string checked parse; from_chars accepts no leading whitespace,
// no trailing junk, and no "0x" prefixes — exactly what flag values need.
template <typename T>
T ParseNumberOrThrow(const std::string& flag_name, const std::string& text) {
  T value{};
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw FlagError("--" + flag_name + ": expected a number, got '" + text +
                    "'");
  }
  return value;
}

}  // namespace

int CommandLine::IntFlag(const std::string& name, int fallback) const {
  auto value = Flag(name);
  if (!value) return fallback;
  return ParseNumberOrThrow<int>(name, *value);
}

std::uint64_t CommandLine::Uint64Flag(const std::string& name,
                                      std::uint64_t fallback) const {
  auto value = Flag(name);
  if (!value) return fallback;
  return ParseNumberOrThrow<std::uint64_t>(name, *value);
}

double CommandLine::DoubleFlag(const std::string& name,
                               double fallback) const {
  auto value = Flag(name);
  if (!value) return fallback;
  return ParseNumberOrThrow<double>(name, *value);
}

std::optional<CommandLine> Parse(const std::vector<std::string>& args,
                                 std::ostream& err) {
  CommandLine cmd;
  if (args.empty()) {
    err << kUsage;
    return std::nullopt;
  }
  cmd.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        cmd.flags[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        cmd.flags[body] = args[++i];
      } else {
        cmd.flags[body] = "";
      }
    } else {
      cmd.positional.push_back(arg);
    }
  }
  return cmd;
}

namespace {

// --- serve ----------------------------------------------------------------

// Blocking client-side frame exchange used by the smoke swarm: write one
// request frame, read one response frame. Empty return = transport error.
std::string ServeExchange(int fd, const std::string& body) {
  std::string frame = serve::EncodeFrame(body);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  auto read_exactly = [fd](char* buf, std::size_t want) {
    std::size_t got = 0;
    while (got < want) {
      ssize_t n = ::read(fd, buf + got, want - got);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  };
  char header[serve::kFrameHeaderBytes];
  if (!read_exactly(header, sizeof(header))) return {};
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[4 + static_cast<size_t>(i)]))
           << (8 * i);
  }
  std::string response(len, '\0');
  if (len > 0 && !read_exactly(response.data(), len)) return {};
  return response;
}

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);  // lint: close(best-effort teardown of a failed connect)
    return -1;
  }
  return fd;
}

// A deterministic request mix touching every endpoint (including the
// typed-error paths) for the store/attribution at hand.
std::vector<std::string> SmokeRequests(
    const activity::ActivityStore& store,
    const std::vector<serve::BlockAttribution>& attribution) {
  std::vector<std::string> bodies;
  bodies.push_back(R"({"endpoint": "summary"})");
  bodies.push_back(R"({"endpoint": "churn", "window": 7})");
  bodies.push_back(R"({"endpoint": "churn", "window": 28})");
  bodies.push_back(R"({"endpoint": "patterns"})");
  auto keys = store.keys();
  for (std::size_t i = 0; i < 5 && !keys.empty(); ++i) {
    net::BlockKey key = keys[i * (keys.size() - 1) / 4];
    std::string block = net::BlockFromKey(key).ToString();
    bodies.push_back(R"({"endpoint": "point", "block": ")" + block + "\"}");
    bodies.push_back(R"({"endpoint": "point", "block": ")" + block +
                     R"(", "host": 17})");
  }
  if (!keys.empty()) {
    // An absent block: first key gap above the smallest key.
    net::BlockKey absent = keys.front() + 1;
    while (store.Find(absent) != nullptr) ++absent;
    bodies.push_back(R"({"endpoint": "point", "block": ")" +
                     net::BlockFromKey(absent).ToString() + "\"}");
    net::Prefix p16{net::IPv4Addr{(keys.front() << 8) & 0xFFFF0000u}, 16};
    bodies.push_back(R"({"endpoint": "prefix", "prefix": ")" +
                     p16.ToString() + "\"}");
    bodies.push_back(R"({"endpoint": "prefix", "prefix": ")" +
                     p16.ToString() + R"(", "day_first": 0, "day_last": 7})");
    bodies.push_back(R"({"endpoint": "patterns", "prefix": ")" +
                     p16.ToString() + "\"}");
  }
  if (!attribution.empty()) {
    const serve::BlockAttribution& entry = attribution.front();
    bodies.push_back(R"({"endpoint": "as", "asn": )" +
                     std::to_string(entry.asn) + "}");
    if (entry.country >= 0) {
      bodies.push_back(
          R"({"endpoint": "country", "code": ")" +
          std::string(
              geo::Countries()[static_cast<std::size_t>(entry.country)]
                  .code) +
          "\"}");
    }
  }
  // Typed-error paths must be deterministic over the wire too.
  bodies.push_back(R"({"endpoint": "no-such-endpoint"})");
  bodies.push_back(R"({"endpoint": "point"})");  // missing required field
  return bodies;
}

// Runs the swarm once and byte-compares every response against the oracle
// (DirectAnswer on `oracle` at `want_snapshot`). Returns the number of
// divergent responses; writes the first few to `err`.
int SmokeVerifyPhase(int port, int clients,
                     const std::vector<std::string>& bodies, int repeat,
                     const activity::ActivityStore& oracle,
                     std::uint64_t want_snapshot,
                     const std::vector<serve::BlockAttribution>& attribution,
                     std::ostream& err) {
  std::vector<std::string> expected;
  expected.reserve(bodies.size());
  for (const std::string& body : bodies) {
    expected.push_back(serve::Server::DirectAnswer(oracle, want_snapshot,
                                                   attribution, body));
  }
  std::atomic<int> divergent{0};
  std::mutex err_mu;
  std::vector<std::thread> swarm;
  for (int c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      int fd = ConnectLoopback(port);
      if (fd < 0) {
        ++divergent;
        std::lock_guard<std::mutex> lock{err_mu};
        err << "serve-smoke: client " << c << " failed to connect\n";
        return;
      }
      for (int r = 0; r < repeat; ++r) {
        for (std::size_t i = 0; i < bodies.size(); ++i) {
          std::string got = ServeExchange(fd, bodies[i]);
          if (got == expected[i]) continue;
          int seen = ++divergent;
          if (seen <= 3) {
            std::lock_guard<std::mutex> lock{err_mu};
            err << "serve-smoke: response diverges from oracle for "
                << bodies[i] << "\n  want: " << expected[i]
                << "\n  got:  " << (got.empty() ? "<transport error>" : got)
                << "\n";
          }
        }
      }
      if (::close(fd) != 0) {
        std::lock_guard<std::mutex> lock{err_mu};
        err << "serve-smoke: client close failed\n";
      }
    });
  }
  for (std::thread& t : swarm) t.join();
  return divergent.load();
}

int CmdServeSmoke(const CommandLine& cmd, std::ostream& out,
                  std::ostream& err) {
  sim::WorldConfig config;
  config.target_client_blocks = cmd.IntFlag("blocks", 400);
  config.seed = cmd.Uint64Flag("seed", config.seed);
  int clients = cmd.IntFlag("clients", 4);
  int repeat = std::max(1, cmd.IntFlag("requests", 120) /
                               std::max(1, clients) / 20);
  sim::World world{config};
  auto attribution = serve::Server::AttributionFromWorld(world);
  auto store = cdn::Observatory::Daily(world).BuildStore();

  // Oracle copies: the smoke diffs wire responses against direct calls on
  // these, per claimed snapshot id. Snapshot 2 is snapshot 1 with day 0
  // marked uncovered — summary/churn/point answers all shift, so a stale
  // (pre-reload) cache entry cannot masquerade as a fresh answer.
  activity::ActivityStore oracle_v1 = store;
  activity::ActivityStore reloaded = store;
  reloaded.SetDayCovered(0, false);
  activity::ActivityStore oracle_v2 = reloaded;

  serve::Server server{std::move(store)};
  server.SetAttribution(attribution);

  InstallSignalHandlers();
  ResetDrainForTests();
  std::mutex mu;
  std::condition_variable cv;
  int port = 0;
  serve::TcpOptions tcp;
  tcp.max_connections = clients + 8;
  std::uint64_t served_connections = 0;
  std::string tcp_error;
  std::thread daemon{[&] {
    auto result = serve::RunTcpServer(
        server, tcp, [] { return DrainRequested(); },
        [&](int bound) {
          std::lock_guard<std::mutex> lock{mu};
          port = bound;
          cv.notify_all();
        });
    std::lock_guard<std::mutex> lock{mu};
    if (result.ok()) {
      served_connections = result.value();
    } else {
      tcp_error = result.error().message;
      port = -1;
    }
    cv.notify_all();
  }};
  {
    std::unique_lock<std::mutex> lock{mu};
    cv.wait(lock, [&] { return port != 0; });
    if (port < 0) {
      err << "serve-smoke: " << tcp_error << "\n";
      lock.unlock();
      RequestDrain();
      daemon.join();
      return 1;
    }
  }
  out << "serve-smoke: listening on 127.0.0.1:" << port << ", " << clients
      << " clients\n";

  auto bodies = SmokeRequests(oracle_v1, attribution);
  int bad = SmokeVerifyPhase(port, clients, bodies, repeat, oracle_v1,
                             /*want_snapshot=*/1, attribution, err);
  out << "serve-smoke: phase 1 (snapshot 1): " << bodies.size() << " queries x "
      << clients << " clients x " << repeat << " rounds, " << bad
      << " divergent\n";

  std::uint64_t new_id = server.Reload(std::move(reloaded));
  int bad2 = SmokeVerifyPhase(port, clients, bodies, repeat, oracle_v2,
                              new_id, attribution, err);
  out << "serve-smoke: phase 2 (snapshot " << new_id
      << " after reload): " << bad2 << " divergent\n";

  // Drain through the real signal path: the installed handler sets the
  // flag, the accept loop and the connection threads wind down, in-flight
  // requests included.
  if (::kill(::getpid(), SIGINT) != 0) RequestDrain();
  daemon.join();
  ResetDrainForTests();
  out << "serve-smoke: drained cleanly after " << served_connections
      << " connections\n";

  if (bad + bad2 > 0) {
    err << "serve-smoke: " << bad + bad2
        << " responses diverged from the direct-store oracle\n";
    return 1;
  }
  out << "serve-smoke: every response bit-identical to the oracle, before "
         "and after reload\n";
  return 0;
}

int CmdServe(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.Flag("smoke")) return CmdServeSmoke(cmd, out, err);

  serve::ServerOptions options;
  options.cache_capacity = static_cast<std::size_t>(
      cmd.IntFlag("cache", static_cast<int>(options.cache_capacity)));
  activity::ActivityStore store{1};
  if (auto session_dir = cmd.Flag("session")) {
    auto session =
        ingest::Session::Open(*session_dir, cmd.IntFlag("days", 0));
    if (!session.ok()) {
      err << "serve: " << session.error().ToString() << "\n";
      return 1;
    }
    auto loaded = session.value().Load();
    if (!loaded.ok()) {
      err << "serve: " << loaded.error().ToString() << "\n";
      return 1;
    }
    store = std::move(loaded).value();
  } else if (!cmd.positional.empty()) {
    store = io::LoadStoreFile(cmd.positional[0]);
  } else {
    err << "serve: dataset path or --session DIR required\n";
    return 2;
  }

  serve::Server server{std::move(store), options};
  int world_blocks = cmd.IntFlag("world-blocks", 0);
  if (world_blocks > 0) {
    sim::WorldConfig config;
    config.target_client_blocks = world_blocks;
    config.seed = cmd.Uint64Flag("world-seed", config.seed);
    server.SetAttribution(
        serve::Server::AttributionFromWorld(sim::World{config}));
  }

  serve::TcpOptions tcp;
  tcp.bind_address = cmd.Flag("bind").value_or(tcp.bind_address);
  tcp.port = cmd.IntFlag("port", 0);
  auto result = serve::RunTcpServer(
      server, tcp, [] { return DrainRequested(); },
      [&](int port) {
        out << "serve: listening on " << tcp.bind_address << ":" << port
            << " (snapshot " << server.snapshot_id() << ", "
            << (world_blocks > 0 ? "with" : "no") << " attribution)\n"
            << "serve: SIGINT/SIGTERM drains and exits 0\n";
        out.flush();
      });
  if (!result.ok()) {
    err << "serve: " << result.error().message << "\n";
    return 1;
  }
  out << "serve: drained after " << result.value() << " connections\n";
  return 0;
}

int Dispatch(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.command == "generate") return CmdGenerate(cmd, out, err);
  if (cmd.command == "summary") return CmdSummary(cmd, out, err);
  if (cmd.command == "churn") return CmdChurn(cmd, out, err);
  if (cmd.command == "blocks") return CmdBlocks(cmd, out, err);
  if (cmd.command == "render") return CmdRender(cmd, out, err);
  if (cmd.command == "events") return CmdEvents(cmd, out, err);
  if (cmd.command == "export") return CmdExport(cmd, out, err);
  if (cmd.command == "hitlist") return CmdHitlist(cmd, out, err);
  if (cmd.command == "describe") return CmdDescribe(cmd, out, err);
  if (cmd.command == "profile") return CmdProfile(cmd, out, err);
  if (cmd.command == "benchdiff") return CmdBenchdiff(cmd, out, err);
  if (cmd.command == "chaos") return CmdChaos(cmd, out, err);
  if (cmd.command == "chaos-crash") return CmdChaosCrash(cmd, out, err);
  if (cmd.command == "check") return CmdCheck(cmd, out, err);
  if (cmd.command == "serve") return CmdServe(cmd, out, err);
  if (cmd.command == "help" || cmd.command == "--help") {
    out << kUsage;
    return 0;
  }
  err << "unknown command '" << cmd.command << "'\n" << kUsage;
  return 2;
}

}  // namespace

int Run(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  auto metrics_out = cmd.Flag("metrics-out");
  auto trace_out = cmd.Flag("trace-out");
  std::string metrics_format = cmd.Flag("metrics-format").value_or("json");
  if (trace_out && !trace_out->empty()) obs::GlobalTrace().Enable();

  int rc;
  try {
    // Validate global flags inside the try block: a malformed --threads or
    // --metrics-format value reports like any other flag error — and
    // before the command runs, not after it did the work.
    if (metrics_format != "json" && metrics_format != "prometheus") {
      throw FlagError("--metrics-format must be json or prometheus, got '" +
                      metrics_format + "'");
    }
    int threads = cmd.IntFlag("threads", 0);
    if (threads < 0) throw FlagError("--threads must be positive");
    if (threads > 0) par::GlobalPool().Resize(threads);
    rc = Dispatch(cmd, out, err);
  } catch (const FlagError& e) {
    err << "error: " << e.what() << "\n";
    rc = 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    rc = 1;
  }

  // Dump even when the command failed: partial metrics still tell the
  // operator how far the pipeline got.
  try {
    if (metrics_out && !metrics_out->empty()) {
      if (metrics_format == "prometheus") {
        obs::GlobalRegistry().WritePrometheusFile(*metrics_out);
      } else {
        obs::GlobalRegistry().WriteJsonFile(*metrics_out);
      }
    }
    if (trace_out && !trace_out->empty()) {
      obs::GlobalTrace().WriteFile(*trace_out);
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    if (rc == 0) rc = 1;
  }
  return rc;
}

int Main(const std::vector<std::string>& args, std::ostream& out,
         std::ostream& err) {
  auto cmd = Parse(args, err);
  if (!cmd) return 2;
  return Run(*cmd, out, err);
}

}  // namespace ipscope::cli
