// The ipscope command-line interface.
//
// The CLI works on serialized activity datasets so that generation (slow,
// simulator-bound) and analysis (fast, repeatable) can be separated:
//
//   ipscope_cli generate --blocks 4000 --out daily.ipscope
//   ipscope_cli summary daily.ipscope
//   ipscope_cli churn daily.ipscope --window 7
//   ipscope_cli blocks daily.ipscope --top 20 --sort stu
//   ipscope_cli render daily.ipscope --block 40.112.7.0/24
//   ipscope_cli events daily.ipscope --window 28
//   ipscope_cli profile --blocks 2000 --metrics-out m.json --trace-out t.json
//
// All command logic lives here (stream-parameterized) so it is unit-tested;
// tools/ipscope_cli.cc is a thin main().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipscope::cli {

// Thrown by the numeric flag accessors on malformed values (e.g.
// `--seed banana`). Run() catches it and turns it into exit code 2 with
// the message on stderr, so commands can parse flags without try blocks.
struct FlagError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Parsed command line: subcommand, positional args, and --flag[=| ]value
// options. Bare "--flag" stores an empty value.
struct CommandLine {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::optional<std::string> Flag(const std::string& name) const;
  // Numeric accessors return `fallback` when the flag is absent and throw
  // FlagError when it is present but not a number.
  int IntFlag(const std::string& name, int fallback) const;
  std::uint64_t Uint64Flag(const std::string& name,
                           std::uint64_t fallback) const;
  double DoubleFlag(const std::string& name, double fallback) const;
};

// Parses argv[1..]; returns nullopt (and writes a message to err) when the
// input is malformed.
std::optional<CommandLine> Parse(const std::vector<std::string>& args,
                                 std::ostream& err);

// Executes a parsed command. Returns a process exit code.
int Run(const CommandLine& cmd, std::ostream& out, std::ostream& err);

// Convenience: parse + run.
int Main(const std::vector<std::string>& args, std::ostream& out,
         std::ostream& err);

}  // namespace ipscope::cli
