#include "cli/signals.h"

#include <csignal>

#include <atomic>

namespace ipscope::cli {

namespace {

std::atomic<bool> g_drain{false};

// Async-signal-safe by construction: a lock-free atomic store and a
// sigaction re-arm, nothing else. The first signal requests a drain; the
// handler then restores the default disposition so a second SIGINT/SIGTERM
// terminates a loop that is stuck and never reaches its poll point.
void OnSignal(int signo) {
  g_drain.store(true, std::memory_order_relaxed);
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(signo, &dfl, nullptr);
}

}  // namespace

void InstallSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = &OnSignal;
  ::sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a blocking accept()/poll() in the serve loop must wake
  // with EINTR so the drain flag is seen promptly instead of after the
  // next client happens to connect.
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool DrainRequested() { return g_drain.load(std::memory_order_relaxed); }

void RequestDrain() { g_drain.store(true, std::memory_order_relaxed); }

void ResetDrainForTests() { g_drain.store(false, std::memory_order_relaxed); }

}  // namespace ipscope::cli
