// Cooperative shutdown for long-running ipscope_cli commands.
//
// SIGINT/SIGTERM do not kill the process; they set a process-wide drain
// flag that long-running loops (`serve`, the chaos-crash sweep) poll at
// safe boundaries — between requests, between sweep cells — so a Ctrl-C
// never lands in the middle of an io::WriteFileAtomic and never litters
// `.tmp` files for recovery to quarantine. `serve` finishes its in-flight
// queries, flushes --metrics-out, and exits 0.
//
// This is deliberately the opposite model from fault::MaybeCrash
// (src/fault/crash.cc): crash points simulate an *uncooperative* kill
// (`_exit` at a syscall boundary, torn state on purpose); the drain flag
// is the cooperative path that makes torn state the exception, not the
// rule. The two compose — a drain request never masks an armed crash
// point.
#pragma once

namespace ipscope::cli {

// Installs SIGINT/SIGTERM handlers (idempotent). Handlers only set the
// drain flag; a second signal while draining falls back to the default
// disposition, so a stuck process can still be killed with a repeat ^C.
void InstallSignalHandlers();

// True once a drain was requested (by signal or RequestDrain).
bool DrainRequested();

// Sets the drain flag programmatically (tests, in-process embedding).
void RequestDrain();

// Clears the flag so one test's drain does not leak into the next.
void ResetDrainForTests();

}  // namespace ipscope::cli
