// check golden store — committed canonical-seed snapshots of every figure
// and table series, plus a CRC manifest.
//
// The golden files are the regression net the differential sweep cannot
// provide: the sweep proves optimized == reference *today*, the goldens
// prove today's output == the output reviewed and committed yesterday. A
// legitimate behavior change therefore shows up as a golden diff that must
// be refreshed deliberately (`ipscope_cli check --update-goldens`) and
// reviewed in the PR, never silently.
//
// Layout under the golden directory (tests/golden/ in the repo):
//   MANIFEST.csv           file,crc32c of every snapshot (sorted by name)
//   daily_counts.csv       Fig 4a series (active/up/down; -1 = no data)
//   churn.csv              Fig 4b window churn percentages
//   vsfirst.csv            Fig 4c appear/disappear vs first window
//   group_churn.csv        Fig 5a per-AS churn medians
//   eventsize.csv          Fig 5b isolating-mask histograms (up and down)
//   patterns.csv           Fig 6 pattern classification counts
//   stu_change.csv         Fig 8a per-block max monthly STU delta
//   block_metrics.csv      Fig 8b per-block FD / STU
//   summary.csv            scalar table: store shape, totals, Chapman
//
// Renderings are bit-deterministic: every analysis obeys the
// par::ParallelReduce ordered-merge contract (thread-count independent)
// and doubles are printed through report::FormatDouble with fixed
// precision, so a golden diff is a real behavior change, not run-to-run
// noise. The manifest CRC separates the two failure modes: disk == manifest
// but != rendered means the code changed (regression); disk != manifest
// means the checkout itself is stale or corrupt.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ipscope::check {

struct GoldenConfig {
  std::uint64_t seed = 1;  // the canonical golden world
  int blocks = 400;
  int window_days = 7;
  int month_days = 28;
  std::uint64_t group_min_ips = 64;
};

struct GoldenFile {
  std::string name;      // e.g. "churn.csv"
  std::string contents;  // full CSV text
};

// Renders every golden snapshot (manifest excluded), sorted by name.
std::vector<GoldenFile> RenderGoldens(const GoldenConfig& config);

// "file,crc32c" manifest over the rendered files, one row per file.
std::string RenderManifest(const std::vector<GoldenFile>& files);

// Writes all snapshots plus MANIFEST.csv into `dir` (created if absent).
void WriteGoldens(const std::string& dir, const GoldenConfig& config);

struct GoldenIssue {
  enum class Kind {
    kMissing,     // snapshot or manifest absent on disk
    kStale,       // disk contents disagree with the committed manifest CRC
    kRegression,  // disk matches manifest but code renders something else
    kUnexpected,  // file on disk / in manifest that is not rendered anymore
  };
  Kind kind;
  std::string file;
  std::string detail;  // first differing line, CRCs, ...
};

const char* GoldenIssueKindName(GoldenIssue::Kind kind);

// Re-renders from the canonical seed and compares against `dir`. Empty
// result = clean. Increments check.golden_files_checked.
std::vector<GoldenIssue> VerifyGoldens(const std::string& dir,
                                       const GoldenConfig& config);

}  // namespace ipscope::check
