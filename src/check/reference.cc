#include "check/reference.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ipscope::check {

namespace {

// The set of addresses active at least once in [day_first, day_last), as a
// sorted vector of full 32-bit address values. Naive by design: every
// (block, host, day) cell is probed through ActivityMatrix::Get. The store
// visits blocks in ascending key order and hosts ascend within a block, so
// the result is sorted without an explicit sort.
std::vector<std::uint32_t> WindowActiveSet(const activity::ActivityStore& s,
                                           int day_first, int day_last) {
  std::vector<std::uint32_t> out;
  s.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    for (int h = 0; h < 256; ++h) {
      bool active = false;
      for (int d = day_first; d < day_last && !active; ++d) {
        active = m.Get(d, h);
      }
      if (active) {
        out.push_back((key << 8) | static_cast<std::uint32_t>(h));
      }
    }
  });
  return out;
}

int CoveredDaysIn(const activity::ActivityStore& s, int day_first,
                  int day_last) {
  int covered = 0;
  for (int d = day_first; d < day_last; ++d) {
    if (s.DayCovered(d)) ++covered;
  }
  return covered;
}

bool WindowCovered(const activity::ActivityStore& s, int w, int window_days) {
  return CoveredDaysIn(s, w * window_days, (w + 1) * window_days) > 0;
}

bool SortedContains(const std::vector<std::uint32_t>& sorted,
                    std::uint32_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

// |a \ b| for sorted vectors.
std::uint64_t CountNotIn(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b) {
  std::uint64_t n = 0;
  for (std::uint32_t v : a) {
    if (!SortedContains(b, v)) ++n;
  }
  return n;
}

// Median with the linear-interpolation (type 7) definition, transcribed so
// the oracle does not lean on stats::Median: sort, then for even sizes
// average the two middle elements.
double NaiveMedian(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

// Active (address, day) pairs of one block over a window.
std::int64_t BlockActivePairs(const activity::ActivityMatrix& m,
                              int day_first, int day_last) {
  std::int64_t pairs = 0;
  for (int d = day_first; d < day_last; ++d) {
    for (int h = 0; h < 256; ++h) {
      if (m.Get(d, h)) ++pairs;
    }
  }
  return pairs;
}

// Distinct active addresses of one block over a window.
int BlockFillingDegree(const activity::ActivityMatrix& m, int day_first,
                       int day_last) {
  int fd = 0;
  for (int h = 0; h < 256; ++h) {
    for (int d = day_first; d < day_last; ++d) {
      if (m.Get(d, h)) {
        ++fd;
        break;
      }
    }
  }
  return fd;
}

}  // namespace

std::vector<std::uint32_t> RefActiveAddresses(
    const activity::ActivityStore& store, int day_first, int day_last) {
  return WindowActiveSet(store, day_first, day_last);
}

std::vector<std::int64_t> RefDailyActiveCounts(
    const activity::ActivityStore& store) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(store.days()), 0);
  store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    for (int d = 0; d < store.days(); ++d) {
      for (int h = 0; h < 256; ++h) {
        if (m.Get(d, h)) ++counts[static_cast<std::size_t>(d)];
      }
    }
  });
  return counts;
}

RefDailyEvents RefDailyEventSeries(const activity::ActivityStore& store) {
  RefDailyEvents out;
  int days = store.days();
  out.active = RefDailyActiveCounts(store);
  if (days > 0) {
    out.up.assign(static_cast<std::size_t>(days - 1), 0);
    out.down.assign(static_cast<std::size_t>(days - 1), 0);
  }
  store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    for (int d = 0; d + 1 < days; ++d) {
      for (int h = 0; h < 256; ++h) {
        bool today = m.Get(d, h);
        bool tomorrow = m.Get(d + 1, h);
        if (!today && tomorrow) ++out.up[static_cast<std::size_t>(d)];
        if (today && !tomorrow) ++out.down[static_cast<std::size_t>(d)];
      }
    }
  });
  // An uncovered day carries no evidence: its own count and both adjacent
  // event pairs are "no data" (-1), never 0.
  for (int d = 0; d < days; ++d) {
    if (store.DayCovered(d)) continue;
    out.active[static_cast<std::size_t>(d)] = -1;
    if (d > 0) {
      out.up[static_cast<std::size_t>(d - 1)] = -1;
      out.down[static_cast<std::size_t>(d - 1)] = -1;
    }
    if (d + 1 < days) {
      out.up[static_cast<std::size_t>(d)] = -1;
      out.down[static_cast<std::size_t>(d)] = -1;
    }
  }
  return out;
}

RefChurn RefWindowChurn(const activity::ActivityStore& store,
                        int window_days) {
  RefChurn out;
  int num_windows = store.days() / window_days;
  if (num_windows < 2) return out;
  std::vector<std::vector<std::uint32_t>> windows;
  for (int w = 0; w < num_windows; ++w) {
    windows.push_back(
        WindowActiveSet(store, w * window_days, (w + 1) * window_days));
  }
  for (int p = 0; p + 1 < num_windows; ++p) {
    // A pair is reported only when both windows hold at least one covered
    // day — an unobserved window must not read as mass deactivation.
    if (!WindowCovered(store, p, window_days) ||
        !WindowCovered(store, p + 1, window_days)) {
      continue;
    }
    const auto& w0 = windows[static_cast<std::size_t>(p)];
    const auto& w1 = windows[static_cast<std::size_t>(p + 1)];
    std::uint64_t up = CountNotIn(w1, w0);    // |W1 \ W0|
    std::uint64_t down = CountNotIn(w0, w1);  // |W0 \ W1|
    out.pairs.push_back(p);
    out.up_pct.push_back(w1.empty() ? 0.0
                                    : 100.0 * static_cast<double>(up) /
                                          static_cast<double>(w1.size()));
    out.down_pct.push_back(w0.empty() ? 0.0
                                      : 100.0 * static_cast<double>(down) /
                                            static_cast<double>(w0.size()));
  }
  return out;
}

RefVersusFirst RefVersusFirstSeries(const activity::ActivityStore& store,
                                    int window_days) {
  RefVersusFirst out;
  int num_windows = store.days() / window_days;
  if (num_windows < 1) return out;
  out.appear.assign(static_cast<std::size_t>(num_windows), 0);
  out.disappear.assign(static_cast<std::size_t>(num_windows), 0);
  out.active.assign(static_cast<std::size_t>(num_windows), 0);
  out.window_covered.resize(static_cast<std::size_t>(num_windows));
  std::vector<std::uint32_t> w0 =
      WindowActiveSet(store, 0, window_days);
  for (int w = 0; w < num_windows; ++w) {
    auto wi = static_cast<std::size_t>(w);
    out.window_covered[wi] = WindowCovered(store, w, window_days);
    if (!out.window_covered[wi]) continue;  // no data, not "empty"
    std::vector<std::uint32_t> ws =
        WindowActiveSet(store, w * window_days, (w + 1) * window_days);
    out.appear[wi] = CountNotIn(ws, w0);
    out.disappear[wi] = CountNotIn(w0, ws);
    out.active[wi] = ws.size();
  }
  return out;
}

RefGroupChurn const* FindRefGroup(const std::vector<RefGroupChurn>& groups,
                                  std::uint32_t group) {
  for (const RefGroupChurn& g : groups) {
    if (g.group == group) return &g;
  }
  return nullptr;
}

std::vector<RefGroupChurn> RefPerGroupChurn(
    const activity::ActivityStore& store, int window_days,
    const std::function<std::uint32_t(net::BlockKey)>& group_of,
    std::uint64_t min_active_ips) {
  std::vector<RefGroupChurn> out;
  int num_windows = store.days() / window_days;
  if (num_windows < 2) return out;

  // Group the store's blocks by the supplied mapping, keys ascending.
  std::map<std::uint32_t, std::vector<net::BlockKey>> members;
  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix&) {
    members[group_of(key)].push_back(key);
  });

  for (const auto& [group, keys] : members) {
    // Window active sets restricted to this group's blocks.
    std::vector<std::vector<std::uint32_t>> windows(
        static_cast<std::size_t>(num_windows));
    std::uint64_t total_active = 0;
    for (net::BlockKey key : keys) {
      const activity::ActivityMatrix* m = store.Find(key);
      for (int h = 0; h < 256; ++h) {
        bool ever = false;
        for (int w = 0; w < num_windows; ++w) {
          bool active = false;
          for (int d = w * window_days; d < (w + 1) * window_days; ++d) {
            if (m->Get(d, h)) {
              active = true;
              break;
            }
          }
          if (active) {
            windows[static_cast<std::size_t>(w)].push_back(
                (key << 8) | static_cast<std::uint32_t>(h));
            ever = true;
          }
        }
        // The >1000-IP filter counts distinct addresses over the *whole*
        // period, including any trailing partial window the churn windows
        // discard.
        if (!ever) {
          for (int d = num_windows * window_days; d < store.days(); ++d) {
            if (m->Get(d, h)) {
              ever = true;
              break;
            }
          }
        }
        if (ever) ++total_active;
      }
    }
    if (total_active < min_active_ips) continue;
    for (auto& w : windows) std::sort(w.begin(), w.end());

    std::vector<double> up_pcts, down_pcts;
    for (int p = 0; p + 1 < num_windows; ++p) {
      if (!WindowCovered(store, p, window_days) ||
          !WindowCovered(store, p + 1, window_days)) {
        continue;
      }
      const auto& w0 = windows[static_cast<std::size_t>(p)];
      const auto& w1 = windows[static_cast<std::size_t>(p + 1)];
      if (!w1.empty()) {
        up_pcts.push_back(100.0 *
                          static_cast<double>(CountNotIn(w1, w0)) /
                          static_cast<double>(w1.size()));
      }
      if (!w0.empty()) {
        down_pcts.push_back(100.0 *
                            static_cast<double>(CountNotIn(w0, w1)) /
                            static_cast<double>(w0.size()));
      }
    }
    if (up_pcts.empty() && down_pcts.empty()) continue;
    RefGroupChurn gc;
    gc.group = group;
    gc.total_active_ips = total_active;
    gc.median_up_pct = up_pcts.empty() ? 0.0 : NaiveMedian(up_pcts);
    gc.median_down_pct = down_pcts.empty() ? 0.0 : NaiveMedian(down_pcts);
    out.push_back(gc);
  }
  return out;  // std::map iteration is already group-ascending
}

std::vector<RefBlockMetric> RefBlockMetrics(
    const activity::ActivityStore& store) {
  std::vector<RefBlockMetric> out;
  const int covered = CoveredDaysIn(store, 0, store.days());
  if (covered == 0) return out;
  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    int fd = BlockFillingDegree(m, 0, store.days());
    if (fd == 0) return;
    double stu = static_cast<double>(BlockActivePairs(m, 0, store.days())) /
                 (256.0 * covered);
    out.push_back(RefBlockMetric{key, fd, stu});
  });
  return out;
}

RefEventSizeHistogram RefEventSizes(const activity::ActivityStore& store,
                                    int w0_first, int w0_last, int w1_first,
                                    int w1_last, bool up) {
  std::vector<std::uint32_t> active0 = WindowActiveSet(store, w0_first, w0_last);
  std::vector<std::uint32_t> active1 = WindowActiveSet(store, w1_first, w1_last);
  // Up events: absent in W0, present in W1. The disqualifying reference is
  // the window whose activity an isolating prefix must avoid (W0 for up
  // events). Down events swap the roles.
  const std::vector<std::uint32_t>& present = up ? active1 : active0;
  const std::vector<std::uint32_t>& reference = up ? active0 : active1;

  RefEventSizeHistogram hist;
  for (std::uint32_t addr : present) {
    if (SortedContains(reference, addr)) continue;  // not an event
    // Smallest mask length whose aligned prefix around `addr` contains no
    // reference member — checked mask by mask, largest prefix first. The
    // /32 case always succeeds (addr itself is never in the reference), so
    // the loop always assigns.
    int mask = 32;
    for (int len = 0; len <= 32; ++len) {
      std::uint32_t net_mask =
          len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
      std::uint32_t lo = addr & net_mask;
      std::uint32_t hi = addr | ~net_mask;
      auto it = std::lower_bound(reference.begin(), reference.end(), lo);
      bool occupied = it != reference.end() && *it <= hi;
      if (!occupied) {
        mask = len;
        break;
      }
    }
    ++hist.by_mask[static_cast<std::size_t>(mask)];
    ++hist.total;
  }
  return hist;
}

std::vector<RefStuChange> RefMaxMonthlyStuChange(
    const activity::ActivityStore& store, int month_days) {
  std::vector<RefStuChange> out;
  int months = store.days() / month_days;
  if (months < 2) return out;
  // Months without a single covered day carry no signal: deltas bridge
  // between consecutive *observed* months.
  std::vector<int> observed;
  for (int mo = 0; mo < months; ++mo) {
    if (CoveredDaysIn(store, mo * month_days, (mo + 1) * month_days) > 0) {
      observed.push_back(mo);
    }
  }
  if (observed.size() < 2) return out;

  auto month_stu = [&](const activity::ActivityMatrix& m, int mo) {
    int first = mo * month_days, last = (mo + 1) * month_days;
    int covered = CoveredDaysIn(store, first, last);
    if (covered == 0) return 0.0;
    return static_cast<double>(BlockActivePairs(m, first, last)) /
           (256.0 * covered);
  };
  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    if (BlockFillingDegree(m, 0, store.days()) == 0) return;
    double prev = month_stu(m, observed[0]);
    double best = 0.0;
    for (std::size_t i = 1; i < observed.size(); ++i) {
      double cur = month_stu(m, observed[i]);
      double delta = cur - prev;
      if (std::abs(delta) > std::abs(best)) best = delta;
      prev = cur;
    }
    out.push_back(RefStuChange{key, best});
  });
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> RefPatternCounts(
    const activity::ActivityStore& store) {
  // Canonical label order; must list every activity::BlockPattern name.
  const char* kNames[] = {"inactive",           "static-sparse",
                          "dynamic-short-lease", "dynamic-long-lease",
                          "fully-utilized",      "mixed"};
  std::uint64_t counts[6] = {};

  store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
    int days = m.days();
    // Features, transcribed from the definitions in activity/pattern.h.
    int fd = BlockFillingDegree(m, 0, days);
    if (fd == 0) {
      ++counts[0];  // inactive
      return;
    }
    double stu = static_cast<double>(BlockActivePairs(m, 0, days)) /
                 (256.0 * days);
    std::int64_t total_active_days = 0;
    int host_days[256] = {};
    for (int h = 0; h < 256; ++h) {
      for (int d = 0; d < days; ++d) {
        if (m.Get(d, h)) {
          ++host_days[h];
          ++total_active_days;
        }
      }
    }
    double mean_host_days =
        static_cast<double>(total_active_days) / static_cast<double>(fd);
    double sq_sum = 0.0;
    for (int h = 0; h < 256; ++h) {
      if (host_days[h] == 0) continue;
      double delta = static_cast<double>(host_days[h]) - mean_host_days;
      sq_sum += delta * delta;
    }
    double cv = mean_host_days > 0
                    ? std::sqrt(sq_sum / static_cast<double>(fd)) /
                          mean_host_days
                    : 0.0;

    // Thresholds as documented for Fig 6 / Fig 8b classification.
    std::size_t label;
    if (stu > 0.97 && fd > 250) {
      label = 4;  // fully-utilized
    } else if (fd < 100) {
      label = 1;  // static-sparse
    } else if (cv < 0.25 && fd >= 200) {
      label = 2;  // dynamic-short-lease
    } else if (cv >= 0.25) {
      label = 3;  // dynamic-long-lease
    } else {
      label = 5;  // mixed
    }
    ++counts[label];
  });

  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < 6; ++i) out.emplace_back(kNames[i], counts[i]);
  return out;
}

double RefChapman(std::uint64_t n1, std::uint64_t n2, std::uint64_t m) {
  return (static_cast<double>(n1) + 1.0) * (static_cast<double>(n2) + 1.0) /
             (static_cast<double>(m) + 1.0) -
         1.0;
}

}  // namespace ipscope::check
