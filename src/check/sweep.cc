#include "check/sweep.h"

#include <stdexcept>
#include <type_traits>
#include <utility>

#include "activity/change.h"
#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/metrics.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "check/reference.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "obs/registry.h"
#include "par/pool.h"
#include "rng/rng.h"
#include "sim/world.h"
#include "stats/capture_recapture.h"

namespace ipscope::check {

namespace {

// Sampling probability of each capture occasion and the tolerance band of
// the estimate-vs-truth check. At sweep world sizes (tens of thousands of
// active addresses) the Chapman standard error is far below 5%, so the
// band is deterministic-safe while still meaning something.
constexpr double kCaptureP = 0.35;
constexpr double kCaptureTol = 0.05;

std::string Coord(const char* label, std::size_t i) {
  return std::string(label) + "=" + std::to_string(i);
}

template <typename T, typename U>
void CompareSeries(Diff& diff, const std::string& series,
                   const std::vector<T>& expected,
                   const std::vector<U>& actual, const char* coord_label) {
  if (expected.size() != actual.size()) {
    diff.ExpectEq(series, "size", std::uint64_t{expected.size()},
                  std::uint64_t{actual.size()});
    return;  // elementwise coordinates would be meaningless
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if constexpr (std::is_floating_point_v<T>) {
      diff.ExpectEq(series, Coord(coord_label, i), double{expected[i]},
                    double{actual[i]});
    } else if constexpr (std::is_signed_v<T>) {
      diff.ExpectEq(series, Coord(coord_label, i),
                    static_cast<std::int64_t>(expected[i]),
                    static_cast<std::int64_t>(actual[i]));
    } else {
      diff.ExpectEq(series, Coord(coord_label, i),
                    static_cast<std::uint64_t>(expected[i]),
                    static_cast<std::uint64_t>(actual[i]));
    }
  }
}

// Flips one (covered-day, host) activity bit — the seeded mutation used to
// prove the harness detects a real single-bit analysis input difference.
void FlipOneBit(activity::ActivityStore& store) {
  if (store.BlockCount() == 0) return;
  int day = -1;
  for (int d = store.days() / 2; d < store.days(); ++d) {
    if (store.DayCovered(d)) {
      day = d;
      break;
    }
  }
  if (day < 0) return;
  activity::ActivityMatrix& m = store.GetOrCreate(store.KeyAt(0));
  constexpr int kHost = 7;
  m.Row(day)[kHost >> 6] ^= std::uint64_t{1} << (kHost & 63);
}

}  // namespace

std::string CaseSpec::Name() const {
  std::string name = "seed=" + std::to_string(seed) +
                     " blocks=" + std::to_string(blocks) +
                     " threads=" + std::to_string(threads) + " fault=" +
                     (fault.empty() ? std::string("none") : fault);
  if (perturb) name += " perturb=flip-bit";
  return name;
}

Diff RunCase(const CaseSpec& spec) {
  Diff diff{spec.Name()};
  obs::GlobalRegistry().GetCounter("check.cases_run").Add(1);

  sim::WorldConfig config;
  config.target_client_blocks = spec.blocks;
  config.seed = spec.seed;
  sim::World world{config};
  activity::ActivityStore store =
      cdn::Observatory::Daily(world).BuildStore(spec.threads);

  if (!spec.fault.empty()) {
    fault::Schedule schedule;
    schedule.seed = spec.seed;
    std::string parse_error;
    if (!fault::ParseSchedule(spec.fault, &schedule, &parse_error)) {
      throw std::invalid_argument("check: bad fault spec: " + parse_error);
    }
    fault::Injector{schedule}.ApplyToStore(store);
  }

  // The oracle reads `store`; the optimized pipeline reads `opt`. They are
  // identical copies unless this case injects the deliberate mutation.
  activity::ActivityStore opt = store;
  if (spec.perturb) FlipOneBit(opt);
  par::GlobalPool().Resize(spec.threads);

  const int days = store.days();

  // Fig 4a: daily totals and daily up/down events.
  CompareSeries(diff, "daily.active", RefDailyActiveCounts(store),
                opt.DailyActiveCounts(), "day");
  {
    RefDailyEvents ref = RefDailyEventSeries(store);
    activity::DailyEventSeries got = activity::ChurnAnalyzer{opt}.DailyEvents();
    CompareSeries(diff, "daily.events.active", ref.active, got.active, "day");
    CompareSeries(diff, "daily.events.up", ref.up, got.up, "pair");
    CompareSeries(diff, "daily.events.down", ref.down, got.down, "pair");
  }

  // Fig 4b: window churn percentages.
  {
    RefChurn ref = RefWindowChurn(store, spec.window_days);
    activity::WindowChurnSeries got =
        activity::ChurnAnalyzer{opt}.Churn(spec.window_days);
    CompareSeries(diff, "churn.pairs", ref.pairs, got.pairs, "index");
    CompareSeries(diff, "churn.up_pct", ref.up_pct, got.up_pct, "pair");
    CompareSeries(diff, "churn.down_pct", ref.down_pct, got.down_pct, "pair");
  }

  // Fig 4c: appear/disappear vs the first window.
  {
    RefVersusFirst ref = RefVersusFirstSeries(store, spec.window_days);
    activity::VersusFirstSeries got =
        activity::ChurnAnalyzer{opt}.VersusFirst(spec.window_days);
    CompareSeries(diff, "vsfirst.appear", ref.appear, got.appear, "window");
    CompareSeries(diff, "vsfirst.disappear", ref.disappear, got.disappear,
                  "window");
    CompareSeries(diff, "vsfirst.active", ref.active, got.active, "window");
    CompareSeries(diff, "vsfirst.covered", ref.window_covered,
                  got.window_covered, "window");
  }

  // Fig 5a: per-AS churn medians. Both sides get the same mapping.
  {
    auto group_of = [&world](net::BlockKey key) {
      return world.PlannedAsnOf(key).value_or(0);
    };
    std::vector<RefGroupChurn> ref = RefPerGroupChurn(
        store, spec.window_days, group_of, spec.group_min_ips);
    std::vector<activity::GroupChurn> got =
        activity::ChurnAnalyzer{opt}.PerGroupChurn(spec.window_days, group_of,
                                                   spec.group_min_ips);
    if (ref.size() != got.size()) {
      diff.ExpectEq("group_churn", "size", std::uint64_t{ref.size()},
                    std::uint64_t{got.size()});
    } else {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        std::string at = "group=" + std::to_string(ref[i].group);
        diff.ExpectEq("group_churn.group", at, std::uint64_t{ref[i].group},
                      std::uint64_t{got[i].group});
        diff.ExpectEq("group_churn.total_active_ips", at,
                      ref[i].total_active_ips, got[i].total_active_ips);
        diff.ExpectEq("group_churn.median_up_pct", at, ref[i].median_up_pct,
                      got[i].median_up_pct);
        diff.ExpectEq("group_churn.median_down_pct", at,
                      ref[i].median_down_pct, got[i].median_down_pct);
      }
    }
  }

  // Fig 5b: event-size histograms between the first two windows.
  if (days >= 2 * spec.window_days) {
    for (bool up : {true, false}) {
      const char* dir = up ? "up" : "down";
      RefEventSizeHistogram ref =
          RefEventSizes(store, 0, spec.window_days, spec.window_days,
                        2 * spec.window_days, up);
      activity::EventSizeHistogram got =
          activity::EventSizes(opt, 0, spec.window_days, spec.window_days,
                               2 * spec.window_days, up);
      std::string series = std::string("eventsize.") + dir;
      diff.ExpectEq(series, "total", ref.total, got.total);
      for (std::size_t mask = 0; mask < ref.by_mask.size(); ++mask) {
        diff.ExpectEq(series, Coord("mask", mask), ref.by_mask[mask],
                      got.by_mask[mask]);
      }
    }
  }

  // Fig 8b: per-block FD / STU.
  {
    std::vector<RefBlockMetric> ref = RefBlockMetrics(store);
    std::vector<activity::BlockMetrics> got = activity::ComputeBlockMetrics(opt);
    if (ref.size() != got.size()) {
      diff.ExpectEq("block_metrics", "size", std::uint64_t{ref.size()},
                    std::uint64_t{got.size()});
    } else {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        std::string at = "block=" + std::to_string(ref[i].key);
        diff.ExpectEq("block_metrics.key", at, std::uint64_t{ref[i].key},
                      std::uint64_t{got[i].key});
        diff.ExpectEq("block_metrics.fd", at,
                      std::int64_t{ref[i].filling_degree},
                      std::int64_t{got[i].filling_degree});
        diff.ExpectEq("block_metrics.stu", at, ref[i].stu, got[i].stu);
      }
    }
  }

  // Fig 8a: change detection.
  {
    std::vector<RefStuChange> ref =
        RefMaxMonthlyStuChange(store, spec.month_days);
    std::vector<activity::BlockStuChange> got =
        activity::MaxMonthlyStuChange(opt, spec.month_days);
    if (ref.size() != got.size()) {
      diff.ExpectEq("stu_change", "size", std::uint64_t{ref.size()},
                    std::uint64_t{got.size()});
    } else {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        std::string at = "block=" + std::to_string(ref[i].key);
        diff.ExpectEq("stu_change.key", at, std::uint64_t{ref[i].key},
                      std::uint64_t{got[i].key});
        diff.ExpectEq("stu_change.max_delta", at, ref[i].max_delta,
                      got[i].max_delta);
      }
    }
  }

  // Fig 6: pattern classification counts.
  {
    auto ref = RefPatternCounts(store);
    for (const auto& entry : ref) {
      std::uint64_t got = 0;
      opt.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
        if (entry.first == activity::PatternName(activity::ClassifyPattern(
                               activity::ComputeFeatures(m)))) {
          ++got;
        }
      });
      diff.ExpectEq("pattern.count", "pattern=" + entry.first, entry.second,
                    got);
    }
  }

  // Ground truth: distinct actives, active blocks, and capture–recapture.
  {
    std::vector<std::uint32_t> truth_set = RefActiveAddresses(store, 0, days);
    auto truth = static_cast<std::uint64_t>(truth_set.size());
    diff.ExpectEq("active.count", "period", truth, opt.CountActive(0, days));
    diff.ExpectEq("active.blocks", "period",
                  std::uint64_t{RefBlockMetrics(store).size()},
                  opt.CountActiveBlocks(0, days));

    // Two independent seeded capture occasions over the true population.
    rng::Xoshiro256 g1{rng::Substream(spec.seed, 0xCA97u, 1u)};
    rng::Xoshiro256 g2{rng::Substream(spec.seed, 0xCA97u, 2u)};
    std::uint64_t n1 = 0, n2 = 0, m = 0;
    for (std::size_t i = 0; i < truth_set.size(); ++i) {
      bool in1 = g1.NextBool(kCaptureP);
      bool in2 = g2.NextBool(kCaptureP);
      if (in1) ++n1;
      if (in2) ++n2;
      if (in1 && in2) ++m;
    }
    double est = stats::Chapman(n1, n2, m).population;
    diff.ExpectEq("capture.chapman", "formula", RefChapman(n1, n2, m), est);
    if (truth >= 1000) {
      diff.ExpectNear("capture.population", "vs-truth",
                      static_cast<double>(truth), est,
                      kCaptureTol * static_cast<double>(truth));
    }
  }

  return diff;
}

SweepResult RunSweep(std::span<const CaseSpec> specs) {
  SweepResult result;
  for (const CaseSpec& spec : specs) {
    Diff diff = RunCase(spec);
    ++result.cases;
    result.mismatches += diff.mismatches();
    for (const Divergence& d : diff.divergences()) {
      result.divergences.push_back(d);
    }
  }
  return result;
}

std::vector<CaseSpec> DefaultSweep(std::span<const std::uint64_t> seeds,
                                   int blocks, int max_threads) {
  std::vector<int> threads_axis{1};
  if (max_threads > 1) threads_axis.push_back(max_threads);
  std::vector<CaseSpec> specs;
  for (std::uint64_t seed : seeds) {
    for (const char* fault : {"", "drop-days=2"}) {
      for (int threads : threads_axis) {
        CaseSpec spec;
        spec.seed = seed;
        spec.blocks = blocks;
        spec.threads = threads;
        spec.fault = fault;
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

}  // namespace ipscope::check
