#include "check/golden.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "activity/change.h"
#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/metrics.h"
#include "activity/pattern.h"
#include "cdn/observatory.h"
#include "io/crc32c.h"
#include "obs/registry.h"
#include "report/csv.h"
#include "report/table.h"
#include "rng/rng.h"
#include "sim/world.h"
#include "stats/capture_recapture.h"

namespace ipscope::check {

namespace {

constexpr const char* kManifestName = "MANIFEST.csv";
// Fixed decimal places for every double in a golden file. The underlying
// values are bit-deterministic (ordered-merge contract), so fixed-point
// text is stable too; 6 places keeps diffs readable while far exceeding
// the figures' plotting resolution.
constexpr int kPrecision = 6;

std::string Fmt(double v) { return report::FormatDouble(v, kPrecision); }
std::string Fmt(std::int64_t v) { return std::to_string(v); }
std::string Fmt(std::uint64_t v) { return std::to_string(v); }
std::string Fmt(int v) { return std::to_string(v); }

std::string CrcHex(const std::string& contents) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                io::Crc32c(contents.data(), contents.size()));
  return buf;
}

// First line where the two texts differ, for regression reports.
std::string FirstLineDiff(const std::string& expected,
                          const std::string& actual) {
  std::istringstream e{expected}, a{actual};
  std::string el, al;
  for (int line = 1;; ++line) {
    bool eok = static_cast<bool>(std::getline(e, el));
    bool aok = static_cast<bool>(std::getline(a, al));
    if (!eok && !aok) return "identical";  // caller compared unequal strings
    if (el != al || eok != aok) {
      return "line " + std::to_string(line) + ": golden '" +
             (eok ? el : std::string("<eof>")) + "' vs rendered '" +
             (aok ? al : std::string("<eof>")) + "'";
    }
  }
}

}  // namespace

std::vector<GoldenFile> RenderGoldens(const GoldenConfig& config) {
  sim::WorldConfig wc;
  wc.target_client_blocks = config.blocks;
  wc.seed = config.seed;
  sim::World world{wc};
  activity::ActivityStore store = cdn::Observatory::Daily(world).BuildStore();
  activity::ChurnAnalyzer churn{store};
  const int days = store.days();

  std::vector<GoldenFile> files;
  auto render = [&files](const char* name,
                         const std::vector<std::string>& headers,
                         auto&& fill) {
    std::ostringstream os;
    report::CsvWriter csv{os, headers};
    fill(csv);
    files.push_back(GoldenFile{name, os.str()});
  };

  render("daily_counts.csv", {"day", "active", "up", "down"},
         [&](report::CsvWriter& csv) {
           activity::DailyEventSeries s = churn.DailyEvents();
           for (int d = 0; d < days; ++d) {
             auto di = static_cast<std::size_t>(d);
             csv.AddRow({Fmt(d), Fmt(s.active[di]),
                         d + 1 < days ? Fmt(s.up[di]) : std::string(),
                         d + 1 < days ? Fmt(s.down[di]) : std::string()});
           }
         });

  render("churn.csv", {"window", "up_pct", "down_pct"},
         [&](report::CsvWriter& csv) {
           activity::WindowChurnSeries s = churn.Churn(config.window_days);
           for (std::size_t i = 0; i < s.pairs.size(); ++i) {
             csv.AddRow(
                 {Fmt(s.pairs[i]), Fmt(s.up_pct[i]), Fmt(s.down_pct[i])});
           }
         });

  render("vsfirst.csv", {"window", "appear", "disappear", "active"},
         [&](report::CsvWriter& csv) {
           activity::VersusFirstSeries s =
               churn.VersusFirst(config.window_days);
           for (std::size_t w = 0; w < s.appear.size(); ++w) {
             csv.AddRow({Fmt(static_cast<std::uint64_t>(w)), Fmt(s.appear[w]),
                         Fmt(s.disappear[w]), Fmt(s.active[w])});
           }
         });

  render("group_churn.csv",
         {"asn", "total_active_ips", "median_up_pct", "median_down_pct"},
         [&](report::CsvWriter& csv) {
           auto groups = churn.PerGroupChurn(
               config.window_days,
               [&world](net::BlockKey key) {
                 return world.PlannedAsnOf(key).value_or(0);
               },
               config.group_min_ips);
           for (const activity::GroupChurn& g : groups) {
             csv.AddRow({Fmt(std::uint64_t{g.group}),
                         Fmt(g.total_active_ips), Fmt(g.median_up_pct),
                         Fmt(g.median_down_pct)});
           }
         });

  render("eventsize.csv", {"mask", "up_count", "down_count"},
         [&](report::CsvWriter& csv) {
           activity::EventSizeHistogram up = activity::EventSizes(
               store, 0, config.window_days, config.window_days,
               2 * config.window_days, true);
           activity::EventSizeHistogram down = activity::EventSizes(
               store, 0, config.window_days, config.window_days,
               2 * config.window_days, false);
           for (std::size_t mask = 0; mask < up.by_mask.size(); ++mask) {
             csv.AddRow({Fmt(static_cast<std::uint64_t>(mask)),
                         Fmt(up.by_mask[mask]), Fmt(down.by_mask[mask])});
           }
         });

  render("patterns.csv", {"pattern", "blocks"}, [&](report::CsvWriter& csv) {
    // Count in declaration order of BlockPattern (PatternName order).
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    store.ForEach([&](net::BlockKey, const activity::ActivityMatrix& m) {
      std::string name = activity::PatternName(
          activity::ClassifyPattern(activity::ComputeFeatures(m)));
      for (auto& entry : counts) {
        if (entry.first == name) {
          ++entry.second;
          return;
        }
      }
      counts.emplace_back(std::move(name), 1);
    });
    std::sort(counts.begin(), counts.end());
    for (const auto& entry : counts) {
      csv.AddRow({entry.first, Fmt(entry.second)});
    }
  });

  render("stu_change.csv", {"block", "max_delta"},
         [&](report::CsvWriter& csv) {
           for (const activity::BlockStuChange& c :
                activity::MaxMonthlyStuChange(store, config.month_days)) {
             csv.AddRow({Fmt(std::uint64_t{c.key}), Fmt(c.max_delta)});
           }
         });

  render("block_metrics.csv", {"block", "filling_degree", "stu"},
         [&](report::CsvWriter& csv) {
           for (const activity::BlockMetrics& m :
                activity::ComputeBlockMetrics(store)) {
             csv.AddRow({Fmt(std::uint64_t{m.key}), Fmt(m.filling_degree),
                         Fmt(m.stu)});
           }
         });

  render("summary.csv", {"metric", "value"}, [&](report::CsvWriter& csv) {
    std::uint64_t active = store.CountActive(0, days);
    csv.AddRow({"seed", Fmt(config.seed)});
    csv.AddRow({"blocks", Fmt(std::uint64_t{store.BlockCount()})});
    csv.AddRow({"days", Fmt(days)});
    csv.AddRow({"active_addresses", Fmt(active)});
    csv.AddRow(
        {"active_blocks", Fmt(store.CountActiveBlocks(0, days))});
    // Seeded two-occasion Chapman estimate over the observed population —
    // same derivation as the sweep's ground-truth check.
    rng::Xoshiro256 g1{rng::Substream(config.seed, 0xCA97u, 1u)};
    rng::Xoshiro256 g2{rng::Substream(config.seed, 0xCA97u, 2u)};
    std::uint64_t n1 = 0, n2 = 0, m = 0;
    for (std::uint64_t i = 0; i < active; ++i) {
      bool in1 = g1.NextBool(0.35);
      bool in2 = g2.NextBool(0.35);
      if (in1) ++n1;
      if (in2) ++n2;
      if (in1 && in2) ++m;
    }
    csv.AddRow({"chapman_estimate", Fmt(stats::Chapman(n1, n2, m).population)});
  });

  std::sort(files.begin(), files.end(),
            [](const GoldenFile& a, const GoldenFile& b) {
              return a.name < b.name;
            });
  return files;
}

std::string RenderManifest(const std::vector<GoldenFile>& files) {
  std::ostringstream os;
  report::CsvWriter csv{os, {"file", "crc32c"}};
  for (const GoldenFile& f : files) {
    csv.AddRow({f.name, CrcHex(f.contents)});
  }
  return os.str();
}

void WriteGoldens(const std::string& dir, const GoldenConfig& config) {
  std::filesystem::create_directories(dir);
  std::vector<GoldenFile> files = RenderGoldens(config);
  for (const GoldenFile& f : files) {
    std::ofstream os{std::filesystem::path(dir) / f.name, std::ios::binary};
    os << f.contents;
  }
  std::ofstream manifest{std::filesystem::path(dir) / kManifestName,
                         std::ios::binary};
  manifest << RenderManifest(files);
}

const char* GoldenIssueKindName(GoldenIssue::Kind kind) {
  switch (kind) {
    case GoldenIssue::Kind::kMissing:
      return "missing";
    case GoldenIssue::Kind::kStale:
      return "stale-golden";
    case GoldenIssue::Kind::kRegression:
      return "regression";
    case GoldenIssue::Kind::kUnexpected:
      return "unexpected";
  }
  return "?";
}

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream is{path, std::ios::binary};
  if (!is) return false;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  *out = buffer.str();
  return true;
}

// MANIFEST.csv rows -> (file, crc hex), header skipped. The manifest is
// machine-written; unparseable rows surface as kStale on their files.
std::vector<std::pair<std::string, std::string>> ParseManifest(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> rows;
  std::istringstream is{text};
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {
      first = false;
      continue;
    }
    auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    rows.emplace_back(line.substr(0, comma), line.substr(comma + 1));
  }
  return rows;
}

}  // namespace

std::vector<GoldenIssue> VerifyGoldens(const std::string& dir,
                                       const GoldenConfig& config) {
  std::vector<GoldenIssue> issues;
  std::vector<GoldenFile> rendered = RenderGoldens(config);
  obs::GlobalRegistry()
      .GetCounter("check.golden_files_checked")
      .Add(rendered.size());

  std::string manifest_text;
  std::vector<std::pair<std::string, std::string>> manifest;
  if (!ReadFile(std::filesystem::path(dir) / kManifestName, &manifest_text)) {
    issues.push_back(GoldenIssue{GoldenIssue::Kind::kMissing, kManifestName,
                                 "run with --update-goldens to create"});
  } else {
    manifest = ParseManifest(manifest_text);
  }
  auto manifest_crc = [&](const std::string& name) -> const std::string* {
    for (const auto& row : manifest) {
      if (row.first == name) return &row.second;
    }
    return nullptr;
  };

  for (const GoldenFile& f : rendered) {
    std::string on_disk;
    if (!ReadFile(std::filesystem::path(dir) / f.name, &on_disk)) {
      issues.push_back(GoldenIssue{GoldenIssue::Kind::kMissing, f.name,
                                   "snapshot not on disk"});
      continue;
    }
    const std::string* committed = manifest_crc(f.name);
    std::string disk_crc = CrcHex(on_disk);
    if (committed != nullptr && *committed != disk_crc) {
      // The checkout itself disagrees with its manifest: the golden file
      // was edited or corrupted, independent of any code change.
      issues.push_back(GoldenIssue{
          GoldenIssue::Kind::kStale, f.name,
          "disk crc " + disk_crc + " != manifest crc " + *committed});
      continue;
    }
    if (committed == nullptr && !manifest.empty()) {
      issues.push_back(GoldenIssue{GoldenIssue::Kind::kUnexpected, f.name,
                                   "not listed in " +
                                       std::string(kManifestName)});
    }
    if (on_disk != f.contents) {
      issues.push_back(GoldenIssue{GoldenIssue::Kind::kRegression, f.name,
                                   FirstLineDiff(on_disk, f.contents)});
    }
  }

  // Manifest entries whose snapshot the code no longer renders.
  for (const auto& row : manifest) {
    bool known = false;
    for (const GoldenFile& f : rendered) {
      if (f.name == row.first) known = true;
    }
    if (!known) {
      issues.push_back(GoldenIssue{GoldenIssue::Kind::kUnexpected, row.first,
                                   "in manifest but no longer rendered"});
    }
  }
  return issues;
}

}  // namespace ipscope::check
