// check::Diff — structural comparison of optimized vs. reference outputs.
//
// A Diff accumulates scalar comparisons for one sweep case (one world /
// fault schedule / thread count). Every mismatch is recorded as a
// Divergence carrying full coordinates: which case, which series, which
// element, expected (reference) and actual (optimized) values — enough to
// reproduce the failure with no further digging. The first divergences are
// kept verbatim (capped, so a systematic break does not flood the report);
// every mismatch still counts toward `mismatches()` and the global
// `check.diffs_total` counter.
//
// Comparison semantics are exact, not tolerance-based: the optimized
// pipeline promises bit-identical results to a serial scan (see
// par::ParallelReduce), so the only legitimate double difference is *no*
// difference. The one wrinkle is NaN: NaN != NaN would turn an agreed-upon
// "undefined" into a divergence, so two NaNs compare equal here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ipscope::check {

struct Divergence {
  std::string case_name;   // e.g. "seed=11 fault=drop-days=2 threads=4"
  std::string series;      // e.g. "churn.up_pct"
  std::string coordinate;  // e.g. "pair=3"
  std::string expected;    // reference (oracle) value
  std::string actual;      // optimized (pipeline) value
};

// Round-trippable text form of a double for divergence reports: %.17g
// distinguishes any two distinct doubles, so "expected vs actual" never
// prints two equal-looking numbers.
std::string FormatValue(double v);
std::string FormatValue(std::int64_t v);
std::string FormatValue(std::uint64_t v);

class Diff {
 public:
  // Divergences beyond this many are counted but not stored.
  static constexpr std::size_t kMaxStored = 16;

  explicit Diff(std::string case_name);

  // Exact comparisons; `expected` is always the reference side. The double
  // overload treats two NaNs as equal (see header comment).
  void ExpectEq(const std::string& series, const std::string& coordinate,
                double expected, double actual);
  void ExpectEq(const std::string& series, const std::string& coordinate,
                std::int64_t expected, std::int64_t actual);
  void ExpectEq(const std::string& series, const std::string& coordinate,
                std::uint64_t expected, std::uint64_t actual);
  void ExpectEq(const std::string& series, const std::string& coordinate,
                const std::string& expected, const std::string& actual);

  // |actual - expected| <= tol, for the one genuinely statistical check
  // (capture–recapture vs. true population). NaN on either side diverges.
  void ExpectNear(const std::string& series, const std::string& coordinate,
                  double expected, double actual, double tol);

  bool ok() const { return mismatches_ == 0; }
  std::uint64_t mismatches() const { return mismatches_; }
  const std::string& case_name() const { return case_name_; }
  const std::vector<Divergence>& divergences() const { return divergences_; }

 private:
  void Record(const std::string& series, const std::string& coordinate,
              std::string expected, std::string actual);

  std::string case_name_;
  std::uint64_t mismatches_ = 0;
  std::vector<Divergence> divergences_;
};

}  // namespace ipscope::check
