// check::reference — independent oracle implementations of the core metrics.
//
// Every function here is a deliberately naive, serial, O(n·d) re-derivation
// of a paper metric, written directly from the formulas in PAPER.md /
// DESIGN.md and sharing *no computation code* with src/activity/ or
// src/analysis/: no DayBits popcount helpers, no UnionOver, no par::Pool,
// no stats:: quantiles. The only shared surface is the data itself —
// ActivityStore/ActivityMatrix accessors (`Get`, `days`, `DayCovered`,
// `ForEach`) — because both sides must read the same observations.
//
// The point is differential testing ("Lost in Space"-style cross-
// validation): the optimized pipeline (bit-manipulating, parallel,
// merge-order-sensitive) and these oracles must agree exactly on every
// world, seed, fault schedule, and thread count. check::Diff performs the
// comparison; `ipscope_cli check` drives the sweep.
//
// Keep these slow and obvious. Any optimization applied here defeats the
// purpose — the reference must stay near-transcriptions of the formulas:
//   * daily active count:   |{(h) : active(d, h)}| per day d
//   * window active set:    W_i = union of day sets over the window
//   * up events (i→i+1):    |W_{i+1} \ W_i|, up% = 100·|W_{i+1}\W_i|/|W_{i+1}|
//   * down events:          |W_i \ W_{i+1}|, down% over |W_i|
//   * filling degree:       |union over window| per /24
//   * STU:                  active (addr, day) pairs / (256 · covered days)
//   * event-size mask:      smallest L s.t. the aligned /L around the event
//                           address holds no member of the reference window
//   * change detection:     max-magnitude consecutive monthly STU delta
//   * Fig 6 classification: feature thresholds re-derived from raw bits
//   * capture–recapture:    Chapman N* = (n1+1)(n2+1)/(m+1) − 1
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "activity/store.h"

namespace ipscope::check {

// --- Window active sets ---------------------------------------------------

// Every address active at least once in [day_first, day_last), as a sorted
// vector of 32-bit address values — the naive union underlying churn,
// event-size, and capture–recapture ground truth.
std::vector<std::uint32_t> RefActiveAddresses(
    const activity::ActivityStore& store, int day_first, int day_last);

// --- Daily series (Fig 4a) ------------------------------------------------

// Total active addresses per day (plain sums; uncovered days read 0 because
// their rows are cleared by construction).
std::vector<std::int64_t> RefDailyActiveCounts(
    const activity::ActivityStore& store);

// Daily up/down event counts with the -1 "no data" sentinel on pairs
// touching an uncovered day, mirroring activity::DailyEventSeries.
struct RefDailyEvents {
  std::vector<std::int64_t> active;  // per day; -1 where uncovered
  std::vector<std::int64_t> up;      // per day pair; -1 where either end
  std::vector<std::int64_t> down;    //   day is uncovered
};
RefDailyEvents RefDailyEventSeries(const activity::ActivityStore& store);

// --- Window churn (Fig 4b) ------------------------------------------------

struct RefChurn {
  std::vector<int> pairs;        // reported window-pair indices
  std::vector<double> up_pct;    // one per reported pair
  std::vector<double> down_pct;  // one per reported pair
};
RefChurn RefWindowChurn(const activity::ActivityStore& store,
                        int window_days);

// --- Appear/disappear vs the first window (Fig 4c) ------------------------

struct RefVersusFirst {
  std::vector<std::uint64_t> appear;
  std::vector<std::uint64_t> disappear;
  std::vector<std::uint64_t> active;
  std::vector<bool> window_covered;
};
RefVersusFirst RefVersusFirstSeries(const activity::ActivityStore& store,
                                    int window_days);

// --- Per-group churn medians (Fig 5a) -------------------------------------

struct RefGroupChurn {
  std::uint32_t group = 0;
  std::uint64_t total_active_ips = 0;
  double median_up_pct = 0.0;
  double median_down_pct = 0.0;
};
// `group_of` must match the mapping given to ChurnAnalyzer::PerGroupChurn.
RefGroupChurn const* FindRefGroup(const std::vector<RefGroupChurn>& groups,
                                  std::uint32_t group);
std::vector<RefGroupChurn> RefPerGroupChurn(
    const activity::ActivityStore& store, int window_days,
    const std::function<std::uint32_t(net::BlockKey)>& group_of,
    std::uint64_t min_active_ips);

// --- Per-block metrics (Fig 8b) -------------------------------------------

struct RefBlockMetric {
  net::BlockKey key = 0;
  int filling_degree = 0;
  double stu = 0.0;
};
std::vector<RefBlockMetric> RefBlockMetrics(
    const activity::ActivityStore& store);

// --- Event sizes (Fig 5b) -------------------------------------------------

struct RefEventSizeHistogram {
  std::array<std::uint64_t, 33> by_mask{};
  std::uint64_t total = 0;
};
// Tags every up (or down) event between the two windows with the smallest
// isolating mask length, by scanning mask lengths 0..32 per event against a
// sorted list of the reference window's active addresses.
RefEventSizeHistogram RefEventSizes(const activity::ActivityStore& store,
                                    int w0_first, int w0_last, int w1_first,
                                    int w1_last, bool up);

// --- Change detection (Fig 8a) --------------------------------------------

struct RefStuChange {
  net::BlockKey key = 0;
  double max_delta = 0.0;
};
std::vector<RefStuChange> RefMaxMonthlyStuChange(
    const activity::ActivityStore& store, int month_days);

// --- Fig 6 pattern classification -----------------------------------------

// Per-pattern block counts keyed by activity::PatternName strings, computed
// from an independent transcription of the feature formulas and the
// documented thresholds. A threshold change on either side is a divergence.
std::vector<std::pair<std::string, std::uint64_t>> RefPatternCounts(
    const activity::ActivityStore& store);

// --- Capture–recapture (§3.1 / §8 baseline) -------------------------------

// Chapman's bias-corrected two-sample estimator, transcribed directly:
// N* = (n1+1)(n2+1)/(m+1) − 1.
double RefChapman(std::uint64_t n1, std::uint64_t n2, std::uint64_t m);

}  // namespace ipscope::check
