#include "check/diff.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/registry.h"

namespace ipscope::check {

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatValue(std::int64_t v) { return std::to_string(v); }
std::string FormatValue(std::uint64_t v) { return std::to_string(v); }

Diff::Diff(std::string case_name) : case_name_(std::move(case_name)) {}

void Diff::Record(const std::string& series, const std::string& coordinate,
                  std::string expected, std::string actual) {
  ++mismatches_;
  obs::GlobalRegistry().GetCounter("check.diffs_total").Add(1);
  if (divergences_.size() >= kMaxStored) return;
  divergences_.push_back(Divergence{case_name_, series, coordinate,
                                    std::move(expected), std::move(actual)});
}

void Diff::ExpectEq(const std::string& series, const std::string& coordinate,
                    double expected, double actual) {
  bool both_nan = std::isnan(expected) && std::isnan(actual);
  if (expected == actual || both_nan) return;
  Record(series, coordinate, FormatValue(expected), FormatValue(actual));
}

void Diff::ExpectEq(const std::string& series, const std::string& coordinate,
                    std::int64_t expected, std::int64_t actual) {
  if (expected == actual) return;
  Record(series, coordinate, FormatValue(expected), FormatValue(actual));
}

void Diff::ExpectEq(const std::string& series, const std::string& coordinate,
                    std::uint64_t expected, std::uint64_t actual) {
  if (expected == actual) return;
  Record(series, coordinate, FormatValue(expected), FormatValue(actual));
}

void Diff::ExpectEq(const std::string& series, const std::string& coordinate,
                    const std::string& expected, const std::string& actual) {
  if (expected == actual) return;
  Record(series, coordinate, expected, actual);
}

void Diff::ExpectNear(const std::string& series, const std::string& coordinate,
                      double expected, double actual, double tol) {
  if (std::abs(actual - expected) <= tol) return;  // false for NaN operands
  Record(series, coordinate,
         FormatValue(expected) + " (tol " + FormatValue(tol) + ")",
         FormatValue(actual));
}

}  // namespace ipscope::check
