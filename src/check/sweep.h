// check sweep — differential cases: optimized pipeline vs. check::reference.
//
// One CaseSpec describes one randomized world: simulation seed, world size,
// thread count, and an optional fault::Schedule spec applied to the store
// before analysis (so both sides see the same coverage gaps). RunCase
// builds the store once, runs every optimized analysis and its oracle
// counterpart, and returns the Diff. RunSweep drives a list of cases and
// aggregates.
//
// The comparisons are exact (see diff.h); the single tolerance check is
// the capture–recapture estimate against the simulator's true active
// population, which is statistical by nature.
//
// `perturb` exists so the harness can prove it would catch a real bug: it
// flips one activity bit on the copy of the store handed to the optimized
// side only, which must surface as divergences. A sweep with perturbation
// that reports zero divergences is itself a harness failure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "check/diff.h"

namespace ipscope::check {

struct CaseSpec {
  std::uint64_t seed = 1;
  int blocks = 300;     // sim::WorldConfig::target_client_blocks
  int threads = 1;      // shared-pool size for the optimized side
  std::string fault;    // fault::Schedule spec text; "" = fully covered
  int window_days = 7;
  int month_days = 28;
  // Per-group churn filter, scaled down from the paper's 1000 because the
  // sweep worlds are small.
  std::uint64_t group_min_ips = 64;
  bool perturb = false;

  std::string Name() const;
};

// Runs one differential case; increments check.cases_run. Throws
// std::invalid_argument on an unparseable fault spec.
Diff RunCase(const CaseSpec& spec);

struct SweepResult {
  std::uint64_t cases = 0;
  std::uint64_t mismatches = 0;
  std::vector<Divergence> divergences;  // capped per case; see Diff
};

SweepResult RunSweep(std::span<const CaseSpec> specs);

// The default sweep matrix: `seeds` x {1, `max_threads`} x {no fault,
// "drop-days=2"}.
std::vector<CaseSpec> DefaultSweep(std::span<const std::uint64_t> seeds,
                                   int blocks, int max_threads);

}  // namespace ipscope::check
