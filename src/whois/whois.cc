#include "whois/whois.h"

#include <algorithm>

#include "geo/country.h"

namespace ipscope::whois {

std::string OrgTypeName(sim::AsType type) {
  switch (type) {
    case sim::AsType::kResidentialIsp:
      return "residential-isp";
    case sim::AsType::kCellular:
      return "cellular-operator";
    case sim::AsType::kUniversity:
      return "academic";
    case sim::AsType::kEnterprise:
      return "enterprise";
    case sim::AsType::kHosting:
      return "hosting-provider";
    case sim::AsType::kTransit:
      return "transit-carrier";
  }
  return "unknown";
}

WhoisDirectory::WhoisDirectory(const sim::World& world) : world_(world) {
  for (std::uint32_t as_index = 0; as_index < world.ases().size();
       ++as_index) {
    for (std::uint32_t block_index :
         world.ases()[as_index].block_indices) {
      entries_.push_back(Entry{
          net::BlockKeyOf(world.blocks()[block_index].block), as_index});
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
}

std::optional<WhoisRecord> WhoisDirectory::Lookup(net::BlockKey key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, net::BlockKey k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return std::nullopt;
  const sim::AsPlan& as = world_.ases()[it->as_index];
  WhoisRecord record;
  record.asn = as.asn;
  record.org_type = OrgTypeName(as.type);
  record.org_name = "AS" + std::to_string(as.asn) + " " +
                    (as.type == sim::AsType::kCellular ? "Mobile Networks"
                     : as.type == sim::AsType::kResidentialIsp
                         ? "Broadband Services"
                         : "Network Operations");
  if (as.country >= 0) {
    record.country = std::string{
        geo::Countries()[static_cast<std::size_t>(as.country)].code};
  }
  return record;
}

}  // namespace ipscope::whois
