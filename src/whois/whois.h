// WHOIS directory (paper §6.3): the paper attributes the high-UA-diversity
// gateway blocks by manually inspecting WHOIS records ("more than half of
// these blocks belong to ISPs located in Asia... the majority is in use by
// cellular operators"). This module synthesizes the registry's view: per
// allocated block, the holding organization's name, type, and country —
// observational data the analysis layer may use without touching simulator
// ground truth.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "sim/world.h"

namespace ipscope::whois {

struct WhoisRecord {
  std::string org_name;     // e.g. "AS1042 Cellular Holdings"
  std::string country;      // ISO code, e.g. "CN"
  std::string org_type;     // "cellular-operator", "residential-isp", ...
  std::uint32_t asn = 0;
};

class WhoisDirectory {
 public:
  explicit WhoisDirectory(const sim::World& world);

  // The registration record covering a /24, or nullopt for unallocated
  // space.
  std::optional<WhoisRecord> Lookup(net::BlockKey key) const;

 private:
  struct Entry {
    net::BlockKey key;
    std::uint32_t as_index;
  };
  const sim::World& world_;
  std::vector<Entry> entries_;  // sorted by key
};

// The org type string for an AS type.
std::string OrgTypeName(sim::AsType type);

}  // namespace ipscope::whois
