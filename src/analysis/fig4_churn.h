// Fig 4: volatility of address activity.
//  4a: daily active counts with daily up/down event counts.
//  4b: up/down percentages across aggregation windows (1..28 days) —
//      churn does not decay to zero at coarse windows (plateau ~5%).
//  4c: appear/disappear relative to the first week across the year (±25%).
#pragma once

#include <iosfwd>
#include <vector>

#include "activity/churn.h"

namespace ipscope::analysis {

struct Fig4Result {
  activity::DailyEventSeries daily;                  // from the daily store
  std::vector<activity::WindowChurnSeries> windows;  // sizes 1,2,4,7,14,28
  activity::VersusFirstSeries yearly;                // from the weekly store
};

Fig4Result RunFig4(const activity::ActivityStore& daily_store,
                   const activity::ActivityStore& weekly_store);

void PrintFig4(const Fig4Result& result, std::ostream& os);

}  // namespace ipscope::analysis
