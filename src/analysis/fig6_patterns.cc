#include "analysis/fig6_patterns.h"

#include <ostream>

#include "report/table.h"
#include "report/textplot.h"

namespace ipscope::analysis {

namespace {

// Ground-truth flavour of a client block (or -1 when not a stable client).
int TruthIndex(const sim::BlockPlan& plan) {
  if (plan.HasReconfiguration() || plan.active_from > 0 ||
      plan.active_until < 364) {
    return -1;  // not "in situ" — excluded from classifier validation
  }
  switch (plan.base.kind) {
    case sim::PolicyKind::kStatic:
      return 0;
    case sim::PolicyKind::kDynamicShort:
      return plan.base.rotating ? 1 : 2;
    case sim::PolicyKind::kDynamicLong:
      return 3;
    case sim::PolicyKind::kCgnGateway:
      return 4;
    default:
      return -1;
  }
}

// The classifier output we consider "correct" for each truth flavour.
bool Matches(int truth, activity::BlockPattern pattern) {
  switch (truth) {
    case 0:
      return pattern == activity::BlockPattern::kStaticSparse;
    case 1:
    case 2:
      return pattern == activity::BlockPattern::kDynamicShortLease;
    case 3:
      return pattern == activity::BlockPattern::kDynamicLongLease;
    case 4:
      return pattern == activity::BlockPattern::kFullyUtilized;
    default:
      return false;
  }
}

}  // namespace

Fig6Result RunFig6(const sim::World& world,
                   const activity::ActivityStore& daily_store) {
  Fig6Result out;
  std::uint64_t total = 0, matched = 0;
  std::array<bool, Fig6Result::kTruthKinds> have_exemplar{};
  bool have_reconfig_exemplar = false;

  for (const sim::BlockPlan& plan : world.blocks()) {
    net::BlockKey key = net::BlockKeyOf(plan.block);
    const activity::ActivityMatrix* m = daily_store.Find(key);
    if (m == nullptr) continue;

    // Fig 7 exemplar: a reconfigured block.
    if (plan.HasReconfiguration() && !have_reconfig_exemplar &&
        m->FillingDegree() > 32) {
      Fig6Result::Exemplar ex;
      ex.key = key;
      ex.truth = std::string{"reconfigured: "} +
                 sim::PolicyKindName(plan.base.kind) + " -> " +
                 sim::PolicyKindName(plan.events[0].params.kind);
      ex.features = activity::ComputeFeatures(*m);
      ex.classified = activity::ClassifyPattern(ex.features);
      ex.rendering = report::RenderActivityMatrix(*m);
      out.exemplars.push_back(std::move(ex));
      have_reconfig_exemplar = true;
    }

    int truth = TruthIndex(plan);
    if (truth < 0) continue;
    activity::PatternFeatures features = activity::ComputeFeatures(*m);
    activity::BlockPattern pattern = activity::ClassifyPattern(features);
    out.confusion[static_cast<std::size_t>(truth)]
                 [static_cast<std::size_t>(pattern)] += 1;
    ++total;
    if (Matches(truth, pattern)) ++matched;

    if (!have_exemplar[static_cast<std::size_t>(truth)] &&
        features.filling_degree > 16) {
      Fig6Result::Exemplar ex;
      ex.key = key;
      ex.truth = Fig6Result::kTruthNames[truth];
      ex.features = features;
      ex.classified = pattern;
      ex.rendering = report::RenderActivityMatrix(*m);
      out.exemplars.push_back(std::move(ex));
      have_exemplar[static_cast<std::size_t>(truth)] = true;
    }
  }
  out.overall_agreement =
      total ? static_cast<double>(matched) / static_cast<double>(total) : 0.0;
  return out;
}

void PrintFig6(const Fig6Result& result, std::ostream& os,
               bool render_exemplars) {
  os << "=== Fig 6/7: block activity patterns ===\n";
  for (const auto& ex : result.exemplars) {
    os << "\n-- " << ex.truth << " (FD=" << ex.features.filling_degree
       << ", STU=" << report::FormatDouble(ex.features.stu)
       << ", classified: " << activity::PatternName(ex.classified) << ")\n";
    if (render_exemplars) {
      for (const std::string& line : ex.rendering) os << "  " << line << "\n";
    }
  }

  os << "\n=== Pattern classifier vs ground truth (stable client blocks) "
        "===\n";
  report::Table t({"truth \\ classified", "inactive", "static", "short-lease",
                   "long-lease", "fully-util", "mixed"});
  for (int truth = 0; truth < Fig6Result::kTruthKinds; ++truth) {
    std::vector<std::string> row{Fig6Result::kTruthNames[truth]};
    for (int p = 0; p < 6; ++p) {
      row.push_back(report::FormatCount(
          result.confusion[static_cast<std::size_t>(truth)]
                          [static_cast<std::size_t>(p)]));
    }
    t.AddRow(std::move(row));
  }
  t.Print(os);
  os << "overall agreement: "
     << report::FormatPercent(result.overall_agreement)
     << " (validation unavailable to the original study)\n";
}

}  // namespace ipscope::analysis
