#include "analysis/fig6_patterns.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "par/pool.h"
#include "report/table.h"
#include "report/textplot.h"

namespace ipscope::analysis {

namespace {

// Ground-truth flavour of a client block (or -1 when not a stable client).
int TruthIndex(const sim::BlockPlan& plan) {
  if (plan.HasReconfiguration() || plan.active_from > 0 ||
      plan.active_until < 364) {
    return -1;  // not "in situ" — excluded from classifier validation
  }
  switch (plan.base.kind) {
    case sim::PolicyKind::kStatic:
      return 0;
    case sim::PolicyKind::kDynamicShort:
      return plan.base.rotating ? 1 : 2;
    case sim::PolicyKind::kDynamicLong:
      return 3;
    case sim::PolicyKind::kCgnGateway:
      return 4;
    case sim::PolicyKind::kUnused:
    case sim::PolicyKind::kCrawlerBots:
    case sim::PolicyKind::kServerFarm:
    case sim::PolicyKind::kRouterInfra:
    case sim::PolicyKind::kMiddlebox:
      return -1;  // not part of the Fig 6 ground-truth classes
  }
  return -1;
}

// The classifier output we consider "correct" for each truth flavour.
bool Matches(int truth, activity::BlockPattern pattern) {
  switch (truth) {
    case 0:
      return pattern == activity::BlockPattern::kStaticSparse;
    case 1:
    case 2:
      return pattern == activity::BlockPattern::kDynamicShortLease;
    case 3:
      return pattern == activity::BlockPattern::kDynamicLongLease;
    case 4:
      return pattern == activity::BlockPattern::kFullyUtilized;
    default:  // lint: default(switch is over the int truth id, not an enum; -1 marks excluded blocks and any unknown id is factually a mismatch)
      return false;
  }
}

}  // namespace

namespace {

constexpr std::size_t kNoBlock = std::numeric_limits<std::size_t>::max();

// Per-shard classification tallies. Exemplars are not materialized in the
// shards — only the lowest qualifying block index per exemplar slot is
// tracked, and the in-order merge keeps the overall lowest. Since the
// serial scan picked the *first* qualifying block in world order, building
// the exemplars from these winners afterwards reproduces its output
// exactly for any thread count.
struct Fig6Acc {
  std::array<std::array<std::uint64_t, 6>, Fig6Result::kTruthKinds>
      confusion{};
  std::uint64_t total = 0, matched = 0;
  std::size_t reconfig_idx = kNoBlock;  // Fig 7 exemplar candidate
  std::array<std::size_t, Fig6Result::kTruthKinds> truth_idx{};

  Fig6Acc() { truth_idx.fill(kNoBlock); }

  void Merge(const Fig6Acc& other) {
    for (std::size_t t = 0; t < confusion.size(); ++t) {
      for (std::size_t p = 0; p < confusion[t].size(); ++p) {
        confusion[t][p] += other.confusion[t][p];
      }
    }
    total += other.total;
    matched += other.matched;
    reconfig_idx = std::min(reconfig_idx, other.reconfig_idx);
    for (std::size_t t = 0; t < truth_idx.size(); ++t) {
      truth_idx[t] = std::min(truth_idx[t], other.truth_idx[t]);
    }
  }
};

}  // namespace

Fig6Result RunFig6(const sim::World& world,
                   const activity::ActivityStore& daily_store) {
  Fig6Result out;
  std::span<const sim::BlockPlan> blocks = world.blocks();

  Fig6Acc acc = par::ParallelReduce(
      std::size_t{0}, blocks.size(), Fig6Acc{},
      [&](Fig6Acc& a, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          const sim::BlockPlan& plan = blocks[i];
          const activity::ActivityMatrix* m =
              daily_store.Find(net::BlockKeyOf(plan.block));
          if (m == nullptr) continue;

          if (plan.HasReconfiguration() && a.reconfig_idx == kNoBlock &&
              m->FillingDegree() > 32) {
            a.reconfig_idx = i;
          }

          int truth = TruthIndex(plan);
          if (truth < 0) continue;
          activity::PatternFeatures features = activity::ComputeFeatures(*m);
          activity::BlockPattern pattern = activity::ClassifyPattern(features);
          a.confusion[static_cast<std::size_t>(truth)]
                     [static_cast<std::size_t>(pattern)] += 1;
          ++a.total;
          if (Matches(truth, pattern)) ++a.matched;

          if (a.truth_idx[static_cast<std::size_t>(truth)] == kNoBlock &&
              features.filling_degree > 16) {
            a.truth_idx[static_cast<std::size_t>(truth)] = i;
          }
        }
      },
      [](Fig6Acc& dst, Fig6Acc&& part) { dst.Merge(part); },
      /*grain=*/16);

  // Re-derive the winning exemplars (a handful of blocks at most) and emit
  // them in ascending block-index order — the order the serial scan
  // encountered, and appended, them.
  std::vector<std::size_t> winners;
  if (acc.reconfig_idx != kNoBlock) winners.push_back(acc.reconfig_idx);
  for (std::size_t idx : acc.truth_idx) {
    if (idx != kNoBlock) winners.push_back(idx);
  }
  std::sort(winners.begin(), winners.end());
  for (std::size_t i : winners) {
    const sim::BlockPlan& plan = blocks[i];
    net::BlockKey key = net::BlockKeyOf(plan.block);
    const activity::ActivityMatrix* m = daily_store.Find(key);
    Fig6Result::Exemplar ex;
    ex.key = key;
    if (i == acc.reconfig_idx) {
      ex.truth = std::string{"reconfigured: "} +
                 sim::PolicyKindName(plan.base.kind) + " -> " +
                 sim::PolicyKindName(plan.events[0].params.kind);
    } else {
      ex.truth = Fig6Result::kTruthNames[TruthIndex(plan)];
    }
    ex.features = activity::ComputeFeatures(*m);
    ex.classified = activity::ClassifyPattern(ex.features);
    ex.rendering = report::RenderActivityMatrix(*m);
    out.exemplars.push_back(std::move(ex));
  }

  out.confusion = acc.confusion;
  out.overall_agreement =
      acc.total ? static_cast<double>(acc.matched) /
                      static_cast<double>(acc.total)
                : 0.0;
  return out;
}

void PrintFig6(const Fig6Result& result, std::ostream& os,
               bool render_exemplars) {
  os << "=== Fig 6/7: block activity patterns ===\n";
  for (const auto& ex : result.exemplars) {
    os << "\n-- " << ex.truth << " (FD=" << ex.features.filling_degree
       << ", STU=" << report::FormatDouble(ex.features.stu)
       << ", classified: " << activity::PatternName(ex.classified) << ")\n";
    if (render_exemplars) {
      for (const std::string& line : ex.rendering) os << "  " << line << "\n";
    }
  }

  os << "\n=== Pattern classifier vs ground truth (stable client blocks) "
        "===\n";
  report::Table t({"truth \\ classified", "inactive", "static", "short-lease",
                   "long-lease", "fully-util", "mixed"});
  for (int truth = 0; truth < Fig6Result::kTruthKinds; ++truth) {
    std::vector<std::string> row{Fig6Result::kTruthNames[truth]};
    for (int p = 0; p < 6; ++p) {
      row.push_back(report::FormatCount(
          result.confusion[static_cast<std::size_t>(truth)]
                          [static_cast<std::size_t>(p)]));
    }
    t.AddRow(std::move(row));
  }
  t.Print(os);
  os << "overall agreement: "
     << report::FormatPercent(result.overall_agreement)
     << " (validation unavailable to the original study)\n";
}

}  // namespace ipscope::analysis
