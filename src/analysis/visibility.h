// Fig 2: visibility of the CDN observatory vs active ICMP scanning.
//
// Fig 2a compares the October CDN-active set against the union of 8 ICMP
// scan snapshots, at four granularities (ASes, BGP prefixes, /24s, IPs).
// Fig 2b classifies the ICMP-only addresses using port scans (servers) and
// traceroute campaigns (routers).
#pragma once

#include <cstdint>
#include <iosfwd>

#include "activity/store.h"
#include "bgp/table.h"
#include "sim/world.h"

namespace ipscope::analysis {

struct VisibilitySplit {
  std::uint64_t cdn_only = 0;
  std::uint64_t both = 0;
  std::uint64_t icmp_only = 0;

  std::uint64_t total() const { return cdn_only + both + icmp_only; }
  double CdnOnlyFraction() const {
    return total() ? static_cast<double>(cdn_only) / total() : 0.0;
  }
  double IcmpOnlyFraction() const {
    return total() ? static_cast<double>(icmp_only) / total() : 0.0;
  }
};

struct IcmpOnlyClassification {
  std::uint64_t server = 0;
  std::uint64_t server_router = 0;
  std::uint64_t router = 0;
  std::uint64_t unknown = 0;
};

struct VisibilityResult {
  VisibilitySplit ips;
  VisibilitySplit blocks;
  VisibilitySplit prefixes;
  VisibilitySplit ases;
  IcmpOnlyClassification icmp_only_class;
  // Fraction of CDN-active addresses invisible to ICMP (the paper's ">40%
  // of hosts missed by active measurement").
  double cdn_missed_by_icmp = 0.0;
};

// `daily_store` must be the daily observatory's store; the comparison month
// is October 2015 (steps 45..76 of the daily period).
VisibilityResult RunVisibility(const sim::World& world,
                               const activity::ActivityStore& daily_store,
                               const bgp::RoutingFeed& feed);

void PrintVisibility(const VisibilityResult& result, std::ostream& os);

}  // namespace ipscope::analysis
