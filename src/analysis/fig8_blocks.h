// Fig 8: spatio-temporal aggregate views of block activity.
//  8a: CDF of the max month-to-month STU change per /24; major-change split
//      at |delta| > 0.25 (paper: 9.8% major). We additionally validate the
//      detector against ground-truth reconfiguration events.
//  8b: filling-degree CDFs for rDNS-tagged static vs dynamic vs all blocks.
//  8c: STU histogram for blocks with FD > 250 (likely dynamic pools).
// Plus the Section 5.4 "potential utilization" estimates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "activity/change.h"
#include "activity/metrics.h"
#include "activity/store.h"
#include "sim/world.h"
#include "stats/histogram.h"

namespace ipscope::analysis {

struct Fig8Result {
  // 8a
  std::vector<activity::BlockStuChange> changes;
  double major_fraction = 0.0;
  double detector_precision = 0.0;  // major-change blocks truly reconfigured
  double detector_recall = 0.0;     // reconfigured blocks flagged major

  // 8b
  std::uint64_t tagged_static = 0;
  std::uint64_t tagged_dynamic = 0;
  std::vector<double> fd_static;
  std::vector<double> fd_dynamic;
  std::vector<double> fd_all;
  double static_fd_below_64 = 0.0;    // paper: ~75%
  double dynamic_fd_above_250 = 0.0;  // paper: >80%
  double all_fd_above_250 = 0.0;      // paper: ~50%
  double all_fd_below_64 = 0.0;       // paper: ~30%

  // 8c
  stats::Histogram stu_high_fd{0.0, 1.0, 10};
  std::uint64_t high_fd_blocks = 0;
  double high_fd_stu_above_80 = 0.0;
  double high_fd_stu_100 = 0.0;
  double high_fd_stu_below_60 = 0.0;
  double high_fd_stu_below_20 = 0.0;

  // Fig 7b extension: spatial (half-block) change detection, validated
  // against ground-truth partial reconfigurations.
  std::uint64_t spatial_flagged = 0;
  double spatial_precision = 0.0;
  double spatial_recall = 0.0;
};

Fig8Result RunFig8(const sim::World& world,
                   const activity::ActivityStore& daily_store);

void PrintFig8(const Fig8Result& result, std::ostream& os);

}  // namespace ipscope::analysis
