// Table 2: year-scale appearance/disappearance of addresses.
//
// Compares the union of active addresses in Jan/Feb 2015 against Nov/Dec
// 2015: how many addresses appeared/disappeared, what fraction of them sit
// in /24s that appeared/disappeared wholesale, and what the corresponding
// BGP state transitions were. Also reproduces the paper's §4.3 per-AS
// concentration analysis (top-10 AS share, appear/disappear overlap).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "activity/store.h"
#include "bgp/table.h"

namespace ipscope::analysis {

struct Table2Result {
  std::uint64_t appear_total = 0;
  std::uint64_t disappear_total = 0;
  double appear_whole_block_frac = 0.0;
  double disappear_whole_block_frac = 0.0;

  struct BgpBreakdown {
    double no_change = 0.0;
    double origin_change = 0.0;
    double announce_withdraw = 0.0;
  };
  BgpBreakdown appear_bgp;
  BgpBreakdown disappear_bgp;

  // §4.3: concentration of long-term volatility.
  std::uint64_t volatile_ases = 0;        // ASes with any appear/disappear
  double top10_appear_share = 0.0;        // share of appear IPs in top 10 ASes
  double top10_disappear_share = 0.0;
  int top10_overlap = 0;                  // ASes in both top-10 lists
};

// `weekly_store` is the 52-week store; early = weeks 0..8, late = 43..51.
Table2Result RunTable2(const activity::ActivityStore& weekly_store,
                       const bgp::RoutingFeed& feed);

void PrintTable2(const Table2Result& result, std::ostream& os);

}  // namespace ipscope::analysis
