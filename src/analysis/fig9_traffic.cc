#include "analysis/fig9_traffic.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "report/table.h"
#include "report/textplot.h"
#include "stats/quantile.h"
#include "stats/summary.h"

namespace ipscope::analysis {

namespace {

// Log-spaced histogram of per-IP weekly hit volumes: enough resolution to
// read off the top-decile share without storing every per-IP value.
class HitVolumeHistogram {
 public:
  void Add(std::uint64_t hits) {
    int bin = BinOf(hits);
    counts_[static_cast<std::size_t>(bin)] += 1;
    sums_[static_cast<std::size_t>(bin)] += hits;
    total_ips_ += 1;
    total_hits_ += hits;
  }

  // Traffic share of the `fraction` of IPs with the most hits.
  double TopShare(double fraction) const {
    if (total_ips_ == 0 || total_hits_ == 0) return 0.0;
    double want = fraction * static_cast<double>(total_ips_);
    double got_ips = 0.0;
    double got_hits = 0.0;
    for (int b = kBins - 1; b >= 0; --b) {
      auto bi = static_cast<std::size_t>(b);
      if (counts_[bi] == 0) continue;
      double take =
          std::min(static_cast<double>(counts_[bi]), want - got_ips);
      got_hits += static_cast<double>(sums_[bi]) * take /
                  static_cast<double>(counts_[bi]);
      got_ips += take;
      if (got_ips >= want) break;
    }
    return got_hits / static_cast<double>(total_hits_);
  }

 private:
  static constexpr int kBins = 1400;
  static int BinOf(std::uint64_t hits) {
    int b = static_cast<int>(std::log1p(static_cast<double>(hits)) * 60.0);
    return std::clamp(b, 0, kBins - 1);
  }
  std::uint64_t counts_[kBins] = {};
  std::uint64_t sums_[kBins] = {};
  std::uint64_t total_ips_ = 0;
  std::uint64_t total_hits_ = 0;
};

}  // namespace

Fig9Result RunFig9(const cdn::Observatory& daily,
                   const cdn::Observatory& weekly) {
  Fig9Result out;
  const int days = daily.steps();
  out.bins.resize(static_cast<std::size_t>(days));
  // Per-bin collections of per-IP median daily hits.
  std::vector<std::vector<double>> medians(static_cast<std::size_t>(days));
  std::vector<double> per_ip_totals;

  daily.ForEachBlockHits([&](const sim::BlockPlan&,
                             const activity::ActivityMatrix& m,
                             std::span<const std::uint32_t> hits) {
    for (int host = 0; host < 256; ++host) {
      // Gather this address's active-day hit counts.
      std::uint32_t day_hits[512];
      int n = 0;
      std::uint64_t total = 0;
      for (int d = 0; d < days; ++d) {
        std::uint32_t h = hits[static_cast<std::size_t>(d) * 256 +
                               static_cast<std::size_t>(host)];
        if (m.Get(d, host)) {
          day_hits[n++] = h;
          total += h;
        }
      }
      if (n == 0) continue;
      auto mid = static_cast<std::size_t>(n / 2);
      std::nth_element(day_hits, day_hits + mid, day_hits + n);
      double median = day_hits[mid];
      if (n % 2 == 0) {
        std::uint32_t below =
            *std::max_element(day_hits, day_hits + mid);
        median = (median + below) / 2.0;
      }
      auto bin = static_cast<std::size_t>(n - 1);
      out.bins[bin].ips += 1;
      out.bins[bin].total_hits += total;
      medians[bin].push_back(median);
      per_ip_totals.push_back(static_cast<double>(total));
    }
  });

  std::uint64_t total_ips = 0, total_hits = 0;
  for (const auto& b : out.bins) {
    total_ips += b.ips;
    total_hits += b.total_hits;
  }
  const double qs[] = {0.05, 0.25, 0.5, 0.75, 0.95};
  double cum_ips = 0, cum_hits = 0;
  for (int d = 0; d < days; ++d) {
    auto di = static_cast<std::size_t>(d);
    if (!medians[di].empty()) {
      auto quantiles = stats::Quantiles(std::move(medians[di]), qs);
      out.bins[di].p5 = quantiles[0];
      out.bins[di].p25 = quantiles[1];
      out.bins[di].median = quantiles[2];
      out.bins[di].p75 = quantiles[3];
      out.bins[di].p95 = quantiles[4];
    }
    cum_ips += static_cast<double>(out.bins[di].ips);
    cum_hits += static_cast<double>(out.bins[di].total_hits);
    out.cum_ip_frac.push_back(total_ips ? cum_ips / total_ips : 0.0);
    out.cum_traffic_frac.push_back(total_hits ? cum_hits / total_hits : 0.0);
  }
  if (total_ips > 0) {
    out.all_days_ip_frac =
        static_cast<double>(out.bins.back().ips) / total_ips;
    out.all_days_traffic_frac =
        static_cast<double>(out.bins.back().total_hits) / total_hits;
  }

  out.traffic_gini = stats::Gini(std::move(per_ip_totals));

  // ---- 9c: weekly top-10% share ----
  const int weeks = weekly.steps();
  std::vector<HitVolumeHistogram> per_week(static_cast<std::size_t>(weeks));
  weekly.ForEachBlockHits([&](const sim::BlockPlan&,
                              const activity::ActivityMatrix& m,
                              std::span<const std::uint32_t> hits) {
    for (int w = 0; w < weeks; ++w) {
      for (int host = 0; host < 256; ++host) {
        if (!m.Get(w, host)) continue;
        per_week[static_cast<std::size_t>(w)].Add(
            hits[static_cast<std::size_t>(w) * 256 +
                 static_cast<std::size_t>(host)]);
      }
    }
  });
  for (int w = 0; w < weeks; ++w) {
    out.weekly_top10_share.push_back(
        100.0 * per_week[static_cast<std::size_t>(w)].TopShare(0.10));
  }
  if (weeks >= 8) {
    double first = 0, last = 0;
    for (int w = 0; w < 4; ++w) {
      first += out.weekly_top10_share[static_cast<std::size_t>(w)];
      last += out.weekly_top10_share[static_cast<std::size_t>(weeks - 1 - w)];
    }
    out.first_month_share = first / 4.0;
    out.last_month_share = last / 4.0;
  }
  return out;
}

void PrintFig9(const Fig9Result& result, std::ostream& os) {
  os << "=== Fig 9a: median daily hits vs days active ===\n";
  report::Table t({"days active", "IPs", "p5", "p25", "median", "p75", "p95"});
  int days = static_cast<int>(result.bins.size());
  for (int d : {1, 7, 28, 56, 84, 110, days - 1, days}) {
    if (d < 1 || d > days) continue;
    const auto& b = result.bins[static_cast<std::size_t>(d - 1)];
    t.AddRow({std::to_string(d), report::FormatCount(b.ips),
              report::FormatDouble(b.p5, 0), report::FormatDouble(b.p25, 0),
              report::FormatDouble(b.median, 0),
              report::FormatDouble(b.p75, 0),
              report::FormatDouble(b.p95, 0)});
  }
  t.Print(os);
  os << "[paper: strong positive correlation; clear jump for addresses "
        "active nearly every day]\n";

  os << "\n=== Fig 9b: cumulative IPs vs cumulative traffic ===\n";
  os << "IPs active every day: "
     << report::FormatPercent(result.all_days_ip_frac)
     << " of addresses carrying "
     << report::FormatPercent(result.all_days_traffic_frac)
     << " of traffic   [paper: <10% of IPs, >40% of traffic]\n";
  os << "Gini coefficient of per-address traffic: "
     << report::FormatDouble(result.traffic_gini)
     << " (0 = even, 1 = one address carries everything)\n";

  os << "\n=== Fig 9c: weekly traffic share of top-10% addresses ===\n";
  os << "share:  " << report::RenderSparkline(result.weekly_top10_share)
     << "\n";
  os << "first month avg "
     << report::FormatDouble(result.first_month_share)
     << "%, last month avg " << report::FormatDouble(result.last_month_share)
     << "%  (delta " << report::FormatDouble(result.last_month_share -
                                             result.first_month_share)
     << "pp)   [paper: ~49.5% -> ~52.5%, +3pp consolidation]\n";
}

}  // namespace ipscope::analysis
