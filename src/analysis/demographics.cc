#include "analysis/demographics.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "cdn/useragent.h"
#include "report/table.h"

namespace ipscope::analysis {

DemographicsResult RunDemographics(const sim::World& world,
                                   const cdn::Observatory& daily) {
  DemographicsResult out;
  const int days = daily.steps();
  const int month_first = days - 28;
  cdn::UserAgentSampler sampler{world.config().ua_sample_rate};

  struct BlockFeatures {
    double stu;
    double traffic;
    double hosts;
    int rir;  // -1 when unknown
  };
  std::vector<BlockFeatures> features;

  daily.ForEachBlockHits([&](const sim::BlockPlan& plan,
                             const activity::ActivityMatrix& m,
                             std::span<const std::uint32_t> hits) {
    BlockFeatures f;
    f.stu = m.Stu(0, days);
    if (f.stu <= 0) return;
    std::uint64_t total = 0, month = 0;
    for (int d = 0; d < days; ++d) {
      for (int h = 0; h < 256; ++h) {
        std::uint64_t v = hits[static_cast<std::size_t>(d) * 256 +
                               static_cast<std::size_t>(h)];
        total += v;
        if (d >= month_first) month += v;
      }
    }
    f.traffic = static_cast<double>(total);
    f.hosts = static_cast<double>(sampler.Sample(plan, month).unique_uas);
    f.rir = plan.country >= 0
                ? static_cast<int>(
                      geo::Countries()[static_cast<std::size_t>(plan.country)]
                          .rir)
                : -1;
    features.push_back(f);
  });

  double max_traffic = 0, max_hosts = 0;
  for (const auto& f : features) {
    max_traffic = std::max(max_traffic, f.traffic);
    max_hosts = std::max(max_hosts, f.hosts);
  }

  std::array<std::uint64_t, geo::kRirCount> rir_blocks{};
  std::array<std::uint64_t, geo::kRirCount> rir_corner{};
  for (const auto& f : features) {
    double traffic_n = stats::LogNormalize(f.traffic, max_traffic);
    double hosts_n = stats::LogNormalize(f.hosts, max_hosts);
    out.cube.Add(f.stu, traffic_n, hosts_n);
    ++out.blocks;
    if (f.stu < 0.2) out.low_stu_cluster += 1;
    if (f.stu > 0.8) out.high_stu_cluster += 1;
    if (f.rir >= 0) {
      auto r = static_cast<std::size_t>(f.rir);
      out.per_rir[r].Add(f.stu, traffic_n, hosts_n);
      ++rir_blocks[r];
      if (f.stu >= 0.9 && hosts_n >= 0.7) ++rir_corner[r];
    }
  }
  if (out.blocks > 0) {
    out.low_stu_cluster /= static_cast<double>(out.blocks);
    out.high_stu_cluster /= static_cast<double>(out.blocks);
  }
  for (int r = 0; r < geo::kRirCount; ++r) {
    auto ri = static_cast<std::size_t>(r);
    out.gateway_corner[ri] =
        rir_blocks[ri] ? static_cast<double>(rir_corner[ri]) /
                             static_cast<double>(rir_blocks[ri])
                       : 0.0;
  }
  return out;
}

namespace {

void PrintGrid(const stats::FeatureCube& cube, std::ostream& os) {
  auto marginal = cube.Marginal01();
  auto hosts = cube.MeanFeature2Per01();
  int bins = cube.bins();
  std::uint64_t max_cell = 1;
  for (auto c : marginal) max_cell = std::max(max_cell, c);
  os << "  (rows: traffic 1.0 at top; cols: STU 0->1; size symbol by block "
        "count, UPPERCASE = high mean host count)\n";
  for (int traffic = bins - 1; traffic >= 0; --traffic) {
    os << "  ";
    for (int stu = 0; stu < bins; ++stu) {
      std::uint64_t c =
          marginal[static_cast<std::size_t>(stu) * bins + traffic];
      double host = hosts[static_cast<std::size_t>(stu) * bins + traffic];
      char ch = ' ';
      if (c > 0) ch = '.';
      if (c > max_cell / 64) ch = 'o';
      if (c > max_cell / 8) ch = 'x';
      if (c > max_cell / 2) ch = '*';
      if (host >= 0.7 && c > 0) ch = static_cast<char>(
          ch == '.' ? 'H' : std::toupper(static_cast<unsigned char>(ch)));
      os << ch;
    }
    os << "\n";
  }
}

}  // namespace

void PrintDemographics(const DemographicsResult& result, std::ostream& os) {
  os << "=== Fig 11: demographics cube (STU x traffic x host count), N="
     << report::FormatCount(result.blocks) << " blocks ===\n";
  PrintGrid(result.cube, os);
  os << "STU < 0.2 cluster: " << report::FormatPercent(result.low_stu_cluster)
     << ", STU > 0.8 cluster: "
     << report::FormatPercent(result.high_stu_cluster)
     << "   [paper: strong bimodal split along the STU axis]\n";

  os << "\n=== Fig 12: per-RIR STU x traffic grids ===\n";
  for (int r = 0; r < geo::kRirCount; ++r) {
    auto ri = static_cast<std::size_t>(r);
    os << "\n-- " << geo::RirName(static_cast<geo::Rir>(r))
       << " (gateway corner: "
       << report::FormatPercent(result.gateway_corner[ri]) << ")\n";
    PrintGrid(result.per_rir[ri], os);
  }
  os << "\n[paper: ARIN skews to low utilization; LACNIC/AFRINIC highly "
        "utilized; APNIC/AFRINIC show a pronounced high-STU high-host-count "
        "gateway corner]\n";
}

}  // namespace ipscope::analysis
