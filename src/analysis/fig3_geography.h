// Fig 3: geographic breakdown of visibility (per RIR and per country).
//
// Fig 3a splits each RIR's visible addresses into CDN-only / both / ICMP-
// only. Fig 3b ranks countries by visible addresses and annotates them with
// their broadband/cellular subscriber ranks, showing that broadband rank
// tracks address rank while cellular rank (CGN!) does not, and that ICMP
// responsiveness varies strongly by country.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "activity/store.h"
#include "analysis/visibility.h"
#include "geo/country.h"
#include "sim/world.h"

namespace ipscope::analysis {

struct CountryVisibility {
  std::string code;
  geo::Rir rir = geo::Rir::kArin;
  VisibilitySplit split;
  int broadband_rank = 0;
  int cellular_rank = 0;
  double icmp_response_rate = 0.0;  // measured among CDN-active addresses
};

struct Fig3Result {
  std::array<VisibilitySplit, geo::kRirCount> per_rir;
  std::vector<CountryVisibility> countries;  // sorted by total visible, desc
};

Fig3Result RunFig3(const sim::World& world,
                   const activity::ActivityStore& daily_store);

void PrintFig3(const Fig3Result& result, std::ostream& os, int top_n = 12);

}  // namespace ipscope::analysis
