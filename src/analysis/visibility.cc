#include "analysis/visibility.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "report/table.h"
#include "scan/icmp.h"
#include "scan/portscan.h"
#include "scan/traceroute.h"

namespace ipscope::analysis {

namespace {

// October 2015 within the daily period: absolute days 273..304 are steps
// 45..76 of the 112-day window starting at day 228 (Aug 17).
constexpr int kOctFirstStep = 45;
constexpr int kOctLastStep = 76;
constexpr std::int32_t kOctFirstDay = 273;
constexpr std::int32_t kOctDays = 31;
constexpr std::int32_t kOctMidDay = 288;

std::vector<net::BlockKey> BlockKeysOf(const net::Ipv4Set& set) {
  std::vector<net::BlockKey> keys;
  set.ForEachBlock([&](net::BlockKey key) { keys.push_back(key); });
  return keys;
}

VisibilitySplit SplitSorted(const std::vector<net::BlockKey>& cdn,
                            const std::vector<net::BlockKey>& icmp) {
  VisibilitySplit split;
  std::size_t i = 0, j = 0;
  while (i < cdn.size() || j < icmp.size()) {
    if (j >= icmp.size() || (i < cdn.size() && cdn[i] < icmp[j])) {
      ++split.cdn_only;
      ++i;
    } else if (i >= cdn.size() || icmp[j] < cdn[i]) {
      ++split.icmp_only;
      ++j;
    } else {
      ++split.both;
      ++i;
      ++j;
    }
  }
  return split;
}

}  // namespace

VisibilityResult RunVisibility(const sim::World& world,
                               const activity::ActivityStore& daily_store,
                               const bgp::RoutingFeed& feed) {
  VisibilityResult out;

  net::Ipv4Set cdn = daily_store.ActiveSet(kOctFirstStep, kOctLastStep);
  net::Ipv4Set icmp =
      scan::IcmpScanner{world}.ScanMonth(kOctFirstDay, kOctDays, 8);

  // IP granularity.
  out.ips.both = cdn.CountIntersect(icmp);
  out.ips.cdn_only = cdn.Count() - out.ips.both;
  out.ips.icmp_only = icmp.Count() - out.ips.both;
  out.cdn_missed_by_icmp =
      cdn.Count() ? static_cast<double>(out.ips.cdn_only) /
                        static_cast<double>(cdn.Count())
                  : 0.0;

  // /24 granularity.
  out.blocks = SplitSorted(BlockKeysOf(cdn), BlockKeysOf(icmp));

  // BGP prefix and AS granularity, over the aggregated routing table.
  std::unordered_map<std::uint32_t, std::pair<bool, bool>> as_seen;
  for (const auto& [prefix, asn] : feed.AggregatedAnnouncements(kOctMidDay)) {
    bool in_cdn = cdn.Intersects(prefix);
    bool in_icmp = icmp.Intersects(prefix);
    if (!in_cdn && !in_icmp) continue;
    if (in_cdn && in_icmp) {
      ++out.prefixes.both;
    } else if (in_cdn) {
      ++out.prefixes.cdn_only;
    } else {
      ++out.prefixes.icmp_only;
    }
    auto& flags = as_seen[asn];
    flags.first = flags.first || in_cdn;
    flags.second = flags.second || in_icmp;
  }
  // lint: ordered(the loop only increments commutative integer counters,
  // one bucket per AS; totals are independent of visit order)
  for (const auto& [asn, flags] : as_seen) {
    if (flags.first && flags.second) {
      ++out.ases.both;
    } else if (flags.first) {
      ++out.ases.cdn_only;
    } else {
      ++out.ases.icmp_only;
    }
  }

  // Fig 2b: classify ICMP-only addresses.
  net::Ipv4Set icmp_only = icmp.Subtract(cdn);
  net::Ipv4Set servers = scan::PortScanner{world}.ScanServices(kOctMidDay);
  net::Ipv4Set routers =
      scan::TracerouteCampaign{world}.RouterAddresses(kOctFirstDay);
  std::uint64_t in_servers = icmp_only.CountIntersect(servers);
  std::uint64_t in_routers = icmp_only.CountIntersect(routers);
  std::uint64_t in_both = icmp_only.Intersect(servers).CountIntersect(routers);
  out.icmp_only_class.server_router = in_both;
  out.icmp_only_class.server = in_servers - in_both;
  out.icmp_only_class.router = in_routers - in_both;
  out.icmp_only_class.unknown =
      icmp_only.Count() - in_servers - in_routers + in_both;
  return out;
}

void PrintVisibility(const VisibilityResult& result, std::ostream& os) {
  os << "=== Fig 2a: CDN vs ICMP visibility (October) ===\n";
  report::Table table(
      {"granularity", "N", "CDN only", "CDN & ICMP", "ICMP only"});
  auto add = [&](const char* name, const VisibilitySplit& s) {
    table.AddRow({name, report::FormatCount(s.total()),
                  report::FormatPercent(s.CdnOnlyFraction()),
                  report::FormatPercent(1.0 - s.CdnOnlyFraction() -
                                        s.IcmpOnlyFraction()),
                  report::FormatPercent(s.IcmpOnlyFraction())});
  };
  add("ASes", result.ases);
  add("BGP prefixes", result.prefixes);
  add("/24s", result.blocks);
  add("IPs", result.ips);
  table.Print(os);
  os << "\nCDN-active addresses missed by ICMP: "
     << report::FormatPercent(result.cdn_missed_by_icmp)
     << "   [paper: >40%]\n";

  os << "\n=== Fig 2b: classification of ICMP-only addresses ===\n";
  const auto& c = result.icmp_only_class;
  std::uint64_t total = c.server + c.server_router + c.router + c.unknown;
  report::Table cls({"class", "addresses", "share"});
  auto frac = [&](std::uint64_t n) {
    return report::FormatPercent(
        total ? static_cast<double>(n) / static_cast<double>(total) : 0.0);
  };
  cls.AddRow({"server", report::FormatCount(c.server), frac(c.server)});
  cls.AddRow({"server/router", report::FormatCount(c.server_router),
              frac(c.server_router)});
  cls.AddRow({"router", report::FormatCount(c.router), frac(c.router)});
  cls.AddRow({"unknown", report::FormatCount(c.unknown), frac(c.unknown)});
  cls.Print(os);
  os << "[paper: ~half of ICMP-only addresses are server/router infra]\n";
}

}  // namespace ipscope::analysis
