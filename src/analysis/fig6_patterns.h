// Figs 6 & 7: the gallery of /24 activity patterns, plus a quantitative
// validation of the pattern classifier against simulator ground truth
// (which the paper's authors could only do anecdotally).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "activity/pattern.h"
#include "activity/store.h"
#include "sim/world.h"

namespace ipscope::analysis {

struct Fig6Result {
  struct Exemplar {
    net::BlockKey key = 0;
    std::string truth;  // ground-truth policy description
    activity::PatternFeatures features;
    activity::BlockPattern classified = activity::BlockPattern::kInactive;
    std::vector<std::string> rendering;  // Fig 6-style text plot
  };
  std::vector<Exemplar> exemplars;

  // Confusion matrix over stable client blocks: rows = ground-truth policy
  // flavours, columns = classified BlockPattern.
  static constexpr int kTruthKinds = 5;  // static, rot, dense, long, cgn
  static constexpr const char* kTruthNames[kTruthKinds] = {
      "static", "dyn-short-rotating", "dyn-short-dense", "dyn-long", "cgn"};
  std::array<std::array<std::uint64_t, 6>, kTruthKinds> confusion{};
  double overall_agreement = 0.0;
};

Fig6Result RunFig6(const sim::World& world,
                   const activity::ActivityStore& daily_store);

void PrintFig6(const Fig6Result& result, std::ostream& os,
               bool render_exemplars = true);

}  // namespace ipscope::analysis
