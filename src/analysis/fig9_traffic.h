// Fig 9: address activity vs traffic volume.
//  9a: per-IP median daily hits binned by days active (112 bins), with
//      5/25/75/95 percentile bands — temporal activity correlates strongly
//      with traffic.
//  9b: cumulative IP-count and traffic fractions by days-active bin — <10%
//      of addresses (the always-on ones) carry >40% of all traffic.
//  9c: weekly traffic share of the top-10% heaviest addresses across 2015 —
//      the consolidation trend (~49.5% -> ~52.5%).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "cdn/observatory.h"

namespace ipscope::analysis {

struct Fig9Result {
  struct DaysActiveBin {
    std::uint64_t ips = 0;
    std::uint64_t total_hits = 0;
    double p5 = 0, p25 = 0, median = 0, p75 = 0, p95 = 0;
  };
  std::vector<DaysActiveBin> bins;  // index d => active on d+1 days

  std::vector<double> cum_ip_frac;       // by days-active bin
  std::vector<double> cum_traffic_frac;  // by days-active bin
  double all_days_ip_frac = 0.0;         // IPs active every single day
  double all_days_traffic_frac = 0.0;    // their share of total traffic

  std::vector<double> weekly_top10_share;  // % per week
  double first_month_share = 0.0;
  double last_month_share = 0.0;

  // Gini coefficient of per-address total traffic over the daily period —
  // a single-number summary of the concentration Fig 9 describes.
  double traffic_gini = 0.0;
};

Fig9Result RunFig9(const cdn::Observatory& daily,
                   const cdn::Observatory& weekly);

void PrintFig9(const Fig9Result& result, std::ostream& os);

}  // namespace ipscope::analysis
