#include "analysis/fig3_geography.h"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "report/table.h"
#include "scan/icmp.h"

namespace ipscope::analysis {

namespace {

constexpr int kOctFirstStep = 45;
constexpr int kOctLastStep = 76;
constexpr std::int32_t kOctFirstDay = 273;
constexpr std::int32_t kOctDays = 31;

// Ranks (1 = largest) of each country by a subscriber metric.
std::vector<int> RanksBy(double geo::CountryInfo::* field) {
  auto countries = geo::Countries();
  std::vector<int> order(countries.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return countries[static_cast<std::size_t>(a)].*field >
           countries[static_cast<std::size_t>(b)].*field;
  });
  std::vector<int> ranks(countries.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    ranks[static_cast<std::size_t>(order[pos])] = static_cast<int>(pos) + 1;
  }
  return ranks;
}

}  // namespace

Fig3Result RunFig3(const sim::World& world,
                   const activity::ActivityStore& daily_store) {
  Fig3Result out;
  const geo::Registry& registry = world.registry();
  auto countries = geo::Countries();

  net::Ipv4Set cdn = daily_store.ActiveSet(kOctFirstStep, kOctLastStep);
  net::Ipv4Set icmp =
      scan::IcmpScanner{world}.ScanMonth(kOctFirstDay, kOctDays, 8);
  net::Ipv4Set both = cdn.Intersect(icmp);
  net::Ipv4Set cdn_only = cdn.Subtract(icmp);
  net::Ipv4Set icmp_only = icmp.Subtract(cdn);

  std::vector<VisibilitySplit> per_country(countries.size());
  auto tally = [&](const net::Ipv4Set& set,
                   std::uint64_t VisibilitySplit::* member) {
    for (const auto& iv : set.Intervals()) {
      // A country region spans whole /24 runs, so one lookup per interval
      // start is safe only within a block; walk block sub-ranges instead.
      std::uint64_t v = iv.first;
      while (v <= iv.last) {
        std::uint64_t block_end =
            std::min<std::uint64_t>(iv.last, (v | 0xFFu));
        auto country =
            registry.CountryOf(net::IPv4Addr{static_cast<std::uint32_t>(v)});
        if (country) {
          per_country[static_cast<std::size_t>(*country)].*member +=
              block_end - v + 1;
        }
        v = block_end + 1;
      }
    }
  };
  tally(cdn_only, &VisibilitySplit::cdn_only);
  tally(both, &VisibilitySplit::both);
  tally(icmp_only, &VisibilitySplit::icmp_only);

  auto bb_ranks = RanksBy(&geo::CountryInfo::broadband_subs_m);
  auto cell_ranks = RanksBy(&geo::CountryInfo::cellular_subs_m);

  for (std::size_t i = 0; i < countries.size(); ++i) {
    CountryVisibility cv;
    cv.code = std::string{countries[i].code};
    cv.rir = countries[i].rir;
    cv.split = per_country[i];
    cv.broadband_rank = bb_ranks[i];
    cv.cellular_rank = cell_ranks[i];
    std::uint64_t cdn_total = cv.split.cdn_only + cv.split.both;
    cv.icmp_response_rate =
        cdn_total ? static_cast<double>(cv.split.both) /
                        static_cast<double>(cdn_total)
                  : 0.0;
    out.countries.push_back(cv);
    auto r = static_cast<std::size_t>(countries[i].rir);
    out.per_rir[r].cdn_only += cv.split.cdn_only;
    out.per_rir[r].both += cv.split.both;
    out.per_rir[r].icmp_only += cv.split.icmp_only;
  }
  std::sort(out.countries.begin(), out.countries.end(),
            [](const CountryVisibility& a, const CountryVisibility& b) {
              return a.split.total() > b.split.total();
            });
  return out;
}

void PrintFig3(const Fig3Result& result, std::ostream& os, int top_n) {
  os << "=== Fig 3a: visibility by RIR ===\n";
  report::Table rir_table(
      {"RIR", "CDN & ICMP", "only CDN", "only ICMP", "CDN lift"});
  for (int r = 0; r < geo::kRirCount; ++r) {
    const auto& s = result.per_rir[static_cast<std::size_t>(r)];
    double lift = s.both + s.icmp_only
                      ? static_cast<double>(s.cdn_only) /
                            static_cast<double>(s.both + s.icmp_only)
                      : 0.0;
    rir_table.AddRow({std::string{geo::RirName(static_cast<geo::Rir>(r))},
                      report::FormatSi(static_cast<double>(s.both)),
                      report::FormatSi(static_cast<double>(s.cdn_only)),
                      report::FormatSi(static_cast<double>(s.icmp_only)),
                      report::FormatPercent(lift)});
  }
  rir_table.Print(os);
  os << "[paper: CDN logs lift visibility in every region, most strongly in "
        "AFRINIC (+150%)]\n";

  os << "\n=== Fig 3b: top countries, with subscriber ranks ===\n";
  report::Table c_table({"country", "visible IPs", "only CDN", "CDN & ICMP",
                         "only ICMP", "bb rank", "cell rank",
                         "ICMP resp. rate"});
  int shown = 0;
  for (const CountryVisibility& cv : result.countries) {
    if (shown++ >= top_n) break;
    c_table.AddRow(
        {cv.code, report::FormatSi(static_cast<double>(cv.split.total())),
         report::FormatSi(static_cast<double>(cv.split.cdn_only)),
         report::FormatSi(static_cast<double>(cv.split.both)),
         report::FormatSi(static_cast<double>(cv.split.icmp_only)),
         std::to_string(cv.broadband_rank), std::to_string(cv.cellular_rank),
         report::FormatPercent(cv.icmp_response_rate)});
  }
  c_table.Print(os);
  os << "[paper: broadband ranks track visible-address ranks; cellular ranks "
        "do not (CGN); ICMP response ~80% in CN vs ~25% in JP]\n";
}

}  // namespace ipscope::analysis
