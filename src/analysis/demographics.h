// Figs 11 & 12: Internet-wide demographics of the active IPv4 space.
//
// Per active /24: spatio-temporal utilization (already in (0,1]), traffic
// contribution and relative host count (both log-normalized by the maximum
// across active blocks, paper §7), binned into a 10x10x10 cube (Fig 11) and
// split per RIR into 10x10 STU x traffic grids colored by mean host count
// (Fig 12).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "cdn/observatory.h"
#include "geo/country.h"
#include "stats/binning.h"

namespace ipscope::analysis {

struct DemographicsResult {
  stats::FeatureCube cube{10};
  std::array<stats::FeatureCube, geo::kRirCount> per_rir{
      stats::FeatureCube{10}, stats::FeatureCube{10}, stats::FeatureCube{10},
      stats::FeatureCube{10}, stats::FeatureCube{10}};
  std::uint64_t blocks = 0;

  // The paper's headline observations on the cube.
  double low_stu_cluster = 0.0;   // fraction of blocks with STU < 0.2
  double high_stu_cluster = 0.0;  // fraction with STU > 0.8
  // Fraction of each RIR's blocks in the "gateway corner"
  // (STU >= 0.9 and normalized host count >= 0.7).
  std::array<double, geo::kRirCount> gateway_corner{};
};

DemographicsResult RunDemographics(const sim::World& world,
                                   const cdn::Observatory& daily);

void PrintDemographics(const DemographicsResult& result, std::ostream& os);

}  // namespace ipscope::analysis
