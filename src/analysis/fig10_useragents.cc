#include "analysis/fig10_useragents.h"

#include <ostream>

#include "geo/country.h"
#include "report/table.h"
#include "whois/whois.h"

namespace ipscope::analysis {

namespace {

enum class UaRegion { kResidential, kBots, kGateways };

// Region boundaries in the (samples, unique) plane. Bots issue masses of
// requests through one or two strings; gateways combine high volume with
// high diversity; everything else is the residential bulk.
UaRegion ClassifyRegion(const cdn::BlockUaSample& s) {
  double samples = static_cast<double>(s.samples);
  double unique = static_cast<double>(s.unique_uas);
  if (samples >= 100 && unique <= std::max(4.0, samples / 50.0)) {
    return UaRegion::kBots;
  }
  if (samples >= 500 && unique >= 0.3 * samples) {
    return UaRegion::kGateways;
  }
  return UaRegion::kResidential;
}

}  // namespace

Fig10Result RunFig10(const sim::World& world, const cdn::Observatory& daily) {
  Fig10Result out;
  const int days = daily.steps();
  const int month_first = days - 28;  // last month of the period (paper §6.3)
  cdn::UserAgentSampler sampler{world.config().ua_sample_rate};
  whois::WhoisDirectory directory{world};

  std::uint64_t gateway_cgn = 0, gateway_apnic = 0, bots_crawler = 0;
  std::uint64_t whois_cellular = 0, whois_apnic = 0;

  daily.ForEachBlockHits([&](const sim::BlockPlan& plan,
                             const activity::ActivityMatrix&,
                             std::span<const std::uint32_t> hits) {
    std::uint64_t month_hits = 0;
    for (int d = month_first; d < days; ++d) {
      for (int h = 0; h < 256; ++h) {
        month_hits += hits[static_cast<std::size_t>(d) * 256 +
                           static_cast<std::size_t>(h)];
      }
    }
    cdn::BlockUaSample sample = sampler.Sample(plan, month_hits);
    if (sample.samples == 0) return;
    out.grid.Add(static_cast<double>(sample.samples),
                 static_cast<double>(sample.unique_uas));
    switch (ClassifyRegion(sample)) {
      case UaRegion::kResidential:
        ++out.region_residential;
        break;
      case UaRegion::kBots:
        ++out.region_bots;
        if (plan.base.kind == sim::PolicyKind::kCrawlerBots) ++bots_crawler;
        break;
      case UaRegion::kGateways: {
        ++out.region_gateways;
        if (plan.base.kind == sim::PolicyKind::kCgnGateway) ++gateway_cgn;
        if (plan.country >= 0 &&
            geo::Countries()[static_cast<std::size_t>(plan.country)].rir ==
                geo::Rir::kApnic) {
          ++gateway_apnic;
        }
        // The paper's method: consult the registry for who holds the block.
        auto record = directory.Lookup(net::BlockKeyOf(plan.block));
        if (record) {
          if (record->org_type == "cellular-operator") ++whois_cellular;
          int ci = geo::CountryIndex(record->country);
          if (ci >= 0 && geo::Countries()[static_cast<std::size_t>(ci)].rir ==
                             geo::Rir::kApnic) {
            ++whois_apnic;
          }
        }
        break;
      }
    }
    out.samples.push_back(sample);
  });

  if (out.region_gateways > 0) {
    out.gateway_cgn_precision = static_cast<double>(gateway_cgn) /
                                static_cast<double>(out.region_gateways);
    out.gateway_apnic_fraction = static_cast<double>(gateway_apnic) /
                                 static_cast<double>(out.region_gateways);
    out.gateway_whois_cellular = static_cast<double>(whois_cellular) /
                                 static_cast<double>(out.region_gateways);
    out.gateway_whois_apnic = static_cast<double>(whois_apnic) /
                              static_cast<double>(out.region_gateways);
  }
  if (out.region_bots > 0) {
    out.bots_crawler_precision = static_cast<double>(bots_crawler) /
                                 static_cast<double>(out.region_bots);
  }
  return out;
}

void PrintFig10(const Fig10Result& result, std::ostream& os) {
  os << "=== Fig 10: UA samples vs unique UA strings per /24 ===\n";
  os << "log-log density (rows: unique UAs 10^y, cols: samples 10^x):\n";
  for (int y = result.grid.y_bins() - 1; y >= 0; --y) {
    os << "10^" << y << " |";
    for (int x = 0; x < result.grid.x_bins(); ++x) {
      std::uint64_t c = result.grid.count(x, y);
      char ch = ' ';
      if (c > 0) ch = '.';
      if (c > 10) ch = 'o';
      if (c > 100) ch = 'O';
      if (c > 1000) ch = '@';
      os << ch;
    }
    os << "\n";
  }
  os << "      ";
  for (int x = 0; x < result.grid.x_bins(); ++x) os << x;
  os << "  (10^x samples)\n\n";

  std::uint64_t total = result.region_residential + result.region_bots +
                        result.region_gateways;
  report::Table t({"region", "blocks", "share"});
  auto frac = [&](std::uint64_t n) {
    return report::FormatPercent(
        total ? static_cast<double>(n) / static_cast<double>(total) : 0.0);
  };
  t.AddRow({"residential bulk",
            report::FormatCount(result.region_residential),
            frac(result.region_residential)});
  t.AddRow({"bots (low diversity)", report::FormatCount(result.region_bots),
            frac(result.region_bots)});
  t.AddRow({"gateways (high diversity)",
            report::FormatCount(result.region_gateways),
            frac(result.region_gateways)});
  t.Print(os);
  os << "gateway region WHOIS attribution: "
     << report::FormatPercent(result.gateway_whois_cellular)
     << " registered to cellular operators, "
     << report::FormatPercent(result.gateway_whois_apnic)
     << " registered in APNIC   [paper: \"more than half... located in "
        "Asia, majority cellular\"]\n";
  os << "gateway region ground truth: "
     << report::FormatPercent(result.gateway_cgn_precision)
     << " are true CGN blocks; "
     << report::FormatPercent(result.gateway_apnic_fraction)
     << " in APNIC\n";
  os << "bot region ground truth: "
     << report::FormatPercent(result.bots_crawler_precision)
     << " are true crawler blocks\n";
}

}  // namespace ipscope::analysis
