#include "analysis/fig5_dissect.h"

#include <algorithm>
#include <ostream>

#include "report/table.h"
#include "stats/quantile.h"

namespace ipscope::analysis {

namespace {
constexpr int kWindowSizes[] = {1, 7, 28};
constexpr std::int32_t kOriginDay = 280;
}  // namespace

Fig5Result RunFig5(const activity::ActivityStore& daily_store,
                   const bgp::RoutingFeed& feed,
                   const sim::StepSpec& daily_spec) {
  Fig5Result out;
  activity::ChurnAnalyzer churn{daily_store};
  auto origin_of = [&](net::BlockKey key) {
    return feed.OriginOf(key, kOriginDay);
  };

  for (int w : kWindowSizes) {
    // ---- 5a: per-AS churn ----
    Fig5Result::PerAsChurn pa;
    pa.window_days = w;
    for (const activity::GroupChurn& gc :
         churn.PerGroupChurn(w, origin_of, /*min_active_ips=*/1000)) {
      if (gc.group == 0) continue;  // unrouted leftovers
      pa.median_up_pcts.push_back(gc.median_up_pct);
    }
    if (!pa.median_up_pcts.empty()) {
      double n = static_cast<double>(pa.median_up_pcts.size());
      pa.frac_below_5pct =
          static_cast<double>(std::count_if(
              pa.median_up_pcts.begin(), pa.median_up_pcts.end(),
              [](double v) { return v < 5.0; })) / n;
      pa.frac_above_10pct =
          static_cast<double>(std::count_if(
              pa.median_up_pcts.begin(), pa.median_up_pcts.end(),
              [](double v) { return v >= 10.0; })) / n;
    }
    out.per_as.push_back(std::move(pa));

    // ---- 5b: event sizes, aggregated over all consecutive window pairs ---
    Fig5Result::EventSizeBins bins;
    bins.window_days = w;
    activity::EventSizeHistogram hist;
    int num_windows = daily_store.days() / w;
    for (int p = 0; p + 1 < num_windows; ++p) {
      activity::EventSizeHistogram h = activity::EventSizes(
          daily_store, p * w, (p + 1) * w, (p + 1) * w, (p + 2) * w,
          /*up=*/true);
      for (std::size_t m = 0; m < h.by_mask.size(); ++m) {
        hist.by_mask[m] += h.by_mask[m];
      }
      hist.total += h.total;
    }
    bins.total = hist.total;
    bins.le16 = hist.FractionInMaskRange(0, 16);
    bins.m17_20 = hist.FractionInMaskRange(17, 20);
    bins.m21_24 = hist.FractionInMaskRange(21, 24);
    bins.m25_28 = hist.FractionInMaskRange(25, 28);
    bins.ge29 = hist.FractionInMaskRange(29, 32);
    out.event_sizes.push_back(bins);

    // ---- 5c: BGP correlation ----
    out.bgp.push_back(bgp::CorrelateChurnWithBgp(daily_store, feed,
                                                 daily_spec, w));
  }
  return out;
}

void PrintFig5(const Fig5Result& result, std::ostream& os) {
  os << "=== Fig 5a: per-AS median up-event percentage ===\n";
  report::Table ast({"window", "ASes (>1K IPs)", "frac < 5%", "frac >= 10%",
                     "median of medians"});
  for (const auto& pa : result.per_as) {
    // Small worlds can leave no AS above the >1K-IP filter; Median of an
    // empty sample is NaN by contract, so print "n/a" instead of "nan%".
    ast.AddRow({std::to_string(pa.window_days) + "d",
                report::FormatCount(pa.median_up_pcts.size()),
                report::FormatPercent(pa.frac_below_5pct),
                report::FormatPercent(pa.frac_above_10pct),
                pa.median_up_pcts.empty()
                    ? "n/a"
                    : report::FormatDouble(
                          stats::Median(pa.median_up_pcts)) + "%"});
  }
  ast.Print(os);
  os << "[paper: about half of ASes < 5%, 10-20% of ASes >= 10% — churn is "
        "ubiquitous, not confined to a few networks]\n";

  os << "\n=== Fig 5b: size distribution of up events ===\n";
  report::Table est({"window", "events", "<=/16", "/17-/20", "/21-/24",
                     "/25-/28", "/29-/32"});
  for (const auto& b : result.event_sizes) {
    est.AddRow({std::to_string(b.window_days) + "d",
                report::FormatCount(b.total), report::FormatPercent(b.le16),
                report::FormatPercent(b.m17_20),
                report::FormatPercent(b.m21_24),
                report::FormatPercent(b.m25_28),
                report::FormatPercent(b.ge29)});
  }
  est.Print(os);
  os << "[paper: 1d windows -> >70% of events at >=/31; 28d windows -> >38% "
        "affect blocks <=/24 while >36% remain individual addresses]\n";

  os << "\n=== Fig 5c: churn events vs BGP changes ===\n";
  report::Table bt({"window", "up w/ BGP chg", "down w/ BGP chg",
                    "steady w/ BGP chg"});
  for (const auto& c : result.bgp) {
    bt.AddRow({std::to_string(c.window_days) + "d",
               report::FormatDouble(c.UpPct()) + "%",
               report::FormatDouble(c.DownPct()) + "%",
               report::FormatDouble(c.SteadyPct()) + "%"});
  }
  bt.Print(os);
  os << "[paper: < 2.5% even at monthly windows; up/down well above steady; "
        "churn is almost entirely invisible in BGP]\n";
}

}  // namespace ipscope::analysis
