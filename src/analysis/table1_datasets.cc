#include "analysis/table1_datasets.h"

#include <ostream>

#include "bgp/feed.h"
#include "report/table.h"

namespace ipscope::analysis {

Table1Result RunTable1(const sim::World& world, const bgp::RoutingFeed& feed) {
  Table1Result out;
  {
    auto daily_store = cdn::Observatory::Daily(world).BuildStore();
    // The daily dataset sits in the back half of the year; day 280 is a
    // representative mapping date (early October).
    out.daily =
        cdn::SummarizeDataset(daily_store, bgp::OriginLookupAt(feed, 280));
  }
  {
    auto weekly_store = cdn::Observatory::Weekly(world).BuildStore();
    out.weekly =
        cdn::SummarizeDataset(weekly_store, bgp::OriginLookupAt(feed, 180));
  }
  return out;
}

void PrintTable1(const Table1Result& result, std::ostream& os) {
  os << "=== Table 1: datasets, totals and averages per snapshot ===\n";
  os << "(paper, at Internet scale: daily 975M/655M IPs, 5.9M/5.1M /24s,\n"
        " 50.7K/47.9K ASes; weekly 1.2B/790M IPs, 6.5M/5.3M /24s,\n"
        " 53.3K/47.8K ASes — compare the total/average *ratios*)\n\n";
  report::Table table({"dataset", "IPs total", "IPs avg", "/24s total",
                       "/24s avg", "ASes total", "ASes avg"});
  auto add = [&](const char* name, const cdn::DatasetTotals& t) {
    table.AddRow({name, report::FormatSi(static_cast<double>(t.total_ips)),
                  report::FormatSi(t.avg_ips),
                  report::FormatSi(static_cast<double>(t.total_blocks)),
                  report::FormatSi(t.avg_blocks),
                  report::FormatSi(static_cast<double>(t.total_ases)),
                  report::FormatSi(t.avg_ases)});
  };
  add("daily (112 snapshots)", result.daily);
  add("weekly (52 snapshots)", result.weekly);
  table.Print(os);

  auto ratio = [](const cdn::DatasetTotals& t) {
    return t.avg_ips > 0 ? static_cast<double>(t.total_ips) / t.avg_ips : 0.0;
  };
  os << "\ntotal/avg IP ratio: daily "
     << report::FormatDouble(ratio(result.daily))
     << " [paper 1.49], weekly " << report::FormatDouble(ratio(result.weekly))
     << " [paper 1.52] — the ratio >1 is the churn signal\n";
}

}  // namespace ipscope::analysis
