// Fig 1: monthly unique active IPv4 addresses, 2008–2016.
//
// Reproduces the paper's headline observation: near-perfect linear growth
// until January 2014 (captured by an OLS fit), then stagnation, annotated
// with the RIR exhaustion dates.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "sim/growth.h"

namespace ipscope::analysis {

struct Fig1Result {
  sim::GrowthSeries growth;
  // Relative shortfall of the final observed month vs the pre-2014 trend
  // extrapolated to that month (the visual "gap" in Fig 1).
  double stagnation_gap = 0.0;
  // Mean absolute relative residual of the pre-2014 fit (how "linear" the
  // growth era was).
  double pre2014_mean_residual = 0.0;
};

Fig1Result RunFig1(std::uint64_t seed, double scale = 1.0);

void PrintFig1(const Fig1Result& result, std::ostream& os);

}  // namespace ipscope::analysis
