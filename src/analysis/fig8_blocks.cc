#include "analysis/fig8_blocks.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "rdns/tagger.h"
#include "report/table.h"
#include "report/textplot.h"
#include "stats/quantile.h"

namespace ipscope::analysis {

Fig8Result RunFig8(const sim::World& world,
                   const activity::ActivityStore& daily_store) {
  Fig8Result out;

  // ---- 8a: change detection + ground-truth validation ----
  out.changes = activity::MaxMonthlyStuChange(daily_store);
  out.major_fraction = activity::MajorChangeFraction(out.changes);

  std::unordered_set<net::BlockKey> reconfigured;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration()) {
      reconfigured.insert(net::BlockKeyOf(plan.block));
    }
  }
  std::uint64_t flagged = 0, flagged_true = 0, truth_total = 0;
  for (const activity::BlockStuChange& c : out.changes) {
    bool truth = reconfigured.contains(c.key);
    if (truth) ++truth_total;
    if (c.IsMajor()) {
      ++flagged;
      if (truth) ++flagged_true;
    }
  }
  out.detector_precision =
      flagged ? static_cast<double>(flagged_true) / flagged : 0.0;
  out.detector_recall =
      truth_total ? static_cast<double>(flagged_true) / truth_total : 0.0;

  // ---- Fig 7b extension: spatial split detection ----
  std::unordered_set<net::BlockKey> split_truth;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration() && plan.events[0].host_first > 0) {
      split_truth.insert(net::BlockKeyOf(plan.block));
    }
  }
  std::uint64_t spatial_hit = 0;
  for (const activity::BlockSpatialChange& c :
       activity::SpatialStuChanges(daily_store)) {
    if (c.Asymmetry() <= activity::kMajorChangeThreshold) continue;
    ++out.spatial_flagged;
    if (split_truth.contains(c.key)) ++spatial_hit;
  }
  out.spatial_precision =
      out.spatial_flagged
          ? static_cast<double>(spatial_hit) / out.spatial_flagged
          : 0.0;
  out.spatial_recall = split_truth.empty()
                           ? 0.0
                           : static_cast<double>(spatial_hit) /
                                 static_cast<double>(split_truth.size());

  // ---- 8b: rDNS tagging + FD CDFs ----
  auto metrics = activity::ComputeBlockMetrics(daily_store);
  std::vector<net::BlockKey> active_keys;
  active_keys.reserve(metrics.size());
  std::unordered_map<net::BlockKey, int> fd_of;
  for (const auto& m : metrics) {
    active_keys.push_back(m.key);
    fd_of[m.key] = m.filling_degree;
  }
  rdns::PtrGenerator ptr{world};
  rdns::TaggedBlocks tagged = rdns::TagBlocks(ptr, active_keys);
  out.tagged_static = tagged.static_blocks.size();
  out.tagged_dynamic = tagged.dynamic_blocks.size();
  for (net::BlockKey key : tagged.static_blocks) {
    out.fd_static.push_back(static_cast<double>(fd_of[key]));
  }
  for (net::BlockKey key : tagged.dynamic_blocks) {
    out.fd_dynamic.push_back(static_cast<double>(fd_of[key]));
  }
  out.fd_all = activity::FillingDegrees(metrics);

  auto frac_below = [](const std::vector<double>& v, double x) {
    if (v.empty()) return 0.0;
    return static_cast<double>(
               std::count_if(v.begin(), v.end(),
                             [x](double f) { return f < x; })) /
           static_cast<double>(v.size());
  };
  out.static_fd_below_64 = frac_below(out.fd_static, 64);
  out.dynamic_fd_above_250 = 1.0 - frac_below(out.fd_dynamic, 251);
  out.all_fd_above_250 = 1.0 - frac_below(out.fd_all, 251);
  out.all_fd_below_64 = frac_below(out.fd_all, 64);

  // ---- 8c: STU of densely-filled blocks ----
  std::vector<double> high_fd_stu = activity::StuValues(metrics, 251);
  out.high_fd_blocks = high_fd_stu.size();
  for (double stu : high_fd_stu) out.stu_high_fd.Add(stu);
  if (!high_fd_stu.empty()) {
    double n = static_cast<double>(high_fd_stu.size());
    auto count_if = [&](auto pred) {
      return static_cast<double>(std::count_if(high_fd_stu.begin(),
                                               high_fd_stu.end(), pred)) / n;
    };
    out.high_fd_stu_above_80 = count_if([](double s) { return s > 0.8; });
    out.high_fd_stu_100 = count_if([](double s) { return s >= 0.995; });
    out.high_fd_stu_below_60 = count_if([](double s) { return s < 0.6; });
    out.high_fd_stu_below_20 = count_if([](double s) { return s < 0.2; });
  }
  return out;
}

void PrintFig8(const Fig8Result& result, std::ostream& os) {
  os << "=== Fig 8a: max monthly STU change per /24 ===\n";
  std::vector<double> deltas;
  deltas.reserve(result.changes.size());
  for (const auto& c : result.changes) deltas.push_back(c.max_delta);
  auto qs = stats::Quantiles(std::move(deltas),
                             std::vector<double>{0.05, 0.25, 0.5, 0.75, 0.95});
  os << "delta STU quantiles (5/25/50/75/95): ";
  for (double q : qs) os << report::FormatDouble(q) << " ";
  os << "\nmajor-change blocks (|delta| > 0.25): "
     << report::FormatPercent(result.major_fraction)
     << "   [paper: 9.8%]\n";
  os << "detector vs ground truth: precision "
     << report::FormatPercent(result.detector_precision) << ", recall "
     << report::FormatPercent(result.detector_recall) << "\n";
  os << "spatial (half-block) splits flagged: "
     << report::FormatCount(result.spatial_flagged) << " (precision "
     << report::FormatPercent(result.spatial_precision) << ", recall "
     << report::FormatPercent(result.spatial_recall)
     << ")   [Fig 7b extension: asymmetry of per-half STU deltas]\n";

  os << "\n=== Fig 8b: filling degree by rDNS tag ===\n";
  report::Table t({"population", "blocks", "FD<64", "FD>250"});
  auto frac_below = [](const std::vector<double>& v, double x) {
    if (v.empty()) return 0.0;
    return static_cast<double>(
               std::count_if(v.begin(), v.end(),
                             [x](double f) { return f < x; })) /
           static_cast<double>(v.size());
  };
  t.AddRow({"static (rDNS)", report::FormatCount(result.tagged_static),
            report::FormatPercent(result.static_fd_below_64),
            report::FormatPercent(1.0 - frac_below(result.fd_static, 251))});
  t.AddRow({"dynamic (rDNS)", report::FormatCount(result.tagged_dynamic),
            report::FormatPercent(frac_below(result.fd_dynamic, 64)),
            report::FormatPercent(result.dynamic_fd_above_250)});
  t.AddRow({"all active", report::FormatCount(result.fd_all.size()),
            report::FormatPercent(result.all_fd_below_64),
            report::FormatPercent(result.all_fd_above_250)});
  t.Print(os);
  os << "[paper: static 75% below FD 64; dynamic >80% above FD 250; all: "
        "~50% above 250, ~30% below 64]\n";

  os << "\n=== Fig 8c: STU of blocks with FD > 250 (N="
     << report::FormatCount(result.high_fd_blocks) << ") ===\n";
  std::vector<std::string> labels;
  std::vector<double> values;
  for (int b = 0; b < result.stu_high_fd.bins(); ++b) {
    labels.push_back(
        report::FormatDouble(result.stu_high_fd.BinLow(b), 1) + "-" +
        report::FormatDouble(result.stu_high_fd.BinHigh(b), 1));
    values.push_back(static_cast<double>(result.stu_high_fd.count(b)));
  }
  for (const auto& line : report::RenderBars(labels, values)) {
    os << line << "\n";
  }
  os << "STU>0.8: " << report::FormatPercent(result.high_fd_stu_above_80)
     << ", STU~1.0: " << report::FormatPercent(result.high_fd_stu_100)
     << ", STU<0.6: " << report::FormatPercent(result.high_fd_stu_below_60)
     << ", STU<0.2: " << report::FormatPercent(result.high_fd_stu_below_20)
     << "\n[paper: bulk above 80%, ~5% fully utilized (gateways), ~37% "
        "below 60%, ~17% below 20% — reclaimable dynamic pools]\n";
}

}  // namespace ipscope::analysis
