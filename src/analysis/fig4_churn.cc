#include "analysis/fig4_churn.h"

#include <ostream>

#include "report/table.h"
#include "report/textplot.h"

namespace ipscope::analysis {

Fig4Result RunFig4(const activity::ActivityStore& daily_store,
                   const activity::ActivityStore& weekly_store) {
  Fig4Result out;
  activity::ChurnAnalyzer daily_churn{daily_store};
  out.daily = daily_churn.DailyEvents();
  for (int w : {1, 2, 4, 7, 14, 28}) {
    out.windows.push_back(daily_churn.Churn(w));
  }
  activity::ChurnAnalyzer weekly_churn{weekly_store};
  out.yearly = weekly_churn.VersusFirst(1);  // 1 step = 1 week
  return out;
}

void PrintFig4(const Fig4Result& result, std::ostream& os) {
  os << "=== Fig 4a: daily active addresses and up/down events ===\n";
  std::vector<double> active(result.daily.active.begin(),
                             result.daily.active.end());
  os << "active:  " << report::RenderSparkline(active) << "\n";
  std::vector<double> ups(result.daily.up.begin(), result.daily.up.end());
  os << "up ev.:  " << report::RenderSparkline(ups) << "\n";

  double mean_active = 0, mean_up = 0, mean_down = 0;
  for (auto v : result.daily.active) mean_active += static_cast<double>(v);
  mean_active /= static_cast<double>(result.daily.active.size());
  for (auto v : result.daily.up) mean_up += static_cast<double>(v);
  mean_up /= static_cast<double>(result.daily.up.size());
  for (auto v : result.daily.down) mean_down += static_cast<double>(v);
  mean_down /= static_cast<double>(result.daily.down.size());
  os << "mean daily active " << report::FormatSi(mean_active)
     << ", mean up " << report::FormatSi(mean_up) << " ("
     << report::FormatPercent(mean_up / mean_active) << "), mean down "
     << report::FormatSi(mean_down) << " ("
     << report::FormatPercent(mean_down / mean_active)
     << ")   [paper: ~650M active, ~55M (~8%) up and down]\n";

  os << "\n=== Fig 4b: churn vs aggregation window ===\n";
  report::Table table({"window", "up% min", "up% median", "up% max",
                       "down% min", "down% median", "down% max"});
  for (const auto& w : result.windows) {
    table.AddRow({std::to_string(w.window_days) + "d",
                  report::FormatDouble(w.up.min),
                  report::FormatDouble(w.up.median),
                  report::FormatDouble(w.up.max),
                  report::FormatDouble(w.down.min),
                  report::FormatDouble(w.down.median),
                  report::FormatDouble(w.down.max)});
  }
  table.Print(os);
  os << "[paper: ~8% median daily, max ~14% (weekend effect), plateau ~5% "
        "for windows >= 7d — churn persists at all timescales]\n";

  os << "\n=== Fig 4c: appear/disappear vs first week of the year ===\n";
  const auto& y = result.yearly;
  std::size_t last = y.appear.size() - 1;
  double appear_pct = y.active[last]
                          ? static_cast<double>(y.appear[last]) /
                                static_cast<double>(y.active[last])
                          : 0.0;
  double disappear_pct = y.active[0]
                             ? static_cast<double>(y.disappear[last]) /
                                   static_cast<double>(y.active[0])
                             : 0.0;
  std::vector<double> appears(y.appear.begin(), y.appear.end());
  std::vector<double> disappears(y.disappear.begin(), y.disappear.end());
  os << "appear:    " << report::RenderSparkline(appears) << "\n";
  os << "disappear: " << report::RenderSparkline(disappears) << "\n";
  os << "week 52 vs week 1: appear "
     << report::FormatSi(static_cast<double>(y.appear[last])) << " ("
     << report::FormatPercent(appear_pct) << "), disappear "
     << report::FormatSi(static_cast<double>(y.disappear[last])) << " ("
     << report::FormatPercent(disappear_pct)
     << ")   [paper: ~25% of the pool changes across the year]\n";
}

}  // namespace ipscope::analysis
