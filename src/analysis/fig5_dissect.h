// Fig 5: dissecting address volatility.
//  5a: CDF over ASes of the median per-snapshot up-event percentage.
//  5b: size distribution of up events (smallest isolating prefix mask).
//  5c: fraction of up/down/steady addresses coinciding with a BGP change.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "activity/churn.h"
#include "activity/eventsize.h"
#include "bgp/correlate.h"

namespace ipscope::analysis {

struct Fig5Result {
  struct PerAsChurn {
    int window_days = 0;
    std::vector<double> median_up_pcts;  // one per qualifying AS
    double frac_below_5pct = 0.0;
    double frac_above_10pct = 0.0;
  };
  std::vector<PerAsChurn> per_as;  // window sizes 1, 7, 28

  struct EventSizeBins {
    int window_days = 0;
    std::uint64_t total = 0;
    // Fractions of up events whose isolating mask falls in each bin.
    double le16 = 0.0;     // mask <= /16 (largest events)
    double m17_20 = 0.0;
    double m21_24 = 0.0;
    double m25_28 = 0.0;
    double ge29 = 0.0;     // /29../32 (individual addresses)
  };
  std::vector<EventSizeBins> event_sizes;  // window sizes 1, 7, 28

  std::vector<bgp::ChurnBgpCorrelation> bgp;  // window sizes 1, 7, 28
};

Fig5Result RunFig5(const activity::ActivityStore& daily_store,
                   const bgp::RoutingFeed& feed,
                   const sim::StepSpec& daily_spec);

void PrintFig5(const Fig5Result& result, std::ostream& os);

}  // namespace ipscope::analysis
