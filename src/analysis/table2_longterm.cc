#include "analysis/table2_longterm.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "report/table.h"

namespace ipscope::analysis {

namespace {

// Jan/Feb = weeks 0..8; Nov/Dec = weeks 43..51 of the 52-week store.
constexpr int kEarlyFirst = 0, kEarlyLast = 9;
constexpr int kLateFirst = 43, kLateLast = 52;
// Majority-origin evaluation ranges in absolute days.
constexpr std::int32_t kEarlyDayFirst = 0, kEarlyDayLast = 60;
constexpr std::int32_t kLateDayFirst = 301, kLateDayLast = 364;

std::vector<std::uint32_t> TopAsns(
    const std::unordered_map<std::uint32_t, std::uint64_t>& counts, int n) {
  // lint: ordered(the vector is immediately sorted below with a total
  // order — count desc, ASN asc — so the hash-dependent construction
  // order cannot reach the result)
  std::vector<std::pair<std::uint32_t, std::uint64_t>> all(counts.begin(),
                                                           counts.end());
  // Tie-break on the ASN: with count-only ordering, equal counts would
  // inherit the unordered_map's iteration order and the top-N cut could
  // differ across standard-library versions.
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::uint32_t> top;
  for (int i = 0; i < n && i < static_cast<int>(all.size()); ++i) {
    top.push_back(all[static_cast<std::size_t>(i)].first);
  }
  return top;
}

}  // namespace

Table2Result RunTable2(const activity::ActivityStore& weekly_store,
                       const bgp::RoutingFeed& feed) {
  Table2Result out;
  std::uint64_t appear_whole = 0, disappear_whole = 0;
  std::uint64_t appear_no_bgp = 0, appear_origin = 0, appear_announce = 0;
  std::uint64_t disappear_no_bgp = 0, disappear_origin = 0,
                disappear_withdraw = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> appear_by_as,
      disappear_by_as;

  weekly_store.ForEach([&](net::BlockKey key,
                           const activity::ActivityMatrix& m) {
    activity::DayBits early = m.UnionOver(kEarlyFirst, kEarlyLast);
    activity::DayBits late = m.UnionOver(kLateFirst, kLateLast);
    auto appear = static_cast<std::uint64_t>(
        activity::PopCount(activity::AndNotBits(late, early)));
    auto disappear = static_cast<std::uint64_t>(
        activity::PopCount(activity::AndNotBits(early, late)));
    if (appear == 0 && disappear == 0) return;

    out.appear_total += appear;
    out.disappear_total += disappear;
    bool early_empty = activity::PopCount(early) == 0;
    bool late_empty = activity::PopCount(late) == 0;
    if (early_empty && appear > 0) appear_whole += appear;
    if (late_empty && disappear > 0) disappear_whole += disappear;

    std::uint32_t early_asn =
        feed.MajorityOrigin(key, kEarlyDayFirst, kEarlyDayLast);
    std::uint32_t late_asn =
        feed.MajorityOrigin(key, kLateDayFirst, kLateDayLast);
    if (appear > 0) {
      if (early_asn == late_asn) {
        appear_no_bgp += appear;
      } else if (early_asn != 0 && late_asn != 0) {
        appear_origin += appear;
      } else {
        appear_announce += appear;
      }
      appear_by_as[late_asn != 0 ? late_asn : early_asn] += appear;
    }
    if (disappear > 0) {
      if (early_asn == late_asn) {
        disappear_no_bgp += disappear;
      } else if (early_asn != 0 && late_asn != 0) {
        disappear_origin += disappear;
      } else {
        disappear_withdraw += disappear;
      }
      disappear_by_as[early_asn != 0 ? early_asn : late_asn] += disappear;
    }
  });

  auto frac = [](std::uint64_t n, std::uint64_t d) {
    return d ? static_cast<double>(n) / static_cast<double>(d) : 0.0;
  };
  out.appear_whole_block_frac = frac(appear_whole, out.appear_total);
  out.disappear_whole_block_frac =
      frac(disappear_whole, out.disappear_total);
  out.appear_bgp = {frac(appear_no_bgp, out.appear_total),
                    frac(appear_origin, out.appear_total),
                    frac(appear_announce, out.appear_total)};
  out.disappear_bgp = {frac(disappear_no_bgp, out.disappear_total),
                       frac(disappear_origin, out.disappear_total),
                       frac(disappear_withdraw, out.disappear_total)};

  std::unordered_set<std::uint32_t> volatile_ases;
  // lint: ordered(set union then .size: the result is the same for any
  // insertion order)
  for (const auto& [asn, n] : appear_by_as) volatile_ases.insert(asn);
  // lint: ordered(set union then .size: the result is the same for any
  // insertion order)
  for (const auto& [asn, n] : disappear_by_as) volatile_ases.insert(asn);
  out.volatile_ases = volatile_ases.size();

  auto top_appear = TopAsns(appear_by_as, 10);
  auto top_disappear = TopAsns(disappear_by_as, 10);
  std::uint64_t top_appear_sum = 0;
  for (std::uint32_t asn : top_appear) top_appear_sum += appear_by_as[asn];
  std::uint64_t top_disappear_sum = 0;
  for (std::uint32_t asn : top_disappear) {
    top_disappear_sum += disappear_by_as[asn];
  }
  out.top10_appear_share = frac(top_appear_sum, out.appear_total);
  out.top10_disappear_share = frac(top_disappear_sum, out.disappear_total);
  for (std::uint32_t asn : top_appear) {
    if (std::find(top_disappear.begin(), top_disappear.end(), asn) !=
        top_disappear.end()) {
      ++out.top10_overlap;
    }
  }
  return out;
}

void PrintTable2(const Table2Result& result, std::ostream& os) {
  os << "=== Table 2: Jan/Feb vs Nov/Dec 2015 ===\n";
  report::Table t({"metric", "appear", "disappear", "paper (appear/disap.)"});
  t.AddRow({"total addresses",
            report::FormatSi(static_cast<double>(result.appear_total)),
            report::FormatSi(static_cast<double>(result.disappear_total)),
            "139M / 129M"});
  t.AddRow({"entire /24 affected",
            report::FormatPercent(result.appear_whole_block_frac),
            report::FormatPercent(result.disappear_whole_block_frac),
            "65% / 54%"});
  t.AddRow({"BGP no change", report::FormatPercent(result.appear_bgp.no_change),
            report::FormatPercent(result.disappear_bgp.no_change),
            "87.1% / 90.4%"});
  t.AddRow({"BGP origin change",
            report::FormatPercent(result.appear_bgp.origin_change),
            report::FormatPercent(result.disappear_bgp.origin_change),
            "3.3% / 7.1%"});
  t.AddRow({"BGP announce/withdraw",
            report::FormatPercent(result.appear_bgp.announce_withdraw),
            report::FormatPercent(result.disappear_bgp.announce_withdraw),
            "9.6% / 2.5%"});
  t.Print(os);

  os << "\nASes with long-term volatility: "
     << report::FormatCount(result.volatile_ases)
     << "; top-10 AS share: appear "
     << report::FormatPercent(result.top10_appear_share) << ", disappear "
     << report::FormatPercent(result.top10_disappear_share)
     << "; top-10 overlap " << result.top10_overlap
     << "/10   [paper: ~30% shares, 7/10 overlap]\n";
}

}  // namespace ipscope::analysis
