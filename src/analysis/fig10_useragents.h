// Fig 10: User-Agent diversity per /24 — traffic volume (sampled requests)
// vs relative host count (unique UA strings), with the three regions the
// paper identifies: the residential bulk, low-diversity crawler bots, and
// high-diversity gateway blocks (disproportionately Asian cellular CGN).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "cdn/observatory.h"
#include "cdn/useragent.h"
#include "stats/histogram.h"

namespace ipscope::analysis {

struct Fig10Result {
  std::vector<cdn::BlockUaSample> samples;  // blocks with >=1 sample
  stats::LogLogGrid grid{10.0, 8, 7};

  std::uint64_t region_residential = 0;
  std::uint64_t region_bots = 0;
  std::uint64_t region_gateways = 0;

  // The paper's attribution of the gateway region via WHOIS (observational,
  // like the paper's manual inspection): share of gateway-region blocks
  // registered to cellular operators, and share registered in APNIC.
  double gateway_whois_cellular = 0.0;
  double gateway_whois_apnic = 0.0;

  // Ground-truth checks of the gateway region (validation the paper could
  // not do).
  double gateway_cgn_precision = 0.0;
  double gateway_apnic_fraction = 0.0;
  double bots_crawler_precision = 0.0;
};

Fig10Result RunFig10(const sim::World& world, const cdn::Observatory& daily);

void PrintFig10(const Fig10Result& result, std::ostream& os);

}  // namespace ipscope::analysis
