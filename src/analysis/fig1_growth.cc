#include "analysis/fig1_growth.h"

#include <cmath>
#include <ostream>
#include <vector>

#include "report/table.h"
#include "report/textplot.h"

namespace ipscope::analysis {

Fig1Result RunFig1(std::uint64_t seed, double scale) {
  Fig1Result out;
  out.growth = sim::GenerateGrowthHistory(seed, scale);

  const auto& series = out.growth.series;
  const auto& fit = out.growth.pre2014_fit;
  double residual_sum = 0.0;
  int pre_months = 0;
  for (std::size_t m = 0; m < series.size(); ++m) {
    bool pre2014 = series[m].year < 2014;
    if (pre2014) {
      double predicted = fit.At(static_cast<double>(m));
      residual_sum += std::abs(series[m].active_ips - predicted) /
                      predicted;
      ++pre_months;
    }
  }
  out.pre2014_mean_residual = pre_months ? residual_sum / pre_months : 0.0;

  double last_predicted = fit.At(static_cast<double>(series.size() - 1));
  out.stagnation_gap =
      (last_predicted - series.back().active_ips) / last_predicted;
  return out;
}

void PrintFig1(const Fig1Result& result, std::ostream& os) {
  os << "=== Fig 1: monthly active IPv4 addresses, 2008-2016 ===\n";
  std::vector<double> values;
  for (const auto& mc : result.growth.series) values.push_back(mc.active_ips);
  os << "series:  " << report::RenderSparkline(values) << "\n";
  os << "         2008      2010      2012      2014      2016\n\n";

  report::Table table({"year", "jan active IPs", "trend (pre-2014 fit)"});
  for (std::size_t m = 0; m < result.growth.series.size(); ++m) {
    const auto& mc = result.growth.series[m];
    if (mc.month != 1) continue;
    table.AddRow({std::to_string(mc.year), report::FormatSi(mc.active_ips),
                  report::FormatSi(result.growth.pre2014_fit.At(
                      static_cast<double>(m)))});
  }
  table.Print(os);

  os << "\npre-2014 fit: slope " << report::FormatSi(
            result.growth.pre2014_fit.slope)
     << "/month, R^2 "
     << report::FormatDouble(result.growth.pre2014_fit.r_squared, 4) << "\n";
  os << "mean |residual| pre-2014:      "
     << report::FormatPercent(result.pre2014_mean_residual) << "\n";
  os << "final month vs extrapolation:  "
     << report::FormatPercent(result.stagnation_gap)
     << " below trend   [paper: clear stagnation after 2014-01]\n";
  os << "RIR exhaustion dates: ";
  for (const auto& ev : sim::RirExhaustionDates()) {
    os << ev.rir << " " << ev.year << "-" << ev.month << "  ";
  }
  os << "\n";
}

}  // namespace ipscope::analysis
