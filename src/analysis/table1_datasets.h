// Table 1: dataset totals and per-snapshot averages for the daily and
// weekly observation datasets (IP addresses, /24 blocks, ASes).
#pragma once

#include <iosfwd>

#include "bgp/table.h"
#include "cdn/dataset.h"
#include "cdn/observatory.h"
#include "sim/world.h"

namespace ipscope::analysis {

struct Table1Result {
  cdn::DatasetTotals daily;
  cdn::DatasetTotals weekly;
};

Table1Result RunTable1(const sim::World& world, const bgp::RoutingFeed& feed);

void PrintTable1(const Table1Result& result, std::ostream& os);

}  // namespace ipscope::analysis
