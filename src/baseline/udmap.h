// UDmap-style dynamic-address inference (the Xie et al. baseline, §3.1).
//
// Input: (user, IP, time) login tuples. Core signals, per /24 block:
//   * users-per-IP: distinct subscriber identities seen on each address —
//     near 1 for static assignment, growing with reassignment frequency;
//   * holding time: the span of steps over which one (user, IP) pairing
//     persists — an estimate of the DHCP lease / reassignment interval
//     (compare Moura et al.'s DHCP churn estimation, §3.1).
// A block is inferred dynamic when addresses are shared across many users,
// static when pairings are stable. We validate the inference against the
// simulator's ground-truth policies and against the paper's rDNS tagging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdn/logins.h"
#include "netbase/prefix.h"

namespace ipscope::baseline {

struct BlockUdmapStats {
  net::BlockKey key = 0;
  std::uint64_t events = 0;
  std::uint32_t addresses = 0;     // distinct addresses with logins
  std::uint64_t users = 0;         // distinct users seen in the block
  double users_per_ip = 0.0;       // mean distinct users per address
  double median_holding_steps = 0; // median (user, ip) pairing span
};

struct UdmapResult {
  std::vector<BlockUdmapStats> blocks;            // ascending key
  std::vector<net::BlockKey> dynamic_blocks;      // inferred dynamic
  std::vector<net::BlockKey> static_blocks;       // inferred static
};

struct UdmapOptions {
  // Addresses shared by at least this many distinct users on average mark
  // a dynamic block.
  double dynamic_users_per_ip = 3.0;
  // At most this many users per address (and long holdings) marks static.
  double static_users_per_ip = 1.5;
  // Blocks with fewer login events are left unclassified.
  std::uint64_t min_events = 50;
};

UdmapResult AnalyzeLogins(std::span<const cdn::LoginEvent> events,
                          const UdmapOptions& options = UdmapOptions{});

}  // namespace ipscope::baseline
