#include "baseline/udmap.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "stats/quantile.h"

namespace ipscope::baseline {

UdmapResult AnalyzeLogins(std::span<const cdn::LoginEvent> events,
                          const UdmapOptions& options) {
  struct PairingSpan {
    std::int32_t first;
    std::int32_t last;
  };
  struct BlockAcc {
    std::uint64_t events = 0;
    std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>>
        users_per_addr;
    std::unordered_set<std::uint64_t> users;
    // (user, addr) -> observed step span
    std::unordered_map<std::uint64_t, PairingSpan> pairings;
  };
  // std::map keeps blocks in ascending key order for deterministic output.
  std::map<net::BlockKey, BlockAcc> accs;

  for (const cdn::LoginEvent& ev : events) {
    BlockAcc& acc = accs[net::BlockKeyOf(ev.ip)];
    ++acc.events;
    acc.users_per_addr[ev.ip.value()].insert(ev.user);
    acc.users.insert(ev.user);
    // Mix user and address into one pairing key; collisions are harmless
    // noise at these scales.
    std::uint64_t pairing = ev.user * 0x9e3779b97f4a7c15ULL ^ ev.ip.value();
    auto [it, inserted] = acc.pairings.try_emplace(
        pairing, PairingSpan{ev.step, ev.step});
    if (!inserted) {
      it->second.first = std::min(it->second.first, ev.step);
      it->second.last = std::max(it->second.last, ev.step);
    }
  }

  UdmapResult out;
  for (auto& [key, acc] : accs) {
    BlockUdmapStats stats;
    stats.key = key;
    stats.events = acc.events;
    stats.addresses = static_cast<std::uint32_t>(acc.users_per_addr.size());
    stats.users = acc.users.size();
    double user_sum = 0;
    for (const auto& [addr, users] : acc.users_per_addr) {
      user_sum += static_cast<double>(users.size());
    }
    stats.users_per_ip =
        stats.addresses ? user_sum / stats.addresses : 0.0;
    std::vector<double> spans;
    spans.reserve(acc.pairings.size());
    for (const auto& [pairing, span] : acc.pairings) {
      spans.push_back(static_cast<double>(span.last - span.first + 1));
    }
    stats.median_holding_steps = stats::Median(std::move(spans));
    out.blocks.push_back(stats);

    if (acc.events < options.min_events) continue;
    if (stats.users_per_ip >= options.dynamic_users_per_ip) {
      out.dynamic_blocks.push_back(key);
    } else if (stats.users_per_ip <= options.static_users_per_ip) {
      out.static_blocks.push_back(key);
    }
  }
  return out;
}

}  // namespace ipscope::baseline
