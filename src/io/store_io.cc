#include "io/store_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/timer.h"

namespace ipscope::io {

namespace {

constexpr char kMagic[8] = {'I', 'P', 'S', 'C', 'O', 'P', 'E', '1'};

// All simulation targets are little-endian in practice; the explicit
// byte-wise writers below keep the format portable regardless.
template <typename T>
void WriteInt(std::ostream& os, T value) {
  char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  os.write(bytes, sizeof(T));
}

template <typename T>
T ReadInt(std::istream& is, const char* what) {
  char bytes[sizeof(T)];
  if (!is.read(bytes, sizeof(T))) {
    throw std::runtime_error(std::string{"ipscope store: truncated input "
                                         "while reading "} + what);
  }
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void SaveStore(const activity::ActivityStore& store, std::ostream& os) {
  obs::Span span{"io.store.save_seconds"};
  const std::streampos start_pos = os.tellp();
  os.write(kMagic, sizeof(kMagic));
  WriteInt<std::uint32_t>(os, static_cast<std::uint32_t>(store.days()));
  WriteInt<std::uint64_t>(os, store.BlockCount());
  store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
    WriteInt<std::uint32_t>(os, key);
    std::uint32_t nonzero = 0;
    for (int d = 0; d < m.days(); ++d) {
      const activity::DayBits& row = m.Row(d);
      if ((row[0] | row[1] | row[2] | row[3]) != 0) ++nonzero;
    }
    WriteInt<std::uint32_t>(os, nonzero);
    for (int d = 0; d < m.days(); ++d) {
      const activity::DayBits& row = m.Row(d);
      if ((row[0] | row[1] | row[2] | row[3]) == 0) continue;
      WriteInt<std::uint16_t>(os, static_cast<std::uint16_t>(d));
      for (std::uint64_t word : row) WriteInt<std::uint64_t>(os, word);
    }
  });
  if (!os) throw std::runtime_error("ipscope store: write failed");

  // Streams that cannot report a position (tellp == -1) just skip the byte
  // accounting; the duration histogram is recorded either way.
  const std::streampos end_pos = os.tellp();
  double seconds = std::max(span.Stop(), 1e-9);
  if (start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    auto bytes = static_cast<std::uint64_t>(end_pos - start_pos);
    auto& registry = obs::GlobalRegistry();
    registry.GetCounter("io.store.saves").Add(1);
    registry.GetCounter("io.store.save_bytes").Add(bytes);
    registry.GetGauge("io.store.save_mb_per_s")
        .Set(static_cast<double>(bytes) / 1e6 / seconds);
  }
}

activity::ActivityStore LoadStore(std::istream& is) {
  obs::Span span{"io.store.load_seconds"};
  const std::streampos start_pos = is.tellg();
  char magic[8];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("ipscope store: bad magic (not a store file?)");
  }
  auto days = ReadInt<std::uint32_t>(is, "day count");
  if (days == 0 || days > 4096) {
    throw std::runtime_error("ipscope store: implausible day count " +
                             std::to_string(days));
  }
  auto blocks = ReadInt<std::uint64_t>(is, "block count");
  if (blocks > (std::uint64_t{1} << 24)) {
    throw std::runtime_error("ipscope store: implausible block count");
  }

  activity::ActivityStore store{static_cast<int>(days)};
  std::uint64_t prev_key = 0;
  bool first = true;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto key = ReadInt<std::uint32_t>(is, "block key");
    if (key >= (1u << 24)) {
      throw std::runtime_error("ipscope store: block key out of range");
    }
    if (!first && key <= prev_key) {
      throw std::runtime_error("ipscope store: block keys out of order");
    }
    first = false;
    prev_key = key;
    activity::ActivityMatrix& m = store.GetOrCreate(key);
    auto nonzero = ReadInt<std::uint32_t>(is, "day list length");
    if (nonzero > days) {
      throw std::runtime_error("ipscope store: more non-empty days than "
                               "days in the period");
    }
    int prev_day = -1;
    for (std::uint32_t i = 0; i < nonzero; ++i) {
      auto day = ReadInt<std::uint16_t>(is, "day index");
      if (day >= days || static_cast<int>(day) <= prev_day) {
        throw std::runtime_error("ipscope store: invalid day index");
      }
      prev_day = day;
      activity::DayBits& row = m.Row(day);
      for (auto& word : row) word = ReadInt<std::uint64_t>(is, "bitmap");
    }
  }

  const std::streampos end_pos = is.tellg();
  double seconds = std::max(span.Stop(), 1e-9);
  if (start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    auto bytes = static_cast<std::uint64_t>(end_pos - start_pos);
    auto& registry = obs::GlobalRegistry();
    registry.GetCounter("io.store.loads").Add(1);
    registry.GetCounter("io.store.load_bytes").Add(bytes);
    registry.GetGauge("io.store.load_mb_per_s")
        .Set(static_cast<double>(bytes) / 1e6 / seconds);
  }
  return store;
}

void SaveStoreFile(const activity::ActivityStore& store,
                   const std::string& path) {
  std::ofstream os{path, std::ios::binary};
  if (!os) {
    throw std::runtime_error("ipscope store: cannot open for writing: " +
                             path);
  }
  SaveStore(store, os);
}

activity::ActivityStore LoadStoreFile(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    throw std::runtime_error("ipscope store: cannot open for reading: " +
                             path);
  }
  return LoadStore(is);
}

}  // namespace ipscope::io
