#include "io/store_io.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/atomic_file.h"
#include "io/crc32c.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace ipscope::io {

namespace {

constexpr char kMagicV1[8] = {'I', 'P', 'S', 'C', 'O', 'P', 'E', '1'};
constexpr char kMagicV2[8] = {'I', 'P', 'S', 'C', 'O', 'P', 'E', '2'};
constexpr char kFooterMagic[4] = {'E', 'N', 'D', '2'};
constexpr std::uint32_t kMaxDays = 4096;
constexpr std::uint64_t kMaxBlocks = std::uint64_t{1} << 24;
// One non-empty day in a block record: u16 index + 4 x u64 bitmap words.
constexpr std::size_t kDayRecordBytes = 2 + 4 * 8;

// All simulation targets are little-endian in practice; the explicit
// byte-wise encoders below keep the format portable regardless.
template <typename T>
void AppendInt(std::string& buf, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T ParseInt(const char* bytes) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[i])) << (8 * i);
  }
  return value;
}

// The per-block record shared by both formats: key, non-empty day count,
// then each non-empty day's index + bitmap.
void AppendBlockRecord(std::string& buf, net::BlockKey key,
                       const activity::ActivityMatrix& m) {
  AppendInt<std::uint32_t>(buf, key);
  std::uint32_t nonzero = 0;
  for (int d = 0; d < m.days(); ++d) {
    const activity::DayBits& row = m.Row(d);
    if ((row[0] | row[1] | row[2] | row[3]) != 0) ++nonzero;
  }
  AppendInt<std::uint32_t>(buf, nonzero);
  for (int d = 0; d < m.days(); ++d) {
    const activity::DayBits& row = m.Row(d);
    if ((row[0] | row[1] | row[2] | row[3]) == 0) continue;
    AppendInt<std::uint16_t>(buf, static_cast<std::uint16_t>(d));
    for (std::uint64_t word : row) AppendInt<std::uint64_t>(buf, word);
  }
}

// Offset-tracking input cursor. `offset` counts successfully consumed
// bytes (so it is the absolute position of the next unread byte), and
// `stream_crc` accumulates CRC32C over everything consumed — which is
// exactly what the v2 footer checksum covers.
struct Reader {
  std::istream& is;
  std::uint64_t offset = 0;
  std::uint32_t stream_crc = kCrc32cInit;

  bool Read(char* buf, std::size_t n) {
    is.read(buf, static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is.gcount()) != n) return false;
    stream_crc = Crc32cExtend(stream_crc, buf, n);
    offset += n;
    return true;
  }

  template <typename T>
  bool ReadInt(T* out) {
    char buf[sizeof(T)];
    if (!Read(buf, sizeof(T))) return false;
    *out = ParseInt<T>(buf);
    return true;
  }

  // Where the input actually ended relative to the stream start — offset
  // of the last successfully consumed byte plus whatever a failed partial
  // read managed to pull.
  std::uint64_t FailurePosition() const {
    return offset + static_cast<std::uint64_t>(is.gcount());
  }
};

StoreError Truncated(const Reader& r, const std::string& what) {
  return StoreError{StoreErrorKind::kTruncated, r.FailurePosition(),
                    "truncated input while reading " + what};
}

StoreError Malformed(std::uint64_t offset, std::string message) {
  return StoreError{StoreErrorKind::kMalformed, offset, std::move(message)};
}

// Shared loader state: a header-validated store plus running stats.
// `Fail` implements the salvage policy in one place — return the intact
// prefix when salvaging, the error otherwise.
struct LoadContext {
  activity::ActivityStore store;
  LoadStats stats;
  bool salvage = false;

  Result<LoadResult, StoreError> Fail(StoreError error) {
    if (!salvage) return error;
    stats.complete = false;
    stats.blocks_salvaged = stats.blocks_loaded;
    stats.error = std::move(error);
    return LoadResult{std::move(store), std::move(stats)};
  }
  Result<LoadResult, StoreError> Finish() {
    return LoadResult{std::move(store), std::move(stats)};
  }
};

// Validates and applies one decoded block record (both formats). Returns
// std::nullopt on success, the error otherwise. `base` is the absolute
// offset of the record's first byte, for error reporting.
std::optional<StoreError> ApplyBlockRecord(LoadContext& ctx, const char* rec,
                                           std::uint32_t days,
                                           std::uint64_t prev_key, bool first,
                                           std::uint64_t base) {
  auto key = ParseInt<std::uint32_t>(rec);
  auto nonzero = ParseInt<std::uint32_t>(rec + 4);
  if (key >= (1u << 24)) {
    return Malformed(base, "block key " + std::to_string(key) +
                               " out of /24 keyspace");
  }
  if (!first && key <= prev_key) {
    return Malformed(base, "block keys out of order (" +
                               std::to_string(key) + " after " +
                               std::to_string(prev_key) + ")");
  }
  activity::ActivityMatrix& m = ctx.store.GetOrCreate(key);
  int prev_day = -1;
  const char* p = rec + 8;
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    std::uint64_t day_off = base + 8 + i * kDayRecordBytes;
    auto day = ParseInt<std::uint16_t>(p);
    if (day >= days || static_cast<int>(day) <= prev_day) {
      return Malformed(day_off, "invalid day index " + std::to_string(day));
    }
    if (!ctx.store.DayCovered(day)) {
      return Malformed(day_off, "activity recorded on uncovered day " +
                                    std::to_string(day));
    }
    prev_day = day;
    activity::DayBits& row = m.Row(day);
    p += 2;
    for (auto& word : row) {
      word = ParseInt<std::uint64_t>(p);
      p += 8;
    }
  }
  return std::nullopt;
}

Result<LoadResult, StoreError> LoadV1(Reader& r, const LoadOptions& options) {
  std::uint32_t days = 0;
  if (!r.ReadInt(&days)) return Truncated(r, "day count");
  if (days == 0 || days > kMaxDays) {
    return Malformed(r.offset - 4,
                     "implausible day count " + std::to_string(days));
  }
  std::uint64_t blocks = 0;
  if (!r.ReadInt(&blocks)) return Truncated(r, "block count");
  if (blocks > kMaxBlocks) {
    return Malformed(r.offset - 8,
                     "implausible block count " + std::to_string(blocks));
  }

  LoadContext ctx{activity::ActivityStore{static_cast<int>(days)},
                  LoadStats{}, options.salvage};
  ctx.stats.format_version = 1;
  ctx.stats.blocks_expected = blocks;

  std::uint64_t prev_key = 0;
  bool first = true;
  std::string rec;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::uint64_t base = r.offset;
    rec.resize(8);
    if (!r.Read(rec.data(), 8)) return ctx.Fail(Truncated(r, "block header"));
    auto nonzero = ParseInt<std::uint32_t>(rec.data() + 4);
    if (nonzero > days) {
      return ctx.Fail(Malformed(
          base + 4, "day list length " + std::to_string(nonzero) +
                        " exceeds day count " + std::to_string(days)));
    }
    rec.resize(8 + nonzero * kDayRecordBytes);
    if (!r.Read(rec.data() + 8, rec.size() - 8)) {
      return ctx.Fail(Truncated(r, "block payload"));
    }
    if (auto err = ApplyBlockRecord(ctx, rec.data(), days, prev_key, first,
                                    base)) {
      return ctx.Fail(std::move(*err));
    }
    prev_key = ParseInt<std::uint32_t>(rec.data());
    first = false;
    ++ctx.stats.blocks_loaded;
  }
  return ctx.Finish();
}

Result<LoadResult, StoreError> LoadV2(Reader& r, const LoadOptions& options) {
  // Header (magic already consumed by the dispatcher, and already folded
  // into r.stream_crc). The header carries its own CRC so that corrupted
  // dimensions are caught before they can misdirect the rest of the parse;
  // a bad header is never salvageable.
  std::uint32_t days = 0;
  if (!r.ReadInt(&days)) return Truncated(r, "day count");
  if (days == 0 || days > kMaxDays) {
    return Malformed(r.offset - 4,
                     "implausible day count " + std::to_string(days));
  }
  std::uint64_t blocks = 0;
  if (!r.ReadInt(&blocks)) return Truncated(r, "block count");
  if (blocks > kMaxBlocks) {
    return Malformed(r.offset - 8,
                     "implausible block count " + std::to_string(blocks));
  }
  std::string coverage((days + 7) / 8, '\0');
  if (!r.Read(coverage.data(), coverage.size())) {
    return Truncated(r, "coverage bitmap");
  }
  std::uint32_t header_crc_expected = r.stream_crc;  // covers magic..bitmap
  std::uint32_t header_crc = 0;
  if (!r.ReadInt(&header_crc)) return Truncated(r, "header checksum");
  if (header_crc != header_crc_expected) {
    return StoreError{StoreErrorKind::kChecksumMismatch, r.offset - 4,
                      "header checksum mismatch"};
  }

  LoadContext ctx{activity::ActivityStore{static_cast<int>(days)},
                  LoadStats{}, options.salvage};
  ctx.stats.format_version = 2;
  ctx.stats.blocks_expected = blocks;
  for (std::uint32_t d = 0; d < days; ++d) {
    bool covered = (static_cast<unsigned char>(coverage[d / 8]) >> (d % 8)) & 1;
    if (!covered) ctx.store.SetDayCovered(static_cast<int>(d), false);
  }

  std::uint64_t prev_key = 0;
  bool first = true;
  std::string rec;
  {
    // Sub-span: the block loop dominates load time; the header and footer
    // are a few dozen bytes each, so this is the phase worth attributing.
    obs::Span blocks_span{"io.store.load.blocks_seconds"};
    for (std::uint64_t b = 0; b < blocks; ++b) {
      std::uint64_t base = r.offset;
      rec.resize(8);
      if (!r.Read(rec.data(), 8)) {
        return ctx.Fail(Truncated(r, "block header"));
      }
      auto nonzero = ParseInt<std::uint32_t>(rec.data() + 4);
      if (nonzero > days) {
        return ctx.Fail(Malformed(
            base + 4, "day list length " + std::to_string(nonzero) +
                          " exceeds day count " + std::to_string(days)));
      }
      rec.resize(8 + nonzero * kDayRecordBytes);
      if (!r.Read(rec.data() + 8, rec.size() - 8)) {
        return ctx.Fail(Truncated(r, "block payload"));
      }
      std::uint32_t block_crc = 0;
      if (!r.ReadInt(&block_crc)) {
        return ctx.Fail(Truncated(r, "block checksum"));
      }
      if (block_crc != Crc32c(rec.data(), rec.size())) {
        return ctx.Fail(StoreError{
            StoreErrorKind::kChecksumMismatch, base,
            "block " + std::to_string(b) + " checksum mismatch"});
      }
      if (auto err = ApplyBlockRecord(ctx, rec.data(), days, prev_key, first,
                                      base)) {
        return ctx.Fail(std::move(*err));
      }
      prev_key = ParseInt<std::uint32_t>(rec.data());
      first = false;
      ++ctx.stats.blocks_loaded;
    }
  }

  // Footer: magic + block-count echo, then the whole-stream CRC over every
  // preceding byte. A failure here with salvage on keeps the blocks — each
  // was individually checksummed, so they are intact even if the tail of
  // the file is not.
  char footer[12];
  std::uint64_t footer_base = r.offset;
  if (!r.Read(footer, sizeof(footer))) return ctx.Fail(Truncated(r, "footer"));
  if (std::memcmp(footer, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return ctx.Fail(Malformed(footer_base, "bad footer magic"));
  }
  auto echo = ParseInt<std::uint64_t>(footer + 4);
  if (echo != blocks) {
    return ctx.Fail(Malformed(
        footer_base + 4, "footer block count " + std::to_string(echo) +
                             " does not match header " +
                             std::to_string(blocks)));
  }
  std::uint32_t stream_crc_expected = r.stream_crc;
  std::uint32_t stream_crc = 0;
  if (!r.ReadInt(&stream_crc)) return ctx.Fail(Truncated(r, "stream checksum"));
  if (stream_crc != stream_crc_expected) {
    return ctx.Fail(StoreError{StoreErrorKind::kChecksumMismatch,
                               r.offset - 4, "stream checksum mismatch"});
  }
  return ctx.Finish();
}

}  // namespace

void SaveStore(const activity::ActivityStore& store, std::ostream& os,
               StoreFormat format) {
  obs::Span span{"io.store.save_seconds"};
  const bool v2 = format == StoreFormat::kV2;
  std::uint64_t bytes_written = 0;
  std::uint32_t stream_crc = kCrc32cInit;
  auto emit = [&](const std::string& buf) {
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    stream_crc = Crc32cExtend(stream_crc, buf.data(), buf.size());
    bytes_written += buf.size();
  };

  {
    obs::Span header_span{"io.store.save.header_seconds"};
    std::string buf;
    buf.append(v2 ? kMagicV2 : kMagicV1, 8);
    AppendInt<std::uint32_t>(buf, static_cast<std::uint32_t>(store.days()));
    AppendInt<std::uint64_t>(buf, store.BlockCount());
    if (v2) {
      std::string coverage((static_cast<std::size_t>(store.days()) + 7) / 8,
                           '\0');
      for (int d = 0; d < store.days(); ++d) {
        if (store.DayCovered(d)) {
          coverage[static_cast<std::size_t>(d / 8)] |=
              static_cast<char>(1 << (d % 8));
        }
      }
      buf += coverage;
      AppendInt<std::uint32_t>(buf, Crc32c(buf.data(), buf.size()));
    }
    emit(buf);
  }

  {
    obs::Span blocks_span{"io.store.save.blocks_seconds"};
    std::string buf;
    store.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
      buf.clear();
      AppendBlockRecord(buf, key, m);
      if (v2) AppendInt<std::uint32_t>(buf, Crc32c(buf.data(), buf.size()));
      emit(buf);
    });
  }

  if (v2) {
    obs::Span footer_span{"io.store.save.footer_seconds"};
    std::string buf;
    buf.append(kFooterMagic, sizeof(kFooterMagic));
    AppendInt<std::uint64_t>(buf, store.BlockCount());
    emit(buf);  // folds the footer magic + echo into the stream CRC
    buf.clear();
    AppendInt<std::uint32_t>(buf, stream_crc);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    bytes_written += buf.size();
  }
  if (!os) {
    throw std::runtime_error(
        StoreError{StoreErrorKind::kWriteFailed, bytes_written, "write failed"}
            .ToString());
  }

  double seconds = std::max(span.Stop(), 1e-9);
  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("io.store.saves").Add(1);
  registry.GetCounter("io.store.save_bytes").Add(bytes_written);
  registry.GetGauge("io.store.save_mb_per_s")
      .Set(static_cast<double>(bytes_written) / 1e6 / seconds);
}

Result<LoadResult, StoreError> TryLoadStore(std::istream& is,
                                            const LoadOptions& options) {
  obs::Span span{"io.store.load_seconds"};
  Reader r{is};
  char magic[8];
  if (!r.Read(magic, sizeof(magic))) {
    return Truncated(r, "magic");
  }
  Result<LoadResult, StoreError> result =
      std::memcmp(magic, kMagicV1, sizeof(magic)) == 0 ? LoadV1(r, options)
      : std::memcmp(magic, kMagicV2, sizeof(magic)) == 0
          ? LoadV2(r, options)
          : Result<LoadResult, StoreError>{StoreError{
                StoreErrorKind::kBadMagic, 0,
                "bad magic (not a store file?)"}};

  double seconds = std::max(span.Stop(), 1e-9);
  auto& registry = obs::GlobalRegistry();
  if (result.ok()) {
    const LoadStats& stats = result.value().stats;
    registry.GetCounter("io.store.loads").Add(1);
    registry.GetCounter("io.store.load_bytes").Add(r.offset);
    registry.GetGauge("io.store.load_mb_per_s")
        .Set(static_cast<double>(r.offset) / 1e6 / seconds);
    if (!stats.complete) {
      registry.GetCounter("io.store.salvaged_loads").Add(1);
      registry.GetCounter("io.store.blocks_salvaged")
          .Add(stats.blocks_salvaged);
    }
    registry.GetGauge("activity.days_missing")
        .Set(static_cast<double>(result.value().store.MissingDays()));
  } else {
    registry.GetCounter("io.store.load_errors").Add(1);
  }
  return result;
}

activity::ActivityStore LoadStore(std::istream& is) {
  auto result = TryLoadStore(is);
  if (!result.ok()) throw std::runtime_error(result.error().ToString());
  return std::move(result).value().store;
}

void SaveStoreFile(const activity::ActivityStore& store,
                   const std::string& path, StoreFormat format) {
  // Serialize in memory, then commit through the atomic temp+rename path:
  // a killed or failing process never leaves a truncated store under the
  // final name, and flush/fsync/close results are all checked (an ENOSPC
  // that only surfaces at close used to be reported as success here).
  std::ostringstream buffer{std::ios::binary};
  SaveStore(store, buffer, format);
  if (auto error = WriteFileAtomic(path, buffer.view())) {
    obs::GlobalRegistry().GetCounter("io.store.save_errors").Add(1);
    throw std::runtime_error(
        StoreError{StoreErrorKind::kWriteFailed, 0, *error}.ToString());
  }
}

Result<LoadResult, StoreError> TryLoadStoreFile(const std::string& path,
                                                const LoadOptions& options) {
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    const int err = errno;
    return StoreError{StoreErrorKind::kOpenFailed, 0,
                      "cannot open for reading: " + path + " (" +
                          std::strerror(err) + ")"};
  }
  return TryLoadStore(is, options);
}

activity::ActivityStore LoadStoreFile(const std::string& path) {
  auto result = TryLoadStoreFile(path);
  if (!result.ok()) throw std::runtime_error(result.error().ToString());
  return std::move(result).value().store;
}

}  // namespace ipscope::io
