// Durable whole-file replacement: write-temp → flush → fsync → close →
// atomic rename, every return value checked.
//
// This is the one primitive every output path in the project goes through
// (store files, metrics/trace dumps, bench-JSON reports, the ingest
// MANIFEST), so a killed process can never leave a truncated file under
// the final name: readers either see the previous complete content or the
// new complete content, nothing in between. The temp file lives in the
// same directory as the target (rename(2) is only atomic within one
// filesystem) under the fixed suffix ".tmp", which is what the ingest
// recovery scan quarantines after a crash.
//
// The hooks exist for crash-point fault injection (fault/crash.h): the
// ingest commit protocol registers a callback at every syscall boundary so
// the chaos-crash gate can kill the process at each one and prove
// recovery. Production callers pass no hooks and pay nothing.
//
// This header is dependency-free by design (no obs, no StoreError): it
// sits below both src/obs and src/io's store layer in the link graph, so
// either can use it. Errors come back as a human-readable message naming
// the failed stage and strerror(errno); callers wrap them in their own
// error taxonomy.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ipscope::io {

// The suffix every in-flight temp file carries; a crash leaves it behind
// and recovery (ingest::Session::Open) quarantines it.
inline constexpr std::string_view kTempSuffix = ".tmp";

// "<path>.tmp" — the temp name WriteFileAtomic uses for `path`.
std::string TempPathFor(const std::string& path);

struct AtomicWriteHooks {
  // Invoked at each syscall boundary, in order: "pre-temp-write" (before
  // the temp file is created), "mid-write" (only when split_at is set, see
  // below), "pre-fsync", "pre-rename". The callback may terminate the
  // process (that is the point); it must not write to the same file.
  std::function<void(std::string_view stage)> at;
  // When in (0, content.size()), the temp write is issued as two write(2)
  // calls split at this byte with "mid-write" fired between them — the
  // crash gate uses this to land a kill inside a partially written file.
  std::uint64_t split_at = 0;
};

// Replaces the contents of `path` with `content` durably (the data and the
// directory entry are both fsynced). Returns std::nullopt on success,
// otherwise "<stage> failed for <path>: <strerror>" with the temp file
// best-effort removed. Never leaves a partial file under the final name.
[[nodiscard]] std::optional<std::string> WriteFileAtomic(
    const std::string& path, std::string_view content,
    const AtomicWriteHooks* hooks = nullptr);

}  // namespace ipscope::io
