// Typed error taxonomy for the persistence layer.
//
// Every way a store file can be unusable gets a kind plus the absolute
// byte offset where the problem was detected, so a corrupted-file report
// is actionable ("checksum mismatch at byte 18744" rather than "bad
// input"). io::TryLoadStore returns these through ipscope::Result; the
// throwing io::LoadStore wrapper converts them to std::runtime_error with
// the same message.
#pragma once

#include <cstdint>
#include <string>

namespace ipscope::io {

enum class StoreErrorKind {
  kOpenFailed,        // file could not be opened (message carries strerror)
  kBadMagic,          // not a store file / unknown format version
  kTruncated,         // stream ended inside a field
  kMalformed,         // field value violates the format invariants
  kChecksumMismatch,  // a CRC32C check failed (header, block, or stream)
  kWriteFailed,       // output stream entered a failed state
};

const char* StoreErrorKindName(StoreErrorKind kind);

struct StoreError {
  StoreErrorKind kind = StoreErrorKind::kMalformed;
  // Absolute byte offset (from the start of the store stream) at which the
  // problem was detected. 0 for kOpenFailed/kWriteFailed.
  std::uint64_t offset = 0;
  std::string message;

  // "ipscope store: <message> [<kind> at byte <offset>]"
  std::string ToString() const;
};

}  // namespace ipscope::io
