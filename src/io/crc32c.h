// CRC32C (Castagnoli polynomial, reflected 0x82F63B78).
//
// The checksum the IPSCOPE2 store format uses for its per-block and
// whole-stream integrity checks (io/store_io.h). CRC32C is the standard
// storage-integrity polynomial (iSCSI, ext4, LevelDB table format): its
// error-detection properties guarantee that any single-byte corruption —
// and any burst shorter than 32 bits — changes the checksum, which is what
// the corruption property sweep in tests/io_fault_test.cc relies on.
//
// Implementation is portable table-driven slicing-by-4: no hardware CRC
// intrinsics, identical results on every platform.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ipscope::io {

// Incremental interface: start from kCrc32cInit (or a previous return
// value) and extend over consecutive byte ranges.
inline constexpr std::uint32_t kCrc32cInit = 0;

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

inline std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(kCrc32cInit, data, size);
}

}  // namespace ipscope::io
