// ipscope::Result<T, E> — a minimal expected-style sum type.
//
// The non-throwing side of the io error taxonomy: functions that can fail
// on bad input return Result<Value, io::StoreError> instead of throwing,
// so callers that expect damaged data (salvage paths, the chaos harness)
// can branch on the error without exception machinery, while the classic
// throwing wrappers remain available for callers that treat corruption as
// fatal. Deliberately tiny — no monadic combinators, just ok()/value()/
// error() — because call sites here are all immediate branches.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace ipscope {

// [[nodiscard]]: ignoring a Result drops an error on the floor — the
// compiler backs up the errors.discarded-result lint rule.
template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  // Implicit construction from either alternative keeps call sites clean:
  //   return LoadResult{...};   return StoreError{...};
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<0>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<0>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(v_));
  }

  E& error() & {
    assert(!ok());
    return std::get<1>(v_);
  }
  const E& error() const& {
    assert(!ok());
    return std::get<1>(v_);
  }

 private:
  std::variant<T, E> v_;
};

}  // namespace ipscope
