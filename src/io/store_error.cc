#include "io/store_error.h"

namespace ipscope::io {

const char* StoreErrorKindName(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::kOpenFailed:
      return "open-failed";
    case StoreErrorKind::kBadMagic:
      return "bad-magic";
    case StoreErrorKind::kTruncated:
      return "truncated";
    case StoreErrorKind::kMalformed:
      return "malformed";
    case StoreErrorKind::kChecksumMismatch:
      return "checksum-mismatch";
    case StoreErrorKind::kWriteFailed:
      return "write-failed";
  }
  return "unknown";
}

std::string StoreError::ToString() const {
  return "ipscope store: " + message + " [" + StoreErrorKindName(kind) +
         " at byte " + std::to_string(offset) + "]";
}

}  // namespace ipscope::io
