#include "io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ipscope::io {

namespace {

std::string StageError(std::string_view stage, const std::string& path,
                       int err) {
  std::string out{stage};
  out += " failed for ";
  out += path;
  out += ": ";
  out += std::strerror(err);
  return out;
}

// Closes a descriptor on a path that already failed: the temp file is
// about to be unlinked, so this close cannot lose committed data and its
// result would not change the error being reported.
void CloseDiscard(int fd) {
  // lint: close(the enclosing operation already failed and the temp file
  // is discarded; a close error here cannot lose committed data)
  ::close(fd);
}

// write(2) the whole span, retrying short writes and EINTR.
bool WriteAll(int fd, const char* data, std::size_t size, int* err) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *err = errno;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// fsync the directory containing `path` so the rename itself is durable.
// Returns 0 or the errno of the failed stage.
int SyncParentDir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return errno;
  if (::fsync(fd) != 0) {
    int err = errno;
    CloseDiscard(fd);
    return err;
  }
  if (::close(fd) != 0) return errno;
  return 0;
}

}  // namespace

std::string TempPathFor(const std::string& path) {
  return path + std::string(kTempSuffix);
}

std::optional<std::string> WriteFileAtomic(const std::string& path,
                                           std::string_view content,
                                           const AtomicWriteHooks* hooks) {
  auto at = [&](std::string_view stage) {
    if (hooks != nullptr && hooks->at) hooks->at(stage);
  };
  const std::string tmp = TempPathFor(path);
  auto fail = [&](std::string_view stage, int err) {
    // Best-effort cleanup: the temp is garbage once any stage failed.
    ::unlink(tmp.c_str());
    return StageError(stage, tmp, err);
  };

  at("pre-temp-write");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return StageError("open", tmp, errno);

  int err = 0;
  std::uint64_t split = hooks != nullptr ? hooks->split_at : 0;
  if (split > 0 && split < content.size()) {
    if (!WriteAll(fd, content.data(), static_cast<std::size_t>(split),
                  &err)) {
      CloseDiscard(fd);
      return fail("write", err);
    }
    at("mid-write");
    if (!WriteAll(fd, content.data() + split,
                  content.size() - static_cast<std::size_t>(split), &err)) {
      CloseDiscard(fd);
      return fail("write", err);
    }
  } else if (!WriteAll(fd, content.data(), content.size(), &err)) {
    CloseDiscard(fd);
    return fail("write", err);
  }

  at("pre-fsync");
  if (::fsync(fd) != 0) {
    err = errno;
    CloseDiscard(fd);
    return fail("fsync", err);
  }
  // The checked close is the last chance to learn about a write-back
  // failure (ENOSPC/EIO surfacing only at close is a real failure mode).
  if (::close(fd) != 0) return fail("close", errno);

  at("pre-rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("rename", errno);
  }
  if (int dir_err = SyncParentDir(path); dir_err != 0) {
    // The rename already happened; the new content is visible but its
    // directory entry may not be durable. Report it — callers treat any
    // returned message as a failed write.
    return StageError("directory fsync", path, dir_err);
  }
  return std::nullopt;
}

}  // namespace ipscope::io
