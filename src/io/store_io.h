// Binary serialization of activity datasets.
//
// An ActivityStore (the materialized daily/weekly dataset) can be written
// to a compact stream and reloaded later, so expensive worlds need to be
// generated once and analyses can run out-of-process (see tools/ipscope_cli).
//
// Format (little-endian):
//   8 bytes  magic "IPSCOPE1"
//   u32      days (steps) per matrix
//   u64      block count
//   then per block, in ascending key order:
//     u32    block key (top 24 bits of the /24 network address)
//     u32    number of non-empty days
//     then per non-empty day: u16 day index + 4 x u64 bitmap words
//
// Loading validates the header, bounds, ordering, and truncation, and
// throws std::runtime_error with a descriptive message on malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "activity/store.h"

namespace ipscope::io {

void SaveStore(const activity::ActivityStore& store, std::ostream& os);
activity::ActivityStore LoadStore(std::istream& is);

// File-path conveniences (binary mode). Throw std::runtime_error when the
// file cannot be opened.
void SaveStoreFile(const activity::ActivityStore& store,
                   const std::string& path);
activity::ActivityStore LoadStoreFile(const std::string& path);

}  // namespace ipscope::io
