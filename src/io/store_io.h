// Binary serialization of activity datasets.
//
// An ActivityStore (the materialized daily/weekly dataset) can be written
// to a compact stream and reloaded later, so expensive worlds need to be
// generated once and analyses can run out-of-process (see tools/ipscope_cli).
//
// Two on-disk formats, both little-endian:
//
// IPSCOPE1 (legacy, still readable; written with StoreFormat::kV1):
//   8 bytes  magic "IPSCOPE1"
//   u32      days (steps) per matrix
//   u64      block count
//   then per block, in ascending key order:
//     u32    block key (top 24 bits of the /24 network address)
//     u32    number of non-empty days
//     then per non-empty day: u16 day index + 4 x u64 bitmap words
//
// IPSCOPE2 (default): the same block payloads, hardened for corruption
// detection and partial recovery, and carrying the per-day coverage mask:
//   8 bytes  magic "IPSCOPE2"
//   u32      days
//   u64      block count
//   bytes    coverage bitmap, ceil(days/8) bytes (bit d set = day d covered)
//   u32      header CRC32C (over everything above)
//   then per block, in ascending key order:
//     u32 key | u32 non-empty days | per-day payload as in v1
//     u32 block CRC32C (over this block's key/count/payload bytes)
//   footer:
//     4 bytes "END2" | u64 block count echo
//     u32 stream CRC32C (over every byte from offset 0 through the echo)
//
// Every byte of a v2 stream is covered by at least one checksum, so any
// single-byte corruption is detected (property-swept in
// tests/io_fault_test.cc). Per-block checksums make salvage possible:
// TryLoadStore with salvage=true recovers all intact blocks up to the
// first truncated/corrupt record instead of failing outright.
//
// Error handling comes in two flavors:
//   * TryLoadStore returns ipscope::Result<LoadResult, StoreError> — a
//     typed error with kind + absolute byte offset, never throws on bad
//     input.
//   * LoadStore/LoadStoreFile keep the classic throwing API
//     (std::runtime_error whose message includes the kind and offset).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "activity/store.h"
#include "io/result.h"
#include "io/store_error.h"

namespace ipscope::io {

enum class StoreFormat {
  kV1,  // legacy "IPSCOPE1": no checksums, no coverage mask
  kV2,  // "IPSCOPE2": checksummed, carries the coverage mask (default)
};

struct LoadOptions {
  // When true, a truncated or corrupt block stops the load but the intact
  // prefix is returned (stats.complete = false, stats.error set) instead
  // of the whole load failing. Header corruption is never salvageable:
  // without trustworthy dimensions nothing can be decoded.
  bool salvage = false;
};

struct LoadStats {
  int format_version = 0;            // 1 or 2
  std::uint64_t blocks_expected = 0; // from the header
  std::uint64_t blocks_loaded = 0;
  // Blocks recovered by a salvage load that hit an error; 0 on clean loads.
  std::uint64_t blocks_salvaged = 0;
  bool complete = true;
  // The error salvage stopped at (set iff !complete).
  std::optional<StoreError> error;
};

struct LoadResult {
  activity::ActivityStore store;
  LoadStats stats;
};

// Serializes `store`. StoreFormat::kV1 writes the legacy byte stream
// exactly as the original writer did (the coverage mask is dropped — the
// format cannot carry it); kV2 is the default for all new data.
void SaveStore(const activity::ActivityStore& store, std::ostream& os,
               StoreFormat format = StoreFormat::kV2);

// Non-throwing load; dispatches on the magic, accepting both formats.
[[nodiscard]] Result<LoadResult, StoreError> TryLoadStore(
    std::istream& is, const LoadOptions& options = {});

// Throwing load (strict: salvage disabled). The runtime_error message is
// StoreError::ToString(), i.e. includes kind and absolute byte offset.
activity::ActivityStore LoadStore(std::istream& is);

// File-path conveniences (binary mode). Open failures report
// errno/strerror detail; the Try variant returns them as
// StoreErrorKind::kOpenFailed.
void SaveStoreFile(const activity::ActivityStore& store,
                   const std::string& path,
                   StoreFormat format = StoreFormat::kV2);
[[nodiscard]] Result<LoadResult, StoreError> TryLoadStoreFile(
    const std::string& path, const LoadOptions& options = {});
activity::ActivityStore LoadStoreFile(const std::string& path);

}  // namespace ipscope::io
