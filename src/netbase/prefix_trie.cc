// PrefixTrie is header-only (class template); this translation unit exists to
// anchor the target and to force an instantiation for build hygiene.
#include "netbase/prefix_trie.h"

namespace ipscope::net {
template class PrefixTrie<std::uint32_t>;
}  // namespace ipscope::net
