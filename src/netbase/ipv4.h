// IPv4 address value type.
//
// IPv4Addr wraps a host-byte-order 32-bit value with strongly-typed
// arithmetic, parsing, and formatting. It is a regular value type: cheap to
// copy, totally ordered, hashable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace ipscope::net {

class IPv4Addr {
 public:
  // Default-constructs 0.0.0.0.
  constexpr IPv4Addr() = default;

  // Constructs from a host-byte-order 32-bit value.
  constexpr explicit IPv4Addr(std::uint32_t value) : value_(value) {}

  // Constructs from four dotted-quad octets: IPv4Addr(192, 0, 2, 1).
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  // Host-byte-order numeric value.
  constexpr std::uint32_t value() const { return value_; }

  // The i-th dotted-quad octet, 0 = most significant ("a" in a.b.c.d).
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  // Parses dotted-quad notation ("192.0.2.1"). Rejects leading zeros in
  // multi-digit octets (e.g. "01.2.3.4"), out-of-range octets, and trailing
  // garbage. Returns nullopt on any malformed input.
  static std::optional<IPv4Addr> Parse(std::string_view text);

  // Dotted-quad representation.
  std::string ToString() const;

  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, IPv4Addr addr);

// Address arithmetic saturates at the ends of the address space so iteration
// over [first, last] ranges cannot wrap around.
constexpr IPv4Addr SaturatingAdd(IPv4Addr addr, std::uint32_t delta) {
  std::uint32_t v = addr.value();
  return IPv4Addr{v + delta < v ? 0xFFFFFFFFu : v + delta};
}

constexpr IPv4Addr SaturatingSub(IPv4Addr addr, std::uint32_t delta) {
  std::uint32_t v = addr.value();
  return IPv4Addr{v - delta > v ? 0u : v - delta};
}

}  // namespace ipscope::net

template <>
struct std::hash<ipscope::net::IPv4Addr> {
  std::size_t operator()(ipscope::net::IPv4Addr addr) const noexcept {
    // Finalizer from SplitMix64: cheap and well-mixed for table use.
    std::uint64_t x = addr.value();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
