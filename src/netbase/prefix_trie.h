// Binary radix trie keyed by CIDR prefix, with longest-prefix-match lookup.
//
// PrefixTrie<T> maps prefixes to values of type T. It is the substrate for
// the simulated BGP routing table (IP -> origin AS) and for prefix-scoped
// attribute maps. Nodes are stored in a flat vector (indices, not pointers),
// which keeps the structure compact and trivially copyable/movable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace ipscope::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  // Inserts or overwrites the value at `prefix`. Returns true if a new entry
  // was created, false if an existing entry's value was replaced.
  bool Insert(Prefix prefix, T value) {
    std::uint32_t idx = DescendCreating(prefix);
    Node& node = nodes_[idx];
    bool created = !node.has_value;
    if (created) ++size_;
    node.has_value = true;
    node.value = std::move(value);
    return created;
  }

  // Removes the entry at exactly `prefix`. Returns true if an entry existed.
  // Nodes are not physically reclaimed (the trie is append-only structurally),
  // which is fine for routing-table-style workloads with rare withdrawals.
  bool Erase(Prefix prefix) {
    std::uint32_t idx = Descend(prefix);
    if (idx == kNone || !nodes_[idx].has_value) return false;
    nodes_[idx].has_value = false;
    nodes_[idx].value = T{};
    --size_;
    return true;
  }

  // Exact-match lookup.
  const T* Find(Prefix prefix) const {
    std::uint32_t idx = Descend(prefix);
    if (idx == kNone || !nodes_[idx].has_value) return nullptr;
    return &nodes_[idx].value;
  }

  // Longest-prefix match: the entry whose prefix contains `addr` and has the
  // longest mask. Returns nullopt when no entry covers the address.
  std::optional<std::pair<Prefix, const T*>> LongestMatch(IPv4Addr addr) const {
    std::uint32_t idx = 0;
    std::uint32_t best = kNone;
    int best_len = -1;
    for (int depth = 0; depth <= 32; ++depth) {
      const Node& node = nodes_[idx];
      if (node.has_value) {
        best = idx;
        best_len = depth;
      }
      if (depth == 32) break;
      int bit = (addr.value() >> (31 - depth)) & 1;
      std::uint32_t next = node.child[bit];
      if (next == kNone) break;
      idx = next;
    }
    if (best == kNone) return std::nullopt;
    return std::make_pair(Prefix{addr, best_len}, &nodes_[best].value);
  }

  // Visits every (prefix, value) entry in lexicographic (address, length)
  // order of the trie walk.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    VisitRec(0, Prefix{}, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Node {
    std::uint32_t child[2] = {kNone, kNone};
    bool has_value = false;
    T value{};
  };

  std::uint32_t Descend(Prefix prefix) const {
    std::uint32_t idx = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      int bit = (prefix.network().value() >> (31 - depth)) & 1;
      idx = nodes_[idx].child[bit];
      if (idx == kNone) return kNone;
    }
    return idx;
  }

  std::uint32_t DescendCreating(Prefix prefix) {
    std::uint32_t idx = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      int bit = (prefix.network().value() >> (31 - depth)) & 1;
      std::uint32_t next = nodes_[idx].child[bit];
      if (next == kNone) {
        next = static_cast<std::uint32_t>(nodes_.size());
        nodes_[idx].child[bit] = next;
        nodes_.push_back(Node{});
      }
      idx = next;
    }
    return idx;
  }

  template <typename Fn>
  void VisitRec(std::uint32_t idx, Prefix at, Fn& fn) const {
    const Node& node = nodes_[idx];
    if (node.has_value) fn(at, node.value);
    if (at.length() == 32) return;
    for (int bit = 0; bit < 2; ++bit) {
      std::uint32_t next = node.child[bit];
      if (next == kNone) continue;
      std::uint32_t child_net =
          at.network().value() |
          (static_cast<std::uint32_t>(bit) << (31 - at.length()));
      VisitRec(next, Prefix{IPv4Addr{child_net}, at.length() + 1}, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace ipscope::net
