// CIDR prefix value type and aligned-prefix arithmetic.
//
// A Prefix is a network address plus a mask length in [0, 32]. The class
// maintains the invariant that host bits below the mask are zero, so two
// Prefix values compare equal iff they denote the same address block.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv4.h"

namespace ipscope::net {

// Netmask for a given prefix length; NetMask(0) == 0, NetMask(32) == ~0.
constexpr std::uint32_t NetMask(int len) {
  return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
}

class Prefix {
 public:
  // Default-constructs 0.0.0.0/0 (the whole address space).
  constexpr Prefix() = default;

  // Constructs the prefix containing `addr` with the given mask length.
  // Host bits are cleared, so Prefix({192,0,2,77}, 24) == 192.0.2.0/24.
  constexpr Prefix(IPv4Addr addr, int length)
      : network_(addr.value() & NetMask(length)), length_(length) {}

  constexpr IPv4Addr network() const { return IPv4Addr{network_}; }
  constexpr int length() const { return length_; }

  // First and last address covered by this prefix.
  constexpr IPv4Addr first() const { return IPv4Addr{network_}; }
  constexpr IPv4Addr last() const {
    return IPv4Addr{network_ | ~NetMask(length_)};
  }

  // Number of addresses covered, as a 64-bit count (a /0 holds 2^32).
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  constexpr bool Contains(IPv4Addr addr) const {
    return (addr.value() & NetMask(length_)) == network_;
  }

  constexpr bool Contains(Prefix other) const {
    return other.length_ >= length_ && Contains(other.network());
  }

  // The enclosing prefix one bit shorter; /0 is its own parent.
  constexpr Prefix Parent() const {
    return length_ == 0 ? *this : Prefix{network(), length_ - 1};
  }

  // Parses "a.b.c.d/len". Rejects prefixes with nonzero host bits
  // ("192.0.2.1/24") so a parsed Prefix is always canonical.
  static std::optional<Prefix> Parse(std::string_view text);

  std::string ToString() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  std::uint32_t network_ = 0;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

// The /24 block containing `addr` — the paper's unit of spatio-temporal
// analysis ("the smallest distinct, globally-routed entity").
constexpr Prefix BlockOf(IPv4Addr addr) { return Prefix{addr, 24}; }

// Decomposes the inclusive address range [first, last] into the minimal
// list of aligned CIDR prefixes, in address order (the classic
// range-to-CIDR algorithm; used e.g. to aggregate runs of same-origin /24s
// into routing-table announcements).
std::vector<Prefix> CoverRange(IPv4Addr first, IPv4Addr last);

// Key type for dense /24-block containers: the top 24 bits of the address.
using BlockKey = std::uint32_t;
constexpr BlockKey BlockKeyOf(IPv4Addr addr) { return addr.value() >> 8; }
constexpr BlockKey BlockKeyOf(Prefix block) { return block.network().value() >> 8; }
constexpr Prefix BlockFromKey(BlockKey key) {
  return Prefix{IPv4Addr{key << 8}, 24};
}

}  // namespace ipscope::net

template <>
struct std::hash<ipscope::net::Prefix> {
  std::size_t operator()(const ipscope::net::Prefix& p) const noexcept {
    std::uint64_t x = (std::uint64_t{p.network().value()} << 6) ^
                      static_cast<std::uint64_t>(p.length());
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
