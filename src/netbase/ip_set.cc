#include "netbase/ip_set.h"

#include <algorithm>
#include <cassert>

namespace ipscope::net {

namespace {

// Merges a sorted, possibly-overlapping interval list into canonical form.
std::vector<Ipv4Set::Interval> Canonicalize(
    std::vector<Ipv4Set::Interval> ivs) {
  if (ivs.empty()) return ivs;
  std::sort(ivs.begin(), ivs.end());
  std::vector<Ipv4Set::Interval> out;
  out.reserve(ivs.size());
  out.push_back(ivs.front());
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    Ipv4Set::Interval& back = out.back();
    // Coalesce overlapping or adjacent intervals; the +1 adjacency check must
    // not overflow when back.last == 0xFFFFFFFF.
    if (ivs[i].first <= back.last ||
        (back.last != 0xFFFFFFFFu && ivs[i].first == back.last + 1)) {
      back.last = std::max(back.last, ivs[i].last);
    } else {
      out.push_back(ivs[i]);
    }
  }
  return out;
}

}  // namespace

Ipv4Set Ipv4Set::FromAddresses(std::span<const IPv4Addr> addrs) {
  std::vector<std::uint32_t> values;
  values.reserve(addrs.size());
  for (IPv4Addr a : addrs) values.push_back(a.value());
  return FromValues(std::move(values));
}

Ipv4Set Ipv4Set::FromValues(std::vector<std::uint32_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Ipv4Set set;
  for (std::uint32_t v : values) {
    if (!set.intervals_.empty() && set.intervals_.back().last != 0xFFFFFFFFu &&
        set.intervals_.back().last + 1 == v) {
      set.intervals_.back().last = v;
    } else {
      set.intervals_.push_back({v, v});
    }
  }
  return set;
}

void Ipv4Set::AddRange(std::uint32_t first, std::uint32_t last) {
  assert(first <= last);
  // Find the first interval that could interact with [first, last].
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), first,
      [](const Interval& iv, std::uint32_t v) { return iv.last < v; });
  // Step back if the previous interval is adjacent (ends at first - 1).
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (first != 0 && prev->last == first - 1) it = prev;
  }
  Interval merged{first, last};
  auto erase_begin = it;
  while (it != intervals_.end() &&
         (it->first <= merged.last ||
          (merged.last != 0xFFFFFFFFu && it->first == merged.last + 1))) {
    merged.first = std::min(merged.first, it->first);
    merged.last = std::max(merged.last, it->last);
    ++it;
  }
  auto pos = intervals_.erase(erase_begin, it);
  intervals_.insert(pos, merged);
}

bool Ipv4Set::Contains(IPv4Addr addr) const {
  std::uint32_t v = addr.value();
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), v,
      [](const Interval& iv, std::uint32_t value) { return iv.last < value; });
  return it != intervals_.end() && it->first <= v;
}

bool Ipv4Set::IntersectsRange(std::uint32_t first, std::uint32_t last) const {
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), first,
      [](const Interval& iv, std::uint32_t v) { return iv.last < v; });
  return it != intervals_.end() && it->first <= last;
}

std::optional<IPv4Addr> Ipv4Set::Floor(IPv4Addr addr) const {
  std::uint32_t v = addr.value();
  // First interval with last >= v; the floor is either v itself (if covered)
  // or the previous interval's last.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), v,
      [](const Interval& iv, std::uint32_t value) { return iv.last < value; });
  if (it != intervals_.end() && it->first <= v) return IPv4Addr{v};
  if (it == intervals_.begin()) return std::nullopt;
  return IPv4Addr{std::prev(it)->last};
}

std::optional<IPv4Addr> Ipv4Set::Ceiling(IPv4Addr addr) const {
  std::uint32_t v = addr.value();
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), v,
      [](const Interval& iv, std::uint32_t value) { return iv.last < value; });
  if (it == intervals_.end()) return std::nullopt;
  return IPv4Addr{std::max(it->first, v)};
}

std::uint64_t Ipv4Set::Count() const {
  std::uint64_t n = 0;
  for (const Interval& iv : intervals_) n += std::uint64_t{iv.last} - iv.first + 1;
  return n;
}

std::uint64_t Ipv4Set::CountBlocks() const {
  std::uint64_t n = 0;
  std::uint64_t prev = ~std::uint64_t{0};
  for (const Interval& iv : intervals_) {
    std::uint64_t lo = iv.first >> 8;
    std::uint64_t hi = iv.last >> 8;
    if (lo == prev) ++lo;
    if (lo <= hi) {
      n += hi - lo + 1;
      prev = hi;
    }
  }
  return n;
}

Ipv4Set Ipv4Set::Union(const Ipv4Set& other) const {
  std::vector<Interval> all;
  all.reserve(intervals_.size() + other.intervals_.size());
  all.insert(all.end(), intervals_.begin(), intervals_.end());
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  Ipv4Set out;
  out.intervals_ = Canonicalize(std::move(all));
  return out;
}

Ipv4Set Ipv4Set::Intersect(const Ipv4Set& other) const {
  Ipv4Set out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    std::uint32_t lo = std::max(a.first, b.first);
    std::uint32_t hi = std::min(a.last, b.last);
    if (lo <= hi) out.intervals_.push_back({lo, hi});
    if (a.last < b.last) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::uint64_t Ipv4Set::CountIntersect(const Ipv4Set& other) const {
  std::uint64_t n = 0;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    std::uint32_t lo = std::max(a.first, b.first);
    std::uint32_t hi = std::min(a.last, b.last);
    if (lo <= hi) n += std::uint64_t{hi} - lo + 1;
    if (a.last < b.last) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

Ipv4Set Ipv4Set::Subtract(const Ipv4Set& other) const {
  Ipv4Set out;
  std::size_t j = 0;
  for (const Interval& a : intervals_) {
    std::uint64_t cur = a.first;  // 64-bit to survive last == 0xFFFFFFFF
    while (j < other.intervals_.size() && other.intervals_[j].last < a.first) {
      ++j;
    }
    std::size_t k = j;
    while (cur <= a.last) {
      if (k >= other.intervals_.size() || other.intervals_[k].first > a.last) {
        out.intervals_.push_back(
            {static_cast<std::uint32_t>(cur), a.last});
        break;
      }
      const Interval& b = other.intervals_[k];
      if (b.first > cur) {
        out.intervals_.push_back(
            {static_cast<std::uint32_t>(cur), b.first - 1});
      }
      cur = std::uint64_t{b.last} + 1;
      ++k;
    }
  }
  return out;
}

}  // namespace ipscope::net
