#include "netbase/prefix.h"

#include <bit>
#include <charconv>
#include <ostream>

namespace ipscope::net {

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Addr::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  int len = -1;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return std::nullopt;
  }
  if ((addr->value() & ~NetMask(len)) != 0) return std::nullopt;
  return Prefix{*addr, len};
}

std::string Prefix::ToString() const {
  return network().ToString() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.ToString();
}

std::vector<Prefix> CoverRange(IPv4Addr first, IPv4Addr last) {
  std::vector<Prefix> out;
  std::uint64_t lo = first.value();
  const std::uint64_t hi = last.value();
  while (lo <= hi) {
    // The largest aligned prefix starting at lo that fits within [lo, hi]:
    // limited by lo's alignment and by the remaining range size.
    int max_size_bits =
        lo == 0 ? 32 : std::countr_zero(static_cast<std::uint32_t>(lo));
    int size_bits = 0;
    while (size_bits < max_size_bits &&
           lo + (std::uint64_t{1} << (size_bits + 1)) - 1 <= hi) {
      ++size_bits;
    }
    out.emplace_back(IPv4Addr{static_cast<std::uint32_t>(lo)},
                     32 - size_bits);
    lo += std::uint64_t{1} << size_bits;
  }
  return out;
}

}  // namespace ipscope::net
