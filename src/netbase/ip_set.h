// Ipv4Set: an ordered set of IPv4 addresses stored as disjoint closed
// intervals. Designed for the census-style workloads in this project, where
// sets of hundreds of thousands to millions of addresses are built once and
// then queried (membership, counting, set algebra, block aggregation).
//
// Intervals are closed [first, last] on the 32-bit address line. The class
// invariant: intervals_ is sorted by first, intervals are disjoint, and
// adjacent intervals are coalesced (no interval's first == previous last + 1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace ipscope::net {

class Ipv4Set {
 public:
  struct Interval {
    std::uint32_t first;
    std::uint32_t last;  // inclusive
    friend constexpr auto operator<=>(const Interval&,
                                      const Interval&) = default;
  };

  Ipv4Set() = default;

  // Builds a set from an arbitrary (unsorted, possibly duplicated) list of
  // addresses in O(n log n).
  static Ipv4Set FromAddresses(std::span<const IPv4Addr> addrs);
  static Ipv4Set FromValues(std::vector<std::uint32_t> values);

  // Adds a single address or an entire prefix / closed range.
  // Amortized O(log n) when insertions are mostly appends or merges; worst
  // case O(n) per call due to vector displacement.
  void Add(IPv4Addr addr) { AddRange(addr.value(), addr.value()); }
  void Add(Prefix prefix) {
    AddRange(prefix.first().value(), prefix.last().value());
  }
  void AddRange(std::uint32_t first, std::uint32_t last);

  bool Contains(IPv4Addr addr) const;

  // True if any member falls within [first, last] (inclusive). O(log n).
  bool IntersectsRange(std::uint32_t first, std::uint32_t last) const;
  bool Intersects(Prefix prefix) const {
    return IntersectsRange(prefix.first().value(), prefix.last().value());
  }

  // Largest member <= addr / smallest member >= addr, if any. O(log n).
  // These power the event-size aggregation (DESIGN.md §4.4).
  std::optional<IPv4Addr> Floor(IPv4Addr addr) const;
  std::optional<IPv4Addr> Ceiling(IPv4Addr addr) const;

  // Number of addresses (not intervals) in the set.
  std::uint64_t Count() const;

  // Number of distinct /24 blocks with at least one member address.
  std::uint64_t CountBlocks() const;

  // Set algebra. All O(n + m).
  Ipv4Set Union(const Ipv4Set& other) const;
  Ipv4Set Intersect(const Ipv4Set& other) const;
  Ipv4Set Subtract(const Ipv4Set& other) const;

  // Number of addresses in the intersection without materializing it.
  std::uint64_t CountIntersect(const Ipv4Set& other) const;

  bool Empty() const { return intervals_.empty(); }
  std::size_t IntervalCount() const { return intervals_.size(); }
  std::span<const Interval> Intervals() const { return intervals_; }

  // Visits each member address in increasing order. O(count).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Interval& iv : intervals_) {
      for (std::uint64_t v = iv.first; v <= iv.last; ++v) {
        fn(IPv4Addr{static_cast<std::uint32_t>(v)});
      }
    }
  }

  // Visits each member /24 block key once, in increasing order.
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    std::uint64_t prev = ~std::uint64_t{0};
    for (const Interval& iv : intervals_) {
      for (std::uint64_t key = iv.first >> 8; key <= (iv.last >> 8); ++key) {
        if (key != prev) fn(static_cast<BlockKey>(key));
        prev = key;
      }
    }
  }

  friend bool operator==(const Ipv4Set&, const Ipv4Set&) = default;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace ipscope::net
