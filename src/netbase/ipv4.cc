#include "netbase/ipv4.h"

#include <array>
#include <charconv>
#include <ostream>

namespace ipscope::net {

std::optional<IPv4Addr> IPv4Addr::Parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') return std::nullopt;
    // Reject leading zeros ("01") which some parsers treat as octal.
    if (*p == '0' && p + 1 != end && p[1] >= '0' && p[1] <= '9') {
      return std::nullopt;
    }
    unsigned int v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    p = next;
  }
  if (p != end) return std::nullopt;
  return IPv4Addr{octets[0], octets[1], octets[2], octets[3]};
}

std::string IPv4Addr::ToString() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, IPv4Addr addr) {
  return os << addr.ToString();
}

}  // namespace ipscope::net
