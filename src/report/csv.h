// Minimal CSV emission for figure series (one file or stream per figure).
//
// AddRow enforces the header width: a row with more cells than the header
// throws std::invalid_argument (silently dropping data would corrupt the
// exported figure series); a narrower row is padded with empty cells, like
// report::Table. Cells containing commas, quotes, CR, or LF are quoted per
// RFC 4180.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ipscope::report {

class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  // Throws std::invalid_argument if cells.size() exceeds the header width.
  void AddRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace ipscope::report
