// Minimal CSV emission for figure series (one file or stream per figure).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ipscope::report {

class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void AddRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace ipscope::report
