// Terminal renderings of the paper's figures.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "activity/matrix.h"
#include "stats/quantile.h"

namespace ipscope::report {

// Fig 6/7-style spatio-temporal plot of one /24: rows are address offsets
// (downsampled groups of `row_stride` addresses), columns are days; '#'
// marks activity. Returns one string per output row.
std::vector<std::string> RenderActivityMatrix(
    const activity::ActivityMatrix& matrix, int row_stride = 4);

// ASCII line rendering of an empirical CDF over `width` x `height` cells.
std::vector<std::string> RenderCdf(std::span<const stats::CdfPoint> cdf,
                                   int width = 64, int height = 16);

// Horizontal bar chart: one labelled row per value, scaled to `width`.
std::vector<std::string> RenderBars(std::span<const std::string> labels,
                                    std::span<const double> values,
                                    int width = 48);

// Sparkline of a numeric series using eighth-block characters.
std::string RenderSparkline(std::span<const double> series);

}  // namespace ipscope::report
