#include "report/textplot.h"

#include <algorithm>
#include <cmath>

namespace ipscope::report {

std::vector<std::string> RenderActivityMatrix(
    const activity::ActivityMatrix& matrix, int row_stride) {
  std::vector<std::string> out;
  row_stride = std::max(1, row_stride);
  for (int group = 0; group < 256; group += row_stride) {
    std::string line;
    line.reserve(static_cast<std::size_t>(matrix.days()));
    for (int d = 0; d < matrix.days(); ++d) {
      bool any = false;
      for (int h = group; h < std::min(256, group + row_stride); ++h) {
        any = any || matrix.Get(d, h);
      }
      line.push_back(any ? '#' : '.');
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::vector<std::string> RenderCdf(std::span<const stats::CdfPoint> cdf,
                                   int width, int height) {
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  if (cdf.empty()) return grid;
  double x_min = cdf.front().x;
  double x_max = cdf.back().x;
  double x_span = x_max > x_min ? x_max - x_min : 1.0;
  for (const stats::CdfPoint& p : cdf) {
    int col = static_cast<int>((p.x - x_min) / x_span * (width - 1));
    int row = static_cast<int>((1.0 - p.f) * (height - 1));
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }
  return grid;
}

std::vector<std::string> RenderBars(std::span<const std::string> labels,
                                    std::span<const double> values,
                                    int width) {
  std::vector<std::string> out;
  double max_v = 0;
  for (double v : values) max_v = std::max(max_v, v);
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::string label = i < labels.size() ? labels[i] : "";
    label.resize(label_w, ' ');
    int bars = max_v > 0 ? static_cast<int>(values[i] / max_v * width) : 0;
    out.push_back(label + " | " +
                  std::string(static_cast<std::size_t>(bars), '#'));
  }
  return out;
}

std::string RenderSparkline(std::span<const double> series) {
  static const char* kLevels[] = {" ", "_", ".", "-", "=", "+", "*", "#"};
  if (series.empty()) return "";
  double lo = *std::min_element(series.begin(), series.end());
  double hi = *std::max_element(series.begin(), series.end());
  double span = hi > lo ? hi - lo : 1.0;
  std::string out;
  for (double v : series) {
    int level = static_cast<int>((v - lo) / span * 7.0);
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

}  // namespace ipscope::report
