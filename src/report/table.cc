#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ipscope::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatSi(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "B";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ipscope::report
