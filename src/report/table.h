// Plain-text table rendering for experiment output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ipscope::report {

// A simple column-aligned text table:
//   Table t({"metric", "paper", "measured"});
//   t.AddRow({"active IPs", "1.2B", Format(n)});
//   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string FormatCount(std::uint64_t n);        // 12,345,678
std::string FormatSi(double v, int precision = 1);  // 1.2M, 3.4B
std::string FormatDouble(double v, int precision = 2);
std::string FormatPercent(double fraction, int precision = 1);  // 0.42->42.0%

}  // namespace ipscope::report
