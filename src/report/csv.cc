#include "report/csv.h"

#include <ostream>
#include <stdexcept>

namespace ipscope::report {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size()) {
  AddRow(headers);
}

std::string CsvWriter::Escape(const std::string& cell) {
  // '\r' must trigger quoting too: an unquoted bare CR splits the record on
  // CRLF-normalizing readers (RFC 4180 treats CR as part of the line break).
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  if (cells.size() > columns_) {
    throw std::invalid_argument(
        "CsvWriter::AddRow: " + std::to_string(cells.size()) +
        " cells for a " + std::to_string(columns_) + "-column header");
  }
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i > 0) os_ << ',';
    if (i < cells.size()) os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace ipscope::report
