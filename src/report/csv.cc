#include "report/csv.h"

#include <ostream>

namespace ipscope::report {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size()) {
  AddRow(headers);
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i > 0) os_ << ',';
    if (i < cells.size()) os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace ipscope::report
