#include "sim/ipv6note.h"

#include <cmath>

#include "rng/rng.h"

namespace ipscope::sim {

Ipv6GrowthSeries GenerateIpv6Growth(std::uint64_t seed, double scale) {
  Ipv6GrowthSeries out;
  rng::Xoshiro256 g{rng::Substream(seed, 0x1976)};
  constexpr int kWeeks = 53;
  constexpr double kStart = 200e6;  // active /64s, September 2014
  // Doubling over the year: exponential rate ln(2)/52 per week.
  const double rate = std::log(2.0) / 52.0;
  for (int w = 0; w < kWeeks; ++w) {
    double value = kStart * std::exp(rate * w);
    value *= 1.0 + 0.02 * rng::NextNormal(g);
    out.series.push_back(WeeklyIpv6Count{w, value * scale});
  }
  out.yearly_growth_factor =
      out.series.back().active_slash64s / out.series.front().active_slash64s;
  return out;
}

}  // namespace ipscope::sim
