// Subscriber behaviour model.
//
// Every activity pattern in the paper is the product of an assignment policy
// *and* the behaviour of the humans (or bots) behind it. We model a
// subscriber as a daily activity propensity drawn from a three-component
// mixture (heavy / medium / light users) plus a per-day weekday/weekend
// adjustment; traffic volume is lognormal with a location that increases
// with propensity (heavier users request more), which is what produces the
// paper's Fig 9a correlation between days-active and daily hits.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "rng/rng.h"

namespace ipscope::sim {

// Deterministic daily-activity propensity for a subscriber identity hash:
// 20% heavy users (p in [0.75, 0.95]), 50% medium ([0.30, 0.60]),
// 30% light ([0.03, 0.20]).
inline double SubscriberPropensity(std::uint64_t identity) {
  std::uint64_t h = identity;
  double u = static_cast<double>(rng::SplitMix64Next(h) >> 11) * 0x1.0p-53;
  double v = static_cast<double>(rng::SplitMix64Next(h) >> 11) * 0x1.0p-53;
  if (u < 0.20) return 0.75 + 0.20 * v;
  if (u < 0.70) return 0.30 + 0.30 * v;
  return 0.03 + 0.17 * v;
}

// Probability of at least one request in a step of `step_days` days, given
// a per-day probability.
inline double StepProbability(double daily_p, int step_days) {
  daily_p = std::clamp(daily_p, 0.0, 1.0);
  if (step_days == 1) return daily_p;
  return 1.0 - std::pow(1.0 - daily_p, step_days);
}

// Daily request count for an active subscriber: lognormal, location shifted
// by propensity so heavy users also produce more traffic.
inline std::uint32_t DailyHits(rng::Xoshiro256& g, double hits_mu,
                               double hits_sigma, double propensity) {
  double mu = hits_mu + 1.2 * propensity;
  double v = rng::NextLogNormal(g, mu, hits_sigma);
  v = std::min(v, 5.0e7);
  return v < 1.0 ? 1u : static_cast<std::uint32_t>(v);
}

}  // namespace ipscope::sim
