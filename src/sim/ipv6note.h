// The paper's footnote 2: while this study is IPv4-only, the authors note
// that weekly active IPv6 /64 prefix counts seen by the CDN doubled from
// ~200M to >400M between September 2014 and September 2015 (and point to
// Plonka & Berger [28] for the IPv6 story). We model that companion series
// the same way Fig 1 models IPv4: an adoption-driven exponential ramp with
// observation noise — the qualitative contrast to IPv4's stagnation.
#pragma once

#include <cstdint>
#include <vector>

namespace ipscope::sim {

struct WeeklyIpv6Count {
  int week = 0;             // 0 = first week of September 2014
  double active_slash64s = 0;
};

struct Ipv6GrowthSeries {
  std::vector<WeeklyIpv6Count> series;  // 53 weeks, Sep 2014 .. Sep 2015
  double yearly_growth_factor = 0;      // last/first
};

// `scale` multiplies the absolute counts (1.0 = paper scale, 200M..400M).
Ipv6GrowthSeries GenerateIpv6Growth(std::uint64_t seed, double scale = 1.0);

}  // namespace ipscope::sim
