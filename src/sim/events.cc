// events.h is declarations-only; this TU anchors the target.
#include "sim/events.h"
