// Address-assignment policies and the per-block activity kernel.
//
// A BlockPlan describes how one /24 is administered: which policy assigns
// addresses to subscribers, with what parameters, and which scheduled
// events (reconfiguration, activation, deactivation) change that over the
// year. GenerateStep turns a (plan, step) pair into the 256-bit activity
// slice — and optionally per-address hit counts — fully deterministically:
// the same (world seed, block, step) always yields the same bits, so
// observation layers can regenerate data on demand instead of storing it.
//
// Policy kinds and the figures they reproduce:
//   kStatic            Fig 6a  sparse scatter, stable set, weekday pattern
//   kDynamicShort      Fig 6b  rotating pool band (underutilized round-robin)
//                      Fig 6d  dense high-turnover fill (~24h leases)
//   kDynamicLong       Fig 6c  long leases: a few always-on + intermittent
//   kCgnGateway        §5.3/6  full, continuous utilization; huge traffic
//   kCrawlerBots       §6.3    few always-on addresses, huge traffic, 1 UA
//   kServerFarm        §3.3    (almost) CDN-invisible, ICMP/port-responsive
//   kRouterInfra       §3.3    CDN-invisible, ICMP + traceroute-visible
//   kMiddlebox         §3.3    ICMP-responsive "unknown" (tarpits, etc.)
//   kUnused            §8      allocated & routed but entirely inactive
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "activity/matrix.h"
#include "netbase/prefix.h"
#include "timeutil/date.h"

namespace ipscope::sim {

enum class PolicyKind : std::uint8_t {
  kUnused,
  kStatic,
  kDynamicShort,
  kDynamicLong,
  kCgnGateway,
  kCrawlerBots,
  kServerFarm,
  kRouterInfra,
  kMiddlebox,
};

const char* PolicyKindName(PolicyKind kind);

// True for policies that put end-user client devices behind the addresses
// (the CDN's client population).
constexpr bool IsClientPolicy(PolicyKind kind) {
  return kind == PolicyKind::kStatic || kind == PolicyKind::kDynamicShort ||
         kind == PolicyKind::kDynamicLong || kind == PolicyKind::kCgnGateway;
}

// True for infrastructure policies that never (or almost never) appear in
// CDN logs but respond to active measurement.
constexpr bool IsInfraPolicy(PolicyKind kind) {
  return kind == PolicyKind::kServerFarm || kind == PolicyKind::kRouterInfra ||
         kind == PolicyKind::kMiddlebox;
}

struct PolicyParams {
  PolicyKind kind = PolicyKind::kUnused;
  std::uint16_t pool_size = 0;    // addresses under management (1..256)
  std::uint16_t subscribers = 0;  // subscriber population served
  float daily_p = 0.0f;           // mean per-day activity probability
  float weekend_factor = 1.0f;    // multiplier applied on Sat/Sun
  std::uint16_t lease_days = 0;   // kDynamicLong: lease duration
  float occupancy = 1.0f;         // fraction of slots with a live customer
  bool rotating = false;          // kDynamicShort: rotate a contiguous band
  float hits_mu = 3.0f;           // lognormal location of daily hits
  float hits_sigma = 1.0f;
};

// A scheduled change of assignment practice. day is the absolute day of
// year (0 = Jan 1); day < 0 marks an unused slot. The host range allows
// *partial* reconfigurations (the paper's Fig 7b: spatially inconsistent
// patterns where only part of the /24 is repurposed); the default range
// covers the whole block.
struct BlockEvent {
  std::int32_t day = -1;
  PolicyParams params;
  std::uint8_t host_first = 0;
  std::uint8_t host_last = 255;
};

struct BlockPlan {
  net::Prefix block;
  std::uint32_t asn = 0;
  std::int16_t country = -1;
  PolicyParams base;
  std::array<BlockEvent, 2> events{};
  // The block produces no activity before active_from / from active_until on.
  std::int32_t active_from = 0;
  std::int32_t active_until = std::numeric_limits<std::int32_t>::max();
  std::uint64_t block_seed = 0;
  // Seeded permutation scattering static assignments across the /24.
  std::array<std::uint8_t, 256> host_perm{};

  // The parameters in effect on an absolute day (last event <= day wins).
  const PolicyParams& ParamsOn(std::int32_t abs_day) const;

  bool HasReconfiguration() const { return events[0].day >= 0; }
};

// Time base shared by all generation calls of one dataset.
struct StepSpec {
  std::int32_t start_day = 0;  // absolute day of step 0 (0 = Jan 1, 2015)
  int step_days = 1;           // 1 for the daily dataset, 7 for weekly
  int steps = 0;
  std::uint64_t world_seed = 0;
  double gateway_growth = 0.0;  // ln-units of gateway traffic growth / year
};

// Generates the activity bits for one (block, step). If `hits256` is
// non-null it receives per-address request counts for the step (zero for
// inactive addresses). If `occupants256` is non-null it receives the
// subscriber identity hash currently holding each active address (0 for
// inactive addresses and for aggregating gateways, which have no single
// subscriber). Bits are independent of whether hits/occupants are requested.
void GenerateStep(const BlockPlan& plan, const StepSpec& spec, int step,
                  activity::DayBits& bits, std::uint32_t* hits256,
                  std::uint64_t* occupants256);

inline void GenerateStep(const BlockPlan& plan, const StepSpec& spec,
                         int step, activity::DayBits& bits,
                         std::uint32_t* hits256) {
  GenerateStep(plan, spec, step, bits, hits256, nullptr);
}

// Fills rows[0 .. spec.steps) with the block's whole activity matrix in one
// call — bit-identical to calling GenerateStep(bits-only) per step, but
// slot-major: every Substream draw is a pure function of (seed, tags), so
// the per-step × per-slot loop nest can be transposed and the per-slot
// state (tenure epochs, occupants, propensities, activity-run decisions)
// hoisted out of the step sweep. This is the store-build hot path; callers
// that need hits or occupants stay on GenerateStep.
void GenerateBlock(const BlockPlan& plan, const StepSpec& spec,
                   activity::DayBits* rows);

}  // namespace ipscope::sim
