// Scheduled routing-plane events.
//
// The world builder couples a *small* fraction of activity events to BGP
// (paper §4.2/4.3: "the vast majority of volatility in IP address activity
// is entirely hidden from the global routing table") and sprinkles
// activity-independent background flaps. The bgp library materializes these
// into daily routing-table snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/prefix.h"

namespace ipscope::sim {

enum class BgpEventType : std::uint8_t {
  kAnnounce,      // block becomes routed on `day` (unrouted before)
  kWithdraw,      // block becomes unrouted from `day` on
  kOriginChange,  // origin AS changes to `asn` on `day`
  kFlap,          // transient withdraw + re-announce on `day`
};

struct BgpScheduledEvent {
  std::int32_t day = 0;
  net::BlockKey key = 0;
  BgpEventType type = BgpEventType::kFlap;
  std::uint32_t asn = 0;  // new origin for kOriginChange; else unused

  friend bool operator<(const BgpScheduledEvent& a,
                        const BgpScheduledEvent& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.day < b.day;
  }
};

}  // namespace ipscope::sim
