// config.h is data-only; this TU anchors the target.
#include "sim/config.h"
