// Long-horizon growth history (Fig 1).
//
// Fig 1 spans 2008–2016, far beyond the per-address simulation year, so we
// model it mechanistically at monthly granularity: client demand for IPv4
// addresses grows linearly (the pre-2014 regime), while assignable supply —
// after the RIR exhaustions — saturates; observed monthly active addresses
// are min(demand, supply) with small observation noise. The post-2014
// flattening is therefore *caused* by supply exhaustion in the model, which
// is the paper's interpretation of the real data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/linreg.h"

namespace ipscope::sim {

struct MonthlyCount {
  int year;
  int month;          // 1..12
  double active_ips;  // unique active IPv4 addresses that month
};

struct GrowthSeries {
  std::vector<MonthlyCount> series;  // 2008-01 .. 2016-06
  // OLS fit of active_ips against month index, on months before 2014-01
  // (the dashed "linear regression until 2014-01" line of Fig 1).
  stats::LinearFit pre2014_fit;
};

// `scale` multiplies all counts (1.0 = paper scale, peaking near 800M
// monthly actives).
GrowthSeries GenerateGrowthHistory(std::uint64_t seed, double scale = 1.0);

struct ExhaustionEvent {
  const char* rir;
  int year;
  int month;
};

// RIR free-pool exhaustion dates, as annotated in Fig 1.
std::span<const ExhaustionEvent> RirExhaustionDates();

}  // namespace ipscope::sim
